package hybridsched

import (
	"bytes"
	"strings"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	records, err := GenerateWorkload(WorkloadConfig{Seed: 1, Weeks: 1, Nodes: 512,
		MinJobSize:  16,
		SizeBuckets: []int{16, 32, 64, 128},
		SizeWeights: []float64{0.4, 0.3, 0.2, 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("no records")
	}
	for _, mech := range Mechanisms() {
		rep, err := Simulate(SimulationConfig{Nodes: 512, Mechanism: mech, Validate: true}, records)
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		if rep.Jobs != len(records) {
			t.Fatalf("%s completed %d/%d", mech, rep.Jobs, len(records))
		}
	}
}

func TestSimulateDefaults(t *testing.T) {
	records, err := GenerateWorkload(WorkloadConfig{Seed: 2, Weeks: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(SimulationConfig{}, records) // all defaults
	if err != nil {
		t.Fatal(err)
	}
	if rep.Utilization <= 0 || rep.Utilization > 1 {
		t.Fatalf("utilization %g", rep.Utilization)
	}
}

func TestSimulateUnknownMechanism(t *testing.T) {
	if _, err := Simulate(SimulationConfig{Mechanism: "nope"}, nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestSimulateUnknownPolicy(t *testing.T) {
	if _, err := Simulate(SimulationConfig{Policy: "nope"}, nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestTraceRoundTripThroughFacade(t *testing.T) {
	records, err := GenerateWorkload(WorkloadConfig{Seed: 3, Weeks: 1, Nodes: 512,
		MinJobSize:  16,
		SizeBuckets: []int{16, 64},
		SizeWeights: []float64{0.6, 0.4},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(records) {
		t.Fatalf("round trip lost records: %d vs %d", len(back), len(records))
	}
	// SWF export/import degrades everything to rigid but keeps sizes.
	buf.Reset()
	if err := WriteSWF(&buf, records[:5]); err != nil {
		t.Fatal(err)
	}
	swf, err := ReadSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(swf) != 5 || swf[0].Class != Rigid {
		t.Fatalf("swf round trip wrong: %d records", len(swf))
	}
}

func TestMechanismNamesStable(t *testing.T) {
	want := []string{"baseline", "N&PAA", "N&SPAA", "CUA&PAA", "CUA&SPAA", "CUP&PAA", "CUP&SPAA"}
	got := Mechanisms()
	if len(got) != len(want) {
		t.Fatalf("mechanisms %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mechanisms %v", got)
		}
	}
}

func TestNoticeMixConstants(t *testing.T) {
	for _, m := range []NoticeMix{W1, W2, W3, W4, W5} {
		sum := 0.0
		for _, p := range m {
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("mix %v does not sum to 1", m)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	if got := FormatDuration(56160); !strings.Contains(got, "h") {
		t.Fatalf("FormatDuration = %q", got)
	}
}
