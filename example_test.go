package hybridsched_test

import (
	"fmt"
	"os"

	"hybridsched"
)

// tinyWorkload keeps the examples fast: a 512-node system for one week.
func tinyWorkload(seed int64) hybridsched.WorkloadConfig {
	return hybridsched.WorkloadConfig{
		Seed: seed, Nodes: 512, Weeks: 1,
		MinJobSize:  16,
		SizeBuckets: []int{16, 32, 64, 128},
		SizeWeights: []float64{0.4, 0.3, 0.2, 0.1},
	}
}

// ExampleGenerateWorkload synthesizes a hybrid trace; the same config and
// seed always produce the same jobs.
func ExampleGenerateWorkload() {
	a, err := hybridsched.GenerateWorkload(tinyWorkload(1))
	if err != nil {
		panic(err)
	}
	b, _ := hybridsched.GenerateWorkload(tinyWorkload(1))
	fmt.Println("non-empty:", len(a) > 0)
	fmt.Println("deterministic:", len(a) == len(b) && a[0] == b[0])
	// Output:
	// non-empty: true
	// deterministic: true
}

// ExampleSimulate replays a generated trace under one of the paper's
// mechanisms and reads the evaluation metrics off the report.
func ExampleSimulate() {
	records, err := hybridsched.GenerateWorkload(tinyWorkload(1))
	if err != nil {
		panic(err)
	}
	report, err := hybridsched.Simulate(hybridsched.SimulationConfig{
		Nodes:     512,
		Mechanism: "CUA&SPAA",
	}, records)
	if err != nil {
		panic(err)
	}
	fmt.Println("all jobs completed:", report.Jobs == len(records))
	fmt.Println("utilization in (0,1]:", report.Utilization > 0 && report.Utilization <= 1)
	fmt.Println("instant-start measured:", report.InstantStartRate >= 0)
	// Output:
	// all jobs completed: true
	// utilization in (0,1]: true
	// instant-start measured: true
}

// ExampleNewSession drives a simulation incrementally: submit the trace,
// advance the clock day by day, watch the live state, and read the same
// report Simulate would have produced.
func ExampleNewSession() {
	records, err := hybridsched.GenerateWorkload(tinyWorkload(1))
	if err != nil {
		panic(err)
	}
	s, err := hybridsched.NewSession(
		hybridsched.WithNodes(512),
		hybridsched.WithMechanism("CUA&SPAA"),
	)
	if err != nil {
		panic(err)
	}
	for _, r := range records {
		if err := s.Submit(r); err != nil {
			panic(err)
		}
	}
	if err := s.RunUntil(24 * hybridsched.Hour); err != nil {
		panic(err)
	}
	snap := s.Snapshot() // live mid-run state
	fmt.Println("clock at day boundary:", snap.Now == 24*hybridsched.Hour)
	fmt.Println("work in flight:", len(snap.Running) > 0)
	report, err := s.Run() // drain the rest
	if err != nil {
		panic(err)
	}
	fmt.Println("all jobs completed:", report.Jobs == len(records))
	// Output:
	// clock at day boundary: true
	// work in flight: true
	// all jobs completed: true
}

// ExampleSession_Events streams typed scheduling events from a session: the
// channel adapter of the Observer interface.
func ExampleSession_Events() {
	records, err := hybridsched.GenerateWorkload(tinyWorkload(1))
	if err != nil {
		panic(err)
	}
	s, err := hybridsched.NewSession(hybridsched.WithNodes(512))
	if err != nil {
		panic(err)
	}
	events := s.Events()
	for _, r := range records[:20] {
		if err := s.Submit(r); err != nil {
			panic(err)
		}
	}
	if _, err := s.Run(); err != nil { // Run closes the channel when done
		panic(err)
	}
	counts := map[hybridsched.EventType]int{}
	for ev := range events {
		counts[ev.Type]++
	}
	fmt.Println("arrivals:", counts[hybridsched.EventArrival])
	fmt.Println("completions:", counts[hybridsched.EventEnd])
	// Output:
	// arrivals: 20
	// completions: 20
}

// ExampleRegisterScheduler plugs a user-defined scheduler into the registry
// and runs it by name, exactly like a built-in mechanism.
func ExampleRegisterScheduler() {
	// A scheduler that embeds Baseline inherits no-op callbacks and the
	// plain FCFS/EASY behaviour; real implementations override OnNotice,
	// OnODArrival, etc. and drive the engine's resource primitives.
	hybridsched.RegisterScheduler("example-noop",
		func(cfg hybridsched.SchedulerConfig) (hybridsched.Scheduler, error) {
			return exampleScheduler{}, nil
		})
	records, err := hybridsched.GenerateWorkload(tinyWorkload(1))
	if err != nil {
		panic(err)
	}
	report, err := hybridsched.Simulate(hybridsched.SimulationConfig{
		Nodes: 512, Mechanism: "example-noop",
	}, records)
	if err != nil {
		panic(err)
	}
	fmt.Println("custom scheduler ran:", report.Jobs == len(records))
	// Output:
	// custom scheduler ran: true
}

// exampleScheduler is the no-op custom scheduler of ExampleRegisterScheduler.
type exampleScheduler struct{ hybridsched.Baseline }

// Name identifies the scheduler in reports.
func (exampleScheduler) Name() string { return "example-noop" }

// ExampleMechanisms lists the available schedulers: the FCFS/EASY baseline
// plus the paper's six mechanisms.
func ExampleMechanisms() {
	for _, name := range hybridsched.Mechanisms() {
		fmt.Println(name)
	}
	// Output:
	// baseline
	// N&PAA
	// N&SPAA
	// CUA&PAA
	// CUA&SPAA
	// CUP&PAA
	// CUP&SPAA
}

// ExampleRunSweep executes a mechanism-comparison grid across a worker pool.
// Results always come back in grid order, bit-identical for any worker
// count, and a failing cell never aborts its siblings.
func ExampleRunSweep() {
	var specs []hybridsched.SweepSpec
	for _, mech := range []string{"baseline", "N&PAA", "CUA&SPAA"} {
		specs = append(specs, hybridsched.SweepSpec{
			Label:    mech,
			Workload: tinyWorkload(1),
			Sim:      hybridsched.SimulationConfig{Nodes: 512, Mechanism: mech},
		})
	}
	report, err := hybridsched.RunSweep(specs, hybridsched.SweepOptions{Workers: 4})
	if err != nil {
		panic(err)
	}
	for _, res := range report.Results {
		fmt.Printf("%s ok=%v\n", res.Spec.Label, res.Err == "")
	}
	// The report serializes deterministically: report.WriteCSV(os.Stdout) or
	// report.WriteJSON(f) emit the same bytes regardless of Workers.
	// Output:
	// baseline ok=true
	// N&PAA ok=true
	// CUA&SPAA ok=true
}

// ExampleWriteTraceCSV round-trips a generated trace through the native CSV
// schema, the interchange format of cmd/tracegen and cmd/hybridsim.
func ExampleWriteTraceCSV() {
	records, err := hybridsched.GenerateWorkload(tinyWorkload(3))
	if err != nil {
		panic(err)
	}
	f, err := os.CreateTemp("", "trace-*.csv")
	if err != nil {
		panic(err)
	}
	defer os.Remove(f.Name())
	if err := hybridsched.WriteTraceCSV(f, records); err != nil {
		panic(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		panic(err)
	}
	back, err := hybridsched.ReadTraceCSV(f)
	if err != nil {
		panic(err)
	}
	fmt.Println("round-trip preserved:", len(back) == len(records))
	// Output:
	// round-trip preserved: true
}

// ExampleSession_SubmitSource streams a composed workload source into a
// session: a relabeled, load-scaled trace merged with synthetic on-demand
// bursts, drawn lazily as virtual time advances.
func ExampleSession_SubmitSource() {
	// A rigid backbone at 1.5x load, classes reassigned per the paper's
	// §IV-A relabeling; plus the on-demand jobs of a synthetic mix.
	backbone := hybridsched.Scale(
		hybridsched.Relabel(hybridsched.Synthetic(tinyWorkload(1)), hybridsched.PaperRelabel()),
		1.5)
	bursts := hybridsched.Filter(hybridsched.Synthetic(tinyWorkload(2)),
		func(r hybridsched.Record) bool { return r.Class == hybridsched.OnDemand })

	s, err := hybridsched.NewSession(
		hybridsched.WithNodes(512),
		hybridsched.WithMechanism("CUA&SPAA"),
	)
	if err != nil {
		panic(err)
	}
	if err := s.SubmitSource(hybridsched.Merge(backbone, bursts)); err != nil {
		panic(err)
	}
	report, err := s.Run()
	if err != nil {
		panic(err)
	}
	fmt.Println("jobs completed:", report.Jobs > 0)
	fmt.Println("hybrid classes present:", report.OnDemand.Count > 0 && report.Rigid.Count > 0)
	// Output:
	// jobs completed: true
	// hybrid classes present: true
}

// ExampleParseSource compiles the textual source-spec grammar the CLIs and
// sweep grids share.
func ExampleParseSource() {
	src, err := hybridsched.ParseSource("synthetic:seed=1,weeks=1,nodes=512|filter:class=rigid|limit:10")
	if err != nil {
		panic(err)
	}
	records, err := hybridsched.ReadAllSource(src)
	if err != nil {
		panic(err)
	}
	allRigid := true
	for _, r := range records {
		allRigid = allRigid && r.Class == hybridsched.Rigid
	}
	fmt.Println("records:", len(records))
	fmt.Println("all rigid:", allRigid)
	// Output:
	// records: 10
	// all rigid: true
}
