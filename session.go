package hybridsched

import (
	"fmt"
	"sync"

	"hybridsched/internal/checkpoint"
	"hybridsched/internal/faults"
	"hybridsched/internal/job"
	"hybridsched/internal/metrics"
	"hybridsched/internal/nodeset"
	"hybridsched/internal/policy"
	"hybridsched/internal/registry"
	"hybridsched/internal/runner"
	"hybridsched/internal/sim"
	"hybridsched/internal/simtime"
	"hybridsched/internal/trace"
)

// Job is the simulator's job object: the static trace record plus the live
// execution state (current size, lifecycle state, preemption counts).
// Schedulers receive *Job values through their callbacks; snapshots and
// events identify jobs by their IDs.
type Job = job.Job

// NodeSet is the allocation currency of the cluster: a set of node IDs.
type NodeSet = nodeset.Set

// Engine is the discrete-event simulation core. Custom Schedulers drive it
// through its resource primitives (StartOnDemand, PreemptRigid,
// ShrinkMalleable, ScheduleTimer, ...); see the internal/sim documentation.
type Engine = sim.Engine

// Scheduler is the plug-in interface for scheduling logic — the public name
// of the engine's mechanism extension point. Implementations receive the
// engine's callbacks (notices, arrivals, completions, timers) and respond
// using its resource primitives. Embed Baseline to inherit no-op defaults
// and override only the callbacks you need.
type Scheduler = sim.Mechanism

// Baseline is the no-mechanism FCFS/EASY scheduler (paper Table II). It also
// serves as an embeddable base for custom Schedulers.
type Baseline = sim.Baseline

// QueuePolicy orders the waiting queue. Implementations registered with
// RegisterPolicy are usable by name wherever fcfs/sjf/ljf/wfp3 are.
type QueuePolicy = policy.Ordering

// SchedulerConfig carries the system knobs handed to a SchedulerFactory.
type SchedulerConfig = registry.SchedulerConfig

// SchedulerFactory builds a fresh Scheduler instance for one run.
type SchedulerFactory = registry.SchedulerFactory

// Event is one typed scheduling event: a job arrival, advance notice, start,
// end, preemption warning, preemption, shrink, expand, checkpoint rollback,
// or a node-availability change (nodes leaving or rejoining service), stamped
// with the virtual time and the job's identity. Node-availability events
// carry no job: their Job field is -1.
type Event = sim.Event

// EventType classifies an Event.
type EventType = sim.EventType

// The event vocabulary (see the sim package for per-type semantics).
const (
	EventArrival    = sim.EventArrival
	EventNotice     = sim.EventNotice
	EventStart      = sim.EventStart
	EventEnd        = sim.EventEnd
	EventWarning    = sim.EventWarning
	EventPreempt    = sim.EventPreempt
	EventShrink     = sim.EventShrink
	EventExpand     = sim.EventExpand
	EventCheckpoint = sim.EventCheckpoint
	// EventNodeDown reports nodes leaving service: a failure under repair, or
	// a maintenance drain absorbing freed capacity (Nodes = count).
	EventNodeDown = sim.EventNodeDown
	// EventNodeUp reports nodes returning to service after a repair or at the
	// end of a maintenance window.
	EventNodeUp = sim.EventNodeUp
	// EventDrain reports a maintenance window opening (Nodes = requested
	// count; the nodes actually absorbed arrive as EventNodeDown events).
	EventDrain = sim.EventDrain
)

// Observer receives every scheduling event synchronously, in dispatch order,
// as the session processes it. Handlers run on the goroutine driving the
// session and must not call back into it.
type Observer interface {
	HandleEvent(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// HandleEvent calls f.
func (f ObserverFunc) HandleEvent(ev Event) { f(ev) }

// MetricsSnapshot is the live measurement ledger inside a Snapshot.
type MetricsSnapshot = metrics.Snapshot

// JobStatus describes one job inside a Snapshot.
type JobStatus struct {
	ID      int
	Class   JobClass
	State   string // waiting, running, warning
	Size    int    // requested (maximum) size
	CurSize int    // nodes currently held (0 while waiting)
	Submit  int64
	Start   int64 // first start (-1 before)
}

// Snapshot is a point-in-time view of a running session: the virtual clock,
// the cluster occupancy, the waiting queue, the running set, and the live
// metrics ledger. Taking a snapshot never disturbs the simulation.
type Snapshot struct {
	Now int64

	Nodes         int
	FreeNodes     int
	ReservedNodes int
	BusyNodes     int
	DownNodes     int // out of service: failed under repair, or drained

	Submitted  int
	Completed  int
	QueueDepth int

	Running []JobStatus // sorted by job ID
	Queued  []JobStatus // in current queue order

	Metrics MetricsSnapshot
}

// RegisterScheduler makes factory resolvable by name everywhere mechanism
// names are accepted: Simulate, NewSession(WithMechanism), RunSweep, and the
// CLI tools. Registration is append-only and fails on a duplicate or
// built-in name. Factories must return a fresh instance per call — sweep
// cells run concurrently.
func RegisterScheduler(name string, factory SchedulerFactory) error {
	return registry.RegisterScheduler(name, factory)
}

// RegisterPolicy makes ord resolvable by its Name() everywhere queue-policy
// names are accepted. Registration is append-only and fails on a duplicate
// or built-in name. Orderings must be stateless or safe for concurrent use.
func RegisterPolicy(ord QueuePolicy) error { return registry.RegisterPolicy(ord) }

// SchedulerNames returns every scheduler name Simulate, sessions, and sweeps
// resolve: "baseline", the paper's six mechanisms, then registered
// extensions.
func SchedulerNames() []string { return registry.SchedulerNames() }

// PolicyNames returns every resolvable queue-policy name.
func PolicyNames() []string { return registry.PolicyNames() }

// sessionConfig is the resolved option set of one session.
type sessionConfig struct {
	sim        SimulationConfig
	scheduler  Scheduler // overrides sim.Mechanism when non-nil
	maxSimTime int64
	lookahead  int64
	sources    []Source
	observers  []Observer
	faults     *FaultConfig
	drains     []DrainSpec
}

// Option configures a Session under construction.
type Option func(*sessionConfig)

// WithConfig seeds every knob from a legacy SimulationConfig. Options
// applied after it override individual fields.
func WithConfig(cfg SimulationConfig) Option {
	return func(c *sessionConfig) { c.sim = cfg }
}

// WithNodes sets the system size (default 4392, Theta).
func WithNodes(n int) Option {
	return func(c *sessionConfig) { c.sim.Nodes = n }
}

// WithMechanism selects the scheduler by name: "baseline", one of the six
// paper mechanisms, or a name registered with RegisterScheduler. Default
// "CUA&SPAA".
func WithMechanism(name string) Option {
	return func(c *sessionConfig) { c.sim.Mechanism = name }
}

// WithScheduler installs a Scheduler instance directly, bypassing name
// resolution. The instance is wired to this session's engine and must not be
// reused across sessions.
func WithScheduler(s Scheduler) Option {
	return func(c *sessionConfig) { c.scheduler = s }
}

// WithPolicy selects the waiting-queue ordering by name: fcfs (default),
// sjf, ljf, wfp3, or a name registered with RegisterPolicy.
func WithPolicy(name string) Option {
	return func(c *sessionConfig) { c.sim.Policy = name }
}

// WithMTBF sets the system mean time between failures in seconds, driving
// Daly's optimal checkpoint interval (default 24 h).
func WithMTBF(seconds float64) Option {
	return func(c *sessionConfig) { c.sim.MTBF = seconds }
}

// WithCheckpointFreqMult scales the rigid-job checkpoint interval around the
// Daly optimum (Fig. 7): 0.5 checkpoints twice as often, 1.0 (the default)
// is optimal. Unlike the SimulationConfig field, an explicit 0 is honored
// and disables defensive checkpointing entirely.
func WithCheckpointFreqMult(m float64) Option {
	return func(c *sessionConfig) {
		if m <= 0 {
			m = -1 // survives withDefaults as an explicit zero
		}
		c.sim.CheckpointFreqMult = m
	}
}

// WithReleaseThreshold sets how long reserved nodes are held for a no-show
// on-demand job past its estimated arrival (default 600 s). Unlike the
// SimulationConfig field, an explicit 0 is honored: reservations dissolve
// the instant the estimated arrival passes.
func WithReleaseThreshold(seconds int64) Option {
	return func(c *sessionConfig) {
		if seconds <= 0 {
			seconds = -1 // survives withDefaults as an explicit zero
		}
		c.sim.ReleaseThresholdSeconds = seconds
	}
}

// WithBackfillReserved lets backfill jobs run on reserved nodes, to be
// preempted on the on-demand arrival (paper §III-B.1 option).
func WithBackfillReserved(on bool) Option {
	return func(c *sessionConfig) { c.sim.BackfillReserved = on }
}

// WithDirectedReturn toggles the return-to-lender rule (§III-B.3); it is on
// by default.
func WithDirectedReturn(on bool) Option {
	return func(c *sessionConfig) { c.sim.NoDirectedReturn = !on }
}

// WithValidate checks the cluster partition invariant after every event
// (for tests; slows long runs down).
func WithValidate(on bool) Option {
	return func(c *sessionConfig) { c.sim.Validate = on }
}

// WithMaxSimTime aborts the session if the virtual clock passes this bound
// (0 = none). A safety net for user-driven schedulers that might stall.
func WithMaxSimTime(t int64) Option {
	return func(c *sessionConfig) { c.maxSimTime = t }
}

// DefaultSourceLookahead is how far past the next pending event a session
// draws records from its attached Sources, in virtual seconds. The window
// exists for advance notices: a record must be drawn before its notice
// instant passes, and notices precede arrivals by up to the notice lead
// (15–30 minutes in the paper's workloads), so one hour covers them with
// room to spare while still keeping multi-week trace files on disk.
const DefaultSourceLookahead = Hour

// WithSourceLookahead sets how far past the next pending event attached
// Sources are drawn (default DefaultSourceLookahead). Raise it when replaying
// workloads whose advance-notice leads exceed an hour — a record drawn after
// its notice instant has its notice clamped to the current virtual time. An
// explicit 0 (or negative) draws records only once the clock is about to
// reach them, trading notice fidelity for the tightest possible buffering.
func WithSourceLookahead(seconds int64) Option {
	return func(c *sessionConfig) {
		if seconds <= 0 {
			seconds = -1 // survives the default fill as an explicit zero
		}
		c.lookahead = seconds
	}
}

// WithSource attaches src at construction time, equivalent to calling
// SubmitSource on the new session.
func WithSource(src Source) Option {
	return func(c *sessionConfig) { c.sources = append(c.sources, src) }
}

// WithObserver attaches an observer that receives every scheduling event
// synchronously. Multiple observers are delivered to in attach order.
func WithObserver(o Observer) Option {
	return func(c *sessionConfig) {
		if o != nil {
			c.observers = append(c.observers, o)
		}
	}
}

// FaultConfig parameterizes session-level fault injection: the system MTBF
// driving an exponential failure timeline, the seed it derives from, the
// timeline horizon, and the node repair-time distribution (MeanRepair = 0
// keeps the legacy instant-repair shortcut, where capacity never shrinks).
// See the internal faults package for field semantics.
type FaultConfig = faults.Config

// DrainSpec is one scheduled maintenance window: starting at Start (virtual
// seconds), up to Nodes nodes are taken out of service — free nodes
// immediately, more as running jobs release capacity — and everything
// absorbed returns at Start+Duration. Drains never preempt running jobs.
// It aliases the sweep runner's spec type, so SweepSpec.Drains and the
// experiment grids share one definition.
type DrainSpec = runner.DrainSpec

// WithFaults wraps the session's scheduler in the fault injector: node
// failures strike uniformly random nodes on an exponential timeline, each
// interrupting whatever job holds the node, and (with cfg.MeanRepair set)
// removing the node from service for a drawn repair time. The observable
// consequences stream as EventPreempt/EventNodeDown/EventNodeUp events, and
// the run's Report carries FailuresInjected/FailureMisses/DownNodeSeconds.
func WithFaults(cfg FaultConfig) Option {
	return func(c *sessionConfig) { c.faults = &cfg }
}

// WithDrain schedules a maintenance window on the new session (repeatable;
// windows may overlap). Capacity the drain absorbs disappears from every
// scheduler pass until the window closes.
func WithDrain(start, duration int64, nodes int) Option {
	return func(c *sessionConfig) {
		c.drains = append(c.drains, DrainSpec{Start: start, Duration: duration, Nodes: nodes})
	}
}

// eventChanBuffer is the capacity of each Events() channel. Events that
// would overflow a full channel are dropped (see Session.DroppedEvents) so a
// single-goroutine submit/step/drain loop can never deadlock on itself.
const eventChanBuffer = 4096

// Session is an incremental simulation: a live scheduler instance that
// accepts job submissions at any virtual time, advances event by event, and
// exposes its state while running.
//
// The lifecycle is construct → observe → submit/step → snapshot → report:
//
//	s, _ := hybridsched.NewSession(hybridsched.WithMechanism("CUA&SPAA"))
//	events := s.Events()
//	for _, r := range records {
//		s.Submit(r)
//	}
//	for hour := int64(1); ; hour++ {
//		if err := s.RunUntil(hour * 3600); err != nil {
//			break
//		}
//		snap := s.Snapshot()
//		fmt.Printf("t=%dh util=%.1f%% queue=%d\n",
//			hour, 100*snap.Metrics.Utilization, snap.QueueDepth)
//		if snap.Completed == snap.Submitted {
//			break
//		}
//	}
//	report := s.Report()
//
// A Session is not safe for concurrent use: Submit, Step, RunUntil, Run,
// Snapshot, and Events must be called from one goroutine. The exceptions are
// the event-consumption surface: the channels Events returns may be drained
// from any goroutine, and Close and DroppedEvents may be called from any
// goroutine — including concurrently with a run in progress and with readers
// blocked on an Events channel (they observe the close and drain out).
type Session struct {
	eng    *sim.Engine
	plan   func(size int) checkpoint.Plan
	obs    []Observer
	sinkOn bool // engine sink installed (lazily, on first observer)

	// evMu guards the event fan-out surface (chans, drops, closed), the only
	// session state shared across goroutines: emit runs on the driving
	// goroutine while Close/DroppedEvents may be called from any other.
	evMu   sync.Mutex
	chans  []chan Event
	drops  int
	closed bool

	srcs      []sourceState
	lookahead int64

	// ckpt is the construction recipe Checkpoint persists so Restore can
	// rebuild an identical session; nil when the session is not
	// checkpointable by name (WithScheduler instances).
	ckpt *sessionCheckpointInfo
}

// sessionCheckpointInfo is the resolved construction recipe of a session.
type sessionCheckpointInfo struct {
	cfg        SimulationConfig // after withDefaults
	maxSimTime int64
	faults     *FaultConfig
}

// sourceState tracks one attached Source: its buffered head record (drawn
// but not yet submitted), whether the stream is exhausted, and the last
// submit instant seen (to enforce the non-decreasing-order contract).
type sourceState struct {
	src     Source
	pending Record
	has     bool
	done    bool
	last    int64
}

// NewSession builds a live simulation from functional options; the zero
// option set is the paper-faithful default system (4392 nodes, CUA&SPAA,
// FCFS/EASY, 24 h MTBF, Daly-optimal checkpointing). Jobs are injected with
// Submit; the clock advances through Step, RunUntil, or Run.
func NewSession(opts ...Option) (*Session, error) {
	var c sessionConfig
	for _, opt := range opts {
		opt(&c)
	}
	cfg := c.sim.withDefaults()

	ord := registry.PolicyByName(cfg.Policy)
	if ord == nil {
		return nil, fmt.Errorf("hybridsched: unknown policy %q (valid: %v)",
			cfg.Policy, registry.PolicyNames())
	}
	mech := c.scheduler
	if mech == nil {
		m, err := registry.NewScheduler(cfg.Mechanism, registry.SchedulerConfig{
			ReleaseThreshold: cfg.ReleaseThresholdSeconds,
			DirectedReturn:   !cfg.NoDirectedReturn,
			BackfillReserved: cfg.BackfillReserved,
		})
		if err != nil {
			return nil, err
		}
		mech = m
	}
	if fc := c.faults; fc != nil {
		// Validate here: faults.Wrap panics on misuse, but a constructor
		// should fail with an error.
		if fc.MTBF <= 0 {
			return nil, fmt.Errorf("hybridsched: WithFaults requires a positive MTBF, got %g", fc.MTBF)
		}
		if fc.Horizon <= 0 {
			return nil, fmt.Errorf("hybridsched: WithFaults requires a positive Horizon, got %d", fc.Horizon)
		}
		if fc.MeanRepair < 0 {
			return nil, fmt.Errorf("hybridsched: WithFaults MeanRepair must be non-negative, got %g", fc.MeanRepair)
		}
		mech = faults.Wrap(mech, *fc)
	}
	eng, err := sim.New(sim.Config{
		Nodes:            cfg.Nodes,
		Policy:           ord,
		BackfillReserved: cfg.BackfillReserved,
		Validate:         cfg.Validate,
		MaxSimTime:       c.maxSimTime,
	}, nil, mech)
	if err != nil {
		return nil, err
	}
	for _, d := range c.drains {
		if err := eng.ScheduleDrain(d.Start, d.Duration, d.Nodes); err != nil {
			return nil, fmt.Errorf("hybridsched: WithDrain: %w", err)
		}
	}
	lookahead := c.lookahead
	if lookahead == 0 {
		lookahead = DefaultSourceLookahead
	} else if lookahead < 0 {
		lookahead = 0
	}
	s := &Session{
		eng: eng,
		plan: func(size int) checkpoint.Plan {
			return checkpoint.NewPlan(size, cfg.MTBF, cfg.CheckpointFreqMult)
		},
		obs:       c.observers,
		lookahead: lookahead,
	}
	if c.scheduler == nil {
		// Name-resolved schedulers can be rebuilt by Restore; a WithScheduler
		// instance cannot, so such sessions stay non-checkpointable.
		s.ckpt = &sessionCheckpointInfo{cfg: cfg, maxSimTime: c.maxSimTime, faults: c.faults}
	}
	// The sink is installed only once someone listens: an unobserved session
	// pays nothing per event — the engine skips constructing and fanning out
	// Event values entirely.
	if len(s.obs) > 0 {
		s.installSink()
	}
	for _, src := range c.sources {
		if err := s.SubmitSource(src); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// installSink wires the session's fan-out into the engine (idempotent).
func (s *Session) installSink() {
	if !s.sinkOn {
		s.sinkOn = true
		s.eng.SetEventSink(s.emit)
	}
}

// emit fans one engine event out to the observers and event channels.
// After Close the session emits nothing, matching the Close contract.
func (s *Session) emit(ev Event) {
	s.evMu.Lock()
	if s.closed {
		s.evMu.Unlock()
		return
	}
	for _, ch := range s.chans {
		select {
		case ch <- ev:
		default:
			s.drops++
		}
	}
	s.evMu.Unlock()
	// Observers run outside the lock: they execute on the driving goroutine
	// by contract and may take as long as they like without holding Close up.
	for _, o := range s.obs {
		o.HandleEvent(ev)
	}
}

// Submit injects one job into the session. Before the first clock advance
// submissions in any order form the initial trace; afterwards the record's
// Submit time must not lie before the current virtual time (Now). The job's
// advance notice, if any, fires at its notice time (clamped to Now).
//
// Records are validated on submission (MinSize on a fixed-size job is
// normalized to Size first, since the simulator ignores it); malformed
// records fail fast with a descriptive error instead of corrupting the run.
func (s *Session) Submit(r Record) error {
	if r.Class != Malleable {
		// The simulator ignores MinSize for fixed-size classes, and legacy
		// hand-constructed records routinely leave it zero or stale.
		r.MinSize = r.Size
	}
	if err := r.Validate(); err != nil {
		return err
	}
	jobs := trace.Materialize([]Record{r}, s.plan)
	if len(jobs) == 0 || jobs[0] == nil {
		return fmt.Errorf("hybridsched: job %d has unknown class %v", r.ID, r.Class)
	}
	return s.eng.Submit(jobs[0])
}

// SubmitSource attaches src to the session: its records are drawn lazily as
// virtual time advances — each record is submitted just before the clock
// would reach it (plus the source lookahead, see WithSourceLookahead) — so a
// multi-week trace file streams from disk instead of being slurped up front,
// and mid-run arrival semantics are preserved exactly. A record drawn from a
// source behaves identically to the same record passed to Submit at the same
// instant; feeding Synthetic(cfg) to a fresh session and calling Run
// reproduces Simulate(cfg, GenerateWorkload(cfg)) byte for byte.
//
// Sources must yield records in non-decreasing Submit order (wrap unsorted
// inputs in SortSource); an out-of-order record fails the run with a
// submitted-before-the-clock error. Multiple sources may be attached — they
// interleave in time order like Merge, but without Merge's ID renumbering,
// so attach sources with disjoint job IDs or merge them first. More sources
// may be attached while the session runs.
func (s *Session) SubmitSource(src Source) error {
	if src == nil {
		return fmt.Errorf("hybridsched: SubmitSource of nil source")
	}
	s.srcs = append(s.srcs, sourceState{src: src})
	return nil
}

// fill draws the next record into st.pending if the buffer is empty.
func (st *sourceState) fill() error {
	if st.has || st.done {
		return nil
	}
	r, ok, err := st.src.Next()
	if err != nil {
		st.done = true
		return fmt.Errorf("hybridsched: source: %w", err)
	}
	if !ok {
		st.done = true
		return nil
	}
	if r.Submit < st.last {
		st.done = true
		return fmt.Errorf("hybridsched: source yields records out of order: job %d at t=%d after t=%d (wrap unsorted inputs in SortSource)",
			r.ID, r.Submit, st.last)
	}
	st.last = r.Submit
	st.pending, st.has = r, true
	return nil
}

// sourcesDrained reports whether every attached source is exhausted with no
// record left in its buffer.
func (s *Session) sourcesDrained() bool {
	for i := range s.srcs {
		if s.srcs[i].has || !s.srcs[i].done {
			return false
		}
	}
	return true
}

// pump submits every source record due before the next pending event (plus
// the lookahead window, so advance notices are scheduled before their fire
// time). When the engine has no pending events at all, the earliest pending
// record is submitted unconditionally — it is the next thing to happen.
// Sources are consumed in record Submit order, ties resolving to the earlier
// attached source, which keeps lazy submission byte-equivalent to
// pre-submitting the same records in sorted order.
func (s *Session) pump() error {
	for {
		best := -1
		for i := range s.srcs {
			if err := s.srcs[i].fill(); err != nil {
				return err
			}
			if s.srcs[i].has && (best < 0 || s.srcs[i].pending.Submit < s.srcs[best].pending.Submit) {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		if next, ok := s.eng.PeekTime(); ok && s.srcs[best].pending.Submit > next+s.lookahead {
			return nil
		}
		if err := s.Submit(s.srcs[best].pending); err != nil {
			return err
		}
		s.srcs[best].has = false
	}
}

// Now returns the current virtual time in seconds.
func (s *Session) Now() int64 { return s.eng.Now() }

// Step processes the next pending event and returns true, first drawing any
// source records that are due. It returns false when every submitted job has
// completed, no events remain, and every attached source is drained; the
// session stays live, so more jobs (or sources) can be submitted and
// stepping resumed. A drained event queue with incomplete jobs reports a
// stall error.
func (s *Session) Step() (bool, error) {
	if err := s.pump(); err != nil {
		return false, err
	}
	return s.eng.Step()
}

// RunUntil advances the session to virtual time t: every event at or before
// t is processed (drawing source records as they come due) and the clock
// lands exactly on t (so periodic snapshots align with wall boundaries). It
// never runs ahead — events after t stay pending.
func (s *Session) RunUntil(t int64) error {
	for {
		if err := s.pump(); err != nil {
			return err
		}
		next, ok := s.eng.PeekTime()
		if !ok {
			// Drained queue with incomplete jobs is a stall: let the engine
			// run its handling (hold-deadlock dissolution, or the stall
			// error) rather than silently advancing past a wedged schedule.
			if s.eng.CompletedCount() < s.eng.SubmittedCount() {
				more, err := s.eng.Step()
				if err != nil {
					return err
				}
				if more {
					continue
				}
			}
			break
		}
		if next > t {
			break
		}
		if _, err := s.eng.Step(); err != nil {
			return err
		}
	}
	return s.eng.AdvanceTo(t)
}

// Run drives the session until every submitted job has completed and every
// attached source is drained, closes the event channels, and returns the
// final report. With all records submitted up front it is equivalent to
// Simulate; with sources attached it is the streaming equivalent.
func (s *Session) Run() (Report, error) {
	for {
		if err := s.pump(); err != nil {
			s.Close()
			return s.eng.Report(), err
		}
		more, err := s.eng.Step()
		if err != nil {
			s.Close()
			return s.eng.Report(), err
		}
		if !more && s.sourcesDrained() {
			break
		}
	}
	rep := s.eng.Report()
	s.Close()
	return rep, nil
}

// Report computes the measurement report over everything processed so far.
// It is safe to call mid-run; only completed jobs contribute.
func (s *Session) Report() Report { return s.eng.Report() }

// Snapshot captures the live state: clock, cluster occupancy, queue,
// running set, and the metrics ledger. It never disturbs the run.
func (s *Session) Snapshot() Snapshot {
	eng := s.eng
	cl := eng.Cluster()
	snap := Snapshot{
		Now:           eng.Now(),
		Nodes:         eng.Nodes(),
		FreeNodes:     cl.FreeCount(),
		ReservedNodes: cl.TotalReserved(),
		DownNodes:     cl.DownCount(),
		Submitted:     eng.SubmittedCount(),
		Completed:     eng.CompletedCount(),
		QueueDepth:    eng.QueueDepth(),
		Metrics:       eng.Metrics().Snapshot(eng.Now()),
	}
	snap.BusyNodes = snap.Nodes - snap.FreeNodes - snap.ReservedNodes - snap.DownNodes
	for _, j := range eng.RunningAll() {
		snap.Running = append(snap.Running, jobStatus(j))
	}
	for _, j := range eng.QueuedJobs() {
		snap.Queued = append(snap.Queued, jobStatus(j))
	}
	return snap
}

func jobStatus(j *Job) JobStatus {
	return JobStatus{
		ID:      j.ID,
		Class:   j.Class,
		State:   j.State.String(),
		Size:    j.Size,
		CurSize: j.CurSize,
		Submit:  j.SubmitTime,
		Start:   j.StartTime,
	}
}

// Events returns a channel streaming every scheduling event the session
// processes from now on. The channel is closed by Run or Close; calling
// Events on a closed session returns an already-closed channel.
//
// Overflow contract: the channel is buffered to eventChanBuffer (4096)
// events. Delivery never blocks the simulation — an event that finds the
// buffer full is dropped from that channel, not delayed, so a consumer that
// falls more than eventChanBuffer events behind sees a gap in the stream.
// Every such discard is counted by DroppedEvents (summed across all Events
// channels). Consumers that need a loss signal — live dashboards, the schedd
// SSE bridge — should poll DroppedEvents and surface the count; consumers
// that need every event must either drain promptly or attach a synchronous
// Observer instead, which receives the complete stream by construction.
//
// Events must be called from the goroutine driving the session (it installs
// the engine sink); the returned channel may be drained from any goroutine.
func (s *Session) Events() <-chan Event {
	ch := make(chan Event, eventChanBuffer)
	s.evMu.Lock()
	if s.closed {
		s.evMu.Unlock()
		close(ch)
		return ch
	}
	s.chans = append(s.chans, ch)
	s.evMu.Unlock()
	s.installSink()
	return ch
}

// DroppedEvents reports how many events were discarded because an Events
// channel was full, summed over all channels for the session's lifetime.
// It never resets, so a delta between two reads bounds the loss in between.
// Safe to call from any goroutine.
func (s *Session) DroppedEvents() int {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	return s.drops
}

// Close closes all Events channels. The session remains queryable (Report,
// Snapshot) but emits no further events. Close is idempotent and safe to
// call from any goroutine — including concurrently with a second Close,
// with readers blocked on an Events channel (they are woken by the close),
// and with a run in progress on the driving goroutine.
func (s *Session) Close() {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, ch := range s.chans {
		close(ch)
	}
	s.chans = nil
}

// Hour is one simulated hour in seconds, a convenience for RunUntil loops.
const Hour = simtime.Hour
