// Package hybridsched is a trace-driven simulator and scheduling library for
// hybrid HPC workloads, reproducing "Hybrid Workload Scheduling on HPC
// Systems" (Fan, Lan, Rich, Allcock, Papka — IPDPS 2022, arXiv:2109.05412).
//
// A single HPC system serves three application classes at once:
//
//   - rigid jobs: fixed size, periodic defensive checkpoints;
//   - on-demand jobs: time-critical, must start (nearly) instantly, may
//     announce themselves 15–30 minutes ahead of arrival;
//   - malleable jobs: resizable between a minimum and maximum node count
//     with linear speedup.
//
// The library provides the paper's six co-scheduling mechanisms
// ({N, CUA, CUP} × {PAA, SPAA}), a FCFS/EASY-backfilling baseline, a
// calibrated synthetic workload generator modeled on the 2019 Theta (ALCF)
// trace, and the experiment drivers that regenerate every table and figure
// of the paper's evaluation.
//
// # Sessions
//
// The primary entry point is the Session: an incremental, observable
// simulation whose lifecycle is construct → observe → submit/step →
// snapshot → report.
//
//	s, _ := hybridsched.NewSession(
//		hybridsched.WithMechanism("CUA&SPAA"),
//		hybridsched.WithNodes(512),
//	)
//	events := s.Events()          // typed scheduling-event stream
//	for _, r := range records {
//		s.Submit(r)           // jobs may also arrive mid-run
//	}
//	s.RunUntil(24 * hybridsched.Hour)
//	snap := s.Snapshot()          // live cluster/queue/metrics state
//	report, _ := s.Run()          // drain to completion
//
// Jobs can be submitted at any virtual time — including while the
// simulation runs, the online-scheduling scenario the paper's on-demand
// class models — and Observers (or the channel adapter Events) see every
// arrival, notice, start, end, warning, preemption, shrink, expand, and
// checkpoint rollback as it happens.
//
// # Workload sources
//
// Every way jobs enter a simulation is one composable abstraction: a Source
// yields records in time order, and sources compose. Synthetic wraps the
// calibrated Theta generator, FromCSV/FromSWF/OpenSource stream trace files
// (a multi-week log is never slurped into memory), FromRecords adapts hand-
// built slices, and the combinators Merge, Scale, Relabel, Filter, Shift,
// and Limit transform them — Relabel being the paper's §IV-A trick of
// reassigning classes project-by-project, the supported way to promote
// rigid SWF imports to on-demand or malleable jobs. Sessions consume
// sources lazily via SubmitSource (or the WithSource option); sweeps name
// them declaratively via SweepSpec.Source; CLIs and grids share the
// ParseSource spec grammar ("swf:theta.swf|relabel:paper|scale:1.2"); and
// RegisterSource adds user-defined spec heads, mirroring the scheduler and
// policy registries.
//
// # Batch simulation and migration
//
// Simulate remains the one-call batch entry point:
//
//	records, _ := hybridsched.GenerateWorkload(hybridsched.WorkloadConfig{Seed: 1, Weeks: 1})
//	report, _ := hybridsched.Simulate(hybridsched.SimulationConfig{Mechanism: "CUA&SPAA"}, records)
//	fmt.Printf("utilization %.1f%%, instant starts %.1f%%\n",
//		100*report.Utilization, 100*report.InstantStartRate)
//
// Simulate is a thin wrapper over a Session (construct, pre-submit every
// record, Run), so both paths produce identical reports; callers with valid
// traces need no changes (records are now validated on submission — see
// Simulate). Code that wants live observation, mid-run submission, or
// periodic snapshots should migrate to NewSession — Simulate(cfg, records)
// is exactly NewSession(WithConfig(cfg)) + Submit loop + Run().
//
// # Degraded capacity
//
// Node availability is part of the engine model: WithFaults injects node
// failures (each strikes a uniformly random node, interrupts whatever holds
// it, and removes the node for a drawn repair time) and WithDrain schedules
// maintenance windows that absorb free capacity without preempting. Both
// shrink the pool every scheduler pass plans against, stream as typed
// EventNodeDown/EventNodeUp/EventDrain events, and surface telemetry in the
// Report (FailuresInjected, FailureMisses, DownNodeSeconds, and the
// Unavailable utilization share). Sweeps take the same knobs per cell via
// SweepSpec, and cmd/hybridsim / cmd/expdriver expose -mtbf, -repair, and
// -drain flags (expdriver's "resilience" experiment sweeps the grid).
//
// # Extension points
//
// Scheduling logic and queue orderings are pluggable by name:
// RegisterScheduler adds a user-defined Scheduler (the public face of the
// engine's mechanism interface; embed Baseline for no-op defaults) and
// RegisterPolicy adds a QueuePolicy. Registered names work everywhere
// built-ins do: Simulate, NewSession, RunSweep, and the CLI tools.
//
// # Sweeps
//
// RunSweep executes whole experiment grids — (mechanism × workload × seed ×
// config) cells — across a bounded worker pool with deterministic, grid-
// ordered results: the same grid serializes to byte-identical JSON/CSV for
// any worker count, identical workload configs share one generated trace,
// and a failing cell never aborts its siblings.
//
// See examples/ for runnable scenarios (examples/livedashboard drives a
// Session) and cmd/ for the CLI tools.
package hybridsched

import (
	"io"

	"hybridsched/internal/exp"
	"hybridsched/internal/job"
	"hybridsched/internal/metrics"
	"hybridsched/internal/simtime"
	"hybridsched/internal/trace"
	"hybridsched/internal/workload"
)

// Job classes (re-exported from the job model).
type JobClass = job.Class

// The three application classes of the paper.
const (
	Rigid     = job.Rigid
	OnDemand  = job.OnDemand
	Malleable = job.Malleable
)

// NoticeCategory classifies how an on-demand job's advance notice relates to
// its actual arrival (paper Fig. 1).
type NoticeCategory = job.NoticeCategory

// The four notice categories.
const (
	NoNotice       = job.NoNotice
	AccurateNotice = job.AccurateNotice
	ArriveEarly    = job.ArriveEarly
	ArriveLate     = job.ArriveLate
)

// Record is one job of a trace (native CSV schema).
type Record = trace.Record

// Report carries the measurements of one simulation run: turnaround
// statistics per class, the instant-start rates, preemption ratios, the
// exact node-second utilization ledger, and the per-job outcomes.
type Report = metrics.Report

// JobResult is the outcome of one completed job.
type JobResult = metrics.JobResult

// WorkloadConfig parameterizes the synthetic Theta-model generator. The zero
// value (plus a Seed) produces the paper-faithful default workload.
type WorkloadConfig = workload.Config

// NoticeMix is the distribution of on-demand jobs over the four advance-
// notice categories, in the order: none, accurate, early, late (Table III).
type NoticeMix = workload.NoticeMix

// The five advance-notice mixes of Table III.
var (
	W1 = workload.W1
	W2 = workload.W2
	W3 = workload.W3
	W4 = workload.W4
	W5 = workload.W5
)

// MixByName returns a Table III mix by its paper name ("W1".."W5").
func MixByName(name string) (NoticeMix, error) { return workload.MixByName(name) }

// ExperimentOptions scale the paper-reproduction experiment drivers.
type ExperimentOptions = exp.Options

// Mechanisms returns the built-in scheduler names: "baseline" (plain
// FCFS/EASY, Table II) plus the paper's six mechanisms in order
// ("N&PAA", "N&SPAA", "CUA&PAA", "CUA&SPAA", "CUP&PAA", "CUP&SPAA").
// SchedulerNames additionally includes user-registered schedulers.
func Mechanisms() []string { return exp.Mechanisms() }

// SimulationConfig selects the scheduler and system model for Simulate.
type SimulationConfig struct {
	// Nodes is the system size (default 4392, Theta).
	Nodes int
	// Mechanism is one of Mechanisms() (default "CUA&SPAA").
	Mechanism string
	// Policy orders the waiting queue: fcfs (default), sjf, ljf, wfp3.
	Policy string
	// MTBF is the system mean time between failures in seconds, driving
	// Daly's optimal checkpoint interval for rigid jobs (default 24 h).
	MTBF float64
	// CheckpointFreqMult scales the checkpoint interval around the Daly
	// optimum: 0.5 checkpoints twice as often (Fig. 7). Zero takes the
	// default 1.0; a negative value expresses an explicit zero (defensive
	// checkpointing disabled). The Session option WithCheckpointFreqMult
	// expresses zero directly.
	CheckpointFreqMult float64
	// BackfillReserved lets backfill jobs run on reserved nodes and be
	// preempted on the on-demand arrival (paper §III-B.1 option).
	BackfillReserved bool
	// NoDirectedReturn disables the return-to-lender rule (§III-B.3);
	// returned nodes drop into the common pool instead.
	NoDirectedReturn bool
	// ReleaseThresholdSeconds holds reserved nodes for a no-show on-demand
	// job this long past its estimated arrival. Zero takes the default
	// 600 s; a negative value expresses an explicit zero-second threshold
	// (release the instant the estimated arrival passes). The Session
	// option WithReleaseThreshold expresses zero directly.
	ReleaseThresholdSeconds int64
	// Validate checks the cluster partition invariant after every event
	// (for tests; slows long runs down).
	Validate bool
}

func (c SimulationConfig) withDefaults() SimulationConfig {
	if c.Nodes == 0 {
		c.Nodes = 4392
	}
	if c.Mechanism == "" {
		c.Mechanism = "CUA&SPAA"
	}
	if c.Policy == "" {
		c.Policy = "fcfs"
	}
	if c.MTBF == 0 {
		c.MTBF = 24 * float64(simtime.Hour)
	}
	// Zero-ish knobs use a negative sentinel for an explicitly-set zero, so
	// "checkpoint never" and "release reservations immediately" stay
	// expressible (the zero value still means "paper default").
	if c.CheckpointFreqMult == 0 {
		c.CheckpointFreqMult = 1.0
	} else if c.CheckpointFreqMult < 0 {
		c.CheckpointFreqMult = 0
	}
	return c
}

// GenerateWorkload synthesizes a hybrid job trace; the same config and seed
// always produce the same trace.
func GenerateWorkload(cfg WorkloadConfig) ([]Record, error) {
	return workload.Generate(cfg)
}

// Simulate replays records under cfg and returns the measurement report.
//
// It is a thin wrapper over the Session API — NewSession with the same
// configuration, every record pre-submitted, and Run — and produces reports
// identical to the incremental path. Records are now validated on
// submission (see Session.Submit): malformed records that earlier versions
// silently accepted fail fast with a descriptive error. New code that needs
// mid-run observation, online submission, or custom schedulers should use
// NewSession directly; Simulate remains the one-call batch entry point.
func Simulate(cfg SimulationConfig, records []Record) (Report, error) {
	s, err := NewSession(WithConfig(cfg))
	if err != nil {
		return Report{}, err
	}
	for _, r := range records {
		if err := s.Submit(r); err != nil {
			return Report{}, err
		}
	}
	return s.Run()
}

// ReadTraceCSV parses a trace in the native CSV schema.
func ReadTraceCSV(r io.Reader) ([]Record, error) { return trace.ReadCSV(r) }

// WriteTraceCSV writes a trace in the native CSV schema.
func WriteTraceCSV(w io.Writer, records []Record) error { return trace.WriteCSV(w, records) }

// ReadSWF imports a Standard Workload Format trace; every job arrives rigid
// (SWF carries no hybrid extensions — compose Relabel to reassign classes).
// Use ReadSWFSummary to additionally learn what the importer skipped and
// defaulted, or FromSWF to stream the file instead of slurping it.
func ReadSWF(r io.Reader) ([]Record, error) { return trace.ReadSWF(r) }

// WriteSWF exports a trace as SWF (hybrid extensions are dropped).
func WriteSWF(w io.Writer, records []Record) error { return trace.WriteSWF(w, records) }

// FormatDuration renders virtual-time seconds compactly, e.g. "15.6h".
func FormatDuration(seconds int64) string { return simtime.Format(seconds) }
