package hybridsched

import (
	"sync"
	"testing"
)

// TestEventsSlowConsumerOverflow pins the DroppedEvents overflow contract
// the schedd SSE bridge depends on: a consumer that never drains loses
// exactly the events past the channel buffer — the first eventChanBuffer
// events arrive intact and in dispatch order, the excess is counted by
// DroppedEvents, and the simulation itself never blocks or loses state.
func TestEventsSlowConsumerOverflow(t *testing.T) {
	// A synchronous observer sees the complete stream by construction; it is
	// the reference the channel's surviving prefix is compared against.
	var full []Event
	s := mustSession(t, WithNodes(4096), WithMechanism("baseline"),
		WithObserver(ObserverFunc(func(ev Event) { full = append(full, ev) })))

	ch := s.Events() // never drained until the run is over

	// Each rigid job emits at least arrival+start+end; 2000 jobs overflow
	// the 4096-slot buffer more than once over.
	const jobs = 2000
	for i := 1; i <= jobs; i++ {
		r := Record{ID: i, Class: Rigid, Submit: int64(i), Size: 1, Work: 60, Estimate: 120}
		if err := s.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}

	var got []Event
	for ev := range ch { // Run closed the channel
		got = append(got, ev)
	}
	if len(full) <= eventChanBuffer {
		t.Fatalf("workload emitted only %d events; need > %d to exercise overflow", len(full), eventChanBuffer)
	}
	if len(got) != eventChanBuffer {
		t.Fatalf("undrained channel delivered %d events, want exactly the %d-slot buffer", len(got), eventChanBuffer)
	}
	if drops := s.DroppedEvents(); drops != len(full)-eventChanBuffer {
		t.Fatalf("DroppedEvents() = %d, want %d (%d emitted - %d buffered)",
			drops, len(full)-eventChanBuffer, len(full), eventChanBuffer)
	}
	// The survivors are the stream's prefix, not an arbitrary sample: drops
	// discard the newest event, never reorder or displace buffered ones.
	for i, ev := range got {
		if ev != full[i] {
			t.Fatalf("event %d: channel saw %+v, observer saw %+v", i, ev, full[i])
		}
	}
}

// TestCloseConcurrent pins the server-teardown contract: Close may race
// another Close, blocked Events readers, and a run in progress, without
// panics, double closes, or lost channel closes (run under -race in CI).
func TestCloseConcurrent(t *testing.T) {
	s := mustSession(t, WithNodes(64), WithMechanism("baseline"))
	for i := 1; i <= 500; i++ {
		r := Record{ID: i, Class: Rigid, Submit: int64(i), Size: 1, Work: 60, Estimate: 120}
		if err := s.Submit(r); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	// Blocked readers: each drains its channel to exhaustion; Close must
	// wake them all.
	for i := 0; i < 4; i++ {
		ch := s.Events()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range ch {
			}
		}()
	}
	// The driving goroutine advances the run while Close lands mid-flight.
	runErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		var err error
		for hour := int64(1); hour <= 10 && err == nil; hour++ {
			err = s.RunUntil(hour * Hour)
		}
		runErr <- err
	}()
	// Concurrent Closes from several goroutines: idempotent, no double close.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Close()
		}()
	}
	wg.Wait()
	if err := <-runErr; err != nil {
		t.Fatalf("run alongside concurrent Close: %v", err)
	}

	// Close after Close is still fine, and a post-Close Events channel is
	// born closed.
	s.Close()
	if _, ok := <-s.Events(); ok {
		t.Fatal("Events() on a closed session must return a closed channel")
	}
	// The session stays queryable after teardown.
	if snap := s.Snapshot(); snap.Submitted != 500 {
		t.Fatalf("post-Close Snapshot.Submitted = %d, want 500", snap.Submitted)
	}
}

// mustSession builds a session or fails the test.
func mustSession(t *testing.T, opts ...Option) *Session {
	t.Helper()
	s, err := NewSession(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
