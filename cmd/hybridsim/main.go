// Command hybridsim replays a job trace under one scheduling mechanism and
// prints the paper's evaluation metrics (§IV-D): per-class turnaround,
// on-demand instant-start rates, preemption ratios, and the node-second
// utilization ledger. With -mechs/-seeds it becomes a sweep: the grid of
// (mechanism × seed) cells runs in parallel through the sweep runner with
// deterministic, grid-ordered output.
//
// Usage:
//
//	hybridsim -trace trace.csv -mech CUA\&SPAA
//	hybridsim -seed 1 -weeks 4 -mech N\&PAA             # generate on the fly
//	hybridsim -trace jobs.swf -format swf -mech baseline
//	hybridsim -mechs all -seeds 3 -workers 8 -out csv   # parallel sweep
//	hybridsim -source 'swf:theta.swf|relabel:paper|scale:1.2' -mechs all
//	hybridsim -mtbf 6h -repair 1h -mechs all            # degraded capacity
//	hybridsim -drain '24h+4h:512' -mech baseline        # maintenance window
//	hybridsim -mechs all -out csv -checkpoint ckpt/     # resumable sweep
//	hybridsim -mechs all -out csv -restore ckpt/        # continue after a kill
//
// -mtbf injects node failures at the given system MTBF (each strikes one
// uniformly random node, interrupting whatever holds it); -repair keeps the
// failed node out of service for a drawn repair time (0 = instant repair);
// -drain schedules maintenance windows that absorb free capacity between
// start and start+duration. All three apply to every path (-trace, -source,
// and generated sweeps), and fault telemetry lands in the failures /
// failure_misses / unavailable_frac output columns.
//
// -source accepts the source-spec grammar (csv:/swf:/synthetic: heads,
// relabel/scale/shift/limit/filter transforms, '+' merges); the named
// workload replaces both -trace and synthetic generation, runs through the
// sweep runner (so -mechs/-workers/-out all apply), and is materialized
// once no matter how many mechanisms replay it.
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"
	"time"

	"hybridsched"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "input trace (empty: generate synthetically)")
		srcSpec   = flag.String("source", "", "workload source spec, e.g. 'swf:theta.swf|relabel:paper|scale:1.2' (overrides -trace and generation; -seed/-seeds/-weeks/-mix ignored)")
		format    = flag.String("format", "csv", "trace format: csv or swf")
		mech      = flag.String("mech", "CUA&SPAA", "scheduler: baseline, the six paper mechanisms (e.g. CUA&SPAA), or a registered name")
		mechs     = flag.String("mechs", "", "sweep schedulers: comma-separated names or \"all\" (overrides -mech)")
		pol       = flag.String("policy", "fcfs", "queue policy: fcfs, sjf, ljf, wfp3, or a registered name")
		nodes     = flag.Int("nodes", 4392, "system size in nodes")
		seed      = flag.Int64("seed", 1, "first workload seed when generating")
		seeds     = flag.Int("seeds", 1, "seeds per mechanism when generating (sweep mode)")
		weeks     = flag.Int("weeks", 4, "workload weeks when generating")
		mixName   = flag.String("mix", "W5", "notice mix W1..W5 when generating")
		ckptMult  = flag.Float64("ckpt", 1.0, "checkpoint interval multiplier (0.5 = twice as frequent)")
		bfres     = flag.Bool("backfill-reserved", false, "backfill jobs onto reserved nodes (evicted on arrival)")
		noReturn  = flag.Bool("no-directed-return", false, "drop returned lease nodes into the common pool")
		mtbf      = flag.Duration("mtbf", 0, "inject node failures at this system MTBF, e.g. 6h (0 = no injection; also drives the Daly checkpoint plans)")
		repair    = flag.Duration("repair", 0, "mean node repair time, e.g. 1h (0 = instant repair: capacity never shrinks)")
		drain     = flag.String("drain", "", "maintenance windows 'start+duration:nodes', e.g. '24h+4h:512,96h+2h:256'")
		workers   = flag.Int("workers", 0, "parallel sweep workers (0 = all CPU cores)")
		out       = flag.String("out", "text", "output format: text, json, csv")
		quiet     = flag.Bool("q", false, "suppress sweep progress messages")
		ckptDir   = flag.String("checkpoint", "", "persist per-cell sweep progress (snapshots + finished reports) into this directory; a killed sweep resumes with -restore")
		ckptEvery = flag.Int("checkpoint-every", 0, "simulation events between cell snapshots (0 = default)")
		resumeDir = flag.String("restore", "", "resume a sweep from this checkpoint directory: finished cells are skipped, interrupted cells continue from their snapshots (implies -checkpoint into it)")
	)
	flag.Parse()

	if *seeds < 1 {
		fatal(fmt.Errorf("-seeds must be >= 1, got %d", *seeds))
	}
	switch *out {
	case "text", "json", "csv":
	default:
		fatal(fmt.Errorf("unknown output format %q (want text, json, or csv)", *out))
	}
	mechList := []string{*mech}
	if *mechs != "" {
		if *mechs == "all" {
			mechList = hybridsched.Mechanisms()
		} else {
			mechList = strings.Split(*mechs, ",")
			for i := range mechList {
				mechList[i] = strings.TrimSpace(mechList[i])
				if mechList[i] == "" {
					fatalUsage(fmt.Errorf("empty mechanism name in -mechs %q", *mechs))
				}
			}
		}
	}
	// Validate scheduler and policy names against the registries up front: a
	// bad name must not cost a full trace generation before erroring.
	validMechs := hybridsched.SchedulerNames()
	for _, m := range mechList {
		if !slices.Contains(validMechs, m) {
			fatalUsage(fmt.Errorf("unknown scheduler %q (valid: %s)",
				m, strings.Join(validMechs, ", ")))
		}
	}
	if validPols := hybridsched.PolicyNames(); !slices.Contains(validPols, *pol) {
		fatalUsage(fmt.Errorf("unknown policy %q (valid: %s)",
			*pol, strings.Join(validPols, ", ")))
	}
	if *mtbf < 0 || *repair < 0 {
		fatalUsage(fmt.Errorf("-mtbf and -repair must be non-negative"))
	}
	if *repair > 0 && *mtbf == 0 {
		fatalUsage(fmt.Errorf("-repair requires -mtbf (no failures to repair)"))
	}
	drains, err := hybridsched.ParseDrains(*drain)
	if err != nil {
		fatalUsage(err)
	}
	if *resumeDir != "" {
		if *ckptDir != "" && *ckptDir != *resumeDir {
			fatalUsage(fmt.Errorf("-checkpoint %q and -restore %q name different directories", *ckptDir, *resumeDir))
		}
		*ckptDir = *resumeDir
	}
	sweepOpt := hybridsched.SweepOptions{
		Workers:         *workers,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		Resume:          *resumeDir != "",
	}
	simCfg := func(m string) hybridsched.SimulationConfig {
		cfg := hybridsched.SimulationConfig{
			Nodes:              *nodes,
			Mechanism:          m,
			Policy:             *pol,
			CheckpointFreqMult: *ckptMult,
			BackfillReserved:   *bfres,
			NoDirectedReturn:   *noReturn,
		}
		if *mtbf > 0 {
			// Checkpoint for the failure rate actually injected.
			cfg.MTBF = mtbf.Seconds()
		}
		return cfg
	}
	fillResilience := func(sp *hybridsched.SweepSpec) {
		sp.FaultMTBF = mtbf.Seconds()
		sp.FaultMeanRepair = repair.Seconds()
		sp.Drains = drains
	}

	// A source spec runs through the sweep runner: one cell per mechanism,
	// all sharing a single materialization of the spec.
	if *srcSpec != "" {
		if *tracePath != "" {
			fatalUsage(fmt.Errorf("-source and -trace are mutually exclusive"))
		}
		// Parse now so a typo costs nothing (file heads also open here).
		if _, err := hybridsched.ParseSource(*srcSpec); err != nil {
			fatalUsage(err)
		}
		var specs []hybridsched.SweepSpec
		for _, m := range mechList {
			sp := hybridsched.SweepSpec{
				Label:  m,
				Source: *srcSpec,
				Sim:    simCfg(m),
			}
			fillResilience(&sp)
			specs = append(specs, sp)
		}
		runSweep(specs, sweepOpt, *out, *pol, *quiet)
		return
	}

	// A fixed input trace can't go through the generator-driven sweep
	// runner: replay it serially under each requested mechanism.
	if *tracePath != "" {
		if *out != "text" {
			fatal(fmt.Errorf("-out %s requires generated workloads (drop -trace)", *out))
		}
		if *ckptDir != "" {
			fatalUsage(fmt.Errorf("-checkpoint/-restore apply to sweeps; for a fixed trace use the Session Checkpoint/Restore API"))
		}
		records, err := readTrace(*tracePath, *format)
		if err != nil {
			fatal(err)
		}
		for i, m := range mechList {
			if i > 0 {
				fmt.Println()
			}
			rep, err := replay(simCfg(m), records, *mtbf, *repair, drains)
			if err != nil {
				fatal(err)
			}
			printReport(m, *pol, rep)
		}
		return
	}

	mix, err := hybridsched.MixByName(*mixName)
	if err != nil {
		fatal(err)
	}
	var specs []hybridsched.SweepSpec
	for _, m := range mechList {
		for s := 0; s < *seeds; s++ {
			sp := hybridsched.SweepSpec{
				Label: m,
				Workload: hybridsched.WorkloadConfig{
					Seed: *seed + int64(s), Weeks: *weeks, Nodes: *nodes, Mix: mix,
				},
				Sim: simCfg(m),
			}
			fillResilience(&sp)
			specs = append(specs, sp)
		}
	}
	runSweep(specs, sweepOpt, *out, *pol, *quiet)
}

// runSweep executes the grid and emits it in the requested format.
func runSweep(specs []hybridsched.SweepSpec, opt hybridsched.SweepOptions, out, pol string, quiet bool) {
	if !quiet && len(specs) > 1 {
		opt.Progress = os.Stderr
	}
	report, err := hybridsched.RunSweep(specs, opt)
	if err != nil {
		fatal(err)
	}
	switch out {
	case "json":
		err = report.WriteJSON(os.Stdout)
	case "csv":
		err = report.WriteCSV(os.Stdout)
	case "text":
		for i, res := range report.Results {
			if i > 0 {
				fmt.Println()
			}
			printReport(res.Spec.Label, pol, res.Report)
		}
	}
	if err != nil {
		fatal(err)
	}
}

// replay runs a fixed trace under cfg through a session, wiring in fault
// injection and maintenance windows when requested (Simulate has no
// availability knobs; without them this is exactly Simulate).
func replay(cfg hybridsched.SimulationConfig, records []hybridsched.Record,
	mtbf, repair time.Duration, drains []hybridsched.DrainSpec) (hybridsched.Report, error) {
	opts := []hybridsched.Option{hybridsched.WithConfig(cfg)}
	if mtbf > 0 {
		// The failure timeline must cover the whole replay: span of the
		// trace's submissions plus generous tail room for the queue to drain.
		var span int64
		for _, r := range records {
			if r.Submit > span {
				span = r.Submit
			}
		}
		opts = append(opts, hybridsched.WithFaults(hybridsched.FaultConfig{
			MTBF:       mtbf.Seconds(),
			Seed:       1,
			Horizon:    span + 4*7*24*hybridsched.Hour,
			MeanRepair: repair.Seconds(),
		}))
	}
	for _, d := range drains {
		opts = append(opts, hybridsched.WithDrain(d.Start, d.Duration, d.Nodes))
	}
	s, err := hybridsched.NewSession(opts...)
	if err != nil {
		return hybridsched.Report{}, err
	}
	for _, r := range records {
		if err := s.Submit(r); err != nil {
			return hybridsched.Report{}, err
		}
	}
	return s.Run()
}

// readTrace loads a fixed input trace in the native CSV or SWF schema. SWF
// imports print their summary to stderr — every SWF job arrives rigid, and
// the defaulted fields deserve a mention rather than silence.
func readTrace(path, format string) ([]hybridsched.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if format == "swf" {
		records, sum, err := hybridsched.ReadSWFSummary(f)
		if err == nil {
			fmt.Fprintf(os.Stderr, "hybridsim: swf import: %s\n", sum)
		}
		return records, err
	}
	return hybridsched.ReadTraceCSV(f)
}

// printReport writes the single-run metrics block.
func printReport(mech, pol string, rep hybridsched.Report) {
	fmt.Printf("mechanism           %s (policy %s)\n", mech, pol)
	fmt.Printf("jobs                %d (rigid %d, on-demand %d, malleable %d)\n",
		rep.Jobs, rep.Rigid.Count, rep.OnDemand.Count, rep.Malleable.Count)
	fmt.Printf("makespan            %s\n", hybridsched.FormatDuration(rep.Makespan))
	fmt.Printf("avg turnaround      %.1f h (rigid %.1f, on-demand %.1f, malleable %.1f)\n",
		rep.All.MeanTurnaroundH, rep.Rigid.MeanTurnaroundH,
		rep.OnDemand.MeanTurnaroundH, rep.Malleable.MeanTurnaroundH)
	fmt.Printf("system utilization  %.2f%%\n", 100*rep.Utilization)
	fmt.Printf("  useful %.2f%%  setup %.2f%%  ckpt %.2f%%  lost %.2f%%  reserved-idle %.2f%%  idle %.2f%%\n",
		100*rep.Breakdown.Useful, 100*rep.Breakdown.Setup, 100*rep.Breakdown.Ckpt,
		100*rep.Breakdown.Lost, 100*rep.Breakdown.ReservedIdle, 100*rep.Breakdown.Idle)
	fmt.Printf("instant start       %.2f%% (strict zero-delay %.2f%%, mean delay %.0fs)\n",
		100*rep.InstantStartRate, 100*rep.StrictInstantStartRate, rep.MeanStartDelay)
	fmt.Printf("preemption ratio    rigid %.2f%%  malleable %.2f%%\n",
		100*rep.Rigid.PreemptRatio, 100*rep.Malleable.PreemptRatio)
	if rep.FailuresInjected+rep.FailureMisses > 0 || rep.DownNodeSeconds > 0 {
		fmt.Printf("availability        %d failures struck, %d missed; unavailable %.2f%% (%s node-downtime)\n",
			rep.FailuresInjected, rep.FailureMisses,
			100*rep.Breakdown.Unavailable, hybridsched.FormatDuration(rep.DownNodeSeconds))
	}
	if rep.DecisionCount > 0 {
		fmt.Printf("decision latency    mean %.4f ms, max %.4f ms over %d decisions\n",
			rep.MeanDecisionMs, rep.MaxDecisionMs, rep.DecisionCount)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hybridsim:", err)
	os.Exit(1)
}

// fatalUsage reports a bad flag value and exits 2, the conventional
// usage-error status, before any expensive work has been done.
func fatalUsage(err error) {
	fmt.Fprintln(os.Stderr, "hybridsim:", err)
	os.Exit(2)
}
