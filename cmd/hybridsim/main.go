// Command hybridsim replays a job trace under one scheduling mechanism and
// prints the paper's evaluation metrics (§IV-D): per-class turnaround,
// on-demand instant-start rates, preemption ratios, and the node-second
// utilization ledger.
//
// Usage:
//
//	hybridsim -trace trace.csv -mech CUA\&SPAA
//	hybridsim -seed 1 -weeks 4 -mech N\&PAA          # generate on the fly
//	hybridsim -trace jobs.swf -format swf -mech baseline
package main

import (
	"flag"
	"fmt"
	"os"

	"hybridsched"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "input trace (empty: generate synthetically)")
		format    = flag.String("format", "csv", "trace format: csv or swf")
		mech      = flag.String("mech", "CUA&SPAA", "scheduler: baseline, N&PAA, N&SPAA, CUA&PAA, CUA&SPAA, CUP&PAA, CUP&SPAA")
		pol       = flag.String("policy", "fcfs", "queue policy: fcfs, sjf, ljf, wfp3")
		nodes     = flag.Int("nodes", 4392, "system size in nodes")
		seed      = flag.Int64("seed", 1, "workload seed when generating")
		weeks     = flag.Int("weeks", 4, "workload weeks when generating")
		mixName   = flag.String("mix", "W5", "notice mix W1..W5 when generating")
		ckptMult  = flag.Float64("ckpt", 1.0, "checkpoint interval multiplier (0.5 = twice as frequent)")
		bfres     = flag.Bool("backfill-reserved", false, "backfill jobs onto reserved nodes (evicted on arrival)")
		noReturn  = flag.Bool("no-directed-return", false, "drop returned lease nodes into the common pool")
	)
	flag.Parse()

	var records []hybridsched.Record
	var err error
	if *tracePath != "" {
		f, ferr := os.Open(*tracePath)
		if ferr != nil {
			fatal(ferr)
		}
		defer f.Close()
		if *format == "swf" {
			records, err = hybridsched.ReadSWF(f)
		} else {
			records, err = hybridsched.ReadTraceCSV(f)
		}
	} else {
		var mix hybridsched.NoticeMix
		switch *mixName {
		case "W1":
			mix = hybridsched.W1
		case "W2":
			mix = hybridsched.W2
		case "W3":
			mix = hybridsched.W3
		case "W4":
			mix = hybridsched.W4
		default:
			mix = hybridsched.W5
		}
		records, err = hybridsched.GenerateWorkload(hybridsched.WorkloadConfig{
			Seed: *seed, Weeks: *weeks, Nodes: *nodes, Mix: mix,
		})
	}
	if err != nil {
		fatal(err)
	}

	rep, err := hybridsched.Simulate(hybridsched.SimulationConfig{
		Nodes:              *nodes,
		Mechanism:          *mech,
		Policy:             *pol,
		CheckpointFreqMult: *ckptMult,
		BackfillReserved:   *bfres,
		NoDirectedReturn:   *noReturn,
	}, records)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("mechanism           %s (policy %s)\n", *mech, *pol)
	fmt.Printf("jobs                %d (rigid %d, on-demand %d, malleable %d)\n",
		rep.Jobs, rep.Rigid.Count, rep.OnDemand.Count, rep.Malleable.Count)
	fmt.Printf("makespan            %s\n", hybridsched.FormatDuration(rep.Makespan))
	fmt.Printf("avg turnaround      %.1f h (rigid %.1f, on-demand %.1f, malleable %.1f)\n",
		rep.All.MeanTurnaroundH, rep.Rigid.MeanTurnaroundH,
		rep.OnDemand.MeanTurnaroundH, rep.Malleable.MeanTurnaroundH)
	fmt.Printf("system utilization  %.2f%%\n", 100*rep.Utilization)
	fmt.Printf("  useful %.2f%%  setup %.2f%%  ckpt %.2f%%  lost %.2f%%  reserved-idle %.2f%%  idle %.2f%%\n",
		100*rep.Breakdown.Useful, 100*rep.Breakdown.Setup, 100*rep.Breakdown.Ckpt,
		100*rep.Breakdown.Lost, 100*rep.Breakdown.ReservedIdle, 100*rep.Breakdown.Idle)
	fmt.Printf("instant start       %.2f%% (strict zero-delay %.2f%%, mean delay %.0fs)\n",
		100*rep.InstantStartRate, 100*rep.StrictInstantStartRate, rep.MeanStartDelay)
	fmt.Printf("preemption ratio    rigid %.2f%%  malleable %.2f%%\n",
		100*rep.Rigid.PreemptRatio, 100*rep.Malleable.PreemptRatio)
	if rep.DecisionCount > 0 {
		fmt.Printf("decision latency    mean %.4f ms, max %.4f ms over %d decisions\n",
			rep.MeanDecisionMs, rep.MaxDecisionMs, rep.DecisionCount)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hybridsim:", err)
	os.Exit(1)
}
