// Schedd is the scheduling-as-a-service daemon: it hosts many concurrent
// hybridsched simulation sessions (one per tenant experiment) behind an
// HTTP/JSON API, streams scheduling events over SSE, exports Prometheus
// metrics at /metrics, and enforces per-tenant quotas with explicit 429
// backpressure.
//
//	schedd -addr :8080 -state-dir /var/lib/schedd
//
// With -state-dir, a SIGTERM/SIGINT drains gracefully: every hosted session
// is checkpointed there, and the next start restores them all — a restarted
// daemon resumes its tenants' simulations byte-identically.
//
// Remote scheduling policies plug in with -extender name=url: each
// registers an HTTP-callback scheduler under name, selectable per session
// like any built-in mechanism (see the internal/server extender protocol).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hybridsched/internal/server"
)

// extenderFlags collects repeated -extender name=url flags.
type extenderFlags []string

func (e *extenderFlags) String() string { return strings.Join(*e, ",") }
func (e *extenderFlags) Set(v string) error {
	*e = append(*e, v)
	return nil
}

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		stateDir   = flag.String("state-dir", "", "checkpoint sessions here on graceful shutdown and restore them at startup")
		maxSess    = flag.Int("max-sessions", 0, "total hosted-session limit (0 = default 64, negative = unlimited)")
		maxPerTen  = flag.Int("max-sessions-per-tenant", 0, "per-tenant session limit (0 = default 8, negative = unlimited)")
		mailbox    = flag.Int("mailbox-depth", 0, "per-session request mailbox capacity; overflow is 429 (0 = default 64)")
		maxQueued  = flag.Int("max-queued-submits", 0, "per-tenant accepted-but-unapplied submission limit (0 = default 1024)")
		drainGrace = flag.Duration("drain-grace", 30*time.Second, "how long shutdown waits for in-flight HTTP requests")
		extenders  extenderFlags
	)
	flag.Var(&extenders, "extender", "register a remote HTTP scheduler as name=url (repeatable)")
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags)
	for _, spec := range extenders {
		name, url, ok := strings.Cut(spec, "=")
		if !ok || name == "" || url == "" {
			logger.Fatalf("schedd: bad -extender %q (want name=url)", spec)
		}
		if err := server.RegisterExtender(name, url, nil); err != nil {
			logger.Fatalf("schedd: %v", err)
		}
		logger.Printf("schedd: extender %q -> %s", name, url)
	}

	srv, err := server.New(server.Config{
		Quotas: server.Quotas{
			MaxSessions:          *maxSess,
			MaxSessionsPerTenant: *maxPerTen,
			MailboxDepth:         *mailbox,
			MaxQueuedSubmits:     *maxQueued,
		},
		StateDir: *stateDir,
		Logger:   logger,
	})
	if err != nil {
		logger.Fatalf("schedd: %v", err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Printf("schedd: listening on %s (state-dir=%q)", *addr, *stateDir)

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer cancel()
	select {
	case err := <-errc:
		logger.Fatalf("schedd: %v", err)
	case <-ctx.Done():
	}

	// Graceful drain: checkpoint and stop every hosted session (unblocking
	// SSE streams), then let in-flight HTTP requests finish.
	logger.Printf("schedd: draining...")
	srv.Drain()
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), *drainGrace)
	defer cancelShutdown()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("schedd: shutdown: %v", err)
	}
	fmt.Fprintln(os.Stderr, "schedd: bye")
}
