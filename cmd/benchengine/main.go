// Command benchengine measures the discrete-event scheduling core: full-run
// event throughput (events/sec) and allocation budget (allocs per event) for
// every scheduler — the FCFS/EASY baseline plus the paper's six mechanisms —
// across the five Table III advance-notice mixes W1..W5 plus a fault-enabled
// W5 configuration (6 h MTBF, 2 h mean repair, exercising the availability
// model), at 1024 nodes over one simulated week, and emits the measurements
// as JSON. CI runs it to
// produce BENCH_engine.json, the engine point of the performance trajectory;
// run it locally to compare before/after a hot-path change:
//
//	go run ./cmd/benchengine -o BENCH_engine.json
//	go run ./cmd/benchengine -weeks 4 -nodes 4392   # paper-scale system
//
// Trace generation and engine construction are excluded from the timed
// region; allocations are the runtime's malloc count over the run itself.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"hybridsched/internal/simtest"
	"hybridsched/internal/trace"
)

// measurement is one (mechanism, mix) benchmark row.
type measurement struct {
	Mechanism      string  `json:"mechanism"`
	Mix            string  `json:"mix"`
	Jobs           int     `json:"jobs"`
	Events         int     `json:"events"`
	Seconds        float64 `json:"seconds"`
	EventsPerSec   float64 `json:"events_per_sec"`
	Allocs         uint64  `json:"allocs"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

// output is the emitted document.
type output struct {
	Go         string        `json:"go"`
	Nodes      int           `json:"nodes"`
	Weeks      int           `json:"weeks"`
	Seed       int64         `json:"seed"`
	Iterations int           `json:"iterations"`
	Benchmarks []measurement `json:"benchmarks"`
}

func main() {
	var (
		nodes = flag.Int("nodes", 1024, "system size (also scales the workload)")
		weeks = flag.Int("weeks", 1, "trace length in weeks")
		seed  = flag.Int64("seed", 1, "workload seed")
		iters = flag.Int("iters", 3, "runs per cell (best throughput wins, fewest allocs kept)")
		out   = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	doc := output{Go: runtime.Version(), Nodes: *nodes, Weeks: *weeks, Seed: *seed, Iterations: *iters}
	measure := func(label string, sc simtest.Scenario, records []trace.Record) {
		best := measurement{Mechanism: sc.Mechanism, Mix: label, Jobs: len(records)}
		for i := 0; i < *iters; i++ {
			m, err := runOnce(sc, records)
			if err != nil {
				fatal(fmt.Errorf("%s/%s: %w", sc.Mechanism, label, err))
			}
			if m.EventsPerSec > best.EventsPerSec {
				best.Events, best.Seconds, best.EventsPerSec = m.Events, m.Seconds, m.EventsPerSec
			}
			if best.Allocs == 0 || m.Allocs < best.Allocs {
				best.Allocs = m.Allocs
			}
		}
		if best.Events > 0 {
			best.AllocsPerEvent = float64(best.Allocs) / float64(best.Events)
		}
		doc.Benchmarks = append(doc.Benchmarks, best)
	}
	for _, mix := range simtest.Mixes() {
		sc := simtest.Scenario{Mix: mix, Seed: *seed, Nodes: *nodes, Weeks: *weeks}
		records, err := sc.Records()
		if err != nil {
			fatal(err)
		}
		for _, mech := range simtest.Mechanisms() {
			sc.Mechanism = mech
			measure(mix, sc, records)
		}
	}
	// Fault-enabled configs: the W5 mix under an aggressive failure process
	// (6 h MTBF, 2 h mean repair), so the performance trajectory covers the
	// availability model's hot paths — failure strikes, repair events, and
	// capacity-aware scheduler passes.
	{
		sc := simtest.Scenario{Mix: "W5", Seed: *seed, Nodes: *nodes, Weeks: *weeks,
			FaultMTBF: 6 * 3600, FaultRepair: 2 * 3600}
		records, err := sc.Records()
		if err != nil {
			fatal(err)
		}
		for _, mech := range simtest.Mechanisms() {
			sc.Mechanism = mech
			measure("W5+faults", sc, records)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

// runOnce executes one full simulation, timing only the event loop and
// counting its dispatched events and heap allocations.
func runOnce(sc simtest.Scenario, records []trace.Record) (measurement, error) {
	e, err := simtest.NewEngine(sc, records)
	if err != nil {
		return measurement{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	if _, err := e.Run(); err != nil {
		return measurement{}, err
	}
	secs := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	// DispatchedCount is exact: it excludes the rare deadlock-break steps
	// that Step reports as progress without popping an event.
	m := measurement{Events: e.DispatchedCount(), Seconds: secs, Allocs: after.Mallocs - before.Mallocs}
	if secs > 0 {
		m.EventsPerSec = float64(m.Events) / secs
	}
	return m, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchengine:", err)
	os.Exit(1)
}
