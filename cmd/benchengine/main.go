// Command benchengine measures the discrete-event scheduling core: full-run
// event throughput (events/sec) and allocation budget (allocs per event) for
// every scheduler — the FCFS/EASY baseline plus the paper's six mechanisms —
// across the five Table III advance-notice mixes W1..W5 plus a fault-enabled
// W5 configuration (6 h MTBF, 2 h mean repair, exercising the availability
// model), at 1024 nodes over one simulated week, and emits the measurements
// as JSON. CI runs it to
// produce BENCH_engine.json, the engine point of the performance trajectory;
// run it locally to compare before/after a hot-path change:
//
//	go run ./cmd/benchengine -o BENCH_engine.json
//	go run ./cmd/benchengine -weeks 4 -nodes 4392   # paper-scale system
//
// The -scale flag adds a node-count axis (comma-separated sizes, or "default"
// for 1024,16384,131072) crossed with the -scale-weeks horizons, measuring
// how throughput holds up at warehouse scale; -stream N runs N short jobs
// through a ReleaseCompleted engine via the streaming Submit path, reporting
// peak live heap alongside throughput (the engine holds only in-flight jobs,
// so peak heap must not grow with N). -baseline FILE compares every row
// against a previously emitted document and exits 1 if any shared row's
// events/sec fell by more than -max-regress.
//
// Trace generation and engine construction are excluded from the timed
// region; allocations are the runtime's malloc count over the run itself.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hybridsched/internal/checkpoint"
	"hybridsched/internal/job"
	"hybridsched/internal/sim"
	"hybridsched/internal/simtest"
	"hybridsched/internal/trace"
)

// measurement is one (mechanism, mix) benchmark row.
type measurement struct {
	Mechanism      string  `json:"mechanism"`
	Mix            string  `json:"mix"`
	Jobs           int     `json:"jobs"`
	Events         int     `json:"events"`
	Seconds        float64 `json:"seconds"`
	EventsPerSec   float64 `json:"events_per_sec"`
	Allocs         uint64  `json:"allocs"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

// scaleMeasurement is one point on the node-count scaling axis. Reference
// rows (with -scale-ref) run the same cell on the retained naive engine
// path — the heap event queue and full per-pass rescans — so the document
// records the optimized-vs-naive curve, not just the optimized one.
type scaleMeasurement struct {
	Nodes        int     `json:"nodes"`
	Weeks        int     `json:"weeks"`
	Mechanism    string  `json:"mechanism"`
	Mix          string  `json:"mix"`
	Reference    bool    `json:"reference,omitempty"`
	Jobs         int     `json:"jobs"`
	Events       int     `json:"events"`
	Seconds      float64 `json:"seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// streamMeasurement is the streamed-ingest run: jobs submitted through the
// live Submit path into a ReleaseCompleted engine, with the peak live heap
// sampled between waves.
type streamMeasurement struct {
	Jobs         int     `json:"jobs"`
	Nodes        int     `json:"nodes"`
	Events       int     `json:"events"`
	Seconds      float64 `json:"seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	PeakHeapMB   float64 `json:"peak_heap_mb"`
}

// output is the emitted document.
type output struct {
	Go         string             `json:"go"`
	Nodes      int                `json:"nodes"`
	Weeks      int                `json:"weeks"`
	Seed       int64              `json:"seed"`
	Iterations int                `json:"iterations"`
	Benchmarks []measurement      `json:"benchmarks"`
	Scale      []scaleMeasurement `json:"scale,omitempty"`
	Stream     *streamMeasurement `json:"stream,omitempty"`
}

func main() {
	var (
		nodes      = flag.Int("nodes", 1024, "system size (also scales the workload)")
		weeks      = flag.Int("weeks", 1, "trace length in weeks")
		seed       = flag.Int64("seed", 1, "workload seed")
		iters      = flag.Int("iters", 3, "runs per cell (best throughput wins, fewest allocs kept)")
		out        = flag.String("o", "", "output file (default stdout)")
		grid       = flag.Bool("grid", true, "run the full mechanism x mix grid")
		scale      = flag.String("scale", "", `node-count scaling axis: comma-separated sizes, or "default" for 1024,16384,131072`)
		scaleWeeks = flag.String("scale-weeks", "1,4", "horizons (weeks) crossed with the -scale sizes")
		scaleRef   = flag.Bool("scale-ref", false, "also measure each scale cell on the naive reference engine path")
		stream     = flag.Int("stream", 0, "streamed-ingest run: this many jobs through a ReleaseCompleted engine (0 = off)")
		baseline   = flag.String("baseline", "", "compare against this previously emitted document")
		maxRegress = flag.Float64("max-regress", 0.25, "with -baseline: fail if any shared row's events/sec fell by more than this fraction")
	)
	flag.Parse()

	doc := output{Go: runtime.Version(), Nodes: *nodes, Weeks: *weeks, Seed: *seed, Iterations: *iters}
	measure := func(label string, sc simtest.Scenario, records []trace.Record) {
		best := measurement{Mechanism: sc.Mechanism, Mix: label, Jobs: len(records)}
		for i := 0; i < *iters; i++ {
			m, err := runOnce(sc, records)
			if err != nil {
				fatal(fmt.Errorf("%s/%s: %w", sc.Mechanism, label, err))
			}
			if m.EventsPerSec > best.EventsPerSec {
				best.Events, best.Seconds, best.EventsPerSec = m.Events, m.Seconds, m.EventsPerSec
			}
			if best.Allocs == 0 || m.Allocs < best.Allocs {
				best.Allocs = m.Allocs
			}
		}
		if best.Events > 0 {
			best.AllocsPerEvent = float64(best.Allocs) / float64(best.Events)
		}
		doc.Benchmarks = append(doc.Benchmarks, best)
	}
	if *grid {
		for _, mix := range simtest.Mixes() {
			sc := simtest.Scenario{Mix: mix, Seed: *seed, Nodes: *nodes, Weeks: *weeks}
			records, err := sc.Records()
			if err != nil {
				fatal(err)
			}
			for _, mech := range simtest.Mechanisms() {
				sc.Mechanism = mech
				measure(mix, sc, records)
			}
		}
		// Fault-enabled configs: the W5 mix under an aggressive failure
		// process (6 h MTBF, 2 h mean repair), so the performance trajectory
		// covers the availability model's hot paths — failure strikes, repair
		// events, and capacity-aware scheduler passes.
		sc := simtest.Scenario{Mix: "W5", Seed: *seed, Nodes: *nodes, Weeks: *weeks,
			FaultMTBF: 6 * 3600, FaultRepair: 2 * 3600}
		records, err := sc.Records()
		if err != nil {
			fatal(err)
		}
		for _, mech := range simtest.Mechanisms() {
			sc.Mechanism = mech
			measure("W5+faults", sc, records)
		}
	}

	if *scale != "" {
		sizes, err := parseInts(*scale, "default", []int{1024, 16384, 131072})
		if err != nil {
			fatal(fmt.Errorf("-scale: %w", err))
		}
		horizons, err := parseInts(*scaleWeeks, "", nil)
		if err != nil {
			fatal(fmt.Errorf("-scale-weeks: %w", err))
		}
		// One light (baseline) and one heavy (CUA&SPAA: loans, preemption
		// warnings, reshaping) scheduler per cell; W3 is the middle notice
		// mix. Single iteration — the scale runs are long enough to be
		// timing-stable on their own.
		for _, n := range sizes {
			for _, w := range horizons {
				for _, mech := range []string{"baseline", "CUA&SPAA"} {
					sc := simtest.Scenario{Mechanism: mech, Mix: "W3", Seed: *seed, Nodes: n, Weeks: w}
					records, err := sc.Records()
					if err != nil {
						fatal(err)
					}
					variants := []bool{false}
					if *scaleRef {
						variants = append(variants, true)
					}
					for _, ref := range variants {
						sc.Reference = ref
						m, err := runOnce(sc, records)
						if err != nil {
							fatal(fmt.Errorf("scale %d/%dw %s: %w", n, w, mech, err))
						}
						doc.Scale = append(doc.Scale, scaleMeasurement{
							Nodes: n, Weeks: w, Mechanism: mech, Mix: "W3", Reference: ref,
							Jobs: len(records), Events: m.Events,
							Seconds: m.Seconds, EventsPerSec: m.EventsPerSec,
						})
					}
				}
			}
		}
	}

	if *stream > 0 {
		m, err := runStream(*stream, *nodes)
		if err != nil {
			fatal(fmt.Errorf("stream: %w", err))
		}
		doc.Stream = &m
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}

	if *baseline != "" {
		if err := compareBaseline(doc, *baseline, *maxRegress); err != nil {
			fatal(err)
		}
	}
}

// runOnce executes one full simulation, timing only the event loop and
// counting its dispatched events and heap allocations.
func runOnce(sc simtest.Scenario, records []trace.Record) (measurement, error) {
	e, err := simtest.NewEngine(sc, records)
	if err != nil {
		return measurement{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	if _, err := e.Run(); err != nil {
		return measurement{}, err
	}
	secs := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	// DispatchedCount is exact: it excludes the rare deadlock-break steps
	// that Step reports as progress without popping an event.
	m := measurement{Events: e.DispatchedCount(), Seconds: secs, Allocs: after.Mallocs - before.Mallocs}
	if secs > 0 {
		m.EventsPerSec = float64(m.Events) / secs
	}
	return m, nil
}

// runStream pushes total short rigid jobs through the live Submit path of a
// ReleaseCompleted FCFS/EASY engine in fixed-size waves, draining between
// waves, and samples HeapAlloc after each drain. Job shapes come from a
// fixed-seed LCG, so the run is deterministic. A retained-jobs regression
// shows up as PeakHeapMB scaling with the job count instead of staying flat.
func runStream(total, nodes int) (streamMeasurement, error) {
	e, err := sim.New(sim.Config{Nodes: nodes, ReleaseCompleted: true}, nil, sim.Baseline{})
	if err != nil {
		return streamMeasurement{}, err
	}
	const wave = 8192
	rng := uint64(0x9E3779B97F4A7C15)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int(rng>>33) % n
	}
	var peak uint64
	var ms runtime.MemStats
	runtime.GC()
	start := time.Now()
	id := 0
	for id < total {
		base := e.Now()
		for k := 0; k < wave && id < total; k++ {
			id++
			size := 1 + next(nodes/16+1)
			work := int64(60 + next(1800))
			j := job.NewRigid(id, 0, base+int64(k), size, work, work, 0, checkpoint.Plan{})
			if err := e.Submit(j); err != nil {
				return streamMeasurement{}, err
			}
		}
		for {
			more, err := e.Step()
			if err != nil {
				return streamMeasurement{}, err
			}
			if !more {
				break
			}
		}
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
	}
	secs := time.Since(start).Seconds()
	m := streamMeasurement{
		Jobs: total, Nodes: nodes, Events: e.DispatchedCount(),
		Seconds: secs, PeakHeapMB: float64(peak) / (1 << 20),
	}
	if secs > 0 {
		m.EventsPerSec = float64(m.Events) / secs
	}
	return m, nil
}

// compareBaseline checks every row of doc that also appears in the baseline
// document and reports rows whose events/sec fell by more than maxRegress.
// Rows only present on one side are ignored, so a conservative committed
// baseline can pin just the cells CI cares about.
func compareBaseline(doc output, path string, maxRegress float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base output
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	gridBase := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		gridBase[b.Mechanism+"/"+b.Mix] = b.EventsPerSec
	}
	scaleBase := make(map[string]float64, len(base.Scale))
	for _, b := range base.Scale {
		scaleBase[scaleKey(b)] = b.EventsPerSec
	}
	var regressions []string
	check := func(key string, got, want float64) {
		if want > 0 && got < want*(1-maxRegress) {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f events/sec vs baseline %.0f (-%.0f%%)",
					key, got, want, 100*(1-got/want)))
		}
	}
	for _, m := range doc.Benchmarks {
		if want, ok := gridBase[m.Mechanism+"/"+m.Mix]; ok {
			check(m.Mechanism+"/"+m.Mix, m.EventsPerSec, want)
		}
	}
	for _, m := range doc.Scale {
		if want, ok := scaleBase[scaleKey(m)]; ok {
			check("scale "+scaleKey(m), m.EventsPerSec, want)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("throughput regressed beyond %.0f%%:\n  %s",
			100*maxRegress, strings.Join(regressions, "\n  "))
	}
	return nil
}

// scaleKey identifies a scale row for baseline comparison.
func scaleKey(m scaleMeasurement) string {
	key := fmt.Sprintf("%d/%dw/%s/%s", m.Nodes, m.Weeks, m.Mechanism, m.Mix)
	if m.Reference {
		key += "/ref"
	}
	return key
}

// parseInts splits a comma-separated integer list; the sentinel word (when
// non-empty) expands to the given defaults.
func parseInts(s, sentinel string, defaults []int) ([]int, error) {
	if sentinel != "" && s == sentinel {
		return defaults, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list %q", s)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchengine:", err)
	os.Exit(1)
}
