// Command benchsources measures the throughput of the workload-source layer
// — records/sec for the Synthetic generator stream, the CSV and SWF
// streaming readers, and a 3-way Merge — and emits the measurements as JSON.
// CI runs it to produce BENCH_sources.json, the first point of the
// performance trajectory; run it locally to compare before/after a change:
//
//	go run ./cmd/benchsources -o BENCH_sources.json
//	go run ./cmd/benchsources -weeks 8       # a heavier trace
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"hybridsched"
)

// measurement is one benchmark result row.
type measurement struct {
	Name          string  `json:"name"`
	Records       int     `json:"records"`
	Seconds       float64 `json:"seconds"`
	RecordsPerSec float64 `json:"records_per_sec"`
}

// output is the emitted document.
type output struct {
	Go         string        `json:"go"`
	Weeks      int           `json:"weeks"`
	Iterations int           `json:"iterations"`
	Benchmarks []measurement `json:"benchmarks"`
}

func main() {
	var (
		weeks = flag.Int("weeks", 4, "trace length in weeks (scales the record count)")
		iters = flag.Int("iters", 3, "drain iterations per source (best rate wins)")
		out   = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	cfg := hybridsched.WorkloadConfig{Seed: 1, Weeks: *weeks}
	records, err := hybridsched.GenerateWorkload(cfg)
	if err != nil {
		fatal(err)
	}
	var csvBuf, swfBuf bytes.Buffer
	if err := hybridsched.WriteTraceCSV(&csvBuf, records); err != nil {
		fatal(err)
	}
	if err := hybridsched.WriteSWF(&swfBuf, records); err != nil {
		fatal(err)
	}
	csvData, swfData := csvBuf.Bytes(), swfBuf.Bytes()
	cfg2 := cfg
	cfg2.Seed = 2

	cases := []struct {
		name string
		make func() hybridsched.Source
	}{
		{"Synthetic", func() hybridsched.Source { return hybridsched.Synthetic(cfg) }},
		{"CSV", func() hybridsched.Source { return hybridsched.FromCSV(bytes.NewReader(csvData)) }},
		{"SWF", func() hybridsched.Source { return hybridsched.FromSWF(bytes.NewReader(swfData)) }},
		{"Merge3", func() hybridsched.Source {
			return hybridsched.Merge(
				hybridsched.FromCSV(bytes.NewReader(csvData)),
				hybridsched.FromSWF(bytes.NewReader(swfData)),
				hybridsched.Synthetic(cfg2),
			)
		}},
	}

	doc := output{Go: runtime.Version(), Weeks: *weeks, Iterations: *iters}
	for _, c := range cases {
		best := measurement{Name: c.name}
		for i := 0; i < *iters; i++ {
			start := time.Now()
			recs, err := hybridsched.ReadAllSource(c.make())
			secs := time.Since(start).Seconds()
			if err != nil {
				fatal(fmt.Errorf("%s: %w", c.name, err))
			}
			rate := float64(len(recs)) / secs
			if rate > best.RecordsPerSec {
				best = measurement{Name: c.name, Records: len(recs), Seconds: secs, RecordsPerSec: rate}
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, best)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsources:", err)
	os.Exit(1)
}
