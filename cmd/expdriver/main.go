// Command expdriver regenerates the paper's tables and figures
// (Table I-III, Figures 3-7, the Observation-10 latency check, and the
// DESIGN.md ablations) and prints them as aligned text tables.
//
// Usage:
//
//	expdriver                       # everything at paper scale (10 seeds)
//	expdriver -exp fig6 -seeds 3    # one experiment, reduced averaging
//	expdriver -o results.txt        # write to file, progress on stderr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hybridsched/internal/exp"
)

func main() {
	var (
		which = flag.String("exp", "all",
			"experiment: all, tablei, tableii, tableiii, fig3, fig4, fig5, fig6, fig7, latency, ablations")
		seeds    = flag.Int("seeds", 10, "traces averaged per data point")
		weeks    = flag.Int("weeks", 4, "trace length in weeks")
		nodes    = flag.Int("nodes", 4392, "system size in nodes")
		baseSeed = flag.Int64("seed", 1, "first seed")
		out      = flag.String("o", "", "output file (default stdout)")
		quiet    = flag.Bool("q", false, "suppress progress messages")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	opt := exp.Options{
		Nodes:    *nodes,
		Weeks:    *weeks,
		Seeds:    *seeds,
		BaseSeed: *baseSeed,
	}
	if !*quiet {
		opt.Progress = os.Stderr
	}

	run := func(name string, fn func() error) {
		if *which != "all" && *which != name {
			return
		}
		fmt.Fprintln(w)
		if err := fn(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
	}

	run("tablei", func() error {
		r, err := exp.TableI(opt)
		if err == nil {
			r.Render(w)
		}
		return err
	})
	run("fig3", func() error {
		r, err := exp.Figure3(opt)
		if err == nil {
			r.Render(w)
		}
		return err
	})
	run("fig4", func() error {
		r, err := exp.Figure4(opt)
		if err == nil {
			r.Render(w)
		}
		return err
	})
	run("fig5", func() error {
		r, err := exp.Figure5(opt)
		if err == nil {
			r.Render(w)
		}
		return err
	})
	run("tableii", func() error {
		r, err := exp.TableII(opt)
		if err == nil {
			r.Render(w)
		}
		return err
	})
	run("tableiii", func() error {
		exp.TableIII().Render(w)
		return nil
	})
	run("fig6", func() error {
		r, err := exp.Figure6(opt)
		if err == nil {
			r.Render(w)
		}
		return err
	})
	run("fig7", func() error {
		r, err := exp.Figure7(opt)
		if err == nil {
			r.Render(w)
		}
		return err
	})
	run("latency", func() error {
		r, err := exp.DecisionLatency(opt)
		if err == nil {
			r.Render(w)
		}
		return err
	})
	run("ablations", func() error {
		for _, fn := range []func(exp.Options) (exp.AblationResult, error){
			exp.AblationBackfillReserved,
			exp.AblationDirectedReturn,
			exp.AblationMinSizeFraction,
			exp.AblationNoticeLead,
			exp.AblationQueuePolicy,
		} {
			r, err := fn(opt)
			if err != nil {
				return err
			}
			r.Render(w)
			fmt.Fprintln(w)
		}
		return nil
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "expdriver:", err)
	os.Exit(1)
}
