// Command expdriver regenerates the paper's tables and figures
// (Table I-III, Figures 3-7, the Observation-10 latency check, and the
// DESIGN.md ablations). Every simulation-backed experiment runs as a
// declarative grid through the parallel sweep runner, so adding -workers
// uses every core while producing output identical to a serial run.
//
// Usage:
//
//	expdriver                            # everything at paper scale (10 seeds)
//	expdriver -exp fig6 -seeds 3         # one experiment, reduced averaging
//	expdriver -exp fig6,fig7 -workers 8  # a selection, 8-way parallel
//	expdriver -format csv -o cells.csv   # averaged cells as CSV
//	expdriver -format json -o all.json   # result structs as JSON
//	expdriver -exp resilience -mtbf 6h,24h -repair 0,1h   # degraded capacity
//	expdriver -exp resilience -drain 24h+4h:512           # + maintenance window
//	expdriver -exp fig6 -resume ckpt/                     # resumable: rerun after a kill
//	                                                      # picks up where it stopped
//
// The csv form contains only deterministic metrics and is byte-identical for
// any -workers value; json serializes the full result structs, whose decision
// -latency fields are wall clock and so vary between runs and machines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"strings"
	"time"

	"hybridsched"
	"hybridsched/internal/exp"
)

func main() {
	var (
		which = flag.String("exp", "all",
			"comma-separated experiments: all, tablei, tableii, tableiii, fig3, fig4, fig5, fig6, fig7, latency, ablations, resilience, realtrace (needs -source; not part of all)")
		seeds    = flag.Int("seeds", 10, "traces averaged per data point")
		weeks    = flag.Int("weeks", 4, "trace length in weeks")
		nodes    = flag.Int("nodes", 4392, "system size in nodes")
		baseSeed = flag.Int64("seed", 1, "first seed")
		srcSpec  = flag.String("source", "", "replay this source spec instead of synthetic traces, e.g. 'swf:theta.swf|relabel:paper' (collapses seed averaging to 1)")
		pol      = flag.String("policy", "fcfs", "queue policy: fcfs, sjf, ljf, wfp3, or a registered name")
		workers  = flag.Int("workers", 0, "parallel sweep workers (0 = all CPU cores)")
		format   = flag.String("format", "text", "output format: text, json, csv")
		out      = flag.String("o", "", "output file (default stdout)")
		quiet    = flag.Bool("q", false, "suppress progress messages")
		resume   = flag.String("resume", "", "persist per-cell progress into this directory and resume from whatever it already holds: finished cells are skipped, interrupted cells continue from their snapshots")
		shards   = flag.Int("shards", 0, "realtrace: hash-shard count for the shard axis (0 = default 4, 1 = whole trace only)")
		mtbfs    = flag.String("mtbf", "", "resilience failure-MTBF axis: comma-separated durations, e.g. '6h,24h' (default 6h,24h)")
		repairs  = flag.String("repair", "", "resilience mean-repair axis: comma-separated durations, '0' = instant (default 0,1h)")
		drains   = flag.String("drain", "", "maintenance windows applied to every resilience cell: 'start+duration:nodes', e.g. '24h+4h:512,96h+2h:256'")
	)
	flag.Parse()

	// Validate the policy against the registry before any experiment runs:
	// a bad name must not cost a paper-scale sweep before erroring.
	if validPols := hybridsched.PolicyNames(); !slices.Contains(validPols, *pol) {
		fmt.Fprintf(os.Stderr, "expdriver: unknown policy %q (valid: %s)\n",
			*pol, strings.Join(validPols, ", "))
		os.Exit(2)
	}
	// Same for the source spec: parse errors and missing files must surface
	// before any trace is generated or cell simulated.
	if *srcSpec != "" {
		if _, err := hybridsched.ParseSource(*srcSpec); err != nil {
			fmt.Fprintln(os.Stderr, "expdriver:", err)
			os.Exit(2)
		}
	}

	// Resilience axes parse before anything runs — like the policy and source
	// validations above, and before the output file is created, so a typo in
	// a flag cannot truncate an existing results file.
	faultMTBFs, err := parseDurationList(*mtbfs)
	if err != nil {
		fatalUsage(fmt.Errorf("-mtbf: %w", err))
	}
	faultRepairs, err := parseDurationList(*repairs)
	if err != nil {
		fatalUsage(fmt.Errorf("-repair: %w", err))
	}
	for _, m := range faultMTBFs {
		if m <= 0 {
			fatalUsage(fmt.Errorf("-mtbf values must be positive, got %gs", m))
		}
	}
	for _, r := range faultRepairs {
		if r < 0 {
			fatalUsage(fmt.Errorf("-repair values must be non-negative, got %gs", r))
		}
	}
	drainSpecs, err := hybridsched.ParseDrains(*drains)
	if err != nil {
		fatalUsage(fmt.Errorf("-drain: %w", err))
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	opt := exp.Options{
		Nodes:         *nodes,
		Weeks:         *weeks,
		Seeds:         *seeds,
		BaseSeed:      *baseSeed,
		Policy:        *pol,
		Workers:       *workers,
		Source:        *srcSpec,
		FaultMTBFs:    faultMTBFs,
		FaultRepairs:  faultRepairs,
		Drains:        drainSpecs,
		Shards:        *shards,
		CheckpointDir: *resume,
	}
	if !*quiet {
		opt.Progress = os.Stderr
	}

	switch *format {
	case "text", "json", "csv":
	default:
		fatal(fmt.Errorf("unknown format %q (want text, json, or csv)", *format))
	}
	known := []string{"all", "tablei", "fig3", "fig4", "fig5",
		"tableii", "tableiii", "fig6", "fig7", "latency", "ablations", "resilience", "realtrace"}
	selected := map[string]bool{}
	for _, name := range strings.Split(*which, ",") {
		name = strings.TrimSpace(name)
		if !slices.Contains(known, name) {
			fatal(fmt.Errorf("unknown experiment %q (want one of %s)", name, strings.Join(known, ", ")))
		}
		selected[name] = true
	}

	d := &driver{w: w, format: *format, selected: selected}
	start := time.Now()

	d.run("tablei", func() (renderer, []exp.CellGroup, error) {
		r, err := exp.TableI(opt)
		return r, nil, err
	})
	d.run("fig3", func() (renderer, []exp.CellGroup, error) {
		r, err := exp.Figure3(opt)
		return r, nil, err
	})
	d.run("fig4", func() (renderer, []exp.CellGroup, error) {
		r, err := exp.Figure4(opt)
		return r, nil, err
	})
	d.run("fig5", func() (renderer, []exp.CellGroup, error) {
		r, err := exp.Figure5(opt)
		return r, nil, err
	})
	d.run("tableii", func() (renderer, []exp.CellGroup, error) {
		r, err := exp.TableII(opt)
		return r, []exp.CellGroup{{Experiment: "tableii", Cells: r.Flatten()}}, err
	})
	d.run("tableiii", func() (renderer, []exp.CellGroup, error) {
		return exp.TableIII(), nil, nil
	})
	d.run("fig6", func() (renderer, []exp.CellGroup, error) {
		r, err := exp.Figure6(opt)
		return r, []exp.CellGroup{{Experiment: "fig6", Cells: r.Flatten()}}, err
	})
	d.run("fig7", func() (renderer, []exp.CellGroup, error) {
		r, err := exp.Figure7(opt)
		return r, []exp.CellGroup{{Experiment: "fig7", Cells: r.Flatten()}}, err
	})
	d.run("latency", func() (renderer, []exp.CellGroup, error) {
		r, err := exp.DecisionLatency(opt)
		return r, []exp.CellGroup{{Experiment: "latency", Cells: r.Flatten()}}, err
	})
	d.run("resilience", func() (renderer, []exp.CellGroup, error) {
		r, err := exp.Resilience(opt)
		return r, []exp.CellGroup{{Experiment: "resilience", Cells: r.Flatten()}}, err
	})
	// realtrace needs -source, so it never rides along with "all".
	if d.selected["realtrace"] {
		d.run("realtrace", func() (renderer, []exp.CellGroup, error) {
			r, err := exp.RealTrace(opt)
			return r, []exp.CellGroup{{Experiment: "realtrace", Cells: r.Flatten()}}, err
		})
	}
	d.run("ablations", func() (renderer, []exp.CellGroup, error) {
		ablations := []struct {
			name string
			fn   func(exp.Options) (exp.AblationResult, error)
		}{
			{"ablation-bfres", exp.AblationBackfillReserved},
			{"ablation-return", exp.AblationDirectedReturn},
			{"ablation-minsize", exp.AblationMinSizeFraction},
			{"ablation-lead", exp.AblationNoticeLead},
			{"ablation-policy", exp.AblationQueuePolicy},
		}
		var rs multiRender
		var groups []exp.CellGroup
		for _, a := range ablations {
			r, err := a.fn(opt)
			if err != nil {
				return nil, nil, err
			}
			rs = append(rs, r)
			groups = append(groups, exp.CellGroup{Experiment: a.name, Cells: r.Flatten()})
		}
		return rs, groups, nil
	})

	if err := d.finish(); err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "expdriver: total %s\n", time.Since(start).Round(time.Millisecond))
	}
}

// renderer is the common face of every experiment result.
type renderer interface{ Render(io.Writer) }

// multiRender renders several results in sequence (the ablation bundle).
type multiRender []renderer

func (m multiRender) Render(w io.Writer) {
	for i, r := range m {
		if i > 0 {
			fmt.Fprintln(w)
		}
		r.Render(w)
	}
}

// driver runs selected experiments and accumulates output in the requested
// format: text renders immediately; json and csv collect and emit at finish.
type driver struct {
	w        io.Writer
	format   string
	selected map[string]bool

	jsonOut []jsonEntry
	csvOut  []exp.CellGroup
}

type jsonEntry struct {
	Experiment string `json:"experiment"`
	Result     any    `json:"result"`
}

// cellLess names the experiments with no averaged-cell form; csv mode skips
// them before paying for their (potentially paper-scale) runs.
var cellLess = map[string]bool{
	"tablei": true, "fig3": true, "fig4": true, "fig5": true, "tableiii": true,
}

func (d *driver) run(name string, fn func() (renderer, []exp.CellGroup, error)) {
	if !d.selected["all"] && !d.selected[name] {
		return
	}
	if d.format == "csv" && cellLess[name] {
		fmt.Fprintf(os.Stderr, "expdriver: %s has no cell form, skipped in csv output\n", name)
		return
	}
	r, groups, err := fn()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", name, err))
	}
	switch d.format {
	case "text":
		fmt.Fprintln(d.w)
		r.Render(d.w)
	case "json":
		if m, ok := r.(multiRender); ok {
			// Ablations serialize one entry per sweep, named like their CSV groups.
			for i, sub := range m {
				d.jsonOut = append(d.jsonOut, jsonEntry{Experiment: d.csvNameFor(groups, i), Result: sub})
			}
		} else {
			d.jsonOut = append(d.jsonOut, jsonEntry{Experiment: name, Result: r})
		}
	case "csv":
		d.csvOut = append(d.csvOut, groups...)
	}
}

func (d *driver) csvNameFor(groups []exp.CellGroup, i int) string {
	if i < len(groups) {
		return groups[i].Experiment
	}
	return fmt.Sprintf("ablation-%d", i)
}

func (d *driver) finish() error {
	switch d.format {
	case "json":
		enc := json.NewEncoder(d.w)
		enc.SetIndent("", "  ")
		return enc.Encode(d.jsonOut)
	case "csv":
		return exp.WriteCellsCSV(d.w, d.csvOut...)
	}
	return nil
}

// parseDurationList parses comma-separated Go durations ("6h,24h") into
// seconds. An empty string yields nil (the experiment's defaults apply).
func parseDurationList(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, d.Seconds())
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "expdriver:", err)
	os.Exit(1)
}

// fatalUsage reports a bad flag value and exits 2, the conventional
// usage-error status, before any expensive work has been done.
func fatalUsage(err error) {
	fmt.Fprintln(os.Stderr, "expdriver:", err)
	os.Exit(2)
}
