// Command tracegen synthesizes hybrid workload traces from the calibrated
// Theta model and writes them in the native CSV schema (or SWF with the
// hybrid extensions dropped).
//
// Usage:
//
//	tracegen -seed 1 -weeks 4 -mix W5 -o trace.csv
//	tracegen -seed 2 -format swf -o trace.swf
//	tracegen -summary            # print Table I style characterization only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hybridsched"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "random seed (same seed, same trace)")
		weeks   = flag.Int("weeks", 4, "trace length in weeks")
		nodes   = flag.Int("nodes", 4392, "system size in nodes")
		mixName = flag.String("mix", "W5", "advance-notice mix, W1..W5 (Table III)")
		load    = flag.Float64("load", 0, "target offered load (0 = calibrated default)")
		format  = flag.String("format", "csv", "output format: csv or swf")
		out     = flag.String("o", "", "output file (default stdout)")
		summary = flag.Bool("summary", false, "print the workload summary instead of the trace")
	)
	flag.Parse()

	mix, err := mixByName(*mixName)
	if err != nil {
		fatal(err)
	}
	cfg := hybridsched.WorkloadConfig{
		Seed:       *seed,
		Weeks:      *weeks,
		Nodes:      *nodes,
		Mix:        mix,
		TargetLoad: *load,
	}
	records, err := hybridsched.GenerateWorkload(cfg)
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *summary {
		counts := map[hybridsched.JobClass]int{}
		var nodeHours float64
		for _, r := range records {
			counts[r.Class]++
			nodeHours += float64(r.Size) * float64(r.Work) / 3600
		}
		fmt.Fprintf(w, "jobs:       %d\n", len(records))
		fmt.Fprintf(w, "rigid:      %d\n", counts[hybridsched.Rigid])
		fmt.Fprintf(w, "on-demand:  %d\n", counts[hybridsched.OnDemand])
		fmt.Fprintf(w, "malleable:  %d\n", counts[hybridsched.Malleable])
		fmt.Fprintf(w, "node-hours: %.0f\n", nodeHours)
		return
	}

	switch *format {
	case "csv":
		err = hybridsched.WriteTraceCSV(w, records)
	case "swf":
		err = hybridsched.WriteSWF(w, records)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

func mixByName(name string) (hybridsched.NoticeMix, error) {
	switch name {
	case "W1":
		return hybridsched.W1, nil
	case "W2":
		return hybridsched.W2, nil
	case "W3":
		return hybridsched.W3, nil
	case "W4":
		return hybridsched.W4, nil
	case "W5":
		return hybridsched.W5, nil
	}
	return hybridsched.NoticeMix{}, fmt.Errorf("unknown mix %q (want W1..W5)", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
