// Command tracegen synthesizes hybrid workload traces from the calibrated
// Theta model and writes them in the native CSV schema (or SWF with the
// hybrid extensions dropped). It doubles as the trace toolbox: -source
// materializes any source-spec pipeline (transforming existing traces
// instead of generating), and -validate checks a trace file record by
// record.
//
// Usage:
//
//	tracegen -seed 1 -weeks 4 -mix W5 -o trace.csv
//	tracegen -seed 2 -format swf -o trace.swf
//	tracegen -summary                                # Table I style characterization
//	tracegen -source 'swf:theta.swf|relabel:paper' -o hybrid.csv
//	tracegen -validate trace.csv                     # exit 1 on first bad record
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hybridsched"
	"hybridsched/internal/trace"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "random seed (same seed, same trace)")
		weeks    = flag.Int("weeks", 4, "trace length in weeks")
		nodes    = flag.Int("nodes", 4392, "system size in nodes")
		mixName  = flag.String("mix", "W5", "advance-notice mix, W1..W5 (Table III)")
		load     = flag.Float64("load", 0, "target offered load (0 = calibrated default)")
		format   = flag.String("format", "csv", "output format: csv or swf")
		out      = flag.String("o", "", "output file (default stdout)")
		summary  = flag.Bool("summary", false, "print the workload summary instead of the trace")
		srcSpec  = flag.String("source", "", "materialize this source spec instead of generating, e.g. 'swf:theta.swf|relabel:paper|scale:1.2'")
		validate = flag.String("validate", "", "validate this trace file (.swf = SWF, else CSV) and exit; non-zero status with the first offending record")
	)
	flag.Parse()

	if *validate != "" {
		os.Exit(runValidate(*validate))
	}

	var records []hybridsched.Record
	var err error
	if *srcSpec != "" {
		src, perr := hybridsched.ParseSource(*srcSpec)
		if perr != nil {
			fatal(perr)
		}
		records, err = hybridsched.ReadAllSource(src)
	} else {
		mix, merr := hybridsched.MixByName(*mixName)
		if merr != nil {
			fatal(fmt.Errorf("%v (want W1..W5)", merr))
		}
		records, err = hybridsched.GenerateWorkload(hybridsched.WorkloadConfig{
			Seed:       *seed,
			Weeks:      *weeks,
			Nodes:      *nodes,
			Mix:        mix,
			TargetLoad: *load,
		})
	}
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *summary {
		counts := map[hybridsched.JobClass]int{}
		var nodeHours float64
		for _, r := range records {
			counts[r.Class]++
			nodeHours += float64(r.Size) * float64(r.Work) / 3600
		}
		fmt.Fprintf(w, "jobs:       %d\n", len(records))
		fmt.Fprintf(w, "rigid:      %d\n", counts[hybridsched.Rigid])
		fmt.Fprintf(w, "on-demand:  %d\n", counts[hybridsched.OnDemand])
		fmt.Fprintf(w, "malleable:  %d\n", counts[hybridsched.Malleable])
		fmt.Fprintf(w, "node-hours: %.0f\n", nodeHours)
		return
	}

	switch *format {
	case "csv":
		err = hybridsched.WriteTraceCSV(w, records)
	case "swf":
		err = hybridsched.WriteSWF(w, records)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

// runValidate streams a trace file through the validating readers and
// reports the first offending record. Records are never held in memory —
// only the duplicate-ID set grows with the job count. SWF files
// additionally get their import summary (jobs skipped, fields defaulted)
// printed. Exit status: 0 clean, 1 invalid (or unreadable).
func runValidate(path string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen: validate:", err)
		return 1
	}
	defer f.Close()

	// The streaming readers validate every record and position their
	// errors, so the first offending record surfaces as next's error.
	var next func() (hybridsched.Record, error)
	var summary func() string
	kind := "csv"
	if strings.HasSuffix(strings.ToLower(path), ".swf") {
		kind = "swf"
		sr := trace.NewSWFReader(f)
		next = sr.Next
		summary = func() string { return sr.Summary().String() }
	} else {
		cr := trace.NewCSVReader(f)
		next = cr.Next
	}

	n := 0
	seen := make(map[int]bool)
	for {
		rec, err := next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: validate: %s: %v\n", path, err)
			return 1
		}
		if seen[rec.ID] {
			fmt.Fprintf(os.Stderr, "tracegen: validate: %s: duplicate job ID %d (record %d)\n",
				path, rec.ID, n+1)
			return 1
		}
		seen[rec.ID] = true
		n++
	}
	fmt.Printf("%s: ok (%d %s records)\n", path, n, kind)
	if summary != nil {
		fmt.Printf("swf import: %s\n", summary())
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
