// Command tracegen synthesizes hybrid workload traces from the calibrated
// Theta model and writes them in the native CSV schema (or SWF with the
// hybrid extensions dropped). It doubles as the trace toolbox: -source
// materializes any source-spec pipeline (transforming existing traces
// instead of generating), -summarize characterizes a pipeline in constant
// memory (distributions of inter-arrival, width, runtime, plus class mix),
// and -validate checks a trace file record by record.
//
// Usage:
//
//	tracegen -seed 1 -weeks 4 -mix W5 -o trace.csv
//	tracegen -seed 2 -format swf -o trace.swf
//	tracegen -summary                                # Table I style characterization
//	tracegen -source 'swf:theta.swf|relabel:paper' -o hybrid.csv
//	tracegen -source 'borg:events.csv.gz|relabel:paper' -summarize
//	tracegen -validate trace.csv                     # exit 1 on first bad record
//	tracegen -validate events.csv.gz -in borg        # corpus dialects need -in
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hybridsched"
	"hybridsched/internal/trace"
	"hybridsched/internal/tracecorpus"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "random seed (same seed, same trace)")
		weeks     = flag.Int("weeks", 4, "trace length in weeks")
		nodes     = flag.Int("nodes", 4392, "system size in nodes")
		mixName   = flag.String("mix", "W5", "advance-notice mix, W1..W5 (Table III)")
		load      = flag.Float64("load", 0, "target offered load (0 = calibrated default)")
		format    = flag.String("format", "csv", "output format: csv or swf")
		out       = flag.String("o", "", "output file (default stdout)")
		summary   = flag.Bool("summary", false, "print the workload summary instead of the trace")
		summarize = flag.Bool("summarize", false, "characterize the trace in constant memory instead of writing it: class mix plus inter-arrival, width, and runtime distributions")
		srcSpec   = flag.String("source", "", "materialize this source spec instead of generating, e.g. 'swf:theta.swf|relabel:paper|scale:1.2'")
		validate  = flag.String("validate", "", "validate this trace file and exit; non-zero status with the position of the first offending record")
		dialect   = flag.String("in", "auto", "trace dialect for -validate: auto (.swf/.swf.gz = SWF, else CSV), csv, swf, borg, alibaba")
	)
	flag.Parse()

	if *validate != "" {
		os.Exit(runValidate(*validate, *dialect))
	}

	if *summarize {
		// Characterization is streaming: the pipeline is drained record by
		// record, so a multi-month corpus profiles in constant memory.
		var stream tracecorpus.Stream
		if *srcSpec != "" {
			src, err := hybridsched.ParseSource(*srcSpec)
			if err != nil {
				fatal(err)
			}
			stream = src
		} else {
			mix, merr := hybridsched.MixByName(*mixName)
			if merr != nil {
				fatal(fmt.Errorf("%v (want W1..W5)", merr))
			}
			stream = hybridsched.Synthetic(hybridsched.WorkloadConfig{
				Seed:       *seed,
				Weeks:      *weeks,
				Nodes:      *nodes,
				Mix:        mix,
				TargetLoad: *load,
			})
		}
		p, err := tracecorpus.Characterize(stream)
		if err != nil {
			fatal(err)
		}
		p.Render(outWriter(*out))
		return
	}

	var records []hybridsched.Record
	var err error
	if *srcSpec != "" {
		src, perr := hybridsched.ParseSource(*srcSpec)
		if perr != nil {
			fatal(perr)
		}
		records, err = hybridsched.ReadAllSource(src)
	} else {
		mix, merr := hybridsched.MixByName(*mixName)
		if merr != nil {
			fatal(fmt.Errorf("%v (want W1..W5)", merr))
		}
		records, err = hybridsched.GenerateWorkload(hybridsched.WorkloadConfig{
			Seed:       *seed,
			Weeks:      *weeks,
			Nodes:      *nodes,
			Mix:        mix,
			TargetLoad: *load,
		})
	}
	if err != nil {
		fatal(err)
	}

	w := outWriter(*out)

	if *summary {
		counts := map[hybridsched.JobClass]int{}
		var nodeHours float64
		for _, r := range records {
			counts[r.Class]++
			nodeHours += float64(r.Size) * float64(r.Work) / 3600
		}
		fmt.Fprintf(w, "jobs:       %d\n", len(records))
		fmt.Fprintf(w, "rigid:      %d\n", counts[hybridsched.Rigid])
		fmt.Fprintf(w, "on-demand:  %d\n", counts[hybridsched.OnDemand])
		fmt.Fprintf(w, "malleable:  %d\n", counts[hybridsched.Malleable])
		fmt.Fprintf(w, "node-hours: %.0f\n", nodeHours)
		return
	}

	switch *format {
	case "csv":
		err = hybridsched.WriteTraceCSV(w, records)
	case "swf":
		err = hybridsched.WriteSWF(w, records)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

// runValidate streams a trace file through the validating readers and
// reports the first offending record with its position in the input file —
// parse and validation failures carry the reader's own row/line number, and
// caller-side checks (duplicate IDs) report the reader's position too.
// Records are never held in memory — only the duplicate-ID set grows with
// the job count. SWF, Borg, and Alibaba inputs additionally get their import
// summary (jobs skipped, fields defaulted) printed. Exit status: 0 clean,
// 1 invalid (or unreadable).
func runValidate(path, dialect string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen: validate:", err)
		return 1
	}
	defer f.Close()

	if dialect == "" || dialect == "auto" {
		// Like source.Open: the extension (with a trailing .gz stripped)
		// picks SWF vs native CSV. The corpus dialects are never guessed.
		dialect = "csv"
		if strings.HasSuffix(strings.TrimSuffix(strings.ToLower(path), ".gz"), ".swf") {
			dialect = "swf"
		}
	}

	// The streaming readers validate every record and position their errors,
	// so the first offending record surfaces as next's error; pos reports the
	// reader's current position for checks made out here.
	var next func() (hybridsched.Record, error)
	var pos func() string
	var summary func() string
	switch dialect {
	case "swf":
		sr := trace.NewSWFReader(f)
		next = sr.Next
		pos = func() string { return fmt.Sprintf("line %d", sr.Line()) }
		summary = func() string { return sr.Summary().String() }
	case "csv":
		cr := trace.NewCSVReader(f)
		next = cr.Next
		pos = func() string { return fmt.Sprintf("row %d", cr.Row()) }
	case "borg":
		br := tracecorpus.NewBorgReader(f)
		next = br.Next
		pos = func() string { return fmt.Sprintf("row %d", br.Row()) }
		summary = func() string { return br.Summary().String() }
	case "alibaba":
		ar := tracecorpus.NewAlibabaReader(f)
		next = ar.Next
		pos = func() string { return fmt.Sprintf("row %d", ar.Row()) }
		summary = func() string { return ar.Summary().String() }
	default:
		fmt.Fprintf(os.Stderr, "tracegen: validate: unknown dialect %q (want auto, csv, swf, borg, alibaba)\n", dialect)
		return 1
	}

	n := 0
	seen := make(map[int]bool)
	for {
		rec, err := next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: validate: %s: %v\n", path, err)
			return 1
		}
		if seen[rec.ID] {
			fmt.Fprintf(os.Stderr, "tracegen: validate: %s: duplicate job ID %d (record %d, at input %s)\n",
				path, rec.ID, n+1, pos())
			return 1
		}
		seen[rec.ID] = true
		n++
	}
	fmt.Printf("%s: ok (%d %s records)\n", path, n, dialect)
	if summary != nil {
		fmt.Printf("%s import: %s\n", dialect, summary())
	}
	return 0
}

// outWriter opens the -o target, defaulting to stdout. The file is not
// explicitly closed: os.File writes are unbuffered and the process exits
// right after the write completes.
func outWriter(path string) io.Writer {
	if path == "" {
		return os.Stdout
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	return f
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
