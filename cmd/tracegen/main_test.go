package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureValidate runs runValidate with stderr and stdout captured.
func captureValidate(t *testing.T, path, dialect string) (int, string) {
	t.Helper()
	oldErr, oldOut := os.Stderr, os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr, os.Stdout = w, w
	code := runValidate(path, dialect)
	w.Close()
	os.Stderr, os.Stdout = oldErr, oldOut
	var buf bytes.Buffer
	io.Copy(&buf, r)
	return code, buf.String()
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const csvHeader = "id,project,class,submit,size,min_size,work,estimate,setup,notice,notice_time,est_arrival\n"

// TestValidatePositionsBadRecord: -validate must report the file position of
// the first bad record, for every dialect (satellite regression test).
func TestValidatePositionsBadRecord(t *testing.T) {
	cases := []struct {
		name, file, dialect, content, wantPos string
	}{
		{"csv bad row", "t.csv", "",
			csvHeader +
				"1,0,rigid,0,8,8,60,120,0,no-notice,0,0\n" +
				"2,0,rigid,5,0,0,60,120,0,no-notice,0,0\n", // size 0: invalid
			"row 3"},
		{"swf bad line", "t.swf", "",
			"; comment\n" +
				"1 0 -1 600 64 -1 -1 64 1200 -1 1\n" +
				"x 0 -1 600 64 -1 -1 64 1200 -1 1\n", // bad job id
			"line 3"},
		{"borg bad row", "events.csv", "borg",
			"1000000,,10,0,a,1,jn,ln\n" +
				"oops,,10,1,a,1,jn,ln\n", // bad timestamp
			"borg row 2"},
		{"alibaba bad row", "batch.csv", "alibaba",
			"t1,4,j,1,Terminated,100,200,1,1\n" +
				"t2,x,j,1,Terminated,100,200,1,1\n", // bad instance_num
			"alibaba row 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeTemp(t, tc.file, tc.content)
			code, out := captureValidate(t, path, tc.dialect)
			if code != 1 {
				t.Fatalf("exit %d, want 1; output: %s", code, out)
			}
			if !strings.Contains(out, tc.wantPos) {
				t.Fatalf("output %q does not position the bad record at %q", out, tc.wantPos)
			}
		})
	}
}

func TestValidateDuplicateIDPositioned(t *testing.T) {
	path := writeTemp(t, "dup.csv", csvHeader+
		"1,0,rigid,0,8,8,60,120,0,no-notice,0,0\n"+
		"2,0,rigid,5,8,8,60,120,0,no-notice,0,0\n"+
		"1,0,rigid,9,8,8,60,120,0,no-notice,0,0\n")
	code, out := captureValidate(t, path, "")
	if code != 1 {
		t.Fatalf("exit %d, want 1; output: %s", code, out)
	}
	if !strings.Contains(out, "duplicate job ID 1") || !strings.Contains(out, "row 4") {
		t.Fatalf("output %q must name the duplicate and its input row", out)
	}
}

func TestValidateCleanDialects(t *testing.T) {
	cases := []struct {
		name, file, dialect, content, want string
	}{
		{"csv", "t.csv", "", csvHeader + "1,0,rigid,0,8,8,60,120,0,no-notice,0,0\n", "ok (1 csv records)"},
		{"swf auto", "t.swf", "", "1 0 -1 600 64 -1 -1 64 1200 -1 1\n", "ok (1 swf records)"},
		{"borg", "e.csv", "borg",
			"1000000,,10,0,a,1,jn,ln\n2000000,,10,1,a,1,jn,ln\n9000000,,10,4,a,1,jn,ln\n",
			"ok (1 borg records)"},
		{"alibaba", "b.csv", "alibaba", "t1,4,j,1,Terminated,100,200,1,1\n", "ok (1 alibaba records)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeTemp(t, tc.file, tc.content)
			code, out := captureValidate(t, path, tc.dialect)
			if code != 0 {
				t.Fatalf("exit %d, want 0; output: %s", code, out)
			}
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output %q missing %q", out, tc.want)
			}
		})
	}
}

func TestValidateUnknownDialect(t *testing.T) {
	path := writeTemp(t, "t.csv", csvHeader)
	code, out := captureValidate(t, path, "parquet")
	if code != 1 || !strings.Contains(out, "unknown dialect") {
		t.Fatalf("exit %d output %q", code, out)
	}
}
