// Command schedlint statically enforces hybridsched's determinism and
// snapshot-completeness invariants. It runs standalone (schedlint ./...) or
// as a vet tool (go vet -vettool=$(which schedlint) ./...); both paths load
// packages through the go command, so results and caching are identical.
//
// Analyzers: maporder, seededrand, snapfields, wallclock. Run
// `schedlint -help` for the waiver directive of each.
package main

import (
	"hybridsched/internal/analyzers"
	"hybridsched/internal/analyzers/lintkit"
)

func main() {
	lintkit.Main(analyzers.All())
}
