package hybridsched

import (
	"encoding/json"
	"strings"
	"testing"
)

// canonicalJSON serializes a report with the wall-clock decision-latency
// fields zeroed, so byte comparison sees only deterministic measurements
// (the same normalization the sweep emitters apply).
func canonicalJSON(t *testing.T, rep Report) string {
	t.Helper()
	rep.DecisionCount = 0
	rep.MeanDecisionMs = 0
	rep.MaxDecisionMs = 0
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// equivWorkload is the small system the equivalence tests replay.
func equivWorkload(mix NoticeMix) WorkloadConfig {
	return WorkloadConfig{
		Seed: 11, Weeks: 1, Nodes: 512, Mix: mix,
		MinJobSize:  16,
		SizeBuckets: []int{16, 32, 64, 128},
		SizeWeights: []float64{0.4, 0.3, 0.2, 0.1},
	}
}

// TestSessionGoldenEquivalence: a Session with the whole trace pre-submitted
// and Run() must produce a Report byte-identical (via JSON, wall-clock
// fields excluded) to Simulate, for every mechanism under every Table III
// notice mix.
func TestSessionGoldenEquivalence(t *testing.T) {
	mixes := []struct {
		name string
		mix  NoticeMix
	}{{"W1", W1}, {"W2", W2}, {"W3", W3}, {"W4", W4}, {"W5", W5}}
	for _, m := range mixes {
		records, err := GenerateWorkload(equivWorkload(m.mix))
		if err != nil {
			t.Fatal(err)
		}
		for _, mech := range Mechanisms() {
			t.Run(m.name+"/"+mech, func(t *testing.T) {
				cfg := SimulationConfig{Nodes: 512, Mechanism: mech}
				legacy, err := Simulate(cfg, records)
				if err != nil {
					t.Fatal(err)
				}
				s, err := NewSession(WithNodes(512), WithMechanism(mech))
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range records {
					if err := s.Submit(r); err != nil {
						t.Fatal(err)
					}
				}
				got, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				if canonicalJSON(t, got) != canonicalJSON(t, legacy) {
					t.Errorf("session report differs from Simulate")
				}
			})
		}
	}
}

// midRunTrace is a handcrafted trace whose event times never collide within
// one priority class, so pre-loaded and mid-run submission of the on-demand
// job dispatch identically.
func midRunTrace() []Record {
	return []Record{
		{ID: 1, Class: Rigid, Submit: 0, Size: 256, MinSize: 256, Work: 10000, Estimate: 12000, Setup: 60},
		{ID: 2, Class: Rigid, Submit: 500, Size: 256, MinSize: 256, Work: 8000, Estimate: 9000, Setup: 60},
		{ID: 3, Class: Rigid, Submit: 1000, Size: 128, MinSize: 128, Work: 20000, Estimate: 25000, Setup: 60},
		{ID: 4, Class: Malleable, Submit: 1500, Size: 128, MinSize: 32, Work: 15000, Estimate: 20000, Setup: 60},
		{ID: 5, Class: OnDemand, Submit: 7777, Size: 300, MinSize: 300, Work: 3000, Estimate: 4000, Setup: 30,
			Notice: AccurateNotice, NoticeTime: 5555, EstArrival: 7777},
	}
}

// TestSessionMidRunSubmit: injecting an on-demand job while the session runs
// (before its notice instant) must be indistinguishable from having loaded
// it with the initial trace.
func TestSessionMidRunSubmit(t *testing.T) {
	records := midRunTrace()
	for _, mech := range Mechanisms() {
		t.Run(mech, func(t *testing.T) {
			preloaded, err := Simulate(SimulationConfig{Nodes: 512, Mechanism: mech}, records)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewSession(WithNodes(512), WithMechanism(mech))
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range records[:4] {
				if err := s.Submit(r); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.RunUntil(5000); err != nil { // before the job-5 notice at 5555
				t.Fatal(err)
			}
			if now := s.Now(); now != 5000 {
				t.Fatalf("Now() = %d after RunUntil(5000)", now)
			}
			if err := s.Submit(records[4]); err != nil {
				t.Fatal(err)
			}
			got, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			if canonicalJSON(t, got) != canonicalJSON(t, preloaded) {
				t.Errorf("mid-run submission diverged from pre-loaded trace")
			}
		})
	}
}

// TestSessionSubmitInThePast: once the clock has advanced, a record dated
// before Now must be rejected.
func TestSessionSubmitInThePast(t *testing.T) {
	s, err := NewSession(WithNodes(512))
	if err != nil {
		t.Fatal(err)
	}
	records := midRunTrace()
	for _, r := range records[:4] {
		if err := s.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunUntil(2000); err != nil {
		t.Fatal(err)
	}
	late := records[4]
	late.Submit, late.NoticeTime, late.EstArrival = 100, 100, 100
	if err := s.Submit(late); err == nil {
		t.Fatal("expected error submitting a job dated before Now")
	}
	// Duplicate IDs are rejected too.
	if err := s.Submit(records[0]); err == nil {
		t.Fatal("expected duplicate-ID error")
	}
}

// noopScheduler is a custom Scheduler: Baseline's behaviour under a new name,
// registered through the public registry.
type noopScheduler struct{ Baseline }

func (noopScheduler) Name() string { return "test-noop" }

func TestRegisterSchedulerRunsEverywhere(t *testing.T) {
	// The registry is process-global and append-only; under -count=N the
	// name persists from the previous run.
	if err := RegisterScheduler("test-noop", func(SchedulerConfig) (Scheduler, error) {
		return noopScheduler{}, nil
	}); err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	if err := RegisterScheduler("test-noop", func(SchedulerConfig) (Scheduler, error) {
		return noopScheduler{}, nil
	}); err == nil {
		t.Fatal("duplicate registration must fail")
	}
	if err := RegisterScheduler("baseline", nil); err == nil {
		t.Fatal("built-in collision must fail")
	}
	found := false
	for _, name := range SchedulerNames() {
		if name == "test-noop" {
			found = true
		}
	}
	if !found {
		t.Fatalf("test-noop missing from SchedulerNames() = %v", SchedulerNames())
	}

	records, err := GenerateWorkload(equivWorkload(W5))
	if err != nil {
		t.Fatal(err)
	}
	// Through Simulate: behaves exactly like the baseline it wraps.
	custom, err := Simulate(SimulationConfig{Nodes: 512, Mechanism: "test-noop"}, records)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := Simulate(SimulationConfig{Nodes: 512, Mechanism: "baseline"}, records)
	if err != nil {
		t.Fatal(err)
	}
	if canonicalJSON(t, custom) != canonicalJSON(t, baseline) {
		t.Error("custom baseline-wrapping scheduler diverged from baseline via Simulate")
	}

	// Through RunSweep: resolvable by name inside worker cells.
	wcfg := equivWorkload(W5)
	specs := []SweepSpec{
		{Label: "custom", Workload: wcfg, Sim: SimulationConfig{Nodes: 512, Mechanism: "test-noop"}},
		{Label: "baseline", Workload: wcfg, Sim: SimulationConfig{Nodes: 512, Mechanism: "baseline"}},
	}
	sweep, err := RunSweep(specs, SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if canonicalJSON(t, sweep.Results[0].Report) != canonicalJSON(t, sweep.Results[1].Report) {
		t.Error("custom scheduler diverged from baseline via RunSweep")
	}
}

// lifoPolicy is a custom queue ordering: latest submission first.
type lifoPolicy struct{}

func (lifoPolicy) Name() string { return "test-lifo" }
func (lifoPolicy) Less(a, b *Job, _ int64) bool {
	if a.SubmitTime != b.SubmitTime {
		return a.SubmitTime > b.SubmitTime
	}
	return a.ID > b.ID
}

func TestRegisterPolicyRunsByName(t *testing.T) {
	if err := RegisterPolicy(lifoPolicy{}); err != nil &&
		!strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	if err := RegisterPolicy(lifoPolicy{}); err == nil {
		t.Fatal("duplicate policy registration must fail")
	}
	found := false
	for _, name := range PolicyNames() {
		if name == "test-lifo" {
			found = true
		}
	}
	if !found {
		t.Fatalf("test-lifo missing from PolicyNames() = %v", PolicyNames())
	}
	records, err := GenerateWorkload(equivWorkload(W5))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(SimulationConfig{Nodes: 512, Policy: "test-lifo"}, records)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != len(records) {
		t.Fatalf("lifo policy completed %d/%d jobs", rep.Jobs, len(records))
	}
}

// TestExplicitZeroCheckpointMult: the negative sentinel (and the Session
// option) disable defensive checkpointing, which the zero value of
// SimulationConfig could never express.
func TestExplicitZeroCheckpointMult(t *testing.T) {
	records, err := GenerateWorkload(equivWorkload(W5))
	if err != nil {
		t.Fatal(err)
	}
	withCkpt, err := Simulate(SimulationConfig{Nodes: 512}, records)
	if err != nil {
		t.Fatal(err)
	}
	if withCkpt.Breakdown.Ckpt <= 0 {
		t.Fatal("default run recorded no checkpoint overhead; test needs rigid jobs")
	}
	noCkpt, err := Simulate(SimulationConfig{Nodes: 512, CheckpointFreqMult: -1}, records)
	if err != nil {
		t.Fatal(err)
	}
	if noCkpt.Breakdown.Ckpt != 0 {
		t.Errorf("explicit-zero multiplier still checkpointed: %g", noCkpt.Breakdown.Ckpt)
	}

	s, err := NewSession(WithNodes(512), WithCheckpointFreqMult(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := s.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	viaOption, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if canonicalJSON(t, viaOption) != canonicalJSON(t, noCkpt) {
		t.Error("WithCheckpointFreqMult(0) differs from the -1 sentinel path")
	}

	// The explicit zero must survive the sweep path's double defaulting too.
	sweep, err := RunSweep([]SweepSpec{{
		Label:    "nockpt",
		Workload: equivWorkload(W5),
		Sim:      SimulationConfig{Nodes: 512, CheckpointFreqMult: -1},
	}}, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sweep.Results[0].Report.Breakdown.Ckpt; got != 0 {
		t.Errorf("sweep cell with explicit-zero multiplier still checkpointed: %g", got)
	}
}

// TestExplicitZeroReleaseThreshold: a 0-second release threshold is
// expressible through both the sentinel and the option.
func TestExplicitZeroReleaseThreshold(t *testing.T) {
	records, err := GenerateWorkload(equivWorkload(W2))
	if err != nil {
		t.Fatal(err)
	}
	viaSentinel, err := Simulate(SimulationConfig{Nodes: 512, ReleaseThresholdSeconds: -1}, records)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(WithNodes(512), WithReleaseThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := s.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	viaOption, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if canonicalJSON(t, viaOption) != canonicalJSON(t, viaSentinel) {
		t.Error("WithReleaseThreshold(0) differs from the -1 sentinel path")
	}

	// The knob must actually bite: a zero-second hold schedules differently
	// from the 10-minute default on a noticed mix.
	viaDefault, err := Simulate(SimulationConfig{Nodes: 512}, records)
	if err != nil {
		t.Fatal(err)
	}
	if canonicalJSON(t, viaDefault) == canonicalJSON(t, viaSentinel) {
		t.Error("explicit-zero threshold indistinguishable from the default; sentinel lost")
	}

	// And it must survive the sweep path's re-defaulting (the runner and
	// core each apply their own withDefaults).
	sweep, err := RunSweep([]SweepSpec{{
		Label:    "zerorelease",
		Workload: equivWorkload(W2),
		Sim:      SimulationConfig{Nodes: 512, ReleaseThresholdSeconds: -1},
	}}, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if canonicalJSON(t, sweep.Results[0].Report) != canonicalJSON(t, viaSentinel) {
		t.Error("sweep cell with explicit-zero threshold diverged from Simulate")
	}
}

// TestSessionMaxSimTimeBoundsRunUntil: the WithMaxSimTime safety net must
// also stop pure clock advances, not just event dispatch.
func TestSessionMaxSimTimeBoundsRunUntil(t *testing.T) {
	s, err := NewSession(WithNodes(512), WithMaxSimTime(1000))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(500); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(5000); err == nil {
		t.Fatal("RunUntil past MaxSimTime must fail")
	}
	if now := s.Now(); now > 1000 {
		t.Fatalf("clock ran to %d past the 1000 s bound", now)
	}
}

// TestSessionCloseSilencesObservers: after Close, neither observers nor
// channels see events, even though the session can keep running.
func TestSessionCloseSilencesObservers(t *testing.T) {
	var n int
	s, err := NewSession(WithNodes(512),
		WithObserver(ObserverFunc(func(Event) { n++ })))
	if err != nil {
		t.Fatal(err)
	}
	records := midRunTrace()
	for _, r := range records[:2] {
		if err := s.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("observer saw %d events after Close", n)
	}
	if got := s.Report().Jobs; got != 2 {
		t.Fatalf("closed session still simulates: completed %d/2", got)
	}
}

// TestSessionSnapshotAndObserver drives a session step-wise and checks the
// live state and the synchronous event stream against each other.
func TestSessionSnapshotAndObserver(t *testing.T) {
	records, err := GenerateWorkload(equivWorkload(W5))
	if err != nil {
		t.Fatal(err)
	}
	var seen []Event
	s, err := NewSession(
		WithNodes(512),
		WithValidate(true),
		WithObserver(ObserverFunc(func(ev Event) { seen = append(seen, ev) })),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := s.Submit(r); err != nil {
			t.Fatal(err)
		}
	}

	pre := s.Snapshot()
	if pre.Submitted != len(records) || pre.Completed != 0 {
		t.Fatalf("pre-run snapshot: submitted %d completed %d", pre.Submitted, pre.Completed)
	}
	if pre.Nodes != 512 || pre.FreeNodes != 512 {
		t.Fatalf("pre-run snapshot: nodes %d free %d", pre.Nodes, pre.FreeNodes)
	}

	if err := s.RunUntil(36 * Hour); err != nil {
		t.Fatal(err)
	}
	mid := s.Snapshot()
	if mid.Now != 36*Hour {
		t.Fatalf("mid snapshot Now = %d", mid.Now)
	}
	if mid.FreeNodes+mid.BusyNodes+mid.ReservedNodes != mid.Nodes {
		t.Fatalf("node partition broken: %d+%d+%d != %d",
			mid.FreeNodes, mid.BusyNodes, mid.ReservedNodes, mid.Nodes)
	}
	if len(mid.Running) == 0 {
		t.Fatal("nothing running 36 hours into a one-week trace")
	}
	if mid.Metrics.Utilization <= 0 || mid.Metrics.Utilization > 1 {
		t.Fatalf("mid-run utilization %g", mid.Metrics.Utilization)
	}
	if mid.QueueDepth != len(mid.Queued) {
		t.Fatalf("QueueDepth %d != len(Queued) %d", mid.QueueDepth, len(mid.Queued))
	}

	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	post := s.Snapshot()
	if post.Completed != len(records) || rep.Jobs != len(records) {
		t.Fatalf("completed %d, report %d, want %d", post.Completed, rep.Jobs, len(records))
	}

	counts := map[EventType]int{}
	lastT := int64(-1)
	for _, ev := range seen {
		if ev.Time < lastT {
			t.Fatalf("event stream went backwards: %d after %d", ev.Time, lastT)
		}
		lastT = ev.Time
		counts[ev.Type]++
	}
	if counts[EventArrival] != len(records) {
		t.Errorf("arrival events %d, want %d", counts[EventArrival], len(records))
	}
	if counts[EventEnd] != len(records) {
		t.Errorf("end events %d, want %d", counts[EventEnd], len(records))
	}
	if counts[EventStart] < counts[EventEnd] {
		t.Errorf("starts %d < ends %d", counts[EventStart], counts[EventEnd])
	}
	// CUA&SPAA on a busy one-week trace must exercise notices and at least
	// one preemption or shrink; a silent stream means the sink is unwired.
	if counts[EventNotice] == 0 {
		t.Error("no notice events in a W5 trace")
	}
	if counts[EventPreempt]+counts[EventShrink]+counts[EventWarning] == 0 {
		t.Error("no preempt/shrink/warning events under CUA&SPAA")
	}
}

// TestSessionEventsChannel: the channel adapter delivers the same stream and
// closes when the session finishes.
func TestSessionEventsChannel(t *testing.T) {
	records := midRunTrace()
	s, err := NewSession(WithNodes(512))
	if err != nil {
		t.Fatal(err)
	}
	ch := s.Events()
	for _, r := range records {
		if err := s.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for range ch {
		n++
	}
	if n == 0 {
		t.Fatal("no events on the channel")
	}
	if s.DroppedEvents() != 0 {
		t.Fatalf("dropped %d events on a tiny trace", s.DroppedEvents())
	}
	// A channel requested after Close comes back closed, not nil.
	if _, open := <-s.Events(); open {
		t.Fatal("post-Close Events() channel must be closed")
	}
}

// TestSessionStepGranularity: Step advances exactly one event at a time and
// reports completion.
func TestSessionStepGranularity(t *testing.T) {
	s, err := NewSession(WithNodes(512))
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for _, r := range midRunTrace() {
		if err := s.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	for {
		more, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
		steps++
		if steps > 1_000_000 {
			t.Fatal("runaway session")
		}
	}
	if got := s.Report(); got.Jobs != 5 {
		t.Fatalf("stepped run completed %d/5 jobs", got.Jobs)
	}
	// Drained and complete: further steps are no-ops, not errors.
	if more, err := s.Step(); more || err != nil {
		t.Fatalf("Step after completion = (%v, %v)", more, err)
	}
	// The session stays live: a later submission resumes it.
	late := Record{ID: 99, Class: Rigid, Submit: s.Now() + 100, Size: 64, MinSize: 64,
		Work: 500, Estimate: 600, Setup: 10}
	if err := s.Submit(late); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 6 {
		t.Fatalf("resumed run completed %d/6 jobs", rep.Jobs)
	}
}

// holdScheduler manufactures the mutual-starvation state breakHoldDeadlock
// exists to dissolve: when job 1 completes it reserves half the system for
// each of the two queued 100-node jobs, so neither can ever start and the
// event queue drains with work outstanding.
type holdScheduler struct {
	Baseline
	e *Engine
}

func (h *holdScheduler) Name() string     { return "test-hold" }
func (h *holdScheduler) Attach(e *Engine) { h.e = e }
func (h *holdScheduler) OnJobCompleted(j *Job, _ *NodeSet) {
	if j.ID == 1 {
		h.e.Cluster().Reserve(2, 50)
		h.e.Cluster().Reserve(3, 50)
	}
}

// TestSessionRunUntilBreaksHoldDeadlock: RunUntil must route a drained
// event queue with incomplete jobs through the engine's stall handling
// (dissolving reservation deadlocks) instead of silently advancing the
// clock past a wedged schedule.
func TestSessionRunUntilBreaksHoldDeadlock(t *testing.T) {
	s, err := NewSession(WithNodes(100), WithScheduler(&holdScheduler{}))
	if err != nil {
		t.Fatal(err)
	}
	for id, submit := range map[int]int64{1: 0, 2: 10, 3: 20} {
		if err := s.Submit(Record{ID: id, Class: Rigid, Submit: submit,
			Size: 100, MinSize: 100, Work: 1000, Estimate: 1000}); err != nil {
			t.Fatal(err)
		}
	}
	// The deadlock forms at t=1000; RunUntil must dissolve it in passing.
	if err := s.RunUntil(2500); err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot().Completed; got < 2 {
		t.Fatalf("deadlock not dissolved: %d jobs completed by t=2500", got)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 3 {
		t.Fatalf("completed %d/3 jobs", rep.Jobs)
	}
}

// TestSessionUnknownNames mirrors the legacy Simulate error behaviour.
func TestSessionUnknownNames(t *testing.T) {
	if _, err := NewSession(WithMechanism("nope")); err == nil {
		t.Fatal("expected unknown-mechanism error")
	}
	if _, err := NewSession(WithPolicy("nope")); err == nil {
		t.Fatal("expected unknown-policy error")
	}
}

// TestSubmitNormalizesZeroMinSize: hand-constructed fixed-size records that
// leave MinSize at its zero value (which legacy Simulate accepted and the
// simulator ignores for these classes) must keep working.
func TestSubmitNormalizesZeroMinSize(t *testing.T) {
	records := []Record{
		{ID: 1, Class: Rigid, Submit: 0, Size: 4, Work: 100, Estimate: 100},
		{ID: 2, Class: OnDemand, Submit: 10, Size: 4, Work: 100, Estimate: 100},
		// A stale nonzero MinSize on a fixed-size job is ignored too.
		{ID: 3, Class: Rigid, Submit: 20, Size: 32, MinSize: 16, Work: 100, Estimate: 100},
	}
	rep, err := Simulate(SimulationConfig{Nodes: 512}, records)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 3 {
		t.Fatalf("completed %d/3", rep.Jobs)
	}
	// Malleable jobs genuinely need a minimum size; those still fail fast.
	bad := []Record{{ID: 3, Class: Malleable, Submit: 0, Size: 4, Work: 100, Estimate: 100}}
	if _, err := Simulate(SimulationConfig{Nodes: 512}, bad); err == nil {
		t.Fatal("expected error for malleable record without MinSize")
	}
}

// TestSimulateStillBatch ensures the wrapper keeps the one-shot contract on
// the error paths (bad records fail fast, before any stepping).
func TestSimulateStillBatch(t *testing.T) {
	bad := []Record{{ID: 1, Class: Rigid, Submit: 0, Size: 0, MinSize: 0, Work: 1, Estimate: 1}}
	if _, err := Simulate(SimulationConfig{Nodes: 512}, bad); err == nil {
		t.Fatal("expected validation error for size-0 record")
	}
	huge := []Record{{ID: 1, Class: Rigid, Submit: 0, Size: 4096, MinSize: 4096, Work: 1, Estimate: 1}}
	if _, err := Simulate(SimulationConfig{Nodes: 512}, huge); err == nil {
		t.Fatal("expected size-exceeds-system error")
	}
}
