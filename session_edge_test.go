package hybridsched

import (
	"strings"
	"testing"
)

// edgeRecord builds a small rigid record for the session edge-case tests.
func edgeRecord(id int, submit int64) Record {
	return Record{ID: id, Class: Rigid, Submit: submit, Size: 8,
		Work: 600, Estimate: 900}
}

// edgeSession builds a small baseline session.
func edgeSession(t *testing.T) *Session {
	t.Helper()
	s, err := NewSession(WithNodes(64), WithMechanism("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSubmitAfterRunUntilPastFinalEvent pins the contract for submitting
// into a session whose clock has already advanced beyond its last event: a
// record dated before the clock is rejected with a descriptive error, a
// record at or after the clock joins the live run, and the session drains to
// a report covering both generations of jobs.
func TestSubmitAfterRunUntilPastFinalEvent(t *testing.T) {
	s := edgeSession(t)
	if err := s.Submit(edgeRecord(1, 0)); err != nil {
		t.Fatal(err)
	}
	// Far past the single job's completion: the clock lands exactly on t.
	const parked = 50_000
	if err := s.RunUntil(parked); err != nil {
		t.Fatal(err)
	}
	if s.Now() != parked {
		t.Fatalf("Now() = %d, want %d", s.Now(), parked)
	}
	if snap := s.Snapshot(); snap.Completed != 1 || snap.Submitted != 1 {
		t.Fatalf("snapshot %d/%d, want 1/1", snap.Completed, snap.Submitted)
	}

	// A submission dated before the parked clock must fail, not rewind time.
	err := s.Submit(edgeRecord(2, parked-1))
	if err == nil {
		t.Fatal("past-dated Submit after RunUntil must error")
	}
	if !strings.Contains(err.Error(), "before the clock") {
		t.Fatalf("unexpected error: %v", err)
	}

	// A submission at the clock (and later) continues the run.
	if err := s.Submit(edgeRecord(3, parked)); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(edgeRecord(4, parked+3600)); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 3 {
		t.Fatalf("report covers %d jobs, want 3 (the rejected record must not count)", rep.Jobs)
	}
}

// TestDoubleRun pins that Run is idempotent once drained: a second Run
// returns immediately with a report identical to the first, and stepping a
// drained session reports no more work without error.
func TestDoubleRun(t *testing.T) {
	s := edgeSession(t)
	for id := 1; id <= 3; id++ {
		if err := s.Submit(edgeRecord(id, int64(id)*60)); err != nil {
			t.Fatal(err)
		}
	}
	first, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Run()
	if err != nil {
		t.Fatalf("second Run must be a no-op, got %v", err)
	}
	if canonicalJSON(t, first) != canonicalJSON(t, second) {
		t.Fatal("second Run changed the report")
	}
	more, err := s.Step()
	if err != nil {
		t.Fatal(err)
	}
	if more {
		t.Fatal("drained session must report no more work")
	}
}

// TestEventsDrainOnEarlyClose pins the Events contract around Close: an
// early Close ends the stream (a ranging consumer terminates), already
// buffered events stay readable, nothing is emitted after Close, Close is
// idempotent, and Events called on a closed session returns an
// already-closed channel.
func TestEventsDrainOnEarlyClose(t *testing.T) {
	s := edgeSession(t)
	ch := s.Events()
	for id := 1; id <= 3; id++ {
		if err := s.Submit(edgeRecord(id, int64(id)*60)); err != nil {
			t.Fatal(err)
		}
	}
	// Step a few events, then close mid-run.
	for i := 0; i < 4; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	buffered := len(ch)
	if buffered == 0 {
		t.Fatal("expected buffered events before Close")
	}
	s.Close()
	s.Close() // idempotent

	drained := 0
	for range ch {
		drained++
	}
	if drained != buffered {
		t.Fatalf("drained %d events, want the %d buffered at Close", drained, buffered)
	}
	if s.DroppedEvents() != 0 {
		t.Fatalf("%d drops on a drained consumer", s.DroppedEvents())
	}

	// The closed session still steps and reports, but emits nothing.
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	late := s.Events()
	if _, ok := <-late; ok {
		t.Fatal("Events after Close must return a closed channel")
	}
	if rep := s.Report(); rep.Nodes != 64 {
		t.Fatalf("closed session must stay queryable, got %d nodes", rep.Nodes)
	}
}
