//go:build !eventqdebug

package eventq

// Without the eventqdebug build tag the lifetime assertions compile away:
// Recycle and Cancel keep their documented defensive no-op semantics.

func debugRecycle(*Queue, *Event) {}

func debugCancel(*Event) {}
