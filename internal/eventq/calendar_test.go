package eventq

import (
	"math/rand"
	"testing"
)

// drainAll pops both queues to exhaustion, requiring identical dispatch.
func drainAll(t *testing.T, cal, ref *Queue) {
	t.Helper()
	for {
		a, b := cal.Pop(), ref.Pop()
		if (a == nil) != (b == nil) {
			t.Fatalf("length divergence: calendar=%v heap=%v", a != nil, b != nil)
		}
		if a == nil {
			return
		}
		if a.Time != b.Time || a.Prio != b.Prio || a.seq != b.seq {
			t.Fatalf("dispatch divergence: calendar (t=%d p=%d seq=%d) vs heap (t=%d p=%d seq=%d)",
				a.Time, a.Prio, a.seq, b.Time, b.Prio, b.seq)
		}
	}
}

// TestCalendarMatchesHeapRandom drives the two backends through identical
// randomized Push/Pop/Cancel/Recycle interleavings and requires identical
// dispatch order throughout.
func TestCalendarMatchesHeapRandom(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var cal, ref Queue
		ref.UseHeap()
		cal.EnablePooling()
		ref.EnablePooling()
		type pair struct{ c, r *Event }
		var livePairs []pair
		clock := int64(0)
		for op := 0; op < 4000; op++ {
			switch k := rng.Intn(10); {
			case k < 5: // push
				dt := int64(rng.Intn(4000))
				if rng.Intn(20) == 0 {
					dt = int64(rng.Intn(10_000_000)) // sparse tail jump
				}
				tm := clock + dt
				p := Priority(rng.Intn(7))
				c := cal.Push(tm, p, op)
				r := ref.Push(tm, p, op)
				livePairs = append(livePairs, pair{c, r})
			case k < 8: // pop (and sometimes recycle)
				a, b := cal.Pop(), ref.Pop()
				if (a == nil) != (b == nil) {
					t.Fatalf("seed %d op %d: pop length divergence", seed, op)
				}
				if a == nil {
					continue
				}
				if a.Time != b.Time || a.Prio != b.Prio || a.seq != b.seq {
					t.Fatalf("seed %d op %d: pop divergence (t=%d p=%d seq=%d) vs (t=%d p=%d seq=%d)",
						seed, op, a.Time, a.Prio, a.seq, b.Time, b.Prio, b.seq)
				}
				clock = a.Time
				for i, pr := range livePairs {
					if pr.c == a {
						livePairs = append(livePairs[:i], livePairs[i+1:]...)
						break
					}
				}
				if rng.Intn(2) == 0 {
					cal.Recycle(a)
					ref.Recycle(b)
				}
			default: // cancel a random live handle
				if len(livePairs) == 0 {
					continue
				}
				i := rng.Intn(len(livePairs))
				pr := livePairs[i]
				cal.Cancel(pr.c)
				ref.Cancel(pr.r)
				livePairs = append(livePairs[:i], livePairs[i+1:]...)
			}
			if cal.Len() != ref.Len() {
				t.Fatalf("seed %d op %d: Len %d vs %d", seed, op, cal.Len(), ref.Len())
			}
		}
		drainAll(t, &cal, &ref)
	}
}

// TestCalendarOrderedMatchesHeap pins the serialization iteration to the
// heap's on both backends.
func TestCalendarOrderedMatchesHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var cal, ref Queue
	ref.UseHeap()
	for i := 0; i < 500; i++ {
		tm := int64(rng.Intn(1000))
		p := Priority(rng.Intn(7))
		cal.Push(tm, p, i)
		ref.Push(tm, p, i)
	}
	co, ro := cal.Ordered(), ref.Ordered()
	if len(co) != len(ro) {
		t.Fatalf("Ordered length %d vs %d", len(co), len(ro))
	}
	for i := range co {
		if co[i].Time != ro[i].Time || co[i].Prio != ro[i].Prio || co[i].seq != ro[i].seq {
			t.Fatalf("Ordered[%d] diverges", i)
		}
	}
}

// TestCalendarNegativeTimes exercises the floor-division bucket mapping on
// negative timestamps.
func TestCalendarNegativeTimes(t *testing.T) {
	var q Queue
	times := []int64{-100, -1, 0, 1, -50, 30, -7}
	for _, tm := range times {
		q.Push(tm, PrioArrive, nil)
	}
	prev := int64(-1 << 62)
	for e := q.Pop(); e != nil; e = q.Pop() {
		if e.Time < prev {
			t.Fatalf("order violated: %d after %d", e.Time, prev)
		}
		prev = e.Time
	}
}

// TestCalendarSparseTail verifies that huge forward gaps (the direct-search
// fallback) dispatch correctly and cheaply enough to terminate.
func TestCalendarSparseTail(t *testing.T) {
	var q Queue
	for i := 0; i < 64; i++ {
		q.Push(int64(i), PrioEnd, i)
	}
	q.Push(1_000_000_000, PrioEnd, "far")
	q.Push(2_000_000_000, PrioEnd, "farther")
	for i := 0; i < 64; i++ {
		if e := q.Pop(); e.Time != int64(i) {
			t.Fatalf("pop %d: got t=%d", i, e.Time)
		}
	}
	if e := q.Pop(); e.Payload != "far" {
		t.Fatalf("expected far event, got t=%d", e.Time)
	}
	if e := q.Pop(); e.Payload != "farther" {
		t.Fatalf("expected farther event, got t=%d", e.Time)
	}
	if q.Pop() != nil {
		t.Fatal("queue should be empty")
	}
}

// TestCalendarContainsAndCancel checks handle identity across bucket resizes.
func TestCalendarContainsAndCancel(t *testing.T) {
	var q Queue
	var hs []*Event
	for i := 0; i < 300; i++ {
		hs = append(hs, q.Push(int64(i*13%97), PrioTimeout, i))
	}
	for i, h := range hs {
		if !q.Contains(h) {
			t.Fatalf("handle %d not found after resizes", i)
		}
	}
	for i, h := range hs {
		if i%3 == 0 {
			q.Cancel(h)
			if q.Contains(h) {
				t.Fatalf("cancelled handle %d still contained", i)
			}
		}
	}
	if want := 300 - 100; q.Len() != want {
		t.Fatalf("Len=%d want %d", q.Len(), want)
	}
	count := 0
	for q.Pop() != nil {
		count++
	}
	if count != 200 {
		t.Fatalf("drained %d events, want 200", count)
	}
}

// FuzzQueueEquivalence feeds interleaved Push/Pop/Cancel/Recycle programs to
// both backends and requires dispatch-order equivalence — the calendar queue
// is pinned to the heap under arbitrary operation mixes, not just the
// simulator's.
func FuzzQueueEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 250, 251, 7, 8})
	f.Add([]byte{10, 10, 10, 128, 128, 200, 200, 1, 2, 3, 4, 5, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		var cal, ref Queue
		ref.UseHeap()
		cal.EnablePooling()
		ref.EnablePooling()
		type pair struct{ c, r *Event }
		var live []pair
		base := int64(0)
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], int64(data[i+1])
			switch op % 4 {
			case 0: // push near the current base
				tm := base + arg
				p := Priority(op % 7)
				live = append(live, pair{cal.Push(tm, p, i), ref.Push(tm, p, i)})
			case 1: // push far ahead (exercise sparse windows / resize)
				tm := base + arg*arg*37
				p := Priority(op % 7)
				live = append(live, pair{cal.Push(tm, p, i), ref.Push(tm, p, i)})
			case 2: // pop and optionally recycle
				a, b := cal.Pop(), ref.Pop()
				if (a == nil) != (b == nil) {
					t.Fatal("pop presence divergence")
				}
				if a == nil {
					continue
				}
				if a.Time != b.Time || a.Prio != b.Prio || a.seq != b.seq {
					t.Fatalf("dispatch divergence (t=%d p=%d seq=%d) vs (t=%d p=%d seq=%d)",
						a.Time, a.Prio, a.seq, b.Time, b.Prio, b.seq)
				}
				base = a.Time
				for k, pr := range live {
					if pr.c == a {
						live = append(live[:k], live[k+1:]...)
						break
					}
				}
				if arg%2 == 0 {
					cal.Recycle(a)
					ref.Recycle(b)
				}
			case 3: // cancel an arbitrary live handle
				if len(live) == 0 {
					continue
				}
				k := int(arg) % len(live)
				cal.Cancel(live[k].c)
				ref.Cancel(live[k].r)
				live = append(live[:k], live[k+1:]...)
			}
			if cal.Len() != ref.Len() {
				t.Fatalf("Len divergence %d vs %d", cal.Len(), ref.Len())
			}
		}
		for {
			a, b := cal.Pop(), ref.Pop()
			if (a == nil) != (b == nil) {
				t.Fatal("drain presence divergence")
			}
			if a == nil {
				break
			}
			if a.Time != b.Time || a.Prio != b.Prio || a.seq != b.seq {
				t.Fatal("drain dispatch divergence")
			}
		}
	})
}
