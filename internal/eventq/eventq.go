// Package eventq implements the deterministic priority event queue that
// drives the discrete-event scheduling simulator.
//
// Events are ordered by (Time, Priority, sequence number). The sequence
// number — assigned at push time — breaks ties deterministically, so two runs
// of the same simulation always dispatch events in the same order. Entries
// can be cancelled in O(log n), which the mechanisms use to withdraw planned
// preemptions and reservation timeouts when an on-demand job arrives early.
package eventq

import "container/heap"

// Priority orders events that fire at the same instant. Lower values
// dispatch first. The ordering encodes the scheduling semantics of the
// simulator: releases happen before arrivals so that an on-demand job
// arriving exactly when another job ends can use the freed nodes, and the
// scheduler pass runs after all state changes at that instant.
type Priority int

// Priority classes from first-dispatched to last-dispatched.
const (
	PrioEnd      Priority = iota // job completions free resources first
	PrioFault                    // node failures (extension)
	PrioNotice                   // on-demand advance notices
	PrioPreempt                  // planned preemptions and warning expiries
	PrioTimeout                  // reservation timeouts
	PrioArrive                   // job submissions and on-demand arrivals
	PrioSchedule                 // scheduler invocation, always last
)

// Event is an entry in the queue. Payload is opaque to the queue.
type Event struct {
	Time     int64
	Prio     Priority
	Payload  any
	seq      uint64
	index    int // heap index, -1 once removed
	canceled bool
	pooled   bool // on the free list, awaiting reuse
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Queue is a min-heap of events. The zero value is ready to use.
type Queue struct {
	h    eventHeap
	seq  uint64
	pool []*Event
	// pooling enables the internal free list (see EnablePooling).
	pooling bool
}

// EnablePooling turns on the internal Event free list: Recycle parks spent
// events and Push reuses them, so a long simulation reaches a steady state
// where event scheduling stops allocating. Off by default because reuse makes
// a retained stale handle dangerous — enable it only when every Recycle call
// provably hands back the last live reference (the simulation engine does;
// its mechanism-held timer handles are never recycled).
func (q *Queue) EnablePooling() { q.pooling = true }

// Len returns the number of live (non-cancelled) events.
// Cancelled events are removed eagerly, so this is exact.
func (q *Queue) Len() int { return len(q.h) }

// Push schedules payload at time t with priority p and returns a handle that
// can be used to cancel it.
func (q *Queue) Push(t int64, p Priority, payload any) *Event {
	var e *Event
	if n := len(q.pool); n > 0 {
		e = q.pool[n-1]
		q.pool[n-1] = nil
		q.pool = q.pool[:n-1]
		*e = Event{Time: t, Prio: p, Payload: payload, seq: q.seq}
	} else {
		e = &Event{Time: t, Prio: p, Payload: payload, seq: q.seq}
	}
	q.seq++
	heap.Push(&q.h, e)
	return e
}

// Recycle parks e for reuse by a future Push. The caller asserts that no
// other reference to e survives: e must already be popped or cancelled, and
// every handle to it dropped — recycling a still-referenced event would let
// a later Cancel through the stale handle hit an unrelated reuse. Recycle is
// a no-op when pooling is disabled, for nil events, for events still in the
// queue, and for events already parked, so callers may recycle defensively.
func (q *Queue) Recycle(e *Event) {
	if !q.pooling || e == nil || e.pooled {
		return
	}
	if e.index >= 0 && e.index < len(q.h) && q.h[e.index] == e {
		return // still scheduled
	}
	e.pooled = true
	e.Payload = nil
	q.pool = append(q.pool, e)
}

// Pop removes and returns the earliest event. It returns nil when the queue
// is empty.
func (q *Queue) Pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Event)
}

// Peek returns the earliest event without removing it, or nil when empty.
func (q *Queue) Peek() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Cancel removes e from the queue. Cancelling an event that was already
// popped or cancelled is a no-op.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	if e.index >= 0 && e.index < len(q.h) && q.h[e.index] == e {
		heap.Remove(&q.h, e.index)
	}
}

// before reports whether a should dispatch before b.
func before(a, b *Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Prio != b.Prio {
		return a.Prio < b.Prio
	}
	return a.seq < b.seq
}

type eventHeap []*Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return before(h[i], h[j]) }
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
