// Package eventq implements the deterministic priority event queue that
// drives the discrete-event scheduling simulator.
//
// Events are ordered by (Time, Priority, sequence number). The sequence
// number — assigned at push time — breaks ties deterministically, so two runs
// of the same simulation always dispatch events in the same order. Entries
// can be cancelled cheaply, which the mechanisms use to withdraw planned
// preemptions and reservation timeouts when an on-demand job arrives early.
//
// Two backends implement the same total order. The default is a calendar
// queue (Brown, CACM'88): a power-of-two ring of sorted buckets indexed by
// floor(Time/width), which makes Push/Pop amortized O(1) for the
// near-monotone event populations a simulation produces — the binary heap's
// O(log n) per operation is one of the superlinear walls between the engine
// and multi-million-event traces. UseHeap switches an empty queue to the
// retained binary-heap backend; the naive reference engine path runs on it,
// and the calendar queue is differentially tested against it (dispatch-order
// equivalence under fuzzed Push/Pop/Cancel/Recycle interleavings).
package eventq

import (
	"container/heap"
	"sort"
)

// Priority orders events that fire at the same instant. Lower values
// dispatch first. The ordering encodes the scheduling semantics of the
// simulator: releases happen before arrivals so that an on-demand job
// arriving exactly when another job ends can use the freed nodes, and the
// scheduler pass runs after all state changes at that instant.
type Priority int

// Priority classes from first-dispatched to last-dispatched.
const (
	PrioEnd      Priority = iota // job completions free resources first
	PrioFault                    // node failures (extension)
	PrioNotice                   // on-demand advance notices
	PrioPreempt                  // planned preemptions and warning expiries
	PrioTimeout                  // reservation timeouts
	PrioArrive                   // job submissions and on-demand arrivals
	PrioSchedule                 // scheduler invocation, always last
)

// Event is an entry in the queue. Payload is opaque to the queue.
type Event struct {
	Time    int64
	Prio    Priority
	Payload any
	seq     uint64
	// index locates the event inside its backend — the heap position, or the
	// calendar bucket it was placed in. -1 once removed.
	index    int
	canceled bool
	pooled   bool // on the free list, awaiting reuse
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// minBuckets is the initial (and minimum) calendar ring size.
const minBuckets = 4

// Queue is a deterministic priority queue of events. The zero value is ready
// to use and runs on the calendar backend; see UseHeap.
type Queue struct {
	// heapMode selects the retained binary-heap backend (see UseHeap).
	heapMode bool
	h        eventHeap

	// Calendar backend: a power-of-two ring of buckets, each sorted by the
	// dispatch order. An event at time t lives in bucket
	// floorDiv(t, width) & (len(buckets)-1). lastT is a lower bound on the
	// minimum live event time: Pop raises it to the dispatched time, Push
	// lowers it when an event lands in the past (mechanisms schedule at the
	// current instant), so the bucket scan always starts at the right window.
	buckets [][]*Event
	width   int64
	lastT   int64
	n       int

	seq  uint64
	pool []*Event
	// pooling enables the internal free list (see EnablePooling).
	pooling bool
}

// EnablePooling turns on the internal Event free list: Recycle parks spent
// events and Push reuses them, so a long simulation reaches a steady state
// where event scheduling stops allocating. Off by default because reuse makes
// a retained stale handle dangerous — enable it only when every Recycle call
// provably hands back the last live reference (the simulation engine does;
// its mechanism-held timer handles are never recycled).
func (q *Queue) EnablePooling() { q.pooling = true }

// UseHeap switches an empty queue to the binary-heap backend — the naive
// reference implementation the calendar queue is pinned byte-identical to.
// It must be called before the first Push.
func (q *Queue) UseHeap() {
	if q.Len() != 0 {
		panic("eventq: UseHeap on a non-empty queue")
	}
	q.heapMode = true
}

// Len returns the number of live (non-cancelled) events.
// Cancelled events are removed eagerly, so this is exact.
func (q *Queue) Len() int {
	if q.heapMode {
		return len(q.h)
	}
	return q.n
}

// Push schedules payload at time t with priority p and returns a handle that
// can be used to cancel it.
func (q *Queue) Push(t int64, p Priority, payload any) *Event {
	var e *Event
	if n := len(q.pool); n > 0 {
		e = q.pool[n-1]
		q.pool[n-1] = nil
		q.pool = q.pool[:n-1]
		*e = Event{Time: t, Prio: p, Payload: payload, seq: q.seq}
	} else {
		e = &Event{Time: t, Prio: p, Payload: payload, seq: q.seq}
	}
	q.seq++
	q.insert(e)
	return e
}

// insert places e into the active backend.
func (q *Queue) insert(e *Event) {
	if q.heapMode {
		heap.Push(&q.h, e)
		return
	}
	if q.buckets == nil {
		q.buckets = make([][]*Event, minBuckets)
		q.width = 1
		q.lastT = e.Time
	}
	if q.n+1 > 2*len(q.buckets) {
		q.rebuild(2 * len(q.buckets))
	}
	q.place(e)
	q.n++
	if e.Time < q.lastT {
		q.lastT = e.Time
	}
}

// place inserts e into its calendar bucket at its sorted position.
func (q *Queue) place(e *Event) {
	b := int(floorDiv(e.Time, q.width)) & (len(q.buckets) - 1)
	bk := q.buckets[b]
	i := sort.Search(len(bk), func(k int) bool { return before(e, bk[k]) })
	bk = append(bk, nil)
	copy(bk[i+1:], bk[i:])
	bk[i] = e
	q.buckets[b] = bk
	e.index = b
}

// rebuild resizes the ring to nb buckets and re-derives the bucket width from
// the live population (the average inter-event gap, clamped to one tick).
// Events are redistributed in global dispatch order, which keeps every bucket
// sorted, and lastT snaps to the true minimum.
func (q *Queue) rebuild(nb int) {
	all := make([]*Event, 0, q.n)
	for _, bk := range q.buckets {
		all = append(all, bk...)
	}
	sort.Slice(all, func(i, j int) bool { return before(all[i], all[j]) })
	var width int64 = 1
	if n := len(all); n > 1 {
		width = (all[n-1].Time - all[0].Time) / int64(n-1)
		if width < 1 {
			width = 1
		}
	}
	q.width = width
	q.buckets = make([][]*Event, nb)
	for _, e := range all {
		q.place(e)
	}
	if len(all) > 0 {
		q.lastT = all[0].Time
	}
}

// findMin locates the earliest live event and its bucket, advancing lastT to
// its time. The scan visits at most one full rotation of the ring starting at
// lastT's window; the window bound (head.Time < top) is exact because events
// one ring-period apart never share a window within a single rotation. When
// the next event is further than one rotation away (a sparse tail), a direct
// search over the bucket heads finds it and lastT jumps forward, so repeated
// operations on a sparse queue do not rescan.
func (q *Queue) findMin() (int, *Event) {
	if q.n == 0 {
		return -1, nil
	}
	nb := len(q.buckets)
	vb := floorDiv(q.lastT, q.width)
	b := int(vb) & (nb - 1)
	top := (vb + 1) * q.width
	for i := 0; i < nb; i++ {
		if bk := q.buckets[b]; len(bk) > 0 && bk[0].Time < top {
			q.lastT = bk[0].Time
			return b, bk[0]
		}
		b = (b + 1) & (nb - 1)
		top += q.width
	}
	best := -1
	for i, bk := range q.buckets {
		if len(bk) > 0 && (best < 0 || before(bk[0], q.buckets[best][0])) {
			best = i
		}
	}
	q.lastT = q.buckets[best][0].Time
	return best, q.buckets[best][0]
}

// removeAt deletes position i from bucket b.
func (q *Queue) removeAt(b, i int) {
	bk := q.buckets[b]
	copy(bk[i:], bk[i+1:])
	bk[len(bk)-1] = nil
	q.buckets[b] = bk[:len(bk)-1]
	q.n--
	if nb := len(q.buckets); nb > minBuckets && q.n < nb/2 {
		q.rebuild(nb / 2)
	}
}

// Pop removes and returns the earliest event. It returns nil when the queue
// is empty.
func (q *Queue) Pop() *Event {
	if q.heapMode {
		if len(q.h) == 0 {
			return nil
		}
		return heap.Pop(&q.h).(*Event)
	}
	b, e := q.findMin()
	if e == nil {
		return nil
	}
	e.index = -1
	q.removeAt(b, 0)
	return e
}

// Peek returns the earliest event without removing it, or nil when empty.
func (q *Queue) Peek() *Event {
	if q.heapMode {
		if len(q.h) == 0 {
			return nil
		}
		return q.h[0]
	}
	_, e := q.findMin()
	return e
}

// scheduled reports whether e is currently stored in q.
func (q *Queue) scheduled(e *Event) bool {
	if e.index < 0 {
		return false
	}
	if q.heapMode {
		return e.index < len(q.h) && q.h[e.index] == e
	}
	if e.index >= len(q.buckets) {
		return false
	}
	for _, x := range q.buckets[e.index] {
		if x == e {
			return true
		}
	}
	return false
}

// Cancel removes e from the queue. Cancelling an event that was already
// popped or cancelled is a no-op.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.canceled {
		return
	}
	debugCancel(e)
	e.canceled = true
	if q.heapMode {
		if e.index >= 0 && e.index < len(q.h) && q.h[e.index] == e {
			heap.Remove(&q.h, e.index)
		}
		return
	}
	if b := e.index; b >= 0 && b < len(q.buckets) {
		for i, x := range q.buckets[b] {
			if x == e {
				e.index = -1
				q.removeAt(b, i)
				return
			}
		}
	}
}

// Recycle parks e for reuse by a future Push. The caller asserts that no
// other reference to e survives: e must already be popped or cancelled, and
// every handle to it dropped — recycling a still-referenced event would let
// a later Cancel through the stale handle hit an unrelated reuse. Recycle is
// a no-op when pooling is disabled, for nil events, for events still in the
// queue, and for events already parked, so callers may recycle defensively.
// The eventqdebug build tag turns the defensive no-ops into panics.
func (q *Queue) Recycle(e *Event) {
	if e == nil {
		return
	}
	debugRecycle(q, e)
	if !q.pooling || e.pooled {
		return
	}
	if q.scheduled(e) {
		return // still scheduled
	}
	e.pooled = true
	e.Payload = nil
	q.pool = append(q.pool, e)
}

// before reports whether a should dispatch before b.
func before(a, b *Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Prio != b.Prio {
		return a.Prio < b.Prio
	}
	return a.seq < b.seq
}

// floorDiv is floor(a/w) for positive w, exact for negative a (Go's integer
// division truncates toward zero).
func floorDiv(a, w int64) int64 {
	d := a / w
	if a%w != 0 && a < 0 {
		d--
	}
	return d
}

type eventHeap []*Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return before(h[i], h[j]) }
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
