//go:build eventqdebug

package eventq

import "fmt"

// With the eventqdebug build tag the queue turns event-lifetime misuse —
// easy to hit when handle handling changes, and silently absorbed by the
// defensive no-ops in a normal build — into panics:
//
//   - recycling an event that is still scheduled (the handle is still
//     referenced by the queue itself; a reuse would corrupt dispatch order),
//   - recycling an event twice (two owners both believed they held the last
//     reference),
//   - cancelling an event after it was recycled (a stale handle outlived the
//     Recycle contract; with pooling the cancel could hit an unrelated reuse).
//
// Run the suites with `go test -tags eventqdebug ./...` to arm them.

func debugRecycle(q *Queue, e *Event) {
	if e.pooled {
		panic(fmt.Sprintf("eventq: double recycle of event t=%d prio=%d seq=%d", e.Time, e.Prio, e.seq))
	}
	if q.scheduled(e) {
		panic(fmt.Sprintf("eventq: recycle of still-scheduled event t=%d prio=%d seq=%d", e.Time, e.Prio, e.seq))
	}
}

func debugCancel(e *Event) {
	if e.pooled {
		panic(fmt.Sprintf("eventq: cancel after recycle (stale handle) t=%d prio=%d seq=%d", e.Time, e.Prio, e.seq))
	}
}
