package eventq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPopOrderByTime(t *testing.T) {
	var q Queue
	q.Push(30, PrioEnd, "c")
	q.Push(10, PrioEnd, "a")
	q.Push(20, PrioEnd, "b")
	want := []string{"a", "b", "c"}
	for i, w := range want {
		e := q.Pop()
		if e == nil || e.Payload.(string) != w {
			t.Fatalf("pop %d: got %v, want %q", i, e, w)
		}
	}
	if q.Pop() != nil {
		t.Fatal("queue should be empty")
	}
}

func TestPopOrderByPriorityAtSameTime(t *testing.T) {
	var q Queue
	q.Push(100, PrioSchedule, "sched")
	q.Push(100, PrioArrive, "arrive")
	q.Push(100, PrioEnd, "end")
	q.Push(100, PrioTimeout, "timeout")
	q.Push(100, PrioPreempt, "preempt")
	q.Push(100, PrioNotice, "notice")
	q.Push(100, PrioFault, "fault")
	want := []string{"end", "fault", "notice", "preempt", "timeout", "arrive", "sched"}
	for i, w := range want {
		if got := q.Pop().Payload.(string); got != w {
			t.Fatalf("pop %d: got %q, want %q", i, got, w)
		}
	}
}

func TestFIFOWithinSamePriority(t *testing.T) {
	var q Queue
	for i := 0; i < 10; i++ {
		q.Push(5, PrioArrive, i)
	}
	for i := 0; i < 10; i++ {
		if got := q.Pop().Payload.(int); got != i {
			t.Fatalf("tie-break not FIFO: got %d, want %d", got, i)
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	a := q.Push(1, PrioEnd, "a")
	b := q.Push(2, PrioEnd, "b")
	q.Cancel(a)
	if q.Len() != 1 {
		t.Fatalf("len after cancel = %d, want 1", q.Len())
	}
	if !a.Canceled() {
		t.Fatal("a should report cancelled")
	}
	if got := q.Pop(); got != b {
		t.Fatalf("pop returned %v, want b", got)
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	var q Queue
	a := q.Push(1, PrioEnd, "a")
	q.Cancel(a)
	q.Cancel(a) // must not panic or corrupt the heap
	q.Cancel(nil)
	if q.Len() != 0 {
		t.Fatalf("len = %d, want 0", q.Len())
	}
}

func TestCancelAfterPop(t *testing.T) {
	var q Queue
	a := q.Push(1, PrioEnd, "a")
	q.Push(2, PrioEnd, "b")
	got := q.Pop()
	if got != a {
		t.Fatal("expected to pop a")
	}
	q.Cancel(a) // already popped: must not disturb remaining entries
	if q.Len() != 1 {
		t.Fatalf("len = %d, want 1", q.Len())
	}
	if q.Pop().Payload.(string) != "b" {
		t.Fatal("b lost after cancelling popped event")
	}
}

func TestCancelMiddleKeepsHeapValid(t *testing.T) {
	var q Queue
	var handles []*Event
	for i := 0; i < 100; i++ {
		handles = append(handles, q.Push(int64(i%17), PrioArrive, i))
	}
	for i := 0; i < 100; i += 3 {
		q.Cancel(handles[i])
	}
	prev := int64(-1)
	n := 0
	for {
		e := q.Pop()
		if e == nil {
			break
		}
		if e.Time < prev {
			t.Fatalf("heap order violated: %d after %d", e.Time, prev)
		}
		prev = e.Time
		n++
	}
	if n != 66 {
		t.Fatalf("popped %d events, want 66", n)
	}
}

func TestPeek(t *testing.T) {
	var q Queue
	if q.Peek() != nil {
		t.Fatal("peek of empty queue should be nil")
	}
	q.Push(9, PrioEnd, "x")
	q.Push(3, PrioEnd, "y")
	if q.Peek().Payload.(string) != "y" {
		t.Fatal("peek should return earliest")
	}
	if q.Len() != 2 {
		t.Fatal("peek must not remove")
	}
}

// Property: for any random sequence of pushes, popping drains events in
// non-decreasing (time, priority, seq) order and returns exactly as many
// events as were pushed.
func TestPopOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var q Queue
		n := 1 + r.Intn(200)
		for i := 0; i < n; i++ {
			q.Push(int64(r.Intn(50)), Priority(r.Intn(7)), i)
		}
		var prev *Event
		count := 0
		for {
			e := q.Pop()
			if e == nil {
				break
			}
			count++
			if prev != nil && before(e, prev) {
				return false
			}
			prev = e
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved pushes, pops, and cancels never violate ordering and
// conserve events (popped + cancelled == pushed at drain time).
func TestMixedOperationsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var q Queue
		live := make(map[*Event]bool)
		pushed, popped, cancelled := 0, 0, 0
		for op := 0; op < 500; op++ {
			switch r.Intn(3) {
			case 0:
				e := q.Push(int64(r.Intn(100)), Priority(r.Intn(7)), op)
				live[e] = true
				pushed++
			case 1:
				if e := q.Pop(); e != nil {
					if e.Canceled() {
						return false // cancelled events must never be popped
					}
					delete(live, e)
					popped++
				}
			case 2:
				for e := range live {
					q.Cancel(e)
					delete(live, e)
					cancelled++
					break
				}
			}
		}
		for q.Pop() != nil {
			popped++
		}
		return pushed == popped+cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int {
		var q Queue
		r := rand.New(rand.NewSource(99))
		for i := 0; i < 300; i++ {
			q.Push(int64(r.Intn(20)), Priority(r.Intn(7)), i)
		}
		var order []int
		for {
			e := q.Pop()
			if e == nil {
				break
			}
			order = append(order, e.Payload.(int))
		}
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("dispatch order diverged at %d", i)
		}
	}
}

func BenchmarkPushPop(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	times := make([]int64, 1024)
	for i := range times {
		times[i] = int64(r.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var q Queue
		for j := 0; j < 1024; j++ {
			q.Push(times[j], PrioArrive, j)
		}
		for q.Pop() != nil {
		}
	}
}
