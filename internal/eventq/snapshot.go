package eventq

import (
	"fmt"
	"sort"
)

// Seq returns the event's push-order sequence number. Snapshots persist it so
// that a restored queue breaks same-instant ties exactly as the original
// would have.
func (e *Event) Seq() uint64 { return e.seq }

// SeqCounter returns the next sequence number the queue would assign.
func (q *Queue) SeqCounter() uint64 { return q.seq }

// live appends every live event to out, in no particular order.
func (q *Queue) live(out []*Event) []*Event {
	if q.heapMode {
		return append(out, q.h...)
	}
	for _, bk := range q.buckets {
		out = append(out, bk...)
	}
	return out
}

// Ordered returns every live event in dispatch order — the exact order Pop
// would deliver them — without disturbing the queue. Cancelled events are
// removed eagerly, so the result is precisely the pending event set; it is
// the canonical iteration for serializing queue contents, identical for both
// backends.
func (q *Queue) Ordered() []*Event {
	out := q.live(make([]*Event, 0, q.Len()))
	sort.Slice(out, func(i, j int) bool { return before(out[i], out[j]) })
	return out
}

// PushRestored schedules payload with an explicit sequence number, bypassing
// the queue's counter. It exists solely for snapshot restore: replaying the
// serialized (time, priority, seq) triples reproduces the original dispatch
// order bit-for-bit. It fails if seq has already reached the queue's counter
// position — restored events must predate every future push. Callers are
// responsible for not reusing a seq across live events (the engine's restore
// path indexes every event by seq and rejects collisions there).
func (q *Queue) PushRestored(t int64, p Priority, payload any, seq uint64) (*Event, error) {
	if seq >= q.seq {
		return nil, fmt.Errorf("eventq: restored seq %d not below counter %d", seq, q.seq)
	}
	e := &Event{Time: t, Prio: p, Payload: payload, seq: seq}
	q.insert(e)
	return e, nil
}

// Contains reports whether e is currently scheduled in q. Popped, cancelled,
// and foreign events report false. Mechanisms use it to tell a live timer
// handle from a stale one when serializing their state.
func (q *Queue) Contains(e *Event) bool {
	return e != nil && q.scheduled(e)
}

// SetSeqCounter positions the sequence counter, so pushes after a restore
// continue the original numbering. It fails if n would move the counter
// backwards past a live event.
func (q *Queue) SetSeqCounter(n uint64) error {
	for _, ev := range q.live(nil) {
		if ev.seq >= n {
			return fmt.Errorf("eventq: counter %d not above live seq %d", n, ev.seq)
		}
	}
	q.seq = n
	return nil
}
