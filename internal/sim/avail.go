package sim

import (
	"fmt"

	"hybridsched/internal/eventq"
	"hybridsched/internal/job"
	"hybridsched/internal/nodeset"
)

// This file is the engine's availability model: nodes leave service — a
// failure with a repair time, or a scheduled maintenance drain — and return
// later, shrinking and restoring the capacity every scheduler pass plans
// against. Down nodes live in the cluster's down pool, so FreeCount (the
// planner's supply), reservations, and the partition invariant are all
// capacity-aware without any scheduler-side special cases.
//
// Ordering at one instant: failures and drain openings dispatch at
// eventq.PrioFault (after completions, before notices and arrivals); repairs
// and drain closings dispatch at eventq.PrioEnd (restored capacity is usable
// by anything arriving at the same instant).

// drainWindow is one scheduled maintenance window. It wants a node count; it
// absorbs free nodes when it opens and keeps absorbing as capacity frees up
// (checked before every scheduler pass), then returns everything it took when
// it closes. A drain never preempts: running jobs finish on their nodes, and
// the window simply holds whatever it managed to collect.
type drainWindow struct {
	want  int
	taken *nodeset.Set
	end   int64
}

// Availability event payloads.
type (
	evNodeDown struct {
		node        int
		repairAfter int64
	}
	evNodeUp     struct{ nodes *nodeset.Set }
	evDrainStart struct{ d *drainWindow }
	evDrainEnd   struct{ d *drainWindow }
)

// emitNode delivers a node-availability event (Job is -1: no job attached).
func (e *Engine) emitNode(t EventType, nodes int) {
	if e.sink != nil {
		e.sink(Event{Type: t, Time: e.clk, Job: -1, Nodes: nodes})
	}
}

// DownCount returns the number of nodes currently out of service.
func (e *Engine) DownCount() int { return e.cl.DownCount() }

// AvailableNodes returns the number of in-service nodes (system size minus
// failed-under-repair and drained nodes).
func (e *Engine) AvailableNodes() int { return e.cl.AvailableCount() }

// ScheduleNodeFailure schedules node to fail at virtual time t with the given
// repair delay (see FailNode). Fault injectors lay out failure timelines with
// it; the node strike and its consequences are resolved when the event fires.
func (e *Engine) ScheduleNodeFailure(t int64, node int, repairAfter int64) error {
	if node < 0 || node >= e.cfg.Nodes {
		return fmt.Errorf("sim: ScheduleNodeFailure of node %d outside [0,%d)", node, e.cfg.Nodes)
	}
	if t < e.clk {
		t = e.clk
	}
	e.q.Push(t, eventq.PrioFault, evNodeDown{node: node, repairAfter: repairAfter})
	return nil
}

// FailNode fails one node at the current instant. If a job holds the node it
// is interrupted first: a rigid or on-demand job is preempted back to its
// last checkpoint, a running malleable job loses its in-flight work, and a
// malleable job already inside its preemption warning has the warning expire
// immediately (its nodes are freed exactly once — no double release).
//
// With repairAfter > 0 the node then leaves service for that many seconds:
// the free pool every scheduler pass plans against shrinks, and an
// engine-level repair event restores the node. With repairAfter <= 0 the node
// repairs instantly — the legacy shortcut the fault extension used before the
// availability model existed — so capacity never shrinks.
//
// The return value reports whether the failure struck a job. Failures on
// free or reserved nodes still remove capacity (a reserved node is taken out
// of its claim's reservation); failures on a node already down are misses
// with no effect.
func (e *Engine) FailNode(node int, repairAfter int64) bool {
	if node < 0 || node >= e.cfg.Nodes || e.cl.IsDown(node) {
		e.met.NoteFailure(false)
		return false
	}
	struck := false
	if holder, ok := e.cl.AllocHolder(node); ok {
		if ent := e.lookup(holder); ent != nil && ent.running {
			j := ent.j
			struck = true
			switch {
			case j.State == job.Warning:
				e.expireWarningEarly(j)
			case j.Class == job.Malleable:
				e.PreemptMalleableNow(j)
			default:
				e.PreemptRigid(j)
			}
		}
	}
	e.met.NoteFailure(struck)
	if repairAfter > 0 {
		downed := e.takeNodeDown(node)
		if !downed.Empty() {
			e.emitNode(EventNodeDown, downed.Len())
			e.q.Push(e.clk+repairAfter, eventq.PrioEnd, evNodeUp{nodes: downed})
		}
	}
	e.requestSchedule()
	return struck
}

// takeNodeDown moves the failed node out of service from whichever pool it
// ended up in after the strike. The preemption path can hand the node
// straight back to the mechanism (a directed return re-reserving it, or an
// on-demand start claiming it synchronously from OnWarningExpired); if it is
// already re-allocated, an arbitrary free node substitutes — the capacity
// loss is what matters — and with nothing free the repair window is skipped
// entirely (the failure still preempted its victim).
func (e *Engine) takeNodeDown(node int) *nodeset.Set {
	switch {
	case e.cl.IsFree(node):
		set := nodeset.FromIDs(node)
		e.cl.TakeDownExact(set)
		return set
	default:
		if claim, ok := e.cl.ReservationHolder(node); ok {
			e.cl.TakeDownReserved(claim, node)
			return nodeset.FromIDs(node)
		}
		return e.cl.TakeDownFree(1)
	}
}

// expireWarningEarly forces a malleable job's preemption warning to expire at
// the current instant (a failure struck it mid-warning). The pending expiry
// event is cancelled and its claim honored, so the nodes are released exactly
// once and the mechanism sees the usual OnWarningExpired callback.
func (e *Engine) expireWarningEarly(j *job.Job) {
	ent := e.mustEnt(j)
	wev := ent.warnEv
	if wev == nil {
		e.fail("sim: job %d in warning with no expiry event", j.ID)
		return
	}
	claim := wev.Payload.(evWarn).claim
	e.q.Cancel(wev)
	ent.warnEv = nil
	e.q.Recycle(wev)
	e.handleWarnExpired(j, claim)
}

// handleNodeUp returns repaired nodes to the free pool.
func (e *Engine) handleNodeUp(nodes *nodeset.Set) {
	e.cl.Restore(nodes)
	e.emitNode(EventNodeUp, nodes.Len())
	e.requestSchedule()
}

// ScheduleDrain schedules a maintenance window: starting at start, up to
// count nodes are taken out of service — free nodes immediately, more as
// capacity frees up — and everything absorbed returns at start+duration.
// Drains never preempt running jobs. Multiple windows may overlap; each
// absorbs independently.
func (e *Engine) ScheduleDrain(start, duration int64, count int) error {
	if count < 1 || count > e.cfg.Nodes {
		return fmt.Errorf("sim: drain of %d nodes on a %d-node system", count, e.cfg.Nodes)
	}
	if duration < 1 {
		return fmt.Errorf("sim: drain duration %d must be positive", duration)
	}
	if start < e.clk {
		return fmt.Errorf("sim: drain start t=%d is before the clock (t=%d)", start, e.clk)
	}
	d := &drainWindow{want: count, taken: &nodeset.Set{}, end: start + duration}
	e.q.Push(start, eventq.PrioFault, evDrainStart{d: d})
	return nil
}

// handleDrainStart opens a maintenance window: absorb what the free pool has
// now, keep absorbing before every scheduler pass, and schedule the close.
func (e *Engine) handleDrainStart(d *drainWindow) {
	e.drains = append(e.drains, d)
	e.emitNode(EventDrain, d.want)
	e.drainAbsorb()
	e.q.Push(d.end, eventq.PrioEnd, evDrainEnd{d: d})
	e.requestSchedule()
}

// handleDrainEnd closes a maintenance window and restores everything it took.
func (e *Engine) handleDrainEnd(d *drainWindow) {
	for i, w := range e.drains {
		if w == d {
			copy(e.drains[i:], e.drains[i+1:])
			e.drains[len(e.drains)-1] = nil
			e.drains = e.drains[:len(e.drains)-1]
			break
		}
	}
	if !d.taken.Empty() {
		e.cl.Restore(d.taken)
		e.emitNode(EventNodeUp, d.taken.Len())
	}
	e.requestSchedule()
}

// drainAbsorb lets every open maintenance window with a deficit take nodes
// from the free pool. It runs when a window opens and before every scheduler
// pass, so a drain outranks waiting jobs for newly freed capacity — but never
// interferes with nodes a mechanism already reserved or handed out.
func (e *Engine) drainAbsorb() {
	for _, d := range e.drains {
		deficit := d.want - d.taken.Len()
		if deficit <= 0 {
			continue
		}
		take := e.cl.TakeDownFree(deficit)
		if take.Empty() {
			continue
		}
		d.taken.UnionWith(take)
		e.emitNode(EventNodeDown, take.Len())
	}
}
