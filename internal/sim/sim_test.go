package sim

import (
	"testing"

	"hybridsched/internal/checkpoint"
	"hybridsched/internal/job"
	"hybridsched/internal/nodeset"
)

func rigid(id int, submit int64, size int, work int64) *job.Job {
	return job.NewRigid(id, 0, submit, size, work, work, 0, checkpoint.Plan{})
}

func rigidEst(id int, submit int64, size int, work, est int64) *job.Job {
	return job.NewRigid(id, 0, submit, size, work, est, 0, checkpoint.Plan{})
}

func malleable(id int, submit int64, max, min int, work int64) *job.Job {
	return job.NewMalleable(id, 0, submit, max, min, work, work, 0)
}

func onDemand(id int, submit int64, size int, work int64) *job.Job {
	return job.NewOnDemand(id, 0, submit, size, work, work, 0, job.NoNotice, submit, submit)
}

func TestSingleRigidJob(t *testing.T) {
	j := rigid(1, 100, 64, 3600)
	e, err := New(Config{Nodes: 100, Validate: true}, []*job.Job{j}, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 1 {
		t.Fatalf("jobs %d", rep.Jobs)
	}
	if j.StartTime != 100 || j.EndTime != 3700 {
		t.Fatalf("start %d end %d", j.StartTime, j.EndTime)
	}
	if rep.Makespan != 3600 {
		t.Fatalf("makespan %d", rep.Makespan)
	}
	// 64 nodes busy of 100 for the whole window.
	if rep.Utilization < 0.639 || rep.Utilization > 0.641 {
		t.Fatalf("utilization %g", rep.Utilization)
	}
}

func TestFCFSQueueing(t *testing.T) {
	// Two 60-node jobs on 100 nodes: the second must wait for the first.
	a := rigid(1, 0, 60, 1000)
	b := rigid(2, 10, 60, 1000)
	e, _ := New(Config{Nodes: 100, Validate: true}, []*job.Job{a, b}, Baseline{})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a.StartTime != 0 {
		t.Fatalf("a started %d", a.StartTime)
	}
	if b.StartTime != 1000 {
		t.Fatalf("b started %d, want 1000", b.StartTime)
	}
}

func TestEASYBackfillEndToEnd(t *testing.T) {
	// 100 nodes. a holds 60 until t=1000 (estimate accurate). b needs 80
	// (blocked, shadow t=1000). c (30 nodes, 500s) fits before the shadow and
	// must backfill; d (30 nodes, 5000s) would delay b and must not.
	a := rigid(1, 0, 60, 1000)
	b := rigid(2, 1, 80, 1000)
	c := rigid(3, 2, 30, 500)
	d := rigid(4, 3, 30, 5000)
	e, _ := New(Config{Nodes: 100, Validate: true}, []*job.Job{a, b, c, d}, Baseline{})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if c.StartTime != 2 {
		t.Fatalf("c should backfill at submit (t=2), started %d", c.StartTime)
	}
	if b.StartTime != 1000 {
		t.Fatalf("b must start at the shadow time, started %d", b.StartTime)
	}
	if d.StartTime < 1000 {
		t.Fatalf("d backfilled too early (%d), delaying b", d.StartTime)
	}
}

// flexBaseline is Baseline with malleable sizing enabled, standing in for a
// mechanism without any on-demand logic.
type flexBaseline struct{ Baseline }

func (flexBaseline) FlexibleMalleable() bool { return true }

func TestMalleableStartsShrunkOnCrowdedSystem(t *testing.T) {
	// 100 nodes; a rigid job holds 70; with flexible sizing the malleable
	// job (max 80, min 20) starts immediately on the 30 free nodes.
	a := rigid(1, 0, 70, 10_000)
	m := malleable(2, 10, 80, 20, 800) // work 800s at 80 nodes = 64000 node-sec
	e, _ := New(Config{Nodes: 100, Validate: true}, []*job.Job{a, m}, flexBaseline{})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if m.StartTime != 10 {
		t.Fatalf("malleable start %d, want 10", m.StartTime)
	}
	// 64000 node-sec on 30 nodes: ceil = 2134s.
	wantEnd := int64(10) + (800*80+29)/30
	if m.EndTime != wantEnd {
		t.Fatalf("malleable end %d, want %d", m.EndTime, wantEnd)
	}
}

func TestBaselineRunsMalleableRigidly(t *testing.T) {
	// The Table II baseline gives malleable jobs no special treatment: the
	// same scenario waits for the rigid job instead of starting shrunk.
	a := rigid(1, 0, 70, 10_000)
	m := malleable(2, 10, 80, 20, 800)
	e, _ := New(Config{Nodes: 100, Validate: true}, []*job.Job{a, m}, Baseline{})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if m.StartTime != 10_000 {
		t.Fatalf("malleable start %d, want 10000 (rigid treatment)", m.StartTime)
	}
	if m.EndTime != 10_000+800 {
		t.Fatalf("malleable end %d, want full-size run", m.EndTime)
	}
}

func TestBaselineOnDemandQueuesNormally(t *testing.T) {
	// Baseline gives on-demand jobs no priority: an OD job behind a blocked
	// queue waits.
	a := rigid(1, 0, 100, 1000)
	od := onDemand(2, 10, 50, 100)
	e, _ := New(Config{Nodes: 100, Validate: true}, []*job.Job{a, od}, Baseline{})
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if od.StartTime != 1000 {
		t.Fatalf("od start %d, want 1000", od.StartTime)
	}
	if rep.StrictInstantStartRate != 0 {
		t.Fatalf("strict instant rate %g", rep.StrictInstantStartRate)
	}
}

func TestRunTwiceDeterministic(t *testing.T) {
	build := func() []*job.Job {
		return []*job.Job{
			rigid(1, 0, 60, 1000), rigid(2, 5, 50, 2000), rigid(3, 7, 30, 400),
			malleable(4, 9, 40, 10, 600), onDemand(5, 500, 20, 300),
		}
	}
	e1, _ := New(Config{Nodes: 100}, build(), Baseline{})
	r1, err1 := e1.Run()
	e2, _ := New(Config{Nodes: 100}, build(), Baseline{})
	r2, err2 := e2.Run()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.Makespan != r2.Makespan || r1.Utilization != r2.Utilization ||
		r1.All.Turnaround.Mean != r2.All.Turnaround.Mean {
		t.Fatalf("nondeterministic: %+v vs %+v", r1, r2)
	}
}

func TestRejectOversizedJob(t *testing.T) {
	if _, err := New(Config{Nodes: 100}, []*job.Job{rigid(1, 0, 101, 100)}, Baseline{}); err == nil {
		t.Fatal("expected size rejection")
	}
}

func TestRejectDuplicateIDs(t *testing.T) {
	jobs := []*job.Job{rigid(1, 0, 10, 100), rigid(1, 5, 10, 100)}
	if _, err := New(Config{Nodes: 100}, jobs, Baseline{}); err == nil {
		t.Fatal("expected duplicate rejection")
	}
}

func TestEmptyTrace(t *testing.T) {
	e, _ := New(Config{Nodes: 100}, nil, Baseline{})
	rep, err := e.Run()
	if err != nil || rep.Jobs != 0 {
		t.Fatalf("empty run: %v %+v", err, rep)
	}
}

// preemptMech preempts the named victim when the on-demand job arrives and
// starts the on-demand job from the freed nodes: a minimal PAA used to test
// the engine primitives in isolation from internal/core.
type preemptMech struct {
	Baseline
	e *Engine
}

func (m *preemptMech) Attach(e *Engine)         { m.e = e }
func (m *preemptMech) QueueOnDemandFirst() bool { return true }

func (m *preemptMech) OnODArrival(j *job.Job) bool {
	need := j.Size - m.e.Cluster().FreeCount()
	for _, victim := range m.e.Running() {
		if need <= 0 {
			break
		}
		if victim.Class == job.Malleable {
			m.e.PreemptMalleableWithWarning(victim, j.ID)
			return true // start pending; simplified: assume one victim suffices
		}
		freed := m.e.PreemptRigid(victim)
		m.e.Cluster().ReserveExact(j.ID, freed)
		need -= freed.Len()
	}
	m.e.StartOnDemand(j)
	return true
}

func (m *preemptMech) OnWarningExpired(j *job.Job, claim int, freed *nodeset.Set) {
	od := m.e.JobByID(claim)
	m.e.Cluster().ReserveExact(claim, freed.Clone().Pick(od.Size-m.e.Cluster().ReservedCount(claim)))
	m.e.StartOnDemand(od)
}

func TestEnginePreemptRigidPrimitive(t *testing.T) {
	victim := rigidEst(1, 0, 80, 5000, 6000)
	od := onDemand(2, 1000, 80, 500)
	mech := &preemptMech{}
	e, _ := New(Config{Nodes: 100, Validate: true}, []*job.Job{victim, od}, mech)
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if od.StartTime != 1000 {
		t.Fatalf("od start %d, want instant 1000", od.StartTime)
	}
	if victim.PreemptCount != 1 {
		t.Fatal("victim not preempted")
	}
	// Victim restarts after the on-demand job ends at 1500, redoing all work
	// (no checkpointing): ends 1500+5000.
	if victim.EndTime != 1500+5000 {
		t.Fatalf("victim end %d", victim.EndTime)
	}
	// 1000s * 80 nodes of computation were discarded.
	if rep.Breakdown.Lost <= 0 {
		t.Fatal("lost computation not accounted")
	}
	if rep.StrictInstantStartRate != 1 {
		t.Fatalf("strict instant rate %g", rep.StrictInstantStartRate)
	}
}

func TestEngineWarningPrimitive(t *testing.T) {
	victim := malleable(1, 0, 80, 16, 5000)
	od := onDemand(2, 1000, 80, 500)
	mech := &preemptMech{}
	e, _ := New(Config{Nodes: 100, Validate: true}, []*job.Job{victim, od}, mech)
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// OD starts at warning expiry: 1000 + 120.
	if od.StartTime != 1000+job.WarningPeriod {
		t.Fatalf("od start %d, want %d", od.StartTime, 1000+job.WarningPeriod)
	}
	if victim.PreemptCount != 1 {
		t.Fatal("victim not preempted")
	}
	// Malleable progress survives; lost should be zero.
	if rep.Breakdown.Lost != 0 {
		t.Fatalf("malleable preemption lost %g", rep.Breakdown.Lost)
	}
	// Within the tolerance window this still counts as instant.
	if rep.InstantStartRate != 1 {
		t.Fatalf("instant rate %g", rep.InstantStartRate)
	}
	if rep.StrictInstantStartRate != 0 {
		t.Fatalf("strict rate %g", rep.StrictInstantStartRate)
	}
}

// shrinkMech tests ShrinkMalleable and ExpandMalleable primitives.
type shrinkMech struct {
	Baseline
	e *Engine
}

func (m *shrinkMech) Attach(e *Engine)         { m.e = e }
func (m *shrinkMech) QueueOnDemandFirst() bool { return true }

func (m *shrinkMech) OnODArrival(j *job.Job) bool {
	for _, victim := range m.e.Running() {
		if victim.Class != job.Malleable {
			continue
		}
		freed := m.e.ShrinkMalleable(victim, victim.MinSize)
		m.e.Cluster().ReserveExact(j.ID, freed.Clone().Pick(j.Size))
	}
	m.e.StartOnDemand(j)
	return true
}

func (m *shrinkMech) OnJobCompleted(j *job.Job, freed *nodeset.Set) {
	if j.Class != job.OnDemand {
		return
	}
	for _, r := range m.e.Running() {
		if r.Class == job.Malleable && r.CurSize < r.Size {
			grant := freed.Clone().Pick(r.Size - r.CurSize)
			m.e.ExpandMalleable(r, grant)
		}
	}
}

func TestEngineShrinkExpandPrimitives(t *testing.T) {
	// Malleable holds all 100 nodes (min 20). OD needs 80: shrink to 20,
	// expand back at OD completion.
	m := malleable(1, 0, 100, 20, 10_000)
	od := onDemand(2, 1000, 80, 500)
	mech := &shrinkMech{}
	e, _ := New(Config{Nodes: 100, Validate: true}, []*job.Job{m, od}, mech)
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if od.StartTime != 1000 {
		t.Fatalf("od start %d", od.StartTime)
	}
	if m.ShrinkCount != 1 {
		t.Fatal("not shrunk")
	}
	if m.PreemptCount != 0 {
		t.Fatal("shrink must not count as preemption")
	}
	// Work conservation: 10000*100 node-sec total.
	// 0..1000 at 100 nodes (100k), 1000..1500 at 20 (10k), then back at 100.
	wantEnd := int64(1500) + (10_000*100-100_000-10_000+99)/100
	if m.EndTime != wantEnd {
		t.Fatalf("malleable end %d, want %d", m.EndTime, wantEnd)
	}
	if rep.Breakdown.Lost != 0 {
		t.Fatal("shrink must lose nothing")
	}
}

func TestPrivateHoldUsedAtStart(t *testing.T) {
	// A mechanism reserves 30 nodes privately for job 2 at attach time. Job
	// 1 (80 nodes) is blocked by the hold; job 2 combines its hold with free
	// nodes and backfills immediately.
	a := rigid(1, 0, 80, 1000)
	b := rigid(2, 10, 50, 500)
	e, _ := New(Config{Nodes: 100, Validate: true}, []*job.Job{a, b}, &holdMech{})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if b.StartTime != 10 {
		t.Fatalf("b start %d, want 10 (own hold + free)", b.StartTime)
	}
	if a.StartTime != 510 {
		t.Fatalf("a start %d, want 510 (after b releases)", a.StartTime)
	}
}

type holdMech struct {
	Baseline
}

func (m *holdMech) Attach(e *Engine) {
	e.Cluster().Reserve(2, 30) // private hold for job 2
}

func init() {
	// Sanity: Baseline satisfies the interface.
	var _ Mechanism = Baseline{}
	var _ Mechanism = (*preemptMech)(nil)
}
