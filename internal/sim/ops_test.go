package sim

import (
	"testing"

	"hybridsched/internal/job"
	"hybridsched/internal/nodeset"
)

// attach builds an engine without running it, for direct primitive tests.
func attach(t *testing.T, cfg Config, jobs []*job.Job, mech Mechanism) *Engine {
	t.Helper()
	e, err := New(cfg, jobs, mech)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// forceRunning marks a registered job as holding nodes, bypassing startJob,
// for direct primitive tests.
func forceRunning(e *Engine, j *job.Job) {
	e.mustEnt(j).running = true
	e.addRunning(j)
}

func TestPreemptMalleableNowPrimitive(t *testing.T) {
	m := malleable(1, 0, 80, 16, 1000)
	e := attach(t, Config{Nodes: 100}, []*job.Job{m}, Baseline{})
	m.State = job.Waiting
	e.Cluster().AllocFree(1, 80)
	forceRunning(e, m)
	m.StartMalleable(0, 80)
	e.clk = 500

	freed := e.PreemptMalleableNow(m)
	if freed.Len() != 80 {
		t.Fatalf("freed %d", freed.Len())
	}
	if m.State != job.Waiting || m.PreemptCount != 1 {
		t.Fatalf("state %v preempts %d", m.State, m.PreemptCount)
	}
	// Progress survived the crash-style preemption.
	if m.RemainingWork() != 1000*80-500*80 {
		t.Fatalf("remaining %d", m.RemainingWork())
	}
	if !e.Queued(1) {
		t.Fatal("victim must requeue")
	}
}

func TestPreemptMalleableNowGuards(t *testing.T) {
	r := rigid(1, 0, 10, 100)
	e := attach(t, Config{Nodes: 100}, []*job.Job{r}, Baseline{})
	e.PreemptMalleableNow(r) // wrong class: records an error
	if e.err == nil {
		t.Fatal("expected engine error")
	}
}

func TestShrinkGuards(t *testing.T) {
	m := malleable(1, 0, 80, 16, 1000)
	e := attach(t, Config{Nodes: 100}, []*job.Job{m}, Baseline{})
	m.State = job.Waiting
	e.Cluster().AllocFree(1, 40)
	forceRunning(e, m)
	m.StartMalleable(0, 40)
	// Growing via "shrink" is a bug.
	e.ShrinkMalleable(m, 50)
	if e.err == nil {
		t.Fatal("expected engine error for shrink-to-larger")
	}
}

func TestExpandGuards(t *testing.T) {
	m := malleable(1, 0, 80, 16, 1000)
	e := attach(t, Config{Nodes: 100}, []*job.Job{m}, Baseline{})
	m.State = job.Waiting
	e.Cluster().AllocFree(1, 80)
	forceRunning(e, m)
	m.StartMalleable(0, 80)
	grant := e.Cluster().FreeSet().Pick(5)
	e.ExpandMalleable(m, grant) // already at max: error
	if e.err == nil {
		t.Fatal("expected engine error for expand-past-max")
	}
}

func TestStartOnDemandGuards(t *testing.T) {
	od := onDemand(1, 0, 90, 100)
	e := attach(t, Config{Nodes: 100}, []*job.Job{od}, Baseline{})
	e.Cluster().AllocFree(99, 50) // someone holds half the machine
	od.State = job.Waiting
	e.StartOnDemand(od) // 50 free < 90: error
	if e.err == nil {
		t.Fatal("expected engine error for underfunded start")
	}
	e.err = nil
	e.StartOnDemand(rigid(2, 0, 10, 100)) // wrong class
	if e.err == nil {
		t.Fatal("expected engine error for class")
	}
}

func TestTryResumeNow(t *testing.T) {
	r := rigid(1, 0, 60, 1000)
	m := malleable(2, 0, 80, 16, 1000)
	e := attach(t, Config{Nodes: 100}, []*job.Job{r, m}, Baseline{})
	r.State, m.State = job.Waiting, job.Waiting
	e.enqueue(r)
	e.enqueue(m)

	// Not enough for the rigid job even with a reservation.
	e.Cluster().Reserve(1, 30)
	e.Cluster().AllocFree(99, 50) // free: 20
	if e.TryResumeNow(r) {
		t.Fatal("resume with 30 own + 20 free for size 60 must fail")
	}
	// Malleable resumes at min size.
	if !e.TryResumeNow(m) {
		t.Fatal("malleable should resume at reduced size")
	}
	if m.CurSize != 20 {
		t.Fatalf("resumed at %d, want 20 (all free)", m.CurSize)
	}
	// Not queued: no resume.
	if e.TryResumeNow(m) {
		t.Fatal("running job cannot resume")
	}
}

func TestScheduleTimerClampsPast(t *testing.T) {
	e := attach(t, Config{Nodes: 10}, nil, Baseline{})
	e.clk = 100
	ev := e.ScheduleTimer(50, "late")
	if ev.Time != 100 {
		t.Fatalf("timer at %d, want clamped to 100", ev.Time)
	}
	e.CancelTimer(ev)
	e.CancelTimer(nil) // nil-safe
}

func TestBreakHoldDeadlock(t *testing.T) {
	// Two waiting jobs whose private holds mutually starve them: the engine
	// must dissolve the holds rather than stall forever.
	a := rigid(1, 0, 80, 100)
	b := rigid(2, 0, 80, 100)
	e := attach(t, Config{Nodes: 100, Validate: true}, []*job.Job{a, b}, &deadlockMech{})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a.EndTime < 0 || b.EndTime < 0 {
		t.Fatal("jobs did not complete after hold release")
	}
}

// deadlockMech reserves 30 nodes for each job at attach, so neither 80-node
// job can start (100 - 60 held = 40 free each + 30 own = 70 < 80).
type deadlockMech struct{ Baseline }

func (m *deadlockMech) Attach(e *Engine) {
	e.Cluster().Reserve(1, 30)
	e.Cluster().Reserve(2, 30)
}

func TestSquatLifecycle(t *testing.T) {
	e := attach(t, Config{Nodes: 100, BackfillReserved: true}, nil, Baseline{})
	// Claim 50 reserves 40 nodes and allows squatting.
	e.Cluster().Reserve(50, 40)
	e.SetClaimBackfillable(50, true)

	// A backfill job starts on 20 free + 30 squatted nodes.
	sq := rigid(1, 0, 50, 1000)
	if err := e.register(sq); err != nil {
		t.Fatal(err)
	}
	sq.State = job.Waiting
	e.Cluster().AllocFree(99, 40) // free: 20
	e.enqueue(sq)
	e.startJob(sq, 50, true)
	if e.err != nil {
		t.Fatal(e.err)
	}
	if e.SquattedCount(50) != 30 {
		t.Fatalf("squatted %d, want 30", e.SquattedCount(50))
	}
	if e.Cluster().ReservedCount(50) != 10 {
		t.Fatalf("reservation %d, want 10", e.Cluster().ReservedCount(50))
	}

	// Eviction returns the squatted nodes to the claim.
	e.EvictSquatters(50)
	if e.SquattedCount(50) != 0 {
		t.Fatal("squats must clear")
	}
	if e.Cluster().ReservedCount(50) != 40 {
		t.Fatalf("reservation %d, want 40 after eviction", e.Cluster().ReservedCount(50))
	}
	if sq.PreemptCount != 1 || !e.Queued(1) {
		t.Fatal("squatter must be preempted and requeued")
	}
	if err := e.Cluster().CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestDropClaimSquats(t *testing.T) {
	e := attach(t, Config{Nodes: 100, BackfillReserved: true}, nil, Baseline{})
	e.Cluster().Reserve(50, 40)
	e.SetClaimBackfillable(50, true)
	sq := rigid(1, 0, 40, 1000)
	if err := e.register(sq); err != nil {
		t.Fatal(err)
	}
	sq.State = job.Waiting
	e.Cluster().AllocFree(99, 60) // free: 0
	e.enqueue(sq)
	e.startJob(sq, 40, true)
	if e.SquattedCount(50) != 40 {
		t.Fatalf("squatted %d", e.SquattedCount(50))
	}
	// Timeout path: claim dissolves, squatter keeps running undisturbed.
	e.DropClaimSquats(50)
	e.SetClaimBackfillable(50, false)
	if e.SquattedCount(50) != 0 {
		t.Fatal("squat records must drop")
	}
	if sq.State != job.Running {
		t.Fatal("squatter must keep running")
	}
	if err := e.Cluster().CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestEnqueueWaitingIdempotent(t *testing.T) {
	r := rigid(1, 0, 10, 100)
	e := attach(t, Config{Nodes: 100}, []*job.Job{r}, Baseline{})
	r.State = job.Waiting
	e.EnqueueWaiting(r)
	e.EnqueueWaiting(r)
	if len(e.queue) != 1 {
		t.Fatalf("queue length %d, want 1", len(e.queue))
	}
}

func TestJobByID(t *testing.T) {
	r := rigid(7, 0, 10, 100)
	e := attach(t, Config{Nodes: 100}, []*job.Job{r}, Baseline{})
	if e.JobByID(7) != r {
		t.Fatal("lookup failed")
	}
	if e.JobByID(8) != nil {
		t.Fatal("unknown ID should be nil")
	}
}

func TestRunningExcludesWarningAndOnDemand(t *testing.T) {
	m := malleable(1, 0, 40, 8, 1000)
	od := onDemand(2, 0, 20, 500)
	e := attach(t, Config{Nodes: 100}, []*job.Job{m, od}, Baseline{})
	m.State, od.State = job.Waiting, job.Waiting
	e.Cluster().AllocFree(1, 40)
	forceRunning(e, m)
	m.StartMalleable(0, 40)
	e.Cluster().AllocFree(2, 20)
	forceRunning(e, od)
	od.Start(0)

	if got := e.Running(); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("Running() = %v", got)
	}
	e.PreemptMalleableWithWarning(m, -1)
	if got := e.Running(); len(got) != 0 {
		t.Fatalf("warning job must be excluded, got %v", got)
	}
}

func TestMechanismTimerRoundTrip(t *testing.T) {
	mech := &timerMech{}
	r := rigid(1, 0, 10, 100)
	e := attach(t, Config{Nodes: 100}, []*job.Job{r}, mech)
	mech.e = e
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !mech.fired {
		t.Fatal("timer payload never delivered")
	}
}

type timerMech struct {
	Baseline
	e     *Engine
	fired bool
	armed bool
}

func (m *timerMech) OnJobCompleted(j *job.Job, _ *nodeset.Set) {
	if !m.armed {
		m.armed = true
		m.e.ScheduleTimer(m.e.Now()+10, "ping")
	}
}

func (m *timerMech) OnTimer(p any) {
	if p == "ping" {
		m.fired = true
	}
}
