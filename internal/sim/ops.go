package sim

import (
	"sort"

	"hybridsched/internal/eventq"
	"hybridsched/internal/job"
	"hybridsched/internal/nodeset"
	"hybridsched/internal/policy"
)

// schedulePass runs the queue policy and EASY backfilling over the current
// state and starts every planned job. The optimized path reads the
// incrementally-sorted queue and running list through reusable scratch
// buffers; the reference path re-derives both the naive way and must plan
// exactly the same starts (internal/simtest holds the two to byte-identical
// reports).
func (e *Engine) schedulePass() {
	if len(e.drains) > 0 {
		// Open maintenance windows absorb newly freed capacity before the
		// planner sees it, on both engine paths identically.
		e.drainAbsorb()
	}
	if len(e.queue) == 0 {
		return
	}
	if e.cfg.Reference {
		policy.Sort(e.queue, e.cfg.Policy, e.clk, e.odFirst)
		ri := e.referenceRunningInfo()
		own := func(j *job.Job) int { return e.cl.ReservedCount(j.ID) }
		starts := policy.PlanEASY(e.clk, e.queue, ri, e.cl.FreeCount(), e.backfillExtraCount(), own, e.mech.FlexibleMalleable())
		for _, s := range starts {
			e.startJob(s.J, s.Size, true)
		}
		return
	}

	free := e.cl.FreeCount()
	reserved := e.cl.TotalReserved()
	// Nothing in the queue can start when even the smallest start need
	// exceeds everything the planner could hand out: the free pool, plus
	// reserved capacity counted once as a job's private headroom and once as
	// the shared backfill reserve (the two draws can name the same nodes in
	// the planner's accounting, so the sound bound takes both). The planner
	// would provably return zero starts — skip it. The queue is untouched by
	// a skipped pass, so minNeed and the maintained order stay valid; skips
	// apply only with an incrementally sorted queue, since time-dependent
	// policies re-sort (an observable reordering) on every pass.
	if e.sortedQueue && e.minNeed > free+2*reserved {
		return
	}
	if !e.sortedQueue {
		policy.Sort(e.queue, e.cfg.Policy, e.clk, e.odFirst)
	}
	var own func(j *job.Job) int
	if reserved > 0 {
		own = func(j *job.Job) int { return e.cl.ReservedCount(j.ID) }
	}
	starts := e.planner.PlanEASYSorted(e.clk, e.queue, e.rel, e.relVer, free, e.backfillExtraCount(), own, e.flexible)
	for _, s := range starts {
		e.startJob(s.J, s.Size, true)
	}
	e.recomputeMinNeed()
}

// backfillExtraCount sums the reserved nodes of claims currently marked
// backfillable — the shared reserve backfill candidates may be sized against.
func (e *Engine) backfillExtraCount() int {
	if !e.cfg.BackfillReserved {
		return 0
	}
	bf := 0
	for claim, ok := range e.backfillable {
		if ok {
			bf += e.cl.ReservedCount(claim)
		}
	}
	return bf
}

// runningInfo derives the backfill-planning view of one node-holding job.
func (e *Engine) runningInfo(j *job.Job) (policy.Running, bool) {
	switch j.State {
	case job.Running:
		if j.Class == job.Malleable {
			j.UpdateProgress(e.clk)
			return policy.Running{EstEnd: j.MalleableEstimatedEnd(e.clk), Nodes: j.CurSize, ID: j.ID}, true
		}
		return policy.Running{EstEnd: j.EstimatedEnd(), Nodes: j.CurSize, ID: j.ID}, true
	case job.Warning:
		if ev := e.mustEnt(j).warnEv; ev != nil {
			return policy.Running{EstEnd: ev.Time, Nodes: j.CurSize, ID: j.ID}, true
		}
	}
	return policy.Running{}, false
}

// restoredRunningInfo is runningInfo without the malleable progress
// materialization, for rebuilding the release list from a snapshot: advancing
// a restored job's accounting there would make later snapshot bytes diverge
// from an uninterrupted run's. The estimate-based end is invariant in the
// evaluation time, so the key matches what live maintenance inserted.
func (e *Engine) restoredRunningInfo(j *job.Job) (policy.Running, bool) {
	switch j.State {
	case job.Running:
		if j.Class == job.Malleable {
			return policy.Running{EstEnd: j.MalleableEstimatedEndAsOf(), Nodes: j.CurSize, ID: j.ID}, true
		}
		return policy.Running{EstEnd: j.EstimatedEnd(), Nodes: j.CurSize, ID: j.ID}, true
	case job.Warning:
		if ev := e.mustEnt(j).warnEv; ev != nil {
			return policy.Running{EstEnd: ev.Time, Nodes: j.CurSize, ID: j.ID}, true
		}
	}
	return policy.Running{}, false
}

// referenceRunningInfo is the retained naive path: reconstruct the running
// set by scanning the entry tables (the moral equivalent of the old
// map-iteration), sort the IDs, and allocate a fresh view — exactly the
// shape the incremental running list replaced.
func (e *Engine) referenceRunningInfo() []policy.Running {
	ids := make([]int, 0, len(e.running))
	for i := range e.dense {
		if e.dense[i].j != nil && e.dense[i].running {
			ids = append(ids, e.dense[i].j.ID)
		}
	}
	for id, ent := range e.sparse {
		if ent.running {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	ri := make([]policy.Running, 0, len(ids))
	for _, id := range ids {
		if r, ok := e.runningInfo(e.lookup(id).j); ok {
			ri = append(ri, r)
		}
	}
	return ri
}

// startJob launches j on size nodes, drawing first from the job's own
// reservation, then the free pool, then (when allowSquat and configured)
// reservations marked backfillable, recording squats for later eviction.
func (e *Engine) startJob(j *job.Job, size int, allowSquat bool) {
	need := size
	need -= e.cl.AllocReserved(j.ID, j.ID, need).Len()
	if free := e.cl.FreeCount(); need > 0 && free > 0 {
		take := need
		if take > free {
			take = free
		}
		e.cl.AllocFree(j.ID, take)
		need -= take
	}
	if need > 0 && allowSquat && e.cfg.BackfillReserved && j.Class != job.OnDemand {
		claims := make([]int, 0, len(e.backfillable))
		for claim, ok := range e.backfillable {
			if ok {
				claims = append(claims, claim)
			}
		}
		sort.Ints(claims)
		for _, claim := range claims {
			if need == 0 {
				break
			}
			taken := e.cl.AllocReserved(j.ID, claim, need)
			if taken.Len() == 0 {
				continue
			}
			e.squats[j.ID] = append(e.squats[j.ID], squat{claim: claim, nodes: taken})
			e.squatted[claim] += taken.Len()
			need -= taken.Len()
		}
	}
	if need > 0 {
		e.fail("sim: planner overcommitted: job %d short %d nodes at t=%d", j.ID, need, e.clk)
		return
	}
	// Any leftover private reservation dissolves once the job runs.
	e.cl.UnreserveAll(j.ID)

	e.removeFromQueue(j)
	var end int64
	if j.Class == job.Malleable {
		end = j.StartMalleable(e.clk, size)
	} else {
		end = e.clk + j.Start(e.clk)
	}
	ent := e.mustEnt(j)
	ent.running = true
	e.addRunning(j)
	ent.endEv = e.q.Push(end, eventq.PrioEnd, evEnd{j})
	e.emit(EventStart, j, size)
	if j.Class == job.OnDemand {
		e.mech.OnODStarted(j)
	}
}

// --- Mechanism-facing primitives -----------------------------------------

// StartOnDemand starts an on-demand job immediately from its own reservation
// plus the free pool. The caller must have gathered enough nodes; the engine
// fails the run otherwise.
func (e *Engine) StartOnDemand(j *job.Job) {
	if j.Class != job.OnDemand {
		e.fail("sim: StartOnDemand on %v job %d", j.Class, j.ID)
		return
	}
	if e.cl.ReservedCount(j.ID)+e.cl.FreeCount() < j.Size {
		e.fail("sim: StartOnDemand job %d: %d reserved + %d free < %d",
			j.ID, e.cl.ReservedCount(j.ID), e.cl.FreeCount(), j.Size)
		return
	}
	e.startJob(j, j.Size, false)
}

// PreemptRigid preempts a running rigid (or, in principle, on-demand) job
// immediately: its progress falls back to the last checkpoint, its nodes
// return to the free pool, and the job re-enters the waiting queue with its
// original submission time. The freed node set is returned.
func (e *Engine) PreemptRigid(j *job.Job) *nodeset.Set {
	if j.State != job.Running || j.Class == job.Malleable {
		e.fail("sim: PreemptRigid on job %d (%v, %v)", j.ID, j.Class, j.State)
		return &nodeset.Set{}
	}
	ent := e.mustEnt(j)
	if ev := ent.endEv; ev != nil {
		e.q.Cancel(ev)
		ent.endEv = nil
		e.q.Recycle(ev)
	}
	e.emit(EventPreempt, j, j.CurSize)
	u := j.FinalizePreempt(e.clk)
	e.met.AddUsage(u)
	if j.Ckpt.Enabled() {
		e.emit(EventCheckpoint, j, j.Size)
	}
	freed := e.cl.Release(j.ID)
	ent.running = false
	e.removeRunning(j.ID)
	freed.SubtractWith(e.restoreSquattedNodes(j.ID))
	e.enqueue(j)
	return freed
}

// PreemptMalleableNow preempts a running malleable job with no warning (a
// node crash or a squatter eviction). Completed tasks survive — the loosely
// coupled task model persists finished work — but the setup must be repeated
// and any unfinished in-flight tasks rerun (charged as the setup loss). The
// freed node set is returned.
func (e *Engine) PreemptMalleableNow(j *job.Job) *nodeset.Set {
	if j.State != job.Running || j.Class != job.Malleable {
		e.fail("sim: PreemptMalleableNow on job %d (%v, %v)", j.ID, j.Class, j.State)
		return &nodeset.Set{}
	}
	e.emit(EventPreempt, j, j.CurSize)
	j.BeginWarning(e.clk) // zero-length warning
	u := j.FinalizeWarning(e.clk)
	e.met.AddUsage(u)
	ent := e.mustEnt(j)
	if ev := ent.endEv; ev != nil {
		e.q.Cancel(ev)
		ent.endEv = nil
		e.q.Recycle(ev)
	}
	freed := e.cl.Release(j.ID)
	ent.running = false
	e.removeRunning(j.ID)
	freed.SubtractWith(e.restoreSquattedNodes(j.ID))
	e.enqueue(j)
	return freed
}

// PreemptMalleableWithWarning starts the two-minute warning on a running
// malleable job. When the warning expires the engine frees the job's nodes,
// requeues it, and calls Mechanism.OnWarningExpired with claim. If the job
// completes inside the window, the completion wins and the mechanism instead
// sees OnJobCompleted.
func (e *Engine) PreemptMalleableWithWarning(j *job.Job, claim int) {
	if j.State != job.Running || j.Class != job.Malleable {
		e.fail("sim: warning on job %d (%v, %v)", j.ID, j.Class, j.State)
		return
	}
	j.BeginWarning(e.clk)
	e.emit(EventWarning, j, j.CurSize)
	e.mustEnt(j).warnEv = e.q.Push(e.clk+job.WarningPeriod, eventq.PrioPreempt, evWarn{j: j, claim: claim})
	e.relRefresh(j) // release moves from the estimate to the warning expiry
}

// ShrinkMalleable shrinks a running malleable job to newSize, reschedules its
// completion, and returns the freed node set (left in the free pool for the
// caller to claim).
func (e *Engine) ShrinkMalleable(j *job.Job, newSize int) *nodeset.Set {
	if j.State != job.Running || j.Class != job.Malleable {
		e.fail("sim: shrink on job %d (%v, %v)", j.ID, j.Class, j.State)
		return &nodeset.Set{}
	}
	old := j.CurSize
	if newSize >= old {
		e.fail("sim: shrink job %d from %d to %d", j.ID, old, newSize)
		return &nodeset.Set{}
	}
	end := j.Resize(e.clk, newSize)
	freed := e.cl.ReleasePartial(j.ID, old-newSize)
	e.emit(EventShrink, j, old-newSize)
	e.trimSquats(j.ID, freed)
	e.rescheduleEnd(j, end)
	e.relRefresh(j)
	return freed
}

// trimSquats drops released nodes from a job's squat records: once a
// squatted node leaves the job's allocation (a shrink), the original claim
// has permanently lost it and must not try to reclaim it later.
func (e *Engine) trimSquats(jobID int, released *nodeset.Set) {
	sqs, ok := e.squats[jobID]
	if !ok {
		return
	}
	kept := sqs[:0]
	for _, s := range sqs {
		overlap := nodeset.Intersection(s.nodes, released)
		if !overlap.Empty() {
			s.nodes.SubtractWith(overlap)
			e.squatted[s.claim] -= overlap.Len()
			if e.squatted[s.claim] <= 0 {
				delete(e.squatted, s.claim)
			}
		}
		if !s.nodes.Empty() {
			kept = append(kept, s)
		}
	}
	if len(kept) == 0 {
		delete(e.squats, jobID)
	} else {
		e.squats[jobID] = kept
	}
}

// ExpandMalleable grows a running malleable job by the specific free nodes
// in grant and reschedules its completion.
func (e *Engine) ExpandMalleable(j *job.Job, grant *nodeset.Set) {
	if j.State != job.Running || j.Class != job.Malleable {
		e.fail("sim: expand on job %d (%v, %v)", j.ID, j.Class, j.State)
		return
	}
	if grant.Empty() {
		return
	}
	newSize := j.CurSize + grant.Len()
	if newSize > j.Size {
		e.fail("sim: expand job %d past max (%d > %d)", j.ID, newSize, j.Size)
		return
	}
	e.cl.AllocExact(j.ID, grant)
	end := j.Resize(e.clk, newSize)
	e.emit(EventExpand, j, grant.Len())
	e.rescheduleEnd(j, end)
	e.relRefresh(j)
}

func (e *Engine) rescheduleEnd(j *job.Job, end int64) {
	ent := e.mustEnt(j)
	if ev := ent.endEv; ev != nil {
		e.q.Cancel(ev)
		ent.endEv = nil
		e.q.Recycle(ev)
	}
	ent.endEv = e.q.Push(end, eventq.PrioEnd, evEnd{j})
}

// TryResumeNow starts a waiting job immediately if its private reservation
// plus the free pool covers its (minimum) size, bypassing the queue order.
// The paper's directed-return rule uses this: an on-demand job's lenders
// "resume immediately if possible" when their leased nodes come back
// (§III-B.3). Returns false if the job is not waiting or cannot fit.
func (e *Engine) TryResumeNow(j *job.Job) bool {
	if ent := e.lookup(j.ID); ent == nil || !ent.inQueue {
		return false
	}
	avail := e.cl.ReservedCount(j.ID) + e.cl.FreeCount()
	size := j.Size
	if j.Class == job.Malleable {
		if avail < j.MinSize {
			return false
		}
		if size > avail {
			size = avail
		}
	} else if avail < size {
		return false
	}
	e.startJob(j, size, false)
	return true
}

// ScheduleTimer delivers payload to Mechanism.OnTimer at time t.
// It returns a handle that can be cancelled with CancelTimer.
func (e *Engine) ScheduleTimer(t int64, payload any) *eventq.Event {
	if t < e.clk {
		t = e.clk
	}
	return e.q.Push(t, eventq.PrioTimeout, evTimer{payload: payload})
}

// ScheduleFaultTimer delivers payload to Mechanism.OnTimer at time t at the
// availability model's dispatch priority: after completions, before notices,
// warning expiries, reservation timeouts, and arrivals. Fault injectors use
// it so a failure fired from OnTimer orders exactly like one scheduled with
// ScheduleNodeFailure at the same instant. Cancellable with CancelTimer.
func (e *Engine) ScheduleFaultTimer(t int64, payload any) *eventq.Event {
	if t < e.clk {
		t = e.clk
	}
	return e.q.Push(t, eventq.PrioFault, evTimer{payload: payload})
}

// CancelTimer cancels a pending timer handle (nil-safe).
func (e *Engine) CancelTimer(ev *eventq.Event) { e.q.Cancel(ev) }

// RequestSchedule enqueues a scheduler pass at the current instant.
func (e *Engine) RequestSchedule() { e.requestSchedule() }

// --- BackfillReserved squatting -------------------------------------------

// SetClaimBackfillable marks or unmarks a reservation as available to
// backfill squatters (only meaningful with Config.BackfillReserved).
func (e *Engine) SetClaimBackfillable(claim int, ok bool) {
	if ok {
		e.backfillable[claim] = true
	} else {
		delete(e.backfillable, claim)
	}
}

// SquattedCount returns how many of claim's reserved nodes are currently
// occupied by backfill squatters.
func (e *Engine) SquattedCount(claim int) int { return e.squatted[claim] }

// DropClaimSquats forgets all squat records against claim without disturbing
// the squatter jobs (used when a reservation times out: the squatters simply
// keep their nodes as ordinary allocations).
func (e *Engine) DropClaimSquats(claim int) {
	for id, sqs := range e.squats {
		kept := sqs[:0]
		for _, s := range sqs {
			if s.claim == claim {
				e.squatted[claim] -= s.nodes.Len()
				continue
			}
			kept = append(kept, s)
		}
		if len(kept) == 0 {
			delete(e.squats, id)
		} else {
			e.squats[id] = kept
		}
	}
	if e.squatted[claim] <= 0 {
		delete(e.squatted, claim)
	}
}

// EvictSquatters immediately preempts every backfill job squatting on
// claim's reserved nodes (paper §III-B.1: "once the on-demand job arrives,
// all these backfilled jobs have to be preempted immediately"). The evicted
// jobs' squatted nodes return to their claims' reservations; everything else
// they held returns to the free pool. Evicted malleable jobs keep their
// progress (their state save is assumed instantaneous on eviction); rigid
// squatters fall back to their last checkpoint.
func (e *Engine) EvictSquatters(claim int) {
	victims := make([]int, 0)
	for id, sqs := range e.squats {
		for _, s := range sqs {
			if s.claim == claim {
				victims = append(victims, id)
				break
			}
		}
	}
	sort.Ints(victims)
	for _, id := range victims {
		ent := e.lookup(id)
		if ent == nil || !ent.running {
			continue
		}
		j := ent.j
		switch {
		case j.Class == job.Malleable && j.State == job.Running:
			e.PreemptMalleableNow(j)
		case j.State == job.Running:
			e.PreemptRigid(j)
		default:
			continue // already in a warning for someone else; leave it
		}
	}
}

// restoreSquattedNodes returns a finished/preempted squatter's reserved-pool
// nodes to the claims that own them (if the claims are still live), drops
// the squat records, and returns the set of nodes that went back into
// reservations (callers must subtract it from any freed set they report to
// the mechanism, since those nodes are no longer free).
func (e *Engine) restoreSquattedNodes(jobID int) *nodeset.Set {
	reclaimed := &nodeset.Set{}
	sqs, ok := e.squats[jobID]
	if !ok {
		return reclaimed
	}
	delete(e.squats, jobID)
	for _, s := range sqs {
		e.squatted[s.claim] -= s.nodes.Len()
		if e.squatted[s.claim] <= 0 {
			delete(e.squatted, s.claim)
		}
		if e.backfillable[s.claim] {
			// Nodes were released to the free pool by the caller; move them
			// back into the claim's reservation.
			e.cl.ReserveExact(s.claim, s.nodes)
			reclaimed.UnionWith(s.nodes)
		}
	}
	return reclaimed
}
