package sim

import (
	"math"
	"testing"

	"hybridsched/internal/job"
)

// releaseWorkload builds a deterministic mixed workload of n jobs.
func releaseWorkload(n int) []*job.Job {
	jobs := make([]*job.Job, 0, n)
	for i := 0; i < n; i++ {
		id := i + 1
		submit := int64(i) * 50
		switch i % 3 {
		case 0:
			jobs = append(jobs, rigid(id, submit, 10+(i%17)*3, 900+int64(i%13)*120))
		case 1:
			jobs = append(jobs, malleable(id, submit, 20+(i%11)*2, 5, 1500+int64(i%7)*200))
		default:
			jobs = append(jobs, onDemand(id, submit, 8+(i%9)*2, 600+int64(i%5)*90))
		}
	}
	return jobs
}

func near(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// TestReleaseCompletedReportMatches runs the same workload with and without
// ReleaseCompleted: the streamed report must agree on every aggregate the
// streaming collector claims to compute exactly (counts, means, extrema,
// rates, the node-second ledger), while dropping the per-job list.
func TestReleaseCompletedReportMatches(t *testing.T) {
	full, err := New(Config{Nodes: 200, Validate: true}, releaseWorkload(400), Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}
	lean, err := New(Config{Nodes: 200, Validate: true, ReleaseCompleted: true}, releaseWorkload(400), Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := lean.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.Jobs != want.Jobs || got.Makespan != want.Makespan {
		t.Fatalf("jobs/makespan: %d/%d vs %d/%d", got.Jobs, got.Makespan, want.Jobs, want.Makespan)
	}
	if got.PerJob != nil {
		t.Fatal("streamed report must not retain a per-job list")
	}
	cmp := func(name string, g, w float64) {
		if !near(g, w) {
			t.Fatalf("%s: %g vs %g", name, g, w)
		}
	}
	cmp("all mean", got.All.Turnaround.Mean, want.All.Turnaround.Mean)
	cmp("all min", got.All.Turnaround.Min, want.All.Turnaround.Min)
	cmp("all max", got.All.Turnaround.Max, want.All.Turnaround.Max)
	cmp("all std", got.All.Turnaround.Std, want.All.Turnaround.Std)
	if got.All.Count != want.All.Count || got.Rigid.Count != want.Rigid.Count ||
		got.OnDemand.Count != want.OnDemand.Count || got.Malleable.Count != want.Malleable.Count {
		t.Fatalf("class counts diverge: %+v vs %+v", got.All, want.All)
	}
	cmp("rigid mean", got.Rigid.Turnaround.Mean, want.Rigid.Turnaround.Mean)
	cmp("od mean", got.OnDemand.Turnaround.Mean, want.OnDemand.Turnaround.Mean)
	cmp("malleable mean", got.Malleable.Turnaround.Mean, want.Malleable.Turnaround.Mean)
	cmp("instant rate", got.InstantStartRate, want.InstantStartRate)
	cmp("strict instant rate", got.StrictInstantStartRate, want.StrictInstantStartRate)
	cmp("mean start delay", got.MeanStartDelay, want.MeanStartDelay)
	cmp("utilization", got.Utilization, want.Utilization)
	cmp("useful", got.Breakdown.Useful, want.Breakdown.Useful)

	// Every completed job must have been forgotten.
	if n := len(lean.sparse); n != 0 {
		t.Fatalf("%d index entries survive the run", n)
	}
	if lean.jobs != nil {
		t.Fatal("registration list survives priming")
	}
	if len(lean.dense) != 0 {
		t.Fatal("ReleaseCompleted run must not build the dense table")
	}
	if lean.SubmittedCount() != 400 || lean.CompletedCount() != 400 {
		t.Fatalf("counters: %d submitted, %d completed", lean.SubmittedCount(), lean.CompletedCount())
	}
}

// TestReleaseCompletedBoundedLiveEntries streams jobs through Submit in waves
// and checks the live index never grows with the total: the engine holds only
// in-flight jobs.
func TestReleaseCompletedBoundedLiveEntries(t *testing.T) {
	e, err := New(Config{Nodes: 100, ReleaseCompleted: true}, nil, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	const waves, perWave = 40, 25
	maxLive := 0
	id := 0
	for w := 0; w < waves; w++ {
		base := e.Now()
		for k := 0; k < perWave; k++ {
			id++
			if err := e.Submit(rigid(id, base+int64(k), 10+(k%5)*10, 200+int64(k%7)*40)); err != nil {
				t.Fatal(err)
			}
		}
		// Drain this wave completely before the next.
		for {
			more, err := e.Step()
			if err != nil {
				t.Fatal(err)
			}
			if live := len(e.sparse); live > maxLive {
				maxLive = live
			}
			if !more {
				break
			}
		}
	}
	total := waves * perWave
	if e.CompletedCount() != total {
		t.Fatalf("completed %d of %d", e.CompletedCount(), total)
	}
	if maxLive > perWave {
		t.Fatalf("live index peaked at %d entries (wave size %d): completed jobs are being retained", maxLive, perWave)
	}
	if len(e.sparse) != 0 {
		t.Fatalf("%d entries survive", len(e.sparse))
	}
}

// TestReleaseCompletedRefusesSnapshot pins the documented incompatibility.
func TestReleaseCompletedRefusesSnapshot(t *testing.T) {
	e, err := New(Config{Nodes: 100, ReleaseCompleted: true}, releaseWorkload(3), Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Snapshot(); err == nil {
		t.Fatal("Snapshot must be refused")
	}
	if err := e.LoadSnapshot(nil); err == nil {
		t.Fatal("LoadSnapshot must be refused")
	}
}
