package sim

import (
	"testing"

	"hybridsched/internal/job"
)

// TestStepEquivalentToRun: stepping an engine event by event produces the
// same outcome as the batch Run loop.
func TestStepEquivalentToRun(t *testing.T) {
	mk := func() []*job.Job {
		return []*job.Job{
			rigid(1, 0, 60, 1000),
			rigid(2, 10, 60, 1000),
			malleable(3, 20, 40, 10, 2000),
			onDemand(4, 500, 80, 300),
		}
	}
	batch, _ := New(Config{Nodes: 100, Validate: true}, mk(), Baseline{})
	want, err := batch.Run()
	if err != nil {
		t.Fatal(err)
	}
	stepped, _ := New(Config{Nodes: 100, Validate: true}, mk(), Baseline{})
	for {
		more, err := stepped.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
	}
	got := stepped.Report()
	if got.Makespan != want.Makespan || got.Jobs != want.Jobs || got.Utilization != want.Utilization {
		t.Fatalf("stepped run diverged: %+v vs %+v", got, want)
	}
}

// TestSubmitValidation covers the mid-run submission guard rails.
func TestSubmitValidation(t *testing.T) {
	e, _ := New(Config{Nodes: 100}, []*job.Job{rigid(1, 0, 60, 1000)}, Baseline{})
	if err := e.Submit(nil); err == nil {
		t.Fatal("nil job must fail")
	}
	if err := e.Submit(rigid(1, 50, 10, 100)); err == nil {
		t.Fatal("duplicate ID must fail")
	}
	if err := e.Submit(rigid(2, 50, 200, 100)); err == nil {
		t.Fatal("oversized job must fail")
	}
	// Pre-prime submission at any time is fine.
	if err := e.Submit(rigid(3, 5, 10, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Step(); err != nil { // primes and processes the first event
		t.Fatal(err)
	}
	if err := e.Submit(rigid(4, e.Now()-1, 10, 100)); err == nil && e.Now() > 0 {
		t.Fatal("past-dated submission must fail once primed")
	}
	if err := e.Submit(rigid(5, e.Now()+10, 10, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Report().Jobs; got != 3 {
		t.Fatalf("completed %d/3 (jobs 1, 3, 5)", got)
	}
}

// TestAdvanceToRefusesToSkipEvents: the clock can only move through empty
// stretches of virtual time.
func TestAdvanceToRefusesToSkipEvents(t *testing.T) {
	e, _ := New(Config{Nodes: 100}, []*job.Job{rigid(1, 100, 60, 1000)}, Baseline{})
	if err := e.AdvanceTo(500); err == nil {
		t.Fatal("AdvanceTo must refuse to jump the pending arrival at t=100")
	}
	if err := e.AdvanceTo(50); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 50 {
		t.Fatalf("clock %d, want 50", e.Now())
	}
	if err := e.AdvanceTo(10); err != nil { // backwards is a no-op
		t.Fatal(err)
	}
	if e.Now() != 50 {
		t.Fatalf("clock moved backwards to %d", e.Now())
	}
}

// TestEventSinkStream checks the emitted event sequence for a tiny trace.
func TestEventSinkStream(t *testing.T) {
	var got []Event
	e, _ := New(Config{Nodes: 100}, []*job.Job{rigid(1, 100, 60, 1000)}, Baseline{})
	e.SetEventSink(func(ev Event) { got = append(got, ev) })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []EventType{EventArrival, EventStart, EventEnd}
	if len(got) != len(want) {
		t.Fatalf("events %v", got)
	}
	for i, ev := range got {
		if ev.Type != want[i] || ev.Job != 1 {
			t.Fatalf("event %d = %+v, want type %v", i, ev, want[i])
		}
	}
	if got[0].Time != 100 || got[1].Time != 100 || got[2].Time != 1100 {
		t.Fatalf("event times %v", got)
	}
	if got[1].Nodes != 60 {
		t.Fatalf("start event nodes %d", got[1].Nodes)
	}
}
