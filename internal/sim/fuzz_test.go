package sim_test

import (
	"bytes"
	"testing"

	"hybridsched/internal/checkpoint"
	"hybridsched/internal/faults"
	"hybridsched/internal/job"
	"hybridsched/internal/registry"
	"hybridsched/internal/sim"
)

// fuzzEngine builds the small fixed engine every fuzz iteration decodes into:
// a core mechanism under the fault injector, replaying all three job classes
// on 64 nodes, so LoadSnapshot exercises its full decode surface (job index,
// mechanism state, timer payloads, RNG stream).
func fuzzEngine(t testing.TB) *sim.Engine {
	t.Helper()
	jobs := []*job.Job{
		job.NewRigid(1, 0, 0, 16, 3600, 3600, 0, checkpoint.Plan{}),
		job.NewMalleable(2, 0, 100, 32, 8, 7200, 7200, 0),
		job.NewOnDemand(3, 0, 200, 8, 1800, 1800, 0, job.NoNotice, 200, 200),
		job.NewRigid(4, 0, 4000, 48, 3600, 4000, 0, checkpoint.Plan{}),
		job.NewOnDemand(5, 0, 5000, 24, 900, 900, 0, 600, 4400, 4400),
	}
	mech, err := registry.NewScheduler("CUP&PAA", registry.SchedulerConfig{DirectedReturn: true})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := faults.Wrap(mech, faults.Config{MTBF: 3600, Seed: 3, Horizon: 200000, MeanRepair: 600})
	e, err := sim.New(sim.Config{Nodes: 64}, jobs, wrapped)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// FuzzLoadSnapshot feeds arbitrary bytes — seeded with a genuine mid-run
// snapshot and systematic corruptions of it — into Engine.LoadSnapshot. The
// contract under test: malformed input returns an error, never panics, and
// never half-mutates the engine (a failed load leaves the engine able to
// finish its original run).
func FuzzLoadSnapshot(f *testing.F) {
	donor := fuzzEngine(f)
	for i := 0; i < 40; i++ {
		if ok, err := donor.Step(); err != nil || !ok {
			f.Fatalf("donor run ended early: step %d, err %v", i, err)
		}
	}
	valid, err := donor.Snapshot()
	if err != nil {
		f.Fatal(err)
	}

	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:10])
	f.Add(valid[:len(valid)/2])
	for _, off := range []int{0, 4, 8, len(valid) / 2, len(valid) - 1} {
		mut := bytes.Clone(valid)
		mut[off] ^= 0x40 // magic, version, length, payload, CRC
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		e := fuzzEngine(t)
		if err := e.LoadSnapshot(data); err != nil {
			// Rejected: the engine must be untouched and finish cleanly.
			if _, err := e.Run(); err != nil {
				t.Fatalf("failed load corrupted the engine: %v", err)
			}
			return
		}
		// Accepted (the pristine seed, or a mutation the checks cannot
		// distinguish from a valid frame): the restored engine may at worst
		// report a runtime error — never panic.
		_, _ = e.Run()
	})
}
