// Package sim implements the trace-driven, event-driven scheduling simulator
// the paper's evaluation runs on (a Go port of CQSim's architecture: job
// trace module, queue manager, cluster module, scheduler, event engine).
//
// The engine owns the virtual clock, the event queue, the cluster, and the
// waiting queue, and it executes the baseline FCFS/EASY scheduling loop. The
// paper's contribution — the six hybrid-workload mechanisms — plugs in
// through the Mechanism interface: the engine reports on-demand notices,
// arrivals, job completions, warning expiries, and timer events; the
// mechanism responds using the engine's resource primitives (preempt,
// shrink, expand, reserve, start). sim deliberately never imports
// internal/core, so the substrate stays reusable.
package sim

import (
	"fmt"
	"sort"

	"hybridsched/internal/cluster"
	"hybridsched/internal/eventq"
	"hybridsched/internal/job"
	"hybridsched/internal/metrics"
	"hybridsched/internal/nodeset"
	"hybridsched/internal/policy"
	"hybridsched/internal/simtime"
)

// Config parameterizes an engine run.
type Config struct {
	// Nodes is the system size (default 4392, Theta).
	Nodes int
	// Policy orders the waiting queue (default FCFS).
	Policy policy.Ordering
	// BackfillReserved lets backfill candidates run on nodes reserved for
	// pending on-demand jobs; such squatters are preempted the instant the
	// on-demand job arrives (paper §III-B.1). Default off.
	BackfillReserved bool
	// Validate runs the cluster partition invariant after every event.
	// Meant for tests; expensive on long traces.
	Validate bool
	// MaxSimTime aborts the run if the clock passes this bound (0 = none).
	MaxSimTime int64
	// Reference drives the retained naive scheduling path — per-pass queue
	// re-sorts, running-set reconstruction by map iteration + sort, fresh
	// planner allocations, no event pooling — instead of the allocation-lean
	// incremental structures. The two paths must produce byte-identical
	// reports; internal/simtest holds them to that.
	Reference bool
	// Stopwatch measures decision latency for the metrics report (default
	// simtime.Wall). Inject simtime.Frozen to zero out latency telemetry —
	// the one engine output that legitimately varies between hosts.
	Stopwatch simtime.Stopwatch
	// ReleaseCompleted keeps resident memory flat on streamed runs: the
	// engine forgets a job entirely at completion (its index entry, its
	// bookkeeping, and — after priming — its slot in the registration list),
	// and the metrics collector aggregates completions into constant-memory
	// moments instead of retaining a per-job result. A 25M-job run submitted
	// incrementally holds steady RSS. Trade-offs: reports carry no PerJob
	// list and no rank statistics, Snapshot/LoadSnapshot are refused, and a
	// completed job's ID can silently be reused by a later Submit — the
	// engine no longer remembers it.
	ReleaseCompleted bool
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 4392
	}
	if c.Policy == nil {
		c.Policy = policy.FCFS{}
	}
	if c.Stopwatch == nil {
		c.Stopwatch = simtime.Wall
	}
	return c
}

// Mechanism is the plug-in interface for hybrid-workload scheduling logic.
// The engine invokes the callbacks; implementations drive the engine's
// resource primitives. The Baseline mechanism ignores everything.
type Mechanism interface {
	// Name identifies the mechanism in reports (e.g. "CUA&SPAA").
	Name() string
	// Attach wires the mechanism to the engine before the run starts.
	Attach(e *Engine)
	// QueueOnDemandFirst reports whether on-demand jobs that could not start
	// instantly jump to the front of the waiting queue.
	QueueOnDemandFirst() bool
	// FlexibleMalleable reports whether the scheduler may size malleable
	// jobs between their minimum and maximum. The Table II baseline gives
	// malleable jobs "no special treatment" and runs them rigidly.
	FlexibleMalleable() bool
	// OnNotice fires when an on-demand job's advance notice arrives.
	OnNotice(j *job.Job)
	// OnODArrival fires when an on-demand job actually arrives. Returning
	// true means the mechanism handled the job (started it or holds a
	// pending start); false lets the engine queue it normally.
	OnODArrival(j *job.Job) bool
	// OnJobCompleted fires after any job completes and its nodes returned to
	// the free pool; freed is the released node set.
	OnJobCompleted(j *job.Job, freed *nodeset.Set)
	// OnWarningExpired fires when a malleable preemption warning ends and
	// the job's nodes (freed) have been returned to the free pool. claim is
	// the reservation the preemption was made for (negative: none).
	OnWarningExpired(j *job.Job, claim int, freed *nodeset.Set)
	// OnODStarted fires whenever an on-demand job starts, from any path.
	OnODStarted(j *job.Job)
	// OnTimer delivers payloads scheduled with Engine.ScheduleTimer.
	OnTimer(payload any)
}

// Baseline is the no-mechanism scheduler of Table II: on-demand jobs queue
// like everyone else and nothing is ever preempted or shrunk.
type Baseline struct{}

// Name returns "FCFS/EASY".
func (Baseline) Name() string { return "FCFS/EASY" }

// Attach does nothing.
func (Baseline) Attach(*Engine) {}

// QueueOnDemandFirst returns false: no special treatment.
func (Baseline) QueueOnDemandFirst() bool { return false }

// FlexibleMalleable returns false: malleable jobs run rigidly at full size.
func (Baseline) FlexibleMalleable() bool { return false }

// OnNotice ignores advance notices.
func (Baseline) OnNotice(*job.Job) {}

// OnODArrival declines to handle the job, so it queues normally.
func (Baseline) OnODArrival(*job.Job) bool { return false }

// OnJobCompleted does nothing.
func (Baseline) OnJobCompleted(*job.Job, *nodeset.Set) {}

// OnWarningExpired does nothing (the baseline never preempts).
func (Baseline) OnWarningExpired(*job.Job, int, *nodeset.Set) {}

// OnODStarted does nothing.
func (Baseline) OnODStarted(*job.Job) {}

// OnTimer does nothing.
func (Baseline) OnTimer(any) {}

// EventType classifies the scheduling events an engine emits through its
// event sink (see SetEventSink). The stream is the observable trace of one
// run: every job arrival, notice, start, preemption, resize, and completion
// appears exactly once, in dispatch order.
type EventType int

// The event vocabulary.
const (
	// EventArrival: a job was submitted and entered the system.
	EventArrival EventType = iota
	// EventNotice: an on-demand job's advance notice was received.
	EventNotice
	// EventStart: a job started (or restarted) on Nodes nodes.
	EventStart
	// EventEnd: a job completed; Nodes is the size it finished on.
	EventEnd
	// EventWarning: a malleable job entered its two-minute preemption warning.
	EventWarning
	// EventPreempt: a job involuntarily lost its Nodes nodes (immediate
	// preemption or warning expiry) and re-entered the waiting queue.
	EventPreempt
	// EventShrink: a running malleable job released Nodes of its nodes.
	EventShrink
	// EventExpand: a running malleable job grew by Nodes nodes.
	EventExpand
	// EventCheckpoint: a preempted rigid job's progress was rolled back to
	// its last completed defensive checkpoint.
	EventCheckpoint
	// EventNodeDown: Nodes nodes left service (a failure under repair, or a
	// maintenance drain absorbing them). Node events carry no job: Job is -1
	// and Class is meaningless.
	EventNodeDown
	// EventNodeUp: Nodes nodes returned to service (repair completed or a
	// maintenance window ended). Job is -1.
	EventNodeUp
	// EventDrain: a maintenance drain window opened, requesting Nodes nodes.
	// The nodes it actually absorbs are reported by EventNodeDown events as
	// free capacity appears. Job is -1.
	EventDrain
)

// String returns the lower-case event name.
func (t EventType) String() string {
	switch t {
	case EventArrival:
		return "arrival"
	case EventNotice:
		return "notice"
	case EventStart:
		return "start"
	case EventEnd:
		return "end"
	case EventWarning:
		return "warning"
	case EventPreempt:
		return "preempt"
	case EventShrink:
		return "shrink"
	case EventExpand:
		return "expand"
	case EventCheckpoint:
		return "checkpoint"
	case EventNodeDown:
		return "nodedown"
	case EventNodeUp:
		return "nodeup"
	case EventDrain:
		return "drain"
	}
	return fmt.Sprintf("event(%d)", int(t))
}

// Event is one typed scheduling event, emitted synchronously as the engine
// processes the underlying state change. Node-availability events
// (EventNodeDown, EventNodeUp, EventDrain) carry no job: Job is -1 and Class
// is meaningless.
type Event struct {
	Type  EventType
	Time  int64     // virtual time of the event
	Job   int       // job ID (-1 for node-availability events)
	Class job.Class // job class
	Nodes int       // node count involved (job size, shrink/expand delta, down/up count)
}

// squat records a backfilled job occupying nodes reserved for a claim.
type squat struct {
	claim int
	nodes *nodeset.Set
}

// jobEntry is the engine's per-job bookkeeping, consolidated into one record
// so the hot path does a single index lookup instead of probing five maps.
type jobEntry struct {
	j       *job.Job
	inQueue bool
	running bool // Running or Warning (holds nodes)
	endEv   *eventq.Event
	warnEv  *eventq.Event

	// Release-list membership (optimized path): the estimated-end key the
	// job's entry was inserted under, so removal can binary-search instead of
	// recomputing an estimate that may have moved on.
	relEnd int64
	relOn  bool
}

// denseSlack bounds how far beyond the contiguous block of registered job IDs
// the dense entry table may extend. Traces renumber jobs from 1, so in
// practice every job lands in the dense table; a wild outlier ID falls back
// to the sparse map instead of ballooning the table.
const denseSlack = 1024

// Engine is the simulator instance. Create with New. Run executes to
// completion in one call; Step/Submit/AdvanceTo drive it incrementally.
type Engine struct {
	cfg  Config
	mech Mechanism
	clk  int64

	q   eventq.Queue
	cl  *cluster.Cluster
	met *metrics.Collector
	//schedlint:snapfield telemetry stopwatch is host wiring, re-injected via Config at restore
	sw simtime.Stopwatch // cfg.Stopwatch, cached at construction

	jobs []*job.Job

	// Job bookkeeping: a dense table indexed by job ID for the common
	// contiguous-ID case, with a sparse fallback for outlier IDs. Entry
	// pointers are invalidated by registering a new job (the dense table may
	// reallocate); take them fresh, never store them.
	//schedlint:snapfield index over e.jobs; rebuilt by re-registering restored jobs
	dense []jobEntry
	//schedlint:snapfield index over e.jobs; rebuilt by re-registering restored jobs
	sparse map[int]*jobEntry

	// queue is the waiting queue. With sortedQueue set it is maintained in
	// policy order incrementally (binary-search insertion on enqueue); the
	// built-in orderings are total, so the result is exactly what the
	// per-pass stable sort used to produce. Time-dependent policies (WFP3,
	// unknown registered ones) and the reference path re-sort every pass.
	queue []*job.Job
	//schedlint:snapfield derived from Config.Policy/Reference, both re-supplied at restore
	sortedQueue bool
	//schedlint:snapfield cache of the re-attached mechanism's QueueOnDemandFirst
	odFirst bool // mech.QueueOnDemandFirst(), cached at construction

	// running lists every job holding nodes (Running or Warning), in
	// ascending ID order, maintained incrementally.
	running []*job.Job

	// rel is the (EstEnd, ID)-ordered release list the backfill planner
	// reads, maintained incrementally on the optimized path: jobs enter at
	// start, leave at completion/preemption, and move when a resize or
	// warning changes their estimated release. Estimate-based ends are
	// invariant between those transitions (see job.MalleableEstimatedEndAsOf),
	// so the list never goes stale in between. relVer bumps on every mutation
	// and keys the planner's shadow/extra memoization.
	//schedlint:snapfield rebuilt from the restored running set; see restoreReleaseList
	rel []policy.Running
	//schedlint:snapfield memoization version counter; any fresh value is correct after restore
	relVer uint64

	// minNeed is a lower bound on the smallest node count any queued job
	// needs to start (its minimum size under flexible sizing). Enqueues lower
	// it exactly; removals leave it stale-low (sound), and every executed
	// scheduler pass recomputes it. A pass is skipped outright when even this
	// bound exceeds everything a planner could hand out — the free pool plus
	// reserved capacity counted both as private headroom and as shared
	// backfill reserve.
	//schedlint:snapfield stale-low-sound lower bound; the first pass after restore recomputes it
	minNeed int
	//schedlint:snapfield cache of the re-attached mechanism's FlexibleMalleable
	flexible bool // mech.FlexibleMalleable(), cached at construction

	//schedlint:snapfield scratch planner; holds no cross-pass state worth a checkpoint
	planner policy.Planner

	schedPending bool
	completed    int
	dispatched   int
	//schedlint:snapfield re-counted by re-registering restored jobs (snapshots refuse ReleaseCompleted, so none were pruned)
	registered int // jobs ever registered; stable when ReleaseCompleted prunes e.jobs
	primed     bool
	//schedlint:snapfield event-sink callback is host wiring, re-attached by the caller
	sink func(Event)

	// Availability model: maintenance windows currently absorbing nodes.
	// Failed nodes under repair are tracked by their pending evNodeUp events
	// and the cluster's down pool; see avail.go.
	drains []*drainWindow

	// BackfillReserved bookkeeping.
	backfillable map[int]bool    // claims whose reservations may host squatters
	squats       map[int][]squat // squatter job ID -> occupied reserved nodes
	squatted     map[int]int     // claim -> node count occupied by squatters

	err error
}

// New builds an engine over jobs (any order) with the given mechanism. Job
// IDs must be unique and sizes must fit the system.
func New(cfg Config, jobs []*job.Job, mech Mechanism) (*Engine, error) {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:          cfg,
		mech:         mech,
		cl:           cluster.New(cfg.Nodes),
		met:          metrics.NewCollector(cfg.Nodes),
		jobs:         jobs,
		backfillable: make(map[int]bool),
		squats:       make(map[int][]squat),
		squatted:     make(map[int]int),
	}
	e.sw = cfg.Stopwatch
	e.odFirst = mech.QueueOnDemandFirst()
	e.flexible = mech.FlexibleMalleable()
	e.minNeed = maxIntVal
	e.sortedQueue = !cfg.Reference && policy.TimeInvariant(cfg.Policy)
	if cfg.ReleaseCompleted {
		e.met.EnableStreaming()
	}
	if cfg.Reference {
		// The naive path runs on the retained binary-heap backend — the
		// oracle the calendar queue is pinned byte-identical to.
		e.q.UseHeap()
	} else {
		e.q.EnablePooling()
	}
	for _, j := range jobs {
		if j.Size > cfg.Nodes {
			return nil, fmt.Errorf("sim: job %d size %d exceeds system %d", j.ID, j.Size, cfg.Nodes)
		}
		if err := e.register(j); err != nil {
			return nil, err
		}
	}
	mech.Attach(e)
	return e, nil
}

// register records j in the ID index, choosing dense or sparse storage. It
// fails on a duplicate ID.
func (e *Engine) register(j *job.Job) error {
	if ent := e.lookup(j.ID); ent != nil {
		return fmt.Errorf("sim: duplicate job ID %d", j.ID)
	}
	e.registered++
	// ReleaseCompleted runs register sparsely: the dense table cannot shrink
	// when completed jobs are forgotten, and streamed IDs grow without bound.
	if !e.cfg.ReleaseCompleted && j.ID >= 0 && j.ID < 2*(len(e.jobs)+1)+denseSlack {
		for len(e.dense) <= j.ID {
			e.dense = append(e.dense, jobEntry{})
		}
		e.dense[j.ID].j = j
		return nil
	}
	if e.sparse == nil {
		e.sparse = make(map[int]*jobEntry)
	}
	e.sparse[j.ID] = &jobEntry{j: j}
	return nil
}

// lookup returns the entry for a registered job ID, or nil. The pointer is
// valid only until the next register call. An empty dense slot falls through
// to the sparse map: the dense table can grow past an ID that was registered
// sparsely when its block was still out of range.
func (e *Engine) lookup(id int) *jobEntry {
	if id >= 0 && id < len(e.dense) {
		if ent := &e.dense[id]; ent.j != nil {
			return ent
		}
	}
	return e.sparse[id]
}

// mustEnt returns the entry for a job the engine has registered; a missing
// entry is an internal bug.
func (e *Engine) mustEnt(j *job.Job) *jobEntry {
	ent := e.lookup(j.ID)
	if ent == nil {
		panic(fmt.Sprintf("sim: job %d has no entry", j.ID))
	}
	return ent
}

// addRunning inserts j into the ID-ordered running list and, on the optimized
// path, into the planner's release list.
func (e *Engine) addRunning(j *job.Job) {
	i := sort.Search(len(e.running), func(k int) bool { return e.running[k].ID >= j.ID })
	e.running = append(e.running, nil)
	copy(e.running[i+1:], e.running[i:])
	e.running[i] = j
	e.relAdd(j)
}

// removeRunning deletes the job with the given ID from the running list and
// the release list.
func (e *Engine) removeRunning(id int) {
	i := sort.Search(len(e.running), func(k int) bool { return e.running[k].ID >= id })
	if i < len(e.running) && e.running[i].ID == id {
		copy(e.running[i:], e.running[i+1:])
		e.running[len(e.running)-1] = nil
		e.running = e.running[:len(e.running)-1]
	}
	e.relDel(id)
}

// relAdd inserts j's planning view into the (EstEnd, ID)-ordered release
// list. The reference path skips maintenance entirely — it reconstructs the
// view from scratch every pass.
func (e *Engine) relAdd(j *job.Job) {
	if e.cfg.Reference {
		return
	}
	r, ok := e.runningInfo(j)
	if !ok {
		return
	}
	i := sort.Search(len(e.rel), func(k int) bool { return !policy.RelLess(e.rel[k], r) })
	e.rel = append(e.rel, policy.Running{})
	copy(e.rel[i+1:], e.rel[i:])
	e.rel[i] = r
	ent := e.mustEnt(j)
	ent.relEnd = r.EstEnd
	ent.relOn = true
	e.relVer++
}

// relDel removes job id from the release list, locating it by the key it was
// inserted under.
func (e *Engine) relDel(id int) {
	if e.cfg.Reference {
		return
	}
	ent := e.lookup(id)
	if ent == nil || !ent.relOn {
		return
	}
	key := policy.Running{EstEnd: ent.relEnd, ID: id}
	i := sort.Search(len(e.rel), func(k int) bool { return !policy.RelLess(e.rel[k], key) })
	if i < len(e.rel) && e.rel[i].ID == id {
		copy(e.rel[i:], e.rel[i+1:])
		e.rel = e.rel[:len(e.rel)-1]
	}
	ent.relOn = false
	e.relVer++
}

// relRefresh re-keys a node-holding job whose estimated release moved — a
// malleable resize or the start of a preemption warning.
func (e *Engine) relRefresh(j *job.Job) {
	if e.cfg.Reference {
		return
	}
	e.relDel(j.ID)
	e.relAdd(j)
}

// Now returns the virtual clock.
func (e *Engine) Now() int64 { return e.clk }

// Cluster exposes the node pool to mechanisms.
func (e *Engine) Cluster() *cluster.Cluster { return e.cl }

// Metrics exposes the collector (mechanisms record decision latencies).
func (e *Engine) Metrics() *metrics.Collector { return e.met }

// Stopwatch exposes the injected decision-latency stopwatch so mechanisms
// can time their own work without touching the wall clock directly.
func (e *Engine) Stopwatch() simtime.Stopwatch { return e.sw }

// Running returns the currently running rigid and malleable jobs (the
// preemption candidates: on-demand jobs are never preempted, and jobs
// already in their warning are spoken for), sorted by ID for determinism.
// The slice is freshly allocated — callers sort and mutate it freely.
func (e *Engine) Running() []*job.Job {
	out := make([]*job.Job, 0, len(e.running))
	for _, j := range e.running {
		if j.State == job.Running && j.Class != job.OnDemand {
			out = append(out, j)
		}
	}
	return out
}

// RunningAll returns every job currently holding nodes (Running or Warning,
// all classes), sorted by ID. The slice is freshly allocated.
func (e *Engine) RunningAll() []*job.Job {
	out := make([]*job.Job, len(e.running))
	copy(out, e.running)
	return out
}

// QueuedJobs returns the waiting queue in its current order. The slice is
// freshly allocated.
func (e *Engine) QueuedJobs() []*job.Job {
	out := make([]*job.Job, len(e.queue))
	copy(out, e.queue)
	return out
}

// QueueDepth returns the number of jobs in the waiting queue.
func (e *Engine) QueueDepth() int { return len(e.queue) }

// Nodes returns the system size.
func (e *Engine) Nodes() int { return e.cfg.Nodes }

// SubmittedCount returns how many jobs have been registered with the engine.
func (e *Engine) SubmittedCount() int { return e.registered }

// CompletedCount returns how many jobs have completed.
func (e *Engine) CompletedCount() int { return e.completed }

// DispatchedCount returns how many events the engine has dispatched so far
// (arrivals, notices, completions, warnings, timers, and scheduler passes —
// not deadlock-break housekeeping steps).
func (e *Engine) DispatchedCount() int { return e.dispatched }

// Queued reports whether job id is in the waiting queue.
func (e *Engine) Queued(id int) bool {
	ent := e.lookup(id)
	return ent != nil && ent.inQueue
}

// JobByID resolves a job by its ID (nil if unknown).
func (e *Engine) JobByID(id int) *job.Job {
	if ent := e.lookup(id); ent != nil {
		return ent.j
	}
	return nil
}

// EnqueueWaiting places a waiting job into the queue; mechanisms use it for
// fallback paths after reporting an arrival as handled.
func (e *Engine) EnqueueWaiting(j *job.Job) {
	e.enqueue(j)
	e.requestSchedule()
}

// IsRunningOrWarning reports whether job id currently holds nodes.
func (e *Engine) IsRunningOrWarning(id int) bool {
	ent := e.lookup(id)
	return ent != nil && ent.running
}

// SetEventSink installs fn to receive every typed scheduling event the
// engine processes, synchronously and in dispatch order. A nil fn disables
// emission (the default), and with no sink the engine skips constructing
// events entirely. The sink may be installed or swapped between steps;
// events dispatched while no sink was installed are not replayed.
func (e *Engine) SetEventSink(fn func(Event)) { e.sink = fn }

// emit delivers an event to the sink, if one is installed.
func (e *Engine) emit(t EventType, j *job.Job, nodes int) {
	if e.sink != nil {
		e.sink(Event{Type: t, Time: e.clk, Job: j.ID, Class: j.Class, Nodes: nodes})
	}
}

// prime schedules the arrival (and notice) events of every job registered
// before the first Step and opens the metrics observation window at the
// earliest submission. It runs exactly once, lazily.
func (e *Engine) prime() {
	if e.primed {
		return
	}
	e.primed = true
	if len(e.jobs) == 0 {
		return
	}
	minSubmit := e.jobs[0].SubmitTime
	for _, j := range e.jobs {
		if j.SubmitTime < minSubmit {
			minSubmit = j.SubmitTime
		}
		e.pushArrival(j, false)
	}
	e.met.NoteSubmit(minSubmit)
	if e.cfg.ReleaseCompleted {
		// Every primed job now lives in the event queue and the index; the
		// registration list would otherwise pin all of them forever.
		e.jobs = nil
	}
	// The clock stays at zero until the first event: all trace times are
	// non-negative, and mechanism timers may have been scheduled at attach
	// time, before the first submission.
}

// pushArrival schedules a job's arrival and (for noticed on-demand jobs) its
// advance-notice event. With clamp set, a notice instant already in the past
// fires immediately instead of violating clock monotonicity.
func (e *Engine) pushArrival(j *job.Job, clamp bool) {
	e.q.Push(j.SubmitTime, eventq.PrioArrive, evArrive{j})
	if j.Class == job.OnDemand && j.NoticeTime < j.SubmitTime {
		t := j.NoticeTime
		if clamp && t < e.clk {
			t = e.clk
		}
		e.q.Push(t, eventq.PrioNotice, evNotice{j})
	}
}

// Submit registers an additional job with the engine. Before the first Step
// the job simply joins the initial trace; after that it is injected into the
// live event stream, so its submission time must not lie in the past. Job
// IDs must be unique and sizes must fit the system.
func (e *Engine) Submit(j *job.Job) error {
	if j == nil {
		return fmt.Errorf("sim: Submit of nil job")
	}
	if j.Size > e.cfg.Nodes {
		return fmt.Errorf("sim: job %d size %d exceeds system %d", j.ID, j.Size, e.cfg.Nodes)
	}
	if e.lookup(j.ID) != nil {
		return fmt.Errorf("sim: duplicate job ID %d", j.ID)
	}
	if e.primed && j.SubmitTime < e.clk {
		return fmt.Errorf("sim: job %d submitted at t=%d, before the clock (t=%d)",
			j.ID, j.SubmitTime, e.clk)
	}
	if err := e.register(j); err != nil {
		return err
	}
	if !e.primed {
		e.jobs = append(e.jobs, j)
		return nil
	}
	if !e.cfg.ReleaseCompleted {
		e.jobs = append(e.jobs, j)
	}
	e.met.NoteSubmit(j.SubmitTime)
	e.pushArrival(j, true)
	return nil
}

// Step processes the next pending event. It returns false when nothing is
// left to do: every submitted job has completed (more jobs may still be
// Submitted afterwards to continue the run). A drained event queue with
// incomplete jobs is a stall: the engine first tries to dissolve reservation
// hold deadlocks, then reports an error.
func (e *Engine) Step() (bool, error) {
	e.prime()
	if e.err != nil {
		return false, e.err
	}
	ev := e.q.Pop()
	if ev == nil {
		if e.completed < e.registered {
			if e.breakHoldDeadlock() {
				return true, nil
			}
			return false, fmt.Errorf("sim: stalled with %d/%d jobs incomplete at t=%d",
				e.registered-e.completed, e.registered, e.clk)
		}
		return false, nil
	}
	if ev.Time < e.clk {
		return false, fmt.Errorf("sim: time went backwards (%d < %d)", ev.Time, e.clk)
	}
	if e.cfg.MaxSimTime > 0 && ev.Time > e.cfg.MaxSimTime {
		return false, fmt.Errorf("sim: exceeded MaxSimTime at t=%d", ev.Time)
	}
	e.met.NoteReserved(ev.Time, e.cl.TotalReserved())
	e.met.NoteDown(ev.Time, e.cl.DownCount())
	e.clk = ev.Time
	e.dispatched++
	e.dispatch(ev)
	e.met.NoteReserved(e.clk, e.cl.TotalReserved())
	e.met.NoteDown(e.clk, e.cl.DownCount())
	if e.err != nil {
		return false, e.err
	}
	if e.cfg.Validate {
		if err := e.cl.CheckInvariant(); err != nil {
			return false, fmt.Errorf("sim: after %T at t=%d: %w", ev.Payload, e.clk, err)
		}
	}
	return true, nil
}

// PeekTime returns the virtual time of the next pending event, or false when
// the queue is drained.
func (e *Engine) PeekTime() (int64, bool) {
	e.prime()
	ev := e.q.Peek()
	if ev == nil {
		return 0, false
	}
	return ev.Time, true
}

// AdvanceTo moves the virtual clock forward to t without processing events,
// keeping the reserved-idle integral exact. It refuses to jump over pending
// events: callers drain everything up to t (see Step/PeekTime) first.
func (e *Engine) AdvanceTo(t int64) error {
	e.prime()
	if t <= e.clk {
		return nil
	}
	if e.cfg.MaxSimTime > 0 && t > e.cfg.MaxSimTime {
		return fmt.Errorf("sim: exceeded MaxSimTime at t=%d", t)
	}
	if ev := e.q.Peek(); ev != nil && ev.Time <= t {
		return fmt.Errorf("sim: AdvanceTo(%d) would skip the event pending at t=%d", t, ev.Time)
	}
	e.met.NoteReserved(t, e.cl.TotalReserved())
	e.met.NoteDown(t, e.cl.DownCount())
	e.clk = t
	return nil
}

// Run executes the simulation to completion and returns the metrics report.
func (e *Engine) Run() (metrics.Report, error) {
	for {
		more, err := e.Step()
		if err != nil {
			return e.met.Report(), err
		}
		if !more {
			return e.met.Report(), nil
		}
	}
}

// Report computes the metrics report over everything processed so far. It is
// safe to call mid-run; the returned report reflects completed jobs only.
func (e *Engine) Report() metrics.Report { return e.met.Report() }

// breakHoldDeadlock dissolves private reservations held for waiting jobs
// when the event queue drains with work outstanding. Directed returns can in
// rare cases mutually starve large waiting jobs; a production resource
// manager would time such holds out. Returns true if anything was released.
func (e *Engine) breakHoldDeadlock() bool {
	released := false
	for _, j := range e.queue {
		if e.cl.ReservedCount(j.ID) > 0 {
			e.cl.UnreserveAll(j.ID)
			released = true
		}
	}
	if released {
		e.requestSchedule()
	}
	return released
}

// fail records a fatal internal error, terminating the run.
func (e *Engine) fail(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf(format, args...)
	}
}

// Event payloads.
type (
	evArrive struct{ j *job.Job }
	evNotice struct{ j *job.Job }
	evEnd    struct{ j *job.Job }
	evWarn   struct {
		j     *job.Job
		claim int
	}
	evTimer struct{ payload any }
	evSched struct{}
)

func (e *Engine) dispatch(ev *eventq.Event) {
	// Popped events are recycled once no reference can survive: arrivals,
	// notices, and scheduler passes hand out no handles; end/warning events
	// are recycled only if the handler cleared the job's handle (it does,
	// except on a failing run). Timer events are never recycled — their
	// handles live with the mechanism, which may cancel them after firing.
	switch p := ev.Payload.(type) {
	case evArrive:
		e.handleArrive(p.j)
		e.q.Recycle(ev)
	case evNotice:
		e.handleNotice(p.j)
		e.q.Recycle(ev)
	case evEnd:
		e.handleEnd(p.j)
		if ent := e.lookup(p.j.ID); ent == nil || ent.endEv != ev {
			e.q.Recycle(ev)
		}
	case evWarn:
		e.handleWarnExpired(p.j, p.claim)
		if ent := e.lookup(p.j.ID); ent == nil || ent.warnEv != ev {
			e.q.Recycle(ev)
		}
	case evTimer:
		e.mech.OnTimer(p.payload)
		e.requestSchedule()
	case evNodeDown:
		e.FailNode(p.node, p.repairAfter)
		e.q.Recycle(ev)
	case evNodeUp:
		e.handleNodeUp(p.nodes)
		e.q.Recycle(ev)
	case evDrainStart:
		e.handleDrainStart(p.d)
		e.q.Recycle(ev)
	case evDrainEnd:
		e.handleDrainEnd(p.d)
		e.q.Recycle(ev)
	case evSched:
		e.schedPending = false
		e.schedulePass()
		e.q.Recycle(ev)
	default:
		e.fail("sim: unknown event payload %T", ev.Payload)
	}
}

func (e *Engine) handleArrive(j *job.Job) {
	j.State = job.Waiting
	e.emit(EventArrival, j, j.Size)
	if j.Class == job.OnDemand {
		stop := e.sw.Start()
		handled := e.mech.OnODArrival(j)
		e.met.NoteDecision(stop())
		if handled {
			e.requestSchedule()
			return
		}
	}
	e.enqueue(j)
	e.requestSchedule()
}

func (e *Engine) handleNotice(j *job.Job) {
	e.emit(EventNotice, j, j.Size)
	stop := e.sw.Start()
	e.mech.OnNotice(j)
	e.met.NoteDecision(stop())
	e.requestSchedule()
}

func (e *Engine) handleEnd(j *job.Job) {
	if j.State != job.Running && j.State != job.Warning {
		e.fail("sim: end event for job %d in state %v", j.ID, j.State)
		return
	}
	finalSize := j.CurSize
	var u job.Usage
	if j.Class == job.Malleable {
		u = j.FinalizeMalleableCompletion(e.clk)
	} else {
		u = j.FinalizeCompletion(e.clk)
	}
	e.emit(EventEnd, j, finalSize)
	e.met.AddUsage(u)
	e.met.NoteComplete(j)
	e.completed++
	ent := e.mustEnt(j)
	ent.endEv = nil
	if wev := ent.warnEv; wev != nil {
		// Completed inside its warning window; the expiry must not fire.
		e.q.Cancel(wev)
		ent.warnEv = nil
		e.q.Recycle(wev)
	}
	freed := e.cl.Release(j.ID)
	ent.running = false
	e.removeRunning(j.ID)
	freed.SubtractWith(e.restoreSquattedNodes(j.ID))
	e.mech.OnJobCompleted(j, freed)
	e.requestSchedule()
	if e.cfg.ReleaseCompleted {
		e.dropEntry(j.ID)
	}
}

// dropEntry forgets a completed job's index entry (ReleaseCompleted): the
// dispatcher sees the missing entry and recycles the popped end event.
func (e *Engine) dropEntry(id int) {
	if id >= 0 && id < len(e.dense) && e.dense[id].j != nil {
		e.dense[id] = jobEntry{}
		return
	}
	delete(e.sparse, id)
}

func (e *Engine) handleWarnExpired(j *job.Job, claim int) {
	if j.State != job.Warning {
		// Completed at this exact instant (end events dispatch first) or
		// state changed; nothing to reclaim.
		return
	}
	e.emit(EventPreempt, j, j.CurSize)
	u := j.FinalizeWarning(e.clk)
	e.met.AddUsage(u)
	ent := e.mustEnt(j)
	ent.warnEv = nil
	if ev := ent.endEv; ev != nil {
		e.q.Cancel(ev)
		ent.endEv = nil
		e.q.Recycle(ev)
	}
	freed := e.cl.Release(j.ID)
	ent.running = false
	e.removeRunning(j.ID)
	freed.SubtractWith(e.restoreSquattedNodes(j.ID))
	e.enqueue(j)
	e.mech.OnWarningExpired(j, claim, freed)
	e.requestSchedule()
}

func (e *Engine) enqueue(j *job.Job) {
	ent := e.mustEnt(j)
	if ent.inQueue {
		return
	}
	j.State = job.Waiting
	if e.sortedQueue {
		// Insert at the policy-order position. The built-in orderings are
		// total (ties break by ID), so the incremental order matches what
		// re-sorting the whole queue each pass used to produce.
		i := sort.Search(len(e.queue), func(k int) bool {
			return !policy.Less(e.queue[k], j, e.cfg.Policy, e.clk, e.odFirst)
		})
		e.queue = append(e.queue, nil)
		copy(e.queue[i+1:], e.queue[i:])
		e.queue[i] = j
	} else {
		e.queue = append(e.queue, j)
	}
	ent.inQueue = true
	if need := e.startNeedOf(j); need < e.minNeed {
		e.minNeed = need
	}
}

// maxIntVal is the minNeed sentinel for an empty queue.
const maxIntVal = int(^uint(0) >> 1)

// startNeedOf is the smallest node count that lets j start: its minimum size
// under flexible malleable sizing, its full size otherwise.
func (e *Engine) startNeedOf(j *job.Job) int {
	if e.flexible && j.Class == job.Malleable {
		return j.MinSize
	}
	return j.Size
}

// recomputeMinNeed restores minNeed to the exact queue minimum.
func (e *Engine) recomputeMinNeed() {
	e.minNeed = maxIntVal
	for _, j := range e.queue {
		if need := e.startNeedOf(j); need < e.minNeed {
			e.minNeed = need
		}
	}
}

func (e *Engine) removeFromQueue(j *job.Job) {
	ent := e.mustEnt(j)
	if !ent.inQueue {
		return
	}
	for i, q := range e.queue {
		if q.ID == j.ID {
			copy(e.queue[i:], e.queue[i+1:])
			e.queue[len(e.queue)-1] = nil
			e.queue = e.queue[:len(e.queue)-1]
			break
		}
	}
	ent.inQueue = false
	if len(e.queue) == 0 {
		e.minNeed = maxIntVal
	}
}

func (e *Engine) requestSchedule() {
	if !e.schedPending {
		e.q.Push(e.clk, eventq.PrioSchedule, evSched{})
		e.schedPending = true
	}
}
