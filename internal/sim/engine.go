// Package sim implements the trace-driven, event-driven scheduling simulator
// the paper's evaluation runs on (a Go port of CQSim's architecture: job
// trace module, queue manager, cluster module, scheduler, event engine).
//
// The engine owns the virtual clock, the event queue, the cluster, and the
// waiting queue, and it executes the baseline FCFS/EASY scheduling loop. The
// paper's contribution — the six hybrid-workload mechanisms — plugs in
// through the Mechanism interface: the engine reports on-demand notices,
// arrivals, job completions, warning expiries, and timer events; the
// mechanism responds using the engine's resource primitives (preempt,
// shrink, expand, reserve, start). sim deliberately never imports
// internal/core, so the substrate stays reusable.
package sim

import (
	"fmt"
	"sort"
	"time"

	"hybridsched/internal/cluster"
	"hybridsched/internal/eventq"
	"hybridsched/internal/job"
	"hybridsched/internal/metrics"
	"hybridsched/internal/nodeset"
	"hybridsched/internal/policy"
)

// Config parameterizes an engine run.
type Config struct {
	// Nodes is the system size (default 4392, Theta).
	Nodes int
	// Policy orders the waiting queue (default FCFS).
	Policy policy.Ordering
	// BackfillReserved lets backfill candidates run on nodes reserved for
	// pending on-demand jobs; such squatters are preempted the instant the
	// on-demand job arrives (paper §III-B.1). Default off.
	BackfillReserved bool
	// Validate runs the cluster partition invariant after every event.
	// Meant for tests; expensive on long traces.
	Validate bool
	// MaxSimTime aborts the run if the clock passes this bound (0 = none).
	MaxSimTime int64
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 4392
	}
	if c.Policy == nil {
		c.Policy = policy.FCFS{}
	}
	return c
}

// Mechanism is the plug-in interface for hybrid-workload scheduling logic.
// The engine invokes the callbacks; implementations drive the engine's
// resource primitives. The Baseline mechanism ignores everything.
type Mechanism interface {
	// Name identifies the mechanism in reports (e.g. "CUA&SPAA").
	Name() string
	// Attach wires the mechanism to the engine before the run starts.
	Attach(e *Engine)
	// QueueOnDemandFirst reports whether on-demand jobs that could not start
	// instantly jump to the front of the waiting queue.
	QueueOnDemandFirst() bool
	// FlexibleMalleable reports whether the scheduler may size malleable
	// jobs between their minimum and maximum. The Table II baseline gives
	// malleable jobs "no special treatment" and runs them rigidly.
	FlexibleMalleable() bool
	// OnNotice fires when an on-demand job's advance notice arrives.
	OnNotice(j *job.Job)
	// OnODArrival fires when an on-demand job actually arrives. Returning
	// true means the mechanism handled the job (started it or holds a
	// pending start); false lets the engine queue it normally.
	OnODArrival(j *job.Job) bool
	// OnJobCompleted fires after any job completes and its nodes returned to
	// the free pool; freed is the released node set.
	OnJobCompleted(j *job.Job, freed *nodeset.Set)
	// OnWarningExpired fires when a malleable preemption warning ends and
	// the job's nodes (freed) have been returned to the free pool. claim is
	// the reservation the preemption was made for (negative: none).
	OnWarningExpired(j *job.Job, claim int, freed *nodeset.Set)
	// OnODStarted fires whenever an on-demand job starts, from any path.
	OnODStarted(j *job.Job)
	// OnTimer delivers payloads scheduled with Engine.ScheduleTimer.
	OnTimer(payload any)
}

// Baseline is the no-mechanism scheduler of Table II: on-demand jobs queue
// like everyone else and nothing is ever preempted or shrunk.
type Baseline struct{}

// Name returns "FCFS/EASY".
func (Baseline) Name() string { return "FCFS/EASY" }

// Attach does nothing.
func (Baseline) Attach(*Engine) {}

// QueueOnDemandFirst returns false: no special treatment.
func (Baseline) QueueOnDemandFirst() bool { return false }

// FlexibleMalleable returns false: malleable jobs run rigidly at full size.
func (Baseline) FlexibleMalleable() bool { return false }

// OnNotice ignores advance notices.
func (Baseline) OnNotice(*job.Job) {}

// OnODArrival declines to handle the job, so it queues normally.
func (Baseline) OnODArrival(*job.Job) bool { return false }

// OnJobCompleted does nothing.
func (Baseline) OnJobCompleted(*job.Job, *nodeset.Set) {}

// OnWarningExpired does nothing (the baseline never preempts).
func (Baseline) OnWarningExpired(*job.Job, int, *nodeset.Set) {}

// OnODStarted does nothing.
func (Baseline) OnODStarted(*job.Job) {}

// OnTimer does nothing.
func (Baseline) OnTimer(any) {}

// squat records a backfilled job occupying nodes reserved for a claim.
type squat struct {
	claim int
	nodes *nodeset.Set
}

// Engine is the simulator instance. Create with New, run with Run.
type Engine struct {
	cfg  Config
	mech Mechanism
	clk  int64

	q   eventq.Queue
	cl  *cluster.Cluster
	met *metrics.Collector

	jobs    []*job.Job
	byID    map[int]*job.Job
	queue   []*job.Job
	inQueue map[int]bool
	running map[int]*job.Job // Running or Warning (hold nodes)

	endEv  map[int]*eventq.Event
	warnEv map[int]*eventq.Event

	schedPending bool
	completed    int

	// BackfillReserved bookkeeping.
	backfillable map[int]bool    // claims whose reservations may host squatters
	squats       map[int][]squat // squatter job ID -> occupied reserved nodes
	squatted     map[int]int     // claim -> node count occupied by squatters

	err error
}

// New builds an engine over jobs (any order) with the given mechanism. Job
// IDs must be unique and sizes must fit the system.
func New(cfg Config, jobs []*job.Job, mech Mechanism) (*Engine, error) {
	cfg = cfg.withDefaults()
	seen := make(map[int]bool, len(jobs))
	for _, j := range jobs {
		if j.Size > cfg.Nodes {
			return nil, fmt.Errorf("sim: job %d size %d exceeds system %d", j.ID, j.Size, cfg.Nodes)
		}
		if seen[j.ID] {
			return nil, fmt.Errorf("sim: duplicate job ID %d", j.ID)
		}
		seen[j.ID] = true
	}
	byID := make(map[int]*job.Job, len(jobs))
	for _, j := range jobs {
		byID[j.ID] = j
	}
	e := &Engine{
		cfg:          cfg,
		mech:         mech,
		cl:           cluster.New(cfg.Nodes),
		met:          metrics.NewCollector(cfg.Nodes),
		jobs:         jobs,
		byID:         byID,
		inQueue:      make(map[int]bool),
		running:      make(map[int]*job.Job),
		endEv:        make(map[int]*eventq.Event),
		warnEv:       make(map[int]*eventq.Event),
		backfillable: make(map[int]bool),
		squats:       make(map[int][]squat),
		squatted:     make(map[int]int),
	}
	mech.Attach(e)
	return e, nil
}

// Now returns the virtual clock.
func (e *Engine) Now() int64 { return e.clk }

// Cluster exposes the node pool to mechanisms.
func (e *Engine) Cluster() *cluster.Cluster { return e.cl }

// Metrics exposes the collector (mechanisms record decision latencies).
func (e *Engine) Metrics() *metrics.Collector { return e.met }

// Running returns the currently running rigid and malleable jobs (the
// preemption candidates: on-demand jobs are never preempted, and jobs
// already in their warning are spoken for), sorted by ID for determinism.
func (e *Engine) Running() []*job.Job {
	out := make([]*job.Job, 0, len(e.running))
	for _, j := range e.running {
		if j.State == job.Running && j.Class != job.OnDemand {
			out = append(out, j)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Queued reports whether job id is in the waiting queue.
func (e *Engine) Queued(id int) bool { return e.inQueue[id] }

// JobByID resolves a job by its ID (nil if unknown).
func (e *Engine) JobByID(id int) *job.Job { return e.byID[id] }

// EnqueueWaiting places a waiting job into the queue; mechanisms use it for
// fallback paths after reporting an arrival as handled.
func (e *Engine) EnqueueWaiting(j *job.Job) {
	e.enqueue(j)
	e.requestSchedule()
}

// IsRunningOrWarning reports whether job id currently holds nodes.
func (e *Engine) IsRunningOrWarning(id int) bool {
	_, ok := e.running[id]
	return ok
}

// Run executes the simulation to completion and returns the metrics report.
func (e *Engine) Run() (metrics.Report, error) {
	if len(e.jobs) == 0 {
		return e.met.Report(), nil
	}
	minSubmit := e.jobs[0].SubmitTime
	for _, j := range e.jobs {
		if j.SubmitTime < minSubmit {
			minSubmit = j.SubmitTime
		}
		e.q.Push(j.SubmitTime, eventq.PrioArrive, evArrive{j})
		if j.Class == job.OnDemand && j.NoticeTime < j.SubmitTime {
			e.q.Push(j.NoticeTime, eventq.PrioNotice, evNotice{j})
		}
	}
	e.met.NoteSubmit(minSubmit)
	// The clock stays at zero until the first event: all trace times are
	// non-negative, and mechanism timers may have been scheduled at attach
	// time, before the first submission.

	for {
		ev := e.q.Pop()
		if ev == nil {
			if e.completed < len(e.jobs) {
				if e.breakHoldDeadlock() {
					continue
				}
				return e.met.Report(), fmt.Errorf("sim: stalled with %d/%d jobs incomplete at t=%d",
					len(e.jobs)-e.completed, len(e.jobs), e.clk)
			}
			break
		}
		if ev.Time < e.clk {
			return e.met.Report(), fmt.Errorf("sim: time went backwards (%d < %d)", ev.Time, e.clk)
		}
		if e.cfg.MaxSimTime > 0 && ev.Time > e.cfg.MaxSimTime {
			return e.met.Report(), fmt.Errorf("sim: exceeded MaxSimTime at t=%d", ev.Time)
		}
		e.met.NoteReserved(ev.Time, e.cl.TotalReserved())
		e.clk = ev.Time
		e.dispatch(ev)
		e.met.NoteReserved(e.clk, e.cl.TotalReserved())
		if e.err != nil {
			return e.met.Report(), e.err
		}
		if e.cfg.Validate {
			if err := e.cl.CheckInvariant(); err != nil {
				return e.met.Report(), fmt.Errorf("sim: after %T at t=%d: %w", ev.Payload, e.clk, err)
			}
		}
	}
	return e.met.Report(), nil
}

// breakHoldDeadlock dissolves private reservations held for waiting jobs
// when the event queue drains with work outstanding. Directed returns can in
// rare cases mutually starve large waiting jobs; a production resource
// manager would time such holds out. Returns true if anything was released.
func (e *Engine) breakHoldDeadlock() bool {
	released := false
	for _, j := range e.queue {
		if e.cl.ReservedCount(j.ID) > 0 {
			e.cl.UnreserveAll(j.ID)
			released = true
		}
	}
	if released {
		e.requestSchedule()
	}
	return released
}

// fail records a fatal internal error, terminating the run.
func (e *Engine) fail(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf(format, args...)
	}
}

// Event payloads.
type (
	evArrive struct{ j *job.Job }
	evNotice struct{ j *job.Job }
	evEnd    struct{ j *job.Job }
	evWarn   struct {
		j     *job.Job
		claim int
	}
	evTimer struct{ payload any }
	evSched struct{}
)

func (e *Engine) dispatch(ev *eventq.Event) {
	switch p := ev.Payload.(type) {
	case evArrive:
		e.handleArrive(p.j)
	case evNotice:
		e.handleNotice(p.j)
	case evEnd:
		e.handleEnd(p.j)
	case evWarn:
		e.handleWarnExpired(p.j, p.claim)
	case evTimer:
		e.mech.OnTimer(p.payload)
		e.requestSchedule()
	case evSched:
		e.schedPending = false
		e.schedulePass()
	default:
		e.fail("sim: unknown event payload %T", ev.Payload)
	}
}

func (e *Engine) handleArrive(j *job.Job) {
	j.State = job.Waiting
	if j.Class == job.OnDemand {
		t0 := time.Now()
		handled := e.mech.OnODArrival(j)
		e.met.NoteDecision(time.Since(t0))
		if handled {
			e.requestSchedule()
			return
		}
	}
	e.enqueue(j)
	e.requestSchedule()
}

func (e *Engine) handleNotice(j *job.Job) {
	t0 := time.Now()
	e.mech.OnNotice(j)
	e.met.NoteDecision(time.Since(t0))
	e.requestSchedule()
}

func (e *Engine) handleEnd(j *job.Job) {
	if j.State != job.Running && j.State != job.Warning {
		e.fail("sim: end event for job %d in state %v", j.ID, j.State)
		return
	}
	var u job.Usage
	if j.Class == job.Malleable {
		u = j.FinalizeMalleableCompletion(e.clk)
	} else {
		u = j.FinalizeCompletion(e.clk)
	}
	e.met.AddUsage(u)
	e.met.NoteComplete(j)
	e.completed++
	delete(e.endEv, j.ID)
	if wev, ok := e.warnEv[j.ID]; ok {
		// Completed inside its warning window; the expiry must not fire.
		e.q.Cancel(wev)
		delete(e.warnEv, j.ID)
	}
	freed := e.cl.Release(j.ID)
	delete(e.running, j.ID)
	freed.SubtractWith(e.restoreSquattedNodes(j.ID))
	e.mech.OnJobCompleted(j, freed)
	e.requestSchedule()
}

func (e *Engine) handleWarnExpired(j *job.Job, claim int) {
	if j.State != job.Warning {
		// Completed at this exact instant (end events dispatch first) or
		// state changed; nothing to reclaim.
		return
	}
	u := j.FinalizeWarning(e.clk)
	e.met.AddUsage(u)
	delete(e.warnEv, j.ID)
	if ev, ok := e.endEv[j.ID]; ok {
		e.q.Cancel(ev)
		delete(e.endEv, j.ID)
	}
	freed := e.cl.Release(j.ID)
	delete(e.running, j.ID)
	freed.SubtractWith(e.restoreSquattedNodes(j.ID))
	e.enqueue(j)
	e.mech.OnWarningExpired(j, claim, freed)
	e.requestSchedule()
}

func (e *Engine) enqueue(j *job.Job) {
	if e.inQueue[j.ID] {
		return
	}
	j.State = job.Waiting
	e.queue = append(e.queue, j)
	e.inQueue[j.ID] = true
}

func (e *Engine) removeFromQueue(j *job.Job) {
	if !e.inQueue[j.ID] {
		return
	}
	for i, q := range e.queue {
		if q.ID == j.ID {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			break
		}
	}
	delete(e.inQueue, j.ID)
}

func (e *Engine) requestSchedule() {
	if !e.schedPending {
		e.q.Push(e.clk, eventq.PrioSchedule, evSched{})
		e.schedPending = true
	}
}
