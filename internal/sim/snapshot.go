package sim

import (
	"fmt"
	"sort"

	"hybridsched/internal/cluster"
	"hybridsched/internal/eventq"
	"hybridsched/internal/job"
	"hybridsched/internal/metrics"
	"hybridsched/internal/nodeset"
	"hybridsched/internal/policy"
	"hybridsched/internal/snapshot"
)

// EngineSnapshotVersion is the format version of Engine.Snapshot frames.
// Bump it on any layout change; LoadSnapshot rejects other versions.
const EngineSnapshotVersion uint32 = 1

// SnapshotMechanism is the optional mechanism extension that makes a run
// checkpointable. A mechanism implements it by serializing its private
// dynamic state (pending collections, loans, timer handles by sequence
// number) and by encoding/decoding the opaque payloads of the timer events it
// scheduled. Engine.Snapshot fails when the attached mechanism does not
// implement it, so partially-captured state can never be written. Wrapping
// mechanisms (the fault injector) implement it by chaining to the wrapped
// mechanism.
type SnapshotMechanism interface {
	Mechanism
	// EncodeSnapshotState appends the mechanism's dynamic state. It must not
	// mutate anything, and must produce identical bytes for identical state.
	EncodeSnapshotState(e *snapshot.Enc) error
	// DecodeSnapshotState restores state written by EncodeSnapshotState. It
	// runs after the event queue has been rebuilt, so timer handles can be
	// re-linked through the RestoreContext. Implementations must either
	// restore completely or leave the mechanism unchanged.
	DecodeSnapshotState(d *snapshot.Dec, rc *RestoreContext) error
	// EncodeTimerPayload appends one timer payload previously passed to
	// ScheduleTimer/ScheduleFaultTimer. Unknown payloads are an error.
	EncodeTimerPayload(e *snapshot.Enc, payload any) error
	// DecodeTimerPayload reads one payload written by EncodeTimerPayload.
	DecodeTimerPayload(d *snapshot.Dec) (any, error)
}

// RestoreContext lets a mechanism re-link restored state to the rebuilt
// engine structures during DecodeSnapshotState.
type RestoreContext struct {
	jobs   map[int]*job.Job
	events map[uint64]*eventq.Event
}

// Event resolves a pending event by the sequence number captured at encode
// time (Event.Seq).
func (rc *RestoreContext) Event(seq uint64) (*eventq.Event, bool) {
	ev, ok := rc.events[seq]
	return ev, ok
}

// JobByID resolves a restored job by ID.
func (rc *RestoreContext) JobByID(id int) (*job.Job, bool) {
	j, ok := rc.jobs[id]
	return j, ok
}

// Event payload tags in the serialized queue.
const (
	evTagArrive uint8 = iota + 1
	evTagNotice
	evTagEnd
	evTagWarn
	evTagTimer
	evTagSched
	evTagNodeDown
	evTagNodeUp
	evTagDrainStart
	evTagDrainEnd
)

// Snapshot serializes the complete engine state — clock, jobs, waiting queue,
// running set, cluster partition (including the DOWN pool), open and pending
// drain windows, the full event queue with sequence numbers, metrics
// accumulators, and the mechanism's private state — into a versioned,
// length-prefixed, CRC-checked frame. Restoring the frame with LoadSnapshot
// into an identically configured engine continues the run byte-identically.
//
// Snapshot never mutates the engine, so interleaving snapshots with Step
// calls cannot perturb a run. It fails on an engine that has already failed,
// and on mechanisms that do not implement SnapshotMechanism.
func (e *Engine) Snapshot() ([]byte, error) {
	if e.err != nil {
		return nil, fmt.Errorf("sim: snapshot of failed engine: %w", e.err)
	}
	if e.cfg.ReleaseCompleted {
		return nil, fmt.Errorf("sim: ReleaseCompleted engines forget completed jobs and cannot snapshot")
	}
	sm, ok := e.mech.(SnapshotMechanism)
	if !ok {
		return nil, fmt.Errorf("sim: mechanism %q does not support snapshots", e.mech.Name())
	}

	var enc snapshot.Enc

	// Configuration echo, verified on load.
	enc.Int(e.cfg.Nodes)
	enc.String(e.cfg.Policy.Name())
	enc.Bool(e.cfg.BackfillReserved)
	enc.I64(e.cfg.MaxSimTime)
	enc.Bool(e.cfg.Reference)
	enc.String(e.mech.Name())

	// Scalar run state.
	enc.I64(e.clk)
	enc.Int(e.completed)
	enc.Int(e.dispatched)
	enc.Bool(e.primed)
	enc.Bool(e.schedPending)

	// Jobs, in registration order (static description + dynamic state).
	enc.U32(uint32(len(e.jobs)))
	for _, j := range e.jobs {
		j.EncodeSnapshot(&enc)
	}

	// Waiting queue and running set, by job ID, order preserved verbatim.
	ids := make([]int, len(e.queue))
	for i, j := range e.queue {
		ids[i] = j.ID
	}
	enc.Ints(ids)
	ids = make([]int, len(e.running))
	for i, j := range e.running {
		ids[i] = j.ID
	}
	enc.Ints(ids)

	e.cl.EncodeSnapshot(&enc)
	e.met.EncodeSnapshot(&enc)

	// Drain windows. Payload pointers are shared between the open-window list
	// and the pending start/end events, so windows serialize once into an
	// indexed table (first-reference order over the queue in dispatch order)
	// and everything else refers to table positions.
	events := e.q.Ordered()
	drainIdx := make(map[*drainWindow]int)
	var drainTab []*drainWindow
	for _, ev := range events {
		var d *drainWindow
		switch p := ev.Payload.(type) {
		case evDrainStart:
			d = p.d
		case evDrainEnd:
			d = p.d
		default:
			continue
		}
		if _, seen := drainIdx[d]; !seen {
			drainIdx[d] = len(drainTab)
			drainTab = append(drainTab, d)
		}
	}
	enc.U32(uint32(len(drainTab)))
	for _, d := range drainTab {
		enc.Int(d.want)
		d.taken.EncodeSnapshot(&enc)
		enc.I64(d.end)
	}
	open := make([]int, len(e.drains))
	for i, d := range e.drains {
		idx, seen := drainIdx[d]
		if !seen {
			return nil, fmt.Errorf("sim: open drain window (end t=%d) has no pending close event", d.end)
		}
		open[i] = idx
	}
	enc.Ints(open)

	// Reserved-squatting bookkeeping, sorted for determinism.
	enc.Ints(sortedKeysBool(e.backfillable))
	squatIDs := make([]int, 0, len(e.squats))
	for id := range e.squats {
		squatIDs = append(squatIDs, id)
	}
	sortInts(squatIDs)
	enc.U32(uint32(len(squatIDs)))
	for _, id := range squatIDs {
		enc.Int(id)
		list := e.squats[id]
		enc.U32(uint32(len(list)))
		for _, s := range list {
			enc.Int(s.claim)
			s.nodes.EncodeSnapshot(&enc)
		}
	}
	claims := make([]int, 0, len(e.squatted))
	for c := range e.squatted {
		claims = append(claims, c)
	}
	sortInts(claims)
	enc.U32(uint32(len(claims)))
	for _, c := range claims {
		enc.Int(c)
		enc.Int(e.squatted[c])
	}

	// The event queue: sequence counter, then every pending event in dispatch
	// order with its original sequence number.
	enc.U64(e.q.SeqCounter())
	enc.U32(uint32(len(events)))
	for _, ev := range events {
		enc.I64(ev.Time)
		enc.U8(uint8(ev.Prio))
		enc.U64(ev.Seq())
		switch p := ev.Payload.(type) {
		case evArrive:
			enc.U8(evTagArrive)
			enc.Int(p.j.ID)
		case evNotice:
			enc.U8(evTagNotice)
			enc.Int(p.j.ID)
		case evEnd:
			enc.U8(evTagEnd)
			enc.Int(p.j.ID)
		case evWarn:
			enc.U8(evTagWarn)
			enc.Int(p.j.ID)
			enc.Int(p.claim)
		case evTimer:
			enc.U8(evTagTimer)
			if err := sm.EncodeTimerPayload(&enc, p.payload); err != nil {
				return nil, err
			}
		case evSched:
			enc.U8(evTagSched)
		case evNodeDown:
			enc.U8(evTagNodeDown)
			enc.Int(p.node)
			enc.I64(p.repairAfter)
		case evNodeUp:
			enc.U8(evTagNodeUp)
			p.nodes.EncodeSnapshot(&enc)
		case evDrainStart:
			enc.U8(evTagDrainStart)
			enc.Int(drainIdx[p.d])
		case evDrainEnd:
			enc.U8(evTagDrainEnd)
			enc.Int(drainIdx[p.d])
		default:
			return nil, fmt.Errorf("sim: unserializable event payload %T", ev.Payload)
		}
	}

	// Mechanism state last, so its decode can re-link against everything else.
	if err := sm.EncodeSnapshotState(&enc); err != nil {
		return nil, err
	}

	return snapshot.Frame(EngineSnapshotVersion, enc.Bytes()), nil
}

// LoadSnapshot restores state captured by Snapshot into e. The engine must
// have been constructed with the same configuration (node count, policy,
// mechanism, fault wrapping) as the one that produced the snapshot; the
// configuration echo in the frame is verified and mismatches are rejected.
//
// The method is all-or-nothing: every structure is decoded and validated into
// staging storage first, and the engine is only swapped to the restored state
// once nothing can fail. Malformed or corrupted input — truncations, bit
// flips, version skew, semantic inconsistencies — yields an error and leaves
// the engine exactly as it was.
func (e *Engine) LoadSnapshot(data []byte) error {
	if e.cfg.ReleaseCompleted {
		return fmt.Errorf("sim: ReleaseCompleted engines forget completed jobs and cannot restore")
	}
	sm, ok := e.mech.(SnapshotMechanism)
	if !ok {
		return fmt.Errorf("sim: mechanism %q does not support snapshots", e.mech.Name())
	}
	payload, version, err := snapshot.Unframe(data)
	if err != nil {
		return err
	}
	if version != EngineSnapshotVersion {
		return fmt.Errorf("sim: snapshot version %d, this build reads %d", version, EngineSnapshotVersion)
	}
	d := snapshot.NewDec(payload)

	// Configuration echo.
	nodes := d.Int()
	polName := d.String()
	backfillReserved := d.Bool()
	maxSimTime := d.I64()
	reference := d.Bool()
	mechName := d.String()
	if err := d.Err(); err != nil {
		return err
	}
	if nodes != e.cfg.Nodes {
		return fmt.Errorf("sim: snapshot for %d nodes, engine has %d", nodes, e.cfg.Nodes)
	}
	if polName != e.cfg.Policy.Name() {
		return fmt.Errorf("sim: snapshot for policy %q, engine has %q", polName, e.cfg.Policy.Name())
	}
	if backfillReserved != e.cfg.BackfillReserved {
		return fmt.Errorf("sim: snapshot BackfillReserved=%v, engine has %v", backfillReserved, e.cfg.BackfillReserved)
	}
	if maxSimTime != e.cfg.MaxSimTime {
		return fmt.Errorf("sim: snapshot MaxSimTime=%d, engine has %d", maxSimTime, e.cfg.MaxSimTime)
	}
	if reference != e.cfg.Reference {
		return fmt.Errorf("sim: snapshot Reference=%v, engine has %v", reference, e.cfg.Reference)
	}
	if mechName != e.mech.Name() {
		return fmt.Errorf("sim: snapshot for mechanism %q, engine has %q", mechName, e.mech.Name())
	}

	// Scalar run state.
	clk := d.I64()
	completed := d.Int()
	dispatched := d.Int()
	primed := d.Bool()
	schedPending := d.Bool()

	// Jobs.
	njobs := d.Count(73)
	jobs := make([]*job.Job, 0, njobs)
	byID := make(map[int]*job.Job, njobs)
	completedJobs := 0
	for i := 0; i < njobs; i++ {
		j := job.DecodeSnapshotJob(d)
		if j == nil {
			return d.Err()
		}
		if j.Size > nodes {
			return d.Failf("job %d size %d exceeds system %d", j.ID, j.Size, nodes)
		}
		if _, dup := byID[j.ID]; dup {
			return d.Failf("duplicate job ID %d", j.ID)
		}
		byID[j.ID] = j
		jobs = append(jobs, j)
		if j.State == job.Completed {
			completedJobs++
		}
	}
	if d.Err() == nil && completedJobs != completed {
		return d.Failf("completed count %d disagrees with %d completed jobs", completed, completedJobs)
	}

	resolve := func(ids []int) ([]*job.Job, error) {
		out := make([]*job.Job, len(ids))
		for i, id := range ids {
			j, ok := byID[id]
			if !ok {
				return nil, d.Failf("unknown job ID %d", id)
			}
			out[i] = j
		}
		return out, nil
	}
	queue, err := resolve(d.Ints())
	if err != nil {
		return err
	}
	running, err := resolve(d.Ints())
	if err != nil {
		return err
	}
	for i := 1; i < len(running); i++ {
		if running[i-1].ID >= running[i].ID {
			return d.Failf("running set not in ascending ID order")
		}
	}

	cl := cluster.DecodeSnapshotCluster(d)
	if cl == nil {
		return d.Err()
	}
	if cl.N() != nodes {
		return d.Failf("cluster snapshot has %d nodes, expected %d", cl.N(), nodes)
	}
	met := metrics.DecodeSnapshotCollector(d)
	if met == nil {
		return d.Err()
	}

	// Drain windows.
	ndrains := d.Count(8)
	drainTab := make([]*drainWindow, 0, ndrains)
	for i := 0; i < ndrains; i++ {
		w := d.Int()
		taken := nodeset.DecodeSnapshotSet(d)
		end := d.I64()
		if d.Err() != nil {
			return d.Err()
		}
		drainTab = append(drainTab, &drainWindow{want: w, taken: taken, end: end})
	}
	openIdx := d.Ints()
	drains := make([]*drainWindow, len(openIdx))
	for i, idx := range openIdx {
		if idx < 0 || idx >= len(drainTab) {
			return d.Failf("open drain index %d out of range", idx)
		}
		drains[i] = drainTab[idx]
	}

	// Squatting bookkeeping.
	backfillable := make(map[int]bool)
	for _, c := range d.Ints() {
		backfillable[c] = true
	}
	nsq := d.Count(16)
	squats := make(map[int][]squat, nsq)
	for i := 0; i < nsq; i++ {
		id := d.Int()
		n := d.Count(12)
		list := make([]squat, 0, n)
		for k := 0; k < n; k++ {
			claim := d.Int()
			set := nodeset.DecodeSnapshotSet(d)
			if d.Err() != nil {
				return d.Err()
			}
			list = append(list, squat{claim: claim, nodes: set})
		}
		if _, dup := squats[id]; dup {
			return d.Failf("duplicate squat entry for job %d", id)
		}
		squats[id] = list
	}
	nsc := d.Count(16)
	squatted := make(map[int]int, nsc)
	for i := 0; i < nsc; i++ {
		c := d.Int()
		v := d.Int()
		if _, dup := squatted[c]; dup {
			return d.Failf("duplicate squatted entry for claim %d", c)
		}
		squatted[c] = v
	}

	// Event queue.
	seqCounter := d.U64()
	var q eventq.Queue
	if e.cfg.Reference {
		q.UseHeap()
	} else {
		q.EnablePooling()
	}
	if err := q.SetSeqCounter(seqCounter); err != nil {
		return d.Fail(err)
	}
	nev := d.Count(17) // time + prio + seq per event, minimum
	rc := &RestoreContext{jobs: byID, events: make(map[uint64]*eventq.Event, nev)}
	endEv := make(map[int]*eventq.Event)
	warnEv := make(map[int]*eventq.Event)
	var prev *eventq.Event
	schedSeen := false
	for i := 0; i < nev; i++ {
		t := d.I64()
		prio := eventq.Priority(d.U8())
		seq := d.U64()
		tag := d.U8()
		if d.Err() != nil {
			return d.Err()
		}
		if prio < eventq.PrioEnd || prio > eventq.PrioSchedule {
			return d.Failf("event %d: invalid priority %d", i, prio)
		}
		if t < clk {
			return d.Failf("event %d: time %d before the restored clock %d", i, t, clk)
		}
		if _, dup := rc.events[seq]; dup {
			return d.Failf("event %d: duplicate sequence number %d", i, seq)
		}
		var payload any
		switch tag {
		case evTagArrive, evTagNotice, evTagEnd, evTagWarn:
			id := d.Int()
			j, ok := byID[id]
			if !ok {
				return d.Failf("event %d: unknown job ID %d", i, id)
			}
			switch tag {
			case evTagArrive:
				payload = evArrive{j}
			case evTagNotice:
				payload = evNotice{j}
			case evTagEnd:
				payload = evEnd{j}
			case evTagWarn:
				payload = evWarn{j: j, claim: d.Int()}
			}
		case evTagTimer:
			p, err := sm.DecodeTimerPayload(d)
			if err != nil {
				return d.Fail(err)
			}
			payload = evTimer{payload: p}
		case evTagSched:
			if schedSeen {
				return d.Failf("event %d: duplicate scheduler pass", i)
			}
			schedSeen = true
			payload = evSched{}
		case evTagNodeDown:
			node := d.Int()
			after := d.I64()
			if node < 0 || node >= nodes {
				return d.Failf("event %d: failed node %d out of range", i, node)
			}
			payload = evNodeDown{node: node, repairAfter: after}
		case evTagNodeUp:
			set := nodeset.DecodeSnapshotSet(d)
			if d.Err() != nil {
				return d.Err()
			}
			payload = evNodeUp{nodes: set}
		case evTagDrainStart, evTagDrainEnd:
			idx := d.Int()
			if d.Err() != nil {
				return d.Err()
			}
			if idx < 0 || idx >= len(drainTab) {
				return d.Failf("event %d: drain index %d out of range", i, idx)
			}
			if tag == evTagDrainStart {
				payload = evDrainStart{d: drainTab[idx]}
			} else {
				payload = evDrainEnd{d: drainTab[idx]}
			}
		default:
			return d.Failf("event %d: unknown payload tag %d", i, tag)
		}
		if d.Err() != nil {
			return d.Err()
		}
		ev, err := q.PushRestored(t, prio, payload, seq)
		if err != nil {
			return d.Fail(err)
		}
		if prev != nil && !eventOrderBefore(prev, ev) {
			return d.Failf("event %d: queue not in dispatch order", i)
		}
		prev = ev
		rc.events[seq] = ev
		switch p := payload.(type) {
		case evEnd:
			if _, dup := endEv[p.j.ID]; dup {
				return d.Failf("job %d has two end events", p.j.ID)
			}
			endEv[p.j.ID] = ev
		case evWarn:
			if _, dup := warnEv[p.j.ID]; dup {
				return d.Failf("job %d has two warning events", p.j.ID)
			}
			warnEv[p.j.ID] = ev
		}
	}
	if schedSeen != schedPending {
		return d.Failf("scheduler-pending flag %v disagrees with queue contents", schedPending)
	}

	// Mechanism state is the last section; after it, the payload must be
	// fully consumed. The mechanism commits its own state on success, so run
	// it only once everything engine-side has validated — from here on,
	// nothing fails.
	if err := sm.DecodeSnapshotState(d, rc); err != nil {
		return err
	}
	if err := d.Done(); err != nil {
		return err
	}

	// Commit. Rebuild the ID index from scratch, then swap every field.
	e.jobs = jobs
	e.dense = nil
	e.sparse = nil
	e.registered = 0 // register re-counts every restored job below
	for _, j := range jobs {
		// register cannot fail here: IDs were checked unique above.
		_ = e.register(j)
	}
	for _, j := range queue {
		e.mustEnt(j).inQueue = true
	}
	for _, j := range running {
		e.mustEnt(j).running = true
	}
	for id, ev := range endEv {
		e.mustEnt(byID[id]).endEv = ev
	}
	for id, ev := range warnEv {
		e.mustEnt(byID[id]).warnEv = ev
	}
	e.clk = clk
	e.completed = completed
	e.dispatched = dispatched
	e.primed = primed
	e.schedPending = schedPending
	e.queue = queue
	e.running = running
	e.cl = cl
	e.met = met
	e.drains = drains
	e.backfillable = backfillable
	e.squats = squats
	e.squatted = squatted
	e.q = q
	// Rebuild the optimized path's incremental scheduler state: the release
	// list (the running set is ascending-ID, so appending and sorting by
	// (EstEnd, ID) reproduces exactly what live maintenance held), the
	// queue-minimum bound, and a fresh planner with no memoized shadow.
	e.rel = e.rel[:0]
	if !e.cfg.Reference {
		for _, j := range running {
			if r, ok := e.restoredRunningInfo(j); ok {
				ent := e.mustEnt(j)
				ent.relEnd = r.EstEnd
				ent.relOn = true
				e.rel = append(e.rel, r)
			}
		}
		sort.Slice(e.rel, func(i, k int) bool { return policy.RelLess(e.rel[i], e.rel[k]) })
	}
	e.relVer++
	e.planner = policy.Planner{}
	e.recomputeMinNeed()
	e.err = nil
	return nil
}

// TimerPending reports whether a timer handle returned by ScheduleTimer or
// ScheduleFaultTimer is still scheduled. Fired and cancelled timers report
// false; mechanisms use it to serialize only live handles.
func (e *Engine) TimerPending(ev *eventq.Event) bool { return e.q.Contains(ev) }

// eventOrderBefore reports dispatch order between two events (exposed via the
// eventq package's ordering rule).
func eventOrderBefore(a, b *eventq.Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Prio != b.Prio {
		return a.Prio < b.Prio
	}
	return a.Seq() < b.Seq()
}

// sortedKeysBool returns the keys of m whose value is true, ascending.
func sortedKeysBool(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k, v := range m {
		if v {
			out = append(out, k)
		}
	}
	sortInts(out)
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for k := i; k > 0 && xs[k-1] > xs[k]; k-- {
			xs[k-1], xs[k] = xs[k], xs[k-1]
		}
	}
}

// Baseline mechanism snapshot support: the baseline holds no dynamic state
// and schedules no timers.

// EncodeSnapshotState writes nothing — the baseline is stateless.
func (Baseline) EncodeSnapshotState(*snapshot.Enc) error { return nil }

// DecodeSnapshotState restores nothing.
func (Baseline) DecodeSnapshotState(*snapshot.Dec, *RestoreContext) error { return nil }

// EncodeTimerPayload fails: the baseline never schedules timers.
func (Baseline) EncodeTimerPayload(*snapshot.Enc, any) error {
	return fmt.Errorf("sim: baseline mechanism has no timer payloads")
}

// DecodeTimerPayload fails: the baseline never schedules timers.
func (Baseline) DecodeTimerPayload(*snapshot.Dec) (any, error) {
	return nil, fmt.Errorf("sim: baseline mechanism has no timer payloads")
}
