package sim

import (
	"testing"

	"hybridsched/internal/job"
	"hybridsched/internal/nodeset"
)

// recordEvents installs a sink collecting every emitted event.
func recordEvents(e *Engine) *[]Event {
	events := &[]Event{}
	e.SetEventSink(func(ev Event) { *events = append(*events, ev) })
	return events
}

func countEvents(events []Event, t EventType, jobID int) int {
	n := 0
	for _, ev := range events {
		if ev.Type == t && ev.Job == jobID {
			n++
		}
	}
	return n
}

func TestDrainShrinksCapacitySeenByScheduler(t *testing.T) {
	// 100 nodes, 40 drained for [0, 5000). An 80-node job submitted at t=10
	// cannot fit in the remaining 60 and must wait for the window to close.
	a := rigid(1, 10, 80, 100)
	e, err := New(Config{Nodes: 100, Validate: true}, []*job.Job{a}, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleDrain(0, 5000, 40); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.StartTime != 5000 {
		t.Fatalf("job started at %d, want 5000 (drain end)", a.StartTime)
	}
	if e.DownCount() != 0 || e.AvailableNodes() != 100 {
		t.Fatalf("capacity not restored: down=%d", e.DownCount())
	}
	// Level 40 from the window start (first submit, t=10) to drain end.
	if want := int64(40 * (5000 - 10)); rep.DownNodeSeconds != want {
		t.Fatalf("DownNodeSeconds = %d, want %d", rep.DownNodeSeconds, want)
	}
	if rep.Breakdown.Unavailable <= 0 {
		t.Fatal("Unavailable share missing from the breakdown")
	}
}

func TestDrainAbsorbsFreedNodesWithoutPreempting(t *testing.T) {
	// a holds all 100 nodes until t=1000. A 50-node drain opening at t=100
	// must not preempt it; it absorbs 50 of the nodes a frees and returns
	// them at t=5100, delaying the 100-node job b until then.
	a := rigid(1, 0, 100, 1000)
	b := rigid(2, 50, 100, 100)
	e, err := New(Config{Nodes: 100, Validate: true}, []*job.Job{a, b}, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	events := recordEvents(e)
	if err := e.ScheduleDrain(100, 5000, 50); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a.PreemptCount != 0 {
		t.Fatal("drain preempted a running job")
	}
	if b.StartTime != 5100 {
		t.Fatalf("b started at %d, want 5100 (drain close)", b.StartTime)
	}
	var saw []Event
	for _, ev := range *events {
		if ev.Type == EventDrain || ev.Type == EventNodeDown || ev.Type == EventNodeUp {
			saw = append(saw, ev)
		}
	}
	want := []Event{
		{Type: EventDrain, Time: 100, Job: -1, Nodes: 50},
		{Type: EventNodeDown, Time: 1000, Job: -1, Nodes: 50},
		{Type: EventNodeUp, Time: 5100, Job: -1, Nodes: 50},
	}
	if len(saw) != len(want) {
		t.Fatalf("availability events %v, want %v", saw, want)
	}
	for i := range want {
		if saw[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, saw[i], want[i])
		}
	}
}

func TestFailNodeInterruptsJobAndRepairs(t *testing.T) {
	// a holds every node; a failure at t=500 with a 200 s repair preempts it
	// (no checkpointing: restart from scratch) and keeps one node out of
	// service until t=700, when a can start again at full size.
	a := rigid(1, 0, 100, 1000)
	e, err := New(Config{Nodes: 100, Validate: true}, []*job.Job{a}, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleNodeFailure(500, 7, 200); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.PreemptCount != 1 {
		t.Fatalf("preempt count %d", a.PreemptCount)
	}
	if a.StartTime != 0 || a.EndTime != 700+1000 {
		t.Fatalf("restart wrong: start %d end %d, want end 1700", a.StartTime, a.EndTime)
	}
	if rep.FailuresInjected != 1 || rep.FailureMisses != 0 {
		t.Fatalf("failure counters %d/%d", rep.FailuresInjected, rep.FailureMisses)
	}
	if rep.DownNodeSeconds != 200 {
		t.Fatalf("DownNodeSeconds = %d, want 200", rep.DownNodeSeconds)
	}
}

func TestFailNodeInstantRepairKeepsCapacity(t *testing.T) {
	// The legacy shortcut: repairAfter <= 0 preempts the victim but never
	// shrinks capacity, so the job restarts at the failure instant.
	a := rigid(1, 0, 100, 1000)
	e, err := New(Config{Nodes: 100, Validate: true}, []*job.Job{a}, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	events := recordEvents(e)
	if err := e.ScheduleNodeFailure(500, 3, 0); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.EndTime != 500+1000 {
		t.Fatalf("end %d, want 1500", a.EndTime)
	}
	if rep.FailuresInjected != 1 || rep.DownNodeSeconds != 0 {
		t.Fatalf("instant repair recorded downtime: %d failures, %d down node-seconds",
			rep.FailuresInjected, rep.DownNodeSeconds)
	}
	if n := countEvents(*events, EventNodeDown, -1); n != 0 {
		t.Fatalf("instant repair emitted %d node-down events", n)
	}
}

func TestFailNodeOnIdleNodeIsAMissButRemovesCapacity(t *testing.T) {
	a := rigid(1, 0, 50, 1000)
	e, err := New(Config{Nodes: 100, Validate: true}, []*job.Job{a}, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleNodeFailure(100, 99, 500); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.PreemptCount != 0 {
		t.Fatal("idle-node failure preempted the job")
	}
	if rep.FailuresInjected != 0 || rep.FailureMisses != 1 {
		t.Fatalf("failure counters %d/%d, want 0/1", rep.FailuresInjected, rep.FailureMisses)
	}
	if rep.DownNodeSeconds <= 0 {
		t.Fatal("idle-node failure removed no capacity")
	}
}

// warnThenFail preempts job 1 (malleable) with a warning at t=500, then
// fails one of its nodes at t=550 — inside the 120 s warning window.
type warnThenFail struct {
	Baseline
	e            *Engine
	expired      int
	expiredClaim int
	failRepair   int64
}

func (m *warnThenFail) Attach(e *Engine) { m.e = e; e.ScheduleTimer(500, "warn") }

func (m *warnThenFail) OnTimer(p any) {
	switch p {
	case "warn":
		m.e.PreemptMalleableWithWarning(m.e.JobByID(1), 42)
		m.e.ScheduleTimer(550, "fail")
	case "fail":
		m.e.FailNode(0, m.failRepair)
	}
}

func (m *warnThenFail) OnWarningExpired(j *job.Job, claim int, freed *nodeset.Set) {
	m.expired++
	m.expiredClaim = claim
}

func TestFailureMidWarningDoesNotDoubleFreeNodes(t *testing.T) {
	// A malleable job struck by a node failure inside its preemption warning
	// must release its nodes exactly once: the pending expiry is cancelled,
	// the mechanism sees one OnWarningExpired with the original claim, and
	// the cluster partition invariant (checked after every event) holds.
	m := &warnThenFail{failRepair: 300}
	a := malleable(1, 0, 50, 10, 5000)
	e, err := New(Config{Nodes: 100, Validate: true}, []*job.Job{a}, m)
	if err != nil {
		t.Fatal(err)
	}
	events := recordEvents(e)
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.expired != 1 || m.expiredClaim != 42 {
		t.Fatalf("OnWarningExpired fired %d times (claim %d), want once with claim 42",
			m.expired, m.expiredClaim)
	}
	// Exactly one preemption of job 1: the forced early expiry at t=550. The
	// original expiry at t=620 must not fire a second release.
	if n := countEvents(*events, EventPreempt, 1); n != 1 {
		t.Fatalf("job 1 preempted %d times, want 1", n)
	}
	for _, ev := range *events {
		if ev.Type == EventPreempt && ev.Job == 1 && ev.Time != 550 {
			t.Fatalf("preempt at t=%d, want t=550", ev.Time)
		}
	}
	if rep.FailuresInjected != 1 {
		t.Fatalf("failure not counted as a strike: %d", rep.FailuresInjected)
	}
	if rep.Jobs != 1 {
		t.Fatalf("job did not complete: %d", rep.Jobs)
	}
}

func TestScheduleDrainValidation(t *testing.T) {
	e, err := New(Config{Nodes: 100}, nil, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		start, dur int64
		count      int
	}{
		{0, 100, 0},    // no nodes
		{0, 100, 101},  // more than the system
		{0, 0, 10},     // zero duration
		{-50, 100, 10}, // in the past
	} {
		if err := e.ScheduleDrain(c.start, c.dur, c.count); err == nil {
			t.Errorf("ScheduleDrain(%d, %d, %d) accepted", c.start, c.dur, c.count)
		}
	}
}

func TestScheduleNodeFailureValidation(t *testing.T) {
	e, err := New(Config{Nodes: 100}, nil, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleNodeFailure(0, -1, 10); err == nil {
		t.Error("negative node accepted")
	}
	if err := e.ScheduleNodeFailure(0, 100, 10); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestFailNodeOnDownNodeIsANoOp(t *testing.T) {
	// Two failures of the same node: the second finds it already down and
	// must count as a miss without scheduling a second repair.
	a := rigid(1, 0, 10, 2000)
	e, err := New(Config{Nodes: 100, Validate: true}, []*job.Job{a}, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleNodeFailure(100, 50, 1000); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleNodeFailure(200, 50, 1000); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailureMisses != 2 {
		t.Fatalf("misses %d, want 2 (idle node, then already-down node)", rep.FailureMisses)
	}
	if rep.DownNodeSeconds != 1000 {
		t.Fatalf("DownNodeSeconds = %d, want 1000 (one repair window)", rep.DownNodeSeconds)
	}
}

func TestDowntimeClippedToObservationWindow(t *testing.T) {
	// A drain that outlasts the last completion by weeks: the report must
	// charge only the downtime inside the observation window, or the
	// breakdown fractions stop being a partition (Idle goes negative).
	a := rigid(1, 0, 64, 7200)
	e, err := New(Config{Nodes: 256, Validate: true}, []*job.Job{a}, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleDrain(3600, 2_000_000, 64); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Window is 0..7200; the drain holds 64 nodes from t=3600 on.
	if want := int64(64 * (7200 - 3600)); rep.DownNodeSeconds != want {
		t.Fatalf("DownNodeSeconds = %d, want %d (clipped to the window)", rep.DownNodeSeconds, want)
	}
	if rep.Breakdown.Idle < 0 {
		t.Fatalf("Idle share %g went negative", rep.Breakdown.Idle)
	}
	if rep.Breakdown.Unavailable > 1 {
		t.Fatalf("Unavailable share %g exceeds the window", rep.Breakdown.Unavailable)
	}
}
