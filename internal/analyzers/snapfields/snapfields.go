// Package snapfields proves snapshot completeness: for every type that
// participates in the HSNP checkpoint codec, each stored field must be
// referenced by both the encode and the decode path. A field added to a
// struct but forgotten in its codec silently round-trips to the zero value —
// the restore-equivalence suite only catches that if some golden metric
// happens to depend on the field, whereas this check catches it at vet time.
//
// Recognized codec shapes (all in use in this repository):
//
//   - method EncodeSnapshot on T, paired with a package-level function whose
//     name starts with DecodeSnapshot and returns T or *T;
//   - methods EncodeSnapshotState / DecodeSnapshotState on T;
//   - method Snapshot() ([]byte, error) on T, paired with method LoadSnapshot.
//
// Fields that are deliberately not snapshotted (derived values rebuilt at
// restore, static wiring re-injected by the caller) are waived on the struct
// field's line with //schedlint:snapfield <why it need not round-trip>.
package snapfields

import (
	"go/ast"
	"go/types"
	"strings"

	"hybridsched/internal/analyzers/lintkit"
)

// Analyzer proves every stored field is covered by its type's snapshot codec.
var Analyzer = &lintkit.Analyzer{
	Name:   "snapfields",
	Waiver: "snapfield",
	Doc: "prove every field of a snapshotted type is encoded and decoded\n\n" +
		"For each EncodeSnapshot/DecodeSnapshot (or Snapshot/LoadSnapshot,\n" +
		"EncodeSnapshotState/DecodeSnapshotState) pair, every struct field must\n" +
		"be referenced on both sides or waived with //schedlint:snapfield.",
	Run: run,
}

// codec accumulates the encode- and decode-side declarations found for one
// named type.
type codec struct {
	typ     *types.Named
	encodes []*ast.FuncDecl
	decodes []*ast.FuncDecl
}

func run(pass *lintkit.Pass) error {
	codecs := make(map[*types.TypeName]*codec)
	get := func(named *types.Named) *codec {
		c := codecs[named.Obj()]
		if c == nil {
			c = &codec{typ: named}
			codecs[named.Obj()] = c
		}
		return c
	}

	// Pass 1: collect codec declarations.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv != nil {
				named := recvNamed(pass, fd)
				if named == nil || named.Obj().Pkg() != pass.Pkg {
					continue
				}
				switch fd.Name.Name {
				case "EncodeSnapshot", "EncodeSnapshotState":
					get(named).encodes = append(get(named).encodes, fd)
				case "Snapshot":
					if isBytesErrorSig(pass, fd) {
						get(named).encodes = append(get(named).encodes, fd)
					}
				case "DecodeSnapshotState", "LoadSnapshot":
					get(named).decodes = append(get(named).decodes, fd)
				}
				continue
			}
			// Package-level DecodeSnapshot* functions pair by result type.
			if strings.HasPrefix(fd.Name.Name, "DecodeSnapshot") {
				if named := resultNamed(pass, fd); named != nil && named.Obj().Pkg() == pass.Pkg {
					get(named).decodes = append(get(named).decodes, fd)
				}
			}
		}
	}

	// Pass 2: check each codec's pairing and field coverage.
	for _, c := range codecs {
		if len(c.encodes) == 0 {
			continue // a lone decode (constructor-style) imposes nothing
		}
		if len(c.decodes) == 0 {
			pass.Reportf(c.encodes[0].Name.Pos(),
				"type %s has %s but no matching decode (DecodeSnapshot*/DecodeSnapshotState/LoadSnapshot); snapshots of it cannot be restored",
				c.typ.Obj().Name(), c.encodes[0].Name.Name)
			continue
		}
		st, ok := c.typ.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		encCov := coverage(pass, c.typ, st, c.encodes)
		decCov := coverage(pass, c.typ, st, c.decodes)
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			if field.Name() == "_" {
				continue
			}
			enc, dec := encCov[field], decCov[field]
			if enc && dec {
				continue
			}
			var missing string
			switch {
			case !enc && !dec:
				missing = "neither the encode nor the decode path"
			case !enc:
				missing = "the encode path"
			default:
				missing = "the decode path"
			}
			pass.Reportf(field.Pos(),
				"field %s.%s is not referenced in %s of its snapshot codec; it will not round-trip — encode it or waive with //schedlint:snapfield <reason>",
				c.typ.Obj().Name(), field.Name(), missing)
		}
	}
	return nil
}

// coverage walks the given codec bodies (function literals included) and
// returns the set of T's direct struct fields they reference, whether through
// selector expressions, promoted-field selections, or composite-literal keys.
func coverage(pass *lintkit.Pass, named *types.Named, st *types.Struct, decls []*ast.FuncDecl) map[*types.Var]bool {
	direct := make(map[*types.Var]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		direct[st.Field(i)] = true
	}
	covered := make(map[*types.Var]bool)
	for _, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				// Direct selector uses and composite-literal keys both resolve
				// the ident straight to the field object.
				if v, ok := pass.TypesInfo.Uses[n].(*types.Var); ok && v.IsField() && direct[v] {
					covered[v] = true
				}
			case *ast.SelectorExpr:
				// Promoted-field access resolves to the embedded struct's
				// field; credit the direct field it passes through.
				sel, ok := pass.TypesInfo.Selections[n]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				recv := sel.Recv()
				if p, ok := recv.(*types.Pointer); ok {
					recv = p.Elem()
				}
				if rn, ok := recv.(*types.Named); ok && rn.Obj() == named.Obj() {
					covered[st.Field(sel.Index()[0])] = true
				}
			}
			return true
		})
	}
	return covered
}

// recvNamed resolves a method declaration's receiver to its named type.
func recvNamed(pass *lintkit.Pass, fd *ast.FuncDecl) *types.Named {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isBytesErrorSig reports whether fd is exactly func() ([]byte, error) — the
// shape of Engine.Snapshot; Snapshot methods with parameters (e.g. the
// metrics collector's Snapshot(now int64) report helper) are not codecs.
func isBytesErrorSig(pass *lintkit.Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 0 || sig.Results().Len() != 2 {
		return false
	}
	bs, ok := sig.Results().At(0).Type().(*types.Slice)
	if !ok {
		return false
	}
	if b, ok := bs.Elem().(*types.Basic); !ok || b.Kind() != types.Byte && b.Kind() != types.Uint8 {
		return false
	}
	named, ok := sig.Results().At(1).Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// resultNamed returns the named type a package-level decode function
// produces: the first result of type T or *T declared in this package.
func resultNamed(pass *lintkit.Pass, fd *ast.FuncDecl) *types.Named {
	if fd.Type.Results == nil {
		return nil
	}
	for _, res := range fd.Type.Results.List {
		t := pass.TypesInfo.TypeOf(res.Type)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			if _, isStruct := named.Underlying().(*types.Struct); isStruct {
				return named
			}
		}
	}
	return nil
}
