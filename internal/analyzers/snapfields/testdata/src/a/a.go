// Package a is the snapfields fixture: every stored field of a snapshotted
// type must appear in both codec paths or carry a waiver.
package a

import (
	"bytes"
	"encoding/binary"
	"errors"
)

// Good covers every field on both sides.
type Good struct {
	ID    int64
	Score int64
}

// EncodeSnapshot writes both fields.
func (g *Good) EncodeSnapshot(buf *bytes.Buffer) {
	binary.Write(buf, binary.LittleEndian, g.ID)
	binary.Write(buf, binary.LittleEndian, g.Score)
}

// DecodeSnapshotGood reads both fields back.
func DecodeSnapshotGood(buf *bytes.Buffer) (*Good, error) {
	g := &Good{}
	if err := binary.Read(buf, binary.LittleEndian, &g.ID); err != nil {
		return nil, err
	}
	if err := binary.Read(buf, binary.LittleEndian, &g.Score); err != nil {
		return nil, err
	}
	return g, nil
}

// Bad forgets a field on the decode side, so it restores to zero.
type Bad struct {
	ID    int64
	Score int64 // want "field Bad.Score is not referenced in the decode path"
}

// EncodeSnapshot writes both fields.
func (b *Bad) EncodeSnapshot(buf *bytes.Buffer) {
	binary.Write(buf, binary.LittleEndian, b.ID)
	binary.Write(buf, binary.LittleEndian, b.Score)
}

// DecodeSnapshotBad forgets Score entirely.
func DecodeSnapshotBad(buf *bytes.Buffer) (*Bad, error) {
	b := &Bad{}
	if err := binary.Read(buf, binary.LittleEndian, &b.ID); err != nil {
		return nil, err
	}
	return b, nil
}

// Orphan can be encoded but never restored.
type Orphan struct {
	ID int64
}

// EncodeSnapshot has no decode counterpart.
func (o *Orphan) EncodeSnapshot(buf *bytes.Buffer) { // want "type Orphan has EncodeSnapshot but no matching decode"
	binary.Write(buf, binary.LittleEndian, o.ID)
}

// Waived documents a derived field the codec deliberately skips.
type Waived struct {
	Values []int64
	//schedlint:snapfield sum cache; recomputed from Values at decode
	sum int64
}

// Snapshot encodes only Values (form C: Snapshot/LoadSnapshot pair).
func (w *Waived) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, int64(len(w.Values)))
	for _, v := range w.Values {
		binary.Write(&buf, binary.LittleEndian, v)
	}
	return buf.Bytes(), nil
}

// LoadSnapshot restores Values and recomputes the cache.
func (w *Waived) LoadSnapshot(b []byte) error {
	buf := bytes.NewBuffer(b)
	var n int64
	if err := binary.Read(buf, binary.LittleEndian, &n); err != nil {
		return err
	}
	w.Values = make([]int64, n)
	w.sum = 0
	for i := range w.Values {
		if err := binary.Read(buf, binary.LittleEndian, &w.Values[i]); err != nil {
			return err
		}
		w.sum += w.Values[i]
	}
	return nil
}

// NotACodec has a Snapshot method with parameters, which is a report helper,
// not a codec; no pairing is demanded and no fields are checked.
type NotACodec struct {
	hidden int
}

// Snapshot with a parameter is not the codec shape.
func (n *NotACodec) Snapshot(now int64) ([]byte, error) {
	if now < 0 {
		return nil, errors.New("bad clock")
	}
	return nil, nil
}
