package analyzers

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestRepoClean builds cmd/schedlint and runs it over the whole repository
// via go vet, asserting zero diagnostics: every invariant violation is either
// fixed or carries a justified waiver. This is the dogfood gate CI runs too —
// a change that introduces a wall-clock read, an unsorted map emission, a
// global rand draw, or an uncovered snapshot field fails here first.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and vets the whole repo")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "schedlint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/schedlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building schedlint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	vet.Env = os.Environ()
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("schedlint found violations:\n%s", out)
	}
}
