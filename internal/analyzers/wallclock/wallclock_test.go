package wallclock

import (
	"testing"

	"hybridsched/internal/analyzers/lintkit"
)

func TestCritical(t *testing.T) {
	for path, want := range map[string]bool{
		"hybridsched/internal/sim":      true,
		"hybridsched/internal/policy":   true,
		"hybridsched/internal/eventq":   true,
		"hybridsched/internal/core":     true,
		"hybridsched/internal/metrics":  true,
		"hybridsched/internal/sim_test": true, // test variant of a critical package
		"hybridsched/internal/server":   false,
		"hybridsched/internal/runner":   false,
		"hybridsched/cmd/hybridsched":   false,
	} {
		if got := Critical(path); got != want {
			t.Errorf("Critical(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestCriticalFixture(t *testing.T) {
	lintkit.RunFixture(t, Analyzer, "testdata/src/internal/sim")
}

func TestOptInFixture(t *testing.T) {
	lintkit.RunFixture(t, Analyzer, "testdata/src/optin")
}

func TestNonCriticalFixture(t *testing.T) {
	lintkit.RunFixture(t, Analyzer, "testdata/src/free")
}
