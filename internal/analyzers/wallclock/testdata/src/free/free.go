// Package free is outside the critical set and has no opt-in directive;
// wall-clock use here is legitimate (host-facing code).
package free

import "time"

// Uptime may read the wall clock freely.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}
