// Package optin is outside the critical path set but opts in to the
// wallclock check with the package-level directive below.
//
//schedlint:deterministic
package optin

import "time"

// Stamp reads the wall clock in an opted-in package.
func Stamp() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}
