// Package sim is a wallclock fixture whose import path ends in internal/sim,
// placing it in the determinism-critical set.
package sim

import "time"

// Stopwatch mirrors the injectable simtime.Stopwatch shape.
type Stopwatch interface {
	Start() func() time.Duration
}

// Clock is simulation state driven by virtual time.
type Clock struct {
	now int64
	sw  Stopwatch
}

// Bad reads and blocks on the wall clock.
func (c *Clock) Bad() time.Duration {
	t0 := time.Now()            // want "time.Now reads the wall clock"
	time.Sleep(time.Nanosecond) // want "time.Sleep blocks on wall time"
	return time.Since(t0)       // want "time.Since reads the wall clock"
}

// Good routes latency telemetry through the injected stopwatch.
func (c *Clock) Good() time.Duration {
	stop := c.sw.Start()
	c.now++
	return stop()
}

// Waived documents a deliberate wall-clock read.
func (c *Clock) Waived() time.Time {
	//schedlint:wallclock log timestamping only; never feeds simulation state
	return time.Now()
}

// Unjustified shows that a bare waiver does not suppress, it reports.
func (c *Clock) Unjustified() time.Time {
	//schedlint:wallclock
	return time.Now() // want "waiver //schedlint:wallclock has no justification"
}

// Fine uses time only for arithmetic, which never touches the clock.
func (c *Clock) Fine(d time.Duration) time.Duration {
	return d.Round(time.Second)
}
