// Package wallclock forbids reading the wall clock inside determinism-
// critical packages. The simulator's clock is virtual (int64 seconds owned by
// the engine); a time.Now or time.Sleep in a scheduling decision couples the
// run to the host machine, which is exactly the bug class the byte-identical
// golden suites exist to catch — after it has already shipped. Wall-clock
// telemetry (decision latency) must flow through an injected
// simtime.Stopwatch instead, so the single time.Now call site lives outside
// the critical set.
package wallclock

import (
	"go/ast"
	"go/types"
	"strings"

	"hybridsched/internal/analyzers/lintkit"
)

// CriticalSuffixes lists the import-path suffixes of the packages whose code
// must never consult the wall clock. Packages outside this set can opt in
// with a file-level //schedlint:deterministic directive.
var CriticalSuffixes = []string{
	"internal/sim",
	"internal/policy",
	"internal/eventq",
	"internal/core",
	"internal/metrics",
}

// banned maps the time package's wall-clock entry points to a short
// explanation used in the diagnostic.
var banned = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "blocks on wall time",
	"Tick":      "schedules on wall time",
	"After":     "schedules on wall time",
	"AfterFunc": "schedules on wall time",
	"NewTimer":  "schedules on wall time",
	"NewTicker": "schedules on wall time",
}

// Analyzer flags wall-clock access in determinism-critical packages.
var Analyzer = &lintkit.Analyzer{
	Name:   "wallclock",
	Waiver: "wallclock",
	Doc: "forbid time.Now/time.Since/time.Sleep in determinism-critical packages\n\n" +
		"The engine's clock is virtual; wall-clock reads in internal/sim, policy,\n" +
		"eventq, core or metrics make scheduling decisions host-dependent. Route\n" +
		"latency telemetry through an injectable simtime.Stopwatch instead.",
	Run: run,
}

// Critical reports whether the unit at pkgPath is in the determinism-critical
// set (exported so the cleanliness test can pin the package list).
func Critical(pkgPath string) bool {
	path := strings.TrimSuffix(pkgPath, "_test")
	for _, s := range CriticalSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

func run(pass *lintkit.Pass) error {
	if !Critical(pass.PkgPath) && !pass.HasPackageDirective("deterministic") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			why, ok := banned[fn.Name()]
			if !ok {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s %s, which is forbidden in determinism-critical package %s; inject a simtime.Stopwatch for telemetry or waive with //schedlint:wallclock <reason>",
				fn.Name(), why, pass.PkgPath)
			return true
		})
	}
	return nil
}
