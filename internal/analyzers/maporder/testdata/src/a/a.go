// Package a is the maporder fixture: order-sensitive map-range bodies are
// flagged, the collect-then-sort idiom and order-free bodies are not.
package a

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// Leak returns map keys in randomized order.
func Leak(m map[string]int) []string {
	var out []string
	for k := range m { // want "appends to out, which outlives the loop unsorted"
		out = append(out, k)
	}
	return out
}

// SortedKeys is the approved idiom: collect, then sort.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortInts stands in for the repo's local sorting helpers.
func sortInts(xs []int) { sort.Ints(xs) }

// LocalHelperSort is the same idiom through a local helper.
func LocalHelperSort(m map[int]bool) []int {
	var ids []int
	for id := range m {
		ids = append(ids, id)
	}
	sortInts(ids)
	return ids
}

// FloatAccum folds values in randomized order, so rounding differs per run.
func FloatAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "accumulates floating point into total"
		total += v
	}
	return total
}

// IntAccum is exact and commutative; order cannot matter.
func IntAccum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Send emits map entries into a channel in randomized order.
func Send(m map[string]int, ch chan<- int) {
	for _, v := range m { // want "sends on a channel"
		ch <- v
	}
}

// Emit prints entries in randomized order.
func Emit(m map[string]int) {
	for k, v := range m { // want "emits output via fmt.Printf"
		fmt.Printf("%s=%d\n", k, v)
	}
}

// OuterWriter streams into a builder that outlives the loop.
func OuterWriter(m map[string]int, b *strings.Builder) {
	for k := range m { // want "writes through strings.Builder.WriteString"
		b.WriteString(k)
	}
}

// LocalScratch builds a per-iteration buffer; nothing escapes unordered.
func LocalScratch(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		var buf bytes.Buffer
		buf.WriteString(v)
		out[k] = buf.String()
	}
	return out
}

// Keyed writes into another map are order-free.
func Keyed(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// Waived documents a loop whose order provably does not matter.
func Waived(m map[string]int) []int {
	var out []int
	//schedlint:orderfree consumed as a multiset; the caller sorts before use
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
