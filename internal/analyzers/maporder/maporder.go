// Package maporder flags `range` loops over maps whose bodies have
// order-sensitive effects. Go randomizes map iteration order per run; when a
// loop body appends to a slice, accumulates floating point, emits events, or
// writes to a report/CSV/JSON/snapshot path, that randomness leaks straight
// into output that the golden suites and the snapshot format require to be
// byte-identical. The approved idiom is to collect the keys, sort them, and
// iterate the sorted slice — the analyzer recognizes exactly that shape (an
// append that is subsequently sorted in the same function) and stays quiet.
//
// Order-insensitive bodies — counting, integer accumulation (exact,
// commutative), membership tests, keyed writes into another map, deletes —
// are never flagged. Everything else can be waived on the loop's line with
// //schedlint:orderfree <why the order provably does not matter>.
package maporder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hybridsched/internal/analyzers/lintkit"
)

// Analyzer flags order-sensitive effects inside range-over-map loops.
var Analyzer = &lintkit.Analyzer{
	Name:   "maporder",
	Waiver: "orderfree",
	Doc: "flag range-over-map loops with order-sensitive effects\n\n" +
		"Slice appends (unless the slice is sorted afterwards in the same\n" +
		"function), floating-point accumulation, channel sends and emission\n" +
		"calls (fmt printers, Write*/Emit*/Encode*/Print* methods, snapshot\n" +
		"encoders) depend on map iteration order, which Go randomizes.",
	Run: run,
}

// sinkWriterTypes are receiver types any method call on which counts as an
// ordered emission: once bytes or fields leave through one of these, their
// order is observable.
var sinkWriterTypes = map[string]bool{
	"strings.Builder":                   true,
	"bytes.Buffer":                      true,
	"bufio.Writer":                      true,
	"encoding/csv.Writer":               true,
	"encoding/json.Encoder":             true,
	"hybridsched/internal/snapshot.Enc": true,
}

// sinkMethodPrefixes catch emission-shaped methods on any other receiver.
var sinkMethodPrefixes = []string{"Emit", "emit", "Write", "write", "Print", "print", "Fprint", "Encode", "encode"}

// sinkFmtFuncs are the fmt package's output functions (the pure formatters
// Sprintf/Errorf are fine on their own).
var sinkFmtFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkFunc examines one function body: map-range loops directly inside it
// (not inside nested function literals, which are visited on their own) are
// checked for sinks, with the whole body available to recognize the
// collect-then-sort idiom.
func checkFunc(pass *lintkit.Pass, body *ast.BlockStmt) {
	inspectShallow(body, func(n ast.Node) {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		checkLoop(pass, body, rs)
	})
}

// inspectShallow walks n's subtree but does not descend into function
// literals.
func inspectShallow(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

func checkLoop(pass *lintkit.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	var sinks []string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if desc := checkAssign(pass, fnBody, rs, s); desc != "" {
				sinks = append(sinks, desc)
			}
		case *ast.SendStmt:
			sinks = append(sinks, "sends on a channel")
		case *ast.CallExpr:
			if desc := checkCall(pass, rs, s); desc != "" {
				sinks = append(sinks, desc)
			}
		}
		return true
	})
	for _, desc := range sinks {
		pass.Reportf(rs.For,
			"range over map %s %s, which depends on randomized iteration order; iterate sorted keys or waive with //schedlint:orderfree <reason>",
			exprString(rs.X), desc)
	}
}

// checkAssign flags appends to slices that outlive the loop (unless sorted
// later in the function) and floating-point compound accumulation.
func checkAssign(pass *lintkit.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, s *ast.AssignStmt) string {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := s.Lhs[0]
		if t := pass.TypesInfo.TypeOf(lhs); t != nil && isFloat(t) && !declaredWithin(pass, lhs, rs) {
			return fmt.Sprintf("accumulates floating point into %s (rounding is order-dependent)", exprString(lhs))
		}
		return ""
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range s.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || len(call.Args) == 0 || i >= len(s.Lhs) {
				continue
			}
			target := s.Lhs[i]
			if declaredWithin(pass, target, rs) {
				continue // loop-local scratch; its order dies with the iteration
			}
			if sortedLater(pass, fnBody, rs, target) {
				continue // collect-keys-then-sort idiom
			}
			return fmt.Sprintf("appends to %s, which outlives the loop unsorted", exprString(target))
		}
	}
	return ""
}

// readOnlyMethods are accessor names that never emit even on a writer type.
var readOnlyMethods = map[string]bool{
	"String": true, "Bytes": true, "Len": true, "Cap": true,
	"Size": true, "Buffered": true, "Available": true, "AvailableBuffer": true,
}

// checkCall flags calls that emit bytes, fields or events. Emission into a
// receiver declared inside the loop is exempt: a per-iteration scratch
// buffer's ordering dies with the iteration (heuristic — a loop-local alias
// of a shared writer would slip through, which waivers exist to document).
func checkCall(pass *lintkit.Pass, rs *ast.RangeStmt, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if sig.Recv() == nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && sinkFmtFuncs[fn.Name()] {
			if len(call.Args) > 0 && strings.HasPrefix(fn.Name(), "Fprint") && declaredWithin(pass, unaddr(call.Args[0]), rs) {
				return ""
			}
			return fmt.Sprintf("emits output via fmt.%s", fn.Name())
		}
		return ""
	}
	if readOnlyMethods[fn.Name()] || declaredWithin(pass, unaddr(sel.X), rs) {
		return ""
	}
	if name := recvTypeName(sig.Recv().Type()); name != "" && sinkWriterTypes[name] {
		return fmt.Sprintf("writes through %s.%s", name, fn.Name())
	}
	for _, prefix := range sinkMethodPrefixes {
		if strings.HasPrefix(fn.Name(), prefix) {
			return fmt.Sprintf("calls emission-shaped method %s", fn.Name())
		}
	}
	return ""
}

// unaddr strips a leading & so declaredWithin sees the underlying ident.
func unaddr(e ast.Expr) ast.Expr {
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		return u.X
	}
	return e
}

// sortedLater reports whether target (an identifier) is passed to a
// sort-shaped call after the loop ends, the second half of the
// collect-then-sort idiom.
func sortedLater(pass *lintkit.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, target ast.Expr) bool {
	id, ok := target.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	found := false
	inspectShallow(fnBody, func(n ast.Node) {
		if found {
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || !isSortCall(pass, call) {
			return
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if aid, ok := an.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(aid) == obj {
					found = true
					return false
				}
				return !found
			})
		}
	})
	return found
}

// isSortCall recognizes sort-shaped callees: the sort package (whose sorting
// entry points — Ints, Slice, Sort, Stable... — mostly do not contain "sort"
// in their own name), the slices package, plus any helper whose name contains
// "sort" (e.g. the engine's sortInts).
func isSortCall(pass *lintkit.Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sort":
				// Everything in sort sorts, except the predicates and
				// binary searches over already-sorted data.
				return !strings.HasPrefix(fn.Name(), "Search") && !strings.HasPrefix(fn.Name(), "IsSorted")
			case "slices":
				return strings.Contains(strings.ToLower(fn.Name()), "sort")
			}
		}
		return strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	}
	return false
}

func isBuiltinAppend(pass *lintkit.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// declaredWithin reports whether expr's root object is declared inside the
// loop (in which case its ordering cannot escape a single iteration).
// Selector and index targets are treated as escaping.
func declaredWithin(pass *lintkit.Pass, expr ast.Expr, rs *ast.RangeStmt) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// exprString renders a short source-ish form of simple expressions for
// diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	}
	return "expression"
}

// recvTypeName renders a receiver type as "pkgpath.Name" ("" for unnamed).
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
