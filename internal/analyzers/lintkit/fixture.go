package lintkit

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunFixture loads the fixture package at pkgDir (a path relative to the
// calling test's working directory, conventionally "testdata/src/<name>"),
// runs the analyzer over it, and matches the surviving diagnostics against
// `// want "regexp"` comments in the fixture, analysistest-style: every
// diagnostic must be expected by a want on its line, and every want must be
// matched by a diagnostic. Fixture packages are ordinary in-module packages —
// the `testdata` path segment merely hides them from ./... patterns — so
// they may import real repo packages (snapfields fixtures use the real
// internal/snapshot codec).
func RunFixture(t *testing.T, a *Analyzer, pkgDir string) {
	t.Helper()
	units, err := Load("", "./"+filepath.ToSlash(pkgDir))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgDir, err)
	}
	if len(units) != 1 {
		t.Fatalf("fixture %s: loaded %d packages, want 1", pkgDir, len(units))
	}
	u := units[0]
	diags, err := RunAnalyzers([]*Analyzer{a}, u.Fset, u.Files, u.Pkg, u.Info, u.PkgPath)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgDir, err)
	}

	wants := parseWants(t, u)
	got := make(map[string][]string) // "file:line" -> messages
	for _, d := range diags {
		if d.Pos == token.NoPos {
			t.Errorf("%s: unpositioned diagnostic: %s", pkgDir, d.Message)
			continue
		}
		posn := u.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(posn.Filename), posn.Line)
		got[key] = append(got[key], d.Message)
	}

	for key, res := range wants {
		for _, re := range res {
			found := false
			for _, msg := range got[key] {
				if re.MatchString(msg) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: no diagnostic at %s matching %q (got %v)", pkgDir, key, re, got[key])
			}
		}
	}
	for key, msgs := range got {
		for _, msg := range msgs {
			expected := false
			for _, re := range wants[key] {
				if re.MatchString(msg) {
					expected = true
					break
				}
			}
			if !expected {
				t.Errorf("%s: unexpected diagnostic at %s: %s", pkgDir, key, msg)
			}
		}
	}
}

// parseWants extracts `// want "re" ["re" ...]` expectations, keyed by
// "basename:line" of the comment.
func parseWants(t *testing.T, u *Unit) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				posn := u.Fset.Position(c.Slash)
				key := fmt.Sprintf("%s:%d", filepath.Base(posn.Filename), posn.Line)
				rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want comment %q: %v", key, c.Text, err)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: malformed want pattern %q: %v", key, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], re)
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return wants
}
