// Package lintkit is the minimal static-analysis framework under
// cmd/schedlint. It deliberately mirrors the golang.org/x/tools/go/analysis
// surface — Analyzer, Pass, positional diagnostics, a unitchecker-compatible
// driver — but is implemented entirely on the standard library's go/ast,
// go/types and go/importer, because this repository must build hermetically
// with no module downloads. If the x/tools dependency ever becomes available,
// migrating the analyzers is a mechanical import swap.
//
// On top of the x/tools shape, lintkit bakes in the repo's waiver policy:
// a diagnostic is suppressed by a `//schedlint:<token> <justification>`
// comment on (or immediately above) the flagged line, where <token> is the
// analyzer's Waiver. A waiver with no justification does not suppress — it
// turns into its own diagnostic, so every escape hatch in the tree carries a
// reason a reviewer can audit.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in output and in `go vet` JSON trees.
	Name string
	// Doc is the one-paragraph description printed by -help style output.
	Doc string
	// Waiver is the schedlint directive token that suppresses one finding,
	// e.g. "orderfree" for `//schedlint:orderfree <reason>`.
	Waiver string
	// Run performs the analysis on one package and reports findings through
	// pass.Reportf.
	Run func(*Pass) error
}

// A Pass provides one analyzer with the type-checked syntax of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's parsed files (tests included when driven by
	// `go vet`, which merges in-package _test.go files into the unit).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo carries Types, Defs, Uses, Selections, Implicits and Scopes.
	TypesInfo *types.Info
	// PkgPath is the canonical import path of the unit under analysis.
	PkgPath string

	dirs  *directiveIndex
	diags []Diagnostic
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf records one finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// HasPackageDirective reports whether any file of the package carries a
// file-level `//schedlint:<name>` directive (used by wallclock's
// `//schedlint:deterministic` package opt-in).
func (p *Pass) HasPackageDirective(name string) bool {
	for _, d := range p.directives().all {
		if d.name == name {
			return true
		}
	}
	return false
}

// directive is one parsed `//schedlint:<name> <reason>` comment.
type directive struct {
	name   string
	reason string
	file   string
	line   int
}

type directiveIndex struct {
	all    []directive
	byLine map[string][]int // "file:line" -> indexes into all
}

// DirectivePrefix is the comment marker every waiver starts with.
const DirectivePrefix = "schedlint:"

func (p *Pass) directives() *directiveIndex {
	if p.dirs != nil {
		return p.dirs
	}
	idx := &directiveIndex{byLine: make(map[string][]int)}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Like //go:build, a directive allows no space between the
				// comment marker and the token: `// schedlint: ...` is prose.
				if !strings.HasPrefix(c.Text, "//"+DirectivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, "//"+DirectivePrefix)
				name, reason, _ := strings.Cut(rest, " ")
				posn := p.Fset.Position(c.Slash)
				idx.all = append(idx.all, directive{
					name:   name,
					reason: strings.TrimSpace(reason),
					file:   posn.Filename,
					line:   posn.Line,
				})
				key := lineKey(posn.Filename, posn.Line)
				idx.byLine[key] = append(idx.byLine[key], len(idx.all)-1)
			}
		}
	}
	p.dirs = idx
	return idx
}

func lineKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

// KnownDirectives lists every directive token the given analyzers (plus the
// framework's package-level tokens) understand; the driver flags any other
// schedlint: comment as a typo so a misspelled waiver can never silently
// fail to suppress.
func KnownDirectives(analyzers []*Analyzer) map[string]bool {
	known := map[string]bool{"deterministic": true}
	for _, a := range analyzers {
		if a.Waiver != "" {
			known[a.Waiver] = true
		}
	}
	return known
}

// finalize applies the waiver policy to the pass's raw findings: a matching
// directive with a justification drops the finding; a matching directive with
// an empty justification converts it into a policy violation of its own.
func (p *Pass) finalize() []Diagnostic {
	waiver := p.Analyzer.Waiver
	idx := p.directives()
	var out []Diagnostic
	for _, d := range p.diags {
		posn := p.Fset.Position(d.Pos)
		matched := false
		for _, line := range []int{posn.Line, posn.Line - 1} {
			for _, di := range idx.byLine[lineKey(posn.Filename, line)] {
				dir := idx.all[di]
				if dir.name != waiver {
					continue
				}
				matched = true
				if dir.reason == "" {
					d.Message = fmt.Sprintf(
						"waiver //schedlint:%s has no justification (finding: %s)",
						waiver, d.Message)
					out = append(out, d)
				}
				break
			}
			if matched {
				break
			}
		}
		if !matched {
			out = append(out, d)
		}
	}
	return out
}

// RunAnalyzers executes every analyzer over one type-checked unit and returns
// the surviving (post-waiver) diagnostics in positional order. It also
// reports unknown schedlint: directive tokens, so typos cannot masquerade as
// waivers.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, pkgPath string) ([]Diagnostic, error) {
	var all []Diagnostic
	known := KnownDirectives(analyzers)
	for i, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			PkgPath:   pkgPath,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		all = append(all, pass.finalize()...)
		if i == 0 {
			// Directive hygiene is checked once per unit, not per analyzer.
			for _, dir := range pass.directives().all {
				if !known[dir.name] {
					all = append(all, Diagnostic{
						Pos:      token.NoPos,
						Analyzer: "schedlint",
						Message: fmt.Sprintf("%s:%d: unknown directive //schedlint:%s (known: %s)",
							dir.file, dir.line, dir.name, strings.Join(sortedKeys(known), ", ")),
					})
				}
			}
		}
	}
	sort.Slice(all, func(i, k int) bool {
		pi, pk := fset.Position(all[i].Pos), fset.Position(all[k].Pos)
		if pi.Filename != pk.Filename {
			return pi.Filename < pk.Filename
		}
		if pi.Line != pk.Line {
			return pi.Line < pk.Line
		}
		if pi.Column != pk.Column {
			return pi.Column < pk.Column
		}
		return all[i].Message < all[k].Message
	})
	return all, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NewTypesInfo returns a fully populated types.Info for one unit.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
