package lintkit

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Main is the multichecker entry point behind cmd/schedlint. It speaks both
// halves of the tool's contract:
//
//   - As `go vet -vettool=schedlint`, the go command first performs its
//     handshakes (`-flags` to learn the tool's flag set, `-V=full` for the
//     cache key) and then invokes the tool once per compilation unit with a
//     vet.cfg path; RunUnit handles those.
//   - Standalone (`schedlint ./...`), the tool re-executes itself through
//     `go vet -vettool=<self>`, so package loading, test-file variants and
//     result caching are exactly the go command's — standalone runs and CI
//     runs can never disagree about what was analyzed.
func Main(analyzers []*Analyzer) {
	args := os.Args[1:]
	for _, a := range args {
		switch strings.TrimPrefix(a, "-") {
		case "-V=full", "V=full":
			printVersion()
			return
		case "-flags", "flags":
			// schedlint exposes no tunable analyzer flags; the go command
			// still requires the handshake to parse its command line.
			fmt.Println("[]")
			return
		case "-help", "help", "h", "-h":
			usage(analyzers)
			return
		}
	}

	jsonOut := false
	var rest []string
	for _, a := range args {
		switch {
		case a == "-json" || a == "--json":
			jsonOut = true
		case strings.HasPrefix(a, "-c=") || strings.HasPrefix(a, "--c="):
			// Context lines for legacy vet output; accepted and ignored.
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(os.Stderr, "schedlint: unknown flag %s\n", a)
			usage(analyzers)
			os.Exit(1)
		default:
			rest = append(rest, a)
		}
	}

	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		os.Exit(RunUnit(rest[0], analyzers, jsonOut))
	}

	// Standalone mode: delegate loading to the go command.
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		os.Exit(1)
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	vetArgs := []string{"vet", "-vettool=" + exe}
	if jsonOut {
		vetArgs = append(vetArgs, "-json")
	}
	cmd := exec.Command("go", append(vetArgs, rest...)...)
	cmd.Stdin = os.Stdin
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		os.Exit(1)
	}
}

// printVersion answers the go command's `-V=full` cache-key handshake. The
// build ID must change whenever the tool's behavior could, so it is a hash of
// the executable itself (the same scheme x/tools' unitchecker uses).
func printVersion() {
	name := filepath.Base(os.Args[0])
	f, err := os.Open(os.Args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%x\n", name, h.Sum(nil))
}

func usage(analyzers []*Analyzer) {
	fmt.Fprintf(os.Stderr, "schedlint enforces hybridsched's determinism and snapshot invariants.\n\n")
	fmt.Fprintf(os.Stderr, "usage:\n")
	fmt.Fprintf(os.Stderr, "  schedlint [packages]             analyze packages (default ./...)\n")
	fmt.Fprintf(os.Stderr, "  go vet -vettool=schedlint pkgs   run under the go command\n\n")
	fmt.Fprintf(os.Stderr, "analyzers:\n")
	for _, a := range analyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, doc)
		fmt.Fprintf(os.Stderr, "  %-11s waiver: //schedlint:%s <reason>\n", "", a.Waiver)
	}
}
