package lintkit

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// vetConfig is the JSON configuration `go vet -vettool` hands the tool for
// one compilation unit (the same schema x/tools' unitchecker reads; see
// cmd/go/internal/work's vet action).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// jsonDiagnostic is the element shape of `go vet -json` output trees.
type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// RunUnit analyzes the single vet unit described by cfgFile and returns the
// process exit code: 0 for clean (or facts-only) units, 2 when findings were
// printed, 1 on operational errors. Diagnostics go to stderr in the plain
// `file:line:col: message` form (or to stdout as a JSON tree when jsonOut is
// set, matching `go vet -json`).
func RunUnit(cfgFile string, analyzers []*Analyzer, jsonOut bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The go command caches the facts file per unit; schedlint's analyzers
	// are facts-free, so every unit gets the same empty marker — written
	// first so even dependency-only invocations satisfy the cache.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("schedlint: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency units are loaded only for facts; nothing to do.
		return 0
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	gc := newExportImporter(fset, cfg.PackageFile)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return gc.Import(path)
	})
	info := NewTypesInfo()
	conf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "schedlint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := RunAnalyzers(analyzers, fset, files, pkg, info, cfg.ImportPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	if jsonOut {
		return printJSONTree(os.Stdout, cfg.ID, fset, diags)
	}
	for _, d := range diags {
		if d.Pos == token.NoPos {
			fmt.Fprintf(os.Stderr, "%s [%s]\n", d.Message, d.Analyzer)
			continue
		}
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return 2
}

// printJSONTree emits the `go vet -json` shape:
// {"<unit ID>": {"<analyzer>": [{posn, message}, ...]}}.
func printJSONTree(w io.Writer, id string, fset *token.FileSet, diags []Diagnostic) int {
	byAnalyzer := make(map[string][]jsonDiagnostic)
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiagnostic{
			Posn:    fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	tree := map[string]map[string][]jsonDiagnostic{id: byAnalyzer}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	if err := enc.Encode(tree); err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 1
	}
	return 0
}
