package lintkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Unit is one loaded, type-checked package ready for analysis.
type Unit struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// Load lists the given package patterns with the go tool (compiling export
// data for every dependency) and type-checks each matched package from
// source. dir is the working directory for the go invocation ("" = cwd).
//
// This is the in-process loader behind the analysistest-style fixture runner;
// whole-repo sweeps go through `go vet -vettool` instead, which feeds the
// same analyzers one pre-planned unit at a time.
func Load(dir string, patterns ...string) ([]*Unit, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=Dir,ImportPath,Name,Export,GoFiles,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %w", patterns, err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	units := make([]*Unit, 0, len(targets))
	for _, t := range targets {
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := NewTypesInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typechecking %s: %w", t.ImportPath, err)
		}
		units = append(units, &Unit{
			PkgPath: t.ImportPath,
			Fset:    fset,
			Files:   files,
			Pkg:     pkg,
			Info:    info,
		})
	}
	return units, nil
}

// newExportImporter resolves imports through compiler export data files, the
// way a vet unit does: resolve determines the canonical path (identity here;
// the vet driver layers the cfg's ImportMap on top) and exports maps
// canonical paths to export files.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.Import(path)
	})
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
