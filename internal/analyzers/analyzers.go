// Package analyzers registers the schedlint suite: the static checks that
// enforce hybridsched's determinism and snapshot-completeness invariants at
// vet time rather than at golden-diff time. See cmd/schedlint and the
// "Static invariant enforcement" section of DESIGN.md.
package analyzers

import (
	"hybridsched/internal/analyzers/lintkit"
	"hybridsched/internal/analyzers/maporder"
	"hybridsched/internal/analyzers/seededrand"
	"hybridsched/internal/analyzers/snapfields"
	"hybridsched/internal/analyzers/wallclock"
)

// All returns the full schedlint analyzer suite in stable order.
func All() []*lintkit.Analyzer {
	return []*lintkit.Analyzer{
		maporder.Analyzer,
		seededrand.Analyzer,
		snapfields.Analyzer,
		wallclock.Analyzer,
	}
}
