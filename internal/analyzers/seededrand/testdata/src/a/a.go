// Package a is the seededrand fixture: global draws and time-seeded sources
// are flagged, coordinate-seeded sources pass.
package a

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

// Global draws from the shared source.
func Global() int {
	return rand.Intn(10) // want "math/rand.Intn draws from the shared global source"
}

// GlobalShuffle is another global entry point.
func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "math/rand.Shuffle draws from the shared global source"
}

// Seeded is the approved idiom: an explicit source, coordinate-derived seed.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10) // methods on an explicit *Rand are fine
}

// TimeSeeded smuggles the wall clock into the seed.
func TimeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "time.Now seeds math/rand.NewSource with ambient entropy" "time.Now seeds math/rand.New with ambient entropy"
}

// Crypto reads the OS entropy pool.
func Crypto(buf []byte) {
	crand.Read(buf) // want "crypto/rand.Read is ambient entropy"
}

// Waived documents a deliberate global draw.
func Waived() int {
	//schedlint:entropy jitter for a backoff outside any simulation path
	return rand.Intn(10)
}
