// Package seededrand forbids global and wall-clock-derived randomness.
// Every random draw in this repository must flow from an explicitly seeded
// source whose seed derives from run coordinates (experiment, seed index,
// shard) — the rule that makes sweeps reproducible cell by cell and lets the
// fault injector's stream position survive a checkpoint. The package-level
// math/rand functions draw from a shared, racily-advanced global source, and
// time-seeded sources differ on every run; both are silent determinism
// leaks.
package seededrand

import (
	"go/ast"
	"go/types"

	"hybridsched/internal/analyzers/lintkit"
)

// allowedConstructors are the math/rand entry points that take an explicit
// seed or source and are therefore fine: rand.New(rand.NewSource(seed)) is
// the approved idiom.
var allowedConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes a *Rand
	"NewPCG":     true, // math/rand/v2, explicit seed words
	"NewChaCha8": true, // math/rand/v2, explicit seed
}

// entropySources are call targets that smuggle ambient entropy into a seed
// expression: pkg path -> function names.
var entropySources = map[string]map[string]bool{
	"time": {"Now": true},
	"os":   {"Getpid": true, "Getppid": true},
}

// Analyzer flags unseeded or ambient-entropy randomness anywhere in the
// module (tests included: a test that draws from the global source is
// nondeterministic under -count=2 exactly like engine code).
var Analyzer = &lintkit.Analyzer{
	Name:   "seededrand",
	Waiver: "entropy",
	Doc: "forbid global math/rand functions and wall-clock-seeded sources\n\n" +
		"All randomness must flow from rand.New(rand.NewSource(seed)) with a\n" +
		"coordinate-derived seed (see internal/runner); the package-level\n" +
		"math/rand functions share racy global state, and time-seeded sources\n" +
		"change on every run.",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Package-level functions only: methods on an explicit *Rand are
			// the approved pattern, and their receiver carries the seed.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if !allowedConstructors[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"%s.%s draws from the shared global source; use rand.New(rand.NewSource(seed)) with a coordinate-derived seed, or waive with //schedlint:entropy <reason>",
						fn.Pkg().Path(), fn.Name())
				}
			case "crypto/rand":
				pass.Reportf(sel.Pos(),
					"crypto/rand.%s is ambient entropy; simulation randomness must come from a seeded deterministic source, or waive with //schedlint:entropy <reason>",
					fn.Name())
			}
			return true
		})
	}

	// Second pass: approved constructors fed from ambient entropy, the
	// classic rand.NewSource(time.Now().UnixNano()).
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			p := fn.Pkg().Path()
			if (p != "math/rand" && p != "math/rand/v2") || !allowedConstructors[fn.Name()] {
				return true
			}
			for _, arg := range call.Args {
				if src := entropyIn(pass, arg); src != "" {
					pass.Reportf(call.Pos(),
						"%s seeds %s.%s with ambient entropy; derive the seed from run coordinates instead, or waive with //schedlint:entropy <reason>",
						src, p, fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// entropyIn reports the first ambient-entropy call found in expr ("" if
// none), e.g. "time.Now".
func entropyIn(pass *lintkit.Pass, expr ast.Expr) string {
	found := ""
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if names, ok := entropySources[fn.Pkg().Path()]; ok && names[fn.Name()] {
			found = fn.Pkg().Path() + "." + fn.Name()
			return false
		}
		return true
	})
	return found
}
