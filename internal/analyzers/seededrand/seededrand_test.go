package seededrand

import (
	"testing"

	"hybridsched/internal/analyzers/lintkit"
)

func TestFixture(t *testing.T) {
	lintkit.RunFixture(t, Analyzer, "testdata/src/a")
}
