package stats

import (
	"math"
	"sort"
)

// Summary holds the descriptive statistics of a sample. The zero value is a
// valid empty summary.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P90    float64
	P99    float64
	Sum    float64
}

// Summarize computes descriptive statistics of xs. An empty input returns the
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	for _, x := range sorted {
		s.Sum += x
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range sorted {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	s.Median = Percentile(sorted, 50)
	s.P90 = Percentile(sorted, 90)
	s.P99 = Percentile(sorted, 99)
	return s
}

// Percentile returns the p-th percentile (0..100) of an already-sorted sample
// using linear interpolation between closest ranks. It panics if sorted is
// empty or p is outside [0,100].
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Percentile of empty sample")
	}
	if p < 0 || p > 100 {
		panic("stats: percentile out of range")
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Welford accumulates mean and variance in one pass without storing the
// sample. It is used by long-running simulations to track metric streams.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates x.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples added.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the running sample variance (0 if fewer than two samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the running sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// State exposes the raw accumulator (count, running mean, sum of squared
// deviations) for serialization.
func (w *Welford) State() (n int, mean, m2 float64) { return w.n, w.mean, w.m2 }

// SetState overwrites the accumulator with a previously captured state.
func (w *Welford) SetState(n int, mean, m2 float64) { w.n, w.mean, w.m2 = n, mean, m2 }
