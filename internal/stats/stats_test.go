package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Derive(1)
	c2 := parent.Derive(2)
	if c1.Float64() == c2.Float64() {
		t.Fatal("derived streams with different tags should differ")
	}
}

func TestUniformBounds(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("Uniform out of bounds: %g", v)
		}
	}
}

func TestUniformSwappedBounds(t *testing.T) {
	g := NewRNG(3)
	v := g.Uniform(20, 10)
	if v < 10 || v >= 20 {
		t.Fatalf("Uniform with swapped bounds out of range: %g", v)
	}
}

func TestUniformInt64Bounds(t *testing.T) {
	g := NewRNG(4)
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		v := g.UniformInt64(5, 8)
		if v < 5 || v > 8 {
			t.Fatalf("UniformInt64 out of bounds: %d", v)
		}
		seen[v] = true
	}
	for want := int64(5); want <= 8; want++ {
		if !seen[want] {
			t.Errorf("value %d never drawn in 1000 samples", want)
		}
	}
}

func TestUniformInt64Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for hi < lo")
		}
	}()
	NewRNG(1).UniformInt64(10, 5)
}

func TestExpFloat64Mean(t *testing.T) {
	g := NewRNG(5)
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += g.ExpFloat64(100)
	}
	mean := sum / float64(n)
	if mean < 95 || mean > 105 {
		t.Fatalf("exponential mean %g too far from 100", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	g := NewRNG(6)
	hits := 0
	n := 20000
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if p < 0.27 || p > 0.33 {
		t.Fatalf("Bool(0.3) hit rate %g", p)
	}
	if g.Bool(0) {
		t.Error("Bool(0) must be false")
	}
	if !g.Bool(1) {
		t.Error("Bool(1) must be true")
	}
}

func TestLognormalMedian(t *testing.T) {
	d := LognormalFromMedian(7200, 1.0)
	g := NewRNG(8)
	xs := make([]float64, 20001)
	for i := range xs {
		xs[i] = d.Sample(g)
	}
	s := Summarize(xs)
	if s.Median < 6500 || s.Median > 7900 {
		t.Fatalf("lognormal median %g too far from 7200", s.Median)
	}
}

func TestLognormalClamped(t *testing.T) {
	d := LognormalFromMedian(100, 2.0)
	g := NewRNG(9)
	for i := 0; i < 5000; i++ {
		v := d.SampleClamped(g, 10, 1000)
		if v < 10 || v > 1000 {
			t.Fatalf("clamped sample out of range: %g", v)
		}
	}
}

func TestLognormalPanicsOnNonPositiveMedian(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LognormalFromMedian(0, 1)
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(100, 1.2)
	g := NewRNG(10)
	counts := make([]int, 100)
	n := 50000
	for i := 0; i < n; i++ {
		counts[z.Sample(g)]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("rank 0 (%d) should dominate rank 50 (%d)", counts[0], counts[50])
	}
	// Rank 0 weight for s=1.2 over 100 ranks is roughly 0.18.
	if w := z.Weight(0); w < 0.1 || w > 0.3 {
		t.Fatalf("unexpected rank-0 weight %g", w)
	}
}

func TestZipfWeightsSumToOne(t *testing.T) {
	z := NewZipf(37, 0.9)
	sum := 0.0
	for k := 0; k < z.N(); k++ {
		sum += z.Weight(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %g", sum)
	}
}

func TestZipfSampleInRange(t *testing.T) {
	f := func(seed int64) bool {
		z := NewZipf(13, 1.1)
		g := NewRNG(seed)
		for i := 0; i < 50; i++ {
			k := z.Sample(g)
			if k < 0 || k >= 13 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiscreteProportions(t *testing.T) {
	d := NewDiscrete([]float64{1, 2, 7})
	g := NewRNG(11)
	counts := make([]int, 3)
	n := 30000
	for i := 0; i < n; i++ {
		counts[d.Sample(g)]++
	}
	p2 := float64(counts[2]) / float64(n)
	if p2 < 0.66 || p2 > 0.74 {
		t.Fatalf("category 2 rate %g, want ~0.7", p2)
	}
}

func TestDiscretePanics(t *testing.T) {
	cases := [][]float64{nil, {0, 0}, {1, -1}}
	for _, ws := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for weights %v", ws)
				}
			}()
			NewDiscrete(ws)
		}()
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 || s.Sum != 15 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std %g", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if got := Percentile(sorted, 50); got != 5 {
		t.Fatalf("P50 = %g, want 5", got)
	}
	if got := Percentile(sorted, 0); got != 0 {
		t.Fatalf("P0 = %g, want 0", got)
	}
	if got := Percentile(sorted, 100); got != 10 {
		t.Fatalf("P100 = %g, want 10", got)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		n := 1 + g.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = g.Uniform(-100, 100)
		}
		s := Summarize(xs)
		prev := s.Min
		for p := 0.0; p <= 100; p += 5 {
			sorted := make([]float64, n)
			copy(sorted, xs)
			sortFloats(sorted)
			v := Percentile(sorted, p)
			if v < prev-1e-9 || v < s.Min-1e-9 || v > s.Max+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestWelfordMatchesSummarize(t *testing.T) {
	g := NewRNG(12)
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = g.Uniform(0, 1000)
		w.Add(xs[i])
	}
	s := Summarize(xs)
	if math.Abs(w.Mean()-s.Mean) > 1e-9 {
		t.Fatalf("Welford mean %g vs %g", w.Mean(), s.Mean)
	}
	if math.Abs(w.Std()-s.Std) > 1e-9 {
		t.Fatalf("Welford std %g vs %g", w.Std(), s.Std)
	}
	if w.N() != s.N {
		t.Fatalf("Welford n %d vs %d", w.N(), s.N)
	}
}

func TestWelfordSmall(t *testing.T) {
	var w Welford
	if w.Var() != 0 || w.Std() != 0 || w.Mean() != 0 {
		t.Fatal("empty Welford should be zero")
	}
	w.Add(5)
	if w.Var() != 0 {
		t.Fatal("single-sample variance should be zero")
	}
	if w.Mean() != 5 {
		t.Fatalf("mean %g", w.Mean())
	}
}

func TestMeanHelper(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean([2 4]) != 3")
	}
}
