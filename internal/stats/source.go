package stats

import "fmt"

// This file reimplements the additive lagged-Fibonacci generator behind
// math/rand's rand.NewSource (Mitchell & Reeds; see Go's math/rand/rng.go)
// with one addition: the register state is exported through RNGState so a
// generator can be serialized mid-stream and restored exactly. The stream is
// bit-identical to rand.NewSource for every seed, which
// TestSourceMatchesMathRand pins; all existing seeded experiments therefore
// reproduce unchanged.

const (
	rngLen   = 607
	rngTap   = 273
	rngMask  = 1<<63 - 1
	int32max = 1<<31 - 1
)

// source is a drop-in replacement for math/rand's rngSource. It implements
// rand.Source64, so rand.New drives it exactly like the stdlib source.
type source struct {
	tap  int
	feed int
	vec  [rngLen]int64
}

func newSource(seed int64) *source {
	s := &source{}
	s.Seed(seed)
	return s
}

// seedrand is the Lehmer LCG x[n+1] = 48271 * x[n] mod (2^31 - 1) used only
// to expand the integer seed into the feedback register.
func seedrand(x int32) int32 {
	const (
		a = 48271
		q = 44488
		r = 3399
	)
	hi := x / q
	lo := x % q
	x = a*lo - r*hi
	if x < 0 {
		x += int32max
	}
	return x
}

// Seed initializes the register to the same deterministic state
// rand.NewSource(seed) produces.
func (s *source) Seed(seed int64) {
	s.tap = 0
	s.feed = rngLen - rngTap

	seed %= int32max
	if seed < 0 {
		seed += int32max
	}
	if seed == 0 {
		seed = 89482311
	}

	x := int32(seed)
	for i := -20; i < rngLen; i++ {
		x = seedrand(x)
		if i >= 0 {
			u := int64(x) << 40
			x = seedrand(x)
			u ^= int64(x) << 20
			x = seedrand(x)
			u ^= int64(x)
			u ^= rngCooked[i]
			s.vec[i] = u
		}
	}
}

// Int63 returns a non-negative 63-bit value.
func (s *source) Int63() int64 { return int64(s.Uint64() & rngMask) }

// Uint64 advances the register one step.
func (s *source) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += rngLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += rngLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// RNGState is a complete serialized generator position: restoring it and
// drawing k values yields exactly the draws the original generator would have
// produced next. The zero value is not a valid state; obtain one from
// RNG.State.
type RNGState struct {
	Tap  int32
	Feed int32
	Vec  [rngLen]int64
}

// State captures the generator's current position.
func (g *RNG) State() RNGState {
	return RNGState{Tap: int32(g.src.tap), Feed: int32(g.src.feed), Vec: g.src.vec}
}

// SetState rewinds (or fast-forwards) the generator to a previously captured
// position. It fails if the indices are out of range; the register values
// themselves are unconstrained.
func (g *RNG) SetState(st RNGState) error {
	if st.Tap < 0 || st.Tap >= rngLen || st.Feed < 0 || st.Feed >= rngLen {
		return fmt.Errorf("stats: RNG state indices out of range (tap=%d feed=%d)", st.Tap, st.Feed)
	}
	g.src.tap = int(st.Tap)
	g.src.feed = int(st.Feed)
	g.src.vec = st.Vec
	return nil
}
