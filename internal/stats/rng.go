// Package stats provides the seeded random-number utilities, probability
// distributions, and summary statistics used throughout the simulator.
//
// Every distribution draws from an explicit *RNG so that whole experiments
// are reproducible from a single integer seed. The distributions implemented
// here are the ones the workload generator needs to reproduce the published
// marginals of the Theta trace: lognormal job runtimes, Zipf-distributed
// project activity, and bounded uniform/choice helpers.
package stats

import "math/rand"

// RNG is a deterministic random source. It wraps math/rand.Rand so that the
// rest of the code base never touches the global (non-reproducible) source.
// The underlying source is this package's serializable reimplementation of
// the stdlib generator (see source.go): streams are bit-identical to
// rand.NewSource, but the position can be captured with State and restored
// with SetState for engine snapshots.
type RNG struct {
	r   *rand.Rand
	src *source
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed int64) *RNG {
	src := newSource(seed)
	return &RNG{r: rand.New(src), src: src}
}

// Derive returns a new independent generator whose seed combines the parent's
// next value with tag. It is used to give each workload sub-stream (sizes,
// runtimes, arrivals, ...) its own stream so that adding draws to one stream
// does not perturb the others.
func (g *RNG) Derive(tag int64) *RNG {
	const mix = int64(-0x61c8864680b583eb) // 0x9e3779b97f4a7c15 as int64
	return NewRNG(g.r.Int63() ^ (tag * mix))
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0,n). It panics if n <= 0, matching
// math/rand semantics.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uniform returns a uniform value in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	return lo + (hi-lo)*g.r.Float64()
}

// UniformInt64 returns a uniform integer in [lo, hi]. It panics if hi < lo.
func (g *RNG) UniformInt64(lo, hi int64) int64 {
	if hi < lo {
		panic("stats: UniformInt64 with hi < lo")
	}
	return lo + g.r.Int63n(hi-lo+1)
}

// NormFloat64 returns a standard-normal value.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponential value with the given mean.
// It panics if mean <= 0.
func (g *RNG) ExpFloat64(mean float64) float64 {
	if mean <= 0 {
		panic("stats: ExpFloat64 with non-positive mean")
	}
	return g.r.ExpFloat64() * mean
}

// Bool returns true with probability p (clamped to [0,1]).
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
