package stats

import (
	"fmt"
	"math"
)

// Lognormal is a lognormal distribution parameterized by the mean (Mu) and
// standard deviation (Sigma) of the underlying normal. Job runtimes on
// production HPC machines are classically heavy-tailed and well described by
// a lognormal body with a hard cap at the site's maximum walltime.
type Lognormal struct {
	Mu    float64
	Sigma float64
}

// LognormalFromMedian builds a lognormal whose median equals median and whose
// shape is sigma. The median of a lognormal is exp(mu).
func LognormalFromMedian(median, sigma float64) Lognormal {
	if median <= 0 {
		panic("stats: lognormal median must be positive")
	}
	return Lognormal{Mu: math.Log(median), Sigma: sigma}
}

// Sample draws one value.
func (d Lognormal) Sample(g *RNG) float64 {
	return math.Exp(d.Mu + d.Sigma*g.NormFloat64())
}

// SampleClamped draws one value clamped into [lo, hi].
func (d Lognormal) SampleClamped(g *RNG, lo, hi float64) float64 {
	v := d.Sample(g)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Zipf assigns weights w_k = 1/(k+1)^S to ranks k = 0..N-1. It is used to
// spread a year of jobs over the 211 Theta projects: a few projects dominate
// the submission volume, a long tail submits a handful of jobs each, which is
// what produces the strongly different type mixes across relabelled traces
// (paper Fig. 4).
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf needs at least one rank")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws a rank in [0, N).
func (z *Zipf) Sample(g *RNG) int {
	u := g.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Weight returns the probability mass of rank k.
func (z *Zipf) Weight(k int) float64 {
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}

// Discrete is a weighted discrete distribution over len(Weights) categories.
type Discrete struct {
	cdf []float64
}

// NewDiscrete builds a sampler from non-negative weights (not necessarily
// normalized). It panics if all weights are zero or any is negative.
func NewDiscrete(weights []float64) *Discrete {
	if len(weights) == 0 {
		panic("stats: Discrete needs at least one weight")
	}
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("stats: negative weight %g at index %d", w, i))
		}
		sum += w
		cdf[i] = sum
	}
	if sum == 0 {
		panic("stats: Discrete weights sum to zero")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Discrete{cdf: cdf}
}

// Sample draws a category index.
func (d *Discrete) Sample(g *RNG) int {
	u := g.Float64()
	for i, c := range d.cdf {
		if u <= c {
			return i
		}
	}
	return len(d.cdf) - 1
}
