package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestSourceMatchesMathRand pins the serializable source to rand.NewSource:
// every draw kind must be bit-identical for the same seed, or all published
// experiment outputs would silently shift.
func TestSourceMatchesMathRand(t *testing.T) {
	seeds := []int64{0, 1, -1, 42, 89482311, 1 << 40, -(1 << 40), int32max, int32max + 1}
	for _, seed := range seeds {
		want := rand.New(rand.NewSource(seed))
		got := NewRNG(seed)
		for i := 0; i < 2000; i++ {
			switch i % 6 {
			case 0:
				if w, g := want.Int63(), got.Int63(); w != g {
					t.Fatalf("seed %d draw %d: Int63 %d != %d", seed, i, g, w)
				}
			case 1:
				if w, g := want.Float64(), got.Float64(); w != g {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, g, w)
				}
			case 2:
				if w, g := want.Intn(9973), got.Intn(9973); w != g {
					t.Fatalf("seed %d draw %d: Intn %d != %d", seed, i, g, w)
				}
			case 3:
				if w, g := want.NormFloat64(), got.NormFloat64(); w != g {
					t.Fatalf("seed %d draw %d: NormFloat64 %v != %v", seed, i, g, w)
				}
			case 4:
				if w, g := want.ExpFloat64(), got.ExpFloat64(1); w != g {
					t.Fatalf("seed %d draw %d: ExpFloat64 %v != %v", seed, i, g, w)
				}
			case 5:
				w := want.Perm(17)
				g := got.Perm(17)
				for k := range w {
					if w[k] != g[k] {
						t.Fatalf("seed %d draw %d: Perm mismatch at %d", seed, i, k)
					}
				}
			}
		}
	}
}

// TestRNGStateRoundTrip is the snapshot property test: capture the generator
// mid-stream at a random position, restore it into a fresh generator, and the
// next k draws must match the uninterrupted stream exactly.
func TestRNGStateRoundTrip(t *testing.T) {
	prop := func(seed int64, pos uint16, k uint8) bool {
		g := NewRNG(seed)
		for i := 0; i < int(pos); i++ {
			g.Int63()
		}
		st := g.State()

		fresh := NewRNG(0) // position is irrelevant; SetState overwrites it
		if err := fresh.SetState(st); err != nil {
			return false
		}
		for i := 0; i <= int(k); i++ {
			switch i % 3 {
			case 0:
				if g.Int63() != fresh.Int63() {
					return false
				}
			case 1:
				if g.Float64() != fresh.Float64() {
					return false
				}
			case 2:
				if g.NormFloat64() != fresh.NormFloat64() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRNGSetStateValidation rejects out-of-range register indices instead of
// corrupting the generator.
func TestRNGSetStateValidation(t *testing.T) {
	g := NewRNG(1)
	for _, st := range []RNGState{
		{Tap: -1, Feed: 0},
		{Tap: rngLen, Feed: 0},
		{Tap: 0, Feed: -3},
		{Tap: 0, Feed: rngLen + 7},
	} {
		if err := g.SetState(st); err == nil {
			t.Fatalf("SetState(%+v): want error", st)
		}
	}
	if err := g.SetState(g.State()); err != nil {
		t.Fatalf("SetState(State()): %v", err)
	}
}
