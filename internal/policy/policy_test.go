package policy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybridsched/internal/checkpoint"
	"hybridsched/internal/job"
)

func rigid(id int, submit int64, size int, est int64) *job.Job {
	j := job.NewRigid(id, 0, submit, size, est, est, 0, checkpoint.Plan{})
	j.State = job.Waiting
	return j
}

func malleable(id int, submit int64, max, min int, est int64) *job.Job {
	j := job.NewMalleable(id, 0, submit, max, min, est, est, 0)
	j.State = job.Waiting
	return j
}

func onDemand(id int, submit int64, size int, est int64) *job.Job {
	j := job.NewOnDemand(id, 0, submit, size, est, est, 0, job.NoNotice, submit, submit)
	j.State = job.Waiting
	return j
}

func TestByName(t *testing.T) {
	for _, name := range []string{"fcfs", "sjf", "ljf", "wfp3", ""} {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if ByName("nope") != nil {
		t.Fatal("unknown policy should be nil")
	}
}

func TestFCFSOrder(t *testing.T) {
	q := []*job.Job{rigid(2, 300, 8, 100), rigid(1, 100, 8, 100), rigid(3, 100, 8, 100)}
	Sort(q, FCFS{}, 0, false)
	if q[0].ID != 1 || q[1].ID != 3 || q[2].ID != 2 {
		t.Fatalf("FCFS order: %d %d %d", q[0].ID, q[1].ID, q[2].ID)
	}
}

func TestSJFOrder(t *testing.T) {
	q := []*job.Job{rigid(1, 0, 8, 900), rigid(2, 0, 8, 100), rigid(3, 0, 8, 500)}
	Sort(q, SJF{}, 0, false)
	if q[0].ID != 2 || q[1].ID != 3 || q[2].ID != 1 {
		t.Fatalf("SJF order wrong: %d %d %d", q[0].ID, q[1].ID, q[2].ID)
	}
}

func TestLJFOrder(t *testing.T) {
	q := []*job.Job{rigid(1, 0, 8, 100), rigid(2, 0, 128, 100), rigid(3, 0, 64, 100)}
	Sort(q, LJF{}, 0, false)
	if q[0].ID != 2 || q[1].ID != 3 || q[2].ID != 1 {
		t.Fatalf("LJF order wrong: %d %d %d", q[0].ID, q[1].ID, q[2].ID)
	}
}

func TestWFP3PrefersLongWaiters(t *testing.T) {
	a := rigid(1, 0, 64, 1000)    // waited 10000
	b := rigid(2, 9000, 64, 1000) // waited 1000
	q := []*job.Job{b, a}
	Sort(q, WFP3{}, 10000, false)
	if q[0].ID != 1 {
		t.Fatal("longer-waiting equal-size job should lead")
	}
}

func TestSortOnDemandFirst(t *testing.T) {
	q := []*job.Job{rigid(1, 0, 8, 100), onDemand(2, 500, 8, 100), onDemand(3, 400, 8, 100)}
	Sort(q, FCFS{}, 1000, true)
	if q[0].ID != 3 || q[1].ID != 2 || q[2].ID != 1 {
		t.Fatalf("on-demand-first order wrong: %d %d %d", q[0].ID, q[1].ID, q[2].ID)
	}
	// Without the flag, FCFS puts the rigid job first.
	Sort(q, FCFS{}, 1000, false)
	if q[0].ID != 1 {
		t.Fatal("plain FCFS should lead with the earliest submit")
	}
}

func TestPlanEASYStartsHeadJobs(t *testing.T) {
	q := []*job.Job{rigid(1, 0, 30, 100), rigid(2, 1, 40, 100), rigid(3, 2, 50, 100)}
	starts := PlanEASY(0, q, nil, 100, 0, nil, true)
	// 30+40 fit; 50 does not (30 left), and nothing can backfill behind it.
	if len(starts) != 2 || starts[0].J.ID != 1 || starts[1].J.ID != 2 {
		t.Fatalf("starts: %+v", starts)
	}
}

func TestPlanEASYBackfillRespectsShadow(t *testing.T) {
	// 100 nodes; a running job holds 60 until t=1000 (estimate).
	running := []Running{{EstEnd: 1000, Nodes: 60}}
	head := rigid(1, 0, 80, 500)  // needs 80: blocked until t=1000
	short := rigid(2, 1, 40, 900) // fits now, ends 900 <= 1000: backfills
	long := rigid(3, 2, 40, 5000) // would end after shadow and exceeds extra
	q := []*job.Job{head, short, long}
	starts := PlanEASY(0, q, running, 40, 0, nil, true)
	if len(starts) != 1 || starts[0].J.ID != 2 {
		t.Fatalf("starts: %+v", starts)
	}
	// shadow = 1000, extra = 40+60-80 = 20: a long 20-node job may still
	// backfill on extra nodes.
	tiny := rigid(4, 3, 20, 99999)
	q = []*job.Job{head, tiny}
	starts = PlanEASY(0, q, running, 40, 0, nil, true)
	if len(starts) != 1 || starts[0].J.ID != 4 {
		t.Fatalf("extra-node backfill failed: %+v", starts)
	}
}

func TestPlanEASYBackfillNeverDelaysHead(t *testing.T) {
	// Head needs all 100 nodes at shadow=1000; a 40-node job with a long
	// estimate must NOT start even though it fits now.
	running := []Running{{EstEnd: 1000, Nodes: 60}}
	head := rigid(1, 0, 100, 500)
	greedy := rigid(2, 1, 40, 2000)
	starts := PlanEASY(0, []*job.Job{head, greedy}, running, 40, 0, nil, true)
	if len(starts) != 0 {
		t.Fatalf("greedy backfill would delay head: %+v", starts)
	}
}

func TestPlanEASYMalleableHeadStartsAtMin(t *testing.T) {
	// Head is malleable min=20 max=200; only 50 free: starts at 50.
	head := malleable(1, 0, 200, 20, 1000)
	starts := PlanEASY(0, []*job.Job{head}, nil, 50, 0, nil, true)
	if len(starts) != 1 || starts[0].Size != 50 {
		t.Fatalf("malleable head: %+v", starts)
	}
}

func TestPlanEASYMalleableTakesMaxWhenRoomy(t *testing.T) {
	head := malleable(1, 0, 60, 10, 1000)
	starts := PlanEASY(0, []*job.Job{head}, nil, 100, 0, nil, true)
	if len(starts) != 1 || starts[0].Size != 60 {
		t.Fatalf("malleable should take max size: %+v", starts)
	}
}

func TestPlanEASYMalleableBackfillShrinksToExtra(t *testing.T) {
	// Head rigid needs 80 (shadow 1000, extra 20). Malleable candidate
	// min=10 max=40 with a huge estimate: the time rule fails at any size, so
	// it must shrink to the 20 extra nodes.
	running := []Running{{EstEnd: 1000, Nodes: 60}}
	head := rigid(1, 0, 80, 500)
	m := malleable(2, 1, 40, 10, 99999)
	starts := PlanEASY(0, []*job.Job{head, m}, running, 40, 0, nil, true)
	if len(starts) != 1 || starts[0].J.ID != 2 || starts[0].Size != 20 {
		t.Fatalf("malleable extra backfill: %+v", starts)
	}
}

func TestPlanEASYBackfillExtraReservedNodes(t *testing.T) {
	// Nothing free, 30 reserved nodes available for backfill only.
	head := rigid(1, 0, 50, 100)
	bf := rigid(2, 1, 30, 100)
	starts := PlanEASY(0, []*job.Job{head, bf}, nil, 0, 30, nil, true)
	// Head must not start on reserved nodes; bf may.
	if len(starts) != 1 || starts[0].J.ID != 2 {
		t.Fatalf("reserved backfill: %+v", starts)
	}
}

func TestPlanEASYNoShadowWhenRunningInsufficient(t *testing.T) {
	// Head needs 90 but running jobs only ever release 40: shadow unbounded,
	// any fitting job backfills.
	running := []Running{{EstEnd: 1000, Nodes: 20}}
	head := rigid(1, 0, 90, 100)
	bf := rigid(2, 1, 20, 99999)
	starts := PlanEASY(0, []*job.Job{head, bf}, running, 20, 0, nil, true)
	if len(starts) != 1 || starts[0].J.ID != 2 {
		t.Fatalf("unbounded-shadow backfill: %+v", starts)
	}
}

func TestPlanEASYEmptyQueue(t *testing.T) {
	if got := PlanEASY(0, nil, nil, 100, 0, nil, true); len(got) != 0 {
		t.Fatalf("empty queue should plan nothing: %+v", got)
	}
}

// simulateShadow replays a plan to verify the head job is never delayed: at
// the shadow time, the head must be able to start assuming all running jobs
// release exactly at their estimates and backfilled jobs run to their own
// estimates.
func headNotDelayed(now int64, queue []*job.Job, running []Running, free int, starts []Start) bool {
	started := map[int]bool{}
	for _, s := range starts {
		started[s.J.ID] = true
	}
	// Find the head: first queued job not started.
	var head *job.Job
	for _, j := range queue {
		if !started[j.ID] {
			head = j
			break
		}
	}
	if head == nil {
		return true
	}
	shadow, _ := new(Planner).shadowAndExtra(running, freeAfter(free, starts, queue, head), minStart(head), false, 0)
	if shadow == maxInt64 {
		return true
	}
	// Nodes available to the head at the shadow time: free now − backfills
	// still running at shadow + releases by then.
	avail := free
	for _, s := range starts {
		avail -= s.Size
	}
	for _, r := range running {
		if r.EstEnd <= shadow {
			avail += r.Nodes
		}
	}
	for _, s := range starts {
		if now+estimatedWall(s.J, s.Size) <= shadow {
			avail += s.Size
		}
	}
	return avail >= minStart(head)
}

func freeAfter(free int, starts []Start, queue []*job.Job, head *job.Job) int {
	// Free nodes counted before any backfill decisions: phase-1 starts are
	// those ahead of the head in queue order.
	f := free
	for _, s := range starts {
		ahead := false
		for _, j := range queue {
			if j == head {
				break
			}
			if j == s.J {
				ahead = true
				break
			}
		}
		if ahead {
			f -= s.Size
		}
	}
	return f
}

// Property: EASY backfilling never delays the head job's reservation, for
// random queues and running sets.
func TestPlanEASYHeadNeverDelayedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		total := 100
		// Random running jobs.
		free := total
		var running []Running
		for free > 10 && r.Intn(3) != 0 {
			n := 1 + r.Intn(free/2+1)
			running = append(running, Running{EstEnd: int64(100 + r.Intn(2000)), Nodes: n})
			free -= n
		}
		// Random queue.
		var queue []*job.Job
		nq := 1 + r.Intn(8)
		for i := 0; i < nq; i++ {
			size := 1 + r.Intn(total)
			est := int64(10 + r.Intn(3000))
			if r.Intn(3) == 0 {
				min := 1 + r.Intn(size)
				queue = append(queue, malleable(i+1, int64(i), size, min, est))
			} else {
				queue = append(queue, rigid(i+1, int64(i), size, est))
			}
		}
		starts := PlanEASY(0, queue, running, free, 0, nil, true)
		// All starts must fit in the free pool.
		used := 0
		for _, s := range starts {
			used += s.Size
		}
		if used > free {
			return false
		}
		return headNotDelayed(0, queue, running, free, starts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: started sizes always respect job bounds.
func TestPlanEASYSizesWithinBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var queue []*job.Job
		for i := 0; i < 1+r.Intn(10); i++ {
			size := 1 + r.Intn(128)
			min := 1 + r.Intn(size)
			queue = append(queue, malleable(i+1, int64(i), size, min, int64(10+r.Intn(1000))))
		}
		free := r.Intn(300)
		extra := r.Intn(100)
		for _, s := range PlanEASY(0, queue, nil, free, extra, nil, true) {
			if s.Size < s.J.MinSize || s.Size > s.J.Size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanEASYOwnReservation(t *testing.T) {
	// Head needs 50 but only 20 are free; it privately holds 30 returned
	// nodes, so it must start (consuming own first).
	head := rigid(1, 0, 50, 100)
	ownRes := func(j *job.Job) int {
		if j.ID == 1 {
			return 30
		}
		return 0
	}
	starts := PlanEASY(0, []*job.Job{head}, nil, 20, 0, ownRes, true)
	if len(starts) != 1 || starts[0].J.ID != 1 {
		t.Fatalf("own-reservation start failed: %+v", starts)
	}
}

func TestPlanEASYOwnReservationReducesHeadNeed(t *testing.T) {
	// Head needs 80, holds 50 privately, 10 free: needs 30 more, covered by
	// the 30-node release at t=1000 => shadow 1000, extra = 10+30-30 = 10.
	running := []Running{{EstEnd: 1000, Nodes: 30}}
	head := rigid(1, 0, 80, 100)
	tooBig := rigid(3, 2, 11, 99999)
	bf := rigid(2, 3, 10, 99999) // long job exactly on the extra nodes
	ownRes := func(j *job.Job) int {
		if j.ID == 1 {
			return 50
		}
		return 0
	}
	starts := PlanEASY(0, []*job.Job{head, tooBig, bf}, running, 10, 0, ownRes, true)
	// tooBig's free draw (11) exceeds extra (10); bf's (10) fits exactly.
	if len(starts) != 1 || starts[0].J.ID != 2 {
		t.Fatalf("extra with own reservation: %+v", starts)
	}
}

func TestPlanEASYBackfillerUsesItsOwnReservation(t *testing.T) {
	// Backfiller holds 25 privately and needs 30: only 5 from the free pool,
	// within the head's extra slack of 5.
	running := []Running{{EstEnd: 1000, Nodes: 60}}
	head := rigid(1, 0, 95, 100) // shadow 1000, extra = 40+60-95 = 5
	bf := rigid(2, 1, 30, 99999)
	ownRes := func(j *job.Job) int {
		if j.ID == 2 {
			return 25
		}
		return 0
	}
	starts := PlanEASY(0, []*job.Job{head, bf}, running, 40, 0, ownRes, true)
	if len(starts) != 1 || starts[0].J.ID != 2 {
		t.Fatalf("own-reservation backfill: %+v", starts)
	}
	// Without the private hold the same job must be rejected.
	starts = PlanEASY(0, []*job.Job{head, bf}, running, 40, 0, nil, true)
	if len(starts) != 0 {
		t.Fatalf("backfill without hold should fail: %+v", starts)
	}
}

func TestPlanEASYFixedTreatsMalleableRigidly(t *testing.T) {
	// flexible=false: a malleable job needs its full max size to start.
	m := malleable(1, 0, 80, 20, 1000)
	starts := PlanEASY(0, []*job.Job{m}, nil, 50, 0, nil, false)
	if len(starts) != 0 {
		t.Fatalf("fixed planner started malleable shrunk: %+v", starts)
	}
	starts = PlanEASY(0, []*job.Job{m}, nil, 80, 0, nil, false)
	if len(starts) != 1 || starts[0].Size != 80 {
		t.Fatalf("fixed planner: %+v", starts)
	}
}

func TestPlanEASYFixedBackfillRules(t *testing.T) {
	// Head blocked (needs 80, shadow at 1000); a short job backfills, a long
	// one is rejected, and a long job within the extra slack passes.
	running := []Running{{EstEnd: 1000, Nodes: 60}}
	head := rigid(1, 0, 80, 500)
	short := rigid(2, 1, 40, 900)
	long := rigid(3, 2, 40, 5000)
	starts := PlanEASY(0, []*job.Job{head, short, long}, running, 40, 0, nil, false)
	if len(starts) != 1 || starts[0].J.ID != 2 {
		t.Fatalf("fixed backfill: %+v", starts)
	}
	// extra = 40+60-80 = 20: a 20-node long job fits the extra rule.
	tiny := rigid(4, 3, 20, 99999)
	starts = PlanEASY(0, []*job.Job{head, tiny}, running, 40, 0, nil, false)
	if len(starts) != 1 || starts[0].J.ID != 4 {
		t.Fatalf("fixed extra-rule backfill: %+v", starts)
	}
}

func TestPlanEASYFixedOwnReservation(t *testing.T) {
	head := rigid(1, 0, 50, 100)
	ownRes := func(j *job.Job) int {
		if j.ID == 1 {
			return 30
		}
		return 0
	}
	starts := PlanEASY(0, []*job.Job{head}, nil, 20, 0, ownRes, false)
	if len(starts) != 1 {
		t.Fatalf("fixed own-reservation start: %+v", starts)
	}
}

func TestPlanEASYFixedOnDemandNoSharedReserve(t *testing.T) {
	// An on-demand backfill candidate must not draw on shared reserved
	// capacity (it would become preemptable).
	head := rigid(1, 0, 80, 100)
	od := onDemand(2, 1, 30, 100)
	rig := rigid(3, 2, 30, 100)
	starts := PlanEASY(0, []*job.Job{head, od, rig}, nil, 0, 30, nil, false)
	if len(starts) != 1 || starts[0].J.ID != 3 {
		t.Fatalf("fixed reserved backfill: %+v", starts)
	}
}

func TestPlanEASYFixedMalleableBackfillEstimate(t *testing.T) {
	// Malleable candidate at full size whose estimated end beats the shadow.
	running := []Running{{EstEnd: 10_000, Nodes: 60}}
	head := rigid(1, 0, 80, 500)
	m := malleable(2, 1, 40, 10, 1000) // wall at 40 nodes = 1000 < 10000
	starts := PlanEASY(0, []*job.Job{head, m}, running, 40, 0, nil, false)
	if len(starts) != 1 || starts[0].J.ID != 2 || starts[0].Size != 40 {
		t.Fatalf("fixed malleable backfill: %+v", starts)
	}
}
