// Package policy implements the waiting-queue ordering policies and the
// EASY-backfilling planner used by the simulated scheduler.
//
// The paper's mechanisms are deliberately orthogonal to the queue policy
// ("while a scheduling policy determines the order of waiting jobs, our
// mechanisms manipulate the running jobs", §I). The default policy is FCFS
// with EASY backfilling (§IV-B); SJF, LJF, and WFP3 are provided for
// ablations and to exercise the pluggable-policy interface CQSim exposes.
package policy

import (
	"sort"

	"hybridsched/internal/job"
)

// Ordering ranks two waiting jobs; it reports whether a should run before b.
// now is the current virtual time (WFP3-style policies depend on it).
type Ordering interface {
	Name() string
	Less(a, b *job.Job, now int64) bool
}

// FCFS orders by first submission time. Preempted jobs keep their original
// submission time, so they naturally return to the front (paper §III-B.2).
type FCFS struct{}

// Name returns "fcfs".
func (FCFS) Name() string { return "fcfs" }

// Less orders by submission time, breaking ties by job ID.
func (FCFS) Less(a, b *job.Job, _ int64) bool {
	if a.SubmitTime != b.SubmitTime {
		return a.SubmitTime < b.SubmitTime
	}
	return a.ID < b.ID
}

// TimeInvariant reports that FCFS order never changes as time passes.
func (FCFS) TimeInvariant() bool { return true }

// SJF orders by estimated wall time, shortest first.
type SJF struct{}

// Name returns "sjf".
func (SJF) Name() string { return "sjf" }

// Less orders by estimate, breaking ties FCFS-style.
func (SJF) Less(a, b *job.Job, _ int64) bool {
	ea, eb := a.Estimate, b.Estimate
	if ea != eb {
		return ea < eb
	}
	if a.SubmitTime != b.SubmitTime {
		return a.SubmitTime < b.SubmitTime
	}
	return a.ID < b.ID
}

// TimeInvariant reports that SJF order never changes as time passes.
func (SJF) TimeInvariant() bool { return true }

// LJF orders by requested size, largest first, to reduce fragmentation.
type LJF struct{}

// Name returns "ljf".
func (LJF) Name() string { return "ljf" }

// Less orders by size descending, breaking ties FCFS-style.
func (LJF) Less(a, b *job.Job, _ int64) bool {
	if a.Size != b.Size {
		return a.Size > b.Size
	}
	if a.SubmitTime != b.SubmitTime {
		return a.SubmitTime < b.SubmitTime
	}
	return a.ID < b.ID
}

// TimeInvariant reports that LJF order never changes as time passes.
func (LJF) TimeInvariant() bool { return true }

// WFP3 implements the utilization-fairness policy used on Theta-class
// systems: priority grows with (wait/estimate)^3 * size, so large jobs and
// long-waiting jobs climb the queue.
type WFP3 struct{}

// Name returns "wfp3".
func (WFP3) Name() string { return "wfp3" }

// Less orders by descending WFP3 score.
func (WFP3) Less(a, b *job.Job, now int64) bool {
	sa, sb := wfp3Score(a, now), wfp3Score(b, now)
	if sa != sb {
		return sa > sb
	}
	if a.SubmitTime != b.SubmitTime {
		return a.SubmitTime < b.SubmitTime
	}
	return a.ID < b.ID
}

func wfp3Score(j *job.Job, now int64) float64 {
	wait := float64(now - j.SubmitTime)
	if wait < 0 {
		wait = 0
	}
	est := float64(j.Estimate)
	if est < 1 {
		est = 1
	}
	r := wait / est
	return r * r * r * float64(j.Size)
}

// ByName returns the ordering with the given name, defaulting to FCFS for an
// empty string. Unknown names return nil.
func ByName(name string) Ordering {
	switch name {
	case "", "fcfs":
		return FCFS{}
	case "sjf":
		return SJF{}
	case "ljf":
		return LJF{}
	case "wfp3":
		return WFP3{}
	}
	return nil
}

// Less is the single queue ordering shared by Sort and incremental queue
// maintenance: it reports whether a should run before b under ord at time
// now, with the on-demand-first rule applied when onDemandFirst is set
// (the mechanisms place an on-demand job that could not start instantly "to
// the front of the queue waiting for additional available nodes", §III-B.2);
// among themselves on-demand jobs keep arrival order.
func Less(a, b *job.Job, ord Ordering, now int64, onDemandFirst bool) bool {
	if onDemandFirst {
		ao, bo := a.Class == job.OnDemand, b.Class == job.OnDemand
		if ao != bo {
			return ao
		}
		if ao && bo {
			if a.SubmitTime != b.SubmitTime {
				return a.SubmitTime < b.SubmitTime
			}
			return a.ID < b.ID
		}
	}
	return ord.Less(a, b, now)
}

// Sort orders queue in place under ord at time now, applying the
// on-demand-first rule when onDemandFirst is set (see Less).
func Sort(queue []*job.Job, ord Ordering, now int64, onDemandFirst bool) {
	sort.SliceStable(queue, func(i, k int) bool {
		return Less(queue[i], queue[k], ord, now, onDemandFirst)
	})
}

// timeInvariant is the optional capability an Ordering implements to declare
// that its pairwise comparisons never depend on the current virtual time.
type timeInvariant interface{ TimeInvariant() bool }

// TimeInvariant reports whether ord's ordering of any two jobs is independent
// of now. A time-invariant ordering (with ties broken to a total order, as
// all built-ins do) lets a scheduler maintain its waiting queue sorted
// incrementally instead of re-sorting on every pass. Orderings that do not
// implement the capability are conservatively reported as time-dependent.
func TimeInvariant(ord Ordering) bool {
	ti, ok := ord.(timeInvariant)
	return ok && ti.TimeInvariant()
}
