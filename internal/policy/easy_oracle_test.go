package policy

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hybridsched/internal/job"
)

// refPlanEASY is a brute-force reference EASY planner used only by tests. It
// restates the intended semantics from first principles, independently of the
// Planner's incremental machinery:
//
//   - phase 1 walks the queue head while the start need fits free + own;
//   - phase 2 derives the shadow time by accumulating releases in strict
//     (EstEnd, ID) order over a fresh copy of the running list;
//   - phase 3 sizes every candidate by literal enumeration — try each size
//     from the largest down and take the first that satisfies capacity and
//     either the finish-before-shadow rule or the extra-node rule — rather
//     than the closed-form choice the Planner makes.
//
// Pool accounting follows the spec: a backfill draw is served by the job's
// own reservation, then the free pool, then the shared reserve; the shared
// reserve is charged the larger of the physical free-pool overflow and the
// extra-rule shortfall (the part of the draw the head's slack cannot
// justify), and the head's slack absorbs the remainder.
func refPlanEASY(now int64, queue []*job.Job, running []Running, free, backfillExtra int, ownReserve map[int]int, flexible bool) []Start {
	own := func(j *job.Job) int { return ownReserve[j.ID] }
	need := func(j *job.Job) int {
		if flexible && j.Class == job.Malleable {
			return j.MinSize
		}
		return j.Size
	}

	var starts []Start
	idx := 0
	for idx < len(queue) {
		j := queue[idx]
		avail := free + own(j)
		if need(j) > avail {
			break
		}
		size := j.Size
		if flexible && j.Class == job.Malleable && avail < j.Size {
			size = avail
		}
		starts = append(starts, Start{J: j, Size: size})
		fromOwn := own(j)
		if fromOwn > size {
			fromOwn = size
		}
		free -= size - fromOwn
		idx++
	}
	if idx >= len(queue) {
		return starts
	}

	head := queue[idx]
	headNeed := need(head) - own(head)
	rel := append([]Running(nil), running...)
	sort.Slice(rel, func(i, j int) bool { return relLess(rel[i], rel[j]) })
	shadow, extra := maxInt64, 0
	if free >= headNeed {
		extra = free - headNeed
	} else {
		avail := free
		for _, r := range rel {
			avail += r.Nodes
			if avail >= headNeed {
				shadow, extra = r.EstEnd, avail-headNeed
				break
			}
		}
	}

	for _, j := range queue[idx+1:] {
		bf := backfillExtra
		if j.Class == job.OnDemand {
			bf = 0
		}
		lo, hi := j.Size, j.Size
		if flexible && j.Class == job.Malleable {
			lo = j.MinSize
		}
		chosen, usedExtra, found := 0, false, false
		for n := hi; n >= lo; n-- {
			if n > own(j)+free+bf {
				continue
			}
			timeOK := shadow == maxInt64 || now+estimatedWall(j, n) <= shadow
			extraOK := n-own(j) <= extra+bf
			if timeOK || extraOK {
				chosen, usedExtra, found = n, !timeOK, true
				break
			}
		}
		if !found {
			continue
		}
		starts = append(starts, Start{J: j, Size: chosen})
		rest := chosen - own(j)
		if rest < 0 {
			rest = 0
		}
		fromFree := rest
		if fromFree > free {
			fromFree = free
		}
		reserveCharge := rest - fromFree
		if usedExtra {
			if short := rest - extra; short > reserveCharge {
				reserveCharge = short
			}
		}
		backfillExtra -= reserveCharge
		free -= fromFree
		if usedExtra {
			extra -= rest - reserveCharge
			if extra < 0 {
				extra = 0
			}
		}
	}
	return starts
}

func sameStarts(a, b []Start) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].J.ID != b[i].J.ID || a[i].Size != b[i].Size {
			return false
		}
	}
	return true
}

// genInstance builds a random planner instance small enough (≤8 queued jobs)
// that the brute-force reference is exhaustive. Running-job estimated ends
// are drawn from a coarse grid so (EstEnd, ID) tie-breaking is exercised.
func genInstance(rng *rand.Rand) (queue []*job.Job, running []Running, free, bf int, ownReserve map[int]int, flexible bool) {
	nq := rng.Intn(9)
	ownReserve = map[int]int{}
	for i := 0; i < nq; i++ {
		id := i + 1
		size := 1 + rng.Intn(16)
		est := int64(1 + rng.Intn(2000))
		switch rng.Intn(3) {
		case 0:
			queue = append(queue, rigid(id, int64(i), size, est))
		case 1:
			queue = append(queue, malleable(id, int64(i), size, 1+rng.Intn(size), est))
		default:
			queue = append(queue, onDemand(id, int64(i), size, est))
		}
		if rng.Intn(4) == 0 {
			ownReserve[id] = 1 + rng.Intn(4)
		}
	}
	for i, nr := 0, rng.Intn(5); i < nr; i++ {
		running = append(running, Running{
			EstEnd: int64(250 * (1 + rng.Intn(8))),
			Nodes:  1 + rng.Intn(16),
			ID:     100 + i,
		})
	}
	return queue, running, rng.Intn(17), rng.Intn(5), ownReserve, rng.Intn(2) == 0
}

// TestPlanEASYMatchesBruteForce pins Planner.PlanEASY — and the pre-sorted,
// memoized PlanEASYSorted entry point — to the brute-force reference across
// randomized small instances mixing all three job classes, private
// reservations, shared reserve capacity, and both sizing modes.
func TestPlanEASYMatchesBruteForce(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		queue, running, free, bf, ownReserve, flexible := genInstance(rng)
		var ownFn func(*job.Job) int
		if len(ownReserve) > 0 {
			ownFn = func(j *job.Job) int { return ownReserve[j.ID] }
		}

		want := refPlanEASY(0, queue, running, free, bf, ownReserve, flexible)

		var p Planner
		got := p.PlanEASY(0, queue, running, free, bf, ownFn, flexible)
		if !sameStarts(want, got) {
			t.Logf("seed %d: PlanEASY diverges: want %+v got %+v", seed, want, got)
			return false
		}

		sortedRel := append([]Running(nil), running...)
		sort.Slice(sortedRel, func(i, j int) bool { return relLess(sortedRel[i], sortedRel[j]) })
		var ps Planner
		// Plan twice with the same version: the second call exercises the
		// memoized shadow/extra path and must not change the answer.
		for pass := 0; pass < 2; pass++ {
			got = ps.PlanEASYSorted(0, queue, sortedRel, uint64(seed), free, bf, ownFn, flexible)
			if !sameStarts(want, got) {
				t.Logf("seed %d pass %d: PlanEASYSorted diverges: want %+v got %+v", seed, pass, want, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
