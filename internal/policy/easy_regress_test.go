package policy

import (
	"testing"

	"hybridsched/internal/job"
)

// Regression tests for the two backfill-accounting fixes. Shared fixture:
// 100 nodes; a running job holds 60 until t=1000; the head needs 80, so
// shadow = 1000 and extra = free(40) + 60 - 80 = 20.

// TestMalleableBackfillUsesReservedHeadroom pins the chooseBackfillSize fix:
// the malleable extra-rule fallback must size against own + extra +
// reservedExtra, not own + extra. With 30 shared reserved nodes a malleable
// candidate (MinSize 25) is feasible at 20+30 = 50 nodes; the pre-fix cap of
// extra(20) < MinSize rejected it outright whenever free > extra.
func TestMalleableBackfillUsesReservedHeadroom(t *testing.T) {
	running := []Running{{EstEnd: 1000, Nodes: 60, ID: 90}}
	head := rigid(1, 0, 80, 500)
	// Long estimate: the time rule fails at every size, forcing the
	// extra-rule fallback.
	cand := malleable(2, 1, 90, 25, 99999)
	starts := PlanEASY(0, []*job.Job{head, cand}, running, 40, 30, nil, true)
	if len(starts) != 1 || starts[0].J.ID != 2 {
		t.Fatalf("malleable candidate should backfill on reserved headroom; starts: %+v", starts)
	}
	if got, want := starts[0].Size, 50; got != want {
		t.Fatalf("backfill size = %d, want %d (own 0 + extra 20 + reserved 30)", got, want)
	}
}

// TestBackfillSharedReserveNoDoubleSpend pins the shared-capacity deduction
// fix with two candidates competing for one reserved node: candidate A's
// extra-rule draw of 21 is covered by the head's slack (20) plus the single
// shared reserved node; candidate B must then find the reserve spent, even
// though A's draw physically fit in the free pool (the pre-fix code charged
// the reserve only on free-pool underflow, so B would be sized against the
// same node again and the plan would oversubscribe the head's window).
func TestBackfillSharedReserveNoDoubleSpend(t *testing.T) {
	running := []Running{{EstEnd: 1000, Nodes: 60, ID: 90}}
	head := rigid(1, 0, 80, 500)
	a := rigid(2, 1, 21, 99999) // extra rule: 21 <= extra 20 + reserve 1
	b := rigid(3, 2, 1, 99999)  // must NOT also ride the spent reserve
	starts := PlanEASY(0, []*job.Job{head, a, b}, running, 40, 1, nil, true)
	if len(starts) != 1 || starts[0].J.ID != 2 {
		t.Fatalf("exactly candidate A should start; starts: %+v", starts)
	}
	// Same shape through the fixed-size path (the double-spend audit of
	// planEASYFixed): identical accounting applies with flexible off.
	startsFixed := PlanEASY(0, []*job.Job{head, a, b}, running, 40, 1, nil, false)
	if len(startsFixed) != 1 || startsFixed[0].J.ID != 2 {
		t.Fatalf("fixed path: exactly candidate A should start; starts: %+v", startsFixed)
	}
}

// TestRigidBackfillReservedHeadroom extends the relaxed extra rule to rigid
// candidates: a draw of extra+reserved is admissible even when it exceeds the
// head's slack alone.
func TestRigidBackfillReservedHeadroom(t *testing.T) {
	running := []Running{{EstEnd: 1000, Nodes: 60, ID: 90}}
	head := rigid(1, 0, 80, 500)
	cand := rigid(2, 1, 24, 99999) // 24 <= extra 20 + reserved 4
	starts := PlanEASY(0, []*job.Job{head, cand}, running, 40, 4, nil, true)
	if len(starts) != 1 || starts[0].J.ID != 2 || starts[0].Size != 24 {
		t.Fatalf("rigid candidate should use reserved headroom; starts: %+v", starts)
	}
	// One node short of the combined bound: rejected.
	cand2 := rigid(3, 1, 25, 99999)
	starts = PlanEASY(0, []*job.Job{head, cand2}, running, 40, 4, nil, true)
	if len(starts) != 0 {
		t.Fatalf("draw beyond extra+reserved must be rejected; starts: %+v", starts)
	}
}

// TestSortedPlannerMatchesUnsorted drives the memoized pre-sorted entry point
// against the sort-per-call one on the regression fixtures.
func TestSortedPlannerMatchesUnsorted(t *testing.T) {
	running := []Running{
		{EstEnd: 1000, Nodes: 30, ID: 90},
		{EstEnd: 1000, Nodes: 30, ID: 91}, // EstEnd tie: ID breaks it
		{EstEnd: 500, Nodes: 10, ID: 92},
	}
	sorted := make([]Running, len(running))
	copy(sorted, running)
	// (EstEnd, ID) order.
	sorted[0], sorted[1], sorted[2] = running[2], running[0], running[1]

	head := rigid(1, 0, 95, 500)
	c1 := malleable(2, 1, 40, 5, 99999)
	c2 := rigid(3, 2, 10, 200)
	queue := []*job.Job{head, c1, c2}

	var pa, pb Planner
	for pass := 0; pass < 3; pass++ { // repeat: the second pass hits the memo
		a := pa.PlanEASY(0, queue, running, 30, 2, nil, true)
		b := pb.PlanEASYSorted(0, queue, sorted, 7, 30, 2, nil, true)
		if len(a) != len(b) {
			t.Fatalf("pass %d: %d vs %d starts", pass, len(a), len(b))
		}
		for i := range a {
			if a[i].J.ID != b[i].J.ID || a[i].Size != b[i].Size {
				t.Fatalf("pass %d start %d: (%d,%d) vs (%d,%d)",
					pass, i, a[i].J.ID, a[i].Size, b[i].J.ID, b[i].Size)
			}
		}
	}
}
