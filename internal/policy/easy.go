package policy

import (
	"sort"

	"hybridsched/internal/job"
)

// Running describes a running job for backfill planning: when the scheduler
// expects its nodes back (estimate-based, never the actual end), how many
// nodes it holds, and which job it is. The release list is ordered by
// (EstEnd, ID) — a total order — so an incrementally maintained list and a
// freshly sorted one agree bit-for-bit even when estimated ends tie.
type Running struct {
	EstEnd int64
	Nodes  int
	ID     int
}

// relLess is the release-list order: by estimated end, ties by job ID.
func relLess(a, b Running) bool {
	if a.EstEnd != b.EstEnd {
		return a.EstEnd < b.EstEnd
	}
	return a.ID < b.ID
}

// RelLess reports whether a orders before b in the release list — the
// (EstEnd, ID) total order PlanEASYSorted requires callers to maintain.
func RelLess(a, b Running) bool { return relLess(a, b) }

// Start is a planner decision: start job J on Size nodes now.
type Start struct {
	J    *job.Job
	Size int
}

// maxInt64 stands in for an unbounded shadow time.
const maxInt64 = int64(^uint64(0) >> 1)

// Planner computes EASY-backfilling plans with reusable scratch buffers, so a
// scheduler invoking it once per event allocates nothing in steady state. The
// zero value is ready to use. A Planner is not safe for concurrent use, and
// each PlanEASY call invalidates the slice returned by the previous one.
type Planner struct {
	starts []Start
	rel    []Running

	// Memoized phase-2 shadow/extra for PlanEASYSorted, keyed by everything
	// the computation reads: the head's residual need, the free pool, and the
	// caller's release-list version. See PlanEASYSorted.
	shadowValid    bool
	shadowHeadNeed int
	shadowFree     int
	shadowRelVer   uint64
	shadowTime     int64
	shadowExtra    int
}

// PlanEASY computes the set of waiting jobs to start now under FCFS/EASY
// semantics (Mu'alem & Feitelson, TPDS'01):
//
//  1. Jobs start from the head of the (already ordered) queue while they fit
//     in the free pool.
//  2. The first job that does not fit gets a reservation at the shadow time —
//     the earliest instant at which enough running jobs will have released
//     nodes (by their estimates).
//  3. Jobs behind it may backfill if they fit now and either finish (by their
//     estimate) before the shadow time or use only capacity the head job will
//     not need (the "extra" nodes, plus reserved capacity invisible to it).
//
// Malleable jobs are sized greedily: the largest feasible size wins; a
// malleable head job only needs its minimum size to start.
//
// ownReserve reports nodes privately reserved for a specific waiting job —
// the directed returns of the paper's on-demand completion rule and the
// partial gathers of an on-demand job that could not start instantly. A job
// consumes its own reservation before touching the free pool, and private
// nodes never count against the head job's extra-node slack. nil means no
// private reservations.
//
// backfillExtra adds shared reserved-node capacity usable by backfill
// candidates only (paper §III-B.1: nodes reserved for a future on-demand job
// may host backfill jobs that are preempted the moment it arrives); the queue
// head never starts on that capacity.
// flexible enables malleable sizing: when false (the Table II baseline:
// "no special treatments"), malleable jobs are scheduled rigidly at their
// maximum size.
//
// The returned slice is owned by the Planner and valid until its next call.
func (p *Planner) PlanEASY(now int64, queue []*job.Job, running []Running, free, backfillExtra int, ownReserve func(*job.Job) int, flexible bool) []Start {
	return p.plan(now, queue, running, free, backfillExtra, ownReserve, flexible, false, 0)
}

// PlanEASYSorted is PlanEASY for a release list the caller maintains already
// sorted by (EstEnd, ID): the per-pass copy and sort disappear, and the
// phase-2 shadow/extra computation is memoized. relVersion must change
// whenever the contents of running change (any insert, removal, or estimate
// update); together with the head's residual need and the free count it keys
// the cached result, so a pass repeated against an unchanged running set and
// free pool skips the release-list scan entirely.
func (p *Planner) PlanEASYSorted(now int64, queue []*job.Job, running []Running, relVersion uint64, free, backfillExtra int, ownReserve func(*job.Job) int, flexible bool) []Start {
	return p.plan(now, queue, running, free, backfillExtra, ownReserve, flexible, true, relVersion)
}

// PlanEASY is the allocation-per-call form of Planner.PlanEASY, retained for
// one-shot callers and the engine's naive reference path.
func PlanEASY(now int64, queue []*job.Job, running []Running, free, backfillExtra int, ownReserve func(*job.Job) int, flexible bool) []Start {
	var p Planner
	return p.PlanEASY(now, queue, running, free, backfillExtra, ownReserve, flexible)
}

// startNeed is the smallest node count that lets j start as the (unblocked)
// queue head: its minimum size under flexible sizing, its full size otherwise.
func startNeed(j *job.Job, flexible bool) int {
	if flexible {
		return minStart(j)
	}
	return j.Size
}

// plan is the shared three-phase EASY pass behind both entry points.
func (p *Planner) plan(now int64, queue []*job.Job, running []Running, free, backfillExtra int, ownReserve func(*job.Job) int, flexible, sorted bool, relVer uint64) []Start {
	own := func(j *job.Job) int {
		if ownReserve == nil {
			return 0
		}
		return ownReserve(j)
	}

	starts := p.starts[:0]
	idx := 0

	// Phase 1: run the head of the queue while it fits.
	for idx < len(queue) {
		j := queue[idx]
		avail := free + own(j)
		if startNeed(j, flexible) > avail {
			break
		}
		size := j.Size
		if flexible {
			size = chooseSize(j, avail)
		}
		starts = append(starts, Start{J: j, Size: size})
		fromOwn := own(j)
		if fromOwn > size {
			fromOwn = size
		}
		free -= size - fromOwn
		idx++
	}
	if idx >= len(queue) {
		p.starts = starts
		return starts
	}

	// Phase 2: reservation for the blocked head. The head's own reservation
	// reduces what it needs from the free pool and future releases.
	head := queue[idx]
	headNeed := startNeed(head, flexible) - own(head)
	shadow, extra := p.shadowAndExtra(running, free, headNeed, sorted, relVer)

	// Phase 3: backfill the rest of the queue in priority order.
	for _, j := range queue[idx+1:] {
		// On-demand jobs never run on other jobs' reserved capacity: a
		// squatter is preemptable, and on-demand jobs must not be.
		bfExtra := backfillExtra
		if j.Class == job.OnDemand {
			bfExtra = 0
		}
		size, usedExtra, ok := chooseBackfillSize(now, j, free, own(j), bfExtra, shadow, extra, flexible)
		if !ok {
			continue
		}
		starts = append(starts, Start{J: j, Size: size})
		// Consumption order: own reservation, then free pool, then shared
		// reserved capacity.
		rest := size - own(j)
		if rest < 0 {
			rest = 0
		}
		fromFree := rest
		if fromFree > free {
			fromFree = free
		}
		// The shared reserve is charged the larger of the physical overflow
		// (nodes the free pool could not supply) and the extra-rule overflow
		// (the part of the draw the head's slack does not cover). Charging
		// only on free-pool underflow let two extra-rule candidates each size
		// against the full shared reserve — the double-spend this fixes.
		reserveUse := rest - fromFree
		if usedExtra {
			if over := rest - extra; over > reserveUse {
				reserveUse = over
			}
		}
		backfillExtra -= reserveUse
		free -= fromFree
		if usedExtra {
			extra -= rest - reserveUse
			if extra < 0 {
				extra = 0
			}
		}
	}
	p.starts = starts
	return starts
}

// shadowAndExtra computes the head job's reservation: the shadow time at
// which headNeed nodes become available (estimate-based), and the number of
// extra nodes left over at that instant beyond the head's need. If the head
// can never be satisfied from running-job releases (e.g. reservations hold
// nodes back), the shadow is unbounded and only the fits-now constraint
// applies to backfill candidates. With sorted unset the release list is
// copied into planner scratch and ordered by (EstEnd, ID) — the caller's
// slice is never reordered; with sorted set the caller guarantees that order
// and the result is memoized under (headNeed, free, relVer).
func (p *Planner) shadowAndExtra(running []Running, free, headNeed int, sorted bool, relVer uint64) (shadow int64, extra int) {
	avail := free
	if avail >= headNeed {
		return maxInt64, avail - headNeed
	}
	rel := running
	if !sorted {
		rel = append(p.rel[:0], running...)
		p.rel = rel
		sort.Slice(rel, func(i, j int) bool { return relLess(rel[i], rel[j]) })
	} else if p.shadowValid && p.shadowHeadNeed == headNeed && p.shadowFree == free && p.shadowRelVer == relVer {
		return p.shadowTime, p.shadowExtra
	}
	shadow, extra = maxInt64, 0
	for _, r := range rel {
		avail += r.Nodes
		if avail >= headNeed {
			shadow, extra = r.EstEnd, avail-headNeed
			break
		}
	}
	if sorted {
		p.shadowValid = true
		p.shadowHeadNeed = headNeed
		p.shadowFree = free
		p.shadowRelVer = relVer
		p.shadowTime = shadow
		p.shadowExtra = extra
	}
	return shadow, extra
}

// minStart is the smallest node count on which j can be started.
func minStart(j *job.Job) int {
	if j.Class == job.Malleable {
		return j.MinSize
	}
	return j.Size
}

// chooseSize picks the start size given available nodes: fixed jobs take
// their size; malleable jobs take the largest size that fits.
func chooseSize(j *job.Job, avail int) int {
	if j.Class != job.Malleable {
		return j.Size
	}
	if avail >= j.Size {
		return j.Size
	}
	return avail // >= MinSize, checked by the caller
}

// estimatedWall returns the scheduler-visible wall time of starting j now on
// n nodes.
func estimatedWall(j *job.Job, n int) int64 {
	if j.Class == job.Malleable {
		return j.EstimatedMalleableWall(n)
	}
	return j.EstimatedWallIfStarted()
}

// chooseBackfillSize picks a feasible backfill size for j, or reports that
// none exists. usedExtra reports that the job relies on the head's
// extra-node slack (it will still be running at the shadow time).
//
// Feasibility of size n: n <= own+free+reservedExtra now, and either the
// estimated end is before the shadow time, or the draw beyond the job's own
// reservation fits within the head's extra slack plus the shared reserved
// capacity — both invisible to the head job (private reservations never
// counted against it, and reserved nodes host only preemptable squatters it
// can displace). For malleable jobs the estimated wall is non-increasing in
// n, so the largest candidate is optimal under the time rule; when only the
// extra rule admits the job, the largest size it admits is own+extra+
// reservedExtra. (The pre-fix fallback capped at own+extra, ignoring the
// reserved headroom the fits-now rule already admitted — undersizing every
// malleable backfill whenever on-demand reservations existed.)
func chooseBackfillSize(now int64, j *job.Job, free, own, reservedExtra int, shadow int64, extra int, flexible bool) (size int, usedExtra, ok bool) {
	capacity := own + free + reservedExtra
	if !flexible || j.Class != job.Malleable {
		size = j.Size
		if size > capacity {
			return 0, false, false
		}
		if shadow == maxInt64 || now+estimatedWall(j, size) <= shadow {
			return size, false, true
		}
		if size-own <= extra+reservedExtra {
			return size, true, true
		}
		return 0, false, false
	}
	upper := j.Size
	if upper > capacity {
		upper = capacity
	}
	if upper < j.MinSize {
		return 0, false, false
	}
	// The time rule is easiest at the largest size.
	if shadow == maxInt64 || now+estimatedWall(j, upper) <= shadow {
		return upper, false, true
	}
	// Time rule fails at every size; fall back to the extra-node rule.
	n := own + extra + reservedExtra
	if n > upper {
		n = upper
	}
	if n >= j.MinSize {
		return n, true, true
	}
	return 0, false, false
}
