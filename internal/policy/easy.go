package policy

import (
	"sort"

	"hybridsched/internal/job"
)

// Running describes a running job for backfill planning: when the scheduler
// expects its nodes back (estimate-based, never the actual end) and how many
// nodes it holds.
type Running struct {
	EstEnd int64
	Nodes  int
}

// Start is a planner decision: start job J on Size nodes now.
type Start struct {
	J    *job.Job
	Size int
}

// maxInt64 stands in for an unbounded shadow time.
const maxInt64 = int64(^uint64(0) >> 1)

// Planner computes EASY-backfilling plans with reusable scratch buffers, so a
// scheduler invoking it once per event allocates nothing in steady state. The
// zero value is ready to use. A Planner is not safe for concurrent use, and
// each PlanEASY call invalidates the slice returned by the previous one.
type Planner struct {
	starts []Start
	rel    []Running
}

// PlanEASY computes the set of waiting jobs to start now under FCFS/EASY
// semantics (Mu'alem & Feitelson, TPDS'01):
//
//  1. Jobs start from the head of the (already ordered) queue while they fit
//     in the free pool.
//  2. The first job that does not fit gets a reservation at the shadow time —
//     the earliest instant at which enough running jobs will have released
//     nodes (by their estimates).
//  3. Jobs behind it may backfill if they fit now and either finish (by their
//     estimate) before the shadow time or use only nodes the head job will
//     not need (the "extra" nodes).
//
// Malleable jobs are sized greedily: the largest feasible size wins; a
// malleable head job only needs its minimum size to start.
//
// ownReserve reports nodes privately reserved for a specific waiting job —
// the directed returns of the paper's on-demand completion rule and the
// partial gathers of an on-demand job that could not start instantly. A job
// consumes its own reservation before touching the free pool, and private
// nodes never count against the head job's extra-node slack. nil means no
// private reservations.
//
// backfillExtra adds shared reserved-node capacity usable by backfill
// candidates only (paper §III-B.1: nodes reserved for a future on-demand job
// may host backfill jobs that are preempted the moment it arrives); the queue
// head never starts on that capacity.
// flexible enables malleable sizing: when false (the Table II baseline:
// "no special treatments"), malleable jobs are scheduled rigidly at their
// maximum size.
//
// The returned slice is owned by the Planner and valid until its next call.
func (p *Planner) PlanEASY(now int64, queue []*job.Job, running []Running, free, backfillExtra int, ownReserve func(*job.Job) int, flexible bool) []Start {
	own := func(j *job.Job) int {
		if ownReserve == nil {
			return 0
		}
		return ownReserve(j)
	}
	if !flexible {
		return p.planEASYFixed(now, queue, running, free, backfillExtra, own)
	}

	starts := p.starts[:0]
	idx := 0

	// Phase 1: run the head of the queue while it fits.
	for idx < len(queue) {
		j := queue[idx]
		avail := free + own(j)
		if minStart(j) > avail {
			break
		}
		size := chooseSize(j, avail)
		starts = append(starts, Start{J: j, Size: size})
		fromOwn := own(j)
		if fromOwn > size {
			fromOwn = size
		}
		free -= size - fromOwn
		idx++
	}
	if idx >= len(queue) {
		p.starts = starts
		return starts
	}

	// Phase 2: reservation for the blocked head. The head's own reservation
	// reduces what it needs from the free pool and future releases.
	head := queue[idx]
	headNeed := minStart(head) - own(head)
	shadow, extra := p.shadowAndExtra(running, free, headNeed)

	// Phase 3: backfill the rest of the queue in priority order.
	for _, j := range queue[idx+1:] {
		// On-demand jobs never run on other jobs' reserved capacity: a
		// squatter is preemptable, and on-demand jobs must not be.
		bfExtra := backfillExtra
		if j.Class == job.OnDemand {
			bfExtra = 0
		}
		size, usedExtra, ok := chooseBackfillSize(now, j, free, own(j), bfExtra, shadow, extra)
		if !ok {
			continue
		}
		starts = append(starts, Start{J: j, Size: size})
		// Consumption order: own reservation, then free pool, then shared
		// reserved capacity.
		rest := size - own(j)
		if rest < 0 {
			rest = 0
		}
		fromFree := rest
		if fromFree > free {
			backfillExtra -= fromFree - free
			fromFree = free
		}
		free -= fromFree
		if usedExtra {
			extra -= fromFree
			if extra < 0 {
				extra = 0
			}
		}
	}
	p.starts = starts
	return starts
}

// PlanEASY is the allocation-per-call form of Planner.PlanEASY, retained for
// one-shot callers and the engine's naive reference path.
func PlanEASY(now int64, queue []*job.Job, running []Running, free, backfillExtra int, ownReserve func(*job.Job) int, flexible bool) []Start {
	var p Planner
	return p.PlanEASY(now, queue, running, free, backfillExtra, ownReserve, flexible)
}

// planEASYFixed is PlanEASY with every job treated as fixed-size (malleable
// jobs at their maximum). It shares the same shadow/extra logic via the
// rigid branch of the size chooser.
func (p *Planner) planEASYFixed(now int64, queue []*job.Job, running []Running, free, backfillExtra int, own func(*job.Job) int) []Start {
	starts := p.starts[:0]
	idx := 0
	for idx < len(queue) {
		j := queue[idx]
		if j.Size > free+own(j) {
			break
		}
		starts = append(starts, Start{J: j, Size: j.Size})
		fromOwn := own(j)
		if fromOwn > j.Size {
			fromOwn = j.Size
		}
		free -= j.Size - fromOwn
		idx++
	}
	if idx >= len(queue) {
		p.starts = starts
		return starts
	}
	head := queue[idx]
	shadow, extra := p.shadowAndExtra(running, free, head.Size-own(head))
	for _, j := range queue[idx+1:] {
		bfExtra := backfillExtra
		if j.Class == job.OnDemand {
			bfExtra = 0
		}
		size := j.Size
		if size > free+own(j)+bfExtra {
			continue
		}
		var wall int64
		if j.Class == job.Malleable {
			wall = j.EstimatedMalleableWall(size)
		} else {
			wall = j.EstimatedWallIfStarted()
		}
		usedExtra := false
		if shadow != maxInt64 && now+wall > shadow {
			fromFree := size - own(j)
			if fromFree < 0 {
				fromFree = 0
			}
			if fromFree > free {
				fromFree = free
			}
			if fromFree > extra {
				continue
			}
			usedExtra = true
		}
		starts = append(starts, Start{J: j, Size: size})
		rest := size - own(j)
		if rest < 0 {
			rest = 0
		}
		fromFree := rest
		if fromFree > free {
			backfillExtra -= fromFree - free
			fromFree = free
		}
		free -= fromFree
		if usedExtra {
			extra -= fromFree
			if extra < 0 {
				extra = 0
			}
		}
	}
	p.starts = starts
	return starts
}

// shadowAndExtra computes the head job's reservation: the shadow time at
// which headNeed nodes become available (estimate-based), and the number of
// extra nodes left over at that instant beyond the head's need. If the head
// can never be satisfied from running-job releases (e.g. reservations hold
// nodes back), the shadow is unbounded and only the fits-now constraint
// applies to backfill candidates. The release list is copied into planner
// scratch before sorting, so the caller's slice is never reordered.
func (p *Planner) shadowAndExtra(running []Running, free, headNeed int) (shadow int64, extra int) {
	avail := free
	if avail >= headNeed {
		return maxInt64, avail - headNeed
	}
	rel := append(p.rel[:0], running...)
	p.rel = rel
	sort.Slice(rel, func(i, j int) bool { return rel[i].EstEnd < rel[j].EstEnd })
	for _, r := range rel {
		avail += r.Nodes
		if avail >= headNeed {
			return r.EstEnd, avail - headNeed
		}
	}
	return maxInt64, 0
}

// minStart is the smallest node count on which j can be started.
func minStart(j *job.Job) int {
	if j.Class == job.Malleable {
		return j.MinSize
	}
	return j.Size
}

// chooseSize picks the start size given available nodes: fixed jobs take
// their size; malleable jobs take the largest size that fits.
func chooseSize(j *job.Job, avail int) int {
	if j.Class != job.Malleable {
		return j.Size
	}
	if avail >= j.Size {
		return j.Size
	}
	return avail // >= MinSize, checked by the caller
}

// estimatedWall returns the scheduler-visible wall time of starting j now on
// n nodes.
func estimatedWall(j *job.Job, n int) int64 {
	if j.Class == job.Malleable {
		return j.EstimatedMalleableWall(n)
	}
	return j.EstimatedWallIfStarted()
}

// chooseBackfillSize picks a feasible backfill size for j, or reports that
// none exists. usedExtra reports that the job relies on the head's
// extra-node slack (it will still be running at the shadow time).
//
// Feasibility of size n: n <= own+free+reservedExtra now, and either the
// estimated end is before the shadow time, or the job's free-pool draw
// min(n-own, free) fits within the head's extra nodes (private and shared
// reserved nodes are invisible to the head). For malleable jobs the
// estimated wall is non-increasing in n, so the largest candidate is optimal
// for the time rule; the extra rule caps the free-pool draw at extra.
func chooseBackfillSize(now int64, j *job.Job, free, own, reservedExtra int, shadow int64, extra int) (size int, usedExtra, ok bool) {
	cap := own + free + reservedExtra
	upper := j.Size
	if upper > cap {
		upper = cap
	}
	if upper < minStart(j) {
		return 0, false, false
	}
	freeDraw := func(n int) int {
		d := n - own
		if d < 0 {
			d = 0
		}
		if d > free {
			d = free
		}
		return d
	}
	if j.Class != job.Malleable {
		size = j.Size
		if shadow == maxInt64 || now+estimatedWall(j, size) <= shadow {
			return size, false, true
		}
		if freeDraw(size) <= extra {
			return size, true, true
		}
		return 0, false, false
	}
	// Malleable: the time rule is easiest at the largest size.
	if shadow == maxInt64 || now+estimatedWall(j, upper) <= shadow {
		return upper, false, true
	}
	// Time rule fails at every size; fall back to the extra-node rule.
	if free <= extra {
		// Any free-pool draw fits inside the extra slack.
		return upper, true, true
	}
	n := extra + own
	if n > upper {
		n = upper
	}
	if n >= j.MinSize {
		return n, true, true
	}
	return 0, false, false
}
