package runner

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"hybridsched/internal/simtime"
	"hybridsched/internal/trace"
	"hybridsched/internal/workload"
)

// tinyGrid builds a small but real mechanism × seed grid (512 nodes, 1 week)
// that exercises trace sharing: every mechanism of one seed replays the same
// generated trace.
func tinyGrid(t testing.TB) []Spec {
	t.Helper()
	var specs []Spec
	for _, mech := range []string{"baseline", "N&PAA", "CUA&SPAA", "CUP&SPAA"} {
		for s := int64(1); s <= 2; s++ {
			specs = append(specs, Spec{
				Group:     "test",
				Variant:   "W5",
				Mechanism: mech,
				Nodes:     512,
				Workload: workload.Config{
					Seed: s, Nodes: 512, Weeks: 1,
					MinJobSize:  16,
					SizeBuckets: []int{16, 32, 64, 128},
					SizeWeights: []float64{0.4, 0.3, 0.2, 0.1},
				},
			})
		}
	}
	return specs
}

// serialize renders the sweep in both emitter formats for byte comparison.
func serialize(t *testing.T, s Sweep) (string, string) {
	t.Helper()
	var j, c bytes.Buffer
	if err := s.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCSV(&c); err != nil {
		t.Fatal(err)
	}
	return j.String(), c.String()
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	specs := tinyGrid(t)
	serial := Run(specs, Options{Workers: 1})
	if err := serial.Err(); err != nil {
		t.Fatal(err)
	}
	j1, c1 := serialize(t, serial)
	for _, workers := range []int{2, 8} {
		par := Run(specs, Options{Workers: workers})
		if err := par.Err(); err != nil {
			t.Fatal(err)
		}
		jN, cN := serialize(t, par)
		if jN != j1 {
			t.Fatalf("workers=%d JSON differs from workers=1", workers)
		}
		if cN != c1 {
			t.Fatalf("workers=%d CSV differs from workers=1", workers)
		}
	}
}

func TestPanicIsolation(t *testing.T) {
	specs := tinyGrid(t)[:4]
	runHook = func(s Spec) {
		if s.Mechanism == "N&PAA" {
			panic("injected cell crash")
		}
	}
	defer func() { runHook = nil }()
	sweep := Run(specs, Options{Workers: 4})
	if got := sweep.Failed(); got != 2 {
		t.Fatalf("failed cells = %d, want 2 (both N&PAA seeds)", got)
	}
	for _, res := range sweep.Results {
		if res.Spec.Mechanism == "N&PAA" {
			if !res.Failed() || !strings.Contains(res.Err, "injected cell crash") {
				t.Fatalf("panicking cell not captured: %+v", res.Err)
			}
		} else {
			if res.Failed() {
				t.Fatalf("healthy cell %s failed: %s", res.Spec.Key(), res.Err)
			}
			if res.Report.Jobs == 0 {
				t.Fatalf("healthy cell %s has empty report", res.Spec.Key())
			}
		}
	}
	if sweep.Err() == nil {
		t.Fatal("Err() must surface the first failed cell")
	}
}

func TestErrorIsolation(t *testing.T) {
	specs := tinyGrid(t)[:2]
	bad := specs[0]
	bad.Mechanism = "NOPE&NOPE"
	sweep := Run(append([]Spec{bad}, specs...), Options{Workers: 2})
	if sweep.Failed() != 1 {
		t.Fatalf("failed = %d, want 1", sweep.Failed())
	}
	if !sweep.Results[0].Failed() {
		t.Fatal("unknown mechanism must fail its own cell")
	}
	if sweep.Results[1].Failed() || sweep.Results[2].Failed() {
		t.Fatal("healthy cells must complete despite a failing sibling")
	}
}

func TestTraceCacheSharesRecords(t *testing.T) {
	cache := newTraceCache(true)
	cfg := workload.Config{Seed: 7, Nodes: 512, Weeks: 1,
		MinJobSize:  16,
		SizeBuckets: []int{16, 64},
		SizeWeights: []float64{0.5, 0.5},
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cache.records(Spec{Workload: cfg}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	a, err := cache.records(Spec{Workload: cfg})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := cache.records(Spec{Workload: cfg})
	if cache.gens != 1 {
		t.Fatalf("generator ran %d times for one config, want 1", cache.gens)
	}
	if len(a) == 0 || &a[0] != &b[0] {
		t.Fatal("cache must hand out the same shared record slice")
	}
	// A different seed is a different trace.
	cfg2 := cfg
	cfg2.Seed = 8
	if _, err := cache.records(Spec{Workload: cfg2}); err != nil {
		t.Fatal(err)
	}
	if cache.gens != 2 {
		t.Fatalf("generator ran %d times for two configs, want 2", cache.gens)
	}
}

func TestTraceCachePanicPoisonsEntry(t *testing.T) {
	// A generator panic must fail every cell sharing the trace, not hand
	// silent nil records to the siblings that arrive after the sync.Once.
	generate = func(workload.Config) ([]trace.Record, error) { panic("generator crash") }
	defer func() { generate = workload.Generate }()
	cache := newTraceCache(true)
	cfg := workload.Config{Seed: 7, Nodes: 512, Weeks: 1,
		MinJobSize:  16,
		SizeBuckets: []int{16, 64},
		SizeWeights: []float64{0.5, 0.5},
	}
	for i := 0; i < 2; i++ {
		recs, err := cache.records(Spec{Workload: cfg})
		if err == nil || !strings.Contains(err.Error(), "generator crash") || recs != nil {
			t.Fatalf("call %d: poisoned entry returned (%d records, %v), want generator-crash error", i, len(recs), err)
		}
	}
}

func TestNoTraceCacheRegenerates(t *testing.T) {
	cache := newTraceCache(false)
	cfg := workload.Config{Seed: 7, Nodes: 512, Weeks: 1,
		MinJobSize:  16,
		SizeBuckets: []int{16, 64},
		SizeWeights: []float64{0.5, 0.5},
	}
	for i := 0; i < 3; i++ {
		if _, err := cache.records(Spec{Workload: cfg}); err != nil {
			t.Fatal(err)
		}
	}
	if cache.gens != 3 {
		t.Fatalf("disabled cache generated %d times, want 3", cache.gens)
	}
}

func TestDeriveSeed(t *testing.T) {
	a := DeriveSeed("fig6", "W2", "CUA&SPAA")
	if a <= 0 {
		t.Fatalf("seed must be positive, got %d", a)
	}
	if b := DeriveSeed("fig6", "W2", "CUA&SPAA"); b != a {
		t.Fatalf("unstable: %d vs %d", a, b)
	}
	if b := DeriveSeed("fig6", "W2", "CUA&PAA"); b == a {
		t.Fatal("different coordinates must derive different seeds")
	}
	// The separator keeps part boundaries significant.
	if DeriveSeed("ab", "c") == DeriveSeed("a", "bc") {
		t.Fatal("part boundaries must matter")
	}
}

func TestSpecDefaults(t *testing.T) {
	s := Spec{Group: "g", Variant: "v"}.withDefaults()
	if s.Mechanism != "CUA&SPAA" || s.Policy != "fcfs" || s.Nodes != 4392 {
		t.Fatalf("defaults wrong: %+v", s)
	}
	if s.Workload.Seed == 0 {
		t.Fatal("zero seed must be derived from coordinates")
	}
	if s.Workload.Seed != DeriveSeed("g", "v", "CUA&SPAA") {
		t.Fatal("derived seed must come from the cell coordinates")
	}
	if s.MTBF == 0 || s.CkptFreqMult != 1.0 {
		t.Fatalf("knob defaults wrong: %+v", s)
	}
	// Workload.Nodes implies Spec.Nodes.
	s2 := Spec{Workload: workload.Config{Nodes: 512}}.withDefaults()
	if s2.Nodes != 512 {
		t.Fatalf("Nodes = %d, want 512 from workload config", s2.Nodes)
	}
}

func TestEmitters(t *testing.T) {
	specs := tinyGrid(t)[:2]
	sweep := Run(specs, Options{Workers: 2})
	if err := sweep.Err(); err != nil {
		t.Fatal(err)
	}
	j, c := serialize(t, sweep)
	if !strings.Contains(j, `"mechanism": "baseline"`) {
		t.Fatalf("JSON missing mechanism field:\n%s", j)
	}
	if strings.Contains(j, "elapsed") || strings.Contains(j, "decision") {
		t.Fatal("JSON must exclude wall-clock fields")
	}
	lines := strings.Split(strings.TrimSpace(c), "\n")
	if len(lines) != 1+len(specs) {
		t.Fatalf("CSV has %d lines, want header + %d rows", len(lines), len(specs))
	}
	if !strings.HasPrefix(lines[0], "group,variant,mechanism,policy,seed,nodes") {
		t.Fatalf("CSV header wrong: %s", lines[0])
	}
	rows := sweep.Rows()
	if rows[0].Jobs == 0 || rows[0].Util <= 0 || rows[0].Util > 1 {
		t.Fatalf("row metrics wrong: %+v", rows[0])
	}
}

func TestProgressOutput(t *testing.T) {
	var buf bytes.Buffer
	sweep := Run(tinyGrid(t)[:2], Options{Workers: 2, Progress: &buf})
	if err := sweep.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "[1/2]") || !strings.Contains(out, "[2/2]") {
		t.Fatalf("progress missing per-cell lines:\n%s", out)
	}
	if !strings.Contains(out, "2 cells (0 failed)") || !strings.Contains(out, "2 workers") {
		t.Fatalf("progress missing summary:\n%s", out)
	}
}

func TestEmptySweep(t *testing.T) {
	sweep := Run(nil, Options{Workers: 4})
	if len(sweep.Results) != 0 || sweep.Err() != nil || sweep.Failed() != 0 {
		t.Fatalf("empty sweep wrong: %+v", sweep)
	}
	var c bytes.Buffer
	if err := sweep.WriteCSV(&c); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(c.String(), "group,") {
		t.Fatal("empty CSV must still carry the header")
	}
}

// sourceGrid builds a grid whose cells share one source spec, so the spec
// must be materialized exactly once.
func sourceGrid() []Spec {
	const spec = "synthetic:seed=9,weeks=1,nodes=512|relabel:paper|scale:1.1"
	var specs []Spec
	for _, mech := range []string{"baseline", "N&PAA", "CUA&SPAA"} {
		specs = append(specs, Spec{
			Group:     "srctest",
			Variant:   "mix",
			Mechanism: mech,
			Nodes:     512,
			Source:    spec,
		})
	}
	return specs
}

func TestSourceSpecCellsShareOneMaterialization(t *testing.T) {
	specs := sourceGrid()
	cache := newTraceCache(true)
	for _, s := range specs {
		if _, err := cache.records(s.withDefaults()); err != nil {
			t.Fatal(err)
		}
	}
	if cache.gens != 1 {
		t.Fatalf("source spec materialized %d times for %d cells, want 1", cache.gens, len(specs))
	}
	// A different spec is a different trace.
	other := specs[0]
	other.Source = "synthetic:seed=10,weeks=1,nodes=512"
	if _, err := cache.records(other.withDefaults()); err != nil {
		t.Fatal(err)
	}
	if cache.gens != 2 {
		t.Fatalf("distinct specs share an entry: gens=%d", cache.gens)
	}
}

func TestSourceSpecSweepDeterministicAcrossWorkers(t *testing.T) {
	a := Run(sourceGrid(), Options{Workers: 1})
	b := Run(sourceGrid(), Options{Workers: 4})
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}
	ja, ca := serialize(t, a)
	jb, cb := serialize(t, b)
	if ja != jb || ca != cb {
		t.Error("source-backed sweep output differs across worker counts")
	}
	if !strings.Contains(ja, "\"source\"") {
		t.Error("emitted rows should carry the source spec")
	}
}

func TestSourceSpecPrecedenceOverWorkload(t *testing.T) {
	// When both Source and Workload are set, Source wins and the workload
	// seed is left alone (no derived-seed noise in the emitted rows).
	s := Spec{Mechanism: "baseline", Nodes: 512,
		Source: "synthetic:seed=3,weeks=1,nodes=512"}.withDefaults()
	if s.Workload.Seed != 0 {
		t.Errorf("source-backed cell derived a workload seed %d", s.Workload.Seed)
	}
	if !strings.Contains(s.Key(), "src=") {
		t.Errorf("Key() should name the source, got %q", s.Key())
	}
	bad := Spec{Mechanism: "baseline", Source: "nosuchhead:x"}
	sweep := Run([]Spec{bad}, Options{Workers: 1})
	if sweep.Err() == nil {
		t.Error("unparseable source spec must fail the cell")
	}
}

func TestFaultSeedIndependentOfMechanism(t *testing.T) {
	// Every mechanism replaying one workload must face the identical failure
	// process, on both the generated and the source-backed path.
	gen := func(mech string) Spec {
		return Spec{Group: "g", Variant: "v", Mechanism: mech, FaultMTBF: 3600,
			Workload: workload.Config{Seed: 7, Nodes: 256, Weeks: 1}}.withDefaults()
	}
	if a, b := gen("baseline"), gen("CUA&SPAA"); a.FaultSeed != b.FaultSeed || a.FaultSeed == 0 {
		t.Fatalf("generated fault seeds diverge across mechanisms: %d vs %d", a.FaultSeed, b.FaultSeed)
	}
	src := func(mech string) Spec {
		return Spec{Group: "g", Variant: mech, Mechanism: mech, FaultMTBF: 3600,
			Source: "synthetic:seed=1,weeks=1,nodes=256"}.withDefaults()
	}
	a, b := src("baseline"), src("CUA&SPAA")
	if a.FaultSeed != b.FaultSeed || a.FaultSeed == 0 {
		t.Fatalf("source fault seeds diverge across mechanisms: %d vs %d", a.FaultSeed, b.FaultSeed)
	}
	// Source cells defer the horizon to runOne (trace span not yet known).
	if a.FaultHorizon != 0 {
		t.Fatalf("source cell resolved horizon %d in withDefaults", a.FaultHorizon)
	}
	if g := gen("baseline"); g.FaultHorizon != int64(1+4)*simtime.Week {
		t.Fatalf("generated horizon %d, want %d", g.FaultHorizon, int64(5)*simtime.Week)
	}
}

func TestSourceCellFaultHorizonCoversTrace(t *testing.T) {
	// A fault-enabled source cell must inject across the whole replayed
	// trace: the resolved horizon (echoed in the result spec) covers the
	// trace span plus drain room.
	spec := Spec{Mechanism: "baseline", Nodes: 256, FaultMTBF: 6 * 3600, FaultMeanRepair: 600,
		Source: "synthetic:seed=3,weeks=2,nodes=256"}
	sweep := Run([]Spec{spec}, Options{Workers: 1})
	if err := sweep.Err(); err != nil {
		t.Fatal(err)
	}
	res := sweep.Results[0]
	if res.Spec.FaultHorizon < 2*simtime.Week {
		t.Fatalf("resolved horizon %d does not cover the 2-week trace", res.Spec.FaultHorizon)
	}
	if res.Report.FailuresInjected == 0 {
		t.Fatal("no failures struck over the source replay")
	}
}
