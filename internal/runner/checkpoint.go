package runner

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"hybridsched/internal/metrics"
	"hybridsched/internal/sim"
)

// defaultCheckpointEvery is the snapshot interval, in dispatched events, when
// Options.CheckpointDir is set without an explicit interval. At the paper's
// scale a cell dispatches a few thousand events per simulated day, so this
// checkpoints long cells every few simulated weeks while costing short cells
// nothing.
const defaultCheckpointEvery = 50000

// ckptState is the resolved checkpoint configuration of one Run call.
type ckptState struct {
	dir    string
	every  int
	resume bool
}

// ckpt resolves the checkpoint options; nil when checkpointing is off.
func (o Options) ckpt() *ckptState {
	if o.CheckpointDir == "" {
		return nil
	}
	every := o.CheckpointEvery
	if every <= 0 {
		every = defaultCheckpointEvery
	}
	return &ckptState{dir: o.CheckpointDir, every: every, resume: o.Resume}
}

// cellID names a cell's checkpoint files: a stable hash of the fully resolved
// spec, so any knob change — policy, node count, drains, fault process —
// yields fresh files instead of resuming foreign state.
func cellID(s Spec) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", s)
	return fmt.Sprintf("%016x", h.Sum64())
}

func (c *ckptState) snapPath(s Spec) string {
	return filepath.Join(c.dir, "cell-"+cellID(s)+".snap")
}

func (c *ckptState) donePath(s Spec) string {
	return filepath.Join(c.dir, "cell-"+cellID(s)+".done.json")
}

// atomicWrite persists data via a temp file + rename, so a kill mid-write
// can never leave a half-written file under the final name. (A torn snapshot
// would be rejected by its CRC anyway; a torn done file by its JSON parse.)
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// loadDone returns the cell's persisted final report, if a valid done file
// exists.
func (c *ckptState) loadDone(s Spec) (metrics.Report, bool) {
	data, err := os.ReadFile(c.donePath(s))
	if err != nil {
		return metrics.Report{}, false
	}
	var rep metrics.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return metrics.Report{}, false
	}
	return rep, true
}

// tryRestore loads the cell's snapshot into the freshly built engine.
// Anything wrong — no file, torn write, version skew, spec drift the hash
// missed — falls back to a fresh run, which is always correct, just slower.
func (c *ckptState) tryRestore(s Spec, e *sim.Engine) bool {
	data, err := os.ReadFile(c.snapPath(s))
	if err != nil {
		return false
	}
	return e.LoadSnapshot(data) == nil
}

// finish persists the cell's final report and retires its snapshot.
func (c *ckptState) finish(s Spec, rep metrics.Report) error {
	data, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	if err := atomicWrite(c.donePath(s), data); err != nil {
		return err
	}
	os.Remove(c.snapPath(s))
	return nil
}

// runCheckpointed drives the engine to completion, persisting a snapshot
// every c.every dispatched events. Interval boundaries are absolute multiples
// of the interval, so a resumed cell checkpoints at the same instants the
// uninterrupted one would have. A scheduler that cannot snapshot (no
// SnapshotMechanism, custom RepairTime) downgrades the cell to an ordinary
// uncheckpointed run after the first attempt; I/O failures abort the cell —
// a checkpoint the operator asked for that cannot be written should be loud.
func runCheckpointed(e *sim.Engine, c *ckptState, s Spec) (metrics.Report, error) {
	every := c.every
	next := (e.DispatchedCount()/every + 1) * every
	disabled := false
	for {
		more, err := e.Step()
		if err != nil {
			return metrics.Report{}, err
		}
		if !more {
			break
		}
		if !disabled && e.DispatchedCount() >= next {
			blob, err := e.Snapshot()
			if err != nil {
				disabled = true
				continue
			}
			if err := atomicWrite(c.snapPath(s), blob); err != nil {
				return metrics.Report{}, fmt.Errorf("write checkpoint: %v", err)
			}
			next = (e.DispatchedCount()/every + 1) * every
		}
	}
	return e.Report(), nil
}
