// Package runner executes experiment sweeps — (mechanism × notice-mix ×
// policy × seed × config-ablation) grids — across a bounded pool of worker
// goroutines while keeping every result bit-identical to a serial run.
//
// A sweep is a flat slice of Spec cells. Each cell is self-contained: it
// names its workload generator config, scheduling mechanism, queue policy,
// and system knobs, so cells can execute in any order on any worker. The
// runner guarantees:
//
//   - Determinism. Every random quantity of a cell derives from the cell's
//     own coordinates (the workload seed, or DeriveSeed of the coordinate
//     strings when no seed is given), never from scheduling order, so the
//     same grid produces byte-identical serialized reports under any worker
//     count. Results are returned in grid order, not completion order.
//   - Failure isolation. A cell that returns an error or panics is recorded
//     as a failed Result; the rest of the sweep completes.
//   - Trace sharing. Workload traces are memoized by generator config — and
//     source-backed cells by their spec string — so each unique trace is
//     materialized once and shared read-only by every cell that replays it
//     (e.g. the seven mechanisms of one Figure 6 column, or every mechanism
//     replaying one SWF import).
//
// Emitters serialize a finished Sweep as JSON or CSV (see Row); wall-clock
// measurements are excluded from those forms so emitted sweeps are stable
// across machines and worker counts.
package runner

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"hybridsched/internal/checkpoint"
	"hybridsched/internal/core"
	"hybridsched/internal/faults"
	"hybridsched/internal/metrics"
	"hybridsched/internal/registry"
	"hybridsched/internal/sim"
	"hybridsched/internal/simtime"
	"hybridsched/internal/source"
	"hybridsched/internal/trace"
	"hybridsched/internal/workload"
)

// Spec is the declarative coordinate of one sweep cell: everything needed to
// generate (or reuse) a workload trace and replay it under one scheduler
// configuration. The zero values of the knob fields take the paper-faithful
// defaults (4392 nodes, FCFS, 24 h MTBF, Daly-optimal checkpointing).
type Spec struct {
	// Group and Variant locate the cell in an experiment grid, e.g.
	// ("fig6", "W2"). They aggregate replicas into averaged data points and
	// label emitter rows; the runner itself only uses them for seed
	// derivation and progress lines.
	Group   string `json:"group,omitempty"`
	Variant string `json:"variant,omitempty"`

	// Mechanism is "baseline", one of the six core mechanism names, or any
	// scheduler registered with registry.RegisterScheduler.
	Mechanism string `json:"mechanism"`
	// Policy orders the waiting queue: fcfs (default), sjf, ljf, wfp3, or
	// any ordering registered with registry.RegisterPolicy.
	Policy string `json:"policy,omitempty"`
	// Nodes is the simulated system size; 0 takes Workload.Nodes, then 4392.
	Nodes int `json:"nodes,omitempty"`

	// Source, when non-empty, names the cell's workload as a source spec
	// (see internal/source: "swf:theta.swf|relabel:paper|scale:1.2"). It
	// takes precedence over Workload. Cells with identical Source strings
	// share one materialized trace, exactly like identical Workload configs;
	// file-backed specs are therefore read once per sweep.
	Source string `json:"source,omitempty"`

	// Workload configures the trace generator. A zero Seed is filled with
	// DeriveSeed(Group, Variant, Mechanism) so ad-hoc grids stay
	// deterministic without hand-assigned seeds. Ignored when Source is set.
	Workload workload.Config `json:"-"`

	// Core configures the mechanism (release threshold, directed return,
	// backfill-reserved). Zero value means core.DefaultConfig().
	Core core.Config `json:"-"`

	// MTBF is the system mean time between failures in seconds, driving the
	// Daly checkpoint interval (default 24 h).
	MTBF float64 `json:"-"`
	// CkptFreqMult scales the checkpoint interval around the Daly optimum
	// (Fig. 7); default 1.0.
	CkptFreqMult float64 `json:"-"`
	// BackfillReserved lets backfill jobs squat on reserved nodes (§III-B.1).
	BackfillReserved bool `json:"-"`
	// Validate checks the cluster partition invariant after every event.
	Validate bool `json:"-"`
	// MaxSimTime aborts a run whose virtual clock passes this bound (0 = none).
	MaxSimTime int64 `json:"-"`

	// FaultMTBF, when positive, wraps the cell's mechanism in the fault
	// injector at this system MTBF (seconds): failures strike uniformly
	// random nodes on an exponential timeline and interrupt whatever holds
	// them.
	FaultMTBF float64 `json:"fault_mtbf,omitempty"`
	// FaultMeanRepair is the mean node repair time in seconds; failed nodes
	// leave service for a drawn repair window. Zero keeps the legacy
	// instant-repair shortcut (capacity never shrinks).
	FaultMeanRepair float64 `json:"fault_repair,omitempty"`
	// FaultSeed drives the failure timeline. Zero derives from the workload
	// seed (or, for source-backed cells, from the source spec string) —
	// never from the mechanism, so every mechanism replaying one workload
	// faces the identical failure process.
	FaultSeed int64 `json:"-"`
	// FaultHorizon bounds the failure timeline in virtual seconds. Zero
	// derives from the workload length (Weeks+4 weeks), or for source-backed
	// cells from the materialized trace's span plus four weeks.
	FaultHorizon int64 `json:"-"`

	// Drains schedules maintenance windows on the cell's engine.
	Drains []DrainSpec `json:"-"`
}

// DrainSpec is one scheduled maintenance window of a cell: up to Nodes nodes
// leave service at Start (free nodes immediately, more as jobs release them)
// and return at Start+Duration. Drains never preempt.
type DrainSpec struct {
	Start    int64
	Duration int64
	Nodes    int
}

// withDefaults fills the paper-faithful defaults into zero fields.
func (s Spec) withDefaults() Spec {
	if s.Mechanism == "" {
		s.Mechanism = "CUA&SPAA"
	}
	if s.Policy == "" {
		s.Policy = "fcfs"
	}
	if s.Nodes == 0 {
		s.Nodes = s.Workload.Nodes
	}
	if s.Nodes == 0 {
		s.Nodes = 4392
	}
	// Source-backed cells leave Workload untouched: the spec is the whole
	// workload identity (and the memo key), so a derived seed would only
	// muddy Key() and the emitted rows.
	if s.Source == "" {
		if s.Workload.Nodes == 0 {
			s.Workload.Nodes = s.Nodes
		}
		if s.Workload.Seed == 0 {
			s.Workload.Seed = DeriveSeed(s.Group, s.Variant, s.Mechanism)
		}
	}
	if s.Core == (core.Config{}) {
		s.Core = core.DefaultConfig()
	}
	if s.MTBF == 0 {
		s.MTBF = 24 * float64(simtime.Hour)
	}
	if s.FaultMTBF > 0 && s.FaultSeed == 0 {
		// The fault seed must not depend on the mechanism: every mechanism
		// replaying one workload sees the same failure timeline, the
		// controlled comparison the resilience grid relies on. Generated
		// cells reuse the workload seed; source cells derive from the spec
		// string alone.
		if s.Source != "" {
			s.FaultSeed = DeriveSeed("faults", s.Source)
		} else {
			s.FaultSeed = s.Workload.Seed
		}
	}
	if s.FaultMTBF > 0 && s.FaultHorizon == 0 && s.Source == "" {
		// Source-backed cells resolve the horizon in runOne instead, once
		// the trace is materialized and its span known.
		weeks := s.Workload.Weeks
		if weeks <= 0 {
			weeks = 4 // the generator's own default trace length
		}
		s.FaultHorizon = int64(weeks+4) * simtime.Week
	}
	if s.CkptFreqMult == 0 {
		s.CkptFreqMult = 1.0
	} else if s.CkptFreqMult < 0 {
		s.CkptFreqMult = 0 // explicit zero: checkpointing disabled
	}
	return s
}

// Key renders the cell coordinates compactly for progress lines and errors.
func (s Spec) Key() string {
	key := s.Mechanism
	if s.Variant != "" {
		key = s.Variant + "/" + key
	}
	if s.Group != "" {
		key = s.Group + "/" + key
	}
	if s.FaultMTBF > 0 {
		key = fmt.Sprintf("%s/mtbf%.0fs", key, s.FaultMTBF)
	}
	if s.Source != "" {
		return fmt.Sprintf("%s/src=%s", key, s.Source)
	}
	return fmt.Sprintf("%s/seed%d", key, s.Workload.Seed)
}

// DeriveSeed hashes coordinate strings into a stable positive seed (FNV-1a),
// so a cell's randomness depends only on where it sits in the grid — never
// on worker count or completion order.
func DeriveSeed(parts ...string) int64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0}) // separator: ("ab","c") != ("a","bc")
	}
	v := int64(h.Sum64() &^ (1 << 63))
	if v == 0 {
		v = 1
	}
	return v
}

// Result is the structured outcome of one cell.
type Result struct {
	// Spec echoes the executed cell with defaults applied (so the actual
	// seed and node count are visible even when derived).
	Spec Spec
	// Report holds the simulation measurements when the cell succeeded.
	Report metrics.Report
	// Err is non-empty when the cell failed; panics are captured here as
	// "panic: ..." and do not abort the sweep.
	Err string
	// ElapsedMS is the cell's wall-clock runtime (excluded from emitters).
	ElapsedMS float64
}

// Failed reports whether the cell errored or panicked.
func (r Result) Failed() bool { return r.Err != "" }

// Sweep is a completed grid execution: one Result per Spec, in grid order.
type Sweep struct {
	Results []Result
	// Workers is the pool size the sweep actually ran with.
	Workers int
	// Wall is the sweep's total wall-clock time.
	Wall time.Duration
}

// Failed counts the cells that errored or panicked.
func (s Sweep) Failed() int {
	n := 0
	for _, r := range s.Results {
		if r.Failed() {
			n++
		}
	}
	return n
}

// Err returns the first cell failure in grid order, or nil if every cell
// succeeded.
func (s Sweep) Err() error {
	for _, r := range s.Results {
		if r.Failed() {
			return fmt.Errorf("runner: cell %s: %s", r.Spec.Key(), r.Err)
		}
	}
	return nil
}

// Options control sweep execution. They never affect results, only speed and
// reporting.
type Options struct {
	// Workers bounds the goroutine pool; <= 0 means runtime.NumCPU().
	Workers int
	// Progress receives one line per completed cell plus a final summary
	// (nil = quiet). Lines appear in completion order.
	Progress io.Writer
	// NoTraceCache disables workload memoization (each cell regenerates its
	// trace; useful only for measuring the cache itself).
	NoTraceCache bool

	// CheckpointDir, when non-empty, persists per-cell progress into this
	// directory: each cell writes an engine snapshot every CheckpointEvery
	// events (cell-<hash>.snap, written atomically and retired on completion)
	// and its final report as cell-<hash>.done.json. Checkpointing never
	// changes results — resumed and uninterrupted sweeps emit byte-identical
	// reports. Cells whose scheduler cannot snapshot run to completion
	// without checkpoints.
	CheckpointDir string
	// CheckpointEvery is the snapshot interval in dispatched events;
	// <= 0 takes a default suited to multi-week cells.
	CheckpointEvery int
	// Resume consults CheckpointDir before executing each cell: a done file
	// short-circuits the cell with its persisted report, a valid snapshot
	// resumes it mid-run, and anything missing or corrupt (a torn write from
	// a killed sweep, a stale format version) falls back to a fresh run.
	Resume bool
}

// runHook, when non-nil, runs before each cell executes. It is a test seam
// for failure-isolation coverage (a hook that panics simulates a crashing
// cell); set it only before calling Run.
var runHook func(Spec)

// Run executes every cell of the grid across the worker pool and returns the
// results in grid order. Cell failures are isolated into their Results (see
// Sweep.Err); Run itself does not fail.
func Run(specs []Spec, opt Options) Sweep {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	start := time.Now()
	results := make([]Result, len(specs))
	ck := opt.ckpt()
	if ck != nil {
		if err := os.MkdirAll(ck.dir, 0o755); err != nil {
			// No directory, no checkpointing: fail every cell up front rather
			// than run the sweep while silently dropping the persistence the
			// caller asked for.
			for i := range specs {
				results[i] = Result{Spec: specs[i].withDefaults(), Err: fmt.Sprintf("checkpoint dir: %v", err)}
			}
			return Sweep{Results: results, Workers: workers, Wall: time.Since(start)}
		}
	}
	if len(specs) > 0 {
		cache := newTraceCache(!opt.NoTraceCache)
		var (
			wg   sync.WaitGroup
			mu   sync.Mutex // guards done + Progress interleaving
			done int
		)
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					res := runOne(specs[i], cache, ck)
					results[i] = res
					if opt.Progress != nil {
						mu.Lock()
						done++
						status := "ok"
						if res.Failed() {
							status = "FAIL: " + res.Err
						}
						fmt.Fprintf(opt.Progress, "runner: [%d/%d] %s %.1fs %s\n",
							done, len(specs), res.Spec.Key(), res.ElapsedMS/1000, status)
						mu.Unlock()
					}
				}
			}()
		}
		for i := range specs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	sweep := Sweep{Results: results, Workers: workers, Wall: time.Since(start)}
	if opt.Progress != nil {
		fmt.Fprintf(opt.Progress, "runner: %d cells (%d failed) in %s with %d workers\n",
			len(specs), sweep.Failed(), sweep.Wall.Round(time.Millisecond), workers)
	}
	return sweep
}

// buildCell materializes one cell's engine from its resolved spec and shared
// trace: jobs with their Daly checkpoint plans, the mechanism (fault-wrapped
// when configured), the queue policy, and any scheduled drains. The returned
// spec echoes fields derived during construction (the source-cell fault
// horizon), which is also why checkpoint file names are computed only after
// this step.
func buildCell(s Spec, recs []trace.Record) (Spec, *sim.Engine, error) {
	jobs := trace.Materialize(recs, func(size int) checkpoint.Plan {
		return checkpoint.NewPlan(size, s.MTBF, s.CkptFreqMult)
	})
	mech, err := registry.NewScheduler(s.Mechanism, registry.SchedulerConfig{
		ReleaseThreshold: s.Core.ReleaseThreshold,
		DirectedReturn:   s.Core.DirectedReturn,
		BackfillReserved: s.Core.BackfillReserved,
	})
	if err != nil {
		return s, nil, err
	}
	if s.FaultMTBF > 0 {
		if s.FaultHorizon == 0 {
			// Source-backed cell: cover the whole replayed trace plus tail
			// room for the queue to drain, so failures do not silently stop
			// partway through a long import.
			var span int64
			for _, r := range recs {
				if r.Submit > span {
					span = r.Submit
				}
			}
			s.FaultHorizon = span + 4*simtime.Week
		}
		mech = faults.Wrap(mech, faults.Config{
			MTBF:       s.FaultMTBF,
			Seed:       s.FaultSeed,
			Horizon:    s.FaultHorizon,
			MeanRepair: s.FaultMeanRepair,
		})
	}
	ord := registry.PolicyByName(s.Policy)
	if ord == nil {
		return s, nil, fmt.Errorf("unknown policy %q (valid: %v)", s.Policy, registry.PolicyNames())
	}
	engine, err := sim.New(sim.Config{
		Nodes:            s.Nodes,
		Policy:           ord,
		BackfillReserved: s.BackfillReserved,
		Validate:         s.Validate,
		MaxSimTime:       s.MaxSimTime,
	}, jobs, mech)
	if err != nil {
		return s, nil, err
	}
	for _, d := range s.Drains {
		if err := engine.ScheduleDrain(d.Start, d.Duration, d.Nodes); err != nil {
			return s, nil, err
		}
	}
	return s, engine, nil
}

// runOne executes a single cell, converting errors and panics into the
// Result so one bad cell cannot kill the sweep.
func runOne(spec Spec, cache *traceCache, ck *ckptState) (res Result) {
	start := time.Now()
	s := spec.withDefaults()
	res.Spec = s
	defer func() {
		res.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
		if p := recover(); p != nil {
			res.Err = fmt.Sprintf("panic: %v", p)
		}
	}()
	if runHook != nil {
		runHook(s)
	}
	recs, err := cache.records(s)
	if err != nil {
		res.Err = err.Error()
		return
	}
	s, engine, err := buildCell(s, recs)
	res.Spec = s
	if err != nil {
		res.Err = err.Error()
		return
	}
	// Checkpoint files are keyed by the fully resolved spec, so the done-file
	// check waited until the last derived field (the source-cell fault
	// horizon) was in place.
	if ck != nil {
		if ck.resume {
			if rep, ok := ck.loadDone(s); ok {
				res.Report = rep
				return
			}
			ck.tryRestore(s, engine)
		}
		rep, err := runCheckpointed(engine, ck, s)
		if err != nil {
			res.Err = err.Error()
			return
		}
		if err := ck.finish(s, rep); err != nil {
			res.Err = fmt.Sprintf("write checkpoint: %v", err)
			return
		}
		res.Report = rep
		return
	}
	rep, err := engine.Run()
	if err != nil {
		res.Err = err.Error()
		return
	}
	res.Report = rep
	return
}

// traceCache memoizes materialized workload traces — synthetic generation
// keyed by normalized generator config, source specs keyed by the spec
// string. Records are immutable after materialization (Materialize only
// reads them), so one trace is safely shared by every cell that replays it;
// cells needing the same in-flight trace block on its sync.Once.
type traceCache struct {
	enabled bool
	mu      sync.Mutex
	entries map[string]*traceEntry
	gens    int // materializations, for tests
}

type traceEntry struct {
	once sync.Once
	recs []trace.Record
	err  error
}

func newTraceCache(enabled bool) *traceCache {
	return &traceCache{enabled: enabled, entries: map[string]*traceEntry{}}
}

// generate is swapped out by tests that need a crashing generator.
var generate = workload.Generate

// materializeSource compiles and drains a source spec into a record slice.
func materializeSource(spec string) ([]trace.Record, error) {
	src, err := source.Parse(spec)
	if err != nil {
		return nil, err
	}
	return source.ReadAll(src)
}

// records resolves a cell's trace: the source spec when set, the synthetic
// generator config otherwise, both through the shared memo.
func (c *traceCache) records(s Spec) ([]trace.Record, error) {
	if s.Source != "" {
		return c.get("source\x00"+s.Source, func() ([]trace.Record, error) {
			return materializeSource(s.Source)
		})
	}
	norm, err := s.Workload.Normalize()
	if err != nil {
		return nil, err
	}
	return c.get(fmt.Sprintf("workload\x00%+v", norm), func() ([]trace.Record, error) {
		return generate(norm)
	})
}

func (c *traceCache) get(key string, gen func() ([]trace.Record, error)) ([]trace.Record, error) {
	if !c.enabled {
		c.mu.Lock()
		c.gens++
		c.mu.Unlock()
		return gen()
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &traceEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		c.mu.Lock()
		c.gens++
		c.mu.Unlock()
		// A panicking generator must poison the entry, not leave it nil-and-
		// no-error: every sibling cell sharing this trace has to fail too.
		defer func() {
			if p := recover(); p != nil {
				e.err = fmt.Errorf("workload generator panic: %v", p)
			}
		}()
		e.recs, e.err = gen()
	})
	return e.recs, e.err
}
