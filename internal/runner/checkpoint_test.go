package runner

import (
	"os"
	"path/filepath"
	"testing"

	"hybridsched/internal/simtime"
	"hybridsched/internal/workload"
)

// ckptGrid is the resume-coverage grid: four cells with faults, repair
// windows, and an overlapping maintenance drain, so resumed cells must carry
// the down pool, drain phases, and the injector's RNG position — the state a
// plain rerun would get wrong.
func ckptGrid() []Spec {
	var specs []Spec
	for _, mech := range []string{"CUA&SPAA", "CUP&PAA"} {
		for s := int64(1); s <= 2; s++ {
			specs = append(specs, Spec{
				Group:     "ckpt",
				Variant:   "W5",
				Mechanism: mech,
				Nodes:     512,
				Workload: workload.Config{
					Seed: s, Nodes: 512, Weeks: 1,
					MinJobSize:  16,
					SizeBuckets: []int{16, 32, 64, 128},
					SizeWeights: []float64{0.4, 0.3, 0.2, 0.1},
				},
				FaultMTBF:       6 * 3600,
				FaultMeanRepair: 2 * 3600,
				Drains: []DrainSpec{
					{Start: 2 * simtime.Day, Duration: simtime.Day, Nodes: 64},
				},
			})
		}
	}
	return specs
}

// referenceRun executes the grid with no checkpointing and returns the two
// emitter serializations every checkpointed variant must reproduce.
func referenceRun(t *testing.T, specs []Spec) (string, string) {
	t.Helper()
	ref := Run(specs, Options{Workers: 2})
	if err := ref.Err(); err != nil {
		t.Fatal(err)
	}
	j, c := serialize(t, ref)
	return j, c
}

// checkResumedRun runs the grid against the prepared checkpoint directory and
// requires the emitted bytes to match the uncheckpointed reference.
func checkResumedRun(t *testing.T, specs []Spec, dir, wantJSON, wantCSV string) {
	t.Helper()
	sweep := Run(specs, Options{Workers: 2, CheckpointDir: dir, CheckpointEvery: 250, Resume: true})
	if err := sweep.Err(); err != nil {
		t.Fatal(err)
	}
	j, c := serialize(t, sweep)
	if j != wantJSON {
		t.Fatal("resumed sweep JSON differs from uninterrupted reference")
	}
	if c != wantCSV {
		t.Fatal("resumed sweep CSV differs from uninterrupted reference")
	}
	checkDirSettled(t, specs, dir)
}

// checkDirSettled asserts the terminal directory state: every cell has a done
// file and no in-flight snapshots remain.
func checkDirSettled(t *testing.T, specs []Spec, dir string) {
	t.Helper()
	ck := &ckptState{dir: dir}
	for _, spec := range specs {
		s := spec.withDefaults()
		if _, err := os.Stat(ck.donePath(s)); err != nil {
			t.Fatalf("cell %s has no done file: %v", s.Key(), err)
		}
		if _, err := os.Stat(ck.snapPath(s)); !os.IsNotExist(err) {
			t.Fatalf("cell %s still has a snapshot after completion", s.Key())
		}
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 0 {
		t.Fatalf("stray snapshots after sweep: %v", snaps)
	}
}

// TestCheckpointedSweepIdentical holds a checkpointing sweep (snapshots every
// 250 events, several per cell) to the byte-identical contract against the
// uncheckpointed reference, and checks the directory settles into done files
// only.
func TestCheckpointedSweepIdentical(t *testing.T) {
	specs := ckptGrid()
	wantJSON, wantCSV := referenceRun(t, specs)
	dir := t.TempDir()
	sweep := Run(specs, Options{Workers: 2, CheckpointDir: dir, CheckpointEvery: 250})
	if err := sweep.Err(); err != nil {
		t.Fatal(err)
	}
	j, c := serialize(t, sweep)
	if j != wantJSON {
		t.Fatal("checkpointed sweep JSON differs from uncheckpointed reference")
	}
	if c != wantCSV {
		t.Fatal("checkpointed sweep CSV differs from uncheckpointed reference")
	}
	checkDirSettled(t, specs, dir)
}

// TestSweepResume reconstructs the directory a killed sweep leaves behind —
// one cell mid-run with a valid snapshot, one cell never started, one cell
// with a torn (corrupt) snapshot, one cell already finished — and requires
// the resumed sweep to emit the uninterrupted reference bytes.
func TestSweepResume(t *testing.T) {
	specs := ckptGrid()
	if len(specs) != 4 {
		t.Fatalf("grid size %d, want 4", len(specs))
	}
	wantJSON, wantCSV := referenceRun(t, specs)

	// Populate the directory fully, then knock cells back into the states a
	// kill can produce.
	dir := t.TempDir()
	full := Run(specs, Options{Workers: 2, CheckpointDir: dir, CheckpointEvery: 250})
	if err := full.Err(); err != nil {
		t.Fatal(err)
	}
	ck := &ckptState{dir: dir}

	// Cell 0: interrupted mid-run — a genuine midpoint snapshot, no done file.
	s0 := specs[0].withDefaults()
	cache := newTraceCache(true)
	recs, err := cache.records(s0)
	if err != nil {
		t.Fatal(err)
	}
	s0, engine, err := buildCell(s0, recs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 700; i++ {
		if ok, err := engine.Step(); err != nil {
			t.Fatal(err)
		} else if !ok {
			t.Fatal("cell completed before the test could snapshot it mid-run")
		}
	}
	blob, err := engine.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := atomicWrite(ck.snapPath(s0), blob); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(ck.donePath(s0)); err != nil {
		t.Fatal(err)
	}

	// Cell 1: killed before it ever ran — nothing on disk.
	s1 := specs[1].withDefaults()
	if err := os.Remove(ck.donePath(s1)); err != nil {
		t.Fatal(err)
	}

	// Cell 2: killed mid-write — a torn snapshot that must be discarded.
	s2 := specs[2].withDefaults()
	if err := os.Remove(ck.donePath(s2)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ck.snapPath(s2), blob[:len(blob)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	// Cell 3: finished before the kill — done file intact.

	checkResumedRun(t, specs, dir, wantJSON, wantCSV)
}

// TestResumeDiscardsCorruptDoneFile: a done file that does not parse is not a
// result; the cell reruns and the sweep still matches the reference.
func TestResumeDiscardsCorruptDoneFile(t *testing.T) {
	specs := ckptGrid()
	wantJSON, wantCSV := referenceRun(t, specs)
	dir := t.TempDir()
	full := Run(specs, Options{Workers: 2, CheckpointDir: dir, CheckpointEvery: 250})
	if err := full.Err(); err != nil {
		t.Fatal(err)
	}
	ck := &ckptState{dir: dir}
	s0 := specs[0].withDefaults()
	if err := os.WriteFile(ck.donePath(s0), []byte(`{"jobs": `), 0o644); err != nil {
		t.Fatal(err)
	}
	checkResumedRun(t, specs, dir, wantJSON, wantCSV)
}

// TestResumeIgnoresForeignSnapshot: a snapshot written under one spec hash
// must not restore into a cell whose engine shape differs. The spec hash
// normally prevents the collision; this forces it by renaming another cell's
// snapshot file, and the load-time configuration echo must reject it, leaving
// a clean fresh run.
func TestResumeIgnoresForeignSnapshot(t *testing.T) {
	specs := ckptGrid()[:2]
	bigger := specs[1]
	bigger.Nodes = 768
	bigger.Workload.Nodes = 768
	specs[1] = bigger
	wantJSON, wantCSV := referenceRun(t, specs)

	dir := t.TempDir()
	ck := &ckptState{dir: dir}
	s0 := specs[0].withDefaults()
	s1 := specs[1].withDefaults()

	// Mid-run snapshot of cell 0, filed under cell 1's name.
	cache := newTraceCache(true)
	recs, err := cache.records(s0)
	if err != nil {
		t.Fatal(err)
	}
	_, engine, err := buildCell(s0, recs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if ok, err := engine.Step(); err != nil {
			t.Fatal(err)
		} else if !ok {
			t.Fatal("cell completed before the test could snapshot it mid-run")
		}
	}
	blob, err := engine.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := atomicWrite(ck.snapPath(s1), blob); err != nil {
		t.Fatal(err)
	}

	checkResumedRun(t, specs, dir, wantJSON, wantCSV)
}
