package runner

import (
	"fmt"
	"runtime"
	"testing"

	"hybridsched/internal/workload"
)

// benchGrid is a representative mechanism × seed grid at reduced scale:
// 7 schedulers × 2 seeds on a 512-node, one-week trace.
func benchGrid() []Spec {
	var specs []Spec
	for _, mech := range []string{"baseline", "N&PAA", "N&SPAA", "CUA&PAA", "CUA&SPAA", "CUP&PAA", "CUP&SPAA"} {
		for s := int64(1); s <= 2; s++ {
			specs = append(specs, Spec{
				Group: "bench", Variant: "W5", Mechanism: mech, Nodes: 512,
				Workload: workload.Config{
					Seed: s, Nodes: 512, Weeks: 1,
					MinJobSize:  16,
					SizeBuckets: []int{16, 32, 64, 128},
					SizeWeights: []float64{0.4, 0.3, 0.2, 0.1},
				},
			})
		}
	}
	return specs
}

// BenchmarkSweep measures one full grid execution per iteration at several
// pool sizes; the speedup of workers=NumCPU over workers=1 is the headline
// number for the parallel runner.
func BenchmarkSweep(b *testing.B) {
	b.ReportAllocs()
	specs := benchGrid()
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sweep := Run(specs, Options{Workers: workers})
				if err := sweep.Err(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(specs)), "cells/sweep")
		})
	}
}

// BenchmarkTraceCache isolates the workload-memoization win: the same grid
// with and without trace sharing.
func BenchmarkTraceCache(b *testing.B) {
	b.ReportAllocs()
	specs := benchGrid()
	for _, disabled := range []bool{false, true} {
		name := "cached"
		if disabled {
			name = "uncached"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sweep := Run(specs, Options{Workers: runtime.NumCPU(), NoTraceCache: disabled})
				if err := sweep.Err(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
