package runner

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Row is the deterministic serialized form of one Result: the cell
// coordinates plus the simulation measurements. Wall-clock quantities
// (decision latency, cell elapsed time) are deliberately excluded so that
// the JSON and CSV forms of a sweep are byte-identical across runs, machines,
// and worker counts.
type Row struct {
	Group     string `json:"group,omitempty"`
	Variant   string `json:"variant,omitempty"`
	Mechanism string `json:"mechanism"`
	Policy    string `json:"policy"`
	Seed      int64  `json:"seed"`
	Nodes     int    `json:"nodes"`
	Source    string `json:"source,omitempty"`

	Jobs      int   `json:"jobs"`
	MakespanS int64 `json:"makespan_s"`

	TurnH      float64 `json:"turnaround_h"`
	TurnRigidH float64 `json:"turnaround_rigid_h"`
	TurnODH    float64 `json:"turnaround_ondemand_h"`
	TurnMallH  float64 `json:"turnaround_malleable_h"`

	Util         float64 `json:"utilization"`
	Useful       float64 `json:"useful_frac"`
	Setup        float64 `json:"setup_frac"`
	Ckpt         float64 `json:"ckpt_frac"`
	Lost         float64 `json:"lost_frac"`
	ReservedIdle float64 `json:"reserved_idle_frac"`
	Idle         float64 `json:"idle_frac"`

	Instant       float64 `json:"instant_start_rate"`
	StrictInstant float64 `json:"strict_instant_start_rate"`
	MeanDelayS    float64 `json:"mean_start_delay_s"`

	PreemptRigid float64 `json:"preempt_rigid_ratio"`
	PreemptMall  float64 `json:"preempt_malleable_ratio"`

	// Availability telemetry (zero on clean runs; the fault coordinates of
	// the cell appear alongside so fault rows are self-describing).
	FaultMTBF       float64 `json:"fault_mtbf,omitempty"`
	FaultMeanRepair float64 `json:"fault_repair,omitempty"`
	Failures        int     `json:"failures,omitempty"`
	FailureMisses   int     `json:"failure_misses,omitempty"`
	UnavailableFrac float64 `json:"unavailable_frac,omitempty"`

	Err string `json:"err,omitempty"`
}

// Rows flattens the sweep into its deterministic serialized form, in grid
// order. Failed cells carry their coordinates and Err with zero metrics.
func (s Sweep) Rows() []Row {
	rows := make([]Row, 0, len(s.Results))
	for _, res := range s.Results {
		r := Row{
			Group:           res.Spec.Group,
			Variant:         res.Spec.Variant,
			Mechanism:       res.Spec.Mechanism,
			Policy:          res.Spec.Policy,
			Seed:            res.Spec.Workload.Seed,
			Nodes:           res.Spec.Nodes,
			Source:          res.Spec.Source,
			FaultMTBF:       res.Spec.FaultMTBF,
			FaultMeanRepair: res.Spec.FaultMeanRepair,
			Err:             res.Err,
		}
		if !res.Failed() {
			rep := res.Report
			r.Jobs = rep.Jobs
			r.MakespanS = rep.Makespan
			r.TurnH = rep.All.MeanTurnaroundH
			r.TurnRigidH = rep.Rigid.MeanTurnaroundH
			r.TurnODH = rep.OnDemand.MeanTurnaroundH
			r.TurnMallH = rep.Malleable.MeanTurnaroundH
			r.Util = rep.Utilization
			r.Useful = rep.Breakdown.Useful
			r.Setup = rep.Breakdown.Setup
			r.Ckpt = rep.Breakdown.Ckpt
			r.Lost = rep.Breakdown.Lost
			r.ReservedIdle = rep.Breakdown.ReservedIdle
			r.Idle = rep.Breakdown.Idle
			r.Instant = rep.InstantStartRate
			r.StrictInstant = rep.StrictInstantStartRate
			r.MeanDelayS = rep.MeanStartDelay
			r.PreemptRigid = rep.Rigid.PreemptRatio
			r.PreemptMall = rep.Malleable.PreemptRatio
			r.Failures = rep.FailuresInjected
			r.FailureMisses = rep.FailureMisses
			r.UnavailableFrac = rep.Breakdown.Unavailable
		}
		rows = append(rows, r)
	}
	return rows
}

// WriteJSON emits the sweep as an indented JSON array of Rows.
func (s Sweep) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s.Rows(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// csvHeader is the CSV column order, matching the Row JSON tags.
var csvHeader = []string{
	"group", "variant", "mechanism", "policy", "seed", "nodes", "source",
	"jobs", "makespan_s",
	"turnaround_h", "turnaround_rigid_h", "turnaround_ondemand_h", "turnaround_malleable_h",
	"utilization", "useful_frac", "setup_frac", "ckpt_frac", "lost_frac",
	"reserved_idle_frac", "idle_frac",
	"instant_start_rate", "strict_instant_start_rate", "mean_start_delay_s",
	"preempt_rigid_ratio", "preempt_malleable_ratio",
	"fault_mtbf", "fault_repair", "failures", "failure_misses", "unavailable_frac",
	"err",
}

// WriteCSV emits the sweep as CSV, one Row per cell in grid order.
func (s Sweep) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, r := range s.Rows() {
		rec := []string{
			r.Group, r.Variant, r.Mechanism, r.Policy,
			strconv.FormatInt(r.Seed, 10), strconv.Itoa(r.Nodes), r.Source,
			strconv.Itoa(r.Jobs), strconv.FormatInt(r.MakespanS, 10),
			f(r.TurnH), f(r.TurnRigidH), f(r.TurnODH), f(r.TurnMallH),
			f(r.Util), f(r.Useful), f(r.Setup), f(r.Ckpt), f(r.Lost),
			f(r.ReservedIdle), f(r.Idle),
			f(r.Instant), f(r.StrictInstant), f(r.MeanDelayS),
			f(r.PreemptRigid), f(r.PreemptMall),
			f(r.FaultMTBF), f(r.FaultMeanRepair),
			strconv.Itoa(r.Failures), strconv.Itoa(r.FailureMisses), f(r.UnavailableFrac),
			r.Err,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("runner: csv: %w", err)
	}
	return nil
}
