// Package cluster implements the node-granular resource manager of the
// simulated HPC system.
//
// Every node is in exactly one of four places at any instant:
//
//   - the FREE pool,
//   - a RESERVATION held by a claimant (an on-demand job collecting nodes
//     ahead of its arrival, or a preempted lender waiting to reclaim returned
//     nodes),
//   - an ALLOCATION held by a running job, or
//   - the DOWN pool: nodes out of service because they failed and are under
//     repair, or because a maintenance drain took them. Down nodes are
//     invisible to every scheduling decision — they are neither free nor
//     reservable until Restore moves them back.
//
// All state changes are explicit moves between these places, so the
// partition invariant can be checked exactly (CheckInvariant), which the
// integration and property tests do after every event. Misuse — double
// allocation, releasing nodes a job does not hold — panics, because it is a
// scheduler bug rather than a runtime condition.
package cluster

import (
	"fmt"
	"sort"

	"hybridsched/internal/nodeset"
)

// Cluster is the node pool. Create one with New.
type Cluster struct {
	n        int
	free     *nodeset.Set
	down     *nodeset.Set
	alloc    map[int]*nodeset.Set // job ID -> held nodes
	reserved map[int]*nodeset.Set // claim ID -> reserved nodes
	//schedlint:snapfield cache of the reserved sets' total size; recomputed while decoding them
	totalRes int
}

// New returns a cluster of n identical nodes, all free.
func New(n int) *Cluster {
	if n < 1 {
		panic("cluster: need at least one node")
	}
	return &Cluster{
		n:        n,
		free:     nodeset.Range(0, n),
		down:     nodeset.New(n),
		alloc:    make(map[int]*nodeset.Set),
		reserved: make(map[int]*nodeset.Set),
	}
}

// N returns the total number of nodes.
func (c *Cluster) N() int { return c.n }

// FreeCount returns the number of unallocated, unreserved nodes.
func (c *Cluster) FreeCount() int { return c.free.Len() }

// FreeSet returns a copy of the free pool's node set.
func (c *Cluster) FreeSet() *nodeset.Set { return c.free.Clone() }

// DownCount returns the number of out-of-service nodes.
func (c *Cluster) DownCount() int { return c.down.Len() }

// DownSet returns a copy of the out-of-service node set.
func (c *Cluster) DownSet() *nodeset.Set { return c.down.Clone() }

// AvailableCount returns the number of in-service nodes (total minus down),
// regardless of whether they are free, reserved, or allocated.
func (c *Cluster) AvailableCount() int { return c.n - c.down.Len() }

// IsDown reports whether node id is out of service.
func (c *Cluster) IsDown(id int) bool { return c.down.Contains(id) }

// IsFree reports whether node id is in the free pool.
func (c *Cluster) IsFree(id int) bool { return c.free.Contains(id) }

// AllocHolder returns the job whose allocation contains node id, if any. A
// node lives in exactly one pool, so the answer is unique and independent of
// map iteration order.
func (c *Cluster) AllocHolder(id int) (jobID int, ok bool) {
	for j, s := range c.alloc {
		if s.Contains(id) {
			return j, true
		}
	}
	return 0, false
}

// ReservationHolder returns the claim whose reservation contains node id, if
// any.
func (c *Cluster) ReservationHolder(id int) (claim int, ok bool) {
	for cl, s := range c.reserved {
		if s.Contains(id) {
			return cl, true
		}
	}
	return 0, false
}

// TakeDownFree moves up to k free nodes out of service and returns the set
// actually moved (smaller than k when the free pool is short).
func (c *Cluster) TakeDownFree(k int) *nodeset.Set {
	taken := c.free.Pick(k)
	c.down.UnionWith(taken)
	return taken
}

// TakeDownExact moves the specific free nodes in set out of service. It
// panics if any node is not free.
func (c *Cluster) TakeDownExact(set *nodeset.Set) {
	if set.Empty() {
		return
	}
	if nodeset.Difference(set, c.free).Len() != 0 {
		panic("cluster: TakeDownExact on non-free nodes")
	}
	c.free.SubtractWith(set)
	c.down.UnionWith(set)
}

// TakeDownReserved moves one node out of claim's reservation into the down
// pool (a failure striking a reserved node). It panics if the claim does not
// hold the node.
func (c *Cluster) TakeDownReserved(claim, id int) {
	s, ok := c.reserved[claim]
	if !ok || !s.Contains(id) {
		panic(fmt.Sprintf("cluster: TakeDownReserved(%d, %d): claim does not hold the node", claim, id))
	}
	s.Remove(id)
	c.totalRes--
	if s.Empty() {
		delete(c.reserved, claim)
	}
	c.down.Add(id)
}

// Restore moves the out-of-service nodes in set back into the free pool (a
// repair completing, or a maintenance window ending). It panics if any node
// is not down — restoring an in-service node is an availability-bookkeeping
// bug.
func (c *Cluster) Restore(set *nodeset.Set) {
	if set.Empty() {
		return
	}
	if nodeset.Difference(set, c.down).Len() != 0 {
		panic("cluster: Restore on nodes that are not down")
	}
	c.down.SubtractWith(set)
	c.free.UnionWith(set)
}

// TotalReserved returns the number of nodes held across all reservations.
func (c *Cluster) TotalReserved() int { return c.totalRes }

// ReservedCount returns the size of claim's reservation (0 if none).
func (c *Cluster) ReservedCount(claim int) int {
	if s, ok := c.reserved[claim]; ok {
		return s.Len()
	}
	return 0
}

// ReservedSet returns a copy of claim's reservation (empty set if none).
func (c *Cluster) ReservedSet(claim int) *nodeset.Set {
	if s, ok := c.reserved[claim]; ok {
		return s.Clone()
	}
	return &nodeset.Set{}
}

// Allocated returns a copy of the node set held by job (empty set if none).
func (c *Cluster) Allocated(job int) *nodeset.Set {
	if s, ok := c.alloc[job]; ok {
		return s.Clone()
	}
	return &nodeset.Set{}
}

// AllocatedCount returns the number of nodes job holds.
func (c *Cluster) AllocatedCount(job int) int {
	if s, ok := c.alloc[job]; ok {
		return s.Len()
	}
	return 0
}

// Reserve moves up to k free nodes into claim's reservation and returns the
// set actually moved (may be smaller than k when the free pool is short).
func (c *Cluster) Reserve(claim, k int) *nodeset.Set {
	taken := c.free.Pick(k)
	if !taken.Empty() {
		c.reservation(claim).UnionWith(taken)
		c.totalRes += taken.Len()
	}
	return taken
}

// ReserveExact moves the specific free nodes in set into claim's reservation.
// It panics if any node is not free.
func (c *Cluster) ReserveExact(claim int, set *nodeset.Set) {
	if set.Empty() {
		return
	}
	if nodeset.Difference(set, c.free).Len() != 0 {
		panic(fmt.Sprintf("cluster: ReserveExact(%d) on non-free nodes", claim))
	}
	c.free.SubtractWith(set)
	c.reservation(claim).UnionWith(set)
	c.totalRes += set.Len()
}

// UnreserveAll dissolves claim's reservation back into the free pool and
// returns the released set. Unknown claims release nothing.
func (c *Cluster) UnreserveAll(claim int) *nodeset.Set {
	s, ok := c.reserved[claim]
	if !ok {
		return &nodeset.Set{}
	}
	delete(c.reserved, claim)
	c.totalRes -= s.Len()
	c.free.UnionWith(s)
	return s
}

// AllocFree moves exactly k free nodes to job's allocation and returns them.
// It panics if fewer than k nodes are free — callers must check first.
func (c *Cluster) AllocFree(job, k int) *nodeset.Set {
	if k <= 0 {
		return &nodeset.Set{}
	}
	if c.free.Len() < k {
		panic(fmt.Sprintf("cluster: AllocFree(job %d, %d) with only %d free", job, k, c.free.Len()))
	}
	taken := c.free.Pick(k)
	c.allocation(job).UnionWith(taken)
	return taken
}

// AllocExact moves the specific free nodes in set to job's allocation.
// It panics if any node is not free.
func (c *Cluster) AllocExact(job int, set *nodeset.Set) {
	if set.Empty() {
		return
	}
	if nodeset.Difference(set, c.free).Len() != 0 {
		panic(fmt.Sprintf("cluster: AllocExact(job %d) on non-free nodes", job))
	}
	c.free.SubtractWith(set)
	c.allocation(job).UnionWith(set)
}

// AllocReserved moves up to k nodes from claim's reservation to job's
// allocation and returns the set moved. An empty or missing reservation
// yields an empty set.
func (c *Cluster) AllocReserved(job, claim, k int) *nodeset.Set {
	s, ok := c.reserved[claim]
	if !ok || k <= 0 {
		return &nodeset.Set{}
	}
	taken := s.Pick(k)
	c.totalRes -= taken.Len()
	if s.Empty() {
		delete(c.reserved, claim)
	}
	c.allocation(job).UnionWith(taken)
	return taken
}

// Release returns all of job's nodes to the free pool and returns the
// released set. It panics if job holds nothing — releasing twice is a bug.
func (c *Cluster) Release(job int) *nodeset.Set {
	s, ok := c.alloc[job]
	if !ok {
		panic(fmt.Sprintf("cluster: Release(job %d) holds nothing", job))
	}
	delete(c.alloc, job)
	c.free.UnionWith(s)
	return s
}

// ReleasePartial moves k of job's nodes back to the free pool (a malleable
// shrink) and returns the released set. It panics if job holds fewer than k.
func (c *Cluster) ReleasePartial(job, k int) *nodeset.Set {
	s, ok := c.alloc[job]
	if !ok || s.Len() < k {
		panic(fmt.Sprintf("cluster: ReleasePartial(job %d, %d) holds %d", job, k, c.AllocatedCount(job)))
	}
	taken := s.Pick(k)
	if s.Empty() {
		delete(c.alloc, job)
	}
	c.free.UnionWith(taken)
	return taken
}

// Grow moves up to k free nodes into an existing allocation (a malleable
// expansion) and returns the set moved.
func (c *Cluster) Grow(job, k int) *nodeset.Set {
	if k <= 0 {
		return &nodeset.Set{}
	}
	taken := c.free.Pick(k)
	if !taken.Empty() {
		c.allocation(job).UnionWith(taken)
	}
	return taken
}

// Claims returns the IDs of all current reservation holders, in ascending
// order so callers see the same sequence on every run.
func (c *Cluster) Claims() []int {
	out := make([]int, 0, len(c.reserved))
	for id := range c.reserved {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// CheckInvariant verifies that free, down, reservations, and allocations
// partition the node universe exactly. It returns a descriptive error on
// violation.
func (c *Cluster) CheckInvariant() error {
	all := c.free.Clone()
	total := c.free.Len()
	if all.Intersects(c.down) {
		return fmt.Errorf("cluster: down pool overlaps the free pool")
	}
	all.UnionWith(c.down)
	total += c.down.Len()
	resTotal := 0
	for claim, s := range c.reserved {
		if s.Empty() {
			return fmt.Errorf("cluster: empty reservation kept for claim %d", claim)
		}
		if all.Intersects(s) {
			return fmt.Errorf("cluster: reservation %d overlaps other pools", claim)
		}
		all.UnionWith(s)
		total += s.Len()
		resTotal += s.Len()
	}
	if resTotal != c.totalRes {
		return fmt.Errorf("cluster: totalRes %d != actual %d", c.totalRes, resTotal)
	}
	for job, s := range c.alloc {
		if s.Empty() {
			return fmt.Errorf("cluster: empty allocation kept for job %d", job)
		}
		if all.Intersects(s) {
			return fmt.Errorf("cluster: allocation of job %d overlaps other pools", job)
		}
		all.UnionWith(s)
		total += s.Len()
	}
	if total != c.n || !all.Equal(nodeset.Range(0, c.n)) {
		return fmt.Errorf("cluster: pools cover %d of %d nodes", total, c.n)
	}
	return nil
}

func (c *Cluster) reservation(claim int) *nodeset.Set {
	s, ok := c.reserved[claim]
	if !ok {
		s = nodeset.New(c.n)
		c.reserved[claim] = s
	}
	return s
}

func (c *Cluster) allocation(job int) *nodeset.Set {
	s, ok := c.alloc[job]
	if !ok {
		s = nodeset.New(c.n)
		c.alloc[job] = s
	}
	return s
}
