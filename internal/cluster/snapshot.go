package cluster

import (
	"sort"

	"hybridsched/internal/nodeset"
	"hybridsched/internal/snapshot"
)

// EncodeSnapshot serializes the full node partition. Map-shaped state (the
// allocation and reservation tables) is written in ascending key order so the
// encoding is deterministic.
func (c *Cluster) EncodeSnapshot(e *snapshot.Enc) {
	e.Int(c.n)
	c.free.EncodeSnapshot(e)
	c.down.EncodeSnapshot(e)
	encodeSetMap(e, c.alloc)
	encodeSetMap(e, c.reserved)
}

func encodeSetMap(e *snapshot.Enc, m map[int]*nodeset.Set) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		e.Int(k)
		m[k].EncodeSnapshot(e)
	}
}

func decodeSetMap(d *snapshot.Dec) map[int]*nodeset.Set {
	n := d.Count(12)
	m := make(map[int]*nodeset.Set, n)
	for i := 0; i < n; i++ {
		k := d.Int()
		s := nodeset.DecodeSnapshotSet(d)
		if d.Err() != nil {
			return nil
		}
		if _, dup := m[k]; dup {
			d.Failf("cluster: duplicate map key %d", k)
			return nil
		}
		m[k] = s
	}
	return m
}

// DecodeSnapshotCluster reads a cluster written by EncodeSnapshot and
// verifies the partition invariant, so a corrupt payload can never produce a
// cluster the scheduler would later trip over. On malformed input it sets the
// decoder's error and returns nil.
func DecodeSnapshotCluster(d *snapshot.Dec) *Cluster {
	c := &Cluster{}
	c.n = d.Int()
	if d.Err() == nil && c.n < 1 {
		d.Failf("cluster: invalid node count %d", c.n)
	}
	if d.Err() != nil {
		return nil
	}
	c.free = nodeset.DecodeSnapshotSet(d)
	c.down = nodeset.DecodeSnapshotSet(d)
	c.alloc = decodeSetMap(d)
	c.reserved = decodeSetMap(d)
	if d.Err() != nil {
		return nil
	}
	for _, s := range c.reserved {
		c.totalRes += s.Len()
	}
	if err := c.CheckInvariant(); err != nil {
		d.Fail(err)
		return nil
	}
	return c
}
