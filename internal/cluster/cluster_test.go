package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybridsched/internal/nodeset"
)

func mustOK(t *testing.T, c *Cluster) {
	t.Helper()
	if err := c.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestNewCluster(t *testing.T) {
	c := New(100)
	if c.N() != 100 || c.FreeCount() != 100 || c.TotalReserved() != 0 {
		t.Fatalf("fresh cluster wrong: N=%d free=%d", c.N(), c.FreeCount())
	}
	mustOK(t, c)
}

func TestNewPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

func TestAllocFreeAndRelease(t *testing.T) {
	c := New(100)
	s := c.AllocFree(1, 30)
	if s.Len() != 30 || c.FreeCount() != 70 || c.AllocatedCount(1) != 30 {
		t.Fatal("alloc wrong")
	}
	mustOK(t, c)
	rel := c.Release(1)
	if rel.Len() != 30 || c.FreeCount() != 100 || c.AllocatedCount(1) != 0 {
		t.Fatal("release wrong")
	}
	mustOK(t, c)
}

func TestAllocFreePanicsWhenShort(t *testing.T) {
	c := New(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.AllocFree(1, 11)
}

func TestDoubleReleasePanics(t *testing.T) {
	c := New(10)
	c.AllocFree(1, 5)
	c.Release(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Release(1)
}

func TestReserveAndAllocReserved(t *testing.T) {
	c := New(100)
	got := c.Reserve(7, 40)
	if got.Len() != 40 || c.TotalReserved() != 40 || c.ReservedCount(7) != 40 || c.FreeCount() != 60 {
		t.Fatal("reserve wrong")
	}
	mustOK(t, c)
	// Start a job from the reservation, partially.
	s := c.AllocReserved(1, 7, 25)
	if s.Len() != 25 || c.ReservedCount(7) != 15 || c.AllocatedCount(1) != 25 {
		t.Fatal("alloc from reservation wrong")
	}
	mustOK(t, c)
	// Draining the reservation removes the claim entirely.
	s2 := c.AllocReserved(1, 7, 100)
	if s2.Len() != 15 || c.ReservedCount(7) != 0 || c.AllocatedCount(1) != 40 {
		t.Fatal("drain reservation wrong")
	}
	if len(c.Claims()) != 0 {
		t.Fatal("claim should be gone")
	}
	mustOK(t, c)
}

func TestReserveClampsToFree(t *testing.T) {
	c := New(50)
	c.AllocFree(1, 45)
	got := c.Reserve(9, 20)
	if got.Len() != 5 || c.FreeCount() != 0 {
		t.Fatalf("reserve should clamp: got %d", got.Len())
	}
	mustOK(t, c)
}

func TestUnreserveAll(t *testing.T) {
	c := New(50)
	c.Reserve(3, 20)
	rel := c.UnreserveAll(3)
	if rel.Len() != 20 || c.FreeCount() != 50 || c.TotalReserved() != 0 {
		t.Fatal("unreserve wrong")
	}
	// Unknown claim is a no-op.
	if !c.UnreserveAll(99).Empty() {
		t.Fatal("unknown claim should release nothing")
	}
	mustOK(t, c)
}

func TestReserveExactAndAllocExact(t *testing.T) {
	c := New(50)
	rel := c.AllocFree(1, 10) // nodes 0..9
	ret := c.Release(1)       // back to free
	if !rel.Equal(ret) {
		t.Fatal("release must return the same nodes")
	}
	c.ReserveExact(5, nodeset.FromIDs(0, 1, 2))
	if c.ReservedCount(5) != 3 {
		t.Fatal("exact reserve wrong")
	}
	mustOK(t, c)
	c.AllocExact(2, nodeset.FromIDs(3, 4))
	if c.AllocatedCount(2) != 2 {
		t.Fatal("exact alloc wrong")
	}
	mustOK(t, c)
}

func TestReserveExactPanicsOnHeldNodes(t *testing.T) {
	c := New(50)
	c.AllocFree(1, 10) // holds 0..9
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.ReserveExact(5, nodeset.FromIDs(0))
}

func TestAllocExactPanicsOnReservedNodes(t *testing.T) {
	c := New(50)
	c.Reserve(5, 10) // reserves 0..9
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.AllocExact(1, nodeset.FromIDs(0))
}

func TestReleasePartialAndGrow(t *testing.T) {
	c := New(100)
	c.AllocFree(1, 60)
	rel := c.ReleasePartial(1, 20)
	if rel.Len() != 20 || c.AllocatedCount(1) != 40 || c.FreeCount() != 60 {
		t.Fatal("partial release wrong")
	}
	mustOK(t, c)
	grown := c.Grow(1, 10)
	if grown.Len() != 10 || c.AllocatedCount(1) != 50 {
		t.Fatal("grow wrong")
	}
	mustOK(t, c)
	// Grow clamps to what is free.
	c.AllocFree(2, 50)
	if !c.Grow(1, 5).Empty() {
		t.Fatal("grow with empty free pool should move nothing")
	}
	mustOK(t, c)
}

func TestReleasePartialPanicsWhenShort(t *testing.T) {
	c := New(10)
	c.AllocFree(1, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.ReleasePartial(1, 6)
}

func TestReleasePartialAllRemovesAllocation(t *testing.T) {
	c := New(10)
	c.AllocFree(1, 5)
	c.ReleasePartial(1, 5)
	if c.AllocatedCount(1) != 0 {
		t.Fatal("allocation should be gone")
	}
	mustOK(t, c)
	// A later Release must panic since nothing is held.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Release(1)
}

// Property: any random sequence of valid operations preserves the partition
// invariant and node conservation.
func TestRandomOperationsInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const n = 256
		c := New(n)
		jobs := map[int]int{}   // job -> held count
		claims := map[int]int{} // claim -> reserved count
		nextID := 1
		for op := 0; op < 400; op++ {
			switch r.Intn(7) {
			case 0: // allocate a new job from free
				k := 1 + r.Intn(64)
				if c.FreeCount() >= k {
					c.AllocFree(nextID, k)
					jobs[nextID] = k
					nextID++
				}
			case 1: // release a job
				for id := range jobs {
					c.Release(id)
					delete(jobs, id)
					break
				}
			case 2: // reserve for a new claim
				k := 1 + r.Intn(64)
				got := c.Reserve(nextID, k)
				if got.Len() > 0 {
					claims[nextID] = got.Len()
				}
				nextID++
			case 3: // dissolve a claim
				for id := range claims {
					c.UnreserveAll(id)
					delete(claims, id)
					break
				}
			case 4: // start a job from a claim
				for id, have := range claims {
					k := 1 + r.Intn(have)
					got := c.AllocReserved(nextID, id, k)
					jobs[nextID] = got.Len()
					nextID++
					if got.Len() == have {
						delete(claims, id)
					} else {
						claims[id] = have - got.Len()
					}
					break
				}
			case 5: // shrink a job
				for id, have := range jobs {
					if have > 1 {
						k := 1 + r.Intn(have-1)
						c.ReleasePartial(id, k)
						jobs[id] = have - k
					}
					break
				}
			case 6: // grow a job
				for id := range jobs {
					got := c.Grow(id, 1+r.Intn(32))
					jobs[id] += got.Len()
					break
				}
			}
			if err := c.CheckInvariant(); err != nil {
				return false
			}
		}
		// Conservation cross-check against our shadow bookkeeping.
		held := 0
		for id, k := range jobs {
			if c.AllocatedCount(id) != k {
				return false
			}
			held += k
		}
		res := 0
		for id, k := range claims {
			if c.ReservedCount(id) != k {
				return false
			}
			res += k
		}
		return c.FreeCount()+held+res == n && c.TotalReserved() == res
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllocReleaseCycle(b *testing.B) {
	c := New(4392)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AllocFree(1, 2048)
		c.Release(1)
	}
}

func TestDownPoolLifecycle(t *testing.T) {
	c := New(100)
	taken := c.TakeDownFree(10)
	if taken.Len() != 10 || c.DownCount() != 10 || c.FreeCount() != 90 || c.AvailableCount() != 90 {
		t.Fatalf("take-down wrong: down=%d free=%d avail=%d", c.DownCount(), c.FreeCount(), c.AvailableCount())
	}
	mustOK(t, c)
	taken.ForEach(func(id int) bool {
		if !c.IsDown(id) || c.IsFree(id) {
			t.Fatalf("node %d not tracked as down", id)
		}
		return true
	})
	c.Restore(taken)
	if c.DownCount() != 0 || c.FreeCount() != 100 {
		t.Fatalf("restore wrong: down=%d free=%d", c.DownCount(), c.FreeCount())
	}
	mustOK(t, c)
}

func TestTakeDownFreeClampsToFree(t *testing.T) {
	c := New(10)
	c.AllocFree(1, 8)
	taken := c.TakeDownFree(5)
	if taken.Len() != 2 || c.FreeCount() != 0 || c.DownCount() != 2 {
		t.Fatalf("clamp wrong: taken=%d", taken.Len())
	}
	mustOK(t, c)
}

func TestTakeDownExactPanicsOnHeldNodes(t *testing.T) {
	c := New(10)
	held := c.AllocFree(1, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.TakeDownExact(held)
}

func TestTakeDownReserved(t *testing.T) {
	c := New(10)
	res := c.Reserve(7, 3)
	id := res.IDs()[0]
	c.TakeDownReserved(7, id)
	if c.ReservedCount(7) != 2 || c.TotalReserved() != 2 || !c.IsDown(id) {
		t.Fatalf("reserved take-down wrong: res=%d down=%v", c.ReservedCount(7), c.IsDown(id))
	}
	mustOK(t, c)
	// Draining the whole reservation deletes the claim entry.
	for _, rest := range c.ReservedSet(7).IDs() {
		c.TakeDownReserved(7, rest)
	}
	if c.ReservedCount(7) != 0 || c.DownCount() != 3 {
		t.Fatalf("full reserved take-down wrong")
	}
	mustOK(t, c)
}

func TestTakeDownReservedPanicsOnWrongClaim(t *testing.T) {
	c := New(10)
	c.Reserve(7, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.TakeDownReserved(8, 0)
}

func TestRestorePanicsOnInServiceNodes(t *testing.T) {
	c := New(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Restore(nodeset.FromIDs(3))
}

func TestHolderLookups(t *testing.T) {
	c := New(20)
	a := c.AllocFree(5, 4)
	r := c.Reserve(9, 3)
	aid, rid := a.IDs()[0], r.IDs()[0]
	if j, ok := c.AllocHolder(aid); !ok || j != 5 {
		t.Fatalf("AllocHolder(%d) = %d,%v", aid, j, ok)
	}
	if cl, ok := c.ReservationHolder(rid); !ok || cl != 9 {
		t.Fatalf("ReservationHolder(%d) = %d,%v", rid, cl, ok)
	}
	if _, ok := c.AllocHolder(rid); ok {
		t.Fatal("reserved node reported as allocated")
	}
	free := c.FreeSet().IDs()[0]
	if _, ok := c.AllocHolder(free); ok {
		t.Fatal("free node reported as allocated")
	}
	if _, ok := c.ReservationHolder(free); ok {
		t.Fatal("free node reported as reserved")
	}
}

// Claims must come back sorted: it reads a map, and callers (reports, debug
// dumps) would otherwise see a different order on every run.
func TestClaimsSorted(t *testing.T) {
	c := New(100)
	for _, id := range []int{42, 7, 99, 3, 15} {
		c.Reserve(id, 2)
	}
	got := c.Claims()
	want := []int{3, 7, 15, 42, 99}
	if len(got) != len(want) {
		t.Fatalf("Claims() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Claims() = %v, want %v", got, want)
		}
	}
	mustOK(t, c)
}
