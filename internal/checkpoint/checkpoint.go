// Package checkpoint models the defensive checkpointing of rigid jobs.
//
// The paper assumes rigid applications checkpoint at the optimal frequency
// given by Daly's higher-order estimate (J. Daly, "A higher order estimate of
// the optimum checkpoint interval for restart dumps", FGCS 2006), with a
// per-checkpoint overhead of 600 s for jobs smaller than 1 K nodes and 1200 s
// otherwise (paper §IV-B). Figure 7 sweeps a *frequency multiplier* around
// the optimum: "50 %" means checkpointing twice as often as Daly-optimal,
// i.e. the interval is scaled by 0.5.
package checkpoint

import "math"

// Default overheads and threshold from paper §IV-B.
const (
	SmallJobOverhead  int64 = 600  // seconds, jobs < 1K nodes
	LargeJobOverhead  int64 = 1200 // seconds, jobs >= 1K nodes
	LargeJobThreshold       = 1024 // nodes ("1K nodes")
)

// Overhead returns the per-checkpoint wall-clock cost in seconds for a job of
// the given node count.
func Overhead(size int) int64 {
	if size < LargeJobThreshold {
		return SmallJobOverhead
	}
	return LargeJobOverhead
}

// OptimalInterval returns Daly's higher-order estimate of the optimum compute
// time between checkpoints, in seconds, for checkpoint cost delta and
// system mean time between failures mtbf (both seconds). For delta >= 2*mtbf
// the estimate degenerates to mtbf, following Daly.
func OptimalInterval(delta, mtbf float64) float64 {
	if delta <= 0 || mtbf <= 0 {
		panic("checkpoint: delta and mtbf must be positive")
	}
	if delta >= 2*mtbf {
		return mtbf
	}
	x := delta / (2 * mtbf)
	return math.Sqrt(2*delta*mtbf)*(1+math.Sqrt(x)/3+x/9) - delta
}

// Plan captures a job's checkpointing parameters.
type Plan struct {
	Interval int64 // compute seconds between checkpoints; 0 disables
	Overhead int64 // wall seconds per checkpoint
}

// NewPlan builds the checkpoint plan for a rigid job of the given size under
// a system with the given MTBF (seconds) and a frequency setting expressed as
// the Figure-7 interval multiplier (1.0 = Daly optimal, 0.5 = twice as
// frequent, 2.0 = half as frequent). A non-positive multiplier or MTBF
// disables checkpointing.
func NewPlan(size int, mtbfSeconds float64, intervalMultiplier float64) Plan {
	if mtbfSeconds <= 0 || intervalMultiplier <= 0 {
		return Plan{}
	}
	delta := Overhead(size)
	opt := OptimalInterval(float64(delta), mtbfSeconds)
	// Round to the nearest second rather than truncating: flooring
	// systematically shortens the interval by up to a second, which a
	// multiplier sweep (Fig. 7) then scales.
	iv := int64(math.Round(opt * intervalMultiplier))
	if iv < 1 {
		iv = 1
	}
	return Plan{Interval: iv, Overhead: delta}
}

// Enabled reports whether the plan takes checkpoints at all.
func (p Plan) Enabled() bool { return p.Interval > 0 && p.Overhead >= 0 }
