package checkpoint

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOverheadRule(t *testing.T) {
	cases := []struct {
		size int
		want int64
	}{
		{128, 600}, {512, 600}, {1023, 600},
		{1024, 1200}, {2048, 1200}, {4392, 1200},
	}
	for _, c := range cases {
		if got := Overhead(c.size); got != c.want {
			t.Errorf("Overhead(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestOptimalIntervalFirstOrderAgreement(t *testing.T) {
	// For delta << MTBF, Daly's estimate approaches sqrt(2*delta*M) - delta.
	delta, mtbf := 600.0, 10*24*3600.0
	got := OptimalInterval(delta, mtbf)
	approx := math.Sqrt(2*delta*mtbf) - delta
	if math.Abs(got-approx)/approx > 0.05 {
		t.Fatalf("higher-order %g too far from first-order %g", got, approx)
	}
}

func TestOptimalIntervalDegenerate(t *testing.T) {
	// delta >= 2*mtbf: interval collapses to mtbf.
	if got := OptimalInterval(1000, 400); got != 400 {
		t.Fatalf("degenerate case = %g, want 400", got)
	}
}

func TestOptimalIntervalPanics(t *testing.T) {
	for _, c := range [][2]float64{{0, 100}, {100, 0}, {-1, 100}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for delta=%g mtbf=%g", c[0], c[1])
				}
			}()
			OptimalInterval(c[0], c[1])
		}()
	}
}

// Property: the optimal interval is positive and monotone non-decreasing in
// MTBF (more reliable machines checkpoint less often).
func TestOptimalIntervalMonotoneInMTBF(t *testing.T) {
	f := func(seedA, seedB uint16) bool {
		m1 := 3600.0 + float64(seedA)*100
		m2 := m1 + float64(seedB)*100
		i1 := OptimalInterval(600, m1)
		i2 := OptimalInterval(600, m2)
		return i1 > 0 && i2 >= i1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: larger checkpoint overhead means longer optimal intervals
// (amortize expensive checkpoints).
func TestOptimalIntervalMonotoneInDelta(t *testing.T) {
	mtbf := 24 * 3600.0
	prev := 0.0
	for delta := 100.0; delta <= 2000; delta += 100 {
		iv := OptimalInterval(delta, mtbf)
		if iv <= prev {
			t.Fatalf("interval not increasing: delta=%g iv=%g prev=%g", delta, iv, prev)
		}
		prev = iv
	}
}

func TestNewPlan(t *testing.T) {
	p := NewPlan(512, 24*3600, 1.0)
	if !p.Enabled() {
		t.Fatal("plan should be enabled")
	}
	if p.Overhead != 600 {
		t.Fatalf("overhead %d", p.Overhead)
	}
	want := int64(math.Round(OptimalInterval(600, 24*3600)))
	if p.Interval != want {
		t.Fatalf("interval %d, want %d", p.Interval, want)
	}

	big := NewPlan(2048, 24*3600, 1.0)
	if big.Overhead != 1200 {
		t.Fatalf("large-job overhead %d", big.Overhead)
	}
	if big.Interval <= p.Interval {
		t.Fatal("larger overhead should lengthen the interval")
	}
}

func TestNewPlanFrequencyMultiplier(t *testing.T) {
	base := NewPlan(512, 24*3600, 1.0)
	half := NewPlan(512, 24*3600, 0.5)
	twice := NewPlan(512, 24*3600, 2.0)
	if half.Interval >= base.Interval {
		t.Fatal("0.5 multiplier must shorten the interval (more frequent)")
	}
	if twice.Interval <= base.Interval {
		t.Fatal("2.0 multiplier must lengthen the interval")
	}
	// Scaling is linear in the multiplier.
	if d := math.Abs(float64(half.Interval)*2 - float64(base.Interval)); d > 2 {
		t.Fatalf("half interval not ~base/2 (diff %g)", d)
	}
}

func TestNewPlanDisabled(t *testing.T) {
	if NewPlan(512, 0, 1).Enabled() {
		t.Fatal("zero MTBF should disable checkpointing")
	}
	if NewPlan(512, 3600, 0).Enabled() {
		t.Fatal("zero multiplier should disable checkpointing")
	}
}

func TestNewPlanMinimumInterval(t *testing.T) {
	p := NewPlan(512, 3600, 1e-9)
	if p.Interval < 1 {
		t.Fatalf("interval clamped to >=1, got %d", p.Interval)
	}
}

func TestNewPlanRoundsInterval(t *testing.T) {
	// At delta >= 2*mtbf the Daly estimate degenerates to exactly mtbf, so
	// the plan interval is the multiplier scaling mtbf directly — and a
	// fractional product must round to nearest, not floor. With mtbf=250 and
	// multiplier 1.9, opt*mult = 475 exactly; with 1.999, 499.75 rounds to
	// 500 where truncation would give 499.
	plan := NewPlan(100, 250, 1.999) // delta 600 >= 2*250
	if plan.Interval != 500 {
		t.Fatalf("interval %d, want 500 (rounded, not truncated)", plan.Interval)
	}
	if plan.Overhead != 600 {
		t.Fatalf("overhead %d", plan.Overhead)
	}
}

func TestNewPlanDegenerateBoundary(t *testing.T) {
	// Exactly at the delta == 2*mtbf boundary OptimalInterval returns mtbf;
	// the plan must follow it on both sides of the boundary.
	if got := OptimalInterval(600, 300); got != 300 {
		t.Fatalf("OptimalInterval at boundary = %g, want 300", got)
	}
	if plan := NewPlan(100, 300, 1.0); plan.Interval != 300 {
		t.Fatalf("degenerate plan interval %d, want 300", plan.Interval)
	}
	// Just past the boundary the higher-order estimate takes over and must
	// stay positive and finite.
	plan := NewPlan(100, 300.5, 1.0)
	if plan.Interval < 1 {
		t.Fatalf("plan interval %d past the boundary", plan.Interval)
	}
}
