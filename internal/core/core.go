// Package core implements the paper's contribution: the six hybrid-workload
// scheduling mechanisms that let one HPC system serve on-demand, rigid, and
// malleable jobs (paper §III-B).
//
// A mechanism combines an advance-notice strategy with an arrival strategy:
//
//	notice:  N   — ignore notices
//	         CUA — collect released nodes until the actual arrival
//	         CUP — collect, and plan preemptions before the predicted arrival
//	arrival: PAA  — preempt running jobs, cheapest preemption first
//	         SPAA — shrink running malleable jobs evenly, falling back to PAA
//
// plus the two rules shared by every mechanism: reserved nodes are released
// ten minutes after a no-show's estimated arrival, and a completing
// on-demand job returns its leased nodes to the lenders (preempted jobs
// resume, shrunk jobs expand back).
//
// The package plugs into the simulation engine through sim.Mechanism; all
// resource manipulation goes through the engine's primitives.
package core

import (
	"fmt"

	"hybridsched/internal/eventq"
	"hybridsched/internal/job"
	"hybridsched/internal/nodeset"
	"hybridsched/internal/sim"
	"hybridsched/internal/simtime"
)

// NoticeKind selects the advance-notice strategy (paper §III-B.1).
type NoticeKind int

// The three notice strategies.
const (
	NoticeN NoticeKind = iota
	NoticeCUA
	NoticeCUP
)

// String returns the paper's abbreviation.
func (k NoticeKind) String() string {
	switch k {
	case NoticeN:
		return "N"
	case NoticeCUA:
		return "CUA"
	case NoticeCUP:
		return "CUP"
	}
	return fmt.Sprintf("notice(%d)", int(k))
}

// ArrivalKind selects the arrival strategy (paper §III-B.2).
type ArrivalKind int

// The two arrival strategies.
const (
	ArrivalPAA ArrivalKind = iota
	ArrivalSPAA
)

// String returns the paper's abbreviation.
func (k ArrivalKind) String() string {
	switch k {
	case ArrivalPAA:
		return "PAA"
	case ArrivalSPAA:
		return "SPAA"
	}
	return fmt.Sprintf("arrival(%d)", int(k))
}

// Config tunes mechanism behaviour; zero values take the paper's defaults.
type Config struct {
	// ReleaseThreshold is how long after the estimated arrival reserved
	// nodes are held for a no-show (paper §IV-B: 10 minutes). Zero takes the
	// default; a negative value expresses an explicit zero-second threshold
	// (release the instant the estimated arrival passes).
	ReleaseThreshold int64
	// DirectedReturn holds returned lease nodes for a still-waiting
	// preempted lender instead of dropping them in the common pool
	// (paper §III-B.3). Disable for the ablation.
	DirectedReturn bool
	// BackfillReserved mirrors sim.Config.BackfillReserved: reservations are
	// advertised to the backfill planner and squatters are evicted on
	// arrival (paper §III-B.1).
	BackfillReserved bool
}

func (c Config) withDefaults() Config {
	if c.ReleaseThreshold == 0 {
		c.ReleaseThreshold = 10 * simtime.Minute
	} else if c.ReleaseThreshold < 0 {
		c.ReleaseThreshold = 0
	}
	return c
}

// DefaultConfig returns the paper's settings (directed returns on, 10-minute
// release threshold, no reserved-node backfilling).
func DefaultConfig() Config {
	return Config{DirectedReturn: true}.withDefaults()
}

// loanKind distinguishes how nodes were taken from a lender.
type loanKind int

const (
	loanPreempted loanKind = iota
	loanShrunk
)

// loan records nodes an on-demand job borrowed from a lender so they can be
// returned at completion (paper §III-B.3).
type loan struct {
	lender int
	kind   loanKind
	nodes  *nodeset.Set
}

// victimInfo tracks a malleable job inside a preemption warning issued for
// an on-demand claim.
type victimInfo struct {
	claim  int
	expect int // nodes the claim counts on receiving
}

// odState tracks one on-demand job from notice to completion.
type odState struct {
	j          *job.Job
	arrived    bool
	started    bool
	collecting bool // receiving released nodes (CUA/CUP)
	pending    bool // start blocked on in-flight warnings
	incoming   int  // nodes en route from warning victims
	timeout    *eventq.Event
	cupTimers  []*eventq.Event
	loans      []loan
}

// Mechanism is one of the six notice x arrival combinations. It satisfies
// sim.Mechanism.
type Mechanism struct {
	// Static wiring: the variant selectors and config are construction-time
	// constants the snapshot caller re-supplies, and e is re-attached by
	// Attach on the restored engine. None of it belongs in the codec.
	//schedlint:snapfield notice/arrival/cfg are construction parameters; e is re-attached at restore
	notice NoticeKind
	//schedlint:snapfield construction parameter, re-supplied by the snapshot caller
	arrival ArrivalKind
	//schedlint:snapfield construction parameter, re-supplied by the snapshot caller
	cfg Config
	//schedlint:snapfield engine pointer, re-attached by Attach on restore
	e *sim.Engine

	states     map[int]*odState // on-demand job ID -> state
	collectors []*odState       // active collectors in notice order
	victims    map[int]victimInfo
}

// New builds a mechanism from its two strategies.
func New(notice NoticeKind, arrival ArrivalKind, cfg Config) *Mechanism {
	return &Mechanism{
		notice:  notice,
		arrival: arrival,
		cfg:     cfg.withDefaults(),
		states:  make(map[int]*odState),
		victims: make(map[int]victimInfo),
	}
}

// Names lists the six mechanisms in the paper's order.
func Names() []string {
	return []string{"N&PAA", "N&SPAA", "CUA&PAA", "CUA&SPAA", "CUP&PAA", "CUP&SPAA"}
}

// ByName builds the mechanism named like "CUA&SPAA" with cfg.
func ByName(name string, cfg Config) (*Mechanism, error) {
	var n NoticeKind
	var a ArrivalKind
	switch name {
	case "N&PAA":
		n, a = NoticeN, ArrivalPAA
	case "N&SPAA":
		n, a = NoticeN, ArrivalSPAA
	case "CUA&PAA":
		n, a = NoticeCUA, ArrivalPAA
	case "CUA&SPAA":
		n, a = NoticeCUA, ArrivalSPAA
	case "CUP&PAA":
		n, a = NoticeCUP, ArrivalPAA
	case "CUP&SPAA":
		n, a = NoticeCUP, ArrivalSPAA
	default:
		return nil, fmt.Errorf("core: unknown mechanism %q", name)
	}
	return New(n, a, cfg), nil
}

// Name returns the paper-style mechanism name, e.g. "CUA&SPAA".
func (m *Mechanism) Name() string { return m.notice.String() + "&" + m.arrival.String() }

// Attach wires the mechanism to its engine.
func (m *Mechanism) Attach(e *sim.Engine) { m.e = e }

// QueueOnDemandFirst: on-demand jobs that could not start instantly wait at
// the front of the queue (paper §III-B.2).
func (m *Mechanism) QueueOnDemandFirst() bool { return true }

// FlexibleMalleable: the mechanisms exploit malleability — the scheduler can
// choose malleable job sizes at start or resume time (paper §V, Obs. 6).
func (m *Mechanism) FlexibleMalleable() bool { return true }

// state returns (creating if needed) the tracking state for an on-demand job.
func (m *Mechanism) state(j *job.Job) *odState {
	s, ok := m.states[j.ID]
	if !ok {
		s = &odState{j: j}
		m.states[j.ID] = s
	}
	return s
}

// gathered returns the nodes currently reserved for an on-demand job,
// including squatted ones that will be evicted on arrival.
func (m *Mechanism) gathered(id int) int {
	return m.e.Cluster().ReservedCount(id) + m.e.SquattedCount(id)
}

// timer payloads.
type (
	timeoutTimer struct{ odID int }
	cupTimer     struct {
		odID   int
		victim int
	}
)

// OnTimer dispatches mechanism timers.
func (m *Mechanism) OnTimer(payload any) {
	switch p := payload.(type) {
	case timeoutTimer:
		m.handleReleaseTimeout(p.odID)
	case cupTimer:
		stop := m.e.Stopwatch().Start()
		m.handleCUPPreempt(p.odID, p.victim)
		m.e.Metrics().NoteDecision(stop())
	}
}
