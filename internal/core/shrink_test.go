package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybridsched/internal/job"
)

// mkRunning fabricates a running malleable job at a given current size.
func mkRunning(id, max, min, cur int) *job.Job {
	j := job.NewMalleable(id, 0, 0, max, min, 1000, 1000, 0)
	j.State = job.Waiting
	j.StartMalleable(0, cur)
	return j
}

func TestPlanEvenShrinkExact(t *testing.T) {
	jobs := []*job.Job{
		mkRunning(1, 40, 8, 40),
		mkRunning(2, 40, 8, 40),
	}
	targets := planEvenShrink(jobs, 40)
	if targets[1] != 20 || targets[2] != 20 {
		t.Fatalf("targets %v, want 20/20", targets)
	}
}

func TestPlanEvenShrinkUneven(t *testing.T) {
	// Sizes 50 and 10 (min 5 each), need 30: water level 15 releases 35
	// (50->15) — too much; level 20 releases 30 exactly: 50->20, 10 stays.
	jobs := []*job.Job{
		mkRunning(1, 50, 5, 50),
		mkRunning(2, 10, 5, 10),
	}
	targets := planEvenShrink(jobs, 30)
	if targets[1] != 20 {
		t.Fatalf("job 1 target %d, want 20", targets[1])
	}
	if _, ok := targets[2]; ok {
		t.Fatalf("job 2 should be untouched, got %d", targets[2])
	}
}

func TestPlanEvenShrinkRespectsMinimums(t *testing.T) {
	// Job 1 pinned near its min; job 2 must absorb the rest.
	jobs := []*job.Job{
		mkRunning(1, 20, 18, 20),
		mkRunning(2, 60, 10, 60),
	}
	targets := planEvenShrink(jobs, 40)
	if tgt, ok := targets[1]; ok && tgt < 18 {
		t.Fatalf("job 1 shrunk below its minimum: %d", tgt)
	}
	total := 0
	for _, j := range jobs {
		if tgt, ok := targets[j.ID]; ok {
			total += j.CurSize - tgt
		}
	}
	if total != 40 {
		t.Fatalf("released %d, want exactly 40", total)
	}
}

func TestPlanEvenShrinkZeroNeed(t *testing.T) {
	jobs := []*job.Job{mkRunning(1, 40, 8, 40)}
	if got := planEvenShrink(jobs, 0); len(got) != 0 {
		t.Fatalf("zero need should shrink nothing: %v", got)
	}
}

// Property: for any feasible request, planEvenShrink releases exactly the
// requested count, never violates minimums, never grows a job, and the
// result is max-min fair (no released node could move from a smaller to a
// larger final size).
func TestPlanEvenShrinkProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		jobs := make([]*job.Job, n)
		supply := 0
		for i := range jobs {
			max := 2 + r.Intn(100)
			min := 1 + r.Intn(max)
			cur := min + r.Intn(max-min+1)
			jobs[i] = mkRunning(i+1, max, min, cur)
			supply += cur - min
		}
		if supply == 0 {
			return true
		}
		need := 1 + r.Intn(supply)
		targets := planEvenShrink(jobs, need)

		released := 0
		finals := map[int]int{}
		for _, j := range jobs {
			final := j.CurSize
			if tgt, ok := targets[j.ID]; ok {
				if tgt >= j.CurSize || tgt < j.MinSize {
					return false // must strictly shrink, never below min
				}
				final = tgt
			}
			finals[j.ID] = final
			released += j.CurSize - final
		}
		if released != need {
			return false
		}
		// Max-min fairness: if job A ended larger than job B+1, then B must
		// be pinned at its min or untouched at its current size — otherwise
		// the plan should have taken from A instead.
		for _, a := range jobs {
			for _, b := range jobs {
				if a == b {
					continue
				}
				fa, fb := finals[a.ID], finals[b.ID]
				_, bCut := targets[b.ID]
				if fa > fb+1 && bCut && fb > b.MinSize {
					// b sits below a's level with slack left: only fair if a
					// could not give more — a is untouched (never cuttable
					// further by the level search) or already pinned at its
					// own minimum.
					if tgtA, aCut := targets[a.ID]; aCut && tgtA > a.MinSize {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
