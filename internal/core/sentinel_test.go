package core

import (
	"testing"

	"hybridsched/internal/simtime"
)

func TestReleaseThresholdSentinel(t *testing.T) {
	if got := (Config{}).withDefaults().ReleaseThreshold; got != 10*simtime.Minute {
		t.Fatalf("zero value: threshold %d, want the 10-minute default", got)
	}
	if got := (Config{ReleaseThreshold: -1}).withDefaults().ReleaseThreshold; got != 0 {
		t.Fatalf("negative sentinel: threshold %d, want explicit 0", got)
	}
	if got := (Config{ReleaseThreshold: 42}).withDefaults().ReleaseThreshold; got != 42 {
		t.Fatalf("explicit value: threshold %d, want 42", got)
	}
}
