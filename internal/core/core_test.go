package core

import (
	"testing"

	"hybridsched/internal/checkpoint"
	"hybridsched/internal/job"
	"hybridsched/internal/sim"
	"hybridsched/internal/simtime"
)

func rigid(id int, submit int64, size int, work int64) *job.Job {
	return job.NewRigid(id, 0, submit, size, work, work, 0, checkpoint.Plan{})
}

func rigidCkpt(id int, submit int64, size int, work, est, setup int64, plan checkpoint.Plan) *job.Job {
	return job.NewRigid(id, 0, submit, size, work, est, setup, plan)
}

func malleable(id int, submit int64, max, min int, work int64) *job.Job {
	return job.NewMalleable(id, 0, submit, max, min, work, work, 0)
}

func odNoNotice(id int, submit int64, size int, work int64) *job.Job {
	return job.NewOnDemand(id, 0, submit, size, work, work, 0, job.NoNotice, submit, submit)
}

func odNotice(id int, notice, estArrival, actual int64, size int, work int64, cat job.NoticeCategory) *job.Job {
	return job.NewOnDemand(id, 0, actual, size, work, work, 0, cat, notice, estArrival)
}

func runMech(t *testing.T, name string, nodes int, jobs []*job.Job) *sim.Engine {
	t.Helper()
	m, err := ByName(name, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(sim.Config{Nodes: nodes, Validate: true}, jobs, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestByNameAllSix(t *testing.T) {
	for _, name := range Names() {
		m, err := ByName(name, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() != name {
			t.Fatalf("round trip: %q != %q", m.Name(), name)
		}
	}
	if _, err := ByName("X&Y", Config{}); err == nil {
		t.Fatal("unknown name should fail")
	}
}

func TestNPAAPreemptsRigidInstantly(t *testing.T) {
	victim := rigid(1, 0, 80, 5000)
	od := odNoNotice(2, 1000, 80, 500)
	runMech(t, "N&PAA", 100, []*job.Job{victim, od})
	if od.StartTime != 1000 {
		t.Fatalf("od start %d, want 1000", od.StartTime)
	}
	if victim.PreemptCount != 1 {
		t.Fatal("victim not preempted")
	}
	// Directed return: the victim resumes right when the od job completes.
	if victim.StartTime != 0 || victim.EndTime != 1500+5000 {
		t.Fatalf("victim end %d, want 6500", victim.EndTime)
	}
}

func TestNPAAPrefersCheapVictims(t *testing.T) {
	// Two candidates: a malleable job (overhead = setup 0) and a rigid job
	// without checkpoints (overhead = unsaved work, large). PAA must preempt
	// the malleable one.
	mall := malleable(1, 0, 50, 10, 5000)
	rig := rigid(2, 0, 50, 5000)
	od := odNoNotice(3, 1000, 40, 500)
	runMech(t, "N&PAA", 100, []*job.Job{mall, rig, od})
	if mall.PreemptCount != 1 {
		t.Fatal("malleable (cheap) candidate should be preempted")
	}
	if rig.PreemptCount != 0 {
		t.Fatal("rigid (expensive) candidate should be spared")
	}
	// Malleable preemption: od starts at warning expiry.
	if od.StartTime != 1000+job.WarningPeriod {
		t.Fatalf("od start %d", od.StartTime)
	}
}

func TestNPAAInsufficientGoesToQueueFront(t *testing.T) {
	// Two on-demand jobs cover the system; a third cannot preempt them
	// (on-demand jobs are never preempted) and must wait in front.
	odA := odNoNotice(1, 0, 60, 2000)
	odB := odNoNotice(2, 10, 40, 3000)
	odC := odNoNotice(3, 100, 50, 500)
	late := rigid(4, 50, 10, 10_000) // FCFS-earlier than odC but must not pass it
	e := runMech(t, "N&PAA", 100, []*job.Job{odA, odB, odC, late})
	_ = e
	if odC.StartTime != 2000 {
		t.Fatalf("odC start %d, want 2000 (when odA ends)", odC.StartTime)
	}
	if late.StartTime < 2000 {
		t.Fatalf("rigid job %d overtook a queued on-demand job", late.StartTime)
	}
}

func TestNSPAAShrinksEvenly(t *testing.T) {
	// Two malleable jobs at 40 each (min 8); od needs 40 -> both shrink to 20.
	m1 := malleable(1, 0, 40, 8, 4000)
	m2 := malleable(2, 0, 40, 8, 4000)
	od := odNoNotice(3, 1000, 40, 500)
	runMech(t, "N&SPAA", 80, []*job.Job{m1, m2, od})
	if od.StartTime != 1000 {
		t.Fatalf("od start %d, want instant", od.StartTime)
	}
	if m1.ShrinkCount != 1 || m2.ShrinkCount != 1 {
		t.Fatalf("shrink counts %d %d", m1.ShrinkCount, m2.ShrinkCount)
	}
	if m1.PreemptCount != 0 || m2.PreemptCount != 0 {
		t.Fatal("shrink must not preempt")
	}
}

func TestNSPAAExpandsBackAfterCompletion(t *testing.T) {
	m := malleable(1, 0, 100, 20, 10_000)
	od := odNoNotice(2, 1000, 80, 500)
	runMech(t, "N&SPAA", 100, []*job.Job{m, od})
	// Work conservation with expansion back at t=1500:
	// 0..1000 @100 (100k), 1000..1500 @20 (10k), rest @100.
	wantEnd := int64(1500) + (10_000*100-110_000+99)/100
	if m.EndTime != wantEnd {
		t.Fatalf("malleable end %d, want %d (expansion failed?)", m.EndTime, wantEnd)
	}
}

func TestNSPAAFallsBackToPAA(t *testing.T) {
	// Malleable supply (30-6=24) cannot cover the od request of 80; SPAA
	// must fall back to preempting whole jobs (malleable first: cheapest).
	mall := malleable(1, 0, 30, 6, 5000)
	rig := rigid(2, 0, 70, 5000)
	od := odNoNotice(3, 1000, 80, 500)
	runMech(t, "N&SPAA", 100, []*job.Job{mall, rig, od})
	if mall.ShrinkCount != 0 {
		t.Fatal("fallback must not shrink")
	}
	if mall.PreemptCount != 1 {
		t.Fatal("malleable should be preempted under PAA fallback")
	}
	if rig.PreemptCount != 1 {
		t.Fatal("rigid must also be preempted to cover 80 nodes")
	}
}

func TestCUACollectsReleasedNodes(t *testing.T) {
	// A 50-node job ends at t=1000, between the notice (t=700) and the
	// arrival (t=2500). CUA must reserve those nodes, so a later rigid
	// arrival cannot steal them, and the od job starts instantly.
	filler := rigid(1, 0, 80, 1000)
	thief := rigid(2, 1200, 60, 4000)
	od := odNotice(3, 700, 2400, 2500, 60, 600, job.ArriveLate)
	e := runMech(t, "CUA&PAA", 100, []*job.Job{filler, thief, od})
	_ = e
	if od.StartTime != 2500 {
		t.Fatalf("od start %d, want instant 2500", od.StartTime)
	}
	// The thief must wait for the od job (not enough nodes while 60 are
	// reserved): it can only run after od completes.
	if thief.StartTime < 3100 {
		t.Fatalf("thief started %d, stole reserved nodes", thief.StartTime)
	}
	if filler.PreemptCount+thief.PreemptCount+od.PreemptCount != 0 {
		t.Fatal("nothing should be preempted")
	}
}

func TestCUAReleaseTimeoutFreesNodes(t *testing.T) {
	// Notice at t=0 reserves 60 free nodes, estimated arrival t=1800, but
	// the job arrives very late (t=100000). Reservation must dissolve at
	// 1800+600, letting the queued rigid job run.
	od := odNotice(1, 0, 1800, 100_000, 60, 300, job.ArriveLate)
	waiting := rigid(2, 100, 80, 1000)
	runMech(t, "CUA&PAA", 100, []*job.Job{od, waiting})
	if waiting.StartTime != 1800+10*simtime.Minute {
		t.Fatalf("waiting start %d, want release at %d", waiting.StartTime, 1800+10*simtime.Minute)
	}
	// The od job still gets served at its actual arrival (via preemption).
	if od.StartTime != 100_000 {
		t.Fatalf("od start %d", od.StartTime)
	}
}

func TestCUACompetitionEarliestNoticeWins(t *testing.T) {
	// Two on-demand jobs with notices at t=100 and t=200 compete for the 50
	// nodes released at t=1000. The earlier notice collects them.
	filler := rigid(1, 0, 100, 1000)
	odA := odNotice(2, 100, 1900, 2000, 50, 500, job.AccurateNotice)
	odB := odNotice(3, 200, 1900, 2000, 50, 8000, job.AccurateNotice)
	runMech(t, "CUA&PAA", 100, []*job.Job{filler, odA, odB})
	if odA.StartTime != 2000 {
		t.Fatalf("odA start %d, want 2000", odA.StartTime)
	}
	// odB also starts instantly: at arrival the other 50 nodes are free
	// (filler ended at 1000). Its gather came from the free pool at arrival.
	if odB.StartTime != 2000 {
		t.Fatalf("odB start %d", odB.StartTime)
	}
}

func TestCUPPreemptsRigidAfterCheckpoint(t *testing.T) {
	// Rigid job with checkpoints every 1000s work (overhead 50, setup 0).
	// Checkpoint completions at 1050, 2100, 3150... Notice t=1500 with
	// estimated arrival 3000: CUP should preempt right after the t=2100
	// checkpoint, losing nothing.
	plan := checkpoint.Plan{Interval: 1000, Overhead: 50}
	victim := rigidCkpt(1, 0, 100, 10_000, 10_000, 0, plan)
	od := odNotice(2, 1500, 3000, 3000, 100, 500, job.AccurateNotice)
	runMech(t, "CUP&PAA", 100, []*job.Job{victim, od})
	if victim.PreemptCount != 1 {
		t.Fatal("victim not preempted")
	}
	if od.StartTime != 3000 {
		t.Fatalf("od start %d, want instant 3000", od.StartTime)
	}
	// Preempted at t=2100, right after the second checkpoint completed:
	// nothing past the checkpoint had accumulated, so zero computation lost.
	if victim.Acct.Lost != 0 {
		t.Fatalf("lost %d node-seconds, want 0 (preempt right after checkpoint)", victim.Acct.Lost)
	}
	// Resume at od completion (3500) with 8000s work left and 7 remaining
	// checkpoints (marks 3000..9000): end = 3500 + 8000 + 7*50.
	if victim.EndTime != 3500+8000+350 {
		t.Fatalf("victim end %d, want %d", victim.EndTime, 3500+8000+350)
	}
}

func TestCUPEarlyArrivalFallsThroughToArrivalStrategy(t *testing.T) {
	// CUP plans a malleable preemption at estArrival-120=2880, but the od
	// job arrives at 2000 before the plan fires. The arrival strategy
	// (SPAA) must handle it by shrinking instead.
	m := malleable(1, 0, 100, 20, 10_000)
	od := odNotice(2, 1500, 3000, 2000, 60, 500, job.ArriveEarly)
	runMech(t, "CUP&SPAA", 100, []*job.Job{m, od})
	if od.StartTime != 2000 {
		t.Fatalf("od start %d, want instant 2000", od.StartTime)
	}
	if m.PreemptCount != 0 {
		t.Fatal("planned preemption should have been cancelled")
	}
	if m.ShrinkCount != 1 {
		t.Fatal("SPAA should shrink at early arrival")
	}
}

func TestCUPCountsExpectedReleases(t *testing.T) {
	// A job estimated to end before the predicted arrival must NOT be
	// preempted: CUP counts it as an expected release.
	endingSoon := rigid(1, 0, 60, 1000) // ends 1000 <= estArrival 2000
	od := odNotice(2, 500, 2000, 2000, 60, 300, job.AccurateNotice)
	runMech(t, "CUP&PAA", 100, []*job.Job{endingSoon, od})
	if endingSoon.PreemptCount != 0 {
		t.Fatal("expected-release job must not be preempted")
	}
	if od.StartTime != 2000 {
		t.Fatalf("od start %d", od.StartTime)
	}
}

func TestDirectedReturnResumesLender(t *testing.T) {
	// Lender preempted for an od job; another rigid job arrives meanwhile.
	// At od completion the lender holds a private reservation and resumes
	// immediately, ahead of the (smaller-demand) competitor it would
	// otherwise lose nodes to.
	lender := rigid(1, 0, 80, 5000)
	od := odNoNotice(2, 1000, 80, 1000)
	compet := rigid(3, 1100, 80, 400)
	runMech(t, "N&PAA", 100, []*job.Job{lender, od, compet})
	// od runs 1000..2000; lender resumes at 2000 with its returned nodes.
	if lender.StartTime != 0 || lender.PreemptCount != 1 {
		t.Fatal("lender lifecycle wrong")
	}
	if od.StartTime != 1000 {
		t.Fatalf("od start %d", od.StartTime)
	}
	// FCFS puts the lender (submit 0) ahead of the competitor (1100) anyway;
	// the directed return guarantees its nodes are not poached.
	wantResume := int64(2000)
	results := lender.EndTime - 5000 // lender end minus full rerun
	if results != wantResume {
		t.Fatalf("lender resumed at %d, want %d", results, wantResume)
	}
}

func TestOnDemandJobsNeverPreempted(t *testing.T) {
	odA := odNoNotice(1, 0, 100, 3000)
	odB := odNoNotice(2, 500, 50, 500)
	runMech(t, "N&PAA", 100, []*job.Job{odA, odB})
	if odA.PreemptCount != 0 {
		t.Fatal("on-demand job was preempted")
	}
	// odB waits for odA (cannot preempt it).
	if odB.StartTime != 3000 {
		t.Fatalf("odB start %d, want 3000", odB.StartTime)
	}
}

func TestMechanismNames(t *testing.T) {
	m := New(NoticeCUP, ArrivalSPAA, Config{})
	if m.Name() != "CUP&SPAA" {
		t.Fatalf("name %q", m.Name())
	}
	if !m.QueueOnDemandFirst() {
		t.Fatal("mechanisms must prioritize on-demand jobs in queue")
	}
	if NoticeKind(9).String() == "" || ArrivalKind(9).String() == "" {
		t.Fatal("unknown kinds should still render")
	}
}
