package core

import (
	"sort"

	"hybridsched/internal/job"
)

// OnODArrival handles the actual arrival of an on-demand job
// (paper §III-B.2). It returns true when the mechanism either started the
// job or holds a pending start behind in-flight warnings; false sends the
// job to the front of the waiting queue.
func (m *Mechanism) OnODArrival(j *job.Job) bool {
	s := m.state(j)
	s.arrived = true
	// Arrival ends the preparation phase: evict squatters from our reserved
	// nodes first (their nodes return to the reservation), then stop
	// collection, planned preemptions, and the no-show timeout.
	if m.cfg.BackfillReserved && m.e.SquattedCount(j.ID) > 0 {
		m.e.EvictSquatters(j.ID)
	}
	m.stopPreparation(s)

	need := j.Size - m.gathered(j.ID) - s.incoming
	if need <= 0 {
		return m.tryStart(s)
	}
	free := m.e.Cluster().FreeCount()
	if free > 0 {
		m.e.Cluster().Reserve(j.ID, min(need, free))
		need = j.Size - m.gathered(j.ID) - s.incoming
	}
	if need <= 0 {
		return m.tryStart(s)
	}

	if m.arrival == ArrivalSPAA {
		if m.shrinkEvenly(s, need) {
			return m.tryStart(s)
		}
		// "If the supply cannot meet, we will use PAA" (§III-B.2).
	}
	return m.preemptAtArrival(s, need)
}

// tryStart starts the job if its reservation is complete, or records a
// pending start while warnings are in flight. It returns true unless the job
// must queue.
func (m *Mechanism) tryStart(s *odState) bool {
	if s.started {
		return true
	}
	if m.e.Cluster().ReservedCount(s.j.ID) >= s.j.Size {
		m.e.StartOnDemand(s.j)
		return true
	}
	if s.incoming > 0 {
		s.pending = true
		return true
	}
	// The job waits at the front of the queue for additional available
	// nodes (Obs. 9). It keeps its partial gather and keeps collecting
	// released nodes with its original notice priority — released nodes go
	// to the on-demand job with the earliest advance notice (§III-B.1), and
	// an already-arrived job is always earlier than a newly noticed one.
	m.registerCollector(s)
	return false
}

// preemptAtArrival implements PAA: list the running rigid and malleable jobs
// in ascending preemption-overhead order and preempt whole jobs until the
// request is covered. If even preempting everything cannot cover it, nothing
// is preempted and the job waits at the front of the queue (§III-B.2).
func (m *Mechanism) preemptAtArrival(s *odState, need int) bool {
	now := m.e.Now()
	cands := m.e.Running()
	preemptable := 0
	for _, r := range cands {
		preemptable += r.CurSize
	}
	if preemptable < need {
		m.registerCollector(s)
		return false // insufficient: wait at the front, keep collecting
	}
	sort.SliceStable(cands, func(a, b int) bool {
		oa, ob := cands[a].PreemptionOverhead(now), cands[b].PreemptionOverhead(now)
		if oa != ob {
			return oa < ob
		}
		return cands[a].ID < cands[b].ID
	})
	for _, victim := range cands {
		if need <= 0 {
			break
		}
		m.preemptFor(s, victim)
		need = s.j.Size - m.gathered(s.j.ID) - s.incoming
	}
	return m.tryStart(s)
}

// shrinkEvenly implements the SPAA supply step: if the running malleable
// jobs can release `need` nodes by shrinking toward their minimum sizes, they
// are shrunk evenly (water-filling on their sizes) and the freed nodes are
// reserved for the on-demand job. Returns false when the supply is too small
// (no job is touched in that case).
func (m *Mechanism) shrinkEvenly(s *odState, need int) bool {
	var malleable []*job.Job
	supply := 0
	for _, r := range m.e.Running() {
		if r.Class == job.Malleable {
			malleable = append(malleable, r)
			supply += r.CurSize - r.MinSize
		}
	}
	if supply < need {
		return false
	}
	targets := planEvenShrink(malleable, need)
	for _, victim := range malleable {
		target, ok := targets[victim.ID]
		if !ok || target >= victim.CurSize {
			continue
		}
		freed := m.e.ShrinkMalleable(victim, target)
		m.takeForClaim(s, freed, loanShrunk, victim.ID)
	}
	return true
}

// planEvenShrink computes new sizes for the malleable jobs so that exactly
// `need` nodes are released, sizes stay at or above each job's minimum, and
// the result is as even as possible (max-min fairness: nodes are taken from
// the currently largest jobs first). The caller guarantees the aggregate
// supply covers need.
func planEvenShrink(jobs []*job.Job, need int) map[int]int {
	targets := make(map[int]int, len(jobs))
	if need <= 0 {
		return targets
	}
	type entry struct {
		id        int
		size, min int
	}
	entries := make([]entry, 0, len(jobs))
	for _, j := range jobs {
		entries = append(entries, entry{id: j.ID, size: j.CurSize, min: j.MinSize})
	}
	// Lower a water level L: every job shrinks to max(min, min(size, L)).
	// Binary search the highest L that still releases >= need.
	released := func(level int) int {
		total := 0
		for _, e := range entries {
			target := level
			if target > e.size {
				target = e.size
			}
			if target < e.min {
				target = e.min
			}
			total += e.size - target
		}
		return total
	}
	lo, hi := 0, 0
	for _, e := range entries {
		if e.size > hi {
			hi = e.size
		}
	}
	// Find the largest level with released(level) >= need.
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if released(mid) >= need {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	level := lo
	// Apply the level, then hand the overshoot back one node per level-cut
	// job (deterministic by ID) so exactly `need` nodes are released while
	// final sizes stay within one node of each other at the water level.
	// The overshoot is strictly smaller than the number of jobs cut exactly
	// at the level, so a single pass suffices.
	over := released(level) - need
	sort.Slice(entries, func(a, b int) bool { return entries[a].id < entries[b].id })
	for _, e := range entries {
		target := level
		if target > e.size {
			target = e.size
		}
		if target < e.min {
			target = e.min
		}
		if over > 0 && target == level && e.size > level {
			target++
			over--
		}
		if target < e.size {
			targets[e.id] = target
		}
	}
	return targets
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
