package core

import (
	"fmt"
	"sort"

	"hybridsched/internal/eventq"
	"hybridsched/internal/nodeset"
	"hybridsched/internal/sim"
	"hybridsched/internal/snapshot"
)

// Timer payload tags.
const (
	timerTagTimeout uint8 = 1
	timerTagCUP     uint8 = 2
)

// EncodeTimerPayload serializes the mechanism's two timer payloads: the
// no-show release timeout and a planned CUP preemption.
func (m *Mechanism) EncodeTimerPayload(e *snapshot.Enc, payload any) error {
	switch p := payload.(type) {
	case timeoutTimer:
		e.U8(timerTagTimeout)
		e.Int(p.odID)
	case cupTimer:
		e.U8(timerTagCUP)
		e.Int(p.odID)
		e.Int(p.victim)
	default:
		return fmt.Errorf("core: unknown timer payload %T", payload)
	}
	return nil
}

// DecodeTimerPayload reads one payload written by EncodeTimerPayload.
func (m *Mechanism) DecodeTimerPayload(d *snapshot.Dec) (any, error) {
	switch tag := d.U8(); tag {
	case timerTagTimeout:
		return timeoutTimer{odID: d.Int()}, d.Err()
	case timerTagCUP:
		return cupTimer{odID: d.Int(), victim: d.Int()}, d.Err()
	default:
		if err := d.Err(); err != nil {
			return nil, err
		}
		return nil, d.Failf("core: unknown timer tag %d", tag)
	}
}

// EncodeSnapshotState serializes the mechanism's dynamic state: every
// on-demand job's preparation state, the collector order, and the outstanding
// preemption victims. Map-shaped state is written in sorted key order; timer
// handles are written as event sequence numbers, and only live ones — a fired
// or cancelled handle is semantically dead (CancelTimer on it is a no-op) and
// its event no longer exists to re-link.
func (m *Mechanism) EncodeSnapshotState(e *snapshot.Enc) error {
	ids := make([]int, 0, len(m.states))
	for id := range m.states {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	e.U32(uint32(len(ids)))
	for _, id := range ids {
		s := m.states[id]
		e.Int(id)
		e.Bool(s.arrived)
		e.Bool(s.started)
		e.Bool(s.collecting)
		e.Bool(s.pending)
		e.Int(s.incoming)
		if s.timeout != nil && m.e.TimerPending(s.timeout) {
			e.Bool(true)
			e.U64(s.timeout.Seq())
		} else {
			e.Bool(false)
		}
		live := make([]*eventq.Event, 0, len(s.cupTimers))
		for _, ev := range s.cupTimers {
			if m.e.TimerPending(ev) {
				live = append(live, ev)
			}
		}
		e.U32(uint32(len(live)))
		for _, ev := range live {
			e.U64(ev.Seq())
		}
		e.U32(uint32(len(s.loans)))
		for _, l := range s.loans {
			e.Int(l.lender)
			e.U8(uint8(l.kind))
			l.nodes.EncodeSnapshot(e)
		}
	}
	// Collectors, in notice order. An entry whose state was deleted at
	// completion is dropped: the next offer pass would discard it unchanged.
	collecting := make([]int, 0, len(m.collectors))
	for _, s := range m.collectors {
		if _, ok := m.states[s.j.ID]; ok {
			collecting = append(collecting, s.j.ID)
		}
	}
	e.Ints(collecting)
	vids := make([]int, 0, len(m.victims))
	for id := range m.victims {
		vids = append(vids, id)
	}
	sort.Ints(vids)
	e.U32(uint32(len(vids)))
	for _, id := range vids {
		v := m.victims[id]
		e.Int(id)
		e.Int(v.claim)
		e.Int(v.expect)
	}
	return nil
}

// DecodeSnapshotState restores state written by EncodeSnapshotState. Jobs and
// timer events are re-linked through the restore context; everything decodes
// into staging maps and commits only when the whole section has validated, so
// a malformed payload leaves the mechanism untouched.
func (m *Mechanism) DecodeSnapshotState(d *snapshot.Dec, rc *sim.RestoreContext) error {
	n := d.Count(29) // id + 4 flags + incoming + timeout flag + 2 counts
	states := make(map[int]*odState, n)
	for i := 0; i < n; i++ {
		id := d.Int()
		s := &odState{
			arrived:    d.Bool(),
			started:    d.Bool(),
			collecting: d.Bool(),
			pending:    d.Bool(),
			incoming:   d.Int(),
		}
		if d.Err() != nil {
			return d.Err()
		}
		j, ok := rc.JobByID(id)
		if !ok {
			return d.Failf("core: state for unknown job %d", id)
		}
		s.j = j
		if d.Bool() {
			seq := d.U64()
			if d.Err() != nil {
				return d.Err()
			}
			ev, ok := rc.Event(seq)
			if !ok {
				return d.Failf("core: timeout timer seq %d not pending", seq)
			}
			s.timeout = ev
		}
		nt := d.Count(8)
		for k := 0; k < nt; k++ {
			seq := d.U64()
			if d.Err() != nil {
				return d.Err()
			}
			ev, ok := rc.Event(seq)
			if !ok {
				return d.Failf("core: preemption timer seq %d not pending", seq)
			}
			s.cupTimers = append(s.cupTimers, ev)
		}
		nl := d.Count(13)
		for k := 0; k < nl; k++ {
			lender := d.Int()
			kind := loanKind(d.U8())
			set := nodeset.DecodeSnapshotSet(d)
			if d.Err() != nil {
				return d.Err()
			}
			if kind != loanPreempted && kind != loanShrunk {
				return d.Failf("core: invalid loan kind %d", kind)
			}
			s.loans = append(s.loans, loan{lender: lender, kind: kind, nodes: set})
		}
		if d.Err() != nil {
			return d.Err()
		}
		if _, dup := states[id]; dup {
			return d.Failf("core: duplicate state for job %d", id)
		}
		states[id] = s
	}
	var collectors []*odState
	seen := make(map[int]bool)
	for _, id := range d.Ints() {
		s, ok := states[id]
		if !ok {
			return d.Failf("core: collector %d has no state", id)
		}
		if seen[id] {
			return d.Failf("core: duplicate collector %d", id)
		}
		seen[id] = true
		collectors = append(collectors, s)
	}
	nv := d.Count(24)
	victims := make(map[int]victimInfo, nv)
	for i := 0; i < nv; i++ {
		id := d.Int()
		v := victimInfo{claim: d.Int(), expect: d.Int()}
		if _, dup := victims[id]; dup {
			return d.Failf("core: duplicate victim %d", id)
		}
		victims[id] = v
	}
	if d.Err() != nil {
		return d.Err()
	}
	m.states = states
	m.collectors = collectors
	m.victims = victims
	return nil
}
