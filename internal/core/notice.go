package core

import (
	"sort"

	"hybridsched/internal/job"
	"hybridsched/internal/nodeset"
)

// OnNotice handles an on-demand job's advance notice (paper §III-B.1).
func (m *Mechanism) OnNotice(j *job.Job) {
	if m.notice == NoticeN {
		return // N: the baseline notice strategy ignores advance notices.
	}
	s := m.state(j)
	if s.arrived || s.started {
		return
	}
	// Both CUA and CUP first reserve the currently available nodes.
	m.e.Cluster().Reserve(j.ID, j.Size-m.gathered(j.ID))
	if m.cfg.BackfillReserved {
		m.e.SetClaimBackfillable(j.ID, true)
	}
	// Release reserved nodes if the job has not shown up some time after its
	// estimated arrival (paper §III-B.4).
	s.timeout = m.e.ScheduleTimer(j.EstArrival+m.cfg.ReleaseThreshold, timeoutTimer{odID: j.ID})

	if m.gathered(j.ID) < j.Size {
		// Collect nodes released by finishing jobs until satisfied or the
		// job arrives; competing on-demand jobs are served in notice order.
		m.registerCollector(s)
	}
	if m.notice == NoticeCUP {
		m.planCUP(s)
	}
}

// planCUP covers the shortfall that released nodes cannot: it counts running
// jobs whose estimated end precedes the predicted arrival as expected
// releases, then schedules preemptions for the cheapest remaining candidates
// — rigid jobs right after their next checkpoint before the predicted
// arrival, malleable jobs one warning period ahead of it (paper §III-B.1).
func (m *Mechanism) planCUP(s *odState) {
	now := m.e.Now()
	estArrival := s.j.EstArrival
	shortfall := s.j.Size - m.gathered(s.j.ID)

	type candidate struct {
		j        *job.Job
		overhead int64
		fireAt   int64
	}
	var cands []candidate
	for _, r := range m.e.Running() {
		var estEnd int64
		if r.Class == job.Malleable {
			r.UpdateProgress(now)
			estEnd = r.MalleableEstimatedEnd(now)
		} else {
			estEnd = r.EstimatedEnd()
		}
		if estEnd <= estArrival {
			// Expected release: its nodes come back on their own.
			shortfall -= r.CurSize
			continue
		}
		switch r.Class {
		case job.Malleable:
			fire := estArrival - job.WarningPeriod
			if fire < now {
				fire = now
			}
			cands = append(cands, candidate{j: r, overhead: r.SetupTime, fireAt: fire})
		case job.Rigid:
			// Only rigid jobs that complete a checkpoint before the
			// predicted arrival are cheap to preempt; the rest are left to
			// the arrival strategy.
			if ct, ok := r.NextCheckpointCompletion(now); ok && ct <= estArrival {
				cands = append(cands, candidate{j: r, overhead: r.SetupTime, fireAt: ct})
			}
		}
	}
	if shortfall <= 0 {
		return
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].overhead != cands[b].overhead {
			return cands[a].overhead < cands[b].overhead
		}
		return cands[a].j.ID < cands[b].j.ID
	})
	for _, c := range cands {
		if shortfall <= 0 {
			break
		}
		ev := m.e.ScheduleTimer(c.fireAt, cupTimer{odID: s.j.ID, victim: c.j.ID})
		s.cupTimers = append(s.cupTimers, ev)
		shortfall -= c.j.CurSize
	}
}

// handleCUPPreempt executes one planned CUP preemption if it is still needed
// and the victim is still running.
func (m *Mechanism) handleCUPPreempt(odID, victimID int) {
	s, ok := m.states[odID]
	if !ok || s.arrived || s.started {
		return
	}
	need := s.j.Size - m.gathered(odID) - s.incoming
	if need <= 0 {
		return
	}
	var victim *job.Job
	for _, r := range m.e.Running() {
		if r.ID == victimID {
			victim = r
			break
		}
	}
	if victim == nil {
		return // ended or already preempted by someone else
	}
	m.preemptFor(s, victim)
}

// preemptFor preempts victim on behalf of claim s: rigid jobs vacate
// immediately and the claim keeps what it needs; malleable jobs get the
// two-minute warning and deliver on expiry.
func (m *Mechanism) preemptFor(s *odState, victim *job.Job) {
	if victim.Class == job.Malleable {
		expect := victim.CurSize
		m.victims[victim.ID] = victimInfo{claim: s.j.ID, expect: expect}
		s.incoming += expect
		m.e.PreemptMalleableWithWarning(victim, s.j.ID)
		return
	}
	freed := m.e.PreemptRigid(victim)
	m.takeForClaim(s, freed, loanPreempted, victim.ID)
}

// takeForClaim moves as much of the freed set as the claim still needs into
// its reservation and records the loan against the lender.
func (m *Mechanism) takeForClaim(s *odState, freed *nodeset.Set, kind loanKind, lender int) {
	need := s.j.Size - m.gathered(s.j.ID)
	if need <= 0 || freed.Empty() {
		return
	}
	take := freed.Clone().Pick(need)
	if take.Empty() {
		return
	}
	m.e.Cluster().ReserveExact(s.j.ID, take)
	s.loans = append(s.loans, loan{lender: lender, kind: kind, nodes: take})
}

// registerCollector adds an on-demand job to the collector list (idempotent).
// Registrations happen at their priority instant — the notice time, or the
// arrival time for jobs without (useful) notice — so append order is exactly
// the paper's earliest-advance-notice order.
func (m *Mechanism) registerCollector(s *odState) {
	if s.collecting || s.started {
		return
	}
	s.collecting = true
	m.collectors = append(m.collectors, s)
}

// offerToCollectors hands freshly released nodes to collecting on-demand
// jobs in advance-notice order (paper §III-B.1) and returns whatever is left
// over. A queued (already arrived) collector whose gather completes starts
// on the spot.
func (m *Mechanism) offerToCollectors(freed *nodeset.Set) *nodeset.Set {
	remaining := freed.Clone()
	if len(m.collectors) == 0 {
		return remaining
	}
	active := m.collectors[:0]
	for _, s := range m.collectors {
		if !s.collecting || s.started {
			continue
		}
		need := s.j.Size - m.gathered(s.j.ID)
		if need > 0 && !remaining.Empty() {
			take := remaining.Pick(need)
			m.e.Cluster().ReserveExact(s.j.ID, take)
			need = s.j.Size - m.gathered(s.j.ID)
		}
		if need <= 0 {
			s.collecting = false
			if s.arrived && !s.started {
				m.e.StartOnDemand(s.j)
			}
			continue
		}
		active = append(active, s)
	}
	m.collectors = active
	return remaining
}

// handleReleaseTimeout releases an absent on-demand job's reservation
// (paper §III-B.4) and gives loaned nodes back to their lenders.
func (m *Mechanism) handleReleaseTimeout(odID int) {
	s, ok := m.states[odID]
	if !ok || s.arrived || s.started {
		return
	}
	m.stopPreparation(s)
	held := m.e.Cluster().UnreserveAll(odID)
	// The preparation preempted or shrank jobs for nothing: give the nodes
	// straight back to the lenders before the pool swallows them.
	m.returnLoans(s, held)
}

// stopPreparation cancels every outstanding preparation activity for an
// on-demand job: collection, planned preemptions, timeout, and (if enabled)
// squatter eviction bookkeeping. Reserved nodes are left in place.
func (m *Mechanism) stopPreparation(s *odState) {
	s.collecting = false
	for _, ev := range s.cupTimers {
		m.e.CancelTimer(ev)
	}
	s.cupTimers = nil
	if s.timeout != nil {
		m.e.CancelTimer(s.timeout)
		s.timeout = nil
	}
	if m.cfg.BackfillReserved {
		m.e.DropClaimSquats(s.j.ID)
		m.e.SetClaimBackfillable(s.j.ID, false)
	}
}
