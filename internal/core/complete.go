package core

import (
	"hybridsched/internal/job"
	"hybridsched/internal/nodeset"
)

// OnJobCompleted reacts to any job completion:
//
//  1. a completing on-demand job returns its leased nodes to the lenders
//     (paper §III-B.3);
//  2. a malleable job that finished inside a preemption warning delivers its
//     nodes to the claim that was waiting for them;
//  3. whatever remains is offered to collecting on-demand jobs in notice
//     order (CUA/CUP, §III-B.1).
func (m *Mechanism) OnJobCompleted(j *job.Job, freed *nodeset.Set) {
	remaining := freed
	if j.Class == job.OnDemand {
		if s, ok := m.states[j.ID]; ok {
			remaining = m.returnLoans(s, remaining)
			delete(m.states, j.ID)
		}
	}
	if v, ok := m.victims[j.ID]; ok {
		// The victim completed before its warning expired; the claim takes
		// what it needs from the released nodes without owing a loan (the
		// lender no longer exists to be repaid).
		delete(m.victims, j.ID)
		remaining = m.deliverToClaim(v, remaining, j.ID, false)
	}
	m.offerToCollectors(remaining)
}

// OnWarningExpired delivers a preempted malleable job's nodes to the claim
// that requested the preemption and records the loan for later return.
func (m *Mechanism) OnWarningExpired(j *job.Job, claim int, freed *nodeset.Set) {
	v, ok := m.victims[j.ID]
	if !ok {
		v = victimInfo{claim: claim}
	}
	delete(m.victims, j.ID)
	remaining := m.deliverToClaim(v, freed, j.ID, true)
	m.offerToCollectors(remaining)
}

// deliverToClaim routes a warning victim's released nodes to its claim,
// updating the claim's incoming counter and firing a pending start when the
// gather completes. withLoan records a loan for directed return.
func (m *Mechanism) deliverToClaim(v victimInfo, freed *nodeset.Set, lender int, withLoan bool) *nodeset.Set {
	s, ok := m.states[v.claim]
	remaining := freed.Clone()
	if !ok || s.started {
		return remaining
	}
	s.incoming -= v.expect
	if s.incoming < 0 {
		s.incoming = 0
	}
	need := s.j.Size - m.gathered(s.j.ID)
	if need > 0 {
		take := remaining.Pick(min(need, remaining.Len()))
		if !take.Empty() {
			m.e.Cluster().ReserveExact(s.j.ID, take)
			if withLoan {
				s.loans = append(s.loans, loan{lender: lender, kind: loanPreempted, nodes: take})
			}
		}
	}
	if s.pending {
		if m.e.Cluster().ReservedCount(s.j.ID) >= s.j.Size {
			s.pending = false
			m.e.StartOnDemand(s.j)
		} else if s.incoming == 0 {
			// The warnings delivered less than expected (the victims' nodes
			// were contested); fall back to queueing at the front.
			s.pending = false
			m.enqueueFallback(s)
		}
	}
	return remaining
}

// enqueueFallback sends a pending on-demand job to the waiting queue after
// its warnings under-delivered; it keeps its partial gather and keeps
// collecting like any other queued on-demand job.
func (m *Mechanism) enqueueFallback(s *odState) {
	m.registerCollector(s)
	// A pending job was reported handled at arrival, so it must be placed
	// into the queue explicitly.
	m.e.EnqueueWaiting(s.j)
}

// returnLoans gives a completing (or timed-out) on-demand job's borrowed
// nodes back to their lenders: a still-waiting preempted lender gets them as
// a private hold so it can resume as soon as possible (directed return); a
// still-running shrunk lender expands back toward its original size
// (paper §III-B.3). Unreturnable nodes stay in the pool. The available set
// is consumed in place; the remainder is returned.
func (m *Mechanism) returnLoans(s *odState, available *nodeset.Set) *nodeset.Set {
	remaining := available.Clone()
	for _, l := range s.loans {
		if remaining.Empty() {
			break
		}
		// An earlier immediate resume may have consumed free nodes that this
		// loan references; only still-free nodes can be handed back.
		give := nodeset.Intersection(l.nodes, remaining)
		give.IntersectWith(m.e.Cluster().FreeSet())
		if give.Empty() {
			continue
		}
		lender := m.lenderJob(l.lender)
		if lender == nil {
			continue
		}
		switch l.kind {
		case loanShrunk:
			if lender.State == job.Running && lender.Class == job.Malleable {
				room := lender.Size - lender.CurSize
				grant := give.Pick(min(room, give.Len()))
				if !grant.Empty() {
					remaining.SubtractWith(grant)
					m.e.ExpandMalleable(lender, grant)
				}
			}
		case loanPreempted:
			// Directed return: hand the leased nodes back and resume the
			// lender immediately if it now fits ("resume immediately if
			// possible", §III-B.3). If it still cannot run, the nodes go to
			// the common pool and the lender keeps waiting near the queue
			// front — the Observation 2 starvation — rather than pinning
			// idle nodes indefinitely.
			if m.cfg.DirectedReturn && m.e.Queued(lender.ID) {
				m.e.Cluster().ReserveExact(lender.ID, give)
				if m.e.TryResumeNow(lender) {
					// The resume consumed the returned nodes plus possibly
					// further free nodes other loans reference.
					remaining.IntersectWith(m.e.Cluster().FreeSet())
				} else {
					m.e.Cluster().UnreserveAll(lender.ID)
				}
			}
		}
	}
	s.loans = nil
	remaining.IntersectWith(m.e.Cluster().FreeSet())
	return remaining
}

// lenderJob resolves a lender by ID through the engine.
func (m *Mechanism) lenderJob(id int) *job.Job { return m.e.JobByID(id) }

// OnODStarted clears all preparation state once an on-demand job runs,
// whether started by the mechanism or by the regular scheduler pass.
func (m *Mechanism) OnODStarted(j *job.Job) {
	s := m.state(j)
	s.started = true
	s.pending = false
	m.stopPreparation(s)
}
