package core

import (
	"testing"
	"testing/quick"

	"hybridsched/internal/checkpoint"
	"hybridsched/internal/job"
	"hybridsched/internal/metrics"
	"hybridsched/internal/sim"
	"hybridsched/internal/trace"
	"hybridsched/internal/workload"
)

// smallWorkload generates a compact but fully hybrid trace for integration
// runs (512 nodes keeps each simulation fast while exercising every path).
func smallWorkload(t testing.TB, seed int64, mix workload.NoticeMix) []trace.Record {
	t.Helper()
	cfg := workload.Config{
		Seed:        seed,
		Nodes:       512,
		Weeks:       1,
		Projects:    30,
		TargetLoad:  0.9,
		MinJobSize:  16,
		SizeBuckets: []int{16, 32, 64, 128, 256},
		SizeWeights: []float64{0.3, 0.25, 0.2, 0.15, 0.1},
		Mix:         mix,
	}
	recs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func materialize(recs []trace.Record) []*job.Job {
	return trace.Materialize(recs, func(size int) checkpoint.Plan {
		return checkpoint.NewPlan(size, 24*3600, 1.0)
	})
}

func runFull(t testing.TB, recs []trace.Record, mechName string, simCfg sim.Config, coreCfg Config) metrics.Report {
	t.Helper()
	jobs := materialize(recs)
	var mech sim.Mechanism
	if mechName == "baseline" {
		mech = sim.Baseline{}
	} else {
		m, err := ByName(mechName, coreCfg)
		if err != nil {
			t.Fatal(err)
		}
		mech = m
	}
	e, err := sim.New(simCfg, jobs, mech)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatalf("%s: %v", mechName, err)
	}
	return rep
}

// checkReportSane verifies the cross-cutting invariants every run must obey.
func checkReportSane(t *testing.T, name string, rep metrics.Report, jobs int) {
	t.Helper()
	if rep.Jobs != jobs {
		t.Fatalf("%s: completed %d of %d jobs", name, rep.Jobs, jobs)
	}
	if rep.Utilization < 0 || rep.Utilization > 1.0000001 {
		t.Fatalf("%s: utilization %g out of range", name, rep.Utilization)
	}
	b := rep.Breakdown
	sum := b.Useful + b.Setup + b.Ckpt + b.Lost + b.ReservedIdle + b.Idle
	if sum < 0.999999 || sum > 1.000001 {
		t.Fatalf("%s: ledger sums to %g", name, sum)
	}
	for _, f := range []float64{b.Useful, b.Setup, b.Ckpt, b.Lost, b.ReservedIdle, b.Idle} {
		if f < -1e-9 {
			t.Fatalf("%s: negative ledger component %+v", name, b)
		}
	}
	if rep.InstantStartRate < rep.StrictInstantStartRate {
		t.Fatalf("%s: tolerant instant rate below strict", name)
	}
}

// TestAllMechanismsCompleteRandomTraces is the primary integration gate:
// every mechanism must run arbitrary hybrid workloads to completion with the
// cluster partition invariant checked after every event.
func TestAllMechanismsCompleteRandomTraces(t *testing.T) {
	mixes := []workload.NoticeMix{workload.W1, workload.W2, workload.W5}
	for seed := int64(1); seed <= 3; seed++ {
		recs := smallWorkload(t, seed, mixes[seed%int64(len(mixes))])
		for _, name := range append(Names(), "baseline") {
			rep := runFull(t, recs, name, sim.Config{Nodes: 512, Validate: true}, DefaultConfig())
			checkReportSane(t, name, rep, len(recs))
		}
	}
}

// TestMechanismsBeatBaselineOnInstantStart reproduces the headline claim on
// a small scale (Obs. 1/9): all six mechanisms should serve on-demand jobs
// far more promptly than FCFS/EASY.
func TestMechanismsBeatBaselineOnInstantStart(t *testing.T) {
	recs := smallWorkload(t, 7, workload.W5)
	base := runFull(t, recs, "baseline", sim.Config{Nodes: 512}, DefaultConfig())
	for _, name := range Names() {
		rep := runFull(t, recs, name, sim.Config{Nodes: 512}, DefaultConfig())
		if rep.InstantStartRate < base.InstantStartRate {
			t.Errorf("%s instant rate %.2f below baseline %.2f",
				name, rep.InstantStartRate, base.InstantStartRate)
		}
		if rep.InstantStartRate < 0.8 {
			t.Errorf("%s instant rate %.2f below 0.8", name, rep.InstantStartRate)
		}
	}
}

// TestBaselineNeverPreempts: FCFS/EASY must not preempt or shrink anything.
func TestBaselineNeverPreempts(t *testing.T) {
	recs := smallWorkload(t, 9, workload.W5)
	rep := runFull(t, recs, "baseline", sim.Config{Nodes: 512}, DefaultConfig())
	if rep.Rigid.PreemptRatio != 0 || rep.Malleable.PreemptRatio != 0 {
		t.Fatalf("baseline preempted: %+v", rep)
	}
	if rep.Breakdown.Lost != 0 {
		t.Fatalf("baseline lost computation: %g", rep.Breakdown.Lost)
	}
}

// TestSPAAReducesMalleablePreemption (Obs. 3): with the same trace, SPAA's
// malleable preemption ratio must not exceed PAA's.
func TestSPAAReducesMalleablePreemption(t *testing.T) {
	recs := smallWorkload(t, 11, workload.W5)
	paa := runFull(t, recs, "N&PAA", sim.Config{Nodes: 512}, DefaultConfig())
	spaa := runFull(t, recs, "N&SPAA", sim.Config{Nodes: 512}, DefaultConfig())
	if spaa.Malleable.PreemptRatio > paa.Malleable.PreemptRatio {
		t.Fatalf("SPAA malleable preemption %.3f > PAA %.3f",
			spaa.Malleable.PreemptRatio, paa.Malleable.PreemptRatio)
	}
}

// TestBackfillReservedAblation: the squatting option must also run clean.
func TestBackfillReservedAblation(t *testing.T) {
	recs := smallWorkload(t, 13, workload.W2)
	cfg := DefaultConfig()
	cfg.BackfillReserved = true
	rep := runFull(t, recs, "CUA&SPAA", sim.Config{Nodes: 512, Validate: true, BackfillReserved: true}, cfg)
	checkReportSane(t, "CUA&SPAA+bfres", rep, len(recs))
}

// TestNoDirectedReturnAblation: disabling directed returns must still
// complete and keep invariants.
func TestNoDirectedReturnAblation(t *testing.T) {
	recs := smallWorkload(t, 15, workload.W5)
	cfg := DefaultConfig()
	cfg.DirectedReturn = false
	rep := runFull(t, recs, "N&PAA", sim.Config{Nodes: 512, Validate: true}, cfg)
	checkReportSane(t, "N&PAA-noreturn", rep, len(recs))
}

// Property test over random seeds: CUA&SPAA (the paper's best all-rounder)
// completes anything the generator produces with invariants intact.
func TestCUASPAARandomSeedsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	f := func(seed int64) bool {
		cfg := workload.Config{
			Seed: seed, Nodes: 256, Weeks: 1, Projects: 15, TargetLoad: 0.8,
			MinJobSize:  8,
			SizeBuckets: []int{8, 16, 32, 64, 128},
			SizeWeights: []float64{0.3, 0.25, 0.2, 0.15, 0.1},
		}
		recs, err := workload.Generate(cfg)
		if err != nil {
			return false
		}
		jobs := materialize(recs)
		m, _ := ByName("CUA&SPAA", DefaultConfig())
		e, err := sim.New(sim.Config{Nodes: 256, Validate: true}, jobs, m)
		if err != nil {
			return false
		}
		rep, err := e.Run()
		return err == nil && rep.Jobs == len(recs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
