package job

import "fmt"

// WarningPeriod is the notice a malleable job receives before its nodes are
// taken, mirroring Amazon's two-minute spot-instance interruption warning
// (paper §III-A).
const WarningPeriod int64 = 120

// ---------------------------------------------------------------------------
// Fixed-size execution (rigid and on-demand jobs)
//
// An incarnation starting at t0 on the job's fixed Size plays out as
//
//	setup S | work to next mark | ckpt δ | work | ckpt δ | ... | final work
//
// where checkpoint marks sit at absolute work positions k·τ (τ = Ckpt
// Interval) and a mark exactly at the job's total Work is skipped. The job is
// killed from outside only by preemption; completion fires exactly when the
// remaining work is done.
// ---------------------------------------------------------------------------

// rigidWall returns the undisturbed wall-clock length of an incarnation that
// resumes from work position saved and must reach total, with setup S,
// checkpoint interval tau (0 = none) and overhead delta.
func rigidWall(saved, total, s, tau, delta int64) int64 {
	remaining := total - saved
	if remaining <= 0 {
		return s
	}
	var ckpts int64
	if tau > 0 {
		// Marks strictly between saved and total.
		ckpts = (total - 1) / tau // marks < total
		ckpts -= saved / tau      // minus marks <= saved
	}
	return s + remaining + ckpts*delta
}

// rigidProgress reports the execution status of an incarnation elapsed
// seconds after its start: pos is the work position reached (including
// unsaved progress), retained is the highest checkpoint-protected position,
// and ckpts counts completed checkpoints this incarnation. elapsed past the
// natural end is clamped to completion.
func rigidProgress(saved, total, s, tau, delta, elapsed int64) (pos, retained int64, ckpts int) {
	pos, retained = saved, saved
	t := elapsed - s
	if t <= 0 {
		return pos, retained, 0
	}
	if tau <= 0 {
		pos += t
		if pos > total {
			pos = total
		}
		if pos == total {
			retained = total
		}
		return pos, retained, 0
	}
	for {
		next := (pos/tau + 1) * tau // next checkpoint mark after pos
		if next >= total {
			// No more checkpoints; run straight to completion.
			pos += t
			if pos >= total {
				pos = total
				retained = total
			}
			return pos, retained, ckpts
		}
		need := next - pos
		if t < need {
			pos += t
			return pos, retained, ckpts
		}
		t -= need
		pos = next
		if t < delta {
			// Preempted mid-checkpoint: the in-flight checkpoint saves nothing.
			return pos, retained, ckpts
		}
		t -= delta
		retained = next
		ckpts++
	}
}

// Start begins an incarnation of a fixed-size (rigid or on-demand) job at
// time now. It returns the wall-clock length the incarnation will take if it
// is not disturbed; the caller schedules the completion event at now+wall.
func (j *Job) Start(now int64) int64 {
	if j.Class == Malleable {
		panic(fmt.Sprintf("job %d: Start on malleable job; use StartMalleable", j.ID))
	}
	if j.State == Running || j.State == Warning {
		panic(fmt.Sprintf("job %d: Start while %v", j.ID, j.State))
	}
	j.State = Running
	j.CurSize = j.Size
	if j.StartTime < 0 {
		j.StartTime = now
	}
	j.incStart = now
	j.incWall = rigidWall(j.saved, j.Work, j.SetupTime, j.Ckpt.Interval, j.Ckpt.Overhead)
	j.incEstWall = rigidWall(j.saved, j.Estimate, j.SetupTime, j.Ckpt.Interval, j.Ckpt.Overhead)
	return j.incWall
}

// EstimatedEnd returns the scheduler-visible end time of a running fixed-size
// job: incarnation start plus the estimate-based wall length. EASY
// backfilling uses this, never the actual wall length (which a real scheduler
// would not know).
func (j *Job) EstimatedEnd() int64 {
	return j.incStart + j.incEstWall
}

// ActualEnd returns the event time at which the current incarnation completes
// if undisturbed.
func (j *Job) ActualEnd() int64 { return j.incStart + j.incWall }

// EstimatedWallIfStarted returns the estimate-based wall length of starting
// this fixed-size job now (used for EASY backfill feasibility checks).
func (j *Job) EstimatedWallIfStarted() int64 {
	return rigidWall(j.saved, j.Estimate, j.SetupTime, j.Ckpt.Interval, j.Ckpt.Overhead)
}

// FinalizeCompletion marks a fixed-size job completed at time now and returns
// the incarnation's node-second usage.
func (j *Job) FinalizeCompletion(now int64) Usage {
	if j.State != Running {
		panic(fmt.Sprintf("job %d: FinalizeCompletion while %v", j.ID, j.State))
	}
	elapsed := now - j.incStart
	if elapsed != j.incWall {
		panic(fmt.Sprintf("job %d: completion at elapsed %d, expected wall %d", j.ID, elapsed, j.incWall))
	}
	n := int64(j.CurSize)
	_, _, ckpts := rigidProgress(j.saved, j.Work, j.SetupTime, j.Ckpt.Interval, j.Ckpt.Overhead, elapsed)
	u := Usage{
		Useful: (j.Work - j.saved) * n,
		Setup:  j.SetupTime * n,
		Ckpt:   int64(ckpts) * j.Ckpt.Overhead * n,
	}
	j.saved = j.Work
	j.State = Completed
	j.EndTime = now
	j.CurSize = 0
	j.Acct.add(u)
	return u
}

// FinalizePreempt preempts a running fixed-size job at time now: progress
// falls back to the last completed checkpoint, the job returns to Waiting,
// and the incarnation's usage split is returned. The lost computation (work
// past the last checkpoint, any in-flight checkpoint, and setup that enabled
// nothing) is charged to Lost.
func (j *Job) FinalizePreempt(now int64) Usage {
	if j.State != Running {
		panic(fmt.Sprintf("job %d: FinalizePreempt while %v", j.ID, j.State))
	}
	elapsed := now - j.incStart
	if elapsed >= j.incWall {
		panic(fmt.Sprintf("job %d: preempted at %d after natural end %d", j.ID, now, j.incStart+j.incWall))
	}
	n := int64(j.CurSize)
	_, retained, ckpts := rigidProgress(j.saved, j.Work, j.SetupTime, j.Ckpt.Interval, j.Ckpt.Overhead, elapsed)
	var u Usage
	u.Useful = (retained - j.saved) * n
	u.Ckpt = int64(ckpts) * j.Ckpt.Overhead * n
	if retained > j.saved {
		u.Setup = j.SetupTime * n
	}
	u.Lost = elapsed*n - u.Useful - u.Ckpt - u.Setup
	j.saved = retained
	j.State = Waiting
	j.CurSize = 0
	j.PreemptCount++
	j.Acct.add(u)
	return u
}

// PreemptionOverhead returns the cost, in seconds, of preempting this job at
// time now: the setup that must be repeated plus the unsaved work that must
// be redone (paper §V, Obs. 8). For malleable jobs only the setup is lost.
// The scheduler sorts preemption victims by this value, ascending.
func (j *Job) PreemptionOverhead(now int64) int64 {
	switch j.State {
	case Running, Warning:
	default:
		panic(fmt.Sprintf("job %d: PreemptionOverhead while %v", j.ID, j.State))
	}
	if j.Class == Malleable {
		return j.SetupTime
	}
	pos, retained, _ := rigidProgress(j.saved, j.Work, j.SetupTime, j.Ckpt.Interval, j.Ckpt.Overhead, now-j.incStart)
	return j.SetupTime + (pos - retained)
}

// NextCheckpointCompletion returns the first time strictly after now at which
// a running rigid job finishes a checkpoint, and true; or 0 and false if no
// further checkpoint completes before the job ends. CUP uses this to preempt
// rigid jobs "immediately after checkpointing" (paper §III-B.1).
func (j *Job) NextCheckpointCompletion(now int64) (int64, bool) {
	if j.State != Running || j.Class == Malleable || !j.Ckpt.Enabled() {
		return 0, false
	}
	tau, delta := j.Ckpt.Interval, j.Ckpt.Overhead
	// Walk checkpoint completion instants from the incarnation start.
	t := j.incStart + j.SetupTime
	pos := j.saved
	for {
		next := (pos/tau + 1) * tau
		if next >= j.Work {
			return 0, false
		}
		t += (next - pos) + delta // work to the mark, then the dump
		pos = next
		if t > now {
			return t, true
		}
	}
}

// ---------------------------------------------------------------------------
// Malleable execution
//
// A malleable job owns totalWork = Work·Size node-seconds. While running on n
// nodes it consumes n node-seconds per second once its setup completes.
// Resizing is free: remaining work is conserved and the completion event is
// rescheduled. Progress survives preemption (the two-minute warning lets the
// application save its task state), so a resume costs only the setup.
// ---------------------------------------------------------------------------

// StartMalleable begins an incarnation on n nodes at time now and returns the
// completion time if the size never changes.
func (j *Job) StartMalleable(now int64, n int) int64 {
	if j.Class != Malleable {
		panic(fmt.Sprintf("job %d: StartMalleable on %v job", j.ID, j.Class))
	}
	if j.State == Running || j.State == Warning {
		panic(fmt.Sprintf("job %d: StartMalleable while %v", j.ID, j.State))
	}
	if n < j.MinSize || n > j.Size {
		panic(fmt.Sprintf("job %d: start size %d outside [%d,%d]", j.ID, n, j.MinSize, j.Size))
	}
	j.State = Running
	j.CurSize = n
	if j.StartTime < 0 {
		j.StartTime = now
	}
	j.incStart = now
	j.setupEnd = now + j.SetupTime
	j.lastUpdate = now
	j.incSetup = 0
	j.incUseful = 0
	return j.MalleableEnd(now)
}

// UpdateProgress advances the malleable work and setup accounting to now.
// It must be called before reading RemainingWork or resizing.
func (j *Job) UpdateProgress(now int64) {
	if j.State != Running && j.State != Warning {
		panic(fmt.Sprintf("job %d: UpdateProgress while %v", j.ID, j.State))
	}
	if now < j.lastUpdate {
		panic(fmt.Sprintf("job %d: UpdateProgress going backwards (%d < %d)", j.ID, now, j.lastUpdate))
	}
	n := int64(j.CurSize)
	// Portion of [lastUpdate, now] inside the setup window.
	if j.lastUpdate < j.setupEnd {
		end := now
		if end > j.setupEnd {
			end = j.setupEnd
		}
		j.incSetup += (end - j.lastUpdate) * n
	}
	// Portion past the setup window does useful work.
	if now > j.setupEnd {
		from := j.lastUpdate
		if from < j.setupEnd {
			from = j.setupEnd
		}
		done := (now - from) * n
		if done > j.remWork {
			done = j.remWork
		}
		j.remWork -= done
		j.incUseful += done
	}
	j.lastUpdate = now
}

// MalleableEnd returns the completion time of the running malleable job at
// its current size, as of the last progress update.
func (j *Job) MalleableEnd(now int64) int64 {
	n := int64(j.CurSize)
	start := now
	if j.setupEnd > start {
		start = j.setupEnd
	}
	return start + ceilDiv(j.remWork, n)
}

// MalleableEstimatedEnd returns the scheduler-visible completion time using
// the user's runtime estimate rather than the actual work.
func (j *Job) MalleableEstimatedEnd(now int64) int64 {
	n := int64(j.CurSize)
	start := now
	if j.setupEnd > start {
		start = j.setupEnd
	}
	return start + ceilDiv(j.estRemainingWork(), n)
}

// MalleableEstimatedEndAsOf returns MalleableEstimatedEnd evaluated at the
// last progress update, without advancing the accounting. While the job runs
// at a fixed size the estimate-based end is invariant in the evaluation time
// (remaining estimated work shrinks at exactly the compute rate), so this
// equals MalleableEstimatedEnd(now) for any now at or after the last update —
// letting callers read the end time without mutating the job.
func (j *Job) MalleableEstimatedEndAsOf() int64 {
	n := int64(j.CurSize)
	start := j.lastUpdate
	if j.setupEnd > start {
		start = j.setupEnd
	}
	return start + ceilDiv(j.estRemainingWork(), n)
}

// estRemainingWork is the estimate-based outstanding node-seconds.
func (j *Job) estRemainingWork() int64 {
	done := j.totalWork - j.remWork
	rem := j.Estimate*int64(j.Size) - done
	if rem < j.remWork {
		rem = j.remWork
	}
	return rem
}

// EstimatedMalleableWall returns the estimate-based wall length of starting
// this waiting malleable job now on n nodes.
func (j *Job) EstimatedMalleableWall(n int) int64 {
	return j.SetupTime + ceilDiv(j.estRemainingWork(), int64(n))
}

// Resize changes the node count of a running malleable job at time now and
// returns the new completion time. Progress is advanced first, so remaining
// work is conserved exactly.
func (j *Job) Resize(now int64, n int) int64 {
	if j.State != Running {
		panic(fmt.Sprintf("job %d: Resize while %v", j.ID, j.State))
	}
	if n < j.MinSize || n > j.Size {
		panic(fmt.Sprintf("job %d: resize to %d outside [%d,%d]", j.ID, n, j.MinSize, j.Size))
	}
	j.UpdateProgress(now)
	if n < j.CurSize {
		j.ShrinkCount++
	}
	j.CurSize = n
	return j.MalleableEnd(now)
}

// BeginWarning moves a running malleable job into its two-minute preemption
// warning at time now. The job keeps computing during the warning; its nodes
// are reclaimed by FinalizeWarning.
func (j *Job) BeginWarning(now int64) {
	if j.State != Running || j.Class != Malleable {
		panic(fmt.Sprintf("job %d: BeginWarning while %v %v", j.ID, j.Class, j.State))
	}
	j.UpdateProgress(now)
	j.State = Warning
}

// FinalizeWarning completes a malleable preemption at the end of the warning
// period: progress is saved, nodes are released, and the job returns to
// Waiting. The returned usage charges setup to Lost only when the incarnation
// accrued no useful work at all.
func (j *Job) FinalizeWarning(now int64) Usage {
	if j.State != Warning {
		panic(fmt.Sprintf("job %d: FinalizeWarning while %v", j.ID, j.State))
	}
	j.UpdateProgress(now)
	var u Usage
	u.Useful = j.incUseful
	if j.incUseful > 0 {
		u.Setup = j.incSetup
	} else {
		u.Lost = j.incSetup
	}
	j.State = Waiting
	j.CurSize = 0
	j.PreemptCount++
	j.Acct.add(u)
	return u
}

// FinalizeMalleableCompletion marks the running malleable job completed at
// time now and returns the incarnation's usage. It panics if work remains.
// Completion from the Warning state is allowed: a job may finish its
// remaining tasks inside the two-minute warning window.
func (j *Job) FinalizeMalleableCompletion(now int64) Usage {
	if j.State != Running && j.State != Warning {
		panic(fmt.Sprintf("job %d: FinalizeMalleableCompletion while %v", j.ID, j.State))
	}
	j.UpdateProgress(now)
	if j.remWork > 0 {
		panic(fmt.Sprintf("job %d: completion with %d node-seconds remaining", j.ID, j.remWork))
	}
	u := Usage{Useful: j.incUseful, Setup: j.incSetup}
	j.State = Completed
	j.EndTime = now
	j.CurSize = 0
	j.Acct.add(u)
	return u
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int64) int64 {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
