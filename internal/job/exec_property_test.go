package job

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybridsched/internal/checkpoint"
)

// Property: for any parameters, progress at elapsed=wall reaches completion,
// pos is monotone in elapsed, retained <= pos, and retained only takes
// checkpoint-mark values (or the saved starting position / total).
func TestRigidProgressInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		total := int64(100 + r.Intn(10000))
		saved := int64(0)
		if r.Intn(2) == 0 {
			saved = int64(r.Intn(int(total)))
		}
		s := int64(r.Intn(200))
		var tau, delta int64
		if r.Intn(4) != 0 {
			tau = int64(1 + r.Intn(int(total)))
			delta = int64(1 + r.Intn(100))
		}
		wall := rigidWall(saved, total, s, tau, delta)

		prevPos, prevRet := saved, saved
		steps := 50
		for i := 0; i <= steps; i++ {
			e := wall * int64(i) / int64(steps)
			pos, ret, _ := rigidProgress(saved, total, s, tau, delta, e)
			if pos < prevPos || ret < prevRet { // monotonicity
				return false
			}
			if ret > pos || pos > total { // sanity bounds
				return false
			}
			if tau > 0 && ret != saved && ret != total && ret%tau != 0 {
				return false // retained must sit on a checkpoint mark
			}
			prevPos, prevRet = pos, ret
		}
		pos, ret, _ := rigidProgress(saved, total, s, tau, delta, wall)
		return pos == total && ret == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: usage accounting is conservative — for any preemption time the
// usage categories exactly cover elapsed * nodes, and a preempt+resume run
// ends with lifetime useful == total work * nodes.
func TestRigidAccountingConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := 1 + r.Intn(256)
		work := int64(500 + r.Intn(5000))
		setup := int64(r.Intn(100))
		var plan checkpoint.Plan
		if r.Intn(3) != 0 {
			plan = checkpoint.Plan{Interval: int64(1 + r.Intn(int(work))), Overhead: int64(1 + r.Intn(60))}
		}
		j := NewRigid(1, 0, 0, size, work, work+int64(r.Intn(1000)), setup, plan)
		j.State = Waiting

		now := int64(0)
		for hop := 0; hop < 4; hop++ {
			wall := j.Start(now)
			if hop == 3 || r.Intn(2) == 0 {
				now += wall
				u := j.FinalizeCompletion(now)
				if u.Total() != wall*int64(size) {
					return false
				}
				break
			}
			cut := int64(r.Intn(int(wall))) // preempt strictly before the end
			now += cut
			u := j.FinalizePreempt(now)
			if u.Total() != cut*int64(size) {
				return false
			}
			now += int64(1 + r.Intn(1000)) // wait in queue
		}
		if j.State != Completed {
			// Loop may exit via the hop==3 branch which always completes.
			return false
		}
		return j.Acct.Useful == work*int64(size)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: malleable work is conserved across arbitrary resize sequences,
// and the completion event computed by MalleableEnd is exact.
func TestMalleableWorkConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		max := 10 + r.Intn(500)
		min := 1 + r.Intn(max)
		work := int64(100 + r.Intn(5000))
		setup := int64(r.Intn(120))
		j := NewMalleable(1, 0, 0, max, min, work, work, setup)
		j.State = Waiting

		now := int64(0)
		n := min + r.Intn(max-min+1)
		end := j.StartMalleable(now, n)
		for hop := 0; hop < 6; hop++ {
			// Advance to somewhere before the current end, then resize.
			if end <= now+1 {
				break
			}
			now += 1 + r.Int63n(end-now-1)
			n = min + r.Intn(max-min+1)
			end = j.Resize(now, n)
		}
		u := j.FinalizeMalleableCompletion(end)
		_ = u
		return j.Acct.Useful == work*int64(max) && j.RemainingWork() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: preempting a malleable job at any point and resuming it
// preserves total useful work (only setup is repeated).
func TestMalleablePreemptResumeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		max := 10 + r.Intn(200)
		min := 1 + r.Intn(max)
		work := int64(1000 + r.Intn(5000))
		setup := int64(1 + r.Intn(120))
		j := NewMalleable(1, 0, 0, max, min, work, work, setup)
		j.State = Waiting

		end := j.StartMalleable(0, max)
		cut := r.Int63n(end)
		j.BeginWarning(cut)
		if cut+WarningPeriod >= end {
			// The job finishes inside the warning window; the engine fires
			// the completion event (PrioEnd) before reclaiming the nodes.
			j.FinalizeMalleableCompletion(end)
			return j.Acct.Useful == work*int64(max)
		}
		u1 := j.FinalizeWarning(cut + WarningPeriod)
		if u1.Useful+u1.Lost+u1.Setup != (cut+WarningPeriod)*int64(max) {
			return false
		}
		resume := cut + WarningPeriod + int64(r.Intn(1000))
		end2 := j.StartMalleable(resume, min)
		j.FinalizeMalleableCompletion(end2)
		return j.Acct.Useful == work*int64(max)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: NextCheckpointCompletion returns strictly increasing times that
// match the retained-progress transitions observed by rigidProgress.
func TestNextCheckpointCompletionConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		work := int64(500 + r.Intn(5000))
		tau := int64(50 + r.Intn(int(work)))
		delta := int64(1 + r.Intn(60))
		setup := int64(r.Intn(100))
		j := NewRigid(1, 0, 0, 8, work, work, setup, checkpoint.Plan{Interval: tau, Overhead: delta})
		j.State = Waiting
		start := int64(r.Intn(1000))
		wall := j.Start(start)

		now := start
		for {
			ct, ok := j.NextCheckpointCompletion(now)
			if !ok {
				break
			}
			if ct <= now || ct > start+wall {
				return false
			}
			// Exactly at ct the retained position must be a fresh multiple of tau.
			_, ret, _ := rigidProgress(0, work, setup, tau, delta, ct-start)
			if ret == 0 || ret%tau != 0 {
				return false
			}
			// Just before ct the retained position must be smaller.
			_, retBefore, _ := rigidProgress(0, work, setup, tau, delta, ct-start-1)
			if retBefore >= ret {
				return false
			}
			now = ct
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
