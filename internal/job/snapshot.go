package job

import (
	"hybridsched/internal/checkpoint"
	"hybridsched/internal/snapshot"
)

// EncodeSnapshot serializes the complete job — static description and dynamic
// execution state — so a restored engine reproduces every future event of the
// uninterrupted run exactly.
func (j *Job) EncodeSnapshot(e *snapshot.Enc) {
	// Static description.
	e.Int(j.ID)
	e.Int(j.Project)
	e.U8(uint8(j.Class))
	e.I64(j.SubmitTime)
	e.Int(j.Size)
	e.Int(j.MinSize)
	e.I64(j.Work)
	e.I64(j.Estimate)
	e.I64(j.SetupTime)
	e.I64(j.Ckpt.Interval)
	e.I64(j.Ckpt.Overhead)
	e.U8(uint8(j.Notice))
	e.I64(j.NoticeTime)
	e.I64(j.EstArrival)

	// Dynamic state.
	e.U8(uint8(j.State))
	e.Int(j.CurSize)
	e.I64(j.StartTime)
	e.I64(j.EndTime)
	e.Int(j.PreemptCount)
	e.Int(j.ShrinkCount)
	e.I64(j.Acct.Useful)
	e.I64(j.Acct.Setup)
	e.I64(j.Acct.Ckpt)
	e.I64(j.Acct.Lost)

	// Incarnation state (fixed-size and malleable).
	e.I64(j.saved)
	e.I64(j.incStart)
	e.I64(j.incWall)
	e.I64(j.incEstWall)
	e.I64(j.totalWork)
	e.I64(j.remWork)
	e.I64(j.setupEnd)
	e.I64(j.lastUpdate)
	e.I64(j.incSetup)
	e.I64(j.incUseful)
}

// DecodeSnapshotJob reads a job written by EncodeSnapshot, validating the
// enumerations and size invariants that the execution methods would otherwise
// panic on. On malformed input it sets the decoder's error and returns nil.
func DecodeSnapshotJob(d *snapshot.Dec) *Job {
	j := &Job{}
	j.ID = d.Int()
	j.Project = d.Int()
	j.Class = Class(d.U8())
	j.SubmitTime = d.I64()
	j.Size = d.Int()
	j.MinSize = d.Int()
	j.Work = d.I64()
	j.Estimate = d.I64()
	j.SetupTime = d.I64()
	j.Ckpt = checkpoint.Plan{Interval: d.I64(), Overhead: d.I64()}
	j.Notice = NoticeCategory(d.U8())
	j.NoticeTime = d.I64()
	j.EstArrival = d.I64()

	j.State = State(d.U8())
	j.CurSize = d.Int()
	j.StartTime = d.I64()
	j.EndTime = d.I64()
	j.PreemptCount = d.Int()
	j.ShrinkCount = d.Int()
	j.Acct = Usage{Useful: d.I64(), Setup: d.I64(), Ckpt: d.I64(), Lost: d.I64()}

	j.saved = d.I64()
	j.incStart = d.I64()
	j.incWall = d.I64()
	j.incEstWall = d.I64()
	j.totalWork = d.I64()
	j.remWork = d.I64()
	j.setupEnd = d.I64()
	j.lastUpdate = d.I64()
	j.incSetup = d.I64()
	j.incUseful = d.I64()

	if d.Err() != nil {
		return nil
	}
	if j.Class < Rigid || j.Class > Malleable {
		d.Failf("job %d: invalid class %d", j.ID, int(j.Class))
		return nil
	}
	if j.State < Future || j.State > Completed {
		d.Failf("job %d: invalid state %d", j.ID, int(j.State))
		return nil
	}
	if j.Notice < NoNotice || j.Notice > ArriveLate {
		d.Failf("job %d: invalid notice category %d", j.ID, int(j.Notice))
		return nil
	}
	if j.Size < 1 || j.MinSize < 1 || j.MinSize > j.Size || j.CurSize < 0 {
		d.Failf("job %d: invalid sizes (size=%d min=%d cur=%d)", j.ID, j.Size, j.MinSize, j.CurSize)
		return nil
	}
	if j.Work < 1 || j.Estimate < j.Work || j.SetupTime < 0 {
		d.Failf("job %d: invalid work/estimate/setup (%d/%d/%d)", j.ID, j.Work, j.Estimate, j.SetupTime)
		return nil
	}
	return j
}
