package job

import (
	"testing"

	"hybridsched/internal/checkpoint"
)

func TestClassStateNoticeStrings(t *testing.T) {
	if Rigid.String() != "rigid" || OnDemand.String() != "on-demand" || Malleable.String() != "malleable" {
		t.Fatal("class strings wrong")
	}
	if Class(9).String() == "" {
		t.Fatal("unknown class should still render")
	}
	if Waiting.String() != "waiting" || Running.String() != "running" || Completed.String() != "completed" {
		t.Fatal("state strings wrong")
	}
	if NoNotice.String() != "no-notice" || ArriveLate.String() != "late" {
		t.Fatal("notice strings wrong")
	}
}

func TestNewRigidDefaults(t *testing.T) {
	j := NewRigid(1, 7, 100, 64, 3600, 7200, 180, checkpoint.Plan{})
	if j.Class != Rigid || j.Size != 64 || j.MinSize != 64 {
		t.Fatalf("bad rigid job %+v", j)
	}
	if j.State != Future || j.StartTime != -1 || j.EndTime != -1 {
		t.Fatal("fresh job state wrong")
	}
}

func TestNewJobClampsEstimate(t *testing.T) {
	j := NewRigid(1, 0, 0, 8, 1000, 500, 0, checkpoint.Plan{})
	if j.Estimate != 1000 {
		t.Fatalf("estimate %d must be clamped to work", j.Estimate)
	}
	j2 := NewRigid(2, 0, 0, 8, 0, 0, -5, checkpoint.Plan{})
	if j2.Work != 1 || j2.SetupTime != 0 {
		t.Fatalf("work/setup not clamped: %+v", j2)
	}
}

func TestNewJobPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRigid(1, 0, 0, 0, 100, 100, 0, checkpoint.Plan{})
}

func TestNewMalleablePanicsOnBadMin(t *testing.T) {
	for _, min := range []int{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for min=%d", min)
				}
			}()
			NewMalleable(1, 0, 0, 64, min, 100, 100, 0)
		}()
	}
}

func TestRigidWallNoCheckpoints(t *testing.T) {
	// saved=0, total=1000, setup=50, no checkpointing.
	if got := rigidWall(0, 1000, 50, 0, 0); got != 1050 {
		t.Fatalf("wall = %d, want 1050", got)
	}
}

func TestRigidWallWithCheckpoints(t *testing.T) {
	// total=1000, tau=300 -> marks at 300,600,900 (3 checkpoints), delta=10.
	if got := rigidWall(0, 1000, 50, 300, 10); got != 1050+30 {
		t.Fatalf("wall = %d, want 1080", got)
	}
	// A mark exactly at total must be skipped: total=900 -> marks 300,600.
	if got := rigidWall(0, 900, 50, 300, 10); got != 950+20 {
		t.Fatalf("wall = %d, want 970", got)
	}
	// Resuming from saved=300: marks at 600,900 remain for total=1000.
	if got := rigidWall(300, 1000, 50, 300, 10); got != 50+700+20 {
		t.Fatalf("wall = %d, want 770", got)
	}
}

func TestRigidProgressPhases(t *testing.T) {
	// setup=50, tau=300, delta=10, total=1000.
	type tc struct {
		elapsed       int64
		pos, retained int64
		ckpts         int
	}
	cases := []tc{
		{0, 0, 0, 0},
		{30, 0, 0, 0},      // still in setup
		{50, 0, 0, 0},      // setup just done
		{150, 100, 0, 0},   // 100s of work, unsaved
		{350, 300, 0, 0},   // reached mark, checkpoint in flight
		{355, 300, 0, 0},   // mid-checkpoint: retained still 0
		{360, 300, 300, 1}, // checkpoint complete
		{660, 600, 300, 1}, // at second mark
		{670, 600, 600, 2},
		{1080, 1000, 1000, 2}, // completed (no mark at 900? 900<1000 so yes mark)...
	}
	// Recompute the last case: marks at 300,600,900. Completion wall =
	// 50+1000+3*10 = 1080, and retained at completion is total.
	for _, c := range cases[:9] {
		pos, ret, ck := rigidProgress(0, 1000, 50, 300, 10, c.elapsed)
		if pos != c.pos || ret != c.retained || ck != c.ckpts {
			t.Errorf("elapsed %d: got (%d,%d,%d), want (%d,%d,%d)",
				c.elapsed, pos, ret, ck, c.pos, c.retained, c.ckpts)
		}
	}
	pos, ret, ck := rigidProgress(0, 1000, 50, 300, 10, 1080)
	if pos != 1000 || ret != 1000 || ck != 3 {
		t.Errorf("completion: got (%d,%d,%d), want (1000,1000,3)", pos, ret, ck)
	}
}

func TestRigidProgressConsistentWithWall(t *testing.T) {
	// At elapsed = wall, progress must equal total with retained = total.
	for _, saved := range []int64{0, 300, 500} {
		for _, tau := range []int64{0, 250, 300, 999, 5000} {
			wall := rigidWall(saved, 1000, 40, tau, 15)
			pos, ret, _ := rigidProgress(saved, 1000, 40, tau, 15, wall)
			if pos != 1000 || ret != 1000 {
				t.Errorf("saved=%d tau=%d: pos=%d ret=%d at wall", saved, tau, pos, ret)
			}
		}
	}
}

func TestStartAndCompleteRigid(t *testing.T) {
	plan := checkpoint.Plan{Interval: 300, Overhead: 10}
	j := NewRigid(1, 0, 100, 64, 1000, 1500, 50, plan)
	j.State = Waiting
	wall := j.Start(200)
	if wall != 1080 {
		t.Fatalf("wall = %d, want 1080", wall)
	}
	if j.State != Running || j.CurSize != 64 || j.StartTime != 200 {
		t.Fatalf("running state wrong: %+v", j)
	}
	if j.ActualEnd() != 200+1080 {
		t.Fatalf("actual end %d", j.ActualEnd())
	}
	// Estimated wall uses the 1500s estimate: marks at 300..1200 => 4 ckpts.
	if j.EstimatedEnd() != 200+50+1500+4*10 {
		t.Fatalf("estimated end %d", j.EstimatedEnd())
	}
	u := j.FinalizeCompletion(200 + 1080)
	if j.State != Completed || j.EndTime != 1280 {
		t.Fatal("not completed")
	}
	if u.Useful != 1000*64 || u.Setup != 50*64 || u.Ckpt != 3*10*64 || u.Lost != 0 {
		t.Fatalf("usage %+v", u)
	}
	if u.Total() != 1080*64 {
		t.Fatalf("usage total %d != elapsed*nodes %d", u.Total(), 1080*64)
	}
	if j.Turnaround() != 1280-100 {
		t.Fatalf("turnaround %d", j.Turnaround())
	}
	if j.StartDelay() != 100 {
		t.Fatalf("start delay %d", j.StartDelay())
	}
}

func TestPreemptRigidLosesUnsavedWork(t *testing.T) {
	plan := checkpoint.Plan{Interval: 300, Overhead: 10}
	j := NewRigid(1, 0, 0, 10, 1000, 1000, 50, plan)
	j.State = Waiting
	j.Start(0)
	// Preempt at t=500: setup 50 + 450 work => pos=450... mark at 300 done at
	// 50+300+10=360. pos at 500: 300 + (500-360) = 440. retained=300.
	u := j.FinalizePreempt(500)
	if j.State != Waiting || j.PreemptCount != 1 {
		t.Fatal("preempt state wrong")
	}
	if j.SavedWork() != 300 {
		t.Fatalf("saved %d, want 300", j.SavedWork())
	}
	if u.Useful != 300*10 || u.Setup != 50*10 || u.Ckpt != 10*10 {
		t.Fatalf("usage %+v", u)
	}
	if u.Lost != (500-300-50-10)*10 {
		t.Fatalf("lost %d", u.Lost)
	}
	if u.Total() != 500*10 {
		t.Fatalf("usage doesn't cover elapsed: %+v", u)
	}

	// Resume: remaining work 700, marks at 600, 900 => 2 ckpts.
	wall := j.Start(1000)
	if wall != 50+700+20 {
		t.Fatalf("resume wall %d", wall)
	}
	u2 := j.FinalizeCompletion(1000 + wall)
	if u2.Useful != 700*10 || u2.Lost != 0 {
		t.Fatalf("resume usage %+v", u2)
	}
	// Lifetime ledger adds up.
	if j.Acct.Useful != 1000*10 {
		t.Fatalf("lifetime useful %d", j.Acct.Useful)
	}
}

func TestPreemptDuringSetupChargesLost(t *testing.T) {
	j := NewRigid(1, 0, 0, 10, 1000, 1000, 100, checkpoint.Plan{})
	j.State = Waiting
	j.Start(0)
	u := j.FinalizePreempt(60) // still in setup
	if u.Useful != 0 || u.Setup != 0 || u.Ckpt != 0 {
		t.Fatalf("usage %+v", u)
	}
	if u.Lost != 60*10 {
		t.Fatalf("lost %d, want 600", u.Lost)
	}
}

func TestPreemptWithoutCheckpointsLosesEverything(t *testing.T) {
	j := NewRigid(1, 0, 0, 10, 1000, 1000, 50, checkpoint.Plan{})
	j.State = Waiting
	j.Start(0)
	u := j.FinalizePreempt(800)
	if u.Useful != 0 || u.Lost != 800*10 {
		t.Fatalf("usage %+v", u)
	}
	if j.SavedWork() != 0 {
		t.Fatal("nothing should be saved")
	}
}

func TestPreemptionOverhead(t *testing.T) {
	plan := checkpoint.Plan{Interval: 300, Overhead: 10}
	j := NewRigid(1, 0, 0, 10, 1000, 1000, 50, plan)
	j.State = Waiting
	j.Start(0)
	// At t=500 (pos 440, retained 300): overhead = 50 + 140.
	if got := j.PreemptionOverhead(500); got != 190 {
		t.Fatalf("overhead %d, want 190", got)
	}
	// Right after the first checkpoint completes (t=360): overhead = setup.
	if got := j.PreemptionOverhead(360); got != 50 {
		t.Fatalf("overhead at checkpoint %d, want 50", got)
	}
}

func TestNextCheckpointCompletion(t *testing.T) {
	plan := checkpoint.Plan{Interval: 300, Overhead: 10}
	j := NewRigid(1, 0, 0, 10, 1000, 1000, 50, plan)
	j.State = Waiting
	j.Start(100) // ckpt completions at 100+360=460, 770, 1080
	if ct, ok := j.NextCheckpointCompletion(100); !ok || ct != 460 {
		t.Fatalf("first ckpt %d %v", ct, ok)
	}
	if ct, ok := j.NextCheckpointCompletion(460); !ok || ct != 770 {
		t.Fatalf("second ckpt %d %v (boundary must be strictly after)", ct, ok)
	}
	if ct, ok := j.NextCheckpointCompletion(1080); ok {
		t.Fatalf("no ckpt after the last mark, got %d", ct)
	}
	// No checkpointing plan.
	j2 := NewRigid(2, 0, 0, 10, 1000, 1000, 50, checkpoint.Plan{})
	j2.State = Waiting
	j2.Start(0)
	if _, ok := j2.NextCheckpointCompletion(0); ok {
		t.Fatal("plan disabled: no checkpoints")
	}
}

func TestMalleableLifecycle(t *testing.T) {
	// max 100 nodes, min 20, work 1000s @100 nodes => 100_000 node-sec.
	j := NewMalleable(1, 0, 50, 100, 20, 1000, 1200, 30)
	j.State = Waiting
	end := j.StartMalleable(100, 100)
	if end != 100+30+1000 {
		t.Fatalf("end %d, want 1130", end)
	}
	if j.RemainingWork() != 100_000 {
		t.Fatal("no work should be consumed yet")
	}
	// Estimated end uses 1200s estimate.
	if got := j.MalleableEstimatedEnd(100); got != 100+30+1200 {
		t.Fatalf("estimated end %d", got)
	}
	u := j.FinalizeMalleableCompletion(1130)
	if u.Useful != 100_000 || u.Setup != 30*100 || u.Lost != 0 {
		t.Fatalf("usage %+v", u)
	}
	if j.State != Completed || j.EndTime != 1130 {
		t.Fatal("not completed")
	}
}

func TestMalleableShrinkExpandConservesWork(t *testing.T) {
	j := NewMalleable(1, 0, 0, 100, 20, 1000, 1000, 0)
	j.State = Waiting
	j.StartMalleable(0, 100)
	// Run 400s at 100 nodes: 40k consumed, 60k left.
	end := j.Resize(400, 50)
	if j.RemainingWork() != 60_000 {
		t.Fatalf("remaining %d, want 60000", j.RemainingWork())
	}
	if end != 400+60_000/50 {
		t.Fatalf("end after shrink %d, want 1600", end)
	}
	if j.ShrinkCount != 1 {
		t.Fatal("shrink not counted")
	}
	// 200s at 50 nodes: 10k consumed, 50k left; expand back to 100.
	end = j.Resize(600, 100)
	if j.RemainingWork() != 50_000 {
		t.Fatalf("remaining %d, want 50000", j.RemainingWork())
	}
	if end != 600+500 {
		t.Fatalf("end after expand %d, want 1100", end)
	}
	if j.ShrinkCount != 1 {
		t.Fatal("expand must not count as shrink")
	}
	u := j.FinalizeMalleableCompletion(1100)
	if u.Useful != 100_000 {
		t.Fatalf("useful %d, want all work", u.Useful)
	}
}

func TestMalleableResizeDuringSetup(t *testing.T) {
	j := NewMalleable(1, 0, 0, 100, 20, 1000, 1000, 60)
	j.State = Waiting
	j.StartMalleable(0, 100)
	end := j.Resize(30, 50) // still in setup; no work consumed
	if j.RemainingWork() != 100_000 {
		t.Fatal("work consumed during setup")
	}
	if end != 60+100_000/50 {
		t.Fatalf("end %d, want 2060", end)
	}
}

func TestMalleableWarningPreemption(t *testing.T) {
	j := NewMalleable(1, 0, 0, 100, 20, 1000, 1000, 40)
	j.State = Waiting
	j.StartMalleable(0, 100)
	j.BeginWarning(500) // worked 460s: 46k consumed
	if j.State != Warning {
		t.Fatal("not in warning")
	}
	// Job keeps computing during the warning window.
	u := j.FinalizeWarning(500 + WarningPeriod)
	if j.State != Waiting || j.PreemptCount != 1 {
		t.Fatal("warning finalize state wrong")
	}
	wantUseful := int64(460+WarningPeriod) * 100
	if u.Useful != wantUseful {
		t.Fatalf("useful %d, want %d", u.Useful, wantUseful)
	}
	if u.Setup != 40*100 || u.Lost != 0 {
		t.Fatalf("usage %+v", u)
	}
	// Progress survives: resume with only setup repeated.
	rem := j.RemainingWork()
	if rem != 100_000-wantUseful {
		t.Fatalf("remaining %d", rem)
	}
	end := j.StartMalleable(1000, 100)
	if end != 1000+40+ceilDiv(rem, 100) {
		t.Fatalf("resume end %d", end)
	}
}

func TestMalleableWarningDuringSetupChargesLost(t *testing.T) {
	j := NewMalleable(1, 0, 0, 100, 20, 1000, 1000, 300)
	j.State = Waiting
	j.StartMalleable(0, 100)
	j.BeginWarning(100)
	u := j.FinalizeWarning(220) // setup (300s) never completed
	if u.Useful != 0 {
		t.Fatalf("useful %d, want 0", u.Useful)
	}
	if u.Lost != 220*100 {
		t.Fatalf("lost %d, want 22000", u.Lost)
	}
}

func TestMalleableCompletionDuringWarning(t *testing.T) {
	j := NewMalleable(1, 0, 0, 10, 2, 100, 100, 0)
	j.State = Waiting
	j.StartMalleable(0, 10) // ends at 100
	j.BeginWarning(50)
	// Completes inside the warning window.
	u := j.FinalizeMalleableCompletion(100)
	if j.State != Completed {
		t.Fatal("should complete from warning")
	}
	if u.Useful != 1000 {
		t.Fatalf("useful %d", u.Useful)
	}
}

func TestMalleableResizePanicsOutsideBounds(t *testing.T) {
	j := NewMalleable(1, 0, 0, 100, 20, 1000, 1000, 0)
	j.State = Waiting
	j.StartMalleable(0, 100)
	for _, n := range []int{10, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for resize to %d", n)
				}
			}()
			j.Resize(10, n)
		}()
	}
}

func TestUpdateProgressBackwardsPanics(t *testing.T) {
	j := NewMalleable(1, 0, 0, 100, 20, 1000, 1000, 0)
	j.State = Waiting
	j.StartMalleable(100, 100)
	j.UpdateProgress(200)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	j.UpdateProgress(150)
}

func TestMalleablePreemptionOverheadIsSetup(t *testing.T) {
	j := NewMalleable(1, 0, 0, 100, 20, 1000, 1000, 37)
	j.State = Waiting
	j.StartMalleable(0, 100)
	if got := j.PreemptionOverhead(500); got != 37 {
		t.Fatalf("malleable overhead %d, want setup 37", got)
	}
}
