// Package job models the three HPC application classes of the paper — rigid,
// on-demand, and malleable — together with their execution semantics:
// startup overhead, periodic checkpointing of rigid jobs, computation lost to
// preemption, and the linear-speedup work model of malleable jobs
// (t_actual = t_single/n + t_setup, paper §III-A).
//
// A Job carries both its static description (what a trace records) and its
// dynamic execution state. The execution state is advanced exclusively
// through the incarnation methods (Start/FinalizeCompletion/FinalizePreempt
// for fixed-size jobs, Start/UpdateProgress/Resize/FinalizePreempt for
// malleable jobs), which also produce the node-second accounting consumed by
// the metrics ledger.
package job

import (
	"fmt"

	"hybridsched/internal/checkpoint"
)

// Class is the application type.
type Class int

// The three application classes of the paper (§II-A).
const (
	Rigid Class = iota
	OnDemand
	Malleable
)

// String returns the lower-case class name.
func (c Class) String() string {
	switch c {
	case Rigid:
		return "rigid"
	case OnDemand:
		return "on-demand"
	case Malleable:
		return "malleable"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// NoticeCategory classifies how an on-demand job's advance notice relates to
// its actual arrival (paper Fig. 1).
type NoticeCategory int

// The four notice categories of Figure 1.
const (
	NoNotice NoticeCategory = iota
	AccurateNotice
	ArriveEarly
	ArriveLate
)

// String returns a short label for the category.
func (n NoticeCategory) String() string {
	switch n {
	case NoNotice:
		return "no-notice"
	case AccurateNotice:
		return "accurate"
	case ArriveEarly:
		return "early"
	case ArriveLate:
		return "late"
	}
	return fmt.Sprintf("notice(%d)", int(n))
}

// State is the lifecycle state of a job.
type State int

// Lifecycle states.
const (
	Future    State = iota // not yet submitted
	Waiting                // in the wait queue (possibly after preemption)
	Running                // holding nodes and executing
	Warning                // malleable job in its two-minute preemption warning
	Completed              // finished
)

// String returns the lower-case state name.
func (s State) String() string {
	switch s {
	case Future:
		return "future"
	case Waiting:
		return "waiting"
	case Running:
		return "running"
	case Warning:
		return "warning"
	case Completed:
		return "completed"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Usage is a node-second ledger delta produced when an incarnation ends.
// Useful is retained computation, Setup is startup overhead that enabled
// retained computation, Ckpt is completed-checkpoint overhead, and Lost is
// everything discarded by a preemption (unsaved work, in-flight checkpoints,
// and setup that enabled nothing).
type Usage struct {
	Useful int64
	Setup  int64
	Ckpt   int64
	Lost   int64
}

// Total returns the sum of all categories.
func (u Usage) Total() int64 { return u.Useful + u.Setup + u.Ckpt + u.Lost }

// add accumulates o into u.
func (u *Usage) add(o Usage) {
	u.Useful += o.Useful
	u.Setup += o.Setup
	u.Ckpt += o.Ckpt
	u.Lost += o.Lost
}

// Job is a single application instance. Fields up to "dynamic state" are the
// static description a trace records; the rest evolves during simulation.
type Job struct {
	ID      int
	Project int
	Class   Class

	SubmitTime int64 // first submission (actual arrival for on-demand jobs)
	Size       int   // requested nodes; maximum size for malleable jobs
	MinSize    int   // minimum size (malleable only; == Size otherwise)
	Work       int64 // actual pure compute seconds at Size nodes
	Estimate   int64 // user runtime estimate (>= Work) at Size nodes
	SetupTime  int64 // per-(re)start setup seconds

	Ckpt checkpoint.Plan // rigid jobs only

	// On-demand notice information (on-demand jobs only).
	Notice     NoticeCategory
	NoticeTime int64 // when the advance notice is received (== SubmitTime when NoNotice)
	EstArrival int64 // arrival estimate carried by the notice

	// --- dynamic state ---
	State        State
	CurSize      int   // nodes currently held (0 unless Running/Warning)
	StartTime    int64 // first time the job ever started (-1 before)
	EndTime      int64 // completion time (-1 before)
	PreemptCount int   // times preempted
	ShrinkCount  int   // times shrunk for an on-demand job
	Acct         Usage // lifetime node-second ledger

	// Rigid/on-demand incarnation state.
	saved      int64 // work seconds retained from previous incarnations
	incStart   int64 // current incarnation start time
	incWall    int64 // wall length of current incarnation if undisturbed
	incEstWall int64 // estimate-based wall length fixed at incarnation start

	// Malleable work state (node-seconds).
	totalWork  int64 // Work * Size
	remWork    int64 // remaining node-seconds
	setupEnd   int64 // current incarnation: when setup completes
	lastUpdate int64 // last time remWork/accounting was advanced
	incSetup   int64 // node-seconds of setup spent this incarnation
	incUseful  int64 // node-seconds of useful work this incarnation
}

// NewRigid builds a rigid job.
func NewRigid(id, project int, submit int64, size int, work, estimate, setup int64, plan checkpoint.Plan) *Job {
	j := newJob(id, project, Rigid, submit, size, work, estimate, setup)
	j.Ckpt = plan
	return j
}

// NewOnDemand builds an on-demand job. submit is the actual arrival time;
// notice describes the advance-notice category with its notice and estimated
// arrival times (pass notice == submit and estArrival == submit for NoNotice).
func NewOnDemand(id, project int, submit int64, size int, work, estimate, setup int64, cat NoticeCategory, notice, estArrival int64) *Job {
	j := newJob(id, project, OnDemand, submit, size, work, estimate, setup)
	j.Notice = cat
	j.NoticeTime = notice
	j.EstArrival = estArrival
	return j
}

// NewMalleable builds a malleable job with maximum size maxSize and minimum
// size minSize. work and estimate are expressed at maxSize, following the
// paper ("job estimate runtime when running at maximum job size").
func NewMalleable(id, project int, submit int64, maxSize, minSize int, work, estimate, setup int64) *Job {
	if minSize < 1 || minSize > maxSize {
		panic(fmt.Sprintf("job %d: invalid malleable sizes min=%d max=%d", id, minSize, maxSize))
	}
	j := newJob(id, project, Malleable, submit, maxSize, work, estimate, setup)
	j.MinSize = minSize
	j.totalWork = work * int64(maxSize)
	j.remWork = j.totalWork
	return j
}

func newJob(id, project int, class Class, submit int64, size int, work, estimate, setup int64) *Job {
	if size < 1 {
		panic(fmt.Sprintf("job %d: size %d < 1", id, size))
	}
	if work < 1 {
		work = 1
	}
	if estimate < work {
		estimate = work
	}
	if setup < 0 {
		setup = 0
	}
	return &Job{
		ID:         id,
		Project:    project,
		Class:      class,
		SubmitTime: submit,
		Size:       size,
		MinSize:    size,
		Work:       work,
		Estimate:   estimate,
		SetupTime:  setup,
		State:      Future,
		StartTime:  -1,
		EndTime:    -1,
	}
}

// Turnaround returns completion minus submission. It panics if the job has
// not completed.
func (j *Job) Turnaround() int64 {
	if j.EndTime < 0 {
		panic(fmt.Sprintf("job %d: Turnaround before completion", j.ID))
	}
	return j.EndTime - j.SubmitTime
}

// StartDelay returns the first-start time minus submission. It panics if the
// job never started.
func (j *Job) StartDelay() int64 {
	if j.StartTime < 0 {
		panic(fmt.Sprintf("job %d: StartDelay before start", j.ID))
	}
	return j.StartTime - j.SubmitTime
}

// RemainingWork returns, for malleable jobs, the outstanding node-seconds as
// of the last progress update.
func (j *Job) RemainingWork() int64 { return j.remWork }

// SavedWork returns, for rigid jobs, the checkpoint-retained work seconds.
func (j *Job) SavedWork() int64 { return j.saved }
