package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"hybridsched"
)

// registerTestExtender registers one extender name at most once per test
// process (the scheduler registry is append-only) and lets each test swap
// the live policy behind it.
var (
	extOnce   sync.Once
	extPolicy atomic.Pointer[http.Handler]
)

func registerTestExtender(t *testing.T) string {
	t.Helper()
	const name = "remote-test-policy"
	extOnce.Do(func() {
		// One stable reverse-proxy-ish endpoint for the process: it
		// forwards to whatever handler the current test installed.
		front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if h := extPolicy.Load(); h != nil {
				(*h).ServeHTTP(w, r)
				return
			}
			http.Error(w, "no policy installed", http.StatusServiceUnavailable)
		}))
		// Never closed: the registry entry outlives any one test.
		if err := RegisterExtender(name, front.URL, nil); err != nil {
			t.Fatalf("register extender: %v", err)
		}
	})
	return name
}

// TestExtenderDrivesSession registers a remote HTTP policy and verifies it
// drives a hosted session: the daemon POSTs od_arrival callbacks, the
// remote's "start" decision starts the on-demand job instantly, and a
// "decline" leaves it to the engine's queue path.
func TestExtenderDrivesSession(t *testing.T) {
	name := registerTestExtender(t)

	var calls atomic.Int64
	var lastReq atomic.Pointer[ExtenderRequest]
	policy := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req ExtenderRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		calls.Add(1)
		lastReq.Store(&req)
		// Start every on-demand arrival that fits in the free pool.
		dec := ExtenderResponse{Handled: true}
		if req.Callback == "od_arrival" && req.Cluster.Free >= req.Job.Size {
			dec.Start = true
		}
		json.NewEncoder(w).Encode(dec)
	}))
	extPolicy.Store(&policy)

	_, ts := testServer(t, Quotas{}, "")
	var info sessionInfo
	code := call(t, "POST", ts.URL+"/v1/sessions", createRequest{
		Tenant: "alice", Mechanism: name, Nodes: 64,
	}, &info)
	if code != http.StatusCreated {
		t.Fatalf("create with extender mechanism: status %d", code)
	}
	base := ts.URL + "/v1/sessions/" + info.ID

	od := map[string]any{"id": 1, "class": "on-demand", "submit": 600, "size": 16, "work": 1800}
	if code := call(t, "POST", base+"/jobs", od, nil); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	var adv advanceResponse
	if code := call(t, "POST", base+"/advance", advanceRequest{Hours: 2}, &adv); code != http.StatusOK {
		t.Fatalf("advance: status %d", code)
	}
	if adv.Completed != 1 {
		t.Fatalf("on-demand job not completed: %+v", adv)
	}
	if calls.Load() == 0 {
		t.Fatal("remote policy received no callbacks")
	}
	got := lastReq.Load()
	if got == nil || got.Callback != "od_arrival" || got.Job.ID != 1 || got.Cluster.Nodes != 64 {
		t.Fatalf("last callback = %+v", got)
	}

	// The remote's "start now" decision means a zero start delay.
	var rep hybridsched.Report
	if code := call(t, "GET", base+"/report", nil, &rep); code != http.StatusOK {
		t.Fatalf("report: status %d", code)
	}
	if rep.StrictInstantStartRate != 1 {
		t.Errorf("StrictInstantStartRate = %g, want 1 (extender started the job instantly)", rep.StrictInstantStartRate)
	}
}

// TestExtenderFailOpen pins the failure policy: an unreachable or erroring
// remote degrades to the engine's normal queue path — the run completes,
// nothing panics, and the simulation's integrity is untouched.
func TestExtenderFailOpen(t *testing.T) {
	name := registerTestExtender(t)
	policy := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "policy exploded", http.StatusInternalServerError)
	}))
	extPolicy.Store(&policy)

	_, ts := testServer(t, Quotas{}, "")
	var info sessionInfo
	if code := call(t, "POST", ts.URL+"/v1/sessions", createRequest{Tenant: "alice", Mechanism: name, Nodes: 64}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	base := ts.URL + "/v1/sessions/" + info.ID
	od := map[string]any{"id": 1, "class": "on-demand", "submit": 600, "size": 16, "work": 1800}
	if code := call(t, "POST", base+"/jobs", od, nil); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	var adv advanceResponse
	if code := call(t, "POST", base+"/advance", advanceRequest{Hours: 2}, &adv); code != http.StatusOK {
		t.Fatalf("advance with failing extender: status %d", code)
	}
	if adv.Completed != 1 {
		t.Fatalf("job must still complete via the queue path: %+v", adv)
	}
}

// TestExtenderUnit exercises the Extender decision logic directly against
// a local policy, including the impossible-start guard.
func TestExtenderUnit(t *testing.T) {
	greedy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Always demand a start, even when it cannot fit.
		json.NewEncoder(w).Encode(ExtenderResponse{Handled: true, Start: true})
	}))
	defer greedy.Close()

	x := NewExtender("greedy", greedy.URL, nil)
	sess, err := hybridsched.NewSession(hybridsched.WithNodes(32), hybridsched.WithScheduler(x))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	// A rigid job pins 24 of 32 nodes for two hours; the on-demand arrival
	// needs 16. The greedy remote says start anyway; the guard sees only 8
	// free nodes and declines, so the job queues instead of failing the run.
	if err := sess.Submit(hybridsched.Record{ID: 1, Class: hybridsched.Rigid,
		Submit: 0, Size: 24, MinSize: 24, Work: 7200, Estimate: 7200}); err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(hybridsched.Record{ID: 2, Class: hybridsched.OnDemand,
		Submit: 600, Size: 16, MinSize: 16, Work: 600, Estimate: 600}); err != nil {
		t.Fatal(err)
	}
	if err := sess.RunUntil(3600); err != nil {
		t.Fatalf("impossible start must queue, not fail: %v", err)
	}
	if x.Calls() == 0 {
		t.Fatal("no callbacks made")
	}
	if snap := sess.Snapshot(); snap.QueueDepth != 1 {
		t.Fatalf("queue depth at t=3600: %d, want 1 (on-demand waiting behind rigid)", snap.QueueDepth)
	}
	// Once the rigid job frees its nodes, the queued on-demand job runs.
	if err := sess.RunUntil(6 * hybridsched.Hour); err != nil {
		t.Fatal(err)
	}
	if snap := sess.Snapshot(); snap.Completed != 2 || snap.QueueDepth != 0 {
		t.Fatalf("after rigid completion: %+v, want both jobs done", snap)
	}
}
