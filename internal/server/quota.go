package server

import (
	"fmt"
	"sort"
	"sync"
)

// Quotas bounds what one tenant — and the daemon as a whole — may consume.
// The zero value of any field means "use the default"; explicit unlimited is
// expressed with a negative value. Quota violations surface to HTTP clients
// as 429 responses carrying a Retry-After hint, the explicit backpressure
// contract: the daemon never queues unboundedly on behalf of a tenant.
type Quotas struct {
	// MaxSessions bounds the total number of hosted sessions across all
	// tenants (default 64).
	MaxSessions int
	// MaxSessionsPerTenant bounds one tenant's live sessions (default 8).
	MaxSessionsPerTenant int
	// MailboxDepth is the capacity of each session actor's request mailbox.
	// A request arriving at a full mailbox is rejected with 429 instead of
	// blocking the HTTP handler (default 64).
	MailboxDepth int
	// MaxQueuedSubmits bounds one tenant's job submissions that are accepted
	// but not yet applied by a session actor, summed across the tenant's
	// sessions (default 1024).
	MaxQueuedSubmits int
}

// Defaults for the zero Quotas value.
const (
	defaultMaxSessions          = 64
	defaultMaxSessionsPerTenant = 8
	defaultMailboxDepth         = 64
	defaultMaxQueuedSubmits     = 1024
)

// withDefaults resolves zero fields to the defaults and negative fields to
// "effectively unlimited".
func (q Quotas) withDefaults() Quotas {
	resolve := func(v, def int) int {
		switch {
		case v == 0:
			return def
		case v < 0:
			return int(^uint(0) >> 1) // max int
		}
		return v
	}
	q.MaxSessions = resolve(q.MaxSessions, defaultMaxSessions)
	q.MaxSessionsPerTenant = resolve(q.MaxSessionsPerTenant, defaultMaxSessionsPerTenant)
	q.MailboxDepth = resolve(q.MailboxDepth, defaultMailboxDepth)
	if q.MailboxDepth > 1<<20 {
		q.MailboxDepth = 1 << 20 // a channel this deep is a config error, not a feature
	}
	q.MaxQueuedSubmits = resolve(q.MaxQueuedSubmits, defaultMaxQueuedSubmits)
	return q
}

// quotaError is a quota violation; the API layer maps it to HTTP 429.
type quotaError struct{ msg string }

func (e quotaError) Error() string { return e.msg }

// isQuotaError reports whether err is a quota violation.
func isQuotaError(err error) bool {
	_, ok := err.(quotaError)
	return ok
}

// tenantLedger tracks per-tenant quota consumption: live sessions and
// accepted-but-unapplied job submissions. It is the single point quota
// decisions are made at, so check-and-increment is atomic under its lock.
type tenantLedger struct {
	quotas Quotas

	mu       sync.Mutex
	sessions map[string]int // tenant -> live sessions
	queued   map[string]int // tenant -> queued submissions
	total    int            // live sessions across tenants
}

func newTenantLedger(q Quotas) *tenantLedger {
	return &tenantLedger{
		quotas:   q,
		sessions: map[string]int{},
		queued:   map[string]int{},
	}
}

// addSession claims a session slot for tenant, failing with a quotaError if
// either the tenant or the daemon is at its limit.
func (l *tenantLedger) addSession(tenant string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.total >= l.quotas.MaxSessions {
		return quotaError{fmt.Sprintf("server at its session limit (%d)", l.quotas.MaxSessions)}
	}
	if l.sessions[tenant] >= l.quotas.MaxSessionsPerTenant {
		return quotaError{fmt.Sprintf("tenant %q at its session limit (%d)", tenant, l.quotas.MaxSessionsPerTenant)}
	}
	l.sessions[tenant]++
	l.total++
	return nil
}

// dropSession releases a session slot.
func (l *tenantLedger) dropSession(tenant string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sessions[tenant] > 0 {
		l.sessions[tenant]--
		l.total--
		if l.sessions[tenant] == 0 {
			delete(l.sessions, tenant)
		}
	}
}

// addQueued claims one queued-submission slot for tenant.
func (l *tenantLedger) addQueued(tenant string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.queued[tenant] >= l.quotas.MaxQueuedSubmits {
		return quotaError{fmt.Sprintf("tenant %q at its queued-submission limit (%d)", tenant, l.quotas.MaxQueuedSubmits)}
	}
	l.queued[tenant]++
	return nil
}

// dropQueued releases one queued-submission slot.
func (l *tenantLedger) dropQueued(tenant string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.queued[tenant] > 0 {
		l.queued[tenant]--
		if l.queued[tenant] == 0 {
			delete(l.queued, tenant)
		}
	}
}

// tenantUsage is one tenant's current quota consumption, for /metrics.
type tenantUsage struct {
	tenant   string
	sessions int
	queued   int
}

// usage returns per-tenant consumption sorted by tenant name (stable
// /metrics output).
func (l *tenantLedger) usage() []tenantUsage {
	l.mu.Lock()
	defer l.mu.Unlock()
	seen := map[string]bool{}
	var out []tenantUsage
	for t, n := range l.sessions {
		out = append(out, tenantUsage{tenant: t, sessions: n, queued: l.queued[t]})
		seen[t] = true
	}
	for t, n := range l.queued {
		if !seen[t] {
			out = append(out, tenantUsage{tenant: t, queued: n})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].tenant < out[j].tenant })
	return out
}
