package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// This file is a minimal, dependency-free Prometheus text-exposition
// registry: the handful of counter/gauge/histogram shapes schedd needs,
// written in the 0.0.4 text format that any Prometheus scraper ingests.
// Pulling in client_golang for six metric families would be the tail
// wagging the dog; the format is stable and trivially emitted by hand.

// counter is a monotonically increasing metric, safe for concurrent use.
type counter struct{ v atomic.Int64 }

func (c *counter) Inc()         { c.v.Add(1) }
func (c *counter) Add(n int64)  { c.v.Add(n) }
func (c *counter) Value() int64 { return c.v.Load() }

// gauge is a settable instantaneous value, safe for concurrent use.
type gauge struct{ v atomic.Int64 }

func (g *gauge) Add(n int64)  { g.v.Add(n) }
func (g *gauge) Value() int64 { return g.v.Load() }

// labeledCounter is a counter family with one label dimension.
type labeledCounter struct {
	mu sync.Mutex
	m  map[string]int64
}

func (c *labeledCounter) Inc(label string) {
	c.mu.Lock()
	if c.m == nil {
		c.m = map[string]int64{}
	}
	c.m[label]++
	c.mu.Unlock()
}

// sorted returns the label/value pairs in label order (stable output).
func (c *labeledCounter) sorted() ([]string, []int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	labels := make([]string, 0, len(c.m))
	for l := range c.m {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	vals := make([]int64, len(labels))
	for i, l := range labels {
		vals[i] = c.m[l]
	}
	return labels, vals
}

// histogram is a fixed-bucket cumulative histogram.
type histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit

	mu     sync.Mutex
	counts []int64
	sum    float64
	total  int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]int64, len(bounds))}
}

func (h *histogram) Observe(v float64) {
	h.mu.Lock()
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
		}
	}
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// metrics is schedd's operational instrument panel, exported at /metrics in
// Prometheus text format.
type metrics struct {
	sessionsLive     gauge
	sessionsCreated  counter
	sessionsRestored counter
	sessionsDeleted  counter

	jobsSubmitted counter
	jobsCompleted counter
	eventsEmitted counter
	eventsDropped counter

	quotaDenials    counter
	backpressure429 counter

	httpRequests   labeledCounter // by status code
	requestSeconds *histogram
}

func newMetrics() *metrics {
	return &metrics{
		requestSeconds: newHistogram([]float64{.001, .005, .01, .05, .1, .5, 1, 5, 30}),
	}
}

// writePrometheus emits every metric family, plus the per-tenant quota
// gauges from the ledger, in the text exposition format.
func (m *metrics) writePrometheus(w io.Writer, ledger *tenantLedger) {
	g := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	c := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	g("schedd_sessions_live", "Simulation sessions currently hosted.", m.sessionsLive.Value())
	c("schedd_sessions_created_total", "Sessions created over the HTTP API.", m.sessionsCreated.Value())
	c("schedd_sessions_restored_total", "Sessions restored from the state dir at startup.", m.sessionsRestored.Value())
	c("schedd_sessions_deleted_total", "Sessions deleted over the HTTP API.", m.sessionsDeleted.Value())
	c("schedd_jobs_submitted_total", "Job records accepted into hosted sessions.", m.jobsSubmitted.Value())
	c("schedd_jobs_completed_total", "Jobs completed across hosted sessions.", m.jobsCompleted.Value())
	c("schedd_events_emitted_total", "Scheduling events emitted by hosted sessions.", m.eventsEmitted.Value())
	c("schedd_events_dropped_total", "Events dropped by overflowing event-stream buffers.", m.eventsDropped.Value())
	c("schedd_quota_denials_total", "Requests denied by a tenant or server quota.", m.quotaDenials.Value())
	c("schedd_backpressure_total", "Requests rejected because a session mailbox was full.", m.backpressure429.Value())

	fmt.Fprintf(w, "# HELP schedd_http_requests_total HTTP requests served, by status code.\n# TYPE schedd_http_requests_total counter\n")
	codes, counts := m.httpRequests.sorted()
	for i, code := range codes {
		fmt.Fprintf(w, "schedd_http_requests_total{code=%q} %d\n", code, counts[i])
	}

	h := m.requestSeconds
	h.mu.Lock()
	fmt.Fprintf(w, "# HELP schedd_request_duration_seconds HTTP request latency.\n# TYPE schedd_request_duration_seconds histogram\n")
	for i, b := range h.bounds {
		fmt.Fprintf(w, "schedd_request_duration_seconds_bucket{le=%q} %d\n",
			strconv.FormatFloat(b, 'g', -1, 64), h.counts[i])
	}
	fmt.Fprintf(w, "schedd_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", h.total)
	fmt.Fprintf(w, "schedd_request_duration_seconds_sum %g\n", h.sum)
	fmt.Fprintf(w, "schedd_request_duration_seconds_count %d\n", h.total)
	h.mu.Unlock()

	if ledger != nil {
		usage := ledger.usage()
		fmt.Fprintf(w, "# HELP schedd_tenant_sessions Live sessions per tenant.\n# TYPE schedd_tenant_sessions gauge\n")
		for _, u := range usage {
			fmt.Fprintf(w, "schedd_tenant_sessions{tenant=%q} %d\n", u.tenant, u.sessions)
		}
		fmt.Fprintf(w, "# HELP schedd_tenant_queued_submits Accepted-but-unapplied job submissions per tenant.\n# TYPE schedd_tenant_queued_submits gauge\n")
		for _, u := range usage {
			fmt.Fprintf(w, "schedd_tenant_queued_submits{tenant=%q} %d\n", u.tenant, u.queued)
		}
	}
}
