package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hybridsched"
)

// testServer builds a Server (with quotas q and optional state dir) and an
// httptest front end, torn down with the test.
func testServer(t *testing.T, q Quotas, stateDir string) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{Quotas: q, StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// call makes one JSON request and decodes the response into out (skipped
// when out is nil). It returns the status code.
func call(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

// rigidJob is a minimal wire-form rigid job.
func rigidJob(id int, submit int64, size int, work int64) map[string]any {
	return map[string]any{"id": id, "class": "rigid", "submit": submit, "size": size, "work": work}
}

// TestTwoTenantsConcurrent is the acceptance scenario: two tenants' sessions
// hosted at once, driven over HTTP from concurrent clients, with isolated
// state and correct progress. Run under -race in CI.
func TestTwoTenantsConcurrent(t *testing.T) {
	_, ts := testServer(t, Quotas{}, "")

	ids := make([]string, 2)
	for i, tenant := range []string{"alice", "bob"} {
		var info sessionInfo
		code := call(t, "POST", ts.URL+"/v1/sessions", createRequest{
			Tenant: tenant, Mechanism: "CUA&SPAA", Nodes: 128,
		}, &info)
		if code != http.StatusCreated {
			t.Fatalf("create for %s: status %d", tenant, code)
		}
		if info.Tenant != tenant || info.Nodes != 128 {
			t.Fatalf("create for %s: info %+v", tenant, info)
		}
		ids[i] = info.ID
	}

	// Each client drives its own session: submit 50 jobs, advance a day,
	// snapshot — all concurrently against the one daemon.
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			base := ts.URL + "/v1/sessions/" + id
			for j := 1; j <= 50; j++ {
				jb := rigidJob(j, int64(j*60), 8+8*i, 1800)
				if code := call(t, "POST", base+"/jobs", jb, nil); code != http.StatusAccepted {
					errs <- fmt.Errorf("session %s job %d: status %d", id, j, code)
					return
				}
			}
			var adv advanceResponse
			if code := call(t, "POST", base+"/advance", advanceRequest{Hours: 24}, &adv); code != http.StatusOK {
				errs <- fmt.Errorf("session %s advance: status %d", id, code)
				return
			}
			if adv.Now != 24*hybridsched.Hour || adv.Submitted != 50 || adv.Completed != 50 {
				errs <- fmt.Errorf("session %s advance landed at %+v", id, adv)
			}
		}(i, id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The sessions stayed isolated: each holds exactly its own jobs, and
	// the tenant filter sees only its own session.
	for i, id := range ids {
		var snap hybridsched.Snapshot
		if code := call(t, "GET", ts.URL+"/v1/sessions/"+id+"/snapshot", nil, &snap); code != http.StatusOK {
			t.Fatalf("snapshot %s: status %d", id, code)
		}
		if snap.Submitted != 50 || snap.Completed != 50 || snap.Nodes != 128 {
			t.Errorf("session %s snapshot: %d/%d on %d nodes", id, snap.Completed, snap.Submitted, snap.Nodes)
		}
		var infos []sessionInfo
		tenant := []string{"alice", "bob"}[i]
		call(t, "GET", ts.URL+"/v1/sessions?tenant="+tenant, nil, &infos)
		if len(infos) != 1 || infos[0].ID != id {
			t.Errorf("tenant %s filter: %+v", tenant, infos)
		}
	}

	// A report is servable mid-life and carries the completed jobs.
	var rep hybridsched.Report
	if code := call(t, "GET", ts.URL+"/v1/sessions/"+ids[0]+"/report", nil, &rep); code != http.StatusOK {
		t.Fatalf("report: status %d", code)
	}
	if rep.Jobs != 50 {
		t.Errorf("report jobs = %d, want 50", rep.Jobs)
	}
}

// TestCreateFromSource creates a session from a synthetic source spec: the
// records are materialized up front (keeping the session checkpointable)
// and counted as submissions.
func TestCreateFromSource(t *testing.T) {
	_, ts := testServer(t, Quotas{}, "")
	var info sessionInfo
	code := call(t, "POST", ts.URL+"/v1/sessions", createRequest{
		Tenant: "alice", Nodes: 512,
		Source: "synthetic:seed=7,weeks=1,nodes=512",
	}, &info)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if info.Submitted == 0 {
		t.Fatalf("source session submitted 0 jobs: %+v", info)
	}
	var adv advanceResponse
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/advance", advanceRequest{Hours: 12}, &adv); code != http.StatusOK {
		t.Fatalf("advance: status %d", code)
	}
	if adv.Completed == 0 {
		t.Errorf("nothing completed after 12h: %+v", adv)
	}
}

// TestSSEEvents subscribes to a session's event stream and verifies the
// typed scheduling events of a submitted job arrive over SSE, and that
// deleting the session ends the stream with an eof event.
func TestSSEEvents(t *testing.T) {
	_, ts := testServer(t, Quotas{}, "")
	var info sessionInfo
	if code := call(t, "POST", ts.URL+"/v1/sessions", createRequest{Tenant: "alice", Nodes: 64}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	base := ts.URL + "/v1/sessions/" + info.ID

	resp, err := http.Get(base + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Collect (event, data) pairs in the background.
	type sse struct{ event, data string }
	events := make(chan sse, 64)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		var cur sse
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				cur.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				cur.data = strings.TrimPrefix(line, "data: ")
			case line == "" && cur.event != "":
				events <- cur
				cur = sse{}
			}
		}
	}()

	if first := <-events; first.event != "hello" || !strings.Contains(first.data, info.ID) {
		t.Fatalf("first SSE event = %+v, want hello for %s", first, info.ID)
	}

	if code := call(t, "POST", base+"/jobs", rigidJob(1, 600, 16, 3600), nil); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if code := call(t, "POST", base+"/advance", advanceRequest{Hours: 3}, nil); code != http.StatusOK {
		t.Fatalf("advance: status %d", code)
	}

	// The job's lifecycle must stream in dispatch order.
	want := []string{"arrival", "start", "end"}
	for _, wantType := range want {
		ev, open := <-events
		if !open {
			t.Fatalf("stream ended before %q event", wantType)
		}
		var we wireEvent
		if err := json.Unmarshal([]byte(ev.data), &we); err != nil {
			t.Fatalf("bad sched payload %q: %v", ev.data, err)
		}
		if ev.event != "sched" || we.Type != wantType || we.Job != 1 {
			t.Fatalf("got %s %+v, want sched %s for job 1", ev.event, we, wantType)
		}
	}

	// Deleting the session closes its Events channels; the stream must end
	// with an eof frame rather than hang.
	if code := call(t, "DELETE", base, nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	sawEOF := false
	for ev := range events {
		if ev.event == "eof" {
			sawEOF = true
		}
	}
	if !sawEOF {
		t.Fatal("stream ended without an eof event after delete")
	}
}

// TestCheckpointRestore is the kill/restart acceptance scenario: sessions
// hosted by a drained daemon are restored by the next one from the state
// dir, with snapshots equal to the pre-kill state byte for byte.
func TestCheckpointRestore(t *testing.T) {
	stateDir := t.TempDir()
	srv1, ts1 := testServer(t, Quotas{}, stateDir)

	// Two tenants, different mechanisms, advanced to different instants —
	// the restore must bring back both, each at its own clock.
	pre := map[string][]byte{}
	for i, tenant := range []string{"alice", "bob"} {
		var info sessionInfo
		code := call(t, "POST", ts1.URL+"/v1/sessions", createRequest{
			Tenant: tenant, ID: tenant + "-exp", Nodes: 128,
			Mechanism: []string{"CUA&SPAA", "baseline"}[i],
		}, &info)
		if code != http.StatusCreated {
			t.Fatalf("create: status %d", code)
		}
		base := ts1.URL + "/v1/sessions/" + info.ID
		for j := 1; j <= 30; j++ {
			if code := call(t, "POST", base+"/jobs", rigidJob(j, int64(j*300), 16, 7200), nil); code != http.StatusAccepted {
				t.Fatalf("submit: status %d", code)
			}
		}
		if code := call(t, "POST", base+"/advance", advanceRequest{Hours: int64(4 + 2*i)}, nil); code != http.StatusOK {
			t.Fatalf("advance: status %d", code)
		}
		req, _ := http.NewRequest("GET", base+"/snapshot", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		pre[info.ID] = data
	}

	// Graceful drain checkpoints both sessions into the state dir.
	ts1.Close()
	srv1.Drain()

	// A fresh daemon over the same state dir restores them.
	srv2, ts2 := testServer(t, Quotas{}, stateDir)
	var infos []sessionInfo
	if code := call(t, "GET", ts2.URL+"/v1/sessions", nil, &infos); code != http.StatusOK {
		t.Fatalf("list after restore: status %d", code)
	}
	if len(infos) != 2 {
		t.Fatalf("restored %d sessions, want 2: %+v", len(infos), infos)
	}
	if srv2.met.sessionsRestored.Value() != 2 {
		t.Errorf("sessionsRestored = %d, want 2", srv2.met.sessionsRestored.Value())
	}
	for id, want := range pre {
		req, _ := http.NewRequest("GET", ts2.URL+"/v1/sessions/"+id+"/snapshot", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !bytes.Equal(got, want) {
			t.Errorf("session %s: restored snapshot differs from pre-kill state\npre:  %s\npost: %s", id, want, got)
		}
	}

	// The restored sessions are live, not museum pieces: they advance on.
	var adv advanceResponse
	if code := call(t, "POST", ts2.URL+"/v1/sessions/alice-exp/advance", advanceRequest{Hours: 48}, &adv); code != http.StatusOK {
		t.Fatalf("advance after restore: status %d", code)
	}
	if adv.Completed != 30 {
		t.Errorf("restored session completed %d/30 after 48h more", adv.Completed)
	}
}

// TestRestoreEqualsUninterrupted pins that serving a workload through a
// drain/restore cycle yields the same final report as an uninterrupted
// session — the daemon's persistence rides PR 6's byte-identical resume.
func TestRestoreEqualsUninterrupted(t *testing.T) {
	// Reference: one uninterrupted session.
	ref, err := hybridsched.NewSession(hybridsched.WithNodes(128), hybridsched.WithMechanism("CUA&SPAA"))
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= 40; j++ {
		if err := ref.Submit(hybridsched.Record{ID: j, Class: hybridsched.Rigid,
			Submit: int64(j * 500), Size: 16, Work: 7200, Estimate: 9000}); err != nil {
			t.Fatal(err)
		}
	}
	refRep, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	refJSON, _ := json.Marshal(stripWallClock(refRep))

	// Same workload through the daemon, with a drain/restore in the middle.
	stateDir := t.TempDir()
	srv1, ts1 := testServer(t, Quotas{}, stateDir)
	var info sessionInfo
	if code := call(t, "POST", ts1.URL+"/v1/sessions", createRequest{Tenant: "alice", ID: "exp", Nodes: 128}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	base1 := ts1.URL + "/v1/sessions/exp"
	for j := 1; j <= 40; j++ {
		if code := call(t, "POST", base1+"/jobs", rigidJob(j, int64(j*500), 16, 7200), nil); code != http.StatusAccepted {
			t.Fatalf("submit: status %d", code)
		}
	}
	if code := call(t, "POST", base1+"/advance", advanceRequest{Hours: 3}, nil); code != http.StatusOK {
		t.Fatalf("advance: status %d", code)
	}
	ts1.Close()
	srv1.Drain()

	_, ts2 := testServer(t, Quotas{}, stateDir)
	// Drive far past the last completion, then compare reports.
	if code := call(t, "POST", ts2.URL+"/v1/sessions/exp/advance", advanceRequest{Hours: 300}, nil); code != http.StatusOK {
		t.Fatalf("advance after restore: status %d", code)
	}
	var rep hybridsched.Report
	if code := call(t, "GET", ts2.URL+"/v1/sessions/exp/report", nil, &rep); code != http.StatusOK {
		t.Fatalf("report: status %d", code)
	}
	gotJSON, _ := json.Marshal(stripWallClock(rep))
	if !bytes.Equal(gotJSON, refJSON) {
		t.Errorf("drain/restore report differs from uninterrupted run\nref: %s\ngot: %s", refJSON, gotJSON)
	}
}

// stripWallClock zeroes the wall-clock decision-latency fields, the one
// part of a report the byte-identical resume contract excludes.
func stripWallClock(r hybridsched.Report) hybridsched.Report {
	r.DecisionCount = 0
	r.MeanDecisionMs = 0
	r.MaxDecisionMs = 0
	return r
}

// TestMetricsEndpoint scrapes /metrics and checks the Prometheus text
// families the ops surface promises.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, Quotas{}, "")
	var info sessionInfo
	if code := call(t, "POST", ts.URL+"/v1/sessions", createRequest{Tenant: "alice", Nodes: 64}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	base := ts.URL + "/v1/sessions/" + info.ID
	if code := call(t, "POST", base+"/jobs", rigidJob(1, 0, 16, 600), nil); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if code := call(t, "POST", base+"/advance", advanceRequest{Hours: 1}, nil); code != http.StatusOK {
		t.Fatalf("advance: status %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain") {
		t.Errorf("Content-Type = %q", resp.Header.Get("Content-Type"))
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"schedd_sessions_live 1",
		"schedd_sessions_created_total 1",
		"schedd_jobs_submitted_total 1",
		"schedd_jobs_completed_total 1",
		"schedd_events_emitted_total",
		"schedd_tenant_sessions{tenant=\"alice\"} 1",
		"schedd_request_duration_seconds_count",
		"schedd_http_requests_total{code=\"200\"}",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\n%s", want, text)
		}
	}
}

// TestBadInputs covers the API's validation edges: bad tenant names, bad
// class names, malformed advances, and unknown sessions.
func TestBadInputs(t *testing.T) {
	_, ts := testServer(t, Quotas{}, "")
	if code := call(t, "POST", ts.URL+"/v1/sessions", createRequest{Tenant: "no/slashes"}, nil); code != http.StatusBadRequest {
		t.Errorf("bad tenant: status %d", code)
	}
	if code := call(t, "POST", ts.URL+"/v1/sessions", createRequest{Tenant: "alice", Mechanism: "nope"}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown mechanism: status %d", code)
	}
	var info sessionInfo
	if code := call(t, "POST", ts.URL+"/v1/sessions", createRequest{Tenant: "alice", Nodes: 64}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	base := ts.URL + "/v1/sessions/" + info.ID
	if code := call(t, "POST", base+"/jobs", map[string]any{"id": 1, "class": "wibbly", "submit": 0, "size": 4, "work": 60}, nil); code != http.StatusBadRequest {
		t.Errorf("bad class: status %d", code)
	}
	if code := call(t, "POST", base+"/jobs", rigidJob(1, 0, 0, 60), nil); code != http.StatusBadRequest {
		t.Errorf("zero size: status %d", code)
	}
	if code := call(t, "POST", base+"/advance", advanceRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty advance: status %d", code)
	}
	if code := call(t, "POST", base+"/advance", advanceRequest{Until: 1, Steps: 1}, nil); code != http.StatusBadRequest {
		t.Errorf("two-mode advance: status %d", code)
	}
	if code := call(t, "GET", ts.URL+"/v1/sessions/ghost/snapshot", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown session: status %d", code)
	}
	if code := call(t, "POST", base+"/checkpoint", nil, nil); code != http.StatusBadRequest {
		t.Errorf("checkpoint without state dir: status %d", code)
	}
}

// TestAdvanceBySteps drives a session event by event over HTTP.
func TestAdvanceBySteps(t *testing.T) {
	_, ts := testServer(t, Quotas{}, "")
	var info sessionInfo
	if code := call(t, "POST", ts.URL+"/v1/sessions", createRequest{Tenant: "alice", Nodes: 64}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	base := ts.URL + "/v1/sessions/" + info.ID
	if code := call(t, "POST", base+"/jobs", rigidJob(1, 0, 16, 600), nil); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	var adv advanceResponse
	if code := call(t, "POST", base+"/advance", advanceRequest{Steps: 1}, &adv); code != http.StatusOK {
		t.Fatalf("step: status %d", code)
	}
	if adv.Steps != 1 {
		t.Errorf("processed %d steps, want 1", adv.Steps)
	}
	// Stepping far past the drain point stops at the drained queue.
	if code := call(t, "POST", base+"/advance", advanceRequest{Steps: 10_000}, &adv); code != http.StatusOK {
		t.Fatalf("step: status %d", code)
	}
	if adv.Completed != 1 {
		t.Errorf("completed %d, want 1", adv.Completed)
	}
}
