package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"hybridsched"
	"hybridsched/internal/sim"
)

// This file implements the remote-scheduler extender hook, in the spirit of
// the Kubernetes scheduler-extender pattern (and the k8s-cluster-simulator's
// HTTP extender experiments): an external policy process plugs into a hosted
// simulation over HTTP callbacks instead of being compiled in. The extender
// is an ordinary Scheduler registered through hybridsched.RegisterScheduler,
// so a remote policy is selected exactly like a built-in mechanism — by name
// in the session-create request.

// ExtenderRequest is the JSON callback POSTed to the remote policy at each
// decision point.
type ExtenderRequest struct {
	// Callback names the decision point: "notice" (an on-demand job
	// announced its future arrival) or "od_arrival" (an on-demand job is
	// here and wants to start instantly).
	Callback string `json:"callback"`
	// Time is the current virtual time in seconds.
	Time int64 `json:"time"`
	// Job is the job the callback is about.
	Job ExtenderJob `json:"job"`
	// Cluster is the current occupancy.
	Cluster ExtenderCluster `json:"cluster"`
	// QueueDepth is the current waiting-queue length.
	QueueDepth int `json:"queue_depth"`
}

// ExtenderJob describes the callback's job.
type ExtenderJob struct {
	ID         int    `json:"id"`
	Class      string `json:"class"`
	Size       int    `json:"size"`
	MinSize    int    `json:"min_size"`
	Submit     int64  `json:"submit"`
	EstArrival int64  `json:"est_arrival,omitempty"`
}

// ExtenderCluster describes the cluster occupancy at the decision point.
type ExtenderCluster struct {
	Nodes    int `json:"nodes"`
	Free     int `json:"free"`
	Reserved int `json:"reserved"`
	Down     int `json:"down"`
}

// ExtenderResponse is the remote policy's decision. For "od_arrival",
// Start=true asks the engine to start the job immediately from the free
// pool (granted only if enough free nodes exist); anything else lets the
// engine queue the job normally. For "notice" the response is advisory.
type ExtenderResponse struct {
	Handled bool `json:"handled"`
	Start   bool `json:"start,omitempty"`
}

// Extender is a Scheduler whose on-demand decisions are delegated to a
// remote HTTP policy. It embeds the engine Baseline for no-op defaults on
// every other callback (and for checkpoint support: the extender keeps no
// dynamic state, so extender-driven sessions checkpoint and restore like
// baseline ones — the restoring process must register the same name).
//
// Failure policy is fail-open: if the remote is unreachable, times out, or
// answers garbage, the decision falls back to the engine's normal queueing
// path and the error is counted (Errors). A flaky policy endpoint degrades
// scheduling quality, never the simulation's integrity.
type Extender struct {
	sim.Baseline
	name   string
	url    string
	client *http.Client
	eng    *sim.Engine
	errs   atomic.Int64
	calls  atomic.Int64
}

// NewExtender builds an extender posting callbacks to url. A nil client
// gets a 5-second-timeout default.
func NewExtender(name, url string, client *http.Client) *Extender {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	return &Extender{name: name, url: url, client: client}
}

// RegisterExtender registers a remote HTTP policy as a named scheduler:
// every session created with mechanism name gets a fresh Extender posting
// its decision callbacks to url. Registration is append-only, like every
// scheduler registration.
func RegisterExtender(name, url string, client *http.Client) error {
	return hybridsched.RegisterScheduler(name, func(hybridsched.SchedulerConfig) (hybridsched.Scheduler, error) {
		return NewExtender(name, url, client), nil
	})
}

// Name identifies the extender in reports.
func (x *Extender) Name() string { return x.name }

// Attach wires the extender to its session's engine.
func (x *Extender) Attach(e *sim.Engine) { x.eng = e }

// QueueOnDemandFirst prioritizes on-demand jobs the remote declined to
// start, matching the paper's queue-based mechanisms.
func (x *Extender) QueueOnDemandFirst() bool { return true }

// Errors reports how many remote callbacks failed (fail-open fallbacks).
func (x *Extender) Errors() int64 { return x.errs.Load() }

// Calls reports how many remote callbacks were attempted.
func (x *Extender) Calls() int64 { return x.calls.Load() }

// call POSTs one callback and decodes the decision. Errors fail open.
func (x *Extender) call(req ExtenderRequest) (ExtenderResponse, error) {
	x.calls.Add(1)
	body, err := json.Marshal(req)
	if err != nil {
		x.errs.Add(1)
		return ExtenderResponse{}, err
	}
	resp, err := x.client.Post(x.url, "application/json", bytes.NewReader(body))
	if err != nil {
		x.errs.Add(1)
		return ExtenderResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		x.errs.Add(1)
		return ExtenderResponse{}, fmt.Errorf("extender %s: status %d", x.name, resp.StatusCode)
	}
	var dec ExtenderResponse
	if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
		x.errs.Add(1)
		return ExtenderResponse{}, fmt.Errorf("extender %s: bad response: %w", x.name, err)
	}
	return dec, nil
}

// request assembles the callback payload for j.
func (x *Extender) request(callback string, j *hybridsched.Job) ExtenderRequest {
	cl := x.eng.Cluster()
	return ExtenderRequest{
		Callback: callback,
		Time:     x.eng.Now(),
		Job: ExtenderJob{
			ID: j.ID, Class: j.Class.String(), Size: j.Size, MinSize: j.MinSize,
			Submit: j.SubmitTime, EstArrival: j.EstArrival,
		},
		Cluster: ExtenderCluster{
			Nodes: x.eng.Nodes(), Free: cl.FreeCount(),
			Reserved: cl.TotalReserved(), Down: cl.DownCount(),
		},
		QueueDepth: x.eng.QueueDepth(),
	}
}

// OnNotice forwards an advance notice to the remote policy (advisory: the
// response carries no engine action yet).
func (x *Extender) OnNotice(j *hybridsched.Job) {
	x.call(x.request("notice", j)) //nolint:errcheck // fail-open, counted
}

// OnODArrival asks the remote policy whether to start the on-demand job
// instantly from the free pool. A "start" decision is granted only when
// enough free nodes exist (the engine fails the run on an impossible
// start); otherwise — including on any remote error — the job queues
// normally, at the front (QueueOnDemandFirst).
func (x *Extender) OnODArrival(j *hybridsched.Job) bool {
	dec, err := x.call(x.request("od_arrival", j))
	if err != nil || !dec.Handled || !dec.Start {
		return false
	}
	if x.eng.Cluster().FreeCount()+x.eng.Cluster().ReservedCount(j.ID) < j.Size {
		return false // remote asked for the impossible; queue instead
	}
	x.eng.StartOnDemand(j)
	return true
}
