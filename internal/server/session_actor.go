package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"hybridsched"
)

// Sentinel errors of the actor lifecycle. The API layer maps them to HTTP
// statuses: errMailboxFull -> 429, errSessionClosed/errSessionDeleted -> 409
// on in-flight work (the session id itself 404s once removed from the table).
var (
	errMailboxFull    = errors.New("session mailbox full")
	errSessionClosed  = errors.New("session closed")
	errSessionDeleted = errors.New("session deleted")
)

// advanceChunk is how much virtual time one uninterruptible RunUntil slice
// covers. Between slices the actor polls its stop signal, so a DELETE (or a
// daemon drain) lands within one chunk of virtual time, not after a
// multi-week advance completes.
const advanceChunk = 6 * hybridsched.Hour

// stepCheckInterval is how many Step calls run between stop-signal polls.
const stepCheckInterval = 256

// request is one unit of work executed on the actor goroutine. fn runs with
// exclusive access to the session; its error is delivered on errc (buffered,
// so a departed waiter never blocks the actor).
type request struct {
	fn      func(s *hybridsched.Session) error
	errc    chan error
	release func() // queued-submission quota release; nil for non-submits
}

// sessionSpec is the construction-time identity of a hosted session, kept
// for listings and persisted alongside checkpoints so a restored daemon can
// still describe what it hosts.
type sessionSpec struct {
	Tenant    string `json:"tenant"`
	ID        string `json:"id"`
	Mechanism string `json:"mechanism"`
	Policy    string `json:"policy"`
	Nodes     int    `json:"nodes"`
}

// actor owns one hybridsched.Session. The Session API is explicitly not
// safe for concurrent use, so the actor serializes all access: a single
// goroutine (loop) owns the session for its whole life, and every HTTP
// handler interacts with it only by enqueueing requests into a bounded
// mailbox. A full mailbox is backpressure, reported to the caller
// immediately instead of queueing unboundedly.
type actor struct {
	spec sessionSpec
	sess *hybridsched.Session // owned by loop; handlers must not touch it

	mailbox chan request
	stop    chan struct{} // closed by close(); loop winds down
	exited  chan struct{} // closed when loop has returned
	once    sync.Once

	// deleted marks a DELETE-initiated stop: the persisted checkpoint (if
	// any) is removed instead of (re)written.
	deleted atomic.Bool
	// persistPath, when non-empty, is where the actor checkpoints its
	// session during a graceful stop.
	persistPath string

	// lastDrops is the session drop count already mirrored into the server
	// metrics (actor goroutine only).
	lastDrops int

	// vnow is the session's virtual clock as last published by the actor —
	// after every request and between advance chunks — so progress is
	// observable without a mailbox round-trip while a long advance holds
	// the actor.
	vnow atomic.Int64

	met *metrics
}

// newActor wraps sess in a freshly started actor.
func newActor(spec sessionSpec, sess *hybridsched.Session, mailboxDepth int, persistPath string, met *metrics) *actor {
	a := &actor{
		spec:        spec,
		sess:        sess,
		mailbox:     make(chan request, mailboxDepth),
		stop:        make(chan struct{}),
		exited:      make(chan struct{}),
		persistPath: persistPath,
		met:         met,
	}
	go a.loop()
	return a
}

// loop is the actor goroutine: it alone touches a.sess until it returns.
func (a *actor) loop() {
	defer close(a.exited)
	for {
		select {
		case <-a.stop:
			a.windDown()
			return
		case req := <-a.mailbox:
			a.run(req)
		}
	}
}

// run executes one request and replies.
func (a *actor) run(req request) {
	err := req.fn(a.sess)
	a.vnow.Store(a.sess.Now())
	a.syncDrops()
	if req.release != nil {
		req.release()
	}
	req.errc <- err
}

// syncDrops mirrors the session's event-drop counter into the server
// metrics as a delta (the session counter is cumulative and never resets).
func (a *actor) syncDrops() {
	if d := a.sess.DroppedEvents(); d > a.lastDrops {
		a.met.eventsDropped.Add(int64(d - a.lastDrops))
		a.lastDrops = d
	}
}

// windDown runs on the actor goroutine after stop: persist (or discard) the
// checkpoint, close the session, and fail every request still queued.
func (a *actor) windDown() {
	if a.persistPath != "" {
		if a.deleted.Load() {
			os.Remove(a.persistPath)
			os.Remove(metaPath(a.persistPath))
		} else if err := a.checkpointTo(a.persistPath); err != nil {
			// A session that cannot be checkpointed (e.g. an extender whose
			// remote is gone) is lost on restart, not fatal now.
			fmt.Fprintf(os.Stderr, "schedd: checkpoint %s/%s: %v\n", a.spec.Tenant, a.spec.ID, err)
		}
	}
	a.sess.Close()
	for {
		select {
		case req := <-a.mailbox:
			if req.release != nil {
				req.release()
			}
			req.errc <- errSessionClosed
		default:
			return
		}
	}
}

// close initiates shutdown (idempotent) and waits for the loop to exit. An
// in-flight chunked advance notices within one chunk.
func (a *actor) close() {
	a.once.Do(func() { close(a.stop) })
	<-a.exited
}

// do enqueues fn without blocking and waits for it to complete. A full
// mailbox fails immediately with errMailboxFull; an actor that stops before
// replying fails with errSessionClosed.
func (a *actor) do(fn func(s *hybridsched.Session) error) error {
	return a.enqueue(request{fn: fn, errc: make(chan error, 1)})
}

// doSubmit is do for job submissions, holding one queued-submission quota
// slot from acceptance until the actor has applied (or abandoned) it.
func (a *actor) doSubmit(fn func(s *hybridsched.Session) error, release func()) error {
	return a.enqueue(request{fn: fn, errc: make(chan error, 1), release: release})
}

func (a *actor) enqueue(req request) error {
	select {
	case <-a.stop:
		if req.release != nil {
			req.release()
		}
		return errSessionClosed
	default:
	}
	select {
	case a.mailbox <- req:
	default:
		if req.release != nil {
			req.release()
		}
		return errMailboxFull
	}
	select {
	case err := <-req.errc:
		return err
	case <-a.exited:
		// The actor may have replied in the same instant it exited.
		select {
		case err := <-req.errc:
			return err
		default:
			return errSessionClosed
		}
	}
}

// stopped reports whether shutdown has been requested (callable from fn
// bodies running on the actor goroutine).
func (a *actor) stopped() bool {
	select {
	case <-a.stop:
		return true
	default:
		return false
	}
}

// advance moves the session's virtual clock to until, in chunks so a delete
// or daemon drain interrupts within advanceChunk of virtual time.
func (a *actor) advance(s *hybridsched.Session, until int64) error {
	if until < s.Now() {
		return fmt.Errorf("cannot advance to t=%d: clock already at %d", until, s.Now())
	}
	for {
		next := s.Now() + advanceChunk
		if next > until {
			next = until
		}
		if err := s.RunUntil(next); err != nil {
			return err
		}
		a.vnow.Store(s.Now())
		if next == until {
			return nil
		}
		if a.stopped() {
			return errSessionDeleted
		}
	}
}

// stepN processes up to n events, polling the stop signal periodically.
// It returns how many events were actually processed (the session may
// drain first).
func (a *actor) stepN(s *hybridsched.Session, n int) (int, error) {
	done := 0
	for done < n {
		if done%stepCheckInterval == stepCheckInterval-1 && a.stopped() {
			return done, errSessionDeleted
		}
		more, err := s.Step()
		if err != nil {
			return done, err
		}
		if !more {
			break
		}
		done++
	}
	return done, nil
}

// checkpointTo writes the session's checkpoint frame to path atomically
// (tmp + rename), plus the spec sidecar the restore path lists sessions
// from. Runs on the actor goroutine.
func (a *actor) checkpointTo(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := a.sess.Checkpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return writeMeta(metaPath(path), a.spec)
}

// metaPath is the spec sidecar for a checkpoint file.
func metaPath(snapPath string) string {
	return snapPath[:len(snapPath)-len(filepath.Ext(snapPath))] + ".meta.json"
}
