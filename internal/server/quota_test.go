package server

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"hybridsched"
)

// TestSessionLimits pins the quota edges on session creation: the
// per-tenant limit, the server-wide limit, and that a delete frees the
// slot — all surfaced as 429, the backpressure contract.
func TestSessionLimits(t *testing.T) {
	srv, ts := testServer(t, Quotas{MaxSessions: 3, MaxSessionsPerTenant: 2}, "")

	mk := func(tenant string) (int, sessionInfo) {
		var info sessionInfo
		code := call(t, "POST", ts.URL+"/v1/sessions", createRequest{Tenant: tenant, Nodes: 64}, &info)
		return code, info
	}
	if code, _ := mk("alice"); code != http.StatusCreated {
		t.Fatalf("alice #1: status %d", code)
	}
	code, second := mk("alice")
	if code != http.StatusCreated {
		t.Fatalf("alice #2: status %d", code)
	}
	// Tenant limit: alice's third session is refused.
	if code, _ := mk("alice"); code != http.StatusTooManyRequests {
		t.Fatalf("alice #3: status %d, want 429", code)
	}
	// Another tenant still fits under the server-wide limit...
	if code, _ := mk("bob"); code != http.StatusCreated {
		t.Fatalf("bob #1: status %d", code)
	}
	// ...but the server-wide limit now holds even for a fresh tenant.
	if code, _ := mk("carol"); code != http.StatusTooManyRequests {
		t.Fatalf("carol #1: status %d, want 429", code)
	}
	if srv.met.quotaDenials.Value() != 2 {
		t.Errorf("quotaDenials = %d, want 2", srv.met.quotaDenials.Value())
	}
	// Deleting frees the slot for the tenant that was at its limit.
	if code := call(t, "DELETE", ts.URL+"/v1/sessions/"+second.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if code, _ := mk("alice"); code != http.StatusCreated {
		t.Fatalf("alice after delete: status %d, want 201", code)
	}
}

// TestMailboxFullBackpressure pins the mailbox-full edge: with the actor
// wedged on a slow request and the mailbox filled, the next HTTP request is
// rejected 429 immediately instead of queueing, and service resumes once
// the actor drains.
func TestMailboxFullBackpressure(t *testing.T) {
	const depth = 4
	srv, ts := testServer(t, Quotas{MailboxDepth: depth}, "")
	var info sessionInfo
	if code := call(t, "POST", ts.URL+"/v1/sessions", createRequest{Tenant: "alice", Nodes: 64}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	a, ok := srv.lookup(info.ID)
	if !ok {
		t.Fatal("actor not found")
	}

	// Wedge the actor: a request that blocks until we release the gate.
	gate := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		a.do(func(*hybridsched.Session) error { close(started); <-gate; return nil })
	}()
	<-started

	// Fill the mailbox to capacity behind the wedged request. Direct sends
	// are deterministic: the actor is blocked, so nothing drains.
	var fillWG sync.WaitGroup
	for i := 0; i < depth; i++ {
		req := request{fn: func(*hybridsched.Session) error { return nil }, errc: make(chan error, 1)}
		a.mailbox <- req
		fillWG.Add(1)
		go func() { defer fillWG.Done(); <-req.errc }()
	}

	// The next HTTP submission finds the mailbox full: immediate 429.
	code := call(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/jobs", rigidJob(1, 0, 8, 60), nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("mailbox-full submit: status %d, want 429", code)
	}
	if srv.met.backpressure429.Value() != 1 {
		t.Errorf("backpressure429 = %d, want 1", srv.met.backpressure429.Value())
	}
	// Advances hit the same wall.
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/advance", advanceRequest{Hours: 1}, nil); code != http.StatusTooManyRequests {
		t.Fatalf("mailbox-full advance: status %d, want 429", code)
	}

	// Release the actor; the backlog drains and service resumes.
	close(gate)
	wg.Wait()
	fillWG.Wait()
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/jobs", rigidJob(1, 0, 8, 60), nil); code != http.StatusAccepted {
		t.Fatalf("submit after drain: status %d, want 202", code)
	}
}

// TestQueuedSubmitQuota pins the per-tenant accepted-but-unapplied
// submission cap across the tenant's sessions.
func TestQueuedSubmitQuota(t *testing.T) {
	srv, ts := testServer(t, Quotas{MaxQueuedSubmits: 1, MailboxDepth: 16}, "")
	var info sessionInfo
	if code := call(t, "POST", ts.URL+"/v1/sessions", createRequest{Tenant: "alice", Nodes: 64}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	a, _ := srv.lookup(info.ID)

	// Wedge the actor so the first submission stays "accepted, unapplied".
	gate := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		a.do(func(*hybridsched.Session) error { close(started); <-gate; return nil })
	}()
	<-started

	sub1 := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		sub1 <- call(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/jobs", rigidJob(1, 0, 8, 60), nil)
	}()
	// Wait until the first submission holds its quota slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if u := srv.ledger.usage(); len(u) == 1 && u[0].queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first submission never claimed its queued slot")
		}
		time.Sleep(time.Millisecond)
	}
	// The tenant's second submission exceeds the cap: 429.
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/jobs", rigidJob(2, 0, 8, 60), nil); code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429", code)
	}

	close(gate)
	wg.Wait()
	if code := <-sub1; code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	// Applied means released: the slot is free again.
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/jobs", rigidJob(2, 0, 8, 60), nil); code != http.StatusAccepted {
		t.Fatalf("submit after release: status %d", code)
	}
}

// TestDeleteWhileRunning pins the teardown edge the actor model exists
// for: deleting a session whose actor is mid-advance interrupts the
// advance within one chunk, the DELETE succeeds, the in-flight advance
// reports a conflict, and a second DELETE 404s.
func TestDeleteWhileRunning(t *testing.T) {
	srv, ts := testServer(t, Quotas{}, "")
	var info sessionInfo
	if code := call(t, "POST", ts.URL+"/v1/sessions", createRequest{Tenant: "alice", Nodes: 64}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	a, ok := srv.lookup(info.ID)
	if !ok {
		t.Fatal("actor not found")
	}
	base := ts.URL + "/v1/sessions/" + info.ID
	// A trickle of jobs over ten years keeps the advance genuinely busy
	// across many chunks.
	for j := 1; j <= 200; j++ {
		if code := call(t, "POST", base+"/jobs", rigidJob(j, int64(j)*15*hybridsched.Hour, 8, 3600), nil); code != http.StatusAccepted {
			t.Fatalf("submit: status %d", code)
		}
	}
	advDone := make(chan int, 1)
	go func() {
		advDone <- call(t, "POST", base+"/advance", advanceRequest{Hours: 24 * 365 * 10}, nil)
	}()
	// Delete as soon as the advance is observably in flight: the actor
	// publishes its virtual clock between chunks (an info request would
	// serialize behind the advance and block, which is the point of the
	// chunked interruptible design).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if a.vnow.Load() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("advance never started")
		}
		time.Sleep(time.Millisecond)
	}
	if code := call(t, "DELETE", base, nil, nil); code != http.StatusOK {
		t.Fatalf("delete while running: status %d", code)
	}
	// The in-flight advance was interrupted, not completed: it reports
	// the conflict (or, if it won the race to the last chunk, success).
	if code := <-advDone; code != http.StatusConflict && code != http.StatusOK {
		t.Fatalf("interrupted advance: status %d, want 409 (or 200 on race)", code)
	}
	// Double delete: the id is gone.
	if code := call(t, "DELETE", base, nil, nil); code != http.StatusNotFound {
		t.Fatalf("second delete: status %d, want 404", code)
	}
	// And every follow-up on the id 404s too.
	if code := call(t, "GET", base+"/snapshot", nil, nil); code != http.StatusNotFound {
		t.Fatalf("snapshot after delete: status %d, want 404", code)
	}
}

// TestQuotaDefaults pins the zero-value resolution.
func TestQuotaDefaults(t *testing.T) {
	q := Quotas{}.withDefaults()
	if q.MaxSessions != defaultMaxSessions || q.MaxSessionsPerTenant != defaultMaxSessionsPerTenant ||
		q.MailboxDepth != defaultMailboxDepth || q.MaxQueuedSubmits != defaultMaxQueuedSubmits {
		t.Fatalf("defaults: %+v", q)
	}
	unlimited := Quotas{MaxSessions: -1}.withDefaults()
	if unlimited.MaxSessions <= 1<<30 {
		t.Fatalf("negative MaxSessions should mean unlimited, got %d", unlimited.MaxSessions)
	}
}
