// Package server implements schedd, the scheduling-as-a-service daemon: a
// long-lived HTTP server hosting many concurrent simulation sessions, one
// per tenant experiment.
//
// The concurrency model is an actor per session. A hybridsched.Session is
// explicitly not safe for concurrent use, so each hosted session is owned by
// one dedicated goroutine; HTTP handlers communicate with it exclusively
// through a bounded mailbox of requests. A full mailbox — or an exhausted
// tenant quota — is reported to the client immediately as HTTP 429, the
// daemon's explicit backpressure contract. Event streams ride the session's
// Events channels (safe to drain from any goroutine) out to SSE clients,
// with the DroppedEvents overflow counter surfaced in-stream.
//
// With a state directory configured, a graceful shutdown checkpoints every
// hosted session via Session.Checkpoint, and the next daemon start restores
// them via hybridsched.Restore — a killed daemon resumes its tenants'
// simulations byte-identically.
package server

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"

	"hybridsched"
)

// Config parameterizes a Server.
type Config struct {
	// Quotas bounds tenant and daemon resource consumption (zero fields
	// take defaults; see Quotas).
	Quotas Quotas
	// StateDir, when non-empty, is where sessions are checkpointed on
	// graceful shutdown and restored from at startup. Created if missing.
	StateDir string
	// Logger receives operational messages (default: log.Default()).
	Logger *log.Logger
}

// Server hosts simulation sessions behind the HTTP API. Create with New;
// serve Handler(); stop with Drain (checkpointing) or Close (discarding).
type Server struct {
	cfg    Config
	ledger *tenantLedger
	met    *metrics
	log    *log.Logger

	mu       sync.Mutex
	sessions map[string]*actor
	nextID   int
	draining bool

	// drainCh is closed when a drain begins, so long-lived handlers (SSE)
	// unblock and let the HTTP server's graceful shutdown complete.
	drainCh chan struct{}
}

// nameRE constrains tenant and session names: they appear in URLs, metric
// labels, and state-dir filenames, so only filename-safe tokens are allowed.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9_-]{1,64}$`)

// New builds a Server and, if cfg.StateDir is set, restores every session
// checkpointed there by a previous run.
func New(cfg Config) (*Server, error) {
	cfg.Quotas = cfg.Quotas.withDefaults()
	if cfg.Logger == nil {
		cfg.Logger = log.Default()
	}
	s := &Server{
		cfg:      cfg,
		ledger:   newTenantLedger(cfg.Quotas),
		met:      newMetrics(),
		log:      cfg.Logger,
		sessions: map[string]*actor{},
		drainCh:  make(chan struct{}),
	}
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: state dir: %w", err)
		}
		if err := s.restoreAll(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// createSpec is the resolved request to host a new session.
type createSpec struct {
	Tenant     string
	ID         string // empty: server-assigned
	Mechanism  string
	Policy     string
	Nodes      int
	MaxSimTime int64
	// Source is a hybridsched source spec (ParseSource grammar). It is
	// materialized and submitted up front — not attached lazily — so the
	// session stays checkpointable (Checkpoint rejects undrained sources).
	Source string
}

// createSession builds, registers, and starts an actor for a new session.
func (s *Server) createSession(spec createSpec) (*actor, error) {
	if !nameRE.MatchString(spec.Tenant) {
		return nil, fmt.Errorf("invalid tenant %q (want %s)", spec.Tenant, nameRE)
	}
	if spec.ID != "" && !nameRE.MatchString(spec.ID) {
		return nil, fmt.Errorf("invalid session id %q (want %s)", spec.ID, nameRE)
	}
	if spec.Mechanism == "" {
		spec.Mechanism = "CUA&SPAA"
	}
	if spec.Policy == "" {
		spec.Policy = "fcfs"
	}

	var records []hybridsched.Record
	if spec.Source != "" {
		src, err := hybridsched.ParseSource(spec.Source)
		if err != nil {
			return nil, fmt.Errorf("source: %w", err)
		}
		if records, err = hybridsched.ReadAllSource(src); err != nil {
			return nil, fmt.Errorf("source: %w", err)
		}
	}

	if err := s.ledger.addSession(spec.Tenant); err != nil {
		s.met.quotaDenials.Inc()
		return nil, err
	}
	undo := func() { s.ledger.dropSession(spec.Tenant) }

	opts := []hybridsched.Option{
		hybridsched.WithMechanism(spec.Mechanism),
		hybridsched.WithPolicy(spec.Policy),
		hybridsched.WithObserver(s.eventCounter()),
	}
	if spec.Nodes > 0 {
		opts = append(opts, hybridsched.WithNodes(spec.Nodes))
	}
	if spec.MaxSimTime > 0 {
		opts = append(opts, hybridsched.WithMaxSimTime(spec.MaxSimTime))
	}
	sess, err := hybridsched.NewSession(opts...)
	if err != nil {
		undo()
		return nil, err
	}
	for _, r := range records {
		if err := sess.Submit(r); err != nil {
			sess.Close()
			undo()
			return nil, fmt.Errorf("source record %d: %w", r.ID, err)
		}
	}
	s.met.jobsSubmitted.Add(int64(len(records)))

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		sess.Close()
		undo()
		return nil, errSessionClosed
	}
	id := spec.ID
	if id == "" {
		s.nextID++
		id = fmt.Sprintf("s%d", s.nextID)
	}
	if _, dup := s.sessions[id]; dup {
		s.mu.Unlock()
		sess.Close()
		undo()
		return nil, fmt.Errorf("session %q already exists", id)
	}
	aspec := sessionSpec{Tenant: spec.Tenant, ID: id, Mechanism: spec.Mechanism,
		Policy: spec.Policy, Nodes: sess.Snapshot().Nodes}
	a := newActor(aspec, sess, s.cfg.Quotas.MailboxDepth, s.snapPath(spec.Tenant, id), s.met)
	s.sessions[id] = a
	s.mu.Unlock()

	s.met.sessionsCreated.Inc()
	s.met.sessionsLive.Add(1)
	s.log.Printf("schedd: session %s created (tenant=%s mechanism=%s nodes=%d, %d source records)",
		id, spec.Tenant, spec.Mechanism, aspec.Nodes, len(records))
	return a, nil
}

// eventCounter is the observer attached to every hosted session, feeding
// the daemon-wide event and completion counters. It runs on the actor
// goroutine; the counters are atomic.
func (s *Server) eventCounter() hybridsched.Observer {
	return hybridsched.ObserverFunc(func(ev hybridsched.Event) {
		s.met.eventsEmitted.Inc()
		if ev.Type == hybridsched.EventEnd {
			s.met.jobsCompleted.Inc()
		}
	})
}

// lookup finds a hosted session by id.
func (s *Server) lookup(id string) (*actor, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.sessions[id]
	return a, ok
}

// list returns the hosted actors, sorted by id, optionally filtered by
// tenant.
func (s *Server) list(tenant string) []*actor {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*actor
	for _, a := range s.sessions {
		if tenant == "" || a.spec.Tenant == tenant {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].spec.ID < out[j].spec.ID })
	return out
}

// deleteSession removes the session from the table immediately (a second
// DELETE 404s) and stops its actor, interrupting an in-flight advance
// within one chunk. The persisted checkpoint, if any, is removed.
func (s *Server) deleteSession(id string) bool {
	s.mu.Lock()
	a, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	a.deleted.Store(true)
	a.close()
	s.ledger.dropSession(a.spec.Tenant)
	s.met.sessionsDeleted.Inc()
	s.met.sessionsLive.Add(-1)
	s.log.Printf("schedd: session %s deleted (tenant=%s)", id, a.spec.Tenant)
	return true
}

// Drain gracefully stops the server: new work is refused, long-lived
// handlers are unblocked, and every hosted session is stopped — with a
// state dir configured, each actor checkpoints its session on the way out.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	close(s.drainCh)
	actors := make([]*actor, 0, len(s.sessions))
	//schedlint:orderfree actors are closed concurrently below; shutdown order is unobservable
	for _, a := range s.sessions {
		actors = append(actors, a)
	}
	s.sessions = map[string]*actor{}
	s.mu.Unlock()

	var wg sync.WaitGroup
	for _, a := range actors {
		wg.Add(1)
		go func(a *actor) {
			defer wg.Done()
			a.close()
			s.ledger.dropSession(a.spec.Tenant)
			s.met.sessionsLive.Add(-1)
		}(a)
	}
	wg.Wait()
	s.log.Printf("schedd: drained %d sessions", len(actors))
}

// Close stops the server without checkpointing (persist paths are left as
// they were). Meant for tests; production shutdown goes through Drain.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
	}
	actors := make([]*actor, 0, len(s.sessions))
	//schedlint:orderfree teardown without checkpoints; close order is unobservable
	for _, a := range s.sessions {
		a.persistPath = "" // no checkpoint on the way out
		actors = append(actors, a)
	}
	s.sessions = map[string]*actor{}
	s.mu.Unlock()
	for _, a := range actors {
		a.close()
		s.ledger.dropSession(a.spec.Tenant)
		s.met.sessionsLive.Add(-1)
	}
}

// snapPath is the checkpoint file for a session ("" without a state dir).
func (s *Server) snapPath(tenant, id string) string {
	if s.cfg.StateDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.StateDir, tenant+"--"+id+".snap")
}

// restoreAll rebuilds every session checkpointed in the state dir.
// Unreadable frames are logged and skipped: one corrupt file must not keep
// the daemon (and every other tenant's session) down.
func (s *Server) restoreAll() error {
	snaps, err := filepath.Glob(filepath.Join(s.cfg.StateDir, "*.snap"))
	if err != nil {
		return err
	}
	sort.Strings(snaps)
	for _, path := range snaps {
		spec, err := readMeta(metaPath(path))
		if err != nil {
			// Fall back to the filename convention tenant--id.snap.
			base := strings.TrimSuffix(filepath.Base(path), ".snap")
			tenant, id, ok := strings.Cut(base, "--")
			if !ok {
				s.log.Printf("schedd: skip %s: %v (and filename is not tenant--id.snap)", path, err)
				continue
			}
			spec = sessionSpec{Tenant: tenant, ID: id}
		}
		if err := s.restoreOne(path, spec); err != nil {
			s.log.Printf("schedd: skip %s: %v", path, err)
		}
	}
	return nil
}

// restoreOne restores a single checkpoint into a fresh actor.
func (s *Server) restoreOne(path string, spec sessionSpec) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sess, err := hybridsched.Restore(f, hybridsched.WithObserver(s.eventCounter()))
	if err != nil {
		return err
	}
	if err := s.ledger.addSession(spec.Tenant); err != nil {
		sess.Close()
		return err
	}
	s.mu.Lock()
	if _, dup := s.sessions[spec.ID]; dup {
		s.mu.Unlock()
		sess.Close()
		s.ledger.dropSession(spec.Tenant)
		return fmt.Errorf("duplicate session id %q in state dir", spec.ID)
	}
	a := newActor(spec, sess, s.cfg.Quotas.MailboxDepth, path, s.met)
	s.sessions[spec.ID] = a
	s.mu.Unlock()
	s.met.sessionsRestored.Inc()
	s.met.sessionsLive.Add(1)
	s.log.Printf("schedd: session %s restored (tenant=%s, t=%d)", spec.ID, spec.Tenant, sess.Now())
	return nil
}

// writeMeta persists a session's spec sidecar atomically.
func writeMeta(path string, spec sessionSpec) error {
	data, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readMeta loads a session's spec sidecar.
func readMeta(path string) (sessionSpec, error) {
	var spec sessionSpec
	data, err := os.ReadFile(path)
	if err != nil {
		return spec, err
	}
	if err := json.Unmarshal(data, &spec); err != nil {
		return spec, err
	}
	if !nameRE.MatchString(spec.Tenant) || !nameRE.MatchString(spec.ID) {
		return spec, fmt.Errorf("meta %s: invalid tenant/id", path)
	}
	return spec, nil
}
