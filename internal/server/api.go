package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hybridsched"
	"hybridsched/internal/job"
)

// maxBodyBytes bounds every JSON request body.
const maxBodyBytes = 4 << 20

// --- Wire types -----------------------------------------------------------

// wireJob is the JSON form of one job submission. Field names and semantics
// mirror hybridsched.Record; min_size defaults to size, estimate to work,
// and notice_time/est_arrival to submit, so the common case is the five
// fields id/class/submit/size/work.
type wireJob struct {
	ID         int    `json:"id"`
	Project    int    `json:"project,omitempty"`
	Class      string `json:"class"`
	Submit     int64  `json:"submit"`
	Size       int    `json:"size"`
	MinSize    int    `json:"min_size,omitempty"`
	Work       int64  `json:"work"`
	Estimate   int64  `json:"estimate,omitempty"`
	Setup      int64  `json:"setup,omitempty"`
	Notice     string `json:"notice,omitempty"`
	NoticeTime int64  `json:"notice_time,omitempty"`
	EstArrival int64  `json:"est_arrival,omitempty"`
}

// record converts the wire form to a validated-on-submit Record.
func (j wireJob) record() (hybridsched.Record, error) {
	var class job.Class
	switch j.Class {
	case "rigid":
		class = job.Rigid
	case "on-demand":
		class = job.OnDemand
	case "malleable":
		class = job.Malleable
	default:
		return hybridsched.Record{}, fmt.Errorf("job %d: unknown class %q (want rigid, on-demand, or malleable)", j.ID, j.Class)
	}
	var notice job.NoticeCategory
	switch j.Notice {
	case "", "no-notice":
		notice = job.NoNotice
	case "accurate":
		notice = job.AccurateNotice
	case "early":
		notice = job.ArriveEarly
	case "late":
		notice = job.ArriveLate
	default:
		return hybridsched.Record{}, fmt.Errorf("job %d: unknown notice %q", j.ID, j.Notice)
	}
	r := hybridsched.Record{
		ID: j.ID, Project: j.Project, Class: class,
		Submit: j.Submit, Size: j.Size, MinSize: j.MinSize,
		Work: j.Work, Estimate: j.Estimate, Setup: j.Setup,
		Notice: notice, NoticeTime: j.NoticeTime, EstArrival: j.EstArrival,
	}
	if r.MinSize == 0 {
		r.MinSize = r.Size
	}
	if r.Estimate == 0 {
		r.Estimate = r.Work
	}
	if r.NoticeTime == 0 {
		r.NoticeTime = r.Submit
	}
	if r.EstArrival == 0 {
		r.EstArrival = r.Submit
	}
	return r, nil
}

// wireEvent is the JSON form of one scheduling event on the SSE stream.
type wireEvent struct {
	Type  string `json:"type"`
	Time  int64  `json:"time"`
	Job   int    `json:"job"`
	Class string `json:"class,omitempty"`
	Nodes int    `json:"nodes"`
}

func toWireEvent(ev hybridsched.Event) wireEvent {
	w := wireEvent{Type: ev.Type.String(), Time: ev.Time, Job: ev.Job, Nodes: ev.Nodes}
	if ev.Job >= 0 {
		w.Class = ev.Class.String()
	}
	return w
}

// sessionInfo is the JSON description of one hosted session.
type sessionInfo struct {
	ID        string `json:"id"`
	Tenant    string `json:"tenant"`
	Mechanism string `json:"mechanism,omitempty"`
	Policy    string `json:"policy,omitempty"`
	Nodes     int    `json:"nodes"`
	Now       int64  `json:"now"`
	Submitted int    `json:"submitted"`
	Completed int    `json:"completed"`
	Queued    int    `json:"queue_depth"`
	Dropped   int    `json:"dropped_events"`
}

// createRequest is the JSON body of POST /v1/sessions.
type createRequest struct {
	Tenant     string `json:"tenant"`
	ID         string `json:"id,omitempty"`
	Mechanism  string `json:"mechanism,omitempty"`
	Policy     string `json:"policy,omitempty"`
	Nodes      int    `json:"nodes,omitempty"`
	MaxSimTime int64  `json:"max_sim_time,omitempty"`
	Source     string `json:"source,omitempty"`
}

// advanceRequest is the JSON body of POST /v1/sessions/{id}/advance.
// Exactly one of until/hours/steps selects the mode: advance to an absolute
// virtual time, advance by whole hours from the current clock, or process a
// bounded number of discrete events.
type advanceRequest struct {
	Until int64 `json:"until,omitempty"`
	Hours int64 `json:"hours,omitempty"`
	Steps int   `json:"steps,omitempty"`
}

// advanceResponse reports where the advance landed.
type advanceResponse struct {
	Now       int64 `json:"now"`
	Submitted int   `json:"submitted"`
	Completed int   `json:"completed"`
	Queued    int   `json:"queue_depth"`
	Steps     int   `json:"steps,omitempty"` // events processed (steps mode)
}

// --- Handler --------------------------------------------------------------

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/sessions                   create a session
//	GET    /v1/sessions[?tenant=]         list sessions
//	GET    /v1/sessions/{id}              one session's info
//	DELETE /v1/sessions/{id}              stop and remove a session
//	POST   /v1/sessions/{id}/jobs         submit a job (or array of jobs)
//	POST   /v1/sessions/{id}/advance      advance virtual time / step events
//	GET    /v1/sessions/{id}/snapshot     point-in-time state
//	GET    /v1/sessions/{id}/report       metrics report so far
//	POST   /v1/sessions/{id}/checkpoint   persist to the state dir now
//	GET    /v1/sessions/{id}/events       SSE stream of scheduling events
//	GET    /metrics                       Prometheus text metrics
//	GET    /healthz                       liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleInfo)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/sessions/{id}/jobs", s.handleJobs)
	mux.HandleFunc("POST /v1/sessions/{id}/advance", s.handleAdvance)
	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/sessions/{id}/report", s.handleReport)
	mux.HandleFunc("POST /v1/sessions/{id}/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /v1/sessions/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s.instrument(mux)
}

// instrument wraps the mux with request metrics (latency histogram and
// per-status-code counters).
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.met.requestSeconds.Observe(time.Since(start).Seconds())
		s.met.httpRequests.Inc(strconv.Itoa(rec.code))
	})
}

// statusRecorder captures the response status for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so SSE works through the
// instrumentation layer.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// writeJSON emits a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeError maps an error to its HTTP status. Quota violations and full
// mailboxes are 429 with a Retry-After hint — the backpressure contract.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case isQuotaError(err) || err == errMailboxFull:
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
	case err == errSessionClosed || err == errSessionDeleted:
		code = http.StatusConflict
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// decodeBody decodes a size-capped JSON request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	a, err := s.createSession(createSpec{
		Tenant: req.Tenant, ID: req.ID, Mechanism: req.Mechanism,
		Policy: req.Policy, Nodes: req.Nodes, MaxSimTime: req.MaxSimTime,
		Source: req.Source,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	info, err := s.infoOf(a)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// infoOf collects a session's live description through its actor.
func (s *Server) infoOf(a *actor) (sessionInfo, error) {
	info := sessionInfo{
		ID: a.spec.ID, Tenant: a.spec.Tenant, Mechanism: a.spec.Mechanism,
		Policy: a.spec.Policy,
	}
	err := a.do(func(sess *hybridsched.Session) error {
		snap := sess.Snapshot()
		info.Nodes = snap.Nodes
		info.Now = snap.Now
		info.Submitted = snap.Submitted
		info.Completed = snap.Completed
		info.Queued = snap.QueueDepth
		info.Dropped = sess.DroppedEvents()
		return nil
	})
	return info, err
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	var infos []sessionInfo
	for _, a := range s.list(r.URL.Query().Get("tenant")) {
		info, err := s.infoOf(a)
		if err != nil {
			continue // deleted while listing
		}
		infos = append(infos, info)
	}
	if infos == nil {
		infos = []sessionInfo{}
	}
	writeJSON(w, http.StatusOK, infos)
}

// sessionOr404 resolves the {id} path segment to an actor.
func (s *Server) sessionOr404(w http.ResponseWriter, r *http.Request) (*actor, bool) {
	id := r.PathValue("id")
	a, ok := s.lookup(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("no session %q", id)})
	}
	return a, ok
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	a, ok := s.sessionOr404(w, r)
	if !ok {
		return
	}
	info, err := s.infoOf(a)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.deleteSession(id) {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("no session %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	a, ok := s.sessionOr404(w, r)
	if !ok {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	// Accept one job object or an array of them.
	var jobs []wireJob
	if trimmed := strings.TrimSpace(string(body)); strings.HasPrefix(trimmed, "[") {
		err = json.Unmarshal(body, &jobs)
	} else {
		var one wireJob
		err = json.Unmarshal(body, &one)
		jobs = []wireJob{one}
	}
	if err != nil {
		writeError(w, fmt.Errorf("bad job body: %w", err))
		return
	}
	records := make([]hybridsched.Record, len(jobs))
	for i, wj := range jobs {
		if records[i], err = wj.record(); err != nil {
			writeError(w, err)
			return
		}
	}
	// One quota slot and one mailbox request per submission call: the whole
	// batch is applied atomically in submission order by the actor.
	if err := s.ledger.addQueued(a.spec.Tenant); err != nil {
		s.met.quotaDenials.Inc()
		writeError(w, err)
		return
	}
	err = a.doSubmit(func(sess *hybridsched.Session) error {
		for _, rec := range records {
			if err := sess.Submit(rec); err != nil {
				return err
			}
		}
		return nil
	}, func() { s.ledger.dropQueued(a.spec.Tenant) })
	if err != nil {
		if err == errMailboxFull {
			s.met.backpressure429.Inc()
		}
		writeError(w, err)
		return
	}
	s.met.jobsSubmitted.Add(int64(len(records)))
	writeJSON(w, http.StatusAccepted, map[string]int{"submitted": len(records)})
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	a, ok := s.sessionOr404(w, r)
	if !ok {
		return
	}
	var req advanceRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	modes := 0
	for _, set := range []bool{req.Until > 0, req.Hours > 0, req.Steps > 0} {
		if set {
			modes++
		}
	}
	if modes != 1 {
		writeError(w, fmt.Errorf("advance wants exactly one of until, hours, steps"))
		return
	}
	var resp advanceResponse
	err := a.do(func(sess *hybridsched.Session) error {
		var err error
		switch {
		case req.Steps > 0:
			resp.Steps, err = a.stepN(sess, req.Steps)
		case req.Hours > 0:
			err = a.advance(sess, sess.Now()+req.Hours*hybridsched.Hour)
		default:
			err = a.advance(sess, req.Until)
		}
		snap := sess.Snapshot()
		resp.Now, resp.Submitted, resp.Completed, resp.Queued =
			snap.Now, snap.Submitted, snap.Completed, snap.QueueDepth
		return err
	})
	if err != nil {
		if err == errMailboxFull {
			s.met.backpressure429.Inc()
		}
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	a, ok := s.sessionOr404(w, r)
	if !ok {
		return
	}
	var snap hybridsched.Snapshot
	if err := a.do(func(sess *hybridsched.Session) error {
		snap = sess.Snapshot()
		return nil
	}); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	a, ok := s.sessionOr404(w, r)
	if !ok {
		return
	}
	var rep hybridsched.Report
	if err := a.do(func(sess *hybridsched.Session) error {
		rep = sess.Report()
		return nil
	}); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	a, ok := s.sessionOr404(w, r)
	if !ok {
		return
	}
	if a.persistPath == "" {
		writeError(w, fmt.Errorf("no state dir configured (start schedd with -state-dir)"))
		return
	}
	if err := a.do(func(*hybridsched.Session) error { return a.checkpointTo(a.persistPath) }); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"checkpointed": a.spec.ID})
}

// sseDropCheckEvery is how many events stream between DroppedEvents polls.
const sseDropCheckEvery = 64

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	a, ok := s.sessionOr404(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, fmt.Errorf("streaming unsupported by this connection"))
		return
	}
	// Subscribing mutates the session (installs the engine sink), so it goes
	// through the actor; the returned channel and the DroppedEvents counter
	// are safe to use from this handler goroutine afterwards.
	var ch <-chan hybridsched.Event
	var dropped func() int
	if err := a.do(func(sess *hybridsched.Session) error {
		ch = sess.Events()
		dropped = sess.DroppedEvents
		return nil
	}); err != nil {
		writeError(w, err)
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	emit := func(event string, v any) {
		data, _ := json.Marshal(v)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		flusher.Flush()
	}
	emit("hello", map[string]string{"session": a.spec.ID, "tenant": a.spec.Tenant})

	// There is no per-channel unsubscribe: when this client departs, the
	// channel stays attached and simply overflows (events to it are dropped
	// and counted), which is exactly the documented slow-consumer behavior.
	lastDrops := dropped()
	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	streamed := 0
	for {
		select {
		case ev, open := <-ch:
			if !open {
				emit("eof", map[string]int{"dropped": dropped()})
				return
			}
			emit("sched", toWireEvent(ev))
			streamed++
			if streamed%sseDropCheckEvery == 0 {
				if d := dropped(); d != lastDrops {
					lastDrops = d
					emit("dropped", map[string]int{"dropped": d})
				}
			}
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
			if d := dropped(); d != lastDrops {
				lastDrops = d
				emit("dropped", map[string]int{"dropped": d})
			}
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			emit("eof", map[string]int{"dropped": dropped()})
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.writePrometheus(w, s.ledger)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n, draining := len(s.sessions), s.draining
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": status, "sessions": n})
}
