// Package source defines the composable job-source abstraction that unifies
// every way jobs enter the simulator: synthetic generation, trace files
// (native CSV and SWF), hand-built record slices, and streams produced by
// user code. A Source yields trace records one at a time, so multi-week
// trace files can feed a live Session lazily — records are drawn as virtual
// time advances, never slurped ahead of it.
//
// Sources compose: Merge interleaves several sources in time order (the
// hybrid AI-HPC and capability/capacity blends of the related work), Scale
// compresses or dilates arrival times to change the offered load, Relabel
// reassigns job classes project-by-project (the paper's §IV-A trick, and the
// only supported way to promote rigid SWF imports to on-demand or malleable
// jobs), and Filter/Shift/Limit carve out sub-workloads. Every transform is
// itself a Source, so pipelines nest arbitrarily.
//
// Pipelines also have a textual spec form (see Parse) so CLIs and sweep
// grids can name workload sources declaratively:
//
//	swf:theta.swf|relabel:paper|scale:1.2
//	synthetic:seed=3,weeks=2,mix=W2 + csv:bursts.csv|shift:3600
//
// Register adds user-defined spec heads, mirroring the scheduler and policy
// registries: a source registered once is resolvable everywhere specs are
// accepted (sessions, sweeps, and the CLI tools).
package source

import (
	"fmt"
	"io"
	"math"
	"sort"

	"hybridsched/internal/trace"
	"hybridsched/internal/tracecorpus"
	"hybridsched/internal/workload"
)

// Source yields the records of one job stream. Next returns the next record
// with ok=true; ok=false means the stream is exhausted (err may accompany it
// when the stream failed). Sources are expected to yield records in
// non-decreasing Submit order — the simulator consumes them as arrivals —
// and implementations backed by files should release the file once drained.
// A Source is single-use and not safe for concurrent use.
type Source interface {
	Next() (trace.Record, bool, error)
}

// Func adapts a function to the Source interface.
type Func func() (trace.Record, bool, error)

// Next calls f.
func (f Func) Next() (trace.Record, bool, error) { return f() }

// FromRecords returns a Source yielding records in slice order. The slice is
// not copied; callers must not mutate it while the source is in use.
func FromRecords(records []trace.Record) Source {
	i := 0
	return Func(func() (trace.Record, bool, error) {
		if i >= len(records) {
			return trace.Record{}, false, nil
		}
		r := records[i]
		i++
		return r, true, nil
	})
}

// FromCSV returns a streaming Source over the native CSV dialect. Records
// are parsed one Next at a time, so a multi-week trace is never resident in
// memory as a whole. The reader is not closed; use Open for files.
func FromCSV(r io.Reader) Source {
	cr := trace.NewCSVReader(r)
	return Func(func() (trace.Record, bool, error) {
		rec, err := cr.Next()
		if err == io.EOF {
			return trace.Record{}, false, nil
		}
		if err != nil {
			return trace.Record{}, false, err
		}
		return rec, true, nil
	})
}

// FromSWF returns a streaming Source over a Standard Workload Format trace.
// Every job imports as rigid (see the trace package documentation); compose
// with Relabel to reassign classes. The reader is not closed; use Open for
// files.
func FromSWF(r io.Reader) Source {
	sr := trace.NewSWFReader(r)
	return Func(func() (trace.Record, bool, error) {
		rec, err := sr.Next()
		if err == io.EOF {
			return trace.Record{}, false, nil
		}
		if err != nil {
			return trace.Record{}, false, err
		}
		return rec, true, nil
	})
}

// FromBorg returns a streaming Source over a Google/Borg ClusterData events
// table (job_events or task_events, plain or gzipped): completed jobs emerge
// in submit order through the adapter's watermark join, every one rigid (see
// tracecorpus.BorgReader); compose with Relabel to impose the hybrid class
// structure. The reader is not closed; the "borg:" spec head handles files.
func FromBorg(r io.Reader) Source {
	br := tracecorpus.NewBorgReader(r)
	return Func(func() (trace.Record, bool, error) {
		rec, err := br.Next()
		if err == io.EOF {
			return trace.Record{}, false, nil
		}
		if err != nil {
			return trace.Record{}, false, err
		}
		return rec, true, nil
	})
}

// FromAlibaba returns a streaming Source over the Alibaba cluster-trace
// batch format (batch_task.csv, plain or gzipped): one record per Terminated
// task, instance count as width, every one rigid (see
// tracecorpus.AlibabaReader); compose with Relabel to impose the hybrid
// class structure. The reader is not closed; the "alibaba:" spec head
// handles files.
func FromAlibaba(r io.Reader) Source {
	ar := tracecorpus.NewAlibabaReader(r)
	return Func(func() (trace.Record, bool, error) {
		rec, err := ar.Next()
		if err == io.EOF {
			return trace.Record{}, false, nil
		}
		if err != nil {
			return trace.Record{}, false, err
		}
		return rec, true, nil
	})
}

// closer wraps a Source and closes c once the stream ends or fails, so
// file-backed pipelines release their descriptor when drained.
type closer struct {
	src Source
	c   io.Closer
}

func (s *closer) Next() (trace.Record, bool, error) {
	rec, ok, err := s.src.Next()
	if (!ok || err != nil) && s.c != nil {
		s.c.Close()
		s.c = nil
	}
	return rec, ok, err
}

// WithCloser attaches c to src: it is closed as soon as src reports
// exhaustion or an error. Wrappers like Limit can end a pipeline early
// without draining it; such abandoned files stay open until process exit.
func WithCloser(src Source, c io.Closer) Source { return &closer{src: src, c: c} }

// Synthetic returns a Source over the calibrated Theta-model generator. The
// trace is generated on the first Next (the whole point of the generator is
// a materialized, seeded trace) and then streamed in arrival order; the same
// config always yields the same stream.
func Synthetic(cfg workload.Config) Source {
	var inner Source
	return Func(func() (trace.Record, bool, error) {
		if inner == nil {
			recs, err := workload.Generate(cfg)
			if err != nil {
				return trace.Record{}, false, err
			}
			inner = FromRecords(recs)
		}
		return inner.Next()
	})
}

// merge is a time-ordered k-way merge with sequential ID reassignment.
type merge struct {
	srcs    []Source
	pending []trace.Record
	has     []bool
	done    []bool
	nextID  int
	err     error
}

// Merge interleaves sources in non-decreasing Submit order (ties resolve to
// the earlier operand), assuming each input is itself time-ordered. Because
// independent sources routinely number their jobs 1..n, merged records are
// renumbered with sequential IDs (1-based, in emission order) — project IDs
// are left untouched, so apply Relabel before merging when project spaces
// collide.
func Merge(srcs ...Source) Source {
	if len(srcs) == 1 {
		return srcs[0]
	}
	return &merge{
		srcs:    srcs,
		pending: make([]trace.Record, len(srcs)),
		has:     make([]bool, len(srcs)),
		done:    make([]bool, len(srcs)),
	}
}

func (m *merge) Next() (trace.Record, bool, error) {
	if m.err != nil {
		return trace.Record{}, false, m.err
	}
	best := -1
	for i := range m.srcs {
		if !m.has[i] && !m.done[i] {
			rec, ok, err := m.srcs[i].Next()
			if err != nil {
				m.err = err
				return trace.Record{}, false, err
			}
			if !ok {
				m.done[i] = true
				continue
			}
			m.pending[i], m.has[i] = rec, true
		}
		if m.has[i] && (best < 0 || m.pending[i].Submit < m.pending[best].Submit) {
			best = i
		}
	}
	if best < 0 {
		return trace.Record{}, false, nil
	}
	rec := m.pending[best]
	m.has[best] = false
	m.nextID++
	rec.ID = m.nextID
	return rec, true, nil
}

// Scale compresses arrival times by factor, raising the offered load: with
// factor 1.2 the same jobs arrive in 1/1.2 of the original span (load
// ×1.2); factors below 1 dilate time and lower the load. Job sizes and
// runtimes are untouched. All absolute instants (submit, notice, estimated
// arrival) scale together, so notice leads shrink or grow with the factor.
func Scale(src Source, factor float64) Source {
	at := func(t int64) int64 { return int64(math.Round(float64(t) / factor)) }
	return Func(func() (trace.Record, bool, error) {
		if factor <= 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
			return trace.Record{}, false, fmt.Errorf("source: scale factor %g must be a positive finite number", factor)
		}
		rec, ok, err := src.Next()
		if !ok || err != nil {
			return rec, ok, err
		}
		rec.Submit = at(rec.Submit)
		rec.NoticeTime = at(rec.NoticeTime)
		rec.EstArrival = at(rec.EstArrival)
		return rec, true, nil
	})
}

// Shift translates all absolute instants by dt seconds (negative shifts are
// allowed; records pushed before t=0 fail validation at submission).
func Shift(src Source, dt int64) Source {
	return Func(func() (trace.Record, bool, error) {
		rec, ok, err := src.Next()
		if !ok || err != nil {
			return rec, ok, err
		}
		rec.Submit += dt
		rec.NoticeTime += dt
		rec.EstArrival += dt
		return rec, true, nil
	})
}

// Filter yields only the records keep accepts.
func Filter(src Source, keep func(trace.Record) bool) Source {
	return Func(func() (trace.Record, bool, error) {
		for {
			rec, ok, err := src.Next()
			if !ok || err != nil {
				return rec, ok, err
			}
			if keep(rec) {
				return rec, true, nil
			}
		}
	})
}

// Limit yields at most n records. The underlying source is not drained past
// the limit, so a file-backed pipeline cut short keeps its file open until
// process exit (see WithCloser).
func Limit(src Source, n int) Source {
	return Func(func() (trace.Record, bool, error) {
		if n <= 0 {
			return trace.Record{}, false, nil
		}
		rec, ok, err := src.Next()
		if ok {
			n--
		}
		return rec, ok, err
	})
}

// ReadAll drains a source into a slice. It is the bridge from the streaming
// world to APIs that need a materialized trace (Simulate, the sweep runner's
// shared-trace memo).
func ReadAll(src Source) ([]trace.Record, error) {
	var out []trace.Record
	for {
		rec, ok, err := src.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, rec)
	}
}

// Sorted returns a source yielding the fully-materialized input in stable
// Submit order. It exists for inputs that cannot guarantee time order
// (hand-built slices, concatenated logs); it necessarily buffers everything,
// so it forfeits streaming.
func Sorted(src Source) Source {
	var inner Source
	return Func(func() (trace.Record, bool, error) {
		if inner == nil {
			recs, err := ReadAll(src)
			if err != nil {
				return trace.Record{}, false, err
			}
			sort.SliceStable(recs, func(i, j int) bool { return recs[i].Submit < recs[j].Submit })
			inner = FromRecords(recs)
		}
		return inner.Next()
	})
}
