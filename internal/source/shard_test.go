package source

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"hybridsched/internal/trace"
)

// fixtureSpecs names one pipeline per corpus adapter over the vendored
// samples, so the shard laws are checked on both real-trace formats.
func fixtureSpecs() []string {
	return []string{
		"borg:../tracecorpus/testdata/sample.csv.gz",
		"borg:../tracecorpus/testdata/job_events.csv.gz",
		"alibaba:../tracecorpus/testdata/batch_task.csv.gz",
	}
}

func mustReadAll(t *testing.T, spec string) []trace.Record {
	t.Helper()
	src, err := Parse(spec)
	if err != nil {
		t.Fatalf("parse %q: %v", spec, err)
	}
	recs, err := ReadAll(src)
	if err != nil {
		t.Fatalf("read %q: %v", spec, err)
	}
	return recs
}

// TestShardUnionIsWholeTrace: for several shard counts, the disjoint union
// of Shard(n, 0..n-1), merged back into ID order, is byte-identical to the
// unsharded stream — every record in exactly one shard, nothing lost,
// nothing duplicated, nothing rewritten. Checked across both corpus
// adapters (satellite #3).
func TestShardUnionIsWholeTrace(t *testing.T) {
	for _, spec := range fixtureSpecs() {
		t.Run(spec, func(t *testing.T) {
			whole := mustReadAll(t, spec)
			for _, n := range []int{2, 3, 7} {
				var union []trace.Record
				for i := 0; i < n; i++ {
					shard := mustReadAll(t, fmt.Sprintf("%s|shard:%d/%d", spec, i, n))
					// Each shard must be a subsequence of the whole stream:
					// a pure filter rewrites nothing.
					j := 0
					for _, r := range shard {
						for j < len(whole) && whole[j] != r {
							j++
						}
						if j == len(whole) {
							t.Fatalf("n=%d shard %d: record %+v not a subsequence of the unsharded stream", n, i, r)
						}
						j++
					}
					union = append(union, shard...)
				}
				// Records keep their original IDs (assigned in submit order),
				// so an ID-stable merge is a sort by ID.
				sort.Slice(union, func(a, b int) bool { return union[a].ID < union[b].ID })
				if !reflect.DeepEqual(union, whole) {
					t.Fatalf("n=%d: union of shards has %d records vs %d unsharded, or differs in content",
						n, len(union), len(whole))
				}
			}
		})
	}
}

// TestShardDeterministic: the same (n, i) always selects the same records —
// shard membership depends only on the job ID, never on evaluation order or
// which worker runs the pipeline.
func TestShardDeterministic(t *testing.T) {
	spec := fixtureSpecs()[0] + "|shard:2/5"
	a := mustReadAll(t, spec)
	b := mustReadAll(t, spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same shard spec read twice diverges")
	}
	if len(a) == 0 {
		t.Fatal("shard 2/5 of the sample fixture is empty; pick a different fixture or count")
	}
}

func TestShardIdentityAndErrors(t *testing.T) {
	recs := []trace.Record{
		{ID: 1, Submit: 0, Size: 1, MinSize: 1, Work: 1, Estimate: 1},
		{ID: 2, Submit: 5, Size: 1, MinSize: 1, Work: 1, Estimate: 1},
	}
	got, err := ReadAll(Shard(FromRecords(recs), 1, 0))
	if err != nil || !reflect.DeepEqual(got, recs) {
		t.Fatalf("Shard(1,0) is not the identity: %v %+v", err, got)
	}
	for _, bad := range [][2]int{{0, 0}, {3, 3}, {3, -1}} {
		if _, err := ReadAll(Shard(FromRecords(recs), bad[0], bad[1])); err == nil {
			t.Fatalf("Shard(n=%d,i=%d) did not error", bad[0], bad[1])
		}
	}
}

func TestShardSpecParsing(t *testing.T) {
	for _, bad := range []string{"shard:1", "shard:x/4", "shard:1/x", "shard:4/4", "shard:-1/4", "shard:"} {
		if _, err := Parse("synthetic:seed=1,weeks=1|" + bad); err == nil {
			t.Fatalf("spec %q did not error", bad)
		} else if !strings.Contains(err.Error(), "shard") {
			t.Fatalf("spec %q error %q does not mention shard", bad, err)
		}
	}
	src, err := Parse("synthetic:seed=1,weeks=1|shard:0/2")
	if err != nil {
		t.Fatal(err)
	}
	viaSpec, err := ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ReadAll(Shard(mustSynthetic(t), 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaSpec, direct) {
		t.Fatal("shard:0/2 spec transform diverges from Shard(src, 2, 0)")
	}
}

func mustSynthetic(t *testing.T) Source {
	t.Helper()
	src, err := Parse("synthetic:seed=1,weeks=1")
	if err != nil {
		t.Fatal(err)
	}
	return src
}
