package source

import (
	"fmt"

	"hybridsched/internal/trace"
)

// Shard deterministically selects the i-th of n hash-shards of a stream
// (0-based): a record is kept iff the splitmix64 hash of its job ID lands in
// shard i. The selection depends only on the ID — never on record order,
// shard count of a previous run, or which worker evaluates the pipeline —
// so a huge trace splits across sweep cells reproducibly, and the disjoint
// union of Shard(src, n, 0) .. Shard(src, n, n-1) is exactly the unsharded
// stream: every record appears in precisely one shard, with relative order
// preserved (each shard is a subsequence of the input). Shard(src, 1, 0) is
// the identity.
//
// Shard is a pure filter: IDs, times, and all other fields pass through
// untouched, so shards of one trace remain mergeable back into the whole by
// a submit-then-ID-stable merge. In the spec grammar it is the "shard:I/N"
// transform.
func Shard(src Source, n, i int) Source {
	if n < 1 || i < 0 || i >= n {
		err := fmt.Errorf("source: shard %d/%d invalid (want 0 <= i < n)", i, n)
		return Func(func() (trace.Record, bool, error) { return trace.Record{}, false, err })
	}
	if n == 1 {
		return src
	}
	un := uint64(n)
	return Filter(src, func(r trace.Record) bool {
		return mix64(uint64(int64(r.ID)))%un == uint64(i)
	})
}
