// Source-spec grammar and the named-source registry.
//
// A spec names a source pipeline declaratively:
//
//	spec     = pipeline { "+" pipeline }          merge, time-ordered
//	pipeline = head { "|" transform }
//	head     = "csv:PATH" | "swf:PATH"
//	         | "synthetic[:k=v,...]"               keys: seed weeks nodes mix load
//	         | NAME[":ARG"]                        a source registered with Register
//	transform= "relabel:paper" | "relabel:k=v,..." keys: seed od rigid mix leadmin
//	                                                     leadmax late cap minfrac
//	         | "scale:F"    arrival times ÷ F (load × F)
//	         | "shift:SECS" translate all instants
//	         | "limit:N"    first N records
//	         | "filter:k=v,..."                    keys: class project minsize maxsize
//
// Durations (leadmin, leadmax, late, shift) are integer seconds. Paths may
// not contain '|' or '+'; quote nothing — the grammar is deliberately
// shell-friendly.
package source

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hybridsched/internal/job"
	"hybridsched/internal/trace"
	"hybridsched/internal/workload"
)

// Factory builds a Source from the argument text of a registered spec head
// ("name:arg" invokes the factory registered under "name" with "arg"; a bare
// "name" passes ""). Factories run once per Parse and must return a fresh,
// single-use Source.
type Factory func(arg string) (Source, error)

var (
	regMu      sync.RWMutex
	registered = map[string]Factory{}
)

// builtinHeads lists the always-available spec heads in canonical order.
func builtinHeads() []string { return []string{"csv", "swf", "borg", "alibaba", "synthetic"} }

// transformNames lists the pipeline transforms (reserved words).
func transformNames() []string {
	return []string{"relabel", "scale", "shift", "limit", "filter", "shard"}
}

// Register makes factory resolvable as a spec head everywhere specs are
// accepted (sessions, sweeps, the CLI tools), mirroring the scheduler and
// policy registries: registration is append-only and fails on an empty name,
// a name containing grammar metacharacters, a built-in collision (including
// transform names), or a duplicate.
func Register(name string, factory Factory) error {
	if name == "" {
		return fmt.Errorf("source: empty source name")
	}
	if factory == nil {
		return fmt.Errorf("source: nil factory for source %q", name)
	}
	if strings.ContainsAny(name, ":|+ \t") {
		return fmt.Errorf("source: name %q contains spec metacharacters", name)
	}
	for _, b := range append(builtinHeads(), transformNames()...) {
		if name == b {
			return fmt.Errorf("source: source %q is a built-in", name)
		}
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registered[name]; dup {
		return fmt.Errorf("source: source %q already registered", name)
	}
	registered[name] = factory
	return nil
}

// Names returns every resolvable spec head: the built-ins in canonical
// order, then registered extensions sorted alphabetically.
func Names() []string {
	names := builtinHeads()
	regMu.RLock()
	extra := make([]string, 0, len(registered))
	for name := range registered {
		extra = append(extra, name)
	}
	regMu.RUnlock()
	sort.Strings(extra)
	return append(names, extra...)
}

// lookup resolves a registered head (nil if unknown).
func lookup(name string) Factory {
	regMu.RLock()
	defer regMu.RUnlock()
	return registered[name]
}

// Open returns a streaming Source over a trace file, dispatching on the
// extension after stripping a trailing ".gz" (".swf"/".swf.gz" → SWF,
// anything else → native CSV; gzip itself is detected by content, so the
// suffix only picks the dialect). The Borg and Alibaba corpus formats are
// not sniffed — name them explicitly with the "borg:"/"alibaba:" spec heads.
// The file is closed once the stream is drained or fails.
func Open(path string) (Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("source: %w", err)
	}
	name := strings.TrimSuffix(strings.ToLower(path), ".gz")
	if strings.HasSuffix(name, ".swf") {
		return WithCloser(FromSWF(f), f), nil
	}
	return WithCloser(FromCSV(f), f), nil
}

// Parse compiles a source spec into a Source. File-backed pipelines open
// their files immediately (so a bad path fails at parse time) but read them
// lazily; on a parse error every file already opened is closed before
// returning, so repeated parsing of bad specs cannot leak descriptors.
func Parse(spec string) (Source, error) {
	var opened []io.Closer
	fail := func(err error) (Source, error) {
		for _, c := range opened {
			c.Close()
		}
		return nil, err
	}
	parts := strings.Split(spec, "+")
	srcs := make([]Source, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return fail(fmt.Errorf("source: empty pipeline in spec %q", spec))
		}
		src, err := parsePipeline(p, &opened)
		if err != nil {
			return fail(err)
		}
		srcs = append(srcs, src)
	}
	if len(srcs) == 0 {
		return fail(fmt.Errorf("source: empty spec"))
	}
	return Merge(srcs...), nil
}

func parsePipeline(p string, opened *[]io.Closer) (Source, error) {
	stages := strings.Split(p, "|")
	src, err := parseHead(strings.TrimSpace(stages[0]), opened)
	if err != nil {
		return nil, err
	}
	for _, st := range stages[1:] {
		src, err = parseTransform(src, strings.TrimSpace(st))
		if err != nil {
			return nil, err
		}
	}
	return src, nil
}

// splitOp separates "op:arg" (arg may be empty or absent).
func splitOp(s string) (op, arg string) {
	if i := strings.IndexByte(s, ':'); i >= 0 {
		return s[:i], s[i+1:]
	}
	return s, ""
}

func parseHead(head string, opened *[]io.Closer) (Source, error) {
	op, arg := splitOp(head)
	switch op {
	case "csv", "swf", "borg", "alibaba":
		if arg == "" {
			return nil, fmt.Errorf("source: %s head needs a path (%s:PATH)", op, op)
		}
		f, err := os.Open(arg)
		if err != nil {
			return nil, fmt.Errorf("source: %w", err)
		}
		*opened = append(*opened, f)
		switch op {
		case "swf":
			return WithCloser(FromSWF(f), f), nil
		case "borg":
			return WithCloser(FromBorg(f), f), nil
		case "alibaba":
			return WithCloser(FromAlibaba(f), f), nil
		}
		return WithCloser(FromCSV(f), f), nil
	case "synthetic":
		cfg, err := parseSyntheticArgs(arg)
		if err != nil {
			return nil, err
		}
		return Synthetic(cfg), nil
	}
	if f := lookup(op); f != nil {
		return f(arg)
	}
	return nil, fmt.Errorf("source: unknown source %q (valid: %s)", op, strings.Join(Names(), ", "))
}

func parseTransform(src Source, st string) (Source, error) {
	op, arg := splitOp(st)
	switch op {
	case "relabel":
		rule, err := parseRelabelArgs(arg)
		if err != nil {
			return nil, err
		}
		return Relabel(src, rule), nil
	case "scale":
		f, err := strconv.ParseFloat(arg, 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("source: scale wants a positive factor, got %q", arg)
		}
		return Scale(src, f), nil
	case "shift":
		dt, err := strconv.ParseInt(arg, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("source: shift wants integer seconds, got %q", arg)
		}
		return Shift(src, dt), nil
	case "limit":
		n, err := strconv.Atoi(arg)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("source: limit wants a non-negative count, got %q", arg)
		}
		return Limit(src, n), nil
	case "filter":
		keep, err := parseFilterArgs(arg)
		if err != nil {
			return nil, err
		}
		return Filter(src, keep), nil
	case "shard":
		i, n, err := parseShardArg(arg)
		if err != nil {
			return nil, err
		}
		return Shard(src, n, i), nil
	}
	return nil, fmt.Errorf("source: unknown transform %q (valid: %s)",
		op, strings.Join(transformNames(), ", "))
}

// parseKVs splits "k=v,k=v" into a key-ordered list (order matters for
// deterministic error messages, not semantics).
func parseKVs(arg string) ([][2]string, error) {
	if arg == "" {
		return nil, nil
	}
	parts := strings.Split(arg, ",")
	out := make([][2]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		k, v, ok := strings.Cut(p, "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("source: bad key=value %q", p)
		}
		out = append(out, [2]string{k, v})
	}
	return out, nil
}

func parseSyntheticArgs(arg string) (workload.Config, error) {
	var cfg workload.Config
	kvs, err := parseKVs(arg)
	if err != nil {
		return cfg, err
	}
	for _, kv := range kvs {
		k, v := kv[0], kv[1]
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(v, 10, 64)
		case "weeks":
			cfg.Weeks, err = strconv.Atoi(v)
		case "nodes":
			cfg.Nodes, err = strconv.Atoi(v)
		case "load":
			cfg.TargetLoad, err = strconv.ParseFloat(v, 64)
		case "mix":
			cfg.Mix, err = workload.MixByName(v)
		default:
			return cfg, fmt.Errorf("source: unknown synthetic key %q (valid: seed, weeks, nodes, load, mix)", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("source: synthetic %s=%q: %w", k, v, err)
		}
	}
	return cfg, nil
}

func parseRelabelArgs(arg string) (RelabelRule, error) {
	var rule RelabelRule
	if arg == "" || arg == "paper" {
		return rule, nil // zero rule normalizes to the paper defaults
	}
	kvs, err := parseKVs(arg)
	if err != nil {
		return rule, err
	}
	// The rule struct uses zero = "paper default", negative = explicit zero;
	// in the grammar an explicit 0 means 0, so map it onto the sentinel.
	zf := func(v float64) float64 {
		if v == 0 {
			return -1
		}
		return v
	}
	zi := func(v int64) int64 {
		if v == 0 {
			return -1
		}
		return v
	}
	for _, kv := range kvs {
		k, v := kv[0], kv[1]
		var err error
		var f float64
		var i int64
		switch k {
		case "seed":
			rule.Seed, err = strconv.ParseInt(v, 10, 64)
		case "od":
			f, err = strconv.ParseFloat(v, 64)
			rule.OnDemandFrac = zf(f)
		case "rigid":
			f, err = strconv.ParseFloat(v, 64)
			rule.RigidFrac = zf(f)
		case "mix":
			rule.Mix, err = workload.MixByName(v)
		case "leadmin":
			i, err = strconv.ParseInt(v, 10, 64)
			rule.NoticeLeadMin = zi(i)
		case "leadmax":
			i, err = strconv.ParseInt(v, 10, 64)
			rule.NoticeLeadMax = zi(i)
		case "late":
			i, err = strconv.ParseInt(v, 10, 64)
			rule.LateWindow = zi(i)
		case "cap":
			rule.OnDemandMaxSize, err = strconv.Atoi(v)
		case "minfrac":
			f, err = strconv.ParseFloat(v, 64)
			rule.MalleableMinFrac = zf(f)
		default:
			return rule, fmt.Errorf("source: unknown relabel key %q (valid: seed, od, rigid, mix, leadmin, leadmax, late, cap, minfrac)", k)
		}
		if err != nil {
			return rule, fmt.Errorf("source: relabel %s=%q: %w", k, v, err)
		}
	}
	return rule, nil
}

func parseFilterArgs(arg string) (func(trace.Record) bool, error) {
	kvs, err := parseKVs(arg)
	if err != nil {
		return nil, err
	}
	if len(kvs) == 0 {
		return nil, fmt.Errorf("source: filter needs at least one key=value (valid: class, project, minsize, maxsize)")
	}
	var preds []func(trace.Record) bool
	for _, kv := range kvs {
		k, v := kv[0], kv[1]
		switch k {
		case "class":
			var class job.Class
			switch v {
			case "rigid":
				class = job.Rigid
			case "on-demand":
				class = job.OnDemand
			case "malleable":
				class = job.Malleable
			default:
				return nil, fmt.Errorf("source: filter class %q (valid: rigid, on-demand, malleable)", v)
			}
			preds = append(preds, func(r trace.Record) bool { return r.Class == class })
		case "project":
			p, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("source: filter project=%q: %w", v, err)
			}
			preds = append(preds, func(r trace.Record) bool { return r.Project == p })
		case "minsize":
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("source: filter minsize=%q: %w", v, err)
			}
			preds = append(preds, func(r trace.Record) bool { return r.Size >= n })
		case "maxsize":
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("source: filter maxsize=%q: %w", v, err)
			}
			preds = append(preds, func(r trace.Record) bool { return r.Size <= n })
		default:
			return nil, fmt.Errorf("source: unknown filter key %q (valid: class, project, minsize, maxsize)", k)
		}
	}
	return func(r trace.Record) bool {
		for _, p := range preds {
			if !p(r) {
				return false
			}
		}
		return true
	}, nil
}

// parseShardArg parses the "I/N" argument of the shard transform (0-based
// shard index I of N total shards, e.g. shard:0/4).
func parseShardArg(arg string) (i, n int, err error) {
	is, ns, ok := strings.Cut(arg, "/")
	if !ok {
		return 0, 0, fmt.Errorf("source: shard needs I/N (e.g. shard:0/4), got %q", arg)
	}
	if i, err = strconv.Atoi(is); err != nil {
		return 0, 0, fmt.Errorf("source: shard index %q: %w", is, err)
	}
	if n, err = strconv.Atoi(ns); err != nil {
		return 0, 0, fmt.Errorf("source: shard count %q: %w", ns, err)
	}
	if n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("source: shard %d/%d invalid (want 0 <= i < n)", i, n)
	}
	return i, n, nil
}
