package source

import (
	"fmt"
	"math"

	"hybridsched/internal/job"
	"hybridsched/internal/simtime"
	"hybridsched/internal/trace"
	"hybridsched/internal/workload"
)

// RelabelRule reassigns job classes project-by-project, the way the paper's
// experiment setup relabels the 2019 Theta log (§IV-A): all jobs of one
// project share a class, a fixed fraction of projects submit on-demand jobs,
// a fixed fraction rigid, the remainder malleable. It is the supported way
// to promote rigid SWF imports to the hybrid classes. The zero value is
// completed with the paper defaults by normalize; PaperRule returns them
// explicitly.
//
// The assignment is deterministic: a project's class and a job's notice
// draws depend only on Seed, the project ID, and the job ID — never on
// record order — so a relabeled trace is stable across runs and across
// upstream transforms that drop or reorder records.
type RelabelRule struct {
	// Seed decorrelates relabelings of the same trace; same seed, same
	// assignment. Default 1.
	Seed int64

	// OnDemandFrac and RigidFrac are the fractions of projects assigned the
	// on-demand and rigid classes; the remainder is malleable. Defaults
	// 0.10 and 0.60 (paper §IV-B). Like the SimulationConfig knobs, zero
	// means "paper default" and a negative value expresses an explicit
	// zero (e.g. OnDemandFrac: -1 relabels no project on-demand); the spec
	// grammar's od=0 / rigid=0 map to the sentinel automatically.
	OnDemandFrac float64
	RigidFrac    float64

	// Mix distributes on-demand jobs over the four advance-notice
	// categories (Table III). Default W5 (balanced).
	Mix workload.NoticeMix

	// NoticeLeadMin/Max bound the advance-notice lead; default 15–30 min,
	// negative = explicit zero.
	NoticeLeadMin int64
	NoticeLeadMax int64
	// LateWindow spreads arrive-late jobs up to this far past the estimate;
	// default 30 min, negative = explicit zero (late jobs arrive exactly at
	// the estimate).
	LateWindow int64

	// OnDemandMaxSize reassigns larger jobs of on-demand projects to rigid
	// ("real on-demand jobs are relatively small in size", §IV-A). Default
	// 1024 nodes; negative disables the cap.
	OnDemandMaxSize int

	// MalleableMinFrac sets a malleable job's minimum size as a fraction of
	// its maximum; default 0.20, negative = explicit zero (fully flexible,
	// minimum size 1).
	MalleableMinFrac float64
}

// PaperRule returns the paper-faithful relabeling: 10% of projects
// on-demand, 60% rigid, 30% malleable, balanced W5 notice mix, 15–30 minute
// leads, 1024-node on-demand cap.
func PaperRule() RelabelRule { r, _ := RelabelRule{}.normalize(); return r }

// normalize fills defaults and validates the rule. Zero-ish knobs follow
// the repo-wide sentinel convention: zero takes the paper default, a
// negative value is an explicit zero.
func (r RelabelRule) normalize() (RelabelRule, error) {
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.OnDemandFrac == 0 {
		r.OnDemandFrac = 0.10
	} else if r.OnDemandFrac < 0 {
		r.OnDemandFrac = 0
	}
	if r.RigidFrac == 0 {
		r.RigidFrac = 0.60
	} else if r.RigidFrac < 0 {
		r.RigidFrac = 0
	}
	if r.OnDemandFrac+r.RigidFrac > 1 {
		return r, fmt.Errorf("source: relabel fractions od=%g rigid=%g outside [0,1]",
			r.OnDemandFrac, r.RigidFrac)
	}
	var zero workload.NoticeMix
	if r.Mix == zero {
		r.Mix = workload.W5
	}
	sum := 0.0
	for _, p := range r.Mix {
		if p < 0 {
			return r, fmt.Errorf("source: negative notice fraction in relabel mix")
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		return r, fmt.Errorf("source: relabel notice mix sums to %g, want 1", sum)
	}
	if r.NoticeLeadMin == 0 {
		r.NoticeLeadMin = 15 * simtime.Minute
	} else if r.NoticeLeadMin < 0 {
		r.NoticeLeadMin = 0
	}
	if r.NoticeLeadMax == 0 {
		r.NoticeLeadMax = 30 * simtime.Minute
	} else if r.NoticeLeadMax < 0 {
		r.NoticeLeadMax = 0
	}
	if r.NoticeLeadMax < r.NoticeLeadMin {
		return r, fmt.Errorf("source: relabel notice leads [%d,%d] invalid", r.NoticeLeadMin, r.NoticeLeadMax)
	}
	if r.LateWindow == 0 {
		r.LateWindow = 30 * simtime.Minute
	} else if r.LateWindow < 0 {
		r.LateWindow = 0
	}
	if r.OnDemandMaxSize == 0 {
		r.OnDemandMaxSize = 1024
	}
	if r.MalleableMinFrac == 0 {
		r.MalleableMinFrac = 0.20
	} else if r.MalleableMinFrac < 0 {
		r.MalleableMinFrac = 0
	}
	if r.MalleableMinFrac > 1 {
		return r, fmt.Errorf("source: relabel malleable min fraction %g outside [0,1]", r.MalleableMinFrac)
	}
	return r, nil
}

// Salts for the independent hash streams of one rule.
const (
	saltClass = 1 + iota
	saltCategory
	saltLead
	saltEarly
	saltLate
)

// mix64 is the splitmix64 finalizer: a fast, well-distributed 64-bit hash
// used to derive per-project and per-job uniforms without any RNG state.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// u01 derives a uniform in [0,1) from the rule seed, a stream salt, and a
// key (project or job ID).
func (r RelabelRule) u01(salt, key int64) float64 {
	h := mix64(mix64(uint64(r.Seed)^uint64(salt)) ^ uint64(key))
	return float64(h>>11) / (1 << 53)
}

// classFor deterministically assigns a class to a project.
func (r RelabelRule) classFor(project int) job.Class {
	u := r.u01(saltClass, int64(project))
	switch {
	case u < r.OnDemandFrac:
		return job.OnDemand
	case u < r.OnDemandFrac+r.RigidFrac:
		return job.Rigid
	default:
		return job.Malleable
	}
}

// uniformInt64 maps a [0,1) uniform onto [lo, hi].
func uniformInt64(u float64, lo, hi int64) int64 {
	v := lo + int64(u*float64(hi-lo+1))
	if v > hi {
		v = hi
	}
	return v
}

// apply rewrites one record under the (normalized) rule.
func (r RelabelRule) apply(rec trace.Record) trace.Record {
	class := r.classFor(rec.Project)
	if class == job.OnDemand && r.OnDemandMaxSize > 0 && rec.Size > r.OnDemandMaxSize {
		class = job.Rigid // large jobs of on-demand projects run rigid (§IV-A)
	}
	rec.Class = class
	rec.MinSize = rec.Size
	switch class {
	case job.Rigid, job.Malleable:
		if class == job.Malleable {
			m := int(math.Ceil(r.MalleableMinFrac * float64(rec.Size)))
			if m < 1 {
				m = 1
			}
			if m > rec.Size {
				m = rec.Size
			}
			rec.MinSize = m
		}
		rec.Notice = job.NoNotice
		rec.NoticeTime, rec.EstArrival = rec.Submit, rec.Submit
	case job.OnDemand:
		r.fillNotice(&rec)
	}
	return rec
}

// fillNotice draws the advance-notice category and derives the notice and
// estimated-arrival instants around the actual arrival, mirroring the
// synthetic generator's Fig. 1 semantics (the lead precedes the estimated
// arrival; early jobs land before the estimate, late ones after).
func (r RelabelRule) fillNotice(rec *trace.Record) {
	id := int64(rec.ID)
	lead := uniformInt64(r.u01(saltLead, id), r.NoticeLeadMin, r.NoticeLeadMax)
	u := r.u01(saltCategory, id)
	acc := 0.0
	cat := job.NoNotice
	for c, p := range r.Mix {
		acc += p
		if u < acc {
			cat = job.NoticeCategory(c)
			break
		}
	}
	switch cat {
	case job.NoNotice:
		rec.Notice = job.NoNotice
		rec.NoticeTime, rec.EstArrival = rec.Submit, rec.Submit
	case job.AccurateNotice:
		rec.Notice = job.AccurateNotice
		rec.EstArrival = rec.Submit
		rec.NoticeTime = rec.Submit - lead
	case job.ArriveEarly:
		rec.Notice = job.ArriveEarly
		rec.EstArrival = rec.Submit + uniformInt64(r.u01(saltEarly, id), 0, lead)
		rec.NoticeTime = rec.EstArrival - lead
	case job.ArriveLate:
		rec.Notice = job.ArriveLate
		rec.EstArrival = rec.Submit - uniformInt64(r.u01(saltLate, id), 0, r.LateWindow)
		rec.NoticeTime = rec.EstArrival - lead
	}
	if rec.NoticeTime < 0 {
		rec.NoticeTime = 0
	}
	if rec.EstArrival < rec.NoticeTime {
		rec.EstArrival = rec.NoticeTime
	}
	if rec.NoticeTime > rec.Submit {
		rec.NoticeTime = rec.Submit
	}
}

// Relabel rewrites every record's class (and the class-dependent fields:
// minimum size, notice category and instants) under rule, leaving arrival
// times, sizes, runtimes, and IDs untouched. Existing class information is
// deliberately discarded — the transform exists to impose a class structure
// on traces that have none (SWF imports) or a different one (reusing a
// hybrid trace under a new mix).
func Relabel(src Source, rule RelabelRule) Source {
	norm, err := rule.normalize()
	return Func(func() (trace.Record, bool, error) {
		if err != nil {
			return trace.Record{}, false, err
		}
		rec, ok, serr := src.Next()
		if !ok || serr != nil {
			return rec, ok, serr
		}
		return norm.apply(rec), true, nil
	})
}
