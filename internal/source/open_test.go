package source

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"testing"

	"hybridsched/internal/trace"
)

// TestOpenGzipDispatch: Open picks the dialect from the extension with a
// trailing ".gz" stripped, so a gzipped SWF named theta.swf.gz parses as
// SWF — while the compression itself is detected from the content.
func TestOpenGzipDispatch(t *testing.T) {
	dir := t.TempDir()

	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write([]byte("; gzipped swf\n1 5 -1 600 64 -1 -1 64 1200 -1 1\n"))
	zw.Close()
	swfGz := filepath.Join(dir, "theta.SWF.gz") // case-insensitive, like .swf
	if err := os.WriteFile(swfGz, gz.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := Open(swfGz)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Size != 64 || recs[0].Work != 600 {
		t.Fatalf("gzipped .swf.gz read as %+v, want one 64-node SWF job", recs)
	}

	// A gzipped native CSV with no telltale extension still decompresses.
	var csvPlain bytes.Buffer
	if err := trace.WriteCSV(&csvPlain, []trace.Record{
		{ID: 1, Submit: 0, Size: 2, MinSize: 2, Work: 10, Estimate: 20},
	}); err != nil {
		t.Fatal(err)
	}
	var csvGz bytes.Buffer
	zw = gzip.NewWriter(&csvGz)
	zw.Write(csvPlain.Bytes())
	zw.Close()
	csvPath := filepath.Join(dir, "trace.csv.gz")
	if err := os.WriteFile(csvPath, csvGz.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err = Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, err = ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Size != 2 {
		t.Fatalf("gzipped .csv.gz read as %+v", recs)
	}
}
