package source

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"hybridsched/internal/job"
	"hybridsched/internal/trace"
	"hybridsched/internal/workload"
)

// rec builds a minimal valid rigid record.
func rec(id int, submit int64) trace.Record {
	return trace.Record{
		ID: id, Class: job.Rigid, Submit: submit, Size: 64, MinSize: 64,
		Work: 600, Estimate: 900, NoticeTime: submit, EstArrival: submit,
	}
}

func drain(t *testing.T, s Source) []trace.Record {
	t.Helper()
	out, err := ReadAll(s)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestFromRecordsOrderAndExhaustion(t *testing.T) {
	in := []trace.Record{rec(1, 0), rec(2, 10)}
	s := FromRecords(in)
	out := drain(t, s)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("got %+v, want %+v", out, in)
	}
	if _, ok, err := s.Next(); ok || err != nil {
		t.Errorf("exhausted source yielded ok=%v err=%v", ok, err)
	}
}

func TestSyntheticMatchesGenerate(t *testing.T) {
	cfg := workload.Config{Seed: 7, Weeks: 1, Nodes: 512}
	want, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, Synthetic(cfg))
	if !reflect.DeepEqual(want, got) {
		t.Error("Synthetic stream differs from workload.Generate")
	}
}

func TestMergeTimeOrderAndRenumbering(t *testing.T) {
	a := FromRecords([]trace.Record{rec(1, 0), rec(2, 100), rec(3, 200)})
	b := FromRecords([]trace.Record{rec(1, 50), rec(2, 100), rec(3, 300)})
	out := drain(t, Merge(a, b))
	if len(out) != 6 {
		t.Fatalf("want 6 merged records, got %d", len(out))
	}
	wantSubmits := []int64{0, 50, 100, 100, 200, 300}
	for i, r := range out {
		if r.Submit != wantSubmits[i] {
			t.Errorf("record %d at t=%d, want %d", i, r.Submit, wantSubmits[i])
		}
		if r.ID != i+1 {
			t.Errorf("record %d has ID %d, want sequential %d", i, r.ID, i+1)
		}
	}
	// The t=100 tie resolves to the earlier operand (a's record first).
	if out[2].Submit != 100 || out[3].Submit != 100 {
		t.Fatal("tie records misplaced")
	}
}

func TestMergeSingleSourcePassthrough(t *testing.T) {
	in := []trace.Record{rec(9, 5)}
	out := drain(t, Merge(FromRecords(in)))
	if out[0].ID != 9 {
		t.Errorf("single-source merge renumbered: ID %d", out[0].ID)
	}
}

func TestScaleCompressesTime(t *testing.T) {
	in := []trace.Record{rec(1, 0), rec(2, 1200)}
	out := drain(t, Scale(FromRecords(in), 1.2))
	if out[1].Submit != 1000 {
		t.Errorf("scaled submit %d, want 1000", out[1].Submit)
	}
	if out[1].NoticeTime != 1000 || out[1].EstArrival != 1000 {
		t.Errorf("notice/est not scaled with submit: %+v", out[1])
	}
	if _, err := ReadAll(Scale(FromRecords(in), 0)); err == nil {
		t.Error("scale 0 should error")
	}
	if _, err := ReadAll(Scale(FromRecords(in), -1)); err == nil {
		t.Error("negative scale should error")
	}
}

func TestShiftFilterLimit(t *testing.T) {
	in := []trace.Record{rec(1, 0), rec(2, 10), rec(3, 20)}
	out := drain(t, Shift(FromRecords(in), 100))
	if out[0].Submit != 100 || out[0].NoticeTime != 100 {
		t.Errorf("shift: %+v", out[0])
	}
	out = drain(t, Filter(FromRecords(in), func(r trace.Record) bool { return r.ID != 2 }))
	if len(out) != 2 || out[1].ID != 3 {
		t.Errorf("filter: %+v", out)
	}
	out = drain(t, Limit(FromRecords(in), 2))
	if len(out) != 2 {
		t.Errorf("limit: got %d records", len(out))
	}
	out = drain(t, Limit(FromRecords(in), 0))
	if len(out) != 0 {
		t.Errorf("limit 0: got %d records", len(out))
	}
}

func TestSortedReordersUnsortedInput(t *testing.T) {
	in := []trace.Record{rec(1, 500), rec(2, 0), rec(3, 250)}
	out := drain(t, Sorted(FromRecords(in)))
	if out[0].ID != 2 || out[1].ID != 3 || out[2].ID != 1 {
		t.Errorf("sorted order wrong: %+v", out)
	}
}

func TestRelabelDeterministicAndValid(t *testing.T) {
	var in []trace.Record
	for i := 1; i <= 400; i++ {
		r := rec(i, int64(i)*60)
		r.Project = i % 40
		r.Size = 64 + (i%8)*64
		r.MinSize = r.Size
		in = append(in, r)
	}
	rule := RelabelRule{Seed: 3}
	a := drain(t, Relabel(FromRecords(in), rule))
	b := drain(t, Relabel(FromRecords(in), rule))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("relabel not deterministic")
	}
	counts := map[job.Class]int{}
	classOfProject := map[int]job.Class{}
	for _, r := range a {
		if err := r.Validate(); err != nil {
			t.Fatalf("relabeled record invalid: %v (%+v)", err, r)
		}
		counts[r.Class]++
		// All small jobs of one project share a class (large ones may be
		// demoted to rigid by the on-demand size cap).
		if r.Size <= 1024 {
			if prev, seen := classOfProject[r.Project]; seen && prev != r.Class {
				t.Errorf("project %d has classes %v and %v", r.Project, prev, r.Class)
			} else {
				classOfProject[r.Project] = r.Class
			}
		}
		if r.ID != in[r.ID-1].ID || r.Submit != in[r.ID-1].Submit {
			t.Errorf("relabel changed identity/arrival of job %d", r.ID)
		}
	}
	if counts[job.Rigid] == 0 || counts[job.Malleable] == 0 {
		t.Errorf("degenerate class mix: %v", counts)
	}
	// A different seed must produce a different assignment.
	c := drain(t, Relabel(FromRecords(in), RelabelRule{Seed: 4}))
	if reflect.DeepEqual(a, c) {
		t.Error("relabel ignores the seed")
	}
}

func TestRelabelHonorsOnDemandCap(t *testing.T) {
	var in []trace.Record
	for i := 1; i <= 200; i++ {
		r := rec(i, int64(i))
		r.Project = i % 10
		r.Size = 2048
		r.MinSize = 2048
		in = append(in, r)
	}
	out := drain(t, Relabel(FromRecords(in), RelabelRule{Seed: 1, OnDemandFrac: 0.5, RigidFrac: 0.25}))
	for _, r := range out {
		if r.Class == job.OnDemand {
			t.Fatalf("2048-node job %d relabeled on-demand past the 1024 cap", r.ID)
		}
	}
}

func TestRelabelBadRule(t *testing.T) {
	if _, err := ReadAll(Relabel(FromRecords([]trace.Record{rec(1, 0)}),
		RelabelRule{OnDemandFrac: 0.8, RigidFrac: 0.8})); err == nil {
		t.Error("fractions summing past 1 should error")
	}
}

func TestParseSpecPipelines(t *testing.T) {
	dir := t.TempDir()
	var csvBuf, swfBuf bytes.Buffer
	recs := []trace.Record{rec(1, 0), rec(2, 600), rec(3, 1200)}
	if err := trace.WriteCSV(&csvBuf, recs); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSWF(&swfBuf, recs); err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dir, "t.csv")
	swfPath := filepath.Join(dir, "t.swf")
	if err := os.WriteFile(csvPath, csvBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(swfPath, swfBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	src, err := Parse(fmt.Sprintf("csv:%s|limit:2", csvPath))
	if err != nil {
		t.Fatal(err)
	}
	if out := drain(t, src); len(out) != 2 {
		t.Errorf("csv|limit:2 yielded %d records", len(out))
	}

	src, err = Parse(fmt.Sprintf("swf:%s|relabel:paper|scale:1.2", swfPath))
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, src)
	if len(out) != 3 {
		t.Errorf("swf pipeline yielded %d records", len(out))
	}
	if out[2].Submit != 1000 {
		t.Errorf("scale after relabel: submit %d, want 1000", out[2].Submit)
	}

	src, err = Parse("synthetic:seed=5,weeks=1,nodes=512,mix=W2")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := workload.Generate(workload.Config{Seed: 5, Weeks: 1, Nodes: 512, Mix: workload.W2})
	if got := drain(t, src); len(got) != len(want) {
		t.Errorf("synthetic spec yielded %d records, generator %d", len(got), len(want))
	}

	// Merged pipelines renumber and stay time-ordered.
	src, err = Parse(fmt.Sprintf("csv:%s + csv:%s|shift:300", csvPath, csvPath))
	if err != nil {
		t.Fatal(err)
	}
	merged := drain(t, src)
	if len(merged) != 6 {
		t.Fatalf("merge yielded %d records", len(merged))
	}
	for i, r := range merged {
		if r.ID != i+1 {
			t.Errorf("merged record %d has ID %d", i, r.ID)
		}
		if i > 0 && r.Submit < merged[i-1].Submit {
			t.Errorf("merge out of order at %d: %d < %d", i, r.Submit, merged[i-1].Submit)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		" + ",
		"nosuchhead:x",
		"csv:",
		"csv:/no/such/file.csv",
		"synthetic:seed=abc",
		"synthetic:bogus=1",
		"synthetic|nosuchtransform:1",
		"synthetic|scale:0",
		"synthetic|scale:x",
		"synthetic|shift:x",
		"synthetic|limit:-1",
		"synthetic|filter:",
		"synthetic|filter:class=quantum",
		"synthetic|relabel:bogus=1",
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) should fail", spec)
		}
	}
}

// The registry is append-only, so "spiketest" registers exactly once per
// test binary and routes its captured state through a pointer — this keeps
// the test correct under -count>1 (CI's determinism smoke reruns every test
// in one process).
var (
	spiketestOnce sync.Once
	spiketestArg  *string
	spiketestErr  error
)

func TestRegisterSource(t *testing.T) {
	if err := Register("", nil); err == nil {
		t.Error("empty name should fail")
	}
	if err := Register("csv", func(string) (Source, error) { return nil, nil }); err == nil {
		t.Error("built-in collision should fail")
	}
	if err := Register("relabel", func(string) (Source, error) { return nil, nil }); err == nil {
		t.Error("transform-name collision should fail")
	}
	if err := Register("bad|name", func(string) (Source, error) { return nil, nil }); err == nil {
		t.Error("metacharacter name should fail")
	}
	var gotArg string
	spiketestArg = &gotArg
	spiketestOnce.Do(func() {
		spiketestErr = Register("spiketest", func(arg string) (Source, error) {
			*spiketestArg = arg
			return FromRecords([]trace.Record{rec(1, 0)}), nil
		})
	})
	if spiketestErr != nil {
		t.Fatal(spiketestErr)
	}
	if err := Register("spiketest", func(string) (Source, error) { return nil, nil }); err == nil {
		t.Error("duplicate registration should fail")
	}
	src, err := Parse("spiketest:arg1|limit:1")
	if err != nil {
		t.Fatal(err)
	}
	if out := drain(t, src); len(out) != 1 || gotArg != "arg1" {
		t.Errorf("registered source: %d records, arg %q", len(out), gotArg)
	}
	found := false
	for _, n := range Names() {
		if n == "spiketest" {
			found = true
		}
	}
	if !found {
		t.Error("Names() missing registered source")
	}
}

func TestOpenDispatchesOnExtension(t *testing.T) {
	dir := t.TempDir()
	var swfBuf bytes.Buffer
	if err := trace.WriteSWF(&swfBuf, []trace.Record{rec(1, 0)}); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "log.SWF")
	if err := os.WriteFile(p, swfBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, src)
	if len(out) != 1 || out[0].Class != job.Rigid {
		t.Errorf("swf open: %+v", out)
	}
	if _, err := Open(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file should fail at Open")
	}
}

func TestSourceErrorsAreSticky(t *testing.T) {
	src := FromCSV(strings.NewReader("garbage"))
	_, _, err1 := src.Next()
	if err1 == nil {
		t.Fatal("want parse error")
	}
	_, _, err2 := src.Next()
	if err2 == nil {
		t.Error("error should be sticky through the source adapter")
	}
}

func TestRelabelExplicitZeroFractions(t *testing.T) {
	var in []trace.Record
	for i := 1; i <= 200; i++ {
		r := rec(i, int64(i))
		r.Project = i % 20
		in = append(in, r)
	}
	// Spec grammar: od=0 must mean zero on-demand projects, not the 10%
	// paper default (the explicit-zero sentinel convention).
	src, err := Parse("synthetic:seed=1,weeks=1,nodes=512|relabel:od=0,rigid=0.7")
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, src)
	for _, r := range out {
		if r.Class == job.OnDemand {
			t.Fatalf("relabel:od=0 produced on-demand job %d", r.ID)
		}
	}
	// Struct form: negative sentinel.
	out = drain(t, Relabel(FromRecords(in), RelabelRule{OnDemandFrac: -1, RigidFrac: -1}))
	for _, r := range out {
		if r.Class != job.Malleable {
			t.Fatalf("od=-1,rigid=-1 should relabel everything malleable, got %v for job %d", r.Class, r.ID)
		}
	}
	// late=0 pins arrive-late jobs exactly on their estimate.
	rule, err := RelabelRule{LateWindow: -1, OnDemandFrac: 0.9, RigidFrac: 0.05}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if rule.LateWindow != 0 {
		t.Errorf("LateWindow sentinel not resolved: %d", rule.LateWindow)
	}
}

func TestParseClosesFilesOnError(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.csv")
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, []trace.Record{rec(1, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	// The first pipeline opens good.csv; the second fails. Parse must close
	// the already-opened file rather than leaking it. Exhausting fds is the
	// observable failure, so probe with many iterations well past default
	// per-process limits divided by... just check it stays parseable: if
	// descriptors leaked, several thousand iterations would fail to open.
	for i := 0; i < 4096; i++ {
		if _, err := Parse("csv:" + good + " + csv:" + filepath.Join(dir, "missing.csv")); err == nil {
			t.Fatal("want error for missing second pipeline")
		}
	}
	if _, err := Parse("csv:" + good); err != nil {
		t.Fatalf("descriptors exhausted after error-path parses: %v", err)
	}
}
