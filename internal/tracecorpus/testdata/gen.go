//go:build ignore

// gen.go regenerates the vendored trace fixtures in this directory. The
// samples are synthetic but structurally faithful miniatures of the real
// corpora (same columns, same event discipline, same quirks: mid-window
// jobs, failed/killed jobs, task retries, non-terminated and zero-timestamp
// Alibaba rows, job-grouped row order), generated from a fixed seed so the
// files — and every golden derived from them — are reproducible:
//
//	cd internal/tracecorpus/testdata && go run gen.go
//
// Outputs (all gzipped, each well under 100KB):
//
//	sample.csv.gz     Borg ClusterData task_events dialect (13 columns)
//	job_events.csv.gz Borg ClusterData job_events dialect (8 columns)
//	batch_task.csv.gz Alibaba cluster-trace batch_task dialect
package main

import (
	"compress/gzip"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
)

// rng is a splitmix64 generator: tiny, seedable, and stable across Go
// versions (unlike math/rand's unspecified algorithm).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int        { return int(r.next() % uint64(n)) }
func (r *rng) rangeI(lo, hi int) int { return lo + r.intn(hi-lo+1) }

type event struct {
	ts   int64
	seq  int // generation order, stable tie-break
	line string
}

func writeGz(path string, lines []string) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if _, err := zw.Write([]byte(strings.Join(lines, "\n") + "\n")); err != nil {
		log.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("%s: %d lines, %d bytes gzipped\n", path, len(lines), st.Size())
}

func sortEvents(evs []event) []string {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].ts != evs[j].ts {
			return evs[i].ts < evs[j].ts
		}
		return evs[i].seq < evs[j].seq
	})
	lines := make([]string, len(evs))
	for i, e := range evs {
		lines[i] = e.line
	}
	return lines
}

const us = 1_000_000 // µs per second

// genBorgTasks emits the task_events dialect: 300 jobs over ~4 simulated
// hours, 1..32 tasks each, with killed jobs, mid-window jobs (first event is
// SCHEDULE), and task retries (FAIL then re-SUBMIT while siblings run).
func genBorgTasks() {
	r := &rng{s: 0x5eed0001}
	users := []string{"u_mapred", "u_search", "u_ads", "u_ml", "u_batch", "u_web"}
	var evs []event
	seq := 0
	add := func(ts int64, jobID int64, task int, ev int, user string) {
		// timestamp,missing,jobID,taskIndex,machine,event,user,class,priority,cpu,mem,disk,constraint
		evs = append(evs, event{ts: ts, seq: seq, line: fmt.Sprintf(
			"%d,,%d,%d,%d,%d,%s,2,%d,0.0625,0.03,0.001,0",
			ts, jobID, task, 4000000+r.intn(2000), ev, user, r.intn(10))})
		seq++
	}
	submit := int64(600) * us
	for job := 0; job < 300; job++ {
		jobID := int64(6250000000 + job*37)
		user := users[r.intn(len(users))]
		width := 1 << r.intn(6) // 1..32 tasks
		submit += int64(r.intn(90)) * us
		queue := int64(r.rangeI(1, 600)) * us
		run := int64(r.rangeI(30, 14400)) * us
		sched := submit + queue
		kind := r.intn(20)
		switch {
		case kind == 0: // killed mid-run
			for t := 0; t < width; t++ {
				add(submit, jobID, t, 0, user)
				add(sched, jobID, t, 1, user)
				add(sched+run/2, jobID, t, 5, user)
			}
		case kind == 1: // entered the window mid-flight: no SUBMIT rows
			for t := 0; t < width; t++ {
				add(sched, jobID, t, 1, user)
				add(sched+run+int64(t)*us, jobID, t, 4, user)
			}
		case kind == 2 && width > 1: // one task fails and retries
			for t := 0; t < width; t++ {
				add(submit, jobID, t, 0, user)
				add(sched, jobID, t, 1, user)
			}
			add(sched+run/4, jobID, 0, 3, user) // task 0 fails...
			add(sched+run/4+us, jobID, 0, 0, user)
			add(sched+run/4+2*us, jobID, 0, 1, user) // ...and is rescheduled
			for t := 0; t < width; t++ {
				add(sched+run+int64(t)*us, jobID, t, 4, user)
			}
		default: // clean submit/schedule/finish
			for t := 0; t < width; t++ {
				add(submit, jobID, t, 0, user)
				add(sched, jobID, t, 1, user)
				add(sched+run+int64(t)*us, jobID, t, 4, user)
			}
		}
	}
	writeGz("sample.csv.gz", sortEvents(evs))
}

// genBorgJobs emits the job_events dialect: 300 jobs, some killed, some
// lost, some mid-window.
func genBorgJobs() {
	r := &rng{s: 0x5eed0002}
	users := []string{"u_cron", "u_etl", "u_ml", "u_web"}
	var evs []event
	seq := 0
	add := func(ts int64, jobID int64, ev int, user string) {
		// timestamp,missing,jobID,event,user,class,jobname,logicalname
		evs = append(evs, event{ts: ts, seq: seq, line: fmt.Sprintf(
			"%d,,%d,%d,%s,1,job_%x,logical_%x", ts, jobID, ev, user, jobID, jobID%97)})
		seq++
	}
	submit := int64(300) * us
	for job := 0; job < 300; job++ {
		jobID := int64(5180000000 + job*53)
		user := users[r.intn(len(users))]
		submit += int64(r.intn(120)) * us
		sched := submit + int64(r.rangeI(1, 900))*us
		end := sched + int64(r.rangeI(10, 7200))*us
		switch r.intn(15) {
		case 0: // killed
			add(submit, jobID, 0, user)
			add(sched, jobID, 1, user)
			add(end, jobID, 5, user)
		case 1: // lost
			add(submit, jobID, 0, user)
			add(sched, jobID, 1, user)
			add(end, jobID, 6, user)
		case 2: // mid-window: first event is SCHEDULE
			add(sched, jobID, 1, user)
			add(end, jobID, 4, user)
		default:
			add(submit, jobID, 0, user)
			add(sched, jobID, 1, user)
			add(end, jobID, 4, user)
		}
	}
	writeGz("job_events.csv.gz", sortEvents(evs))
}

// genAlibaba emits batch_task rows grouped by job (the real dump's order),
// with ~10% non-Terminated rows and a few zero-timestamp rows.
func genAlibaba() {
	r := &rng{s: 0x5eed0003}
	var lines []string
	start := int64(86400)
	for job := 1; job <= 120; job++ {
		jobName := fmt.Sprintf("j_%d", 4100000+job*11)
		tasks := r.rangeI(1, 8)
		start += int64(r.intn(300))
		for t := 1; t <= tasks; t++ {
			instances := 1 << r.intn(7) // 1..64
			s := start + int64(r.intn(600))
			e := s + int64(r.rangeI(20, 3600))
			status := "Terminated"
			switch r.intn(12) {
			case 0:
				status = "Failed"
			case 1:
				status = "Running"
			case 2:
				s, e = 0, 0 // outside the trace window
			}
			lines = append(lines, fmt.Sprintf("task_%s%d,%d,%s,1,%s,%d,%d,100,0.39",
				map[bool]string{true: "M", false: "R"}[t%2 == 0], t, instances, jobName, status, s, e))
		}
	}
	writeGz("batch_task.csv.gz", lines)
}

func main() {
	genBorgTasks()
	genBorgJobs()
	genAlibaba()
}
