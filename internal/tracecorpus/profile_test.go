package tracecorpus

import (
	"bytes"
	"strings"
	"testing"

	"hybridsched/internal/job"
	"hybridsched/internal/trace"
)

// sliceStream adapts a record slice to the Stream interface.
type sliceStream struct {
	recs []trace.Record
	i    int
}

func (s *sliceStream) Next() (trace.Record, bool, error) {
	if s.i >= len(s.recs) {
		return trace.Record{}, false, nil
	}
	r := s.recs[s.i]
	s.i++
	return r, true, nil
}

func TestCharacterize(t *testing.T) {
	recs := []trace.Record{
		{ID: 1, Class: job.Rigid, Submit: 0, Size: 4, Work: 3600},
		{ID: 2, Class: job.OnDemand, Submit: 100, Size: 1, Work: 1800},
		{ID: 3, Class: job.Rigid, Submit: 400, Size: 8, Work: 900},
	}
	p, err := Characterize(&sliceStream{recs: recs})
	if err != nil {
		t.Fatal(err)
	}
	if p.Jobs != 3 || p.Classes[job.Rigid] != 2 || p.Classes[job.OnDemand] != 1 {
		t.Fatalf("profile %+v", p)
	}
	if p.FirstSubmit != 0 || p.LastSubmit != 400 {
		t.Fatalf("span %d..%d, want 0..400", p.FirstSubmit, p.LastSubmit)
	}
	// 4*3600 + 1*1800 + 8*900 = 23400 node-seconds = 6.5 node-hours.
	if p.NodeHours != 6.5 {
		t.Fatalf("node-hours %g, want 6.5", p.NodeHours)
	}
	if p.InterArrival.Count != 2 || p.InterArrival.Mean != 200 || p.InterArrival.Max != 300 {
		t.Fatalf("inter-arrival %+v", p.InterArrival)
	}
	if p.Width.Mean < 4.3 || p.Width.Mean > 4.4 || p.Width.Max != 8 {
		t.Fatalf("width %+v", p.Width)
	}
	if p.Runtime.P50 < 1800 || p.Runtime.P50 > 2047 {
		t.Fatalf("runtime p50 %d, want the 1024..2047 bucket bound", p.Runtime.P50)
	}
}

func TestCharacterizeRejectsUnordered(t *testing.T) {
	recs := []trace.Record{
		{ID: 1, Submit: 100, Size: 1, Work: 1},
		{ID: 2, Submit: 50, Size: 1, Work: 1},
	}
	_, err := Characterize(&sliceStream{recs: recs})
	if err == nil || !strings.Contains(err.Error(), "not time-ordered") {
		t.Fatalf("want time-order error, got %v", err)
	}
}

func TestDistQuantiles(t *testing.T) {
	var d Dist
	for v := int64(1); v <= 100; v++ {
		d.add(v)
	}
	d.finish()
	if d.Count != 100 || d.Mean != 50.5 || d.Max != 100 {
		t.Fatalf("dist %+v", d)
	}
	// The p50 of 1..100 lands in the 32..63 bucket, p99 in the top one —
	// whose reported bound clamps to the observed max.
	if d.P50 != 63 {
		t.Fatalf("p50 %d, want 63", d.P50)
	}
	if d.P99 != 100 {
		t.Fatalf("p99 %d, want clamped to max 100", d.P99)
	}
	var zeros Dist
	zeros.add(0)
	zeros.finish()
	if zeros.P50 != 0 || zeros.P99 != 0 {
		t.Fatalf("all-zero dist %+v", zeros)
	}
}

func TestProfileRender(t *testing.T) {
	recs := []trace.Record{
		{ID: 1, Class: job.Rigid, Submit: 0, Size: 4, Work: 3600},
		{ID: 2, Class: job.Malleable, Submit: 60, Size: 2, Work: 600},
	}
	p, err := Characterize(&sliceStream{recs: recs})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	p.Render(&buf)
	out := buf.String()
	for _, want := range []string{"jobs:          2", "rigid 50.0%", "malleable 50.0%", "node-hours", "width (nodes)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
}
