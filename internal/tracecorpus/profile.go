package tracecorpus

import (
	"fmt"
	"io"
	"math/bits"

	"hybridsched/internal/job"
	"hybridsched/internal/simtime"
	"hybridsched/internal/trace"
)

// Stream is the minimal record stream Characterize consumes. It is
// structurally identical to the source layer's Source interface, so any
// compiled source pipeline satisfies it without an import cycle.
type Stream interface {
	Next() (trace.Record, bool, error)
}

// Dist is a streaming distribution summary: exact count, mean, and maximum,
// plus quantiles approximated from power-of-two buckets (each reported value
// is the inclusive upper bound of the bucket the quantile falls in, so p50
// reads "half the values are <= this"). The bucketing keeps characterization
// constant-memory no matter how many jobs stream through.
type Dist struct {
	Count int
	Mean  float64
	Max   int64
	P50   int64
	P90   int64
	P99   int64

	sum     float64
	buckets [65]int // index = bit length of the value; 0 holds zeros
}

func (d *Dist) add(v int64) {
	if v < 0 {
		v = 0
	}
	d.Count++
	d.sum += float64(v)
	if v > d.Max {
		d.Max = v
	}
	d.buckets[bits.Len64(uint64(v))]++
}

// quantile returns the upper bound of the bucket holding the q-quantile.
func (d *Dist) quantile(q float64) int64 {
	if d.Count == 0 {
		return 0
	}
	need := int(q*float64(d.Count-1)) + 1
	cum := 0
	for k, n := range d.buckets {
		cum += n
		if cum >= need {
			if k == 0 {
				return 0
			}
			ub := int64(1)<<k - 1
			if ub > d.Max {
				ub = d.Max // the top bucket's true bound is the observed max
			}
			return ub
		}
	}
	return d.Max
}

func (d *Dist) finish() {
	if d.Count > 0 {
		d.Mean = d.sum / float64(d.Count)
	}
	d.P50 = d.quantile(0.50)
	d.P90 = d.quantile(0.90)
	d.P99 = d.quantile(0.99)
}

// Profile is the characterization of one trace stream: what tracegen
// -summarize prints. It answers the questions the paper's Table I answers
// for the Theta log — how many jobs, what class mix, how wide, how long,
// how bursty — for any source pipeline, including the Borg and Alibaba
// adapters with Relabel heuristics applied.
type Profile struct {
	Jobs        int
	Classes     [3]int // indexed by job.Class
	NodeHours   float64
	FirstSubmit int64
	LastSubmit  int64

	InterArrival Dist // seconds between consecutive submits
	Width        Dist // requested nodes
	Runtime      Dist // actual runtime, seconds
}

// Characterize drains a record stream into a Profile. It enforces the
// Source contract (non-decreasing Submit order) as it goes, so it doubles
// as a cheap sanity pass over a new adapter or pipeline; memory is constant
// in stream length.
func Characterize(s Stream) (Profile, error) {
	var p Profile
	prev := int64(-1)
	for {
		rec, ok, err := s.Next()
		if err != nil {
			return p, err
		}
		if !ok {
			break
		}
		if prev >= 0 && rec.Submit < prev {
			return p, fmt.Errorf("tracecorpus: job %d submits at %ds after a job at %ds (stream not time-ordered)",
				rec.ID, rec.Submit, prev)
		}
		if p.Jobs == 0 {
			p.FirstSubmit = rec.Submit
		} else {
			p.InterArrival.add(rec.Submit - prev)
		}
		prev = rec.Submit
		p.LastSubmit = rec.Submit
		p.Jobs++
		if c := int(rec.Class); c >= 0 && c < len(p.Classes) {
			p.Classes[c]++
		}
		p.Width.add(int64(rec.Size))
		p.Runtime.add(rec.Work)
		p.NodeHours += float64(rec.Size) * float64(rec.Work) / float64(simtime.Hour)
	}
	p.InterArrival.finish()
	p.Width.finish()
	p.Runtime.finish()
	return p, nil
}

// pct renders a class share of the job count.
func (p Profile) pct(c job.Class) string {
	if p.Jobs == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(p.Classes[c])/float64(p.Jobs))
}

// Render writes the characterization as a compact text report.
func (p Profile) Render(w io.Writer) {
	fmt.Fprintf(w, "trace characterization\n")
	fmt.Fprintf(w, "  jobs:          %d (rigid %s, on-demand %s, malleable %s)\n",
		p.Jobs, p.pct(job.Rigid), p.pct(job.OnDemand), p.pct(job.Malleable))
	fmt.Fprintf(w, "  span:          %s (submit %ds .. %ds)\n",
		simtime.Format(p.LastSubmit-p.FirstSubmit), p.FirstSubmit, p.LastSubmit)
	fmt.Fprintf(w, "  node-hours:    %.0f\n", p.NodeHours)
	fmt.Fprintf(w, "  inter-arrival: mean %s, p50 <=%s, p90 <=%s, p99 <=%s, max %s\n",
		simtime.Format(int64(p.InterArrival.Mean)), simtime.Format(p.InterArrival.P50),
		simtime.Format(p.InterArrival.P90), simtime.Format(p.InterArrival.P99),
		simtime.Format(p.InterArrival.Max))
	fmt.Fprintf(w, "  width (nodes): mean %.1f, p50 <=%d, p90 <=%d, p99 <=%d, max %d\n",
		p.Width.Mean, p.Width.P50, p.Width.P90, p.Width.P99, p.Width.Max)
	fmt.Fprintf(w, "  runtime:       mean %s, p50 <=%s, p90 <=%s, p99 <=%s, max %s\n",
		simtime.Format(int64(p.Runtime.Mean)), simtime.Format(p.Runtime.P50),
		simtime.Format(p.Runtime.P90), simtime.Format(p.Runtime.P99),
		simtime.Format(p.Runtime.Max))
}
