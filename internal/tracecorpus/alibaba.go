package tracecorpus

import (
	"encoding/csv"
	"io"
	"strconv"
	"strings"

	"hybridsched/internal/job"
	"hybridsched/internal/trace"
)

// Column layout of the Alibaba cluster-trace-v2018 batch_task table.
const (
	aliTaskName = iota
	aliInstanceNum
	aliJobName
	aliTaskType
	aliStatus
	aliStartTime
	aliEndTime
	aliPlanCPU
	aliPlanMem
	aliCols
)

// aliReorderWindow bounds the submit-order reordering buffer. batch_task
// rows are grouped by job, not globally time-sorted, so records buffer in a
// min-heap on start time and are released once the buffer holds this many —
// at which point a still-earlier row would mean the trace is shuffled far
// beyond what any published dump exhibits, and the reader errors instead of
// emitting out of order.
const aliReorderWindow = 1 << 16

// AlibabaSummary reports what an Alibaba batch-task import did.
type AlibabaSummary struct {
	// TasksRead is the number of records emitted.
	TasksRead int
	// NonTerminated counts rows skipped because their status was not
	// Terminated (Running, Waiting, Failed, Cancelled, ...).
	NonTerminated int
	// Unrunnable counts Terminated rows skipped for a missing or inverted
	// start/end pair or a non-positive instance count.
	Unrunnable int
}

// String renders the summary as one human-readable line.
func (s AlibabaSummary) String() string {
	return "alibaba: " + strconv.Itoa(s.TasksRead) + " tasks read (all rigid), " +
		strconv.Itoa(s.NonTerminated) + " non-terminated skipped, " +
		strconv.Itoa(s.Unrunnable) + " unrunnable skipped"
}

// AlibabaReader streams the Alibaba cluster-trace batch format
// (cluster-trace-v2018 batch_task.csv: task_name, instance_num, job_name,
// task_type, status, start_time, end_time, plan_cpu, plan_mem — plain or
// gzipped) as native trace records in non-decreasing Submit order.
//
// Each Terminated task row becomes one record: the task's instance count is
// its width (instances run in parallel), start_time its submit instant, and
// end_time − start_time its runtime. Rows in any other status are skipped
// and counted — their durations are unknowable. The file is grouped by job
// rather than globally time-sorted, so records pass through a bounded
// reordering buffer (see aliReorderWindow); memory is constant in trace
// length. Record IDs are assigned sequentially in emission order; the job
// name interns to a dense Project ID in order of first appearance, so all
// tasks of one job land in one project and project-based Relabel heuristics
// apply downstream. Every imported task is rigid with Estimate = Work;
// task_type, plan_cpu, and plan_mem are not consumed.
//
// Errors are sticky and positioned (row numbers). Summary may be consulted
// at any point and is complete once Next has returned io.EOF.
type AlibabaReader struct {
	cr       *csv.Reader
	row      int
	projects projectTable

	out      recHeap
	seq      int
	lastEmit int64
	nextID   int

	eof bool
	err error
	sum AlibabaSummary
}

// NewAlibabaReader returns a streaming reader over a batch_task table.
func NewAlibabaReader(r io.Reader) *AlibabaReader {
	cr := csv.NewReader(trace.MaybeGzip(r))
	cr.FieldsPerRecord = -1 // some dumps drop the trailing plan columns
	cr.ReuseRecord = true
	return &AlibabaReader{cr: cr, projects: projectTable{}}
}

// Summary returns the import counters accumulated so far.
func (r *AlibabaReader) Summary() AlibabaSummary { return r.sum }

// Row returns the number of input rows consumed so far, for positioning
// caller-side diagnostics.
func (r *AlibabaReader) Row() int { return r.row }

// Next returns the next imported task, io.EOF at the end of the trace, or a
// positioned parse error (all sticky).
func (r *AlibabaReader) Next() (trace.Record, error) {
	if r.err != nil {
		return trace.Record{}, r.err
	}
	for {
		if r.out.Len() > 0 && (r.eof || r.out.Len() > aliReorderWindow) {
			p := r.out.pop()
			if p.key < r.lastEmit {
				r.err = posErr("start time %ds arrives more than %d rows after later tasks (trace shuffled beyond the reorder window; sort it first)",
					"alibaba", r.row, p.key, aliReorderWindow)
				return trace.Record{}, r.err
			}
			r.lastEmit = p.key
			r.nextID++
			rec := p.rec
			rec.ID = r.nextID
			r.sum.TasksRead++
			return rec, nil
		}
		if r.eof {
			r.err = io.EOF
			return trace.Record{}, io.EOF
		}
		row, err := r.cr.Read()
		if err == io.EOF {
			r.eof = true
			continue
		}
		if err != nil {
			r.err = err
			return trace.Record{}, err
		}
		r.row++
		if err := r.process(row); err != nil {
			r.err = err
			return trace.Record{}, err
		}
	}
}

// process converts one batch_task row into a buffered record (or a counted
// skip).
func (r *AlibabaReader) process(row []string) error {
	if len(row) < aliPlanCPU { // task_name..end_time are required
		return posErr("%d columns, want >= %d (batch_task: task_name,instance_num,job_name,task_type,status,start_time,end_time,plan_cpu,plan_mem)",
			"alibaba", r.row, len(row), int(aliPlanCPU))
	}
	if !strings.EqualFold(row[aliStatus], "Terminated") {
		r.sum.NonTerminated++
		return nil
	}
	instances, err := strconv.Atoi(row[aliInstanceNum])
	if err != nil {
		return posErr("bad instance_num %q", "alibaba", r.row, row[aliInstanceNum])
	}
	start, err := strconv.ParseInt(row[aliStartTime], 10, 64)
	if err != nil {
		return posErr("bad start_time %q", "alibaba", r.row, row[aliStartTime])
	}
	end, err := strconv.ParseInt(row[aliEndTime], 10, 64)
	if err != nil {
		return posErr("bad end_time %q", "alibaba", r.row, row[aliEndTime])
	}
	if instances < 1 || start < 0 || end <= start {
		r.sum.Unrunnable++ // 0-timestamps mark tasks outside the trace window
		return nil
	}
	r.seq++
	r.out.push(pendingRec{key: start, seq: r.seq, rec: trace.Record{
		Project:    r.projects.idFor(row[aliJobName]),
		Class:      job.Rigid,
		Submit:     start,
		Size:       instances,
		MinSize:    instances,
		Work:       end - start,
		Estimate:   end - start,
		NoticeTime: start,
		EstArrival: start,
	}})
	return nil
}
