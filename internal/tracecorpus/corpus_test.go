package tracecorpus

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"

	"hybridsched/internal/job"
	"hybridsched/internal/trace"
)

// drainBorg reads a Borg trace to EOF, failing the test on any error.
func drainBorg(t *testing.T, r io.Reader) ([]trace.Record, BorgSummary) {
	t.Helper()
	br := NewBorgReader(r)
	var recs []trace.Record
	for {
		rec, err := br.Next()
		if err == io.EOF {
			return recs, br.Summary()
		}
		if err != nil {
			t.Fatalf("borg read: %v", err)
		}
		recs = append(recs, rec)
	}
}

// drainAlibaba reads an Alibaba trace to EOF, failing the test on any error.
func drainAlibaba(t *testing.T, r io.Reader) ([]trace.Record, AlibabaSummary) {
	t.Helper()
	ar := NewAlibabaReader(r)
	var recs []trace.Record
	for {
		rec, err := ar.Next()
		if err == io.EOF {
			return recs, ar.Summary()
		}
		if err != nil {
			t.Fatalf("alibaba read: %v", err)
		}
		recs = append(recs, rec)
	}
}

// checkStream asserts the Source contract plus the faithful-reader
// guarantees every adapter promises: submit-ordered, sequential IDs,
// Validate-clean, all rigid.
func checkStream(t *testing.T, recs []trace.Record) {
	t.Helper()
	last := int64(0)
	for i, r := range recs {
		if r.ID != i+1 {
			t.Fatalf("record %d has ID %d, want sequential emission IDs", i, r.ID)
		}
		if r.Submit < last {
			t.Fatalf("job %d submits at %ds after a job at %ds", r.ID, r.Submit, last)
		}
		last = r.Submit
		if r.Class != job.Rigid {
			t.Fatalf("job %d imported as %v, want rigid (faithful-reader principle)", r.ID, r.Class)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", r.ID, err)
		}
	}
}

// taskRow renders one task_events row (13 columns, µs timestamps).
func taskRow(tsSec float64, jobID, task int64, ev int, user string) string {
	return fmt.Sprintf("%d,,%d,%d,4001,%d,%s,2,0,0.5,0.25,0.0,0",
		int64(tsSec*1e6), jobID, task, ev, user)
}

// jobRow renders one job_events row (8 columns, µs timestamps).
func jobRow(tsSec float64, jobID int64, ev int, user string) string {
	return fmt.Sprintf("%d,,%d,%d,%s,1,jn,ln", int64(tsSec*1e6), jobID, ev, user)
}

func lines(ls ...string) string { return strings.Join(ls, "\n") + "\n" }

func TestBorgJobEvents(t *testing.T) {
	in := lines(
		jobRow(1, 10, 0, "alice"), // clean job: submit 1s, schedule 3s, finish 10s
		jobRow(2, 20, 0, "bob"),   // killed job: no record
		jobRow(3, 10, 1, "alice"),
		jobRow(4, 20, 1, "bob"),
		jobRow(5, 30, 1, "alice"), // mid-window: first event is SCHEDULE
		jobRow(6, 20, 5, "bob"),
		jobRow(7, 40, 4, "carol"), // terminal for a never-opened job: skipped
		jobRow(10, 10, 4, "alice"),
		jobRow(12, 30, 4, "alice"),
	)
	recs, sum := drainBorg(t, strings.NewReader(in))
	checkStream(t, recs)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2: %+v", len(recs), recs)
	}
	// Job 10: submit 1s, schedule 3s, finish 10s => work 7s, width 1.
	if r := recs[0]; r.Submit != 1 || r.Work != 7 || r.Size != 1 || r.Project != 1 {
		t.Fatalf("job 10 imported as %+v", r)
	}
	// Job 30: defaulted submit at its 5s SCHEDULE, finish 12s => work 7s.
	if r := recs[1]; r.Submit != 5 || r.Work != 7 || r.Project != 1 {
		t.Fatalf("job 30 imported as %+v", r)
	}
	want := BorgSummary{JobsRead: 2, JobsSkipped: 2, SubmitsDefaulted: 1, WidthDefaulted: 2}
	if sum != want {
		t.Fatalf("summary %+v, want %+v", sum, want)
	}
}

func TestBorgTaskEvents(t *testing.T) {
	in := lines(
		taskRow(1, 10, 0, 0, "alice"), // job 10: two clean tasks
		taskRow(1, 10, 1, 0, "alice"),
		taskRow(2, 20, 0, 0, "bob"), // job 20: two tasks, task 0 fails and retries
		taskRow(2, 20, 1, 0, "bob"),
		taskRow(3, 10, 0, 1, "alice"),
		taskRow(3, 10, 1, 1, "alice"),
		taskRow(4, 20, 0, 1, "bob"),
		taskRow(4, 20, 1, 1, "bob"),
		taskRow(5, 20, 0, 3, "bob"), // task 0 fails while task 1 runs...
		taskRow(6, 20, 0, 0, "bob"), // ...and resubmits (Retries++)
		taskRow(7, 20, 0, 1, "bob"),
		taskRow(10, 10, 0, 4, "alice"),
		taskRow(11, 10, 1, 4, "alice"), // job 10 complete: width 2, end 11s
		taskRow(19, 20, 1, 4, "bob"),
		taskRow(20, 20, 0, 4, "bob"), // job 20 complete: width 2, end 20s
	)
	recs, sum := drainBorg(t, strings.NewReader(in))
	checkStream(t, recs)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2: %+v", len(recs), recs)
	}
	// Job 10: submit 1s, first schedule 3s, last finish 11s => work 8s, width 2.
	if r := recs[0]; r.Submit != 1 || r.Size != 2 || r.MinSize != 2 || r.Work != 8 || r.Project != 1 {
		t.Fatalf("job 10 imported as %+v", r)
	}
	// Job 20: submit 2s, first schedule 4s, last finish 20s => work 16s; the
	// retried task keeps the width at 2 distinct indices.
	if r := recs[1]; r.Submit != 2 || r.Size != 2 || r.Work != 16 || r.Project != 2 {
		t.Fatalf("job 20 imported as %+v", r)
	}
	want := BorgSummary{JobsRead: 2, Retries: 1}
	if sum != want {
		t.Fatalf("summary %+v, want %+v", sum, want)
	}
}

// TestBorgWatermark checks the streaming join releases a completed job only
// once no pending or future job can precede it — and that a short job
// submitted after but finishing before a long one still emerges in submit
// order.
func TestBorgWatermark(t *testing.T) {
	in := lines(
		jobRow(1, 10, 0, "a"), // long job, submits first
		jobRow(2, 10, 1, "a"),
		jobRow(3, 20, 0, "a"), // short job, submits second, finishes first
		jobRow(4, 20, 1, "a"),
		jobRow(5, 20, 4, "a"),
		jobRow(100, 10, 4, "a"),
	)
	br := NewBorgReader(strings.NewReader(in))
	first, err := br.Next()
	if err != nil {
		t.Fatal(err)
	}
	if first.Submit != 1 || first.Work != 98 {
		t.Fatalf("first emitted record %+v, want the 1s-submit long job", first)
	}
	second, err := br.Next()
	if err != nil {
		t.Fatal(err)
	}
	if second.Submit != 3 || second.Work != 1 {
		t.Fatalf("second emitted record %+v, want the 3s-submit short job", second)
	}
	if _, err := br.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

// TestBorgIncompleteAtEOF: jobs still pending when the trace ends are
// dropped and counted, and everything buffered drains.
func TestBorgIncompleteAtEOF(t *testing.T) {
	in := lines(
		jobRow(1, 10, 0, "a"),
		jobRow(2, 10, 1, "a"),
		jobRow(3, 20, 0, "a"), // never terminates
		jobRow(4, 20, 1, "a"),
		jobRow(9, 10, 4, "a"),
	)
	recs, sum := drainBorg(t, strings.NewReader(in))
	if len(recs) != 1 || sum.Incomplete != 1 {
		t.Fatalf("got %d records, summary %+v; want 1 record, 1 incomplete", len(recs), sum)
	}
}

func TestBorgGzipInput(t *testing.T) {
	in := lines(
		jobRow(1, 10, 0, "a"),
		jobRow(2, 10, 1, "a"),
		jobRow(9, 10, 4, "a"),
	)
	plain, _ := drainBorg(t, strings.NewReader(in))
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte(in))
	zw.Close()
	zipped, _ := drainBorg(t, &buf)
	if len(plain) != 1 || len(zipped) != 1 || plain[0] != zipped[0] {
		t.Fatalf("gzip input diverges: plain %+v vs zipped %+v", plain, zipped)
	}
}

func TestBorgPositionedErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"bad timestamp", lines(jobRow(1, 10, 0, "a"), jobRow(2, 10, 1, "a"), "oops,,10,4,a,1,jn,ln"),
			"borg row 3: bad timestamp"},
		{"bad job id", lines(jobRow(1, 10, 0, "a"), "2000000,,xyz,1,a,1,jn,ln"),
			"borg row 2: bad job ID"},
		{"bad event", lines("1000000,,10,9,a,1,jn,ln"), "borg row 1: bad event type"},
		{"bad column count", lines("1000000,,10,0,a"), "borg row 1: 5 columns"},
		{"dialect mismatch", lines(jobRow(1, 10, 0, "a"), taskRow(2, 10, 0, 1, "a")),
			"borg row 2: 13 columns, want 8"},
		{"bad task index", lines(taskRow(1, 10, 0, 0, "a"), "2000000,,10,-1,4001,1,a,2,0,0.5,0.25,0.0,0"),
			"borg row 2: bad task index"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			br := NewBorgReader(strings.NewReader(tc.in))
			var err error
			for err == nil {
				_, err = br.Next()
			}
			if err == io.EOF || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q, want it to contain %q", err, tc.want)
			}
			// The error is sticky.
			if _, again := br.Next(); again == nil || again.Error() != err.Error() {
				t.Fatalf("error not sticky: first %q then %q", err, again)
			}
		})
	}
}

func TestAlibaba(t *testing.T) {
	in := lines(
		// Grouped by job, not globally time-sorted: j_b's rows precede the
		// earlier-starting second task of j_a.
		"task_1,4,j_a,1,Terminated,100,250,100,0.5",
		"task_2,1,j_a,1,Running,300,0,100,0.5",    // non-terminated: skipped
		"task_3,2,j_a,1,Terminated,0,0,100,0.5",   // zero timestamps: unrunnable
		"task_1,8,j_b,1,Terminated,120,4000",      // short row: plan columns dropped
		"task_2,0,j_b,1,Terminated,130,200,1,0.1", // zero instances: unrunnable
		"task_4,2,j_a,1,Terminated,110,170,1,0.1",
	)
	recs, sum := drainAlibaba(t, strings.NewReader(in))
	checkStream(t, recs)
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3: %+v", len(recs), recs)
	}
	if r := recs[0]; r.Submit != 100 || r.Size != 4 || r.Work != 150 || r.Project != 1 {
		t.Fatalf("first record %+v", r)
	}
	if r := recs[1]; r.Submit != 110 || r.Size != 2 || r.Work != 60 || r.Project != 1 {
		t.Fatalf("second record %+v (reorder buffer should sort it before j_b)", r)
	}
	if r := recs[2]; r.Submit != 120 || r.Size != 8 || r.Work != 3880 || r.Project != 2 {
		t.Fatalf("third record %+v", r)
	}
	want := AlibabaSummary{TasksRead: 3, NonTerminated: 1, Unrunnable: 2}
	if sum != want {
		t.Fatalf("summary %+v, want %+v", sum, want)
	}
}

func TestAlibabaPositionedErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"bad instance_num", lines("t,x,j,1,Terminated,1,2,1,1"), "alibaba row 1: bad instance_num"},
		{"bad start_time", lines("t,1,j,1,Terminated,x,2,1,1"), "alibaba row 1: bad start_time"},
		{"bad end_time", lines("t,1,j,1,Terminated,1,x,1,1"), "alibaba row 1: bad end_time"},
		{"short row", lines("t,1,j,1,Terminated"), "alibaba row 1: 5 columns"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ar := NewAlibabaReader(strings.NewReader(tc.in))
			_, err := ar.Next()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want it to contain %q", err, tc.want)
			}
		})
	}
}

func TestAlibabaGzipInput(t *testing.T) {
	in := lines("t,2,j,1,Terminated,5,65,1,1")
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte(in))
	zw.Close()
	recs, _ := drainAlibaba(t, &buf)
	if len(recs) != 1 || recs[0].Size != 2 || recs[0].Work != 60 {
		t.Fatalf("gzipped alibaba input read as %+v", recs)
	}
}

// TestVendoredFixtures drains the committed corpus samples end to end and
// pins their record counts, so a fixture or adapter regression is loud.
func TestVendoredFixtures(t *testing.T) {
	cases := []struct {
		file string
		borg bool
		want int
	}{
		{"testdata/sample.csv.gz", true, 284},
		{"testdata/job_events.csv.gz", true, 261},
		{"testdata/batch_task.csv.gz", false, 416},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			f, err := os.Open(tc.file)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			var recs []trace.Record
			if tc.borg {
				var sum BorgSummary
				recs, sum = drainBorg(t, f)
				if sum.JobsRead != len(recs) {
					t.Fatalf("summary says %d jobs read, got %d", sum.JobsRead, len(recs))
				}
			} else {
				var sum AlibabaSummary
				recs, sum = drainAlibaba(t, f)
				if sum.TasksRead != len(recs) {
					t.Fatalf("summary says %d tasks read, got %d", sum.TasksRead, len(recs))
				}
			}
			checkStream(t, recs)
			if len(recs) != tc.want {
				t.Fatalf("fixture yields %d records, want %d", len(recs), tc.want)
			}
		})
	}
}

func TestSummaryStrings(t *testing.T) {
	b := BorgSummary{JobsRead: 3, JobsSkipped: 1}.String()
	if !strings.Contains(b, "3 jobs read") || !strings.Contains(b, "1 skipped") {
		t.Fatalf("borg summary renders %q", b)
	}
	a := AlibabaSummary{TasksRead: 2, NonTerminated: 5}.String()
	if !strings.Contains(a, "2 tasks read") || !strings.Contains(a, "5 non-terminated") {
		t.Fatalf("alibaba summary renders %q", a)
	}
}
