// Package tracecorpus reads real production cluster traces as streams of
// native trace records, bridging the gap between the simulator's synthetic
// and SWF/CSV inputs and the multi-week corpora the warehouse-scale
// literature evaluates on: the Google/Borg ClusterData events tables
// (job-granularity and task-granularity) and the Alibaba cluster-trace
// batch-task format.
//
// Both adapters are streaming and gzip-aware (content-sniffed, see
// trace.MaybeGzip): memory is bounded by the number of concurrently pending
// jobs — never by trace length — so a 25M-job month fits in a constant-size
// working set. Because the simulator consumes records in non-decreasing
// Submit order while production traces serialize *events* (a job's identity
// is only complete at its terminal event, long after it submitted), each
// adapter runs a watermark join: completed jobs buffer in a min-heap on
// Submit and are released only once no pending or future job can precede
// them. The emitted stream is therefore submit-ordered and byte-for-byte
// deterministic for a given input.
//
// Faithful-reader principle, matching the SWF importer: every imported job
// is rigid, and class structure is imposed downstream by the source layer's
// Relabel transform (the paper's §IV-A heuristics). Fields the single-
// resource simulator cannot represent (CPU/memory requests, priorities,
// machine constraints) are not consumed; DESIGN.md tabulates exactly what
// is and is not read. Every silent decision — skipped jobs, defaulted
// widths, resubmissions — is counted in a Summary so imports are auditable.
package tracecorpus

import (
	"container/heap"
	"fmt"
	"strings"

	"hybridsched/internal/trace"
)

// pendingRec is one completed job waiting behind the watermark: the record
// plus the ordering keys (submit in native trace units, then completion
// sequence for a stable tie-break).
type pendingRec struct {
	key int64 // submit instant in the trace's native unit (µs for Borg, s for Alibaba)
	seq int   // completion order, so equal submits pop deterministically
	rec trace.Record
}

// recHeap is a min-heap of completed records ordered by (key, seq).
type recHeap []pendingRec

func (h recHeap) Len() int { return len(h) }
func (h recHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].seq < h[j].seq
}
func (h recHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *recHeap) Push(x any)        { *h = append(*h, x.(pendingRec)) }
func (h *recHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h recHeap) peek() pendingRec   { return h[0] }
func (h *recHeap) push(p pendingRec) { heap.Push(h, p) }
func (h *recHeap) pop() pendingRec   { return heap.Pop(h).(pendingRec) }

// int64Heap is a min-heap of submit instants, used with lazy deletion to
// track the earliest still-pending submission.
type int64Heap []int64

func (h int64Heap) Len() int           { return len(h) }
func (h int64Heap) Less(i, j int) bool { return h[i] < h[j] }
func (h int64Heap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *int64Heap) Push(x any)        { *h = append(*h, x.(int64)) }
func (h *int64Heap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h *int64Heap) push(v int64)      { heap.Push(h, v) }
func (h *int64Heap) pop() int64        { return heap.Pop(h).(int64) }
func (h int64Heap) peek() int64        { return h[0] }

// projectTable interns foreign grouping keys (Borg user names, Alibaba job
// names) as small sequential project IDs, in order of first appearance, so
// the source layer's project-based Relabel heuristics see a stable, dense
// project space. Memory is bounded by the number of distinct keys.
type projectTable map[string]int

func (t projectTable) idFor(key string) int {
	if id, ok := t[key]; ok {
		return id
	}
	id := len(t) + 1
	t[strings.Clone(key)] = id // the caller's string may share a reused row buffer
	return id
}

// posErr renders a positioned adapter error: every malformed row reports the
// 1-based row it came from, so tracegen -validate can point at the offender.
func posErr(format, file string, row int, args ...any) error {
	return fmt.Errorf("tracecorpus: %s row %d: %s", file, row, fmt.Sprintf(format, args...))
}
