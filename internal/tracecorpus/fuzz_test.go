package tracecorpus

import (
	"bytes"
	"io"
	"testing"

	"hybridsched/internal/job"
	"hybridsched/internal/trace"
)

// fuzzDrain pulls a reader dry, checking the invariants every adapter must
// hold on arbitrary input: no panic, sticky errors, and on the success path
// submit-ordered, sequential-ID, Validate-clean, all-rigid records.
func fuzzDrain(t *testing.T, next func() (trace.Record, error)) ([]trace.Record, error) {
	t.Helper()
	var recs []trace.Record
	last := int64(0)
	for {
		rec, err := next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			if _, again := next(); again == nil {
				t.Fatal("error not sticky")
			}
			return recs, err
		}
		if rec.ID != len(recs)+1 {
			t.Fatalf("record %d has ID %d, want sequential IDs", len(recs), rec.ID)
		}
		if rec.Submit < last {
			t.Fatalf("job %d submits at %ds after %ds", rec.ID, rec.Submit, last)
		}
		last = rec.Submit
		if rec.Class != job.Rigid {
			t.Fatalf("adapter emitted non-rigid record %+v", rec)
		}
		if verr := rec.Validate(); verr != nil {
			t.Fatalf("adapter emitted invalid record %+v: %v", rec, verr)
		}
		recs = append(recs, rec)
	}
}

// FuzzBorg: the ClusterData adapter must never panic and must only emit
// records satisfying the Source contract, whatever bytes arrive.
func FuzzBorg(f *testing.F) {
	f.Add([]byte("1000000,,10,0,alice,1,jn,ln\n2000000,,10,1,alice,1,jn,ln\n9000000,,10,4,alice,1,jn,ln\n"))
	f.Add([]byte("1000000,,10,0,4001,0,bob,2,0,0.5,0.25,0.0,0\n" +
		"2000000,,10,0,4001,1,bob,2,0,0.5,0.25,0.0,0\n" +
		"9000000,,10,0,4001,4,bob,2,0,0.5,0.25,0.0,0\n"))
	f.Add([]byte(""))
	f.Add([]byte("oops,,10,0,a,1,jn,ln\n"))
	f.Add([]byte("1000000,,10,9,a,1,jn,ln\n"))
	f.Add([]byte("1,2,3\n"))
	f.Add([]byte("\x1f\x8b"))
	f.Fuzz(func(t *testing.T, data []byte) {
		br := NewBorgReader(bytes.NewReader(data))
		recs, err := fuzzDrain(t, br.Next)
		if err == nil && br.Summary().JobsRead != len(recs) {
			t.Fatalf("summary says %d jobs read, got %d", br.Summary().JobsRead, len(recs))
		}
	})
}

// FuzzAlibaba: same contract for the batch_task adapter.
func FuzzAlibaba(f *testing.F) {
	f.Add([]byte("t1,4,j_a,1,Terminated,100,250,100,0.5\nt2,1,j_a,1,Running,300,0,100,0.5\n"))
	f.Add([]byte("t1,8,j_b,1,Terminated,120,4000\n"))
	f.Add([]byte(""))
	f.Add([]byte("t,x,j,1,Terminated,1,2,1,1\n"))
	f.Add([]byte("t,1,j,1,Terminated,0,0,1,1\n"))
	f.Add([]byte("\x1f\x8b\x08"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ar := NewAlibabaReader(bytes.NewReader(data))
		recs, err := fuzzDrain(t, ar.Next)
		if err == nil && ar.Summary().TasksRead != len(recs) {
			t.Fatalf("summary says %d tasks read, got %d", ar.Summary().TasksRead, len(recs))
		}
	})
}
