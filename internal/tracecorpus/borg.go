package tracecorpus

import (
	"encoding/csv"
	"io"
	"math"
	"strconv"
	"strings"

	"hybridsched/internal/job"
	"hybridsched/internal/trace"
)

// Google/Borg ClusterData event types (job_events and task_events tables
// share the encoding).
const (
	borgSubmit        = 0
	borgSchedule      = 1
	borgEvict         = 2
	borgFail          = 3
	borgFinish        = 4
	borgKill          = 5
	borgLost          = 6
	borgUpdatePending = 7
	borgUpdateRunning = 8
)

// Column counts of the two supported ClusterData events tables. The dialect
// is fixed by the first data row and every later row must match it.
const (
	borgJobCols  = 8  // timestamp,missing,jobID,event,user,class,jobname,logicalname
	borgTaskCols = 13 // timestamp,missing,jobID,taskIndex,machine,event,user,class,priority,cpu,mem,disk,constraint
)

// microsPerSec converts ClusterData microsecond timestamps to simulator
// seconds.
const microsPerSec = 1_000_000

// BorgSummary reports what a Borg import did, making the adapter's silent
// decisions auditable (the SWFSummary idea applied to the events join).
type BorgSummary struct {
	// JobsRead is the number of records emitted.
	JobsRead int
	// JobsSkipped counts jobs that reached a terminal state but produced no
	// record: never scheduled, terminated without a FINISH (failed, killed,
	// lost), zero or absurd runtime, or a terminal event for a job the trace
	// never submitted.
	JobsSkipped int
	// Incomplete counts jobs still pending when the trace ended; they are
	// dropped (their runtime is unknowable).
	Incomplete int
	// Retries counts task re-submissions after a terminal task event
	// (task-granularity input only).
	Retries int
	// SubmitsDefaulted counts jobs whose first observed event was not
	// SUBMIT (they entered the trace window mid-flight); their submit
	// instant is taken from that first event.
	SubmitsDefaulted int
	// WidthDefaulted counts records imported from job-granularity input,
	// which carries no per-task information: their size defaults to 1.
	WidthDefaulted int
}

// String renders the summary as one human-readable line.
func (s BorgSummary) String() string {
	return "borg: " + strconv.Itoa(s.JobsRead) + " jobs read (all rigid), " +
		strconv.Itoa(s.JobsSkipped) + " skipped, " +
		strconv.Itoa(s.Incomplete) + " incomplete at EOF; " +
		strconv.Itoa(s.Retries) + " task retries, defaults: " +
		strconv.Itoa(s.SubmitsDefaulted) + " submits, " +
		strconv.Itoa(s.WidthDefaulted) + " widths"
}

// borgJob is the join state of one pending job.
type borgJob struct {
	submit   int64 // µs, first SUBMIT (or first event seen)
	schedule int64 // µs, first SCHEDULE; -1 while unscheduled
	end      int64 // µs, latest terminal event (task granularity)
	user     string
	// Task-granularity state; nil for job-granularity input.
	tasks       map[int64]bool // task index -> live (true) / terminated (false)
	outstanding int            // live tasks
	sawFinish   bool           // at least one task (or the job) FINISHed
}

// BorgReader streams a Google/Borg ClusterData events table — job_events
// (8 columns) or task_events (13 columns), plain or gzipped — as native
// trace records, one per completed job, in non-decreasing Submit order.
//
// The trace serializes events, not jobs, so the reader runs a streaming
// watermark join: SUBMIT opens a pending entry, SCHEDULE stamps the start,
// and the terminal event completes the job (task-granularity input
// additionally counts distinct task indices as the job's width and waits for
// every live task to terminate). Completed jobs buffer in a min-heap keyed
// by submit instant and are released only when no pending or future job can
// precede them — memory is bounded by the number of concurrently pending
// jobs, never by trace length. Record IDs are assigned sequentially in
// emission order (the trace's own job IDs key the join but can repeat across
// resubmits); the submitting user interns to a dense Project ID in order of
// first appearance so project-based Relabel heuristics apply downstream.
// Every imported job is rigid with Estimate = Work; scheduling class,
// priority, resource requests, and machine fields are not consumed.
//
// Errors are sticky and positioned (row numbers), matching the CSV and SWF
// readers. Summary may be consulted at any point and is complete once Next
// has returned io.EOF.
type BorgReader struct {
	cr   *csv.Reader
	row  int
	cols int // fixed by the first data row

	pending     map[int64]*borgJob
	minSubmit   int64Heap     // pending submit instants, lazily deleted
	submitCount map[int64]int // live pending entries per submit instant
	projects    projectTable

	out         recHeap
	seq         int   // completion counter, tie-break for equal submits
	lastEventUS int64 // most recent event timestamp
	lastEmitUS  int64 // submit instant of the last emitted record
	nextID      int

	eof bool
	err error
	sum BorgSummary
}

// NewBorgReader returns a streaming reader over a ClusterData events table.
func NewBorgReader(r io.Reader) *BorgReader {
	cr := csv.NewReader(trace.MaybeGzip(r))
	cr.FieldsPerRecord = -1 // dialect checked per row against the first
	cr.ReuseRecord = true
	return &BorgReader{
		cr:          cr,
		pending:     map[int64]*borgJob{},
		submitCount: map[int64]int{},
		projects:    projectTable{},
	}
}

// Summary returns the import counters accumulated so far.
func (r *BorgReader) Summary() BorgSummary { return r.sum }

// Row returns the number of input rows consumed so far, for positioning
// caller-side diagnostics.
func (r *BorgReader) Row() int { return r.row }

// Next returns the next imported job, io.EOF at the end of the trace, or a
// positioned parse error (all sticky).
func (r *BorgReader) Next() (trace.Record, error) {
	if r.err != nil {
		return trace.Record{}, r.err
	}
	for {
		if rec, ok := r.tryEmit(); ok {
			return rec, nil
		}
		if r.eof {
			r.err = io.EOF
			return trace.Record{}, io.EOF
		}
		row, err := r.cr.Read()
		if err == io.EOF {
			r.eof = true
			r.sum.Incomplete += len(r.pending)
			r.pending = map[int64]*borgJob{} // unblock the watermark: drain the heap
			r.submitCount = map[int64]int{}
			r.minSubmit = nil
			continue
		}
		if err != nil {
			r.err = err
			return trace.Record{}, err
		}
		r.row++
		if err := r.process(row); err != nil {
			r.err = err
			return trace.Record{}, err
		}
	}
}

// tryEmit pops the completed-jobs heap while its head is safe: no pending
// job submitted earlier, and (events being time-ordered) no future job can
// have either. At EOF everything left is safe.
func (r *BorgReader) tryEmit() (trace.Record, bool) {
	if r.out.Len() == 0 {
		return trace.Record{}, false
	}
	if !r.eof {
		safe := r.lastEventUS
		for r.minSubmit.Len() > 0 && r.submitCount[r.minSubmit.peek()] == 0 {
			delete(r.submitCount, r.minSubmit.peek())
			r.minSubmit.pop()
		}
		if r.minSubmit.Len() > 0 && r.minSubmit.peek() < safe {
			safe = r.minSubmit.peek()
		}
		if r.out.peek().key > safe {
			return trace.Record{}, false
		}
	}
	p := r.out.pop()
	r.nextID++
	rec := p.rec
	rec.ID = r.nextID
	r.lastEmitUS = p.key
	r.sum.JobsRead++
	return rec, true
}

// process applies one event row to the join state.
func (r *BorgReader) process(row []string) error {
	if r.cols == 0 {
		switch len(row) {
		case borgJobCols, borgTaskCols:
			r.cols = len(row)
		default:
			return posErr("%d columns, want %d (job events) or %d (task events)",
				"borg", r.row, len(row), borgJobCols, borgTaskCols)
		}
	}
	if len(row) != r.cols {
		return posErr("%d columns, want %d", "borg", r.row, len(row), r.cols)
	}
	ts, err := strconv.ParseInt(row[0], 10, 64)
	if err != nil || ts < 0 {
		return posErr("bad timestamp %q", "borg", r.row, row[0])
	}
	id, err := strconv.ParseInt(row[2], 10, 64)
	if err != nil {
		return posErr("bad job ID %q", "borg", r.row, row[2])
	}
	evField, userField := 3, 4
	var taskIndex int64
	if r.cols == borgTaskCols {
		evField, userField = 5, 6
		taskIndex, err = strconv.ParseInt(row[3], 10, 64)
		if err != nil || taskIndex < 0 {
			return posErr("bad task index %q", "borg", r.row, row[3])
		}
	}
	ev, err := strconv.Atoi(row[evField])
	if err != nil || ev < borgSubmit || ev > borgUpdateRunning {
		return posErr("bad event type %q", "borg", r.row, row[evField])
	}
	r.lastEventUS = ts
	if r.cols == borgTaskCols {
		return r.taskEvent(ts, id, taskIndex, ev, row[userField])
	}
	return r.jobEvent(ts, id, ev, row[userField])
}

// open creates a pending entry for a job first observed at ts. It enforces
// the time-order invariant the watermark emission relies on: a new job may
// not submit before a record that was already released.
func (r *BorgReader) open(ts, id int64, user string, defaulted bool) (*borgJob, error) {
	if ts < r.lastEmitUS {
		return nil, posErr("job %d submits at %dµs, before already-emitted records (trace not time-ordered)",
			"borg", r.row, id, ts)
	}
	j := &borgJob{submit: ts, schedule: -1, user: strings.Clone(user)}
	r.pending[id] = j
	r.minSubmit.push(ts)
	r.submitCount[ts]++
	if defaulted {
		r.sum.SubmitsDefaulted++
	}
	return j, nil
}

// drop removes a pending entry without emitting.
func (r *BorgReader) drop(id int64, j *borgJob) {
	delete(r.pending, id)
	r.submitCount[j.submit]--
}

// finish completes a job: the record enters the emission heap if the join
// produced a usable (scheduled, positive-runtime) job, else it is counted.
// It reports whether a record was produced.
func (r *BorgReader) finish(id int64, j *borgJob, endUS int64, width int) bool {
	r.drop(id, j)
	runUS := endUS - j.schedule
	if j.schedule < 0 || runUS <= 0 || runUS > math.MaxInt64/2 {
		r.sum.JobsSkipped++
		return false
	}
	work := (runUS + microsPerSec - 1) / microsPerSec // ceil: sub-second jobs round up to 1s
	submit := j.submit / microsPerSec
	r.seq++
	r.out.push(pendingRec{key: j.submit, seq: r.seq, rec: trace.Record{
		Project:    r.projects.idFor(j.user),
		Class:      job.Rigid,
		Submit:     submit,
		Size:       width,
		MinSize:    width,
		Work:       work,
		Estimate:   work,
		NoticeTime: submit,
		EstArrival: submit,
	}})
	return true
}

// jobEvent processes one job-granularity event.
func (r *BorgReader) jobEvent(ts, id int64, ev int, user string) error {
	j := r.pending[id]
	switch ev {
	case borgSubmit:
		if j == nil {
			_, err := r.open(ts, id, user, false)
			return err
		}
	case borgSchedule:
		if j == nil {
			var err error
			if j, err = r.open(ts, id, user, true); err != nil {
				return err
			}
		}
		if j.schedule < 0 {
			j.schedule = ts
		}
	case borgFinish:
		if j == nil {
			r.sum.JobsSkipped++ // terminal for a job the window never opened
			return nil
		}
		if r.finish(id, j, ts, 1) {
			r.sum.WidthDefaulted++ // job events carry no task info: size 1
		}
	case borgFail, borgKill, borgLost:
		if j != nil {
			r.drop(id, j)
			r.sum.JobsSkipped++
		}
	}
	// EVICT and the UPDATE events change nothing the join consumes.
	return nil
}

// taskEvent processes one task-granularity event, aggregating tasks into
// their job: width = distinct task indices, start = first task SCHEDULE,
// end = last terminal, complete when no live task remains.
func (r *BorgReader) taskEvent(ts, id, task int64, ev int, user string) error {
	j := r.pending[id]
	if j == nil {
		switch ev {
		case borgFail, borgKill, borgLost, borgFinish, borgEvict,
			borgUpdatePending, borgUpdateRunning:
			return nil // stragglers of a job already finalized or never opened
		}
		var err error
		if j, err = r.open(ts, id, user, ev != borgSubmit); err != nil {
			return err
		}
		j.tasks = map[int64]bool{}
	}
	if j.tasks == nil {
		j.tasks = map[int64]bool{}
	}
	switch ev {
	case borgSubmit:
		live, seen := j.tasks[task]
		if !seen {
			j.tasks[task] = true
			j.outstanding++
		} else if !live {
			j.tasks[task] = true
			j.outstanding++
			r.sum.Retries++
		}
	case borgSchedule:
		if _, seen := j.tasks[task]; !seen { // scheduled mid-window: count it
			j.tasks[task] = true
			j.outstanding++
		}
		if j.schedule < 0 {
			j.schedule = ts
		}
	case borgFinish, borgFail, borgKill, borgLost:
		if live, seen := j.tasks[task]; seen && live {
			j.tasks[task] = false
			j.outstanding--
			if ts > j.end {
				j.end = ts
			}
			if ev == borgFinish {
				j.sawFinish = true
			}
			if j.outstanding == 0 {
				if j.sawFinish {
					r.finish(id, j, j.end, len(j.tasks))
				} else {
					r.drop(id, j)
					r.sum.JobsSkipped++
				}
			}
		}
	}
	// EVICTed tasks stay live (the cluster resubmits them); UPDATEs are not
	// consumed.
	return nil
}
