package faults

import (
	"fmt"

	"hybridsched/internal/sim"
	"hybridsched/internal/snapshot"
	"hybridsched/internal/stats"
)

// Timer payload tags: the injector's own failure markers, and a wrapper for
// the inner mechanism's payloads.
const (
	timerTagFail  uint8 = 1
	timerTagInner uint8 = 2
)

func (i *Injector) snapshotInner() (sim.SnapshotMechanism, error) {
	sm, ok := i.inner.(sim.SnapshotMechanism)
	if !ok {
		return nil, fmt.Errorf("faults: wrapped mechanism %q does not support snapshots", i.inner.Name())
	}
	return sm, nil
}

// EncodeSnapshotState serializes the injector's randomness position and
// strike counters, then chains to the wrapped mechanism. The RNG is captured
// as its raw generator state, so repair-time draws after a restore continue
// the exact stream of the uninterrupted run. A custom RepairTime function
// cannot be serialized and makes the run non-checkpointable.
func (i *Injector) EncodeSnapshotState(e *snapshot.Enc) error {
	if i.cfg.RepairTime != nil {
		return fmt.Errorf("faults: runs with a custom RepairTime function cannot be checkpointed")
	}
	sm, err := i.snapshotInner()
	if err != nil {
		return err
	}
	st := i.rng.State()
	e.U32(uint32(st.Tap))
	e.U32(uint32(st.Feed))
	for _, v := range st.Vec {
		e.I64(v)
	}
	e.Int(i.Failures)
	e.Int(i.Misses)
	return sm.EncodeSnapshotState(e)
}

// DecodeSnapshotState restores the injector and then the wrapped mechanism.
// The injector's fields are validated first but committed only after the
// inner mechanism restored successfully, so a failure anywhere leaves both
// layers untouched.
func (i *Injector) DecodeSnapshotState(d *snapshot.Dec, rc *sim.RestoreContext) error {
	if i.cfg.RepairTime != nil {
		return fmt.Errorf("faults: runs with a custom RepairTime function cannot be restored")
	}
	sm, err := i.snapshotInner()
	if err != nil {
		return err
	}
	var st stats.RNGState
	st.Tap = int32(d.U32())
	st.Feed = int32(d.U32())
	for k := range st.Vec {
		st.Vec[k] = d.I64()
	}
	failures := d.Int()
	misses := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if err := stats.NewRNG(0).SetState(st); err != nil {
		return d.Fail(err) // probe: reject invalid state before committing
	}
	if err := sm.DecodeSnapshotState(d, rc); err != nil {
		return err
	}
	if err := i.rng.SetState(st); err != nil {
		return err // unreachable: validated by the probe above
	}
	i.Failures = failures
	i.Misses = misses
	return nil
}

// EncodeTimerPayload serializes the injector's failure markers itself and
// wraps everything else for the inner mechanism.
func (i *Injector) EncodeTimerPayload(e *snapshot.Enc, payload any) error {
	if p, ok := payload.(failTag); ok {
		e.U8(timerTagFail)
		e.Int(p.seq)
		return nil
	}
	sm, err := i.snapshotInner()
	if err != nil {
		return err
	}
	e.U8(timerTagInner)
	return sm.EncodeTimerPayload(e, payload)
}

// DecodeTimerPayload reads one payload written by EncodeTimerPayload.
func (i *Injector) DecodeTimerPayload(d *snapshot.Dec) (any, error) {
	switch tag := d.U8(); tag {
	case timerTagFail:
		return failTag{seq: d.Int()}, d.Err()
	case timerTagInner:
		sm, err := i.snapshotInner()
		if err != nil {
			return nil, err
		}
		return sm.DecodeTimerPayload(d)
	default:
		if err := d.Err(); err != nil {
			return nil, err
		}
		return nil, d.Failf("faults: unknown timer tag %d", tag)
	}
}
