// Package faults injects node failures into a simulation, exercising the
// checkpoint/restart path that motivates Daly-optimal checkpointing in the
// paper (§IV-B): a failure interrupts the job running on the failed node —
// rigid jobs fall back to their last checkpoint, malleable jobs lose only
// their setup (completed tasks are durable), on-demand jobs are assumed to
// rerun from scratch.
//
// The injector is a Mechanism decorator: it wraps any sim.Mechanism
// (including the six paper mechanisms and the baseline), draws a failure
// timeline from an exponential inter-arrival process at construction time
// (so runs stay deterministic and the event queue stays finite), and
// forwards every other engine callback to the wrapped mechanism unchanged.
//
// Simplifications, documented per DESIGN.md: failed nodes repair instantly
// (repair time is negligible against the MTBF at system scale), and a
// failure strikes a running job weighted by its node count — the larger the
// allocation, the larger the failure cross-section.
package faults

import (
	"hybridsched/internal/job"
	"hybridsched/internal/nodeset"
	"hybridsched/internal/sim"
	"hybridsched/internal/stats"
)

// Config parameterizes the injector.
type Config struct {
	// MTBF is the system mean time between failures, in seconds.
	MTBF float64
	// Seed drives the failure timeline and victim choice.
	Seed int64
	// Horizon bounds the pre-drawn failure timeline, in seconds of virtual
	// time from the first event. Failures past the horizon never fire.
	Horizon int64
}

// Injector wraps a mechanism with fault injection. It satisfies
// sim.Mechanism.
type Injector struct {
	inner sim.Mechanism
	cfg   Config
	rng   *stats.RNG
	e     *sim.Engine

	// Failures counts injected failures that struck a running job.
	Failures int
	// Misses counts failure instants with no running victim.
	Misses int
}

// failTag is the injector's private timer payload.
type failTag struct{ seq int }

// Wrap decorates inner with fault injection under cfg. MTBF and Horizon must
// be positive.
func Wrap(inner sim.Mechanism, cfg Config) *Injector {
	if cfg.MTBF <= 0 {
		panic("faults: MTBF must be positive")
	}
	if cfg.Horizon <= 0 {
		panic("faults: Horizon must be positive")
	}
	return &Injector{inner: inner, cfg: cfg, rng: stats.NewRNG(cfg.Seed)}
}

// Name reports the wrapped mechanism plus the injection marker.
func (i *Injector) Name() string { return i.inner.Name() + "+faults" }

// Attach wires both layers and lays out the failure timeline within the
// horizon.
func (i *Injector) Attach(e *sim.Engine) {
	i.e = e
	i.inner.Attach(e)
	t := e.Now()
	seq := 0
	for {
		t += int64(i.rng.ExpFloat64(i.cfg.MTBF))
		if t-e.Now() > i.cfg.Horizon {
			break
		}
		e.ScheduleTimer(t, failTag{seq: seq})
		seq++
	}
}

// QueueOnDemandFirst defers to the wrapped mechanism.
func (i *Injector) QueueOnDemandFirst() bool { return i.inner.QueueOnDemandFirst() }

// FlexibleMalleable defers to the wrapped mechanism.
func (i *Injector) FlexibleMalleable() bool { return i.inner.FlexibleMalleable() }

// OnNotice forwards.
func (i *Injector) OnNotice(j *job.Job) { i.inner.OnNotice(j) }

// OnODArrival forwards.
func (i *Injector) OnODArrival(j *job.Job) bool { return i.inner.OnODArrival(j) }

// OnJobCompleted forwards.
func (i *Injector) OnJobCompleted(j *job.Job, freed *nodeset.Set) {
	i.inner.OnJobCompleted(j, freed)
}

// OnWarningExpired forwards.
func (i *Injector) OnWarningExpired(j *job.Job, claim int, freed *nodeset.Set) {
	i.inner.OnWarningExpired(j, claim, freed)
}

// OnODStarted forwards.
func (i *Injector) OnODStarted(j *job.Job) { i.inner.OnODStarted(j) }

// OnTimer intercepts failure events and forwards everything else.
func (i *Injector) OnTimer(payload any) {
	if _, ok := payload.(failTag); ok {
		i.injectFailure()
		return
	}
	i.inner.OnTimer(payload)
}

// injectFailure strikes one running job, chosen with probability
// proportional to its node count (every node is equally likely to fail).
func (i *Injector) injectFailure() {
	running := i.e.Running()
	total := 0
	for _, r := range running {
		total += r.CurSize
	}
	if total == 0 {
		i.Misses++
		return
	}
	pick := int(i.rng.UniformInt64(0, int64(total)-1))
	var victim *job.Job
	for _, r := range running {
		if pick < r.CurSize {
			victim = r
			break
		}
		pick -= r.CurSize
	}
	i.Failures++
	if victim.Class == job.Malleable {
		i.e.PreemptMalleableNow(victim)
	} else {
		i.e.PreemptRigid(victim)
	}
}
