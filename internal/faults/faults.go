// Package faults injects node failures into a simulation, exercising the
// checkpoint/restart path that motivates Daly-optimal checkpointing in the
// paper (§IV-B): a failure interrupts the job holding the failed node —
// rigid jobs fall back to their last checkpoint, malleable jobs lose only
// their setup (completed tasks are durable), on-demand jobs are assumed to
// rerun from scratch.
//
// The injector remains a Mechanism decorator for compatibility — Wrap any
// sim.Mechanism and hand the result to the engine — but the failure
// semantics now live in the engine's availability model (sim.Engine.FailNode
// and the cluster's down pool): each failure strikes one uniformly random
// node of the system, and with Config.MeanRepair set the node leaves service
// for a drawn repair time, shrinking the capacity every scheduler pass plans
// against until the engine-level repair event restores it. With MeanRepair
// zero the injector keeps the instant-repair shortcut — failed nodes rejoin
// the free pool immediately and the cluster never shrinks — which DESIGN.md
// documents as an explicit simplification. Note that victim selection also
// changed with the rewrite: the old decorator always struck a running job
// (weighted by its node count), while a uniform node strike misses whenever
// it lands on a free or reserved node, so even MeanRepair=0 results are not
// numerically comparable with pre-availability releases.
//
// The failure timeline is an exponential inter-arrival process drawn at
// attach time (so runs stay deterministic and the event queue stays finite).
// Arrival instants accumulate in float64 and are rounded once per event:
// truncating each draw independently — the pre-availability behavior —
// floors every inter-arrival gap, which collapses sub-second draws to zero
// (duplicate same-instant failures) and inflates the effective rate by up to
// a second per failure, a large systematic bias at small MTBFs.
package faults

import (
	"math"

	"hybridsched/internal/job"
	"hybridsched/internal/nodeset"
	"hybridsched/internal/sim"
	"hybridsched/internal/stats"
)

// Config parameterizes the injector.
type Config struct {
	// MTBF is the system mean time between failures, in seconds.
	MTBF float64
	// Seed drives the failure timeline, victim choice, and repair draws.
	Seed int64
	// Horizon bounds the pre-drawn failure timeline, in seconds of virtual
	// time from the first event. Failures past the horizon never fire.
	Horizon int64
	// MeanRepair is the mean node repair time in seconds. When positive,
	// each failed node leaves service for a repair time drawn from RepairTime
	// (exponential with this mean by default, clamped to at least 1 s). Zero
	// keeps the legacy instant-repair shortcut: the victim job is interrupted
	// but capacity never shrinks.
	MeanRepair float64
	// RepairTime overrides the repair-time draw (consulted only when
	// MeanRepair is positive): it maps one uniform variate u in [0,1) —
	// drawn from the injector's seeded stream, so runs stay deterministic —
	// to a repair time in seconds (an inverse CDF; ignore u for a fixed
	// repair time). The default draws Exponential(MeanRepair).
	RepairTime func(u float64) float64
}

// Injector wraps a mechanism with fault injection. It satisfies
// sim.Mechanism.
type Injector struct {
	//schedlint:snapfield wrapped mechanism snapshots itself via snapshotInner; the wrapper only chains
	inner sim.Mechanism
	cfg   Config
	rng   *stats.RNG
	//schedlint:snapfield engine pointer, re-attached by Attach on restore
	e *sim.Engine

	// Failures counts injected failures that struck a job holding the failed
	// node, over the whole pre-drawn timeline. The engine mirrors the
	// counters into the run's metrics.Report (FailuresInjected /
	// FailureMisses) clipped to the observation window — timeline events
	// after the last completion keep counting here but not there — so sweeps
	// and CSV emitters see horizon-independent telemetry.
	Failures int
	// Misses counts failure instants whose node held no job (free, reserved,
	// or already down), over the whole pre-drawn timeline.
	Misses int
}

// failTag is the injector's private timer payload.
type failTag struct{ seq int }

// Wrap decorates inner with fault injection under cfg. MTBF and Horizon must
// be positive; MeanRepair must be non-negative.
func Wrap(inner sim.Mechanism, cfg Config) *Injector {
	if cfg.MTBF <= 0 {
		panic("faults: MTBF must be positive")
	}
	if cfg.Horizon <= 0 {
		panic("faults: Horizon must be positive")
	}
	if cfg.MeanRepair < 0 {
		panic("faults: MeanRepair must be non-negative")
	}
	return &Injector{inner: inner, cfg: cfg, rng: stats.NewRNG(cfg.Seed)}
}

// timeline draws the failure instants of an exponential process with the
// given mean inter-arrival, as offsets in [0, horizon]. The running sum
// accumulates in float64 and each event instant is rounded once, so the mean
// spacing matches the MTBF instead of being floored per draw.
func timeline(rng *stats.RNG, mtbf float64, horizon int64) []int64 {
	var out []int64
	t := 0.0
	for {
		t += rng.ExpFloat64(mtbf)
		it := int64(math.Round(t))
		if it > horizon {
			return out
		}
		out = append(out, it)
	}
}

// Attach wires both layers and lays out the failure timeline within the
// horizon. Failures dispatch at the availability model's fault priority —
// after completions, before notices and arrivals — matching the ordering of
// failures scheduled directly with Engine.ScheduleNodeFailure.
func (i *Injector) Attach(e *sim.Engine) {
	i.e = e
	i.inner.Attach(e)
	for seq, off := range timeline(i.rng, i.cfg.MTBF, i.cfg.Horizon) {
		e.ScheduleFaultTimer(e.Now()+off, failTag{seq: seq})
	}
}

// Name reports the wrapped mechanism plus the injection marker.
func (i *Injector) Name() string { return i.inner.Name() + "+faults" }

// QueueOnDemandFirst defers to the wrapped mechanism.
func (i *Injector) QueueOnDemandFirst() bool { return i.inner.QueueOnDemandFirst() }

// FlexibleMalleable defers to the wrapped mechanism.
func (i *Injector) FlexibleMalleable() bool { return i.inner.FlexibleMalleable() }

// OnNotice forwards.
func (i *Injector) OnNotice(j *job.Job) { i.inner.OnNotice(j) }

// OnODArrival forwards.
func (i *Injector) OnODArrival(j *job.Job) bool { return i.inner.OnODArrival(j) }

// OnJobCompleted forwards.
func (i *Injector) OnJobCompleted(j *job.Job, freed *nodeset.Set) {
	i.inner.OnJobCompleted(j, freed)
}

// OnWarningExpired forwards.
func (i *Injector) OnWarningExpired(j *job.Job, claim int, freed *nodeset.Set) {
	i.inner.OnWarningExpired(j, claim, freed)
}

// OnODStarted forwards.
func (i *Injector) OnODStarted(j *job.Job) { i.inner.OnODStarted(j) }

// OnTimer intercepts failure events and forwards everything else.
func (i *Injector) OnTimer(payload any) {
	if _, ok := payload.(failTag); ok {
		i.injectFailure()
		return
	}
	i.inner.OnTimer(payload)
}

// injectFailure fails one uniformly random node of the system — every node
// is equally likely to fail, so a running job's strike probability is
// proportional to its allocation — through the engine's availability model.
func (i *Injector) injectFailure() {
	node := int(i.rng.UniformInt64(0, int64(i.e.Nodes())-1))
	repair := int64(0)
	if i.cfg.MeanRepair > 0 {
		var d float64
		if i.cfg.RepairTime != nil {
			d = i.cfg.RepairTime(i.rng.Float64())
		} else {
			d = i.rng.ExpFloat64(i.cfg.MeanRepair)
		}
		repair = int64(math.Round(d))
		if repair < 1 {
			repair = 1
		}
	}
	if i.e.FailNode(node, repair) {
		i.Failures++
	} else {
		i.Misses++
	}
}
