package faults

import (
	"testing"

	"hybridsched/internal/checkpoint"
	"hybridsched/internal/core"
	"hybridsched/internal/job"
	"hybridsched/internal/sim"
	"hybridsched/internal/simtime"
	"hybridsched/internal/stats"
	"hybridsched/internal/trace"
	"hybridsched/internal/workload"
)

func genSmall(t *testing.T, seed int64) []*job.Job {
	t.Helper()
	recs, err := workload.Generate(workload.Config{
		Seed: seed, Nodes: 512, Weeks: 1, Projects: 20, TargetLoad: 0.8,
		MinJobSize:  16,
		SizeBuckets: []int{16, 32, 64, 128},
		SizeWeights: []float64{0.4, 0.3, 0.2, 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return trace.Materialize(recs, func(size int) checkpoint.Plan {
		return checkpoint.NewPlan(size, 24*3600, 1.0)
	})
}

func TestWrapValidation(t *testing.T) {
	for _, cfg := range []Config{{MTBF: 0, Horizon: 1}, {MTBF: 1, Horizon: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %+v", cfg)
				}
			}()
			Wrap(sim.Baseline{}, cfg)
		}()
	}
}

func TestInjectorName(t *testing.T) {
	inj := Wrap(sim.Baseline{}, Config{MTBF: 3600, Seed: 1, Horizon: simtime.Week})
	if inj.Name() != "FCFS/EASY+faults" {
		t.Fatalf("name %q", inj.Name())
	}
}

func TestFailuresInterruptJobsAndEverythingCompletes(t *testing.T) {
	jobs := genSmall(t, 1)
	inj := Wrap(sim.Baseline{}, Config{MTBF: 2 * 3600, Seed: 7, Horizon: 4 * simtime.Week})
	e, err := sim.New(sim.Config{Nodes: 512, Validate: true}, jobs, inj)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != len(jobs) {
		t.Fatalf("completed %d/%d under failures", rep.Jobs, len(jobs))
	}
	if inj.Failures == 0 {
		t.Fatal("no failures injected with a 2h MTBF over a week")
	}
	// Failures discard work: some computation must be lost (rigid jobs
	// falling back to checkpoints).
	if rep.Breakdown.Lost <= 0 {
		t.Fatal("failures lost no computation")
	}
	// Every injected failure preempted a job, so the per-class preemption
	// ratios cannot all be zero.
	if rep.Rigid.PreemptedJobs+rep.Malleable.PreemptedJobs+rep.OnDemand.PreemptedJobs == 0 {
		t.Fatal("failures preempted nobody")
	}
}

func TestFaultsComposeWithMechanisms(t *testing.T) {
	jobs := genSmall(t, 2)
	mech, err := core.ByName("CUA&SPAA", core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inj := Wrap(mech, Config{MTBF: 4 * 3600, Seed: 3, Horizon: 4 * simtime.Week})
	e, err := sim.New(sim.Config{Nodes: 512, Validate: true}, jobs, inj)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != len(jobs) {
		t.Fatalf("completed %d/%d", rep.Jobs, len(jobs))
	}
	// The wrapped mechanism still serves on-demand jobs promptly.
	if rep.InstantStartRate < 0.5 {
		t.Fatalf("instant rate %.2f collapsed under faults", rep.InstantStartRate)
	}
}

func TestDeterministicTimeline(t *testing.T) {
	run := func() (int, float64) {
		jobs := genSmall(t, 4)
		inj := Wrap(sim.Baseline{}, Config{MTBF: 3 * 3600, Seed: 11, Horizon: 4 * simtime.Week})
		e, _ := sim.New(sim.Config{Nodes: 512}, jobs, inj)
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return inj.Failures, rep.Utilization
	}
	f1, u1 := run()
	f2, u2 := run()
	if f1 != f2 || u1 != u2 {
		t.Fatalf("nondeterministic: %d/%g vs %d/%g", f1, u1, f2, u2)
	}
}

func TestMoreFrequentCheckpointsLoseLessUnderFaults(t *testing.T) {
	// The Fig. 7 insight under real failures: checkpointing twice as often
	// as Daly-optimal should not lose more work.
	lost := func(mult float64) float64 {
		recs, err := workload.Generate(workload.Config{
			Seed: 5, Nodes: 512, Weeks: 1, Projects: 20, TargetLoad: 0.7,
			MinJobSize:  16,
			SizeBuckets: []int{16, 32, 64, 128},
			SizeWeights: []float64{0.4, 0.3, 0.2, 0.1},
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs := trace.Materialize(recs, func(size int) checkpoint.Plan {
			return checkpoint.NewPlan(size, 6*3600, mult)
		})
		inj := Wrap(sim.Baseline{}, Config{MTBF: 6 * 3600, Seed: 13, Horizon: 4 * simtime.Week})
		e, _ := sim.New(sim.Config{Nodes: 512}, jobs, inj)
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.Breakdown.Lost
	}
	frequent := lost(0.5)
	rare := lost(2.0)
	if frequent > rare {
		t.Fatalf("frequent checkpoints lost more (%.4f) than rare (%.4f)", frequent, rare)
	}
}

func TestTimelineMeanInterArrivalUnbiased(t *testing.T) {
	// Regression for the truncation bias: each draw used to be floored
	// independently (int64(ExpFloat64(mtbf)) per step), so at a 0.9 s MTBF
	// the mean inter-arrival collapsed to ~0.49 s — an ~2x inflated failure
	// rate and duplicate same-instant events. Accumulating in float64 and
	// rounding once per event keeps the realized rate at the configured MTBF;
	// this pins it within 5%, far tighter than the old bias.
	const (
		mtbf    = 0.9
		horizon = int64(200_000)
	)
	tl := timeline(stats.NewRNG(42), mtbf, horizon)
	if len(tl) == 0 {
		t.Fatal("empty timeline")
	}
	mean := float64(horizon) / float64(len(tl))
	if mean < mtbf*0.95 || mean > mtbf*1.05 {
		t.Fatalf("mean inter-arrival %.4f s, want %.1f s +-5%% (truncation bias regressed)", mean, mtbf)
	}
	// The bias also shows at moderate MTBFs: flooring shaves E[frac] = ~0.5 s
	// off every gap. At a 5 s MTBF that is a 10% rate inflation; the rounded
	// accumulator must stay within 3%.
	tl = timeline(stats.NewRNG(7), 5, 2_000_000)
	mean = 2_000_000 / float64(len(tl))
	if mean < 5*0.97 || mean > 5*1.03 {
		t.Fatalf("mean inter-arrival %.3f s at MTBF 5 s, want +-3%%", mean)
	}
	for i := 1; i < len(tl); i++ {
		if tl[i] < tl[i-1] {
			t.Fatal("timeline not sorted")
		}
	}
}

func TestFailureTelemetryReachesReport(t *testing.T) {
	jobs := genSmall(t, 9)
	inj := Wrap(sim.Baseline{}, Config{MTBF: 2 * 3600, Seed: 5, Horizon: 4 * simtime.Week})
	e, err := sim.New(sim.Config{Nodes: 512, Validate: true}, jobs, inj)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if inj.Failures == 0 {
		t.Fatal("no failures fired")
	}
	// The report clips the counters to the observation window; the injector
	// counts its whole pre-drawn timeline, which runs past the last
	// completion to the horizon. So report <= injector, and every in-window
	// strike must be visible.
	if rep.FailuresInjected == 0 || rep.FailuresInjected > inj.Failures {
		t.Fatalf("report strikes %d outside (0, %d]", rep.FailuresInjected, inj.Failures)
	}
	if rep.FailureMisses > inj.Misses {
		t.Fatalf("report misses %d exceed injector %d", rep.FailureMisses, inj.Misses)
	}
	if rep.FailuresInjected+rep.FailureMisses >= inj.Failures+inj.Misses {
		t.Fatalf("window clipping had no effect: report %d+%d vs injector %d+%d (horizon tail should be excluded)",
			rep.FailuresInjected, rep.FailureMisses, inj.Failures, inj.Misses)
	}
	// Instant repair: the cluster never shrank.
	if rep.DownNodeSeconds != 0 {
		t.Fatalf("instant-repair run recorded %d down node-seconds", rep.DownNodeSeconds)
	}
}

func TestRepairTimeShrinksCapacity(t *testing.T) {
	jobs := genSmall(t, 3)
	inj := Wrap(sim.Baseline{}, Config{
		MTBF: 3 * 3600, Seed: 11, Horizon: 4 * simtime.Week, MeanRepair: 2 * 3600,
	})
	e, err := sim.New(sim.Config{Nodes: 512, Validate: true}, jobs, inj)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != len(jobs) {
		t.Fatalf("completed %d/%d under repairs", rep.Jobs, len(jobs))
	}
	if rep.DownNodeSeconds == 0 {
		t.Fatal("repair windows removed no capacity")
	}
	if rep.Breakdown.Unavailable <= 0 {
		t.Fatal("unavailable share missing from the breakdown")
	}
	if e.DownCount() != 0 {
		t.Fatalf("%d nodes still down after the run", e.DownCount())
	}
}

func TestCustomRepairDistribution(t *testing.T) {
	jobs := genSmall(t, 3)
	const fixed = 1800.0
	inj := Wrap(sim.Baseline{}, Config{
		MTBF: 3 * 3600, Seed: 11, Horizon: 4 * simtime.Week,
		MeanRepair: fixed,
		RepairTime: func(float64) float64 { return fixed },
	})
	e, err := sim.New(sim.Config{Nodes: 512, Validate: true}, jobs, inj)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Every failure on an in-service node removes exactly one node for
	// exactly 1800 s, so the downtime integral is bounded by the failure
	// count (downtime before the first submission falls outside the
	// observation window, so the bound is not exact).
	total := rep.FailuresInjected + rep.FailureMisses
	if rep.DownNodeSeconds <= 0 {
		t.Fatal("fixed repair removed no capacity")
	}
	if rep.DownNodeSeconds > int64(total)*int64(fixed) {
		t.Fatalf("downtime %d exceeds %d failures x %g", rep.DownNodeSeconds, total, fixed)
	}
}

func TestDeterministicTimelineWithRepairs(t *testing.T) {
	run := func() (int, int, int64, float64) {
		jobs := genSmall(t, 4)
		inj := Wrap(sim.Baseline{}, Config{
			MTBF: 3 * 3600, Seed: 11, Horizon: 4 * simtime.Week, MeanRepair: 3600,
		})
		e, _ := sim.New(sim.Config{Nodes: 512}, jobs, inj)
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return inj.Failures, inj.Misses, rep.DownNodeSeconds, rep.Utilization
	}
	f1, m1, d1, u1 := run()
	f2, m2, d2, u2 := run()
	if f1 != f2 || m1 != m2 || d1 != d2 || u1 != u2 {
		t.Fatalf("nondeterministic: %d/%d/%d/%g vs %d/%d/%d/%g", f1, m1, d1, u1, f2, m2, d2, u2)
	}
}

func TestWrapRejectsNegativeRepair(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Wrap(sim.Baseline{}, Config{MTBF: 3600, Horizon: 1, MeanRepair: -1})
}
