package faults

import (
	"testing"

	"hybridsched/internal/checkpoint"
	"hybridsched/internal/core"
	"hybridsched/internal/job"
	"hybridsched/internal/sim"
	"hybridsched/internal/simtime"
	"hybridsched/internal/trace"
	"hybridsched/internal/workload"
)

func genSmall(t *testing.T, seed int64) []*job.Job {
	t.Helper()
	recs, err := workload.Generate(workload.Config{
		Seed: seed, Nodes: 512, Weeks: 1, Projects: 20, TargetLoad: 0.8,
		MinJobSize:  16,
		SizeBuckets: []int{16, 32, 64, 128},
		SizeWeights: []float64{0.4, 0.3, 0.2, 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return trace.Materialize(recs, func(size int) checkpoint.Plan {
		return checkpoint.NewPlan(size, 24*3600, 1.0)
	})
}

func TestWrapValidation(t *testing.T) {
	for _, cfg := range []Config{{MTBF: 0, Horizon: 1}, {MTBF: 1, Horizon: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %+v", cfg)
				}
			}()
			Wrap(sim.Baseline{}, cfg)
		}()
	}
}

func TestInjectorName(t *testing.T) {
	inj := Wrap(sim.Baseline{}, Config{MTBF: 3600, Seed: 1, Horizon: simtime.Week})
	if inj.Name() != "FCFS/EASY+faults" {
		t.Fatalf("name %q", inj.Name())
	}
}

func TestFailuresInterruptJobsAndEverythingCompletes(t *testing.T) {
	jobs := genSmall(t, 1)
	inj := Wrap(sim.Baseline{}, Config{MTBF: 2 * 3600, Seed: 7, Horizon: 4 * simtime.Week})
	e, err := sim.New(sim.Config{Nodes: 512, Validate: true}, jobs, inj)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != len(jobs) {
		t.Fatalf("completed %d/%d under failures", rep.Jobs, len(jobs))
	}
	if inj.Failures == 0 {
		t.Fatal("no failures injected with a 2h MTBF over a week")
	}
	// Failures discard work: some computation must be lost (rigid jobs
	// falling back to checkpoints).
	if rep.Breakdown.Lost <= 0 {
		t.Fatal("failures lost no computation")
	}
	// Every injected failure preempted a job, so the per-class preemption
	// ratios cannot all be zero.
	if rep.Rigid.PreemptedJobs+rep.Malleable.PreemptedJobs+rep.OnDemand.PreemptedJobs == 0 {
		t.Fatal("failures preempted nobody")
	}
}

func TestFaultsComposeWithMechanisms(t *testing.T) {
	jobs := genSmall(t, 2)
	mech, err := core.ByName("CUA&SPAA", core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inj := Wrap(mech, Config{MTBF: 4 * 3600, Seed: 3, Horizon: 4 * simtime.Week})
	e, err := sim.New(sim.Config{Nodes: 512, Validate: true}, jobs, inj)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != len(jobs) {
		t.Fatalf("completed %d/%d", rep.Jobs, len(jobs))
	}
	// The wrapped mechanism still serves on-demand jobs promptly.
	if rep.InstantStartRate < 0.5 {
		t.Fatalf("instant rate %.2f collapsed under faults", rep.InstantStartRate)
	}
}

func TestDeterministicTimeline(t *testing.T) {
	run := func() (int, float64) {
		jobs := genSmall(t, 4)
		inj := Wrap(sim.Baseline{}, Config{MTBF: 3 * 3600, Seed: 11, Horizon: 4 * simtime.Week})
		e, _ := sim.New(sim.Config{Nodes: 512}, jobs, inj)
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return inj.Failures, rep.Utilization
	}
	f1, u1 := run()
	f2, u2 := run()
	if f1 != f2 || u1 != u2 {
		t.Fatalf("nondeterministic: %d/%g vs %d/%g", f1, u1, f2, u2)
	}
}

func TestMoreFrequentCheckpointsLoseLessUnderFaults(t *testing.T) {
	// The Fig. 7 insight under real failures: checkpointing twice as often
	// as Daly-optimal should not lose more work.
	lost := func(mult float64) float64 {
		recs, err := workload.Generate(workload.Config{
			Seed: 5, Nodes: 512, Weeks: 1, Projects: 20, TargetLoad: 0.7,
			MinJobSize:  16,
			SizeBuckets: []int{16, 32, 64, 128},
			SizeWeights: []float64{0.4, 0.3, 0.2, 0.1},
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs := trace.Materialize(recs, func(size int) checkpoint.Plan {
			return checkpoint.NewPlan(size, 6*3600, mult)
		})
		inj := Wrap(sim.Baseline{}, Config{MTBF: 6 * 3600, Seed: 13, Horizon: 4 * simtime.Week})
		e, _ := sim.New(sim.Config{Nodes: 512}, jobs, inj)
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.Breakdown.Lost
	}
	frequent := lost(0.5)
	rare := lost(2.0)
	if frequent > rare {
		t.Fatalf("frequent checkpoints lost more (%.4f) than rare (%.4f)", frequent, rare)
	}
}
