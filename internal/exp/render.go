package exp

import (
	"fmt"
	"io"
	"strings"
)

// table renders aligned plain-text tables for experiment reports.
type table struct {
	w      io.Writer
	header []string
	rows   [][]string
}

// newTable starts a table with the given column headers.
func newTable(w io.Writer, header ...string) *table {
	return &table{w: w, header: header}
}

// row appends one row; missing cells render empty.
func (t *table) row(cols ...string) { t.rows = append(t.rows, cols) }

// flush writes the table with aligned columns.
func (t *table) flush() {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cols []string) {
		parts := make([]string, len(t.header))
		for i := range t.header {
			c := ""
			if i < len(cols) {
				c = cols[i]
			}
			parts[i] = pad(c, width[i])
		}
		fmt.Fprintf(t.w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.header)
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", width[i])
	}
	line(rule)
	for _, r := range t.rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
