package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// table renders aligned plain-text tables for experiment reports.
type table struct {
	w      io.Writer
	header []string
	rows   [][]string
}

// newTable starts a table with the given column headers.
func newTable(w io.Writer, header ...string) *table {
	return &table{w: w, header: header}
}

// row appends one row; missing cells render empty.
func (t *table) row(cols ...string) { t.rows = append(t.rows, cols) }

// flush writes the table with aligned columns.
func (t *table) flush() {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cols []string) {
		parts := make([]string, len(t.header))
		for i := range t.header {
			c := ""
			if i < len(cols) {
				c = cols[i]
			}
			parts[i] = pad(c, width[i])
		}
		fmt.Fprintf(t.w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.header)
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", width[i])
	}
	line(rule)
	for _, r := range t.rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CellGroup tags a set of averaged cells with their experiment name for
// serialization.
type CellGroup struct {
	Experiment string
	Cells      []Cell
}

// WriteCellsCSV emits averaged experiment cells as CSV, one row per
// (variant, mechanism) data point, tagged with the experiment name. The
// columns hold the deterministic averaged metrics only; wall-clock decision
// latencies are excluded so output is stable across machines.
func WriteCellsCSV(w io.Writer, groups ...CellGroup) error {
	cw := csv.NewWriter(w)
	header := []string{
		"experiment", "variant", "mechanism", "seeds",
		"turnaround_h", "turnaround_rigid_h", "turnaround_ondemand_h", "turnaround_malleable_h",
		"utilization", "instant_start_rate", "strict_instant_start_rate",
		"preempt_rigid_ratio", "preempt_malleable_ratio",
		"lost_frac", "mean_start_delay_s",
		"failures", "failure_misses", "unavailable_frac",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, g := range groups {
		for _, c := range g.Cells {
			rec := []string{
				g.Experiment, c.Workload, c.Mechanism, strconv.Itoa(c.Seeds),
				f(c.TurnAllH), f(c.TurnRigidH), f(c.TurnODH), f(c.TurnMallH),
				f(c.Util), f(c.Instant), f(c.Strict),
				f(c.PreemptRigid), f(c.PreemptMall),
				f(c.LostFrac), f(c.MeanDelayS),
				f(c.Failures), f(c.Misses), f(c.DownFrac),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
