package exp

import (
	"fmt"
	"io"

	"hybridsched/internal/runner"
	"hybridsched/internal/simtime"
	"hybridsched/internal/workload"
)

// AblationResult is a generic one-factor sweep: one Cell per variant.
type AblationResult struct {
	Title string
	Cells []Cell
}

// Flatten returns the grid-ordered cells for serialization.
func (r AblationResult) Flatten() []Cell { return r.Cells }

// Render writes the sweep as a table.
func (r AblationResult) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", r.Title)
	tw := newTable(w, "variant", "turn (h)", "rigid (h)", "mall (h)",
		"util (%)", "instant (%)", "preempt R/M (%)")
	for _, c := range r.Cells {
		tw.row(c.Workload,
			fmt.Sprintf("%.1f", c.TurnAllH),
			fmt.Sprintf("%.1f", c.TurnRigidH),
			fmt.Sprintf("%.1f", c.TurnMallH),
			fmt.Sprintf("%.1f", 100*c.Util),
			fmt.Sprintf("%.1f", 100*c.Instant),
			fmt.Sprintf("%.2f/%.2f", 100*c.PreemptRigid, 100*c.PreemptMall))
	}
	tw.flush()
}

// AblationBackfillReserved compares CUA&SPAA with and without backfilling
// onto reserved nodes (the §III-B.1 option: squatters are preempted on
// arrival).
func AblationBackfillReserved(o Options) (AblationResult, error) {
	o = o.withDefaults()
	out := AblationResult{Title: "Ablation: backfill onto reserved nodes (CUA&SPAA, W2)"}
	var specs []runner.Spec
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		o.logf("ablation bfres: %s", name)
		specs = append(specs, o.cellSpecs("ablation-bfres", name, "CUA&SPAA", workload.W2,
			func(sp *runner.Spec) {
				sp.Core.BackfillReserved = on
				sp.BackfillReserved = on
			})...)
	}
	cells, err := o.runGrid(specs)
	if err != nil {
		return out, err
	}
	out.Cells = cells
	return out, nil
}

// AblationDirectedReturn compares N&PAA with and without the directed
// return-to-lender rule (§III-B.3): without it, returned nodes drop into the
// common pool and preempted jobs compete for them.
func AblationDirectedReturn(o Options) (AblationResult, error) {
	o = o.withDefaults()
	out := AblationResult{Title: "Ablation: directed return to lenders (N&PAA, W5)"}
	var specs []runner.Spec
	for _, on := range []bool{true, false} {
		name := "directed"
		if !on {
			name = "common-pool"
		}
		o.logf("ablation return: %s", name)
		specs = append(specs, o.cellSpecs("ablation-return", name, "N&PAA", workload.W5,
			func(sp *runner.Spec) { sp.Core.DirectedReturn = on })...)
	}
	cells, err := o.runGrid(specs)
	if err != nil {
		return out, err
	}
	out.Cells = cells
	return out, nil
}

// AblationMinSizeFraction sweeps the malleable minimum-size fraction
// (paper default 20 % of the maximum): smaller minima give SPAA more supply.
func AblationMinSizeFraction(o Options) (AblationResult, error) {
	o = o.withDefaults()
	out := AblationResult{Title: "Ablation: malleable min-size fraction (CUA&SPAA, W5)"}
	var specs []runner.Spec
	for _, frac := range []float64{0.1, 0.2, 0.3, 0.5} {
		name := fmt.Sprintf("%.0f%%", 100*frac)
		o.logf("ablation minsize: %s", name)
		specs = append(specs, o.cellSpecs("ablation-minsize", name, "CUA&SPAA", workload.W5,
			func(sp *runner.Spec) { sp.Workload.MalleableMinFrac = frac })...)
	}
	cells, err := o.runGrid(specs)
	if err != nil {
		return out, err
	}
	out.Cells = cells
	return out, nil
}

// AblationNoticeLead sweeps the advance-notice lead time for the collecting
// mechanisms (paper: 15-30 minutes; Obs. 12: earlier notice helps CUA).
func AblationNoticeLead(o Options) (AblationResult, error) {
	o = o.withDefaults()
	out := AblationResult{Title: "Ablation: advance-notice lead time (CUA&PAA, W2)"}
	var specs []runner.Spec
	for _, lead := range []int64{5, 15, 30, 60} {
		name := fmt.Sprintf("%dm", lead)
		o.logf("ablation lead: %s", name)
		specs = append(specs, o.cellSpecs("ablation-lead", name, "CUA&PAA", workload.W2,
			func(sp *runner.Spec) {
				sp.Workload.NoticeLeadMin = lead * simtime.Minute
				sp.Workload.NoticeLeadMax = 2 * lead * simtime.Minute
			})...)
	}
	cells, err := o.runGrid(specs)
	if err != nil {
		return out, err
	}
	out.Cells = cells
	return out, nil
}

// AblationQueuePolicy runs CUA&SPAA under different waiting-queue policies,
// exercising the pluggable-policy design the mechanisms are meant to be
// orthogonal to (§I).
func AblationQueuePolicy(o Options) (AblationResult, error) {
	o = o.withDefaults()
	out := AblationResult{Title: "Ablation: waiting-queue policy (CUA&SPAA, W5)"}
	var specs []runner.Spec
	for _, pol := range []string{"fcfs", "sjf", "wfp3"} {
		o.logf("ablation policy: %s", pol)
		specs = append(specs, o.cellSpecs("ablation-policy", pol, "CUA&SPAA", workload.W5,
			func(sp *runner.Spec) { sp.Policy = pol })...)
	}
	cells, err := o.runGrid(specs)
	if err != nil {
		return out, err
	}
	out.Cells = cells
	return out, nil
}
