package exp

import (
	"fmt"
	"io"

	"hybridsched/internal/core"
	"hybridsched/internal/simtime"
	"hybridsched/internal/workload"
)

// AblationResult is a generic one-factor sweep: one Cell per variant.
type AblationResult struct {
	Title string
	Cells []Cell
}

// Render writes the sweep as a table.
func (r AblationResult) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", r.Title)
	tw := newTable(w, "variant", "turn (h)", "rigid (h)", "mall (h)",
		"util (%)", "instant (%)", "preempt R/M (%)")
	for _, c := range r.Cells {
		tw.row(c.Workload,
			fmt.Sprintf("%.1f", c.TurnAllH),
			fmt.Sprintf("%.1f", c.TurnRigidH),
			fmt.Sprintf("%.1f", c.TurnMallH),
			fmt.Sprintf("%.1f", 100*c.Util),
			fmt.Sprintf("%.1f", 100*c.Instant),
			fmt.Sprintf("%.2f/%.2f", 100*c.PreemptRigid, 100*c.PreemptMall))
	}
	tw.flush()
}

// AblationBackfillReserved compares CUA&SPAA with and without backfilling
// onto reserved nodes (the §III-B.1 option: squatters are preempted on
// arrival).
func AblationBackfillReserved(o Options) (AblationResult, error) {
	o = o.withDefaults()
	out := AblationResult{Title: "Ablation: backfill onto reserved nodes (CUA&SPAA, W2)"}
	for _, on := range []bool{false, true} {
		coreCfg := core.DefaultConfig()
		coreCfg.BackfillReserved = on
		simCfg := simCfgFor(o)
		simCfg.BackfillReserved = on
		name := "off"
		if on {
			name = "on"
		}
		o.logf("ablation bfres: %s", name)
		cell, err := o.runCell("CUA&SPAA", name, workload.W2, coreCfg, simCfg)
		if err != nil {
			return out, err
		}
		out.Cells = append(out.Cells, cell)
	}
	return out, nil
}

// AblationDirectedReturn compares N&PAA with and without the directed
// return-to-lender rule (§III-B.3): without it, returned nodes drop into the
// common pool and preempted jobs compete for them.
func AblationDirectedReturn(o Options) (AblationResult, error) {
	o = o.withDefaults()
	out := AblationResult{Title: "Ablation: directed return to lenders (N&PAA, W5)"}
	for _, on := range []bool{true, false} {
		coreCfg := core.DefaultConfig()
		coreCfg.DirectedReturn = on
		name := "directed"
		if !on {
			name = "common-pool"
		}
		o.logf("ablation return: %s", name)
		cell, err := o.runCell("N&PAA", name, workload.W5, coreCfg, simCfgFor(o))
		if err != nil {
			return out, err
		}
		out.Cells = append(out.Cells, cell)
	}
	return out, nil
}

// AblationMinSizeFraction sweeps the malleable minimum-size fraction
// (paper default 20 % of the maximum): smaller minima give SPAA more supply.
func AblationMinSizeFraction(o Options) (AblationResult, error) {
	o = o.withDefaults()
	out := AblationResult{Title: "Ablation: malleable min-size fraction (CUA&SPAA, W5)"}
	for _, frac := range []float64{0.1, 0.2, 0.3, 0.5} {
		name := fmt.Sprintf("%.0f%%", 100*frac)
		o.logf("ablation minsize: %s", name)
		cell := Cell{Mechanism: "CUA&SPAA", Workload: name}
		for s := 0; s < o.Seeds; s++ {
			cfg := o.workloadConfig(o.BaseSeed+int64(s), workload.W5)
			cfg.MalleableMinFrac = frac
			recs, err := workload.Generate(cfg)
			if err != nil {
				return out, err
			}
			rep, err := o.simulate(recs, "CUA&SPAA", core.DefaultConfig(), simCfgFor(o))
			if err != nil {
				return out, err
			}
			cell.accumulate(rep)
		}
		cell.finish()
		out.Cells = append(out.Cells, cell)
	}
	return out, nil
}

// AblationNoticeLead sweeps the advance-notice lead time for the collecting
// mechanisms (paper: 15-30 minutes; Obs. 12: earlier notice helps CUA).
func AblationNoticeLead(o Options) (AblationResult, error) {
	o = o.withDefaults()
	out := AblationResult{Title: "Ablation: advance-notice lead time (CUA&PAA, W2)"}
	for _, lead := range []int64{5, 15, 30, 60} {
		name := fmt.Sprintf("%dm", lead)
		o.logf("ablation lead: %s", name)
		cell := Cell{Mechanism: "CUA&PAA", Workload: name}
		for s := 0; s < o.Seeds; s++ {
			cfg := o.workloadConfig(o.BaseSeed+int64(s), workload.W2)
			cfg.NoticeLeadMin = lead * simtime.Minute
			cfg.NoticeLeadMax = 2 * lead * simtime.Minute
			recs, err := workload.Generate(cfg)
			if err != nil {
				return out, err
			}
			rep, err := o.simulate(recs, "CUA&PAA", core.DefaultConfig(), simCfgFor(o))
			if err != nil {
				return out, err
			}
			cell.accumulate(rep)
		}
		cell.finish()
		out.Cells = append(out.Cells, cell)
	}
	return out, nil
}

// AblationQueuePolicy runs CUA&SPAA under different waiting-queue policies,
// exercising the pluggable-policy design the mechanisms are meant to be
// orthogonal to (§I).
func AblationQueuePolicy(o Options) (AblationResult, error) {
	o = o.withDefaults()
	out := AblationResult{Title: "Ablation: waiting-queue policy (CUA&SPAA, W5)"}
	for _, pol := range []string{"fcfs", "sjf", "wfp3"} {
		o.logf("ablation policy: %s", pol)
		oo := o
		oo.Policy = pol
		cell, err := oo.runCell("CUA&SPAA", pol, workload.W5, core.DefaultConfig(), simCfgFor(oo))
		if err != nil {
			return out, err
		}
		out.Cells = append(out.Cells, cell)
	}
	return out, nil
}
