package exp

import (
	"fmt"
	"io"

	"hybridsched/internal/runner"
	"hybridsched/internal/simtime"
	"hybridsched/internal/workload"
)

// --- Resilience: degraded-capacity comparison --------------------------------

// Default resilience axes: an aggressive and a paper-default failure rate,
// crossed with the legacy instant-repair shortcut and a one-hour mean repair.
var (
	defaultFaultMTBFs   = []float64{6 * 3600, 24 * 3600}
	defaultFaultRepairs = []float64{0, 3600}
)

// resilienceCkptMults is the checkpoint-interval axis of the grid: Daly
// optimal and the Fig. 7 "twice as frequent" point, where the interplay with
// real repair times is most visible.
var resilienceCkptMults = []float64{1.0, 0.5}

// ResilienceResult holds one Cell per (variant, mechanism), where a variant
// is one (MTBF, repair, checkpoint-multiplier) coordinate.
type ResilienceResult struct {
	Variants []string
	Cells    map[string]map[string]Cell // variant -> mechanism -> cell
}

// resilienceKey renders one grid coordinate as a stable variant label.
func resilienceKey(mtbf, repair, mult float64) string {
	rep := "inst"
	if repair > 0 {
		rep = simtime.Format(int64(repair))
	}
	return fmt.Sprintf("mtbf%s/rep%s/ckpt%.0f%%",
		simtime.Format(int64(mtbf)), rep, 100*mult)
}

// Resilience sweeps the availability model over every scheduler: failure
// MTBF × mean repair time × checkpoint-interval multiplier × the 7
// mechanisms, under the W5 mix. The checkpoint plans use the swept failure
// MTBF (a system that fails every 6 h checkpoints for a 6 h MTBF), so the
// grid shows how each mechanism degrades as capacity becomes unreliable —
// the scenario family the instant-repair shortcut used to hide.
func Resilience(o Options) (ResilienceResult, error) {
	o = o.withDefaults()
	mtbfs := o.FaultMTBFs
	if len(mtbfs) == 0 {
		mtbfs = defaultFaultMTBFs
	}
	repairs := o.FaultRepairs
	if len(repairs) == 0 {
		repairs = defaultFaultRepairs
	}
	var specs []runner.Spec
	var variants []string
	for _, mtbf := range mtbfs {
		for _, repair := range repairs {
			for _, mult := range resilienceCkptMults {
				variant := resilienceKey(mtbf, repair, mult)
				variants = append(variants, variant)
				for _, mech := range Mechanisms() {
					specs = append(specs, o.cellSpecs("resilience", variant, mech, workload.W5,
						func(sp *runner.Spec) {
							sp.FaultMTBF = mtbf
							sp.FaultMeanRepair = repair
							sp.MTBF = mtbf // Daly plans match the injected rate
							sp.CkptFreqMult = mult
							sp.Drains = o.Drains
						})...)
				}
			}
		}
	}
	o.logf("resilience: %d cells (%d mechanisms x %d mtbf x %d repair x %d ckpt x %d seeds)",
		len(specs), len(Mechanisms()), len(mtbfs), len(repairs), len(resilienceCkptMults), o.Seeds)
	cells, err := o.runGrid(specs)
	if err != nil {
		return ResilienceResult{Variants: variants}, err
	}
	return ResilienceResult{Variants: variants, Cells: cellMap(cells)}, nil
}

// Flatten returns the grid-ordered cells for serialization.
func (r ResilienceResult) Flatten() []Cell {
	var out []Cell
	for _, v := range r.Variants {
		for _, mech := range Mechanisms() {
			if c, ok := r.Cells[v][mech]; ok {
				out = append(out, c)
			}
		}
	}
	return out
}

// Render writes the resilience comparison, one row per (variant, mechanism).
func (r ResilienceResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Resilience: scheduling under node failures and repair windows\n")
	fmt.Fprintf(w, "(failures strike uniformly random nodes; rep=inst is the legacy\n")
	fmt.Fprintf(w, "instant-repair shortcut, so capacity never shrinks there)\n")
	tw := newTable(w, "variant", "mechanism", "turn (h)", "util (%)", "instant (%)",
		"lost (%)", "down (%)", "failures", "misses")
	for _, v := range r.Variants {
		for _, mech := range Mechanisms() {
			c, ok := r.Cells[v][mech]
			if !ok {
				continue
			}
			tw.row(v, mech,
				fmt.Sprintf("%.1f", c.TurnAllH),
				fmt.Sprintf("%.1f", 100*c.Util),
				fmt.Sprintf("%.1f", 100*c.Instant),
				fmt.Sprintf("%.2f", 100*c.LostFrac),
				fmt.Sprintf("%.2f", 100*c.DownFrac),
				fmt.Sprintf("%.1f", c.Failures),
				fmt.Sprintf("%.1f", c.Misses))
		}
	}
	tw.flush()
}
