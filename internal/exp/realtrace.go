package exp

import (
	"fmt"
	"io"
	"strings"

	"hybridsched/internal/runner"
	"hybridsched/internal/workload"
)

// --- RealTrace: mechanism comparison over a production trace ----------------

// defaultRealTraceShards is the shard axis when Options.Shards is unset: the
// whole trace plus four quarter-shards.
const defaultRealTraceShards = 4

// RealTraceResult holds one Cell per (variant, mechanism), where a variant
// is the whole trace or one of its hash-shards.
type RealTraceResult struct {
	Variants []string
	Cells    map[string]map[string]Cell // variant -> mechanism -> cell
}

// RealTrace runs every mechanism over a real-trace source pipeline
// (Options.Source, typically a borg: or alibaba: head with a relabel
// transform) and over each of its Options.Shards deterministic hash-shards —
// the grid that takes the paper's mechanism comparison off the synthetic
// model and onto production corpora. Sharding is by stable job-ID hash (see
// the source package's Shard), so the variant set is reproducible across
// runs and worker counts, and the shard cells show how each mechanism
// behaves as the same workload thins out.
func RealTrace(o Options) (RealTraceResult, error) {
	o = o.withDefaults()
	if o.Source == "" {
		return RealTraceResult{}, fmt.Errorf(
			"exp: realtrace needs a source spec, e.g. -source 'borg:trace.csv.gz|relabel:paper'")
	}
	if strings.Contains(o.Source, "+") {
		return RealTraceResult{}, fmt.Errorf(
			"exp: realtrace cannot shard a merged source spec %q (a shard transform attaches only to the last pipeline of a merge); shard the pipelines individually instead", o.Source)
	}
	shards := o.Shards
	if shards < 1 {
		shards = defaultRealTraceShards
	}
	variants := []string{"whole"}
	specFor := map[string]string{"whole": o.Source}
	for i := 0; shards > 1 && i < shards; i++ {
		v := fmt.Sprintf("shard%d/%d", i, shards)
		variants = append(variants, v)
		specFor[v] = fmt.Sprintf("%s|shard:%d/%d", o.Source, i, shards)
	}
	var specs []runner.Spec
	for _, v := range variants {
		src := specFor[v]
		for _, mech := range Mechanisms() {
			specs = append(specs, o.cellSpecs("realtrace", v, mech, workload.W5,
				func(sp *runner.Spec) { sp.Source = src })...)
		}
	}
	o.logf("realtrace: %d cells (%d mechanisms x %d variants) over %q",
		len(specs), len(Mechanisms()), len(variants), o.Source)
	cells, err := o.runGrid(specs)
	if err != nil {
		return RealTraceResult{Variants: variants}, err
	}
	return RealTraceResult{Variants: variants, Cells: cellMap(cells)}, nil
}

// Flatten returns the grid-ordered cells for serialization.
func (r RealTraceResult) Flatten() []Cell {
	var out []Cell
	for _, v := range r.Variants {
		for _, mech := range Mechanisms() {
			if c, ok := r.Cells[v][mech]; ok {
				out = append(out, c)
			}
		}
	}
	return out
}

// Render writes the real-trace comparison, one row per (variant, mechanism).
func (r RealTraceResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Real-trace replay: mechanisms over a production trace and its shards\n")
	fmt.Fprintf(w, "(shardI/N keeps the jobs whose ID hashes into shard I of N; the\n")
	fmt.Fprintf(w, "union of all N shards is exactly the whole trace)\n")
	tw := newTable(w, "variant", "mechanism", "turn (h)", "util (%)", "instant (%)",
		"preempt r/m (%)", "lost (%)")
	for _, v := range r.Variants {
		for _, mech := range Mechanisms() {
			c, ok := r.Cells[v][mech]
			if !ok {
				continue
			}
			tw.row(v, mech,
				fmt.Sprintf("%.1f", c.TurnAllH),
				fmt.Sprintf("%.1f", 100*c.Util),
				fmt.Sprintf("%.1f", 100*c.Instant),
				fmt.Sprintf("%.1f/%.1f", 100*c.PreemptRigid, 100*c.PreemptMall),
				fmt.Sprintf("%.2f", 100*c.LostFrac))
		}
	}
	tw.flush()
}
