package exp

import (
	"bytes"
	"strings"
	"testing"

	"hybridsched/internal/runner"
)

// tiny returns options small enough for unit tests while still running the
// full hybrid machinery.
func tiny() Options {
	return Options{Nodes: 512, Weeks: 1, Seeds: 2, BaseSeed: 100}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Nodes != 4392 || o.Weeks != 4 || o.Seeds != 10 || o.CkptFreqMult != 1.0 || o.Policy != "fcfs" {
		t.Fatalf("defaults wrong: %+v", o)
	}
}

func TestMechanismsList(t *testing.T) {
	m := Mechanisms()
	if len(m) != 7 || m[0] != "baseline" || m[6] != "CUP&SPAA" {
		t.Fatalf("mechanism list %v", m)
	}
}

func TestTableI(t *testing.T) {
	r, err := TableI(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if r.Summary.Jobs == 0 || r.Summary.Nodes != 512 {
		t.Fatalf("summary %+v", r.Summary)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Number of Jobs") {
		t.Fatal("render missing rows")
	}
}

func TestFigure3(t *testing.T) {
	r, err := Figure3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range r.Buckets {
		total += b.Jobs
	}
	if total == 0 {
		t.Fatal("no jobs bucketed")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "size range") {
		t.Fatal("render missing header")
	}
}

func TestFigure4(t *testing.T) {
	o := tiny()
	r, err := Figure4(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Traces) != o.Seeds {
		t.Fatalf("traces %d", len(r.Traces))
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "on-demand") {
		t.Fatal("render missing class column")
	}
}

func TestFigure5(t *testing.T) {
	r, err := Figure5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("series %d", len(r.Series))
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "wk1") {
		t.Fatal("render missing weeks")
	}
}

func TestTableIIAndRender(t *testing.T) {
	r, err := TableII(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if r.Cell.Seeds != 2 || r.Cell.Util <= 0 || r.Cell.Util > 1 {
		t.Fatalf("cell %+v", r.Cell)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "System Util.") || !strings.Contains(out, "83.93%") {
		t.Fatal("render must include the paper reference column")
	}
}

func TestTableIII(t *testing.T) {
	r := TableIII()
	if len(r.Names) != 5 || r.Mixes[0][0] != 0.70 {
		t.Fatalf("table III wrong: %+v", r)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "W5") {
		t.Fatal("render missing W5")
	}
}

func TestFigure6Small(t *testing.T) {
	o := tiny()
	o.Seeds = 1
	r, err := Figure6(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Workloads) != 5 {
		t.Fatalf("workloads %v", r.Workloads)
	}
	for _, wl := range r.Workloads {
		for _, mech := range Mechanisms() {
			c, ok := r.Cells[wl][mech]
			if !ok {
				t.Fatalf("missing cell %s/%s", wl, mech)
			}
			if c.Util <= 0 || c.Util > 1 {
				t.Fatalf("cell %s/%s util %g", wl, mech, c.Util)
			}
			// Obs. 1/9: every mechanism beats the baseline's instant rate.
			if mech != "baseline" && c.Instant < r.Cells[wl]["baseline"].Instant {
				t.Errorf("%s/%s instant %.2f below baseline %.2f",
					wl, mech, c.Instant, r.Cells[wl]["baseline"].Instant)
			}
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"avg job turnaround", "system utilization", "malleable preemption"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing panel %q", want)
		}
	}
}

func TestFigure7Small(t *testing.T) {
	o := tiny()
	o.Seeds = 1
	r, err := Figure7(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Multipliers) != 4 {
		t.Fatalf("multipliers %v", r.Multipliers)
	}
	for _, m := range r.Multipliers {
		if len(r.Cells[multKey(m)]) != 6 {
			t.Fatalf("missing mechanisms for %s", multKey(m))
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "50%") {
		t.Fatal("render missing multiplier column")
	}
}

func TestDecisionLatencySmall(t *testing.T) {
	o := tiny()
	o.Seeds = 1
	r, err := DecisionLatency(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 6 {
		t.Fatalf("cells %d", len(r.Cells))
	}
	for _, c := range r.Cells {
		// Obs. 10: decisions far below the 10-30 s production budget. Allow
		// slack for CI noise but anything near a second is a regression.
		if c.MaxDecMs > 1000 {
			t.Errorf("%s max decision %.1f ms", c.Mechanism, c.MaxDecMs)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "<10ms") {
		t.Fatal("render missing the 10ms verdict column")
	}
}

func TestAblations(t *testing.T) {
	o := tiny()
	o.Seeds = 1
	type run func(Options) (AblationResult, error)
	for name, fn := range map[string]run{
		"backfill": AblationBackfillReserved,
		"return":   AblationDirectedReturn,
		"minsize":  AblationMinSizeFraction,
		"lead":     AblationNoticeLead,
		"policy":   AblationQueuePolicy,
	} {
		r, err := fn(o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(r.Cells) < 2 {
			t.Fatalf("%s: only %d variants", name, len(r.Cells))
		}
		var buf bytes.Buffer
		r.Render(&buf)
		if !strings.Contains(buf.String(), "Ablation") {
			t.Fatalf("%s: render missing title", name)
		}
	}
}

func TestGridDeterminismAcrossWorkers(t *testing.T) {
	run := func(workers int) AblationResult {
		o := tiny()
		o.Seeds = 2
		o.Workers = workers
		r, err := AblationQueuePolicy(o)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	serial, parallel := run(1), run(8)
	var a, b bytes.Buffer
	if err := WriteCellsCSV(&a, CellGroup{"policy", serial.Cells}); err != nil {
		t.Fatal(err)
	}
	if err := WriteCellsCSV(&b, CellGroup{"policy", parallel.Cells}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("workers=8 cells differ from workers=1:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestFlattenAndCellsCSV(t *testing.T) {
	o := tiny()
	o.Seeds = 1
	r, err := TableII(o)
	if err != nil {
		t.Fatal(err)
	}
	cells := r.Flatten()
	if len(cells) != 1 || cells[0].Mechanism != "baseline" {
		t.Fatalf("flatten %+v", cells)
	}
	var buf bytes.Buffer
	if err := WriteCellsCSV(&buf, CellGroup{"tableii", cells}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "experiment,variant,mechanism,seeds") {
		t.Fatalf("csv header wrong: %s", out)
	}
	if !strings.Contains(out, "tableii,W5,baseline,1") {
		t.Fatalf("csv row missing: %s", out)
	}
}

func TestProgressLogging(t *testing.T) {
	o := tiny()
	o.Seeds = 1
	var log bytes.Buffer
	o.Progress = &log
	if _, err := AblationQueuePolicy(o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "ablation policy") {
		t.Fatal("progress log empty")
	}
}

func TestResilience(t *testing.T) {
	o := tiny()
	o.Seeds = 1
	o.FaultMTBFs = []float64{6 * 3600}
	o.FaultRepairs = []float64{0, 3600}
	r, err := Resilience(o)
	if err != nil {
		t.Fatal(err)
	}
	// 1 MTBF x 2 repairs x 2 checkpoint multipliers.
	if len(r.Variants) != 4 {
		t.Fatalf("variants %v", r.Variants)
	}
	cells := r.Flatten()
	if len(cells) != 4*len(Mechanisms()) {
		t.Fatalf("cells %d, want %d", len(cells), 4*len(Mechanisms()))
	}
	var struck, down bool
	for _, c := range cells {
		if c.Failures > 0 {
			struck = true
		}
		if c.DownFrac > 0 {
			down = true
		}
	}
	if !struck {
		t.Fatal("no cell recorded failures at a 6h MTBF")
	}
	if !down {
		t.Fatal("no repair-enabled cell recorded downtime")
	}
	// Instant-repair variants must record no downtime.
	for _, v := range r.Variants {
		if !strings.Contains(v, "repinst") {
			continue
		}
		for _, c := range r.Cells[v] {
			if c.DownFrac != 0 {
				t.Fatalf("instant-repair variant %s has down share %g", v, c.DownFrac)
			}
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "failures") {
		t.Fatal("render missing failures column")
	}
	var csv bytes.Buffer
	if err := WriteCellsCSV(&csv, CellGroup{Experiment: "resilience", Cells: cells}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "unavailable_frac") {
		t.Fatal("cell CSV missing availability columns")
	}
}

func TestResilienceWithDrains(t *testing.T) {
	o := tiny()
	o.Seeds = 1
	o.FaultMTBFs = []float64{24 * 3600}
	o.FaultRepairs = []float64{0}
	o.Drains = []runner.DrainSpec{{Start: 24 * 3600, Duration: 12 * 3600, Nodes: 128}}
	r, err := Resilience(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r.Variants {
		for mech, c := range r.Cells[v] {
			if c.DownFrac <= 0 {
				t.Fatalf("%s/%s: drain recorded no downtime", v, mech)
			}
		}
	}
}
