package exp

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// realTraceOpts runs the grid over the vendored Borg job-events fixture at a
// size small enough for unit tests.
func realTraceOpts() Options {
	return Options{
		Nodes:  16,
		Source: "borg:../tracecorpus/testdata/job_events.csv.gz|relabel:paper",
		Shards: 2,
	}
}

func TestRealTrace(t *testing.T) {
	r, err := RealTrace(realTraceOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"whole", "shard0/2", "shard1/2"}
	if strings.Join(r.Variants, " ") != strings.Join(want, " ") {
		t.Fatalf("variants %v, want %v", r.Variants, want)
	}
	for _, v := range r.Variants {
		for _, mech := range Mechanisms() {
			c, ok := r.Cells[v][mech]
			if !ok {
				t.Fatalf("missing cell %s/%s", v, mech)
			}
			if c.Seeds != 1 {
				t.Fatalf("%s/%s averaged %d seeds; a fixed source must collapse to 1", v, mech, c.Seeds)
			}
			if c.Util <= 0 || c.Util > 1 {
				t.Fatalf("%s/%s util %g", v, mech, c.Util)
			}
		}
	}
	if len(r.Flatten()) != len(r.Variants)*len(Mechanisms()) {
		t.Fatalf("flatten %d cells", len(r.Flatten()))
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "shard0/2") || !strings.Contains(buf.String(), "Real-trace replay") {
		t.Fatalf("render output:\n%s", buf.String())
	}
}

func TestRealTraceErrors(t *testing.T) {
	if _, err := RealTrace(Options{Nodes: 16}); err == nil || !strings.Contains(err.Error(), "needs a source") {
		t.Fatalf("empty source: %v", err)
	}
	o := realTraceOpts()
	o.Source = o.Source + " + synthetic:seed=1,weeks=1"
	if _, err := RealTrace(o); err == nil || !strings.Contains(err.Error(), "merged") {
		t.Fatalf("merged source: %v", err)
	}
}

// realTraceCSV renders the grid's deterministic cell CSV for the given
// worker count.
func realTraceCSV(t *testing.T, workers int) string {
	t.Helper()
	o := realTraceOpts()
	o.Workers = workers
	r, err := RealTrace(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCellsCSV(&buf, CellGroup{Experiment: "realtrace", Cells: r.Flatten()}); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestRealTraceGolden pins the sharded sweep's CSV byte-for-byte: the same
// grid must produce identical output no matter how many workers run it, and
// must match the committed golden (regenerate with go test -run
// TestRealTraceGolden -update). CI re-runs the same comparison from the
// expdriver binary.
func TestRealTraceGolden(t *testing.T) {
	serial := realTraceCSV(t, 1)
	parallel := realTraceCSV(t, 8)
	if serial != parallel {
		t.Fatalf("workers=8 CSV differs from workers=1:\n%s\nvs\n%s", parallel, serial)
	}
	const golden = "testdata/realtrace_golden.csv"
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(serial), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if serial != string(want) {
		t.Fatalf("realtrace CSV deviates from %s (regenerate with -update if the change is intended):\ngot:\n%s\nwant:\n%s",
			golden, serial, want)
	}
}
