package exp

import (
	"fmt"
	"io"

	"hybridsched/internal/core"
	"hybridsched/internal/runner"
	"hybridsched/internal/simtime"
	"hybridsched/internal/workload"
)

// --- Table I: workload summary ---------------------------------------------

// TableIResult is the Table I style description of one generated trace
// (paper values for Theta 2019: 4392 nodes, 37298 jobs, 211 projects, max
// length 1 day, min size 128 nodes).
type TableIResult struct {
	Summary workload.Summary
}

// TableI generates the characterization trace and summarizes it.
func TableI(o Options) (TableIResult, error) {
	o = o.withDefaults()
	cfg := o.workloadConfig(o.BaseSeed, workload.W5)
	recs, err := workload.Generate(cfg)
	if err != nil {
		return TableIResult{}, err
	}
	return TableIResult{Summary: workload.Summarize(recs, cfg)}, nil
}

// Render writes the table.
func (r TableIResult) Render(w io.Writer) {
	s := r.Summary
	fmt.Fprintf(w, "Table I: generated workload summary (Theta model)\n")
	tw := newTable(w, "property", "value")
	tw.row("Compute Nodes", fmt.Sprintf("%d", s.Nodes))
	tw.row("Trace Period", fmt.Sprintf("%d weeks", s.Weeks))
	tw.row("Number of Jobs", fmt.Sprintf("%d", s.Jobs))
	tw.row("Number of Projects", fmt.Sprintf("%d", s.Projects))
	tw.row("Maximum Job Length", simtime.Format(s.MaxRuntime))
	tw.row("Minimum Job Size", fmt.Sprintf("%d nodes", s.MinJobSize))
	tw.row("Offered Load", fmt.Sprintf("%.3f", s.OfferedLoad))
	tw.flush()
}

// --- Figure 3: size histogram ----------------------------------------------

// Figure3Result holds the job-count and node-hour shares per size range.
type Figure3Result struct {
	Buckets []workload.SizeBucket
}

// Figure3 reproduces the size characterization of the generated trace.
func Figure3(o Options) (Figure3Result, error) {
	o = o.withDefaults()
	cfg := o.workloadConfig(o.BaseSeed, workload.W5)
	recs, err := workload.Generate(cfg)
	if err != nil {
		return Figure3Result{}, err
	}
	return Figure3Result{Buckets: workload.SizeHistogram(recs, cfg)}, nil
}

// Render writes the histogram as a table (outer ring: job counts; inner
// ring: core-hours, paper Fig. 3).
func (r Figure3Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 3: jobs (outer) and node-hours (inner) by size range\n")
	totJobs, totHours := 0, 0.0
	for _, b := range r.Buckets {
		totJobs += b.Jobs
		totHours += b.NodeHours
	}
	tw := newTable(w, "size range", "jobs", "job %", "node-hours", "hour %")
	for _, b := range r.Buckets {
		tw.row(fmt.Sprintf("%d-%d", b.Lo, b.Hi),
			fmt.Sprintf("%d", b.Jobs),
			fmt.Sprintf("%.1f%%", 100*float64(b.Jobs)/float64(max(totJobs, 1))),
			fmt.Sprintf("%.0f", b.NodeHours),
			fmt.Sprintf("%.1f%%", 100*b.NodeHours/max(totHours, 1)))
	}
	tw.flush()
}

// --- Figure 4: job-type distributions across traces -------------------------

// Figure4Result holds the per-trace class shares.
type Figure4Result struct {
	Traces []TraceClassMix
}

// TraceClassMix is one bar of Fig. 4.
type TraceClassMix struct {
	Seed   int64
	Shares []workload.ClassShare
}

// Figure4 relabels projects across o.Seeds traces and reports the class mix
// of each (the paper's point: the mixes differ widely between traces).
func Figure4(o Options) (Figure4Result, error) {
	o = o.withDefaults()
	var out Figure4Result
	for s := 0; s < o.Seeds; s++ {
		seed := o.BaseSeed + int64(s)
		recs, err := workload.Generate(o.workloadConfig(seed, workload.W5))
		if err != nil {
			return out, err
		}
		out.Traces = append(out.Traces, TraceClassMix{Seed: seed, Shares: workload.TypeDistribution(recs)})
	}
	return out, nil
}

// Render writes the per-trace mixes.
func (r Figure4Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 4: job-type distribution per generated trace (jobs%% / node-hours%%)\n")
	tw := newTable(w, "trace", "rigid", "on-demand", "malleable")
	for i, tr := range r.Traces {
		cols := make([]string, 3)
		for k, s := range tr.Shares {
			cols[k] = fmt.Sprintf("%.1f%%/%.1f%%", 100*s.JobFrac, 100*s.HourFrac)
		}
		tw.row(fmt.Sprintf("T%d", i+1), cols[0], cols[1], cols[2])
	}
	tw.flush()
}

// --- Figure 5: weekly on-demand submissions ---------------------------------

// Figure5Result holds weekly on-demand counts for sample traces.
type Figure5Result struct {
	Weeks  int
	Series []WeeklySeries
}

// WeeklySeries is one line of Fig. 5.
type WeeklySeries struct {
	Seed   int64
	Counts []int
}

// Figure5 reports the bursty weekly on-demand submission pattern of three
// sample traces.
func Figure5(o Options) (Figure5Result, error) {
	o = o.withDefaults()
	out := Figure5Result{Weeks: o.Weeks}
	for s := 0; s < 3; s++ {
		seed := o.BaseSeed + int64(s)
		recs, err := workload.Generate(o.workloadConfig(seed, workload.W5))
		if err != nil {
			return out, err
		}
		out.Series = append(out.Series, WeeklySeries{
			Seed:   seed,
			Counts: workload.WeeklyOnDemand(recs, o.Weeks),
		})
	}
	return out, nil
}

// Render writes the weekly series.
func (r Figure5Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 5: on-demand jobs per week (three sample traces)\n")
	header := []string{"trace"}
	for wk := 1; wk <= r.Weeks; wk++ {
		header = append(header, fmt.Sprintf("wk%d", wk))
	}
	tw := newTable(w, header...)
	for i, s := range r.Series {
		cols := []string{fmt.Sprintf("T%d", i+1)}
		for _, c := range s.Counts {
			cols = append(cols, fmt.Sprintf("%d", c))
		}
		tw.row(cols...)
	}
	tw.flush()
}

// --- Table II: baseline ------------------------------------------------------

// TableIIResult is the averaged baseline (FCFS/EASY, no special treatment)
// operating point. Paper: 15.6 h, 83.93 %, 22.69 %.
type TableIIResult struct {
	Cell Cell
}

// TableII measures the baseline across o.Seeds traces under the W5 mix.
func TableII(o Options) (TableIIResult, error) {
	o = o.withDefaults()
	cell, err := o.runCell("tableii", "W5", "baseline", workload.W5, nil)
	return TableIIResult{Cell: cell}, err
}

// Flatten returns the grid-ordered cells for serialization.
func (r TableIIResult) Flatten() []Cell { return []Cell{r.Cell} }

// Render writes the baseline table next to the paper's numbers.
func (r TableIIResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Table II: baseline performance (FCFS/EASY, no special treatment)\n")
	tw := newTable(w, "metric", "measured", "paper")
	tw.row("Avg. Turnaround", fmt.Sprintf("%.1f h", r.Cell.TurnAllH), "15.6 h")
	tw.row("System Util.", fmt.Sprintf("%.2f%%", 100*r.Cell.Util), "83.93%")
	tw.row("On-demand Instant Start", fmt.Sprintf("%.2f%%", 100*r.Cell.Instant), "22.69%")
	tw.flush()
}

// --- Table III: notice mixes (configuration echo) ---------------------------

// TableIIIResult lists the five advance-notice mixes.
type TableIIIResult struct {
	Names []string
	Mixes []workload.NoticeMix
}

// TableIII returns the paper's workload definitions.
func TableIII() TableIIIResult {
	return TableIIIResult{
		Names: []string{"W1", "W2", "W3", "W4", "W5"},
		Mixes: []workload.NoticeMix{workload.W1, workload.W2, workload.W3, workload.W4, workload.W5},
	}
}

// Render writes the mix table.
func (r TableIIIResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Table III: on-demand notice-category distribution per workload\n")
	tw := newTable(w, "workload", "no notice", "accurate", "early", "late")
	for i, name := range r.Names {
		m := r.Mixes[i]
		tw.row(name,
			fmt.Sprintf("%.0f%%", 100*m[0]), fmt.Sprintf("%.0f%%", 100*m[1]),
			fmt.Sprintf("%.0f%%", 100*m[2]), fmt.Sprintf("%.0f%%", 100*m[3]))
	}
	tw.flush()
}

// --- Figure 6: the mechanism comparison --------------------------------------

// Figure6Result holds one Cell per (workload, mechanism).
type Figure6Result struct {
	Workloads []string
	Cells     map[string]map[string]Cell // workload -> mechanism -> cell
}

// Figure6 runs the six mechanisms (plus the baseline for reference) over the
// five Table III workloads as one declarative grid — 7 mechanisms × 5 mixes
// × o.Seeds traces — executed in parallel through the sweep runner.
func Figure6(o Options) (Figure6Result, error) {
	o = o.withDefaults()
	t3 := TableIII()
	var specs []runner.Spec
	for i, wl := range t3.Names {
		for _, mech := range Mechanisms() {
			specs = append(specs, o.cellSpecs("fig6", wl, mech, t3.Mixes[i], nil)...)
		}
	}
	o.logf("fig6: %d cells (%d mechanisms x %d workloads x %d seeds)",
		len(specs), len(Mechanisms()), len(t3.Names), o.Seeds)
	cells, err := o.runGrid(specs)
	if err != nil {
		return Figure6Result{Workloads: t3.Names}, err
	}
	return Figure6Result{Workloads: t3.Names, Cells: cellMap(cells)}, nil
}

// Flatten returns the grid-ordered cells for serialization.
func (r Figure6Result) Flatten() []Cell {
	var out []Cell
	for _, wl := range r.Workloads {
		for _, mech := range Mechanisms() {
			if c, ok := r.Cells[wl][mech]; ok {
				out = append(out, c)
			}
		}
	}
	return out
}

// Render writes one sub-table per metric, mirroring the panels of Fig. 6.
func (r Figure6Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 6: scheduling performance under different advance-notice mixes\n")
	panels := []struct {
		title string
		get   func(Cell) string
	}{
		{"avg job turnaround (h)", func(c Cell) string { return fmt.Sprintf("%.1f", c.TurnAllH) }},
		{"rigid turnaround (h)", func(c Cell) string { return fmt.Sprintf("%.1f", c.TurnRigidH) }},
		{"malleable turnaround (h)", func(c Cell) string { return fmt.Sprintf("%.1f", c.TurnMallH) }},
		{"system utilization (%)", func(c Cell) string { return fmt.Sprintf("%.1f", 100*c.Util) }},
		{"on-demand instant start (%)", func(c Cell) string { return fmt.Sprintf("%.1f", 100*c.Instant) }},
		{"rigid preemption ratio (%)", func(c Cell) string { return fmt.Sprintf("%.2f", 100*c.PreemptRigid) }},
		{"malleable preemption ratio (%)", func(c Cell) string { return fmt.Sprintf("%.2f", 100*c.PreemptMall) }},
	}
	for _, p := range panels {
		fmt.Fprintf(w, "\n%s\n", p.title)
		header := append([]string{"mechanism"}, r.Workloads...)
		tw := newTable(w, header...)
		for _, mech := range Mechanisms() {
			cols := []string{mech}
			for _, wl := range r.Workloads {
				cols = append(cols, p.get(r.Cells[wl][mech]))
			}
			tw.row(cols...)
		}
		tw.flush()
	}
}

// --- Figure 7: checkpoint-frequency sweep ------------------------------------

// Figure7Result holds one Cell per (frequency multiplier, mechanism).
type Figure7Result struct {
	Multipliers []float64 // interval multipliers (0.5 = twice as frequent)
	Cells       map[string]map[string]Cell
}

// Figure7 sweeps the rigid checkpointing frequency around the Daly optimum
// under the W5 mix (paper: "50% means checkpoints twice as frequent") as one
// grid: the multiplier is a per-cell coordinate, not a shared option.
func Figure7(o Options) (Figure7Result, error) {
	o = o.withDefaults()
	mults := []float64{0.5, 1.0, 1.5, 2.0}
	var specs []runner.Spec
	for _, mult := range mults {
		for _, mech := range core.Names() {
			specs = append(specs, o.cellSpecs("fig7", multKey(mult), mech, workload.W5,
				func(sp *runner.Spec) { sp.CkptFreqMult = mult })...)
		}
	}
	o.logf("fig7: %d cells (%d mechanisms x %d multipliers x %d seeds)",
		len(specs), len(core.Names()), len(mults), o.Seeds)
	cells, err := o.runGrid(specs)
	if err != nil {
		return Figure7Result{Multipliers: mults}, err
	}
	return Figure7Result{Multipliers: mults, Cells: cellMap(cells)}, nil
}

func multKey(m float64) string { return fmt.Sprintf("%.0f%%", 100*m) }

// Flatten returns the grid-ordered cells for serialization.
func (r Figure7Result) Flatten() []Cell {
	var out []Cell
	for _, m := range r.Multipliers {
		for _, mech := range core.Names() {
			if c, ok := r.Cells[multKey(m)][mech]; ok {
				out = append(out, c)
			}
		}
	}
	return out
}

// Render writes the checkpoint sweep panels.
func (r Figure7Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 7: impact of rigid checkpointing frequency (interval multiplier;\n")
	fmt.Fprintf(w, "50%% = twice as frequent as Daly-optimal)\n")
	panels := []struct {
		title string
		get   func(Cell) string
	}{
		{"rigid turnaround (h)", func(c Cell) string { return fmt.Sprintf("%.1f", c.TurnRigidH) }},
		{"avg turnaround (h)", func(c Cell) string { return fmt.Sprintf("%.1f", c.TurnAllH) }},
		{"system utilization (%)", func(c Cell) string { return fmt.Sprintf("%.1f", 100*c.Util) }},
		{"lost computation (%)", func(c Cell) string { return fmt.Sprintf("%.2f", 100*c.LostFrac) }},
	}
	for _, p := range panels {
		fmt.Fprintf(w, "\n%s\n", p.title)
		header := []string{"mechanism"}
		for _, m := range r.Multipliers {
			header = append(header, multKey(m))
		}
		tw := newTable(w, header...)
		for _, mech := range core.Names() {
			cols := []string{mech}
			for _, m := range r.Multipliers {
				cols = append(cols, p.get(r.Cells[multKey(m)][mech]))
			}
			tw.row(cols...)
		}
		tw.flush()
	}
}

// --- Observation 10: decision latency ----------------------------------------

// DecisionLatencyResult reports mechanism decision timings under a dense
// workload (many small running jobs maximize the preemption-candidate list).
type DecisionLatencyResult struct {
	Cells []Cell
}

// DecisionLatency measures wall-clock decision latency for each mechanism on
// a trace dense with small jobs (paper Obs. 10: decisions < 10 ms, versus a
// 10-30 s production requirement). The timing numbers are wall clock and so
// machine-dependent; only they escape the runner's determinism guarantee.
func DecisionLatency(o Options) (DecisionLatencyResult, error) {
	o = o.withDefaults()
	dense := func(sp *runner.Spec) {
		sp.Workload.Weeks = 1
		// Dense: hundreds of small jobs running concurrently.
		sp.Workload.MinJobSize = 8
		sp.Workload.SizeBuckets = []int{8, 16, 32, 64, 128}
		sp.Workload.SizeWeights = []float64{0.4, 0.3, 0.15, 0.1, 0.05}
	}
	var specs []runner.Spec
	for _, mech := range core.Names() {
		specs = append(specs, o.cellSpecs("latency", "dense", mech, workload.W5, dense)...)
	}
	o.logf("latency: %d cells", len(specs))
	cells, err := o.runGrid(specs)
	if err != nil {
		return DecisionLatencyResult{}, err
	}
	return DecisionLatencyResult{Cells: cells}, nil
}

// Flatten returns the grid-ordered cells for serialization.
func (r DecisionLatencyResult) Flatten() []Cell { return r.Cells }

// Render writes the latency table.
func (r DecisionLatencyResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Observation 10: mechanism decision latency (dense small-job workload)\n")
	tw := newTable(w, "mechanism", "mean (ms)", "max (ms)", "<10ms")
	for _, c := range r.Cells {
		ok := "yes"
		if c.MaxDecMs >= 10 {
			ok = "no"
		}
		tw.row(c.Mechanism, fmt.Sprintf("%.4f", c.MeanDecMs), fmt.Sprintf("%.4f", c.MaxDecMs), ok)
	}
	tw.flush()
}
