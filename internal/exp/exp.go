// Package exp contains the experiment drivers that regenerate every table
// and figure of the paper's evaluation (§IV–§V): the Theta workload
// characterization (Table I, Fig. 3–5), the FCFS/EASY baseline (Table II),
// the mechanism comparison across advance-notice mixes (Table III, Fig. 6),
// the checkpoint-frequency sweep (Fig. 7), the decision-latency check
// (Obs. 10), and the ablations DESIGN.md calls out.
//
// Every driver is deterministic given Options.BaseSeed and averages over
// Options.Seeds independently generated traces, mirroring the paper's "ten
// randomly generated traces".
package exp

import (
	"fmt"
	"io"

	"hybridsched/internal/checkpoint"
	"hybridsched/internal/core"
	"hybridsched/internal/metrics"
	"hybridsched/internal/policy"
	"hybridsched/internal/sim"
	"hybridsched/internal/simtime"
	"hybridsched/internal/trace"
	"hybridsched/internal/workload"
)

// Options control the scale of every experiment. The zero value runs the
// paper-faithful defaults via withDefaults.
type Options struct {
	Nodes    int   // system size; default 4392
	Weeks    int   // trace length; default 4
	Seeds    int   // traces per data point; default 10
	BaseSeed int64 // first seed; default 1

	MTBF         float64 // system MTBF seconds for Daly; default 24h
	CkptFreqMult float64 // checkpoint interval multiplier; default 1.0

	Policy   string    // queue policy name; default "fcfs"
	Progress io.Writer // optional progress log (nil = quiet)
}

func (o Options) withDefaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 4392
	}
	if o.Weeks == 0 {
		o.Weeks = 4
	}
	if o.Seeds == 0 {
		o.Seeds = 10
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	if o.MTBF == 0 {
		o.MTBF = 24 * float64(simtime.Hour)
	}
	if o.CkptFreqMult == 0 {
		o.CkptFreqMult = 1.0
	}
	if o.Policy == "" {
		o.Policy = "fcfs"
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// workloadConfig builds the generator config for one seed and notice mix.
func (o Options) workloadConfig(seed int64, mix workload.NoticeMix) workload.Config {
	return workload.Config{
		Seed:  seed,
		Nodes: o.Nodes,
		Weeks: o.Weeks,
		Mix:   mix,
	}
}

// Mechanisms lists the evaluated schedulers: the baseline plus the paper's
// six mechanisms, in presentation order.
func Mechanisms() []string {
	return append([]string{"baseline"}, core.Names()...)
}

// simulate runs one trace under one mechanism and returns the report.
func (o Options) simulate(recs []trace.Record, mechName string, coreCfg core.Config, simCfg sim.Config) (metrics.Report, error) {
	jobs := trace.Materialize(recs, func(size int) checkpoint.Plan {
		return checkpoint.NewPlan(size, o.MTBF, o.CkptFreqMult)
	})
	var mech sim.Mechanism
	if mechName == "baseline" {
		mech = sim.Baseline{}
	} else {
		m, err := core.ByName(mechName, coreCfg)
		if err != nil {
			return metrics.Report{}, err
		}
		mech = m
	}
	if simCfg.Nodes == 0 {
		simCfg.Nodes = o.Nodes
	}
	if simCfg.Policy == nil {
		simCfg.Policy = policy.ByName(o.Policy)
	}
	e, err := sim.New(simCfg, jobs, mech)
	if err != nil {
		return metrics.Report{}, err
	}
	return e.Run()
}

// Cell is one averaged data point of Fig. 6 / Fig. 7: the metrics the paper
// plots per (mechanism, workload) pair.
type Cell struct {
	Mechanism string
	Workload  string
	Seeds     int

	TurnAllH   float64 // mean job turnaround, hours
	TurnRigidH float64
	TurnMallH  float64
	TurnODH    float64

	Util    float64 // system utilization
	Instant float64 // on-demand instant-start rate (<= 2 min delay)
	Strict  float64 // zero-delay instant-start rate

	PreemptRigid float64 // fraction of rigid jobs preempted
	PreemptMall  float64 // fraction of malleable jobs preempted

	LostFrac   float64 // node-seconds discarded by preemption
	MeanDecMs  float64 // mean mechanism decision latency
	MaxDecMs   float64 // max mechanism decision latency
	MeanDelayS float64 // mean on-demand start delay, seconds
}

// accumulate folds one run's report into the cell (call finish after).
func (c *Cell) accumulate(r metrics.Report) {
	c.Seeds++
	c.TurnAllH += r.All.MeanTurnaroundH
	c.TurnRigidH += r.Rigid.MeanTurnaroundH
	c.TurnMallH += r.Malleable.MeanTurnaroundH
	c.TurnODH += r.OnDemand.MeanTurnaroundH
	c.Util += r.Utilization
	c.Instant += r.InstantStartRate
	c.Strict += r.StrictInstantStartRate
	c.PreemptRigid += r.Rigid.PreemptRatio
	c.PreemptMall += r.Malleable.PreemptRatio
	c.LostFrac += r.Breakdown.Lost
	c.MeanDecMs += r.MeanDecisionMs
	c.MeanDelayS += r.MeanStartDelay
	if r.MaxDecisionMs > c.MaxDecMs {
		c.MaxDecMs = r.MaxDecisionMs
	}
}

func (c *Cell) finish() {
	if c.Seeds == 0 {
		return
	}
	n := float64(c.Seeds)
	c.TurnAllH /= n
	c.TurnRigidH /= n
	c.TurnMallH /= n
	c.TurnODH /= n
	c.Util /= n
	c.Instant /= n
	c.Strict /= n
	c.PreemptRigid /= n
	c.PreemptMall /= n
	c.LostFrac /= n
	c.MeanDecMs /= n
	c.MeanDelayS /= n
}

// runCell averages a mechanism over o.Seeds traces with the given mix.
func (o Options) runCell(mechName, wlName string, mix workload.NoticeMix, coreCfg core.Config, simCfg sim.Config) (Cell, error) {
	cell := Cell{Mechanism: mechName, Workload: wlName}
	for s := 0; s < o.Seeds; s++ {
		recs, err := workload.Generate(o.workloadConfig(o.BaseSeed+int64(s), mix))
		if err != nil {
			return cell, err
		}
		rep, err := o.simulate(recs, mechName, coreCfg, simCfg)
		if err != nil {
			return cell, fmt.Errorf("%s/%s seed %d: %w", mechName, wlName, s, err)
		}
		cell.accumulate(rep)
	}
	cell.finish()
	return cell, nil
}
