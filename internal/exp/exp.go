// Package exp contains the experiment drivers that regenerate every table
// and figure of the paper's evaluation (§IV–§V): the Theta workload
// characterization (Table I, Fig. 3–5), the FCFS/EASY baseline (Table II),
// the mechanism comparison across advance-notice mixes (Table III, Fig. 6),
// the checkpoint-frequency sweep (Fig. 7), the decision-latency check
// (Obs. 10), and the ablations DESIGN.md calls out.
//
// Every experiment is expressed as a declarative grid of runner.Spec cells —
// (mechanism × workload × policy × seed × config-ablation) coordinates —
// executed through the parallel sweep runner (internal/runner) and folded
// into averaged Cells. Results are deterministic given Options.BaseSeed and
// independent of Options.Workers (the wall-clock decision-latency fields of
// Cell excepted); each data point averages Options.Seeds independently
// generated traces, mirroring the paper's "ten randomly generated traces".
package exp

import (
	"fmt"
	"io"

	"hybridsched/internal/core"
	"hybridsched/internal/metrics"
	"hybridsched/internal/runner"
	"hybridsched/internal/simtime"
	"hybridsched/internal/workload"
)

// Options control the scale of every experiment. The zero value runs the
// paper-faithful defaults via withDefaults.
type Options struct {
	Nodes    int   // system size; default 4392
	Weeks    int   // trace length; default 4
	Seeds    int   // traces per data point; default 10
	BaseSeed int64 // first seed; default 1

	MTBF         float64 // system MTBF seconds for Daly; default 24h
	CkptFreqMult float64 // checkpoint interval multiplier; default 1.0

	Policy   string    // queue policy name; default "fcfs"
	Workers  int       // parallel sweep workers; default runtime.NumCPU()
	Progress io.Writer // optional progress log (nil = quiet)

	// Source, when non-empty, replays this source spec (see internal/source)
	// in place of every generated trace: each experiment's grid runs its
	// mechanisms over the named workload instead of the synthetic model.
	// Seed averaging collapses to one replica — the source is one fixed
	// trace — and per-variant workload knobs (notice mixes, lead ablations)
	// no longer vary the input, so figure-style experiments degrade to
	// mechanism comparisons over the given trace.
	Source string

	// Shards is the real-trace grid's shard axis (the expdriver -shards
	// flag): RealTrace runs every mechanism over the whole Source and over
	// each of its Shards deterministic hash-shards. <1 takes the default (4);
	// 1 runs the whole trace only.
	Shards int

	// Resilience-grid axes (the expdriver -mtbf/-repair flags). Empty slices
	// take the defaults: MTBFs {6 h, 24 h}, repairs {instant, 1 h}.
	FaultMTBFs   []float64 // failure MTBFs swept, seconds
	FaultRepairs []float64 // mean repair times swept, seconds (0 = instant)

	// Drains applies these maintenance windows to every resilience cell
	// (the expdriver -drain flag).
	Drains []runner.DrainSpec

	// CheckpointDir, when non-empty, makes every experiment grid resumable
	// (the expdriver -resume flag): cells persist snapshots and finished
	// reports there, completed cells are skipped on rerun, and interrupted
	// cells continue from their snapshots — with results byte-identical to an
	// uninterrupted run. CheckpointEvery is the snapshot interval in
	// simulation events (<= 0 = default).
	CheckpointDir   string
	CheckpointEvery int
}

func (o Options) withDefaults() Options {
	if o.Nodes < 1 {
		o.Nodes = 4392
	}
	if o.Weeks < 1 {
		o.Weeks = 4
	}
	if o.Seeds < 1 {
		o.Seeds = 10
	}
	if o.Source != "" {
		o.Seeds = 1 // a fixed source is one trace; replicas would be identical
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	if o.MTBF == 0 {
		o.MTBF = 24 * float64(simtime.Hour)
	}
	if o.CkptFreqMult == 0 {
		o.CkptFreqMult = 1.0
	}
	if o.Policy == "" {
		o.Policy = "fcfs"
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// workloadConfig builds the generator config for one seed and notice mix.
func (o Options) workloadConfig(seed int64, mix workload.NoticeMix) workload.Config {
	return workload.Config{
		Seed:  seed,
		Nodes: o.Nodes,
		Weeks: o.Weeks,
		Mix:   mix,
	}
}

// Mechanisms lists the evaluated schedulers: the baseline plus the paper's
// six mechanisms, in presentation order.
func Mechanisms() []string {
	return append([]string{"baseline"}, core.Names()...)
}

// spec builds the runner cell for one (group, variant, mechanism, workload)
// coordinate with the experiment-wide defaults applied.
func (o Options) spec(group, variant, mech string, wcfg workload.Config) runner.Spec {
	return runner.Spec{
		Group:        group,
		Variant:      variant,
		Mechanism:    mech,
		Policy:       o.Policy,
		Nodes:        o.Nodes,
		Source:       o.Source,
		Workload:     wcfg,
		Core:         core.DefaultConfig(),
		MTBF:         o.MTBF,
		CkptFreqMult: o.CkptFreqMult,
	}
}

// cellSpecs expands one averaged data point into its o.Seeds replica cells.
// mutate, when non-nil, applies per-variant ablation overrides to each spec.
func (o Options) cellSpecs(group, variant, mech string, mix workload.NoticeMix, mutate func(*runner.Spec)) []runner.Spec {
	specs := make([]runner.Spec, 0, o.Seeds)
	for s := 0; s < o.Seeds; s++ {
		sp := o.spec(group, variant, mech, o.workloadConfig(o.BaseSeed+int64(s), mix))
		if mutate != nil {
			mutate(&sp)
		}
		specs = append(specs, sp)
	}
	return specs
}

// runGrid executes a grid through the parallel runner and folds the per-seed
// results into one finished Cell per (variant, mechanism), in grid order.
func (o Options) runGrid(specs []runner.Spec) ([]Cell, error) {
	sweep := runner.Run(specs, runner.Options{
		Workers:         o.Workers,
		Progress:        o.Progress,
		CheckpointDir:   o.CheckpointDir,
		CheckpointEvery: o.CheckpointEvery,
		Resume:          o.CheckpointDir != "",
	})
	if err := sweep.Err(); err != nil {
		return nil, err
	}
	type key struct{ variant, mech string }
	idx := map[key]int{}
	var cells []Cell
	for _, res := range sweep.Results {
		k := key{res.Spec.Variant, res.Spec.Mechanism}
		i, ok := idx[k]
		if !ok {
			i = len(cells)
			idx[k] = i
			cells = append(cells, Cell{Mechanism: res.Spec.Mechanism, Workload: res.Spec.Variant})
		}
		cells[i].accumulate(res.Report)
	}
	for i := range cells {
		cells[i].finish()
	}
	return cells, nil
}

// runCell averages one mechanism over o.Seeds traces with the given mix.
func (o Options) runCell(group, variant, mech string, mix workload.NoticeMix, mutate func(*runner.Spec)) (Cell, error) {
	cells, err := o.runGrid(o.cellSpecs(group, variant, mech, mix, mutate))
	if err != nil {
		return Cell{Mechanism: mech, Workload: variant}, err
	}
	return cells[0], nil
}

// cellMap indexes cells as workload/variant -> mechanism -> cell.
func cellMap(cells []Cell) map[string]map[string]Cell {
	m := map[string]map[string]Cell{}
	for _, c := range cells {
		if m[c.Workload] == nil {
			m[c.Workload] = map[string]Cell{}
		}
		m[c.Workload][c.Mechanism] = c
	}
	return m
}

// Cell is one averaged data point of Fig. 6 / Fig. 7: the metrics the paper
// plots per (mechanism, workload) pair.
type Cell struct {
	Mechanism string
	Workload  string
	Seeds     int

	TurnAllH   float64 // mean job turnaround, hours
	TurnRigidH float64
	TurnMallH  float64
	TurnODH    float64

	Util    float64 // system utilization
	Instant float64 // on-demand instant-start rate (<= 2 min delay)
	Strict  float64 // zero-delay instant-start rate

	PreemptRigid float64 // fraction of rigid jobs preempted
	PreemptMall  float64 // fraction of malleable jobs preempted

	LostFrac   float64 // node-seconds discarded by preemption
	MeanDecMs  float64 // mean mechanism decision latency
	MaxDecMs   float64 // max mechanism decision latency
	MeanDelayS float64 // mean on-demand start delay, seconds

	// Availability telemetry (resilience grid; zero on clean runs).
	Failures float64 // mean injected failures that struck a job, per run
	Misses   float64 // mean failures that hit no job, per run
	DownFrac float64 // mean out-of-service share of the window's node-seconds
}

// accumulate folds one run's report into the cell (call finish after).
func (c *Cell) accumulate(r metrics.Report) {
	c.Seeds++
	c.TurnAllH += r.All.MeanTurnaroundH
	c.TurnRigidH += r.Rigid.MeanTurnaroundH
	c.TurnMallH += r.Malleable.MeanTurnaroundH
	c.TurnODH += r.OnDemand.MeanTurnaroundH
	c.Util += r.Utilization
	c.Instant += r.InstantStartRate
	c.Strict += r.StrictInstantStartRate
	c.PreemptRigid += r.Rigid.PreemptRatio
	c.PreemptMall += r.Malleable.PreemptRatio
	c.LostFrac += r.Breakdown.Lost
	c.MeanDecMs += r.MeanDecisionMs
	c.MeanDelayS += r.MeanStartDelay
	c.Failures += float64(r.FailuresInjected)
	c.Misses += float64(r.FailureMisses)
	c.DownFrac += r.Breakdown.Unavailable
	if r.MaxDecisionMs > c.MaxDecMs {
		c.MaxDecMs = r.MaxDecisionMs
	}
}

func (c *Cell) finish() {
	if c.Seeds == 0 {
		return
	}
	n := float64(c.Seeds)
	c.TurnAllH /= n
	c.TurnRigidH /= n
	c.TurnMallH /= n
	c.TurnODH /= n
	c.Util /= n
	c.Instant /= n
	c.Strict /= n
	c.PreemptRigid /= n
	c.PreemptMall /= n
	c.LostFrac /= n
	c.MeanDecMs /= n
	c.MeanDelayS /= n
	c.Failures /= n
	c.Misses /= n
	c.DownFrac /= n
}
