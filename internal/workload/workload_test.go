package workload

import (
	"testing"
	"testing/quick"

	"hybridsched/internal/job"
	"hybridsched/internal/simtime"
	"hybridsched/internal/trace"
)

func genDefault(t *testing.T, seed int64) ([]trace.Record, Config) {
	t.Helper()
	cfg := Config{Seed: seed, Weeks: 2}
	recs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	norm, _ := cfg.Normalize()
	return recs, norm
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := genDefault(t, 42)
	b, _ := genDefault(t, 42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs across runs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := genDefault(t, 1)
	b, _ := genDefault(t, 2)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i].Size != b[i].Size || a[i].Submit != b[i].Submit {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestGenerateRecordsValid(t *testing.T) {
	recs, cfg := genDefault(t, 7)
	if len(recs) == 0 {
		t.Fatal("no jobs generated")
	}
	prev := int64(-1)
	for i, r := range recs {
		if err := r.Validate(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if r.Submit < prev {
			t.Fatalf("record %d out of submit order", i)
		}
		prev = r.Submit
		if r.Submit >= cfg.Span {
			t.Fatalf("record %d submits after span", i)
		}
		if r.ID != i+1 {
			t.Fatalf("record %d has ID %d", i, r.ID)
		}
		if r.Size < cfg.MinJobSize || r.Size > cfg.Nodes {
			t.Fatalf("record %d size %d out of range", i, r.Size)
		}
		if r.Work < cfg.MinRuntime || r.Work > cfg.MaxRuntime {
			t.Fatalf("record %d work %d out of range", i, r.Work)
		}
	}
}

func TestGenerateOfferedLoadNearTarget(t *testing.T) {
	recs, cfg := genDefault(t, 11)
	s := Summarize(recs, cfg)
	if s.OfferedLoad < cfg.TargetLoad || s.OfferedLoad > cfg.TargetLoad+0.1 {
		t.Fatalf("offered load %.3f not in [%.2f, %.2f]", s.OfferedLoad, cfg.TargetLoad, cfg.TargetLoad+0.1)
	}
}

func TestGenerateClassMixAcrossSeeds(t *testing.T) {
	// Class shares vary per trace (paper Fig. 4) but across many seeds the
	// on-demand share of jobs should be noticeable and bounded, and all
	// three classes must appear.
	var odShare, rigidShare, mallShare float64
	const seeds = 10
	for seed := int64(0); seed < seeds; seed++ {
		recs, _ := genDefault(t, seed)
		dist := TypeDistribution(recs)
		for _, d := range dist {
			switch d.Class {
			case job.OnDemand:
				odShare += d.JobFrac
			case job.Rigid:
				rigidShare += d.JobFrac
			case job.Malleable:
				mallShare += d.JobFrac
			}
		}
	}
	odShare /= seeds
	rigidShare /= seeds
	mallShare /= seeds
	// Paper Fig. 4: on-demand 3-15% of jobs; rigid the majority.
	if odShare < 0.01 || odShare > 0.30 {
		t.Fatalf("mean on-demand share %.3f implausible", odShare)
	}
	if rigidShare < 0.35 {
		t.Fatalf("mean rigid share %.3f too low", rigidShare)
	}
	if mallShare < 0.05 {
		t.Fatalf("mean malleable share %.3f too low", mallShare)
	}
}

func TestGenerateOnDemandSmall(t *testing.T) {
	recs, cfg := genDefault(t, 3)
	for _, r := range recs {
		if r.Class == job.OnDemand && r.Size > cfg.Nodes/2 {
			t.Fatalf("on-demand job of size %d exceeds half the system", r.Size)
		}
	}
}

func TestGenerateMalleableMinSizes(t *testing.T) {
	recs, cfg := genDefault(t, 5)
	seen := false
	for _, r := range recs {
		if r.Class != job.Malleable {
			continue
		}
		seen = true
		want := minSize(r.Size, cfg.MalleableMinFrac)
		if r.MinSize != want {
			t.Fatalf("malleable job %d min %d, want %d", r.ID, r.MinSize, want)
		}
	}
	if !seen {
		t.Fatal("no malleable jobs generated")
	}
}

func TestGenerateNoticeGeometry(t *testing.T) {
	recs, cfg := genDefault(t, 9)
	counts := map[job.NoticeCategory]int{}
	for _, r := range recs {
		if r.Class != job.OnDemand {
			continue
		}
		counts[r.Notice]++
		switch r.Notice {
		case job.NoNotice:
			if r.NoticeTime != r.Submit || r.EstArrival != r.Submit {
				t.Fatalf("job %d: no-notice geometry wrong", r.ID)
			}
		case job.AccurateNotice:
			if r.EstArrival != r.Submit {
				t.Fatalf("job %d: accurate estimate must equal arrival", r.ID)
			}
			if r.NoticeTime > r.Submit-cfg.NoticeLeadMin && r.NoticeTime != 0 {
				t.Fatalf("job %d: notice lead too short", r.ID)
			}
		case job.ArriveEarly:
			if !(r.NoticeTime <= r.Submit && r.Submit <= r.EstArrival) {
				t.Fatalf("job %d: early arrival outside [notice, estimate]", r.ID)
			}
		case job.ArriveLate:
			if !(r.EstArrival <= r.Submit && r.Submit <= r.EstArrival+cfg.LateWindow) {
				t.Fatalf("job %d: late arrival outside window", r.ID)
			}
		}
	}
	// W5 mix: all four categories should appear in a 2-week trace.
	for cat := job.NoNotice; cat <= job.ArriveLate; cat++ {
		if counts[cat] == 0 {
			t.Errorf("category %v never generated", cat)
		}
	}
}

func TestGenerateSetupFractions(t *testing.T) {
	recs, _ := genDefault(t, 13)
	for _, r := range recs {
		frac := float64(r.Setup) / float64(r.Work)
		switch r.Class {
		case job.Rigid:
			if frac < 0.048 || frac > 0.101 {
				t.Fatalf("rigid setup fraction %.3f outside [0.05,0.10]", frac)
			}
		case job.Malleable:
			if frac < 0 || frac > 0.051 {
				t.Fatalf("malleable setup fraction %.3f outside [0,0.05]", frac)
			}
		case job.OnDemand:
			if r.Setup != 0 {
				t.Fatalf("on-demand setup should be 0, got %d", r.Setup)
			}
		}
	}
}

func TestMixByName(t *testing.T) {
	for _, name := range []string{"W1", "W2", "W3", "W4", "W5"} {
		mix, err := MixByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, p := range mix {
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s sums to %g", name, sum)
		}
	}
	if _, err := MixByName("W9"); err == nil {
		t.Fatal("unknown mix should fail")
	}
}

func TestMixProportionsRealized(t *testing.T) {
	cfg := Config{Seed: 17, Weeks: 8, Mix: W1} // 70% no-notice
	recs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var total, noNotice int
	for _, r := range recs {
		if r.Class == job.OnDemand {
			total++
			if r.Notice == job.NoNotice {
				noNotice++
			}
		}
	}
	if total < 20 {
		t.Skipf("only %d on-demand jobs; not enough to check proportions", total)
	}
	frac := float64(noNotice) / float64(total)
	if frac < 0.5 || frac > 0.9 {
		t.Fatalf("W1 no-notice share %.2f, want ~0.7", frac)
	}
}

func TestConfigNormalizeErrors(t *testing.T) {
	bad := []Config{
		{SizeBuckets: []int{128}, SizeWeights: []float64{0.5, 0.5}},
		{OnDemandProjectFrac: 0.6, RigidProjectFrac: 0.6},
		{Mix: NoticeMix{0.5, 0.1, 0.1, 0.1}},
		{Mix: NoticeMix{-0.1, 0.5, 0.3, 0.3}},
		{MalleableMinFrac: 1.5},
		{Nodes: 64}, // smaller than min job size 128
	}
	for i, cfg := range bad {
		if _, err := cfg.Normalize(); err == nil {
			t.Errorf("config %d should fail normalization", i)
		}
	}
}

func TestSummarize(t *testing.T) {
	recs, cfg := genDefault(t, 21)
	s := Summarize(recs, cfg)
	if s.Jobs != len(recs) {
		t.Fatalf("jobs %d != %d", s.Jobs, len(recs))
	}
	if s.Projects < 2 || s.Projects > cfg.Projects {
		t.Fatalf("projects %d implausible", s.Projects)
	}
	if s.MinJobSize < cfg.MinJobSize {
		t.Fatalf("min size %d below configured floor", s.MinJobSize)
	}
	if s.MaxRuntime > cfg.MaxRuntime {
		t.Fatalf("max runtime %d above cap", s.MaxRuntime)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, Config{})
	if s.Jobs != 0 || s.MinJobSize != 0 || s.OfferedLoad != 0 {
		t.Fatalf("empty summary wrong: %+v", s)
	}
}

func TestSizeHistogramCoversAllJobs(t *testing.T) {
	recs, cfg := genDefault(t, 23)
	buckets := SizeHistogram(recs, cfg)
	total := 0
	var hours float64
	for _, b := range buckets {
		total += b.Jobs
		hours += b.NodeHours
	}
	if total != len(recs) {
		t.Fatalf("histogram covers %d of %d jobs", total, len(recs))
	}
	s := Summarize(recs, cfg)
	if diff := hours - s.NodeSeconds/float64(simtime.Hour); diff > 1 || diff < -1 {
		t.Fatalf("node-hours mismatch: %g vs %g", hours, s.NodeSeconds/3600)
	}
	// Small jobs dominate counts (Fig. 3 outer ring).
	if buckets[0].Jobs < buckets[len(buckets)-1].Jobs {
		t.Fatal("smallest bucket should hold more jobs than the largest")
	}
}

func TestTypeDistributionFractionsSum(t *testing.T) {
	recs, _ := genDefault(t, 29)
	dist := TypeDistribution(recs)
	var jf, hf float64
	for _, d := range dist {
		jf += d.JobFrac
		hf += d.HourFrac
	}
	if jf < 0.999 || jf > 1.001 || hf < 0.999 || hf > 1.001 {
		t.Fatalf("fractions do not sum to 1: jobs %g hours %g", jf, hf)
	}
}

func TestWeeklyOnDemandBuckets(t *testing.T) {
	recs, cfg := genDefault(t, 31)
	weekly := WeeklyOnDemand(recs, cfg.Weeks)
	if len(weekly) != cfg.Weeks {
		t.Fatalf("weeks %d", len(weekly))
	}
	sum := 0
	for _, c := range weekly {
		sum += c
	}
	var want int
	for _, r := range recs {
		if r.Class == job.OnDemand {
			want++
		}
	}
	if sum != want {
		t.Fatalf("weekly sum %d != on-demand jobs %d", sum, want)
	}
}

// Property: any seed yields a valid, ordered, span-bounded trace.
func TestGeneratePropertyAcrossSeeds(t *testing.T) {
	f := func(seed int64) bool {
		cfg := Config{Seed: seed, Weeks: 1, Nodes: 512, Projects: 20, TargetLoad: 0.5}
		recs, err := Generate(cfg)
		if err != nil || len(recs) == 0 {
			return false
		}
		norm, _ := cfg.Normalize()
		prev := int64(0)
		for _, r := range recs {
			if r.Validate() != nil || r.Submit < prev || r.Submit >= norm.Span {
				return false
			}
			prev = r.Submit
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
