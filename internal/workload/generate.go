package workload

import (
	"math"
	"sort"

	"hybridsched/internal/job"
	"hybridsched/internal/simtime"
	"hybridsched/internal/stats"
	"hybridsched/internal/trace"
)

// Generate synthesizes a hybrid trace under cfg. The same config and seed
// always produce the same trace.
func Generate(cfg Config) ([]trace.Record, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	g := newGenerator(cfg)
	recs := g.run()
	for i := range recs {
		if err := recs[i].Validate(); err != nil {
			return nil, err
		}
	}
	return recs, nil
}

type generator struct {
	cfg Config

	// Independent random streams so that a change to one dimension of the
	// generator does not reshuffle the others.
	projRNG    *stats.RNG
	sizeRNG    *stats.RNG
	timeRNG    *stats.RNG
	arriveRNG  *stats.RNG
	classRNG   *stats.RNG
	noticeRNG  *stats.RNG
	setupRNG   *stats.RNG
	estimate   *stats.RNG
	projZipf   *stats.Zipf
	sizeDist   *stats.Discrete
	noticeDist *stats.Discrete
	runtime    stats.Lognormal

	classOf []job.Class // project -> class
}

func newGenerator(cfg Config) *generator {
	root := stats.NewRNG(cfg.Seed)
	g := &generator{
		cfg:        cfg,
		projRNG:    root.Derive(1),
		sizeRNG:    root.Derive(2),
		timeRNG:    root.Derive(3),
		arriveRNG:  root.Derive(4),
		classRNG:   root.Derive(5),
		noticeRNG:  root.Derive(6),
		setupRNG:   root.Derive(7),
		estimate:   root.Derive(8),
		projZipf:   stats.NewZipf(cfg.Projects, 1.1),
		sizeDist:   stats.NewDiscrete(cfg.SizeWeights),
		noticeDist: stats.NewDiscrete(cfg.Mix[:]),
		runtime:    stats.LognormalFromMedian(float64(cfg.RuntimeMedian), cfg.RuntimeSigma),
	}
	g.assignProjectClasses()
	return g
}

// assignProjectClasses splits projects into on-demand / rigid / malleable
// groups (paper §IV-B: 10 % / 60 % / 30 % of projects). The Zipf activity
// ranks are shuffled independently of class, which is what makes the class
// shares of individual traces vary widely (paper Fig. 4).
func (g *generator) assignProjectClasses() {
	p := g.cfg.Projects
	perm := g.classRNG.Perm(p)
	nOD := int(math.Ceil(g.cfg.OnDemandProjectFrac * float64(p)))
	nRigid := int(math.Round(g.cfg.RigidProjectFrac * float64(p)))
	g.classOf = make([]job.Class, p)
	for i, idx := range perm {
		switch {
		case i < nOD:
			g.classOf[idx] = job.OnDemand
		case i < nOD+nRigid:
			g.classOf[idx] = job.Rigid
		default:
			g.classOf[idx] = job.Malleable
		}
	}
}

// run draws jobs until the offered load reaches the target, then lays out
// arrival times per project session and finalizes records.
func (g *generator) run() []trace.Record {
	cfg := g.cfg
	targetNodeSec := cfg.TargetLoad * float64(cfg.Nodes) * float64(cfg.Span)

	type protoJob struct {
		project int
		class   job.Class
		size    int
		work    int64
		est     int64
	}
	var protos []protoJob
	var offered float64
	for offered < targetNodeSec {
		p := g.projZipf.Sample(g.projRNG)
		class := g.classOf[p]
		size := g.drawSize(class)
		work := g.drawRuntime()
		// Large on-demand jobs become rigid or malleable (paper §IV-A).
		if class == job.OnDemand && size > cfg.Nodes/2 {
			if g.classRNG.Bool(0.5) {
				class = job.Rigid
			} else {
				class = job.Malleable
			}
		}
		protos = append(protos, protoJob{project: p, class: class, size: size, work: work, est: g.drawEstimate(work)})
		offered += float64(size) * float64(work)
	}

	// Group by project to lay out bursty session arrivals.
	byProject := map[int][]int{}
	for i, pj := range protos {
		byProject[pj.project] = append(byProject[pj.project], i)
	}
	arrivals := make([]int64, len(protos))
	projects := make([]int, 0, len(byProject))
	for p := range byProject {
		projects = append(projects, p)
	}
	sort.Ints(projects) // deterministic iteration
	for _, p := range projects {
		idxs := byProject[p]
		perSession := cfg.JobsPerSession
		spread := 30 * simtime.Minute
		if g.classOf[p] == job.OnDemand {
			perSession = cfg.OnDemandJobsPerSession
			spread = 10 * simtime.Minute
		}
		nSessions := int(math.Max(1, math.Round(float64(len(idxs))/perSession)))
		sessions := make([]int64, nSessions)
		for s := range sessions {
			sessions[s] = g.arriveRNG.UniformInt64(0, cfg.Span-1)
		}
		for _, i := range idxs {
			epoch := sessions[g.arriveRNG.Intn(nSessions)]
			at := epoch + int64(g.arriveRNG.ExpFloat64(float64(spread)))
			if at >= cfg.Span {
				at = cfg.Span - 1
			}
			arrivals[i] = at
		}
	}

	// Finalize records in arrival order.
	order := make([]int, len(protos))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return arrivals[order[a]] < arrivals[order[b]] })

	recs := make([]trace.Record, 0, len(protos))
	for n, i := range order {
		pj := protos[i]
		r := trace.Record{
			ID:       n + 1,
			Project:  pj.project,
			Class:    pj.class,
			Submit:   arrivals[i],
			Size:     pj.size,
			MinSize:  pj.size,
			Work:     pj.work,
			Estimate: pj.est,
		}
		switch pj.class {
		case job.Rigid:
			r.Setup = g.drawSetup(pj.work, cfg.RigidSetupMin, cfg.RigidSetupMax)
			r.NoticeTime, r.EstArrival = r.Submit, r.Submit
		case job.Malleable:
			r.MinSize = minSize(pj.size, cfg.MalleableMinFrac)
			r.Setup = g.drawSetup(pj.work, cfg.MalleableSetupMin, cfg.MalleableSetupMax)
			r.NoticeTime, r.EstArrival = r.Submit, r.Submit
		case job.OnDemand:
			g.fillNotice(&r)
		}
		recs = append(recs, r)
	}
	return recs
}

// drawSize samples a node count from the bucket mix. On-demand jobs are
// drawn from the buckets at or below the on-demand cap ("real on-demand jobs
// are relatively small in size", §IV-A).
func (g *generator) drawSize(class job.Class) int {
	for {
		size := g.cfg.SizeBuckets[g.sizeDist.Sample(g.sizeRNG)]
		if size > g.cfg.Nodes {
			size = g.cfg.Nodes
		}
		if class == job.OnDemand && size > g.cfg.OnDemandMaxGen {
			continue // resample small
		}
		if size < g.cfg.MinJobSize {
			size = g.cfg.MinJobSize
		}
		return size
	}
}

func (g *generator) drawRuntime() int64 {
	v := g.runtime.SampleClamped(g.timeRNG, float64(g.cfg.MinRuntime), float64(g.cfg.MaxRuntime))
	return int64(v)
}

// drawEstimate inflates the actual runtime by U(1,3), rounds up to 15-minute
// granularity (users pick round numbers), and caps at the site's maximum
// walltime while never dropping below the actual runtime.
func (g *generator) drawEstimate(work int64) int64 {
	est := int64(float64(work) * g.estimate.Uniform(1.0, 3.0))
	const granule = 15 * simtime.Minute
	est = (est + granule - 1) / granule * granule
	if est > g.cfg.MaxRuntime {
		est = g.cfg.MaxRuntime
	}
	if est < work {
		est = work
	}
	return est
}

func (g *generator) drawSetup(work int64, lo, hi float64) int64 {
	return int64(g.setupRNG.Uniform(lo, hi) * float64(work))
}

// fillNotice draws the advance-notice category and derives the notice and
// estimated-arrival instants around the actual arrival r.Submit, following
// Fig. 1 and §IV-B: the notice leads the estimated arrival by 15–30 minutes;
// early arrivals land between notice and estimate; late arrivals land up to
// 30 minutes past the estimate.
func (g *generator) fillNotice(r *trace.Record) {
	lead := g.noticeRNG.UniformInt64(g.cfg.NoticeLeadMin, g.cfg.NoticeLeadMax)
	switch job.NoticeCategory(g.noticeDist.Sample(g.noticeRNG)) {
	case job.NoNotice:
		r.Notice = job.NoNotice
		r.NoticeTime, r.EstArrival = r.Submit, r.Submit
	case job.AccurateNotice:
		r.Notice = job.AccurateNotice
		r.EstArrival = r.Submit
		r.NoticeTime = r.Submit - lead
	case job.ArriveEarly:
		r.Notice = job.ArriveEarly
		r.EstArrival = r.Submit + g.noticeRNG.UniformInt64(0, lead)
		r.NoticeTime = r.EstArrival - lead
	case job.ArriveLate:
		r.Notice = job.ArriveLate
		r.EstArrival = r.Submit - g.noticeRNG.UniformInt64(0, g.cfg.LateWindow)
		r.NoticeTime = r.EstArrival - lead
	}
	if r.NoticeTime < 0 {
		r.NoticeTime = 0
	}
	if r.EstArrival < r.NoticeTime {
		r.EstArrival = r.NoticeTime
	}
	if r.NoticeTime > r.Submit {
		r.NoticeTime = r.Submit
	}
}

// minSize returns ceil(frac * max), at least 1.
func minSize(max int, frac float64) int {
	m := int(math.Ceil(frac * float64(max)))
	if m < 1 {
		m = 1
	}
	if m > max {
		m = max
	}
	return m
}
