package workload

import (
	"hybridsched/internal/job"
	"hybridsched/internal/simtime"
	"hybridsched/internal/trace"
)

// Summary condenses a trace the way the paper's Table I describes Theta.
type Summary struct {
	Jobs        int
	Projects    int
	Nodes       int
	Weeks       int
	MinJobSize  int
	MaxRuntime  int64
	NodeSeconds float64 // offered node-seconds
	OfferedLoad float64 // offered node-seconds / capacity
}

// Summarize computes the Table I style summary for a trace generated under
// cfg (used for its system size and span).
func Summarize(records []trace.Record, cfg Config) Summary {
	cfg, _ = cfg.Normalize()
	s := Summary{Nodes: cfg.Nodes, Weeks: cfg.Weeks}
	projects := map[int]bool{}
	s.MinJobSize = 1 << 30
	for _, r := range records {
		s.Jobs++
		projects[r.Project] = true
		if r.Size < s.MinJobSize {
			s.MinJobSize = r.Size
		}
		if r.Work > s.MaxRuntime {
			s.MaxRuntime = r.Work
		}
		s.NodeSeconds += float64(r.Size) * float64(r.Work)
	}
	s.Projects = len(projects)
	if s.Jobs == 0 {
		s.MinJobSize = 0
	}
	s.OfferedLoad = s.NodeSeconds / (float64(cfg.Nodes) * float64(cfg.Span))
	return s
}

// SizeBucket is one slice of the Fig. 3 characterization: how many jobs fall
// in a size range and how many core-hours (node-hours here — Theta reports
// core-hours, a fixed 64x multiple) they consume.
type SizeBucket struct {
	Lo, Hi    int // node range [Lo, Hi]
	Jobs      int
	NodeHours float64
}

// SizeHistogram buckets jobs by size range, reproducing Fig. 3. Bounds
// follow the bucket upper edges in cfg.SizeBuckets.
func SizeHistogram(records []trace.Record, cfg Config) []SizeBucket {
	cfg, _ = cfg.Normalize()
	edges := cfg.SizeBuckets
	buckets := make([]SizeBucket, len(edges))
	lo := 0
	for i, hi := range edges {
		buckets[i] = SizeBucket{Lo: lo + 1, Hi: hi}
		lo = hi
	}
	for _, r := range records {
		for i := range buckets {
			if r.Size <= buckets[i].Hi || i == len(buckets)-1 {
				buckets[i].Jobs++
				buckets[i].NodeHours += float64(r.Size) * simtime.Hours(r.Work)
				break
			}
		}
	}
	return buckets
}

// ClassShare is one class's slice of the Fig. 4 characterization.
type ClassShare struct {
	Class     job.Class
	Jobs      int
	JobFrac   float64
	NodeHours float64
	HourFrac  float64
}

// TypeDistribution reports the per-class job and node-hour shares of a
// trace, reproducing one bar of Fig. 4.
func TypeDistribution(records []trace.Record) []ClassShare {
	shares := []ClassShare{{Class: job.Rigid}, {Class: job.OnDemand}, {Class: job.Malleable}}
	var totalHours float64
	for _, r := range records {
		h := float64(r.Size) * simtime.Hours(r.Work)
		totalHours += h
		for i := range shares {
			if shares[i].Class == r.Class {
				shares[i].Jobs++
				shares[i].NodeHours += h
			}
		}
	}
	for i := range shares {
		if len(records) > 0 {
			shares[i].JobFrac = float64(shares[i].Jobs) / float64(len(records))
		}
		if totalHours > 0 {
			shares[i].HourFrac = shares[i].NodeHours / totalHours
		}
	}
	return shares
}

// WeeklyOnDemand counts on-demand submissions per week, reproducing one line
// of Fig. 5 (the bursty on-demand arrival pattern).
func WeeklyOnDemand(records []trace.Record, weeks int) []int {
	if weeks < 1 {
		weeks = 1
	}
	counts := make([]int, weeks)
	for _, r := range records {
		if r.Class != job.OnDemand {
			continue
		}
		w := int(r.Submit / simtime.Week)
		if w < 0 {
			w = 0
		}
		if w >= weeks {
			w = weeks - 1
		}
		counts[w]++
	}
	return counts
}
