// Package workload synthesizes hybrid job traces that reproduce the
// published marginals of the 2019 Theta workload (paper Table I, Fig. 3–5)
// and relabels projects into job classes exactly as the paper's experiment
// setup describes (§IV-A, §IV-B):
//
//   - 4392 nodes, minimum job size 128, maximum job length 24 h;
//   - ~37 k jobs per year spread over 211 projects with strongly skewed
//     (Zipf) per-project activity;
//   - all jobs of a project share one class; 10 % of projects submit
//     on-demand jobs, 60 % rigid, the rest malleable;
//   - on-demand jobs are small (large ones are reassigned) and arrive in
//     bursts because a project's jobs cluster into submission sessions;
//   - each on-demand job falls into one of the four advance-notice
//     categories of Fig. 1 with workload-dependent proportions (Table III).
//
// The generator is deterministic per seed; ten seeds reproduce the paper's
// "ten randomly generated traces".
package workload

import (
	"fmt"

	"hybridsched/internal/simtime"
)

// NoticeMix is the distribution of on-demand jobs over the four notice
// categories, in the order: no notice, accurate, early, late (Table III).
type NoticeMix [4]float64

// The five workload mixes of Table III.
var (
	W1 = NoticeMix{0.70, 0.10, 0.10, 0.10}
	W2 = NoticeMix{0.10, 0.70, 0.10, 0.10}
	W3 = NoticeMix{0.10, 0.10, 0.70, 0.10}
	W4 = NoticeMix{0.10, 0.10, 0.10, 0.70}
	W5 = NoticeMix{0.25, 0.25, 0.25, 0.25}
)

// MixByName returns a Table III mix by its paper name ("W1".."W5").
func MixByName(name string) (NoticeMix, error) {
	switch name {
	case "W1":
		return W1, nil
	case "W2":
		return W2, nil
	case "W3":
		return W3, nil
	case "W4":
		return W4, nil
	case "W5":
		return W5, nil
	}
	return NoticeMix{}, fmt.Errorf("workload: unknown mix %q", name)
}

// Config parameterizes trace generation. Zero values take the paper's
// defaults via Normalize.
type Config struct {
	Seed  int64
	Nodes int   // system size; default 4392 (Theta)
	Weeks int   // trace length; default 4
	Span  int64 // derived: Weeks * simtime.Week

	Projects    int     // default 211 (Theta)
	TargetLoad  float64 // offered node-time / capacity; default 0.88
	MinJobSize  int     // default 128 (Theta minimum allocation)
	MaxRuntime  int64   // default 24h (Theta maximum job length)
	MinRuntime  int64   // default 10 minutes
	SizeWeights []float64
	SizeBuckets []int

	// Runtime distribution (lognormal on seconds).
	RuntimeMedian int64   // default 40 minutes
	RuntimeSigma  float64 // default 1.1

	// Class mix over projects (paper §IV-B).
	OnDemandProjectFrac float64 // default 0.10
	RigidProjectFrac    float64 // default 0.60 (remainder malleable)

	// On-demand parameters.
	Mix            NoticeMix // default W5
	NoticeLeadMin  int64     // default 15 minutes
	NoticeLeadMax  int64     // default 30 minutes
	LateWindow     int64     // default 30 minutes (arrive-late spread)
	OnDemandMaxGen int       // size cap for generated on-demand jobs; default 1024

	// Malleable parameters.
	MalleableMinFrac float64 // min size fraction of max; default 0.20

	// Setup-time fractions of runtime (paper §IV-B).
	RigidSetupMin, RigidSetupMax         float64 // defaults 0.05, 0.10
	MalleableSetupMin, MalleableSetupMax float64 // defaults 0.00, 0.05

	// Burstiness: mean jobs per submission session.
	JobsPerSession         float64 // default 5
	OnDemandJobsPerSession float64 // default 10 (burstier)
}

// Normalize fills defaults and validates; it returns the completed config.
func (c Config) Normalize() (Config, error) {
	if c.Nodes == 0 {
		c.Nodes = 4392
	}
	if c.Weeks == 0 {
		c.Weeks = 4
	}
	c.Span = int64(c.Weeks) * simtime.Week
	if c.Projects == 0 {
		c.Projects = 211
	}
	if c.TargetLoad == 0 {
		// Calibrated so the FCFS/EASY baseline lands near the paper's
		// Table II operating point (util ~84-91 %, mean turnaround ~16 h).
		c.TargetLoad = 0.92
	}
	if c.MinJobSize == 0 {
		c.MinJobSize = 128
	}
	if c.MaxRuntime == 0 {
		c.MaxRuntime = simtime.Day
	}
	if c.MinRuntime == 0 {
		c.MinRuntime = 10 * simtime.Minute
	}
	if c.SizeBuckets == nil {
		// Approximate Theta's Fig. 3 size mix: small jobs dominate counts
		// while mid-to-large jobs dominate node-hours (and produce the
		// fragmentation the paper's baseline exhibits).
		c.SizeBuckets = []int{128, 256, 512, 1024, 2048, 3072, 4096}
		c.SizeWeights = []float64{0.18, 0.15, 0.15, 0.17, 0.18, 0.09, 0.08}
	}
	if len(c.SizeBuckets) != len(c.SizeWeights) {
		return c, fmt.Errorf("workload: %d size buckets vs %d weights", len(c.SizeBuckets), len(c.SizeWeights))
	}
	if c.RuntimeMedian == 0 {
		c.RuntimeMedian = 40 * simtime.Minute
	}
	if c.RuntimeSigma == 0 {
		c.RuntimeSigma = 1.1
	}
	if c.OnDemandProjectFrac == 0 {
		c.OnDemandProjectFrac = 0.10
	}
	if c.RigidProjectFrac == 0 {
		c.RigidProjectFrac = 0.60
	}
	if c.OnDemandProjectFrac+c.RigidProjectFrac > 1 {
		return c, fmt.Errorf("workload: project fractions exceed 1")
	}
	var zero NoticeMix
	if c.Mix == zero {
		c.Mix = W5
	}
	sum := 0.0
	for _, p := range c.Mix {
		if p < 0 {
			return c, fmt.Errorf("workload: negative notice fraction")
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		return c, fmt.Errorf("workload: notice mix sums to %g, want 1", sum)
	}
	if c.NoticeLeadMin == 0 {
		c.NoticeLeadMin = 15 * simtime.Minute
	}
	if c.NoticeLeadMax == 0 {
		c.NoticeLeadMax = 30 * simtime.Minute
	}
	if c.LateWindow == 0 {
		c.LateWindow = 30 * simtime.Minute
	}
	if c.OnDemandMaxGen == 0 {
		c.OnDemandMaxGen = 1024
	}
	if c.MalleableMinFrac == 0 {
		c.MalleableMinFrac = 0.20
	}
	if c.MalleableMinFrac < 0 || c.MalleableMinFrac > 1 {
		return c, fmt.Errorf("workload: malleable min fraction %g outside [0,1]", c.MalleableMinFrac)
	}
	if c.RigidSetupMax == 0 {
		c.RigidSetupMin, c.RigidSetupMax = 0.05, 0.10
	}
	if c.MalleableSetupMax == 0 {
		c.MalleableSetupMin, c.MalleableSetupMax = 0.0, 0.05
	}
	if c.JobsPerSession == 0 {
		c.JobsPerSession = 5
	}
	if c.OnDemandJobsPerSession == 0 {
		c.OnDemandJobsPerSession = 10
	}
	if c.Nodes < c.MinJobSize {
		return c, fmt.Errorf("workload: system of %d nodes smaller than min job size %d", c.Nodes, c.MinJobSize)
	}
	return c, nil
}
