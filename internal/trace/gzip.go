package trace

import (
	"bufio"
	"compress/gzip"
	"io"
)

// gzipMagic is the two-byte gzip file signature (RFC 1952).
var gzipMagic = [2]byte{0x1f, 0x8b}

// MaybeGzip wraps r so that gzip-compressed input is transparently
// decompressed. Detection is by content, not file name: the first two bytes
// are sniffed for the gzip magic, so a compressed trace is recognized no
// matter what it is called, and a plain-text trace that merely ends in ".gz"
// is read as-is. The decision is made lazily on the first Read, so
// constructing the wrapper never fails; a corrupt gzip stream surfaces as a
// read error. The returned reader does not own r and closes nothing.
func MaybeGzip(r io.Reader) io.Reader { return &gzipSniffer{src: r} }

// gzipSniffer defers the magic-byte peek to the first Read.
type gzipSniffer struct {
	src io.Reader
	r   io.Reader // resolved on first Read
	err error
}

func (g *gzipSniffer) Read(p []byte) (int, error) {
	if g.err != nil {
		return 0, g.err
	}
	if g.r == nil {
		br := bufio.NewReader(g.src)
		// A peek error (e.g. a file shorter than two bytes) is not a sniff
		// failure: the buffered reader replays whatever is there.
		if magic, err := br.Peek(2); err == nil && magic[0] == gzipMagic[0] && magic[1] == gzipMagic[1] {
			zr, zerr := gzip.NewReader(br)
			if zerr != nil {
				g.err = zerr
				return 0, zerr
			}
			g.r = zr
		} else {
			g.r = br
		}
	}
	return g.r.Read(p)
}
