package trace

import (
	"io"
	"reflect"
	"strings"
	"testing"

	"hybridsched/internal/job"
)

// drainCSV reads a CSVReader to exhaustion.
func drainCSV(t *testing.T, r *CSVReader) []Record {
	t.Helper()
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, rec)
	}
}

func TestCSVReaderMatchesReadCSV(t *testing.T) {
	recs := []Record{
		{ID: 1, Project: 3, Class: job.Rigid, Submit: 0, Size: 128, MinSize: 128,
			Work: 3600, Estimate: 7200, Setup: 60, NoticeTime: 0, EstArrival: 0},
		{ID: 2, Project: 5, Class: job.OnDemand, Submit: 900, Size: 64, MinSize: 64,
			Work: 600, Estimate: 900, Notice: job.AccurateNotice, NoticeTime: 300, EstArrival: 900},
		{ID: 3, Project: 7, Class: job.Malleable, Submit: 1800, Size: 256, MinSize: 64,
			Work: 1200, Estimate: 2400, NoticeTime: 1800, EstArrival: 1800},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, recs); err != nil {
		t.Fatal(err)
	}
	batch, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	stream := drainCSV(t, NewCSVReader(strings.NewReader(sb.String())))
	if !reflect.DeepEqual(batch, stream) {
		t.Errorf("streaming reader diverges from ReadCSV:\nbatch  %+v\nstream %+v", batch, stream)
	}
}

func TestCSVReaderStickyError(t *testing.T) {
	r := NewCSVReader(strings.NewReader("not,a,trace\n"))
	_, err1 := r.Next()
	if err1 == nil {
		t.Fatal("want header error")
	}
	_, err2 := r.Next()
	if err2 != err1 {
		t.Errorf("error not sticky: %v then %v", err1, err2)
	}
}

func TestCSVReaderStickyEOF(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, nil); err != nil {
		t.Fatal(err)
	}
	r := NewCSVReader(strings.NewReader(sb.String()))
	for i := 0; i < 3; i++ {
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("call %d: want io.EOF, got %v", i, err)
		}
	}
}

const summarySWF = `; header comment
1 0 -1 3600 128 -1 -1 128 7200 -1 1 10 20 -1 -1 -1 -1 -1
2 100 -1 600 0 -1 -1 64 300 -1 1 10 20 -1 -1 -1 -1 -1
3 200 -1 -5 32 -1 -1 32 900 -1 1 10 20 -1 -1 -1 -1 -1
4 300 -1 450 16 -1 -1 16 900 -1 1
`

func TestSWFReaderSummary(t *testing.T) {
	recs, sum, err := ReadSWFSummary(strings.NewReader(summarySWF))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("want 3 records, got %d", len(recs))
	}
	want := SWFSummary{
		JobsRead:    3,
		JobsSkipped: 1, // job 3: negative runtime
		// job 2: estimate 300 < runtime 600 raised; job 4: requested time 900 kept
		EstimatesDefaulted: 1,
		SizeFallbacks:      1, // job 2: allocated 0, requested 64
		ProjectsDefaulted:  1, // job 4: only 11 fields
	}
	if sum != want {
		t.Errorf("summary = %+v, want %+v", sum, want)
	}
	for _, r := range recs {
		if r.Class != job.Rigid {
			t.Errorf("job %d imported as %v, want rigid", r.ID, r.Class)
		}
		if err := r.Validate(); err != nil {
			t.Errorf("imported record invalid: %v", err)
		}
	}
	if s := sum.String(); !strings.Contains(s, "all rigid") {
		t.Errorf("summary string should state the rigid default, got %q", s)
	}
}

func TestSWFReaderMatchesReadSWF(t *testing.T) {
	batch, err := ReadSWF(strings.NewReader(summarySWF))
	if err != nil {
		t.Fatal(err)
	}
	sr := NewSWFReader(strings.NewReader(summarySWF))
	var stream []Record
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, rec)
	}
	if !reflect.DeepEqual(batch, stream) {
		t.Errorf("streaming reader diverges from ReadSWF:\nbatch  %+v\nstream %+v", batch, stream)
	}
}

func TestSWFReaderStickyError(t *testing.T) {
	r := NewSWFReader(strings.NewReader("1 2 3\n"))
	_, err1 := r.Next()
	if err1 == nil {
		t.Fatal("want short-line error")
	}
	_, err2 := r.Next()
	if err2 != err1 {
		t.Errorf("error not sticky: %v then %v", err1, err2)
	}
}
