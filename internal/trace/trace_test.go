package trace

import (
	"bytes"
	"strings"
	"testing"

	"hybridsched/internal/checkpoint"
	"hybridsched/internal/job"
)

func sampleRecords() []Record {
	return []Record{
		{ID: 1, Project: 3, Class: job.Rigid, Submit: 0, Size: 128, MinSize: 128,
			Work: 3600, Estimate: 7200, Setup: 200, Notice: job.NoNotice, NoticeTime: 0, EstArrival: 0},
		{ID: 2, Project: 5, Class: job.OnDemand, Submit: 1000, Size: 256, MinSize: 256,
			Work: 1800, Estimate: 1800, Notice: job.AccurateNotice, NoticeTime: 100, EstArrival: 1000},
		{ID: 3, Project: 7, Class: job.Malleable, Submit: 2000, Size: 512, MinSize: 103,
			Work: 5400, Estimate: 9000, Setup: 60, Notice: job.NoNotice, NoticeTime: 2000, EstArrival: 2000},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d round-trip mismatch:\n got %+v\nwant %+v", i, got[i], recs[i])
		}
	}
}

func TestReadCSVRejectsBadHeader(t *testing.T) {
	_, err := ReadCSV(strings.NewReader("a,b,c,d,e,f,g,h,i,j,k,l\n"))
	if err == nil {
		t.Fatal("expected header error")
	}
}

func TestReadCSVRejectsEmpty(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestReadCSVRejectsInvalidRecord(t *testing.T) {
	recs := sampleRecords()
	recs[0].Estimate = 10 // < work: invalid
	var buf bytes.Buffer
	// WriteCSV does not validate; ReadCSV must.
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCSV(&buf); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestReadCSVRejectsUnknownClass(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	broken := strings.Replace(buf.String(), "rigid", "elastic", 1)
	if _, err := ReadCSV(strings.NewReader(broken)); err == nil {
		t.Fatal("expected class error")
	}
}

func TestValidate(t *testing.T) {
	good := sampleRecords()[0]
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Record){
		func(r *Record) { r.Size = 0 },
		func(r *Record) { r.MinSize = 0 },
		func(r *Record) { r.MinSize = r.Size + 1 },
		func(r *Record) { r.Work = 0 },
		func(r *Record) { r.Estimate = r.Work - 1 },
		func(r *Record) { r.Submit = -1 },
		func(r *Record) { r.Setup = -1 },
		func(r *Record) { r.Class = job.Rigid; r.MinSize = r.Size - 1 },
	}
	for i, mutate := range cases {
		r := good
		mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	// On-demand notice after arrival.
	od := sampleRecords()[1]
	od.NoticeTime = od.Submit + 1
	if err := od.Validate(); err == nil {
		t.Error("notice after arrival should fail")
	}
}

func TestSWFRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := WriteSWF(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d jobs", len(got))
	}
	for i, g := range got {
		if g.Class != job.Rigid {
			t.Errorf("job %d: SWF import must be rigid, got %v", i, g.Class)
		}
		if g.Submit != recs[i].Submit || g.Size != recs[i].Size || g.Work != recs[i].Work {
			t.Errorf("job %d: fields lost: %+v vs %+v", i, g, recs[i])
		}
		if g.Estimate != recs[i].Estimate {
			t.Errorf("job %d: estimate lost", i)
		}
	}
}

func TestReadSWFSkipsCommentsAndBadJobs(t *testing.T) {
	in := `; comment line
; another

1 100 -1 3600 64 -1 -1 64 7200 -1 1 10 20 -1 -1 -1 -1 -1
2 200 -1 0 64 -1 -1 64 100 -1 1 10 20 -1 -1 -1 -1 -1
3 300 -1 600 0 -1 -1 0 700 -1 1 10 20 -1 -1 -1 -1 -1
4 400 -1 600 0 -1 -1 32 700 -1 1 10 20 -1 -1 -1 -1 -1
`
	got, err := ReadSWF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Job 2 (zero runtime) and job 3 (zero procs everywhere) drop; job 4
	// falls back to requested processors.
	if len(got) != 2 {
		t.Fatalf("got %d jobs, want 2", len(got))
	}
	if got[0].ID != 1 || got[1].ID != 4 || got[1].Size != 32 {
		t.Fatalf("unexpected jobs: %+v", got)
	}
	if got[0].Project != 20 {
		t.Fatalf("project should come from the group field, got %d", got[0].Project)
	}
}

func TestReadSWFRejectsShortLines(t *testing.T) {
	if _, err := ReadSWF(strings.NewReader("1 2 3\n")); err == nil {
		t.Fatal("expected error for short line")
	}
}

func TestMaterialize(t *testing.T) {
	recs := sampleRecords()
	plan := func(size int) checkpoint.Plan {
		return checkpoint.NewPlan(size, 24*3600, 1.0)
	}
	jobs := Materialize(recs, plan)
	if len(jobs) != 3 {
		t.Fatalf("got %d jobs", len(jobs))
	}
	if jobs[0].Class != job.Rigid || !jobs[0].Ckpt.Enabled() {
		t.Fatal("rigid job should carry a checkpoint plan")
	}
	if jobs[1].Class != job.OnDemand || jobs[1].Ckpt.Enabled() {
		t.Fatal("on-demand job must not checkpoint")
	}
	if jobs[1].Notice != job.AccurateNotice || jobs[1].NoticeTime != 100 {
		t.Fatal("notice fields lost")
	}
	if jobs[2].Class != job.Malleable || jobs[2].MinSize != 103 {
		t.Fatal("malleable fields lost")
	}
	if jobs[2].RemainingWork() != 5400*512 {
		t.Fatal("malleable work not initialized")
	}
}
