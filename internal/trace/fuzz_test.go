package trace

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
)

// validCSVSeed renders a small valid trace for the fuzz corpus.
func validCSVSeed(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	err := WriteCSV(&buf, []Record{
		{ID: 1, Class: 0, Submit: 0, Size: 128, MinSize: 128, Work: 3600, Estimate: 7200},
		{ID: 2, Class: 1, Submit: 60, Size: 64, MinSize: 64, Work: 600, Estimate: 900,
			Notice: 1, NoticeTime: 30, EstArrival: 60},
		{ID: 3, Class: 2, Submit: 90, Size: 256, MinSize: 32, Work: 100, Estimate: 200,
			NoticeTime: 90, EstArrival: 90},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadCSV: the CSV parser must never panic, must only return
// Validate-clean records on success, and the streaming reader must agree
// with the slurp-all form byte for byte.
func FuzzReadCSV(f *testing.F) {
	f.Add(validCSVSeed(f))
	f.Add([]byte(""))
	f.Add([]byte("id,project,class,submit,size,min_size,work,estimate,setup,notice,notice_time,est_arrival\n"))
	f.Add([]byte("id,project,class,submit,size,min_size,work,estimate,setup,notice,notice_time,est_arrival\n" +
		"1,0,rigid,0,0,0,0,0,0,no-notice,0,0\n"))
	f.Add([]byte("id,project,class,submit,size,min_size,work,estimate,setup,notice,notice_time,est_arrival\n" +
		"1,0,quantum,0,8,8,10,10,0,no-notice,0,0\n"))
	f.Add([]byte("not,a,header\n1,2,3\n"))
	f.Add([]byte("id,project,class,submit,size,min_size,work,estimate,setup,notice,notice_time,est_arrival\n" +
		"1,0,on-demand,5,8,8,10,20,0,late,9,4\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadCSV(bytes.NewReader(data))
		var stream []Record
		var streamErr error
		sr := NewCSVReader(bytes.NewReader(data))
		for {
			rec, e := sr.Next()
			if e == io.EOF {
				break
			}
			if e != nil {
				streamErr = e
				break
			}
			stream = append(stream, rec)
		}
		if (err == nil) != (streamErr == nil) {
			t.Fatalf("slurp err %v vs stream err %v", err, streamErr)
		}
		if err != nil {
			return
		}
		if len(recs) != len(stream) || (len(recs) > 0 && !reflect.DeepEqual(recs, stream)) {
			t.Fatalf("slurp and stream disagree: %d vs %d records", len(recs), len(stream))
		}
		for _, r := range recs {
			if verr := r.Validate(); verr != nil {
				t.Fatalf("ReadCSV accepted invalid record %+v: %v", r, verr)
			}
		}
	})
}

// FuzzReadSWF: the SWF importer must never panic, must only emit
// Validate-clean rigid records, and the summary must account for every
// emitted record.
func FuzzReadSWF(f *testing.F) {
	f.Add([]byte("; comment\n1 0 -1 3600 128 -1 -1 128 7200 -1 1 10 20 -1 -1 -1 -1 -1\n"))
	f.Add([]byte(""))
	f.Add([]byte("; only a comment\n"))
	f.Add([]byte("1 2 3\n"))
	f.Add([]byte("x 0 -1 10 4 -1 -1 4 10 -1 1\n"))
	f.Add([]byte("1 0 -1 600 0 -1 -1 64 300 -1 1 10 20\n"))
	f.Add([]byte("1 -5 -1 600 64 -1 -1 64 300 -1 1\n2 0 -1 -1 64 -1 -1 64 300 -1 1\n"))
	f.Add([]byte(strings.Repeat("9", 40) + " 0 -1 10 4 -1 -1 4 10 -1 1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, sum, err := ReadSWFSummary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if sum.JobsRead != len(recs) {
			t.Fatalf("summary says %d jobs read, got %d records", sum.JobsRead, len(recs))
		}
		for _, r := range recs {
			if r.Class != 0 {
				t.Fatalf("SWF import produced non-rigid record %+v", r)
			}
			if verr := r.Validate(); verr != nil {
				t.Fatalf("ReadSWF accepted invalid record %+v: %v", r, verr)
			}
		}
	})
}
