package trace

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func gzipBytes(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMaybeGzipDetection covers both detection paths (satellite #1): gzip
// input is recognized by its magic bytes and decompressed; plain input —
// including input that merely starts with one of the two magic bytes, or is
// shorter than the sniff window — passes through untouched.
func TestMaybeGzipDetection(t *testing.T) {
	plain := []byte("hello trace\nline two\n")
	cases := []struct {
		name string
		in   []byte
		want []byte
	}{
		{"gzip", gzipBytes(t, plain), plain},
		{"plain", plain, plain},
		{"half magic", []byte{0x1f, 0x00, 0x41}, []byte{0x1f, 0x00, 0x41}},
		{"one byte", []byte{0x1f}, []byte{0x1f}},
		{"empty", nil, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := io.ReadAll(MaybeGzip(bytes.NewReader(tc.in)))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, tc.want) {
				t.Fatalf("got %q, want %q", got, tc.want)
			}
		})
	}
}

func TestMaybeGzipCorrupt(t *testing.T) {
	// Valid magic, garbage after: the error surfaces on Read and is sticky.
	r := MaybeGzip(bytes.NewReader([]byte{0x1f, 0x8b, 0xff, 0xff, 0xff}))
	if _, err := io.ReadAll(r); err == nil {
		t.Fatal("corrupt gzip stream read without error")
	}
	if _, err := r.Read(make([]byte, 1)); err == nil {
		t.Fatal("corrupt gzip error not sticky")
	}
}

// traceCSV renders a small valid native trace.
func traceCSV(t *testing.T) ([]byte, []Record) {
	t.Helper()
	recs := []Record{
		{ID: 1, Class: 0, Submit: 0, Size: 8, MinSize: 8, Work: 600, Estimate: 900},
		{ID: 2, Class: 0, Submit: 30, Size: 4, MinSize: 4, Work: 60, Estimate: 120},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), recs
}

// TestReadersGzipAware: the CSV and SWF readers decode gzipped input
// transparently, by content — the same bytes compressed and plain parse to
// identical records.
func TestReadersGzipAware(t *testing.T) {
	csvBytes, want := traceCSV(t)
	got, err := ReadCSV(bytes.NewReader(gzipBytes(t, csvBytes)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("gzipped CSV parsed as %+v, want %+v", got, want)
	}

	swf := "; gzipped swf\n1 0 -1 3600 128 -1 -1 128 7200 -1 1 10 20 -1 -1 -1 -1 -1\n"
	plainRecs, err := ReadSWF(strings.NewReader(swf))
	if err != nil {
		t.Fatal(err)
	}
	gzRecs, err := ReadSWF(bytes.NewReader(gzipBytes(t, []byte(swf))))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plainRecs, gzRecs) {
		t.Fatalf("gzipped SWF parsed as %+v, want %+v", gzRecs, plainRecs)
	}
}

// TestGzipNameIsNotContent: a plain-text file whose name lies (ends in .gz)
// reads fine — detection is by content, not extension.
func TestGzipNameIsNotContent(t *testing.T) {
	dir := t.TempDir()
	csvBytes, want := traceCSV(t)
	plainGzName := filepath.Join(dir, "plain.csv.gz") // lies: not compressed
	if err := os.WriteFile(plainGzName, csvBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(plainGzName)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("plain file named .gz parsed as %+v", got)
	}
}
