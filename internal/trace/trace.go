// Package trace defines the on-disk job-trace formats of the simulator.
//
// The native format is a CSV dialect that carries the hybrid-workload
// extensions the paper needs (job class, malleable minimum size, advance
// notice category and times). A reader and writer for the Standard Workload
// Format (SWF) used by the Parallel Workloads Archive are also provided so
// that external rigid-job traces can seed experiments; SWF carries no hybrid
// extensions, so every SWF job imports as rigid.
package trace

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hybridsched/internal/checkpoint"
	"hybridsched/internal/job"
)

// Record is one job in a trace. It mirrors the static half of job.Job.
type Record struct {
	ID         int
	Project    int
	Class      job.Class
	Submit     int64 // actual arrival time (seconds from trace start)
	Size       int   // requested nodes (maximum size for malleable jobs)
	MinSize    int   // minimum size (malleable; == Size otherwise)
	Work       int64 // actual runtime at Size, seconds
	Estimate   int64 // user runtime estimate, seconds
	Setup      int64 // startup overhead, seconds
	Notice     job.NoticeCategory
	NoticeTime int64 // advance-notice instant (== Submit when NoNotice)
	EstArrival int64 // arrival estimate carried by the notice
}

// Validate checks internal consistency of a record.
func (r Record) Validate() error {
	switch {
	case r.Size < 1:
		return fmt.Errorf("trace: job %d: size %d < 1", r.ID, r.Size)
	case r.MinSize < 1 || r.MinSize > r.Size:
		return fmt.Errorf("trace: job %d: min size %d outside [1,%d]", r.ID, r.MinSize, r.Size)
	case r.Work < 1:
		return fmt.Errorf("trace: job %d: work %d < 1", r.ID, r.Work)
	case r.Estimate < r.Work:
		return fmt.Errorf("trace: job %d: estimate %d < work %d", r.ID, r.Estimate, r.Work)
	case r.Submit < 0:
		return fmt.Errorf("trace: job %d: negative submit %d", r.ID, r.Submit)
	case r.Setup < 0:
		return fmt.Errorf("trace: job %d: negative setup %d", r.ID, r.Setup)
	case r.Class == job.OnDemand && r.NoticeTime > r.Submit:
		return fmt.Errorf("trace: job %d: notice %d after arrival %d", r.ID, r.NoticeTime, r.Submit)
	case r.Class != job.Malleable && r.MinSize != r.Size:
		return fmt.Errorf("trace: job %d: %v job with min size %d != size %d", r.ID, r.Class, r.MinSize, r.Size)
	}
	return nil
}

var csvHeader = []string{
	"id", "project", "class", "submit", "size", "min_size",
	"work", "estimate", "setup", "notice", "notice_time", "est_arrival",
}

// WriteCSV writes records in the native CSV dialect.
func WriteCSV(w io.Writer, records []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range records {
		row := []string{
			strconv.Itoa(r.ID),
			strconv.Itoa(r.Project),
			r.Class.String(),
			strconv.FormatInt(r.Submit, 10),
			strconv.Itoa(r.Size),
			strconv.Itoa(r.MinSize),
			strconv.FormatInt(r.Work, 10),
			strconv.FormatInt(r.Estimate, 10),
			strconv.FormatInt(r.Setup, 10),
			r.Notice.String(),
			strconv.FormatInt(r.NoticeTime, 10),
			strconv.FormatInt(r.EstArrival, 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses the native CSV dialect and validates every record.
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty file")
	}
	for i, name := range csvHeader {
		if rows[0][i] != name {
			return nil, fmt.Errorf("trace: bad header column %d: %q", i, rows[0][i])
		}
	}
	records := make([]Record, 0, len(rows)-1)
	for n, row := range rows[1:] {
		rec, err := parseCSVRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: %w", n+2, err)
		}
		if err := rec.Validate(); err != nil {
			return nil, err
		}
		records = append(records, rec)
	}
	return records, nil
}

func parseCSVRow(row []string) (Record, error) {
	var r Record
	var err error
	geti := func(s string) int {
		if err != nil {
			return 0
		}
		var v int
		v, err = strconv.Atoi(s)
		return v
	}
	get64 := func(s string) int64 {
		if err != nil {
			return 0
		}
		var v int64
		v, err = strconv.ParseInt(s, 10, 64)
		return v
	}
	r.ID = geti(row[0])
	r.Project = geti(row[1])
	switch row[2] {
	case "rigid":
		r.Class = job.Rigid
	case "on-demand":
		r.Class = job.OnDemand
	case "malleable":
		r.Class = job.Malleable
	default:
		return r, fmt.Errorf("unknown class %q", row[2])
	}
	r.Submit = get64(row[3])
	r.Size = geti(row[4])
	r.MinSize = geti(row[5])
	r.Work = get64(row[6])
	r.Estimate = get64(row[7])
	r.Setup = get64(row[8])
	switch row[9] {
	case "no-notice":
		r.Notice = job.NoNotice
	case "accurate":
		r.Notice = job.AccurateNotice
	case "early":
		r.Notice = job.ArriveEarly
	case "late":
		r.Notice = job.ArriveLate
	default:
		return r, fmt.Errorf("unknown notice category %q", row[9])
	}
	r.NoticeTime = get64(row[10])
	r.EstArrival = get64(row[11])
	return r, err
}

// ReadSWF parses a Standard Workload Format trace. Comment lines (;) are
// skipped. Jobs with non-positive runtime or processor counts are dropped,
// matching common SWF cleaning practice. All jobs import as rigid, using the
// SWF "requested time" as the estimate (falling back to the runtime) and the
// group ID as the project.
func ReadSWF(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var records []Record
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, ";") {
			continue
		}
		f := strings.Fields(text)
		if len(f) < 11 {
			return nil, fmt.Errorf("trace: swf line %d: %d fields, want >= 11", line, len(f))
		}
		id, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("trace: swf line %d: %w", line, err)
		}
		submit, _ := strconv.ParseInt(f[1], 10, 64)
		runtime, _ := strconv.ParseInt(f[3], 10, 64)
		procs, _ := strconv.Atoi(f[4])
		if procs <= 0 && len(f) > 7 {
			procs, _ = strconv.Atoi(f[7]) // fall back to requested processors
		}
		var estimate int64
		if len(f) > 8 {
			estimate, _ = strconv.ParseInt(f[8], 10, 64)
		}
		if estimate < runtime {
			estimate = runtime
		}
		project := 0
		if len(f) > 12 {
			project, _ = strconv.Atoi(f[12])
		}
		if runtime <= 0 || procs <= 0 || submit < 0 {
			continue
		}
		records = append(records, Record{
			ID:         id,
			Project:    project,
			Class:      job.Rigid,
			Submit:     submit,
			Size:       procs,
			MinSize:    procs,
			Work:       runtime,
			Estimate:   estimate,
			NoticeTime: submit,
			EstArrival: submit,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return records, nil
}

// WriteSWF writes records as SWF. Hybrid extensions are lossy: class,
// minimum size and notice information are dropped (a header comment notes
// the original class mix).
func WriteSWF(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "; SWF export from hybridsched (class/notice extensions dropped)")
	for _, r := range records {
		// id submit wait run procs avgcpu mem reqprocs reqtime reqmem status
		// uid gid exe queue partition prevjob thinktime
		_, err := fmt.Fprintf(bw, "%d %d -1 %d %d -1 -1 %d %d -1 1 %d %d -1 -1 -1 -1 -1\n",
			r.ID, r.Submit, r.Work, r.Size, r.Size, r.Estimate, r.Project, r.Project)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Materialize converts records into simulator jobs, attaching the checkpoint
// plan returned by plan for each rigid job's size. Records are not modified.
func Materialize(records []Record, plan func(size int) checkpoint.Plan) []*job.Job {
	jobs := make([]*job.Job, 0, len(records))
	for _, r := range records {
		var j *job.Job
		switch r.Class {
		case job.Rigid:
			j = job.NewRigid(r.ID, r.Project, r.Submit, r.Size, r.Work, r.Estimate, r.Setup, plan(r.Size))
		case job.OnDemand:
			j = job.NewOnDemand(r.ID, r.Project, r.Submit, r.Size, r.Work, r.Estimate, r.Setup,
				r.Notice, r.NoticeTime, r.EstArrival)
		case job.Malleable:
			j = job.NewMalleable(r.ID, r.Project, r.Submit, r.Size, r.MinSize, r.Work, r.Estimate, r.Setup)
		}
		jobs = append(jobs, j)
	}
	return jobs
}
